package grapple

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/grapple-system/grapple/internal/workload"
)

// The golden-report regression corpus: for every workload profile the full
// batch pipeline (per-property instances, shared constraint cache, merged
// stream) must reproduce testdata/golden/<profile>.json byte for byte.
// Regenerate with:
//
//	go test -run TestGoldenReports -update ./...
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden corpus")

// goldenReport is the canonical serialization. It includes the witness and
// its path constraint on purpose: both are deterministic functions of the
// (seeded) subject source, so a change here means the analysis changed, not
// just the formatting.
type goldenReport struct {
	Subject           string   `json:"subject"`
	Group             string   `json:"group"`
	Line              int      `json:"line"`
	Col               int      `json:"col"`
	FSM               string   `json:"fsm"`
	Kind              string   `json:"kind"`
	Type              string   `json:"type"`
	States            []string `json:"states"`
	Object            string   `json:"object,omitempty"`
	Witness           string   `json:"witness,omitempty"`
	WitnessConstraint string   `json:"witnessConstraint,omitempty"`
}

func goldenBytes(t *testing.T, reports []BatchReport) []byte {
	t.Helper()
	out := make([]goldenReport, 0, len(reports))
	for _, r := range reports {
		out = append(out, goldenReport{
			Subject: r.Subject, Group: r.Group,
			Line: r.Pos.Line, Col: r.Pos.Col,
			FSM: r.FSM, Kind: r.Kind.String(), Type: r.Type,
			States: r.States, Object: r.Object,
			Witness: r.Witness, WitnessConstraint: r.WitnessConstraint,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

func TestGoldenReports(t *testing.T) {
	profiles := workload.Profiles()
	if testing.Short() {
		profiles = profiles[:1]
	}
	for _, p := range profiles {
		t.Run(p.Name, func(t *testing.T) {
			s := workload.Generate(p)
			res, err := CheckAll(
				[]Subject{{Name: s.Name, Source: s.Source}},
				BuiltinCheckers(),
				BatchOptions{Options: Options{WorkDir: t.TempDir()}},
			)
			if err != nil {
				t.Fatal(err)
			}
			if failed := res.Failed(); len(failed) != 0 {
				t.Fatalf("failed instances: %+v", failed)
			}
			got := goldenBytes(t, res.Reports)

			path := filepath.Join("testdata", "golden", p.Name+".json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d reports)", path, bytes.Count(got, []byte("\n  {")))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal(goldenDiff(want, got))
			}
		})
	}
}

// TestGoldenGoReports pins the real-Go self-check: lowering
// internal/storage through the gofront bridge and running the file-handle
// pack must reproduce testdata/golden/go-storage.json byte for byte, and the
// stream must not depend on engine parallelism (checked at Workers 1 and 4).
func TestGoldenGoReports(t *testing.T) {
	const subject = "go-storage"
	var golden []byte
	for _, workers := range []int{1, 4} {
		res, pkg, err := CheckGoPackage(
			filepath.Join("internal", "storage"),
			[]string{"file-handle"},
			Options{WorkDir: t.TempDir(), Workers: workers},
		)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]goldenReport, 0, len(res.Reports))
		for _, r := range res.Reports {
			file, goLine := pkg.Locate(r.Pos.Line)
			out = append(out, goldenReport{
				Subject: subject, Group: file,
				Line: goLine, Col: r.Pos.Col,
				FSM: r.FSM, Kind: r.Kind.String(), Type: r.Type,
				States: r.States, Object: r.Object,
				Witness: r.Witness, WitnessConstraint: r.WitnessConstraint,
			})
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		got := append(data, '\n')
		if golden == nil {
			golden = got
		} else if !bytes.Equal(golden, got) {
			t.Fatalf("go golden stream differs across worker counts:\n%s",
				goldenDiff(golden, got))
		}
	}

	path := filepath.Join("testdata", "golden", subject+".json")
	if *updateGolden {
		if err := os.WriteFile(path, golden, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(golden, want) {
		t.Fatal(goldenDiff(want, golden))
	}
}

// TestGoldenSelfCheckPacks pins the concurrency-pack self-check: the mutex
// and context-cancel packs over the engine and trace packages must
// reproduce their goldens byte for byte. Both subjects are clean today, so
// the goldens pin the empty stream — a future regression (or a lowering
// change that conjures a finding) surfaces as a diff, not a green run. As
// with the storage subject, the stream must not depend on engine
// parallelism.
func TestGoldenSelfCheckPacks(t *testing.T) {
	subjects := []struct{ name, dir string }{
		{"go-engine-sync", filepath.Join("internal", "engine")},
		{"go-trace-sync", filepath.Join("internal", "trace")},
	}
	packNames := []string{"mutex", "context-cancel"}
	for _, sub := range subjects {
		t.Run(sub.name, func(t *testing.T) {
			var golden []byte
			for _, workers := range []int{1, 4} {
				res, pkg, err := CheckGoPackage(
					sub.dir, packNames,
					Options{WorkDir: t.TempDir(), Workers: workers},
				)
				if err != nil {
					t.Fatal(err)
				}
				out := make([]goldenReport, 0, len(res.Reports))
				for _, r := range res.Reports {
					file, goLine := pkg.Locate(r.Pos.Line)
					out = append(out, goldenReport{
						Subject: sub.name, Group: file,
						Line: goLine, Col: r.Pos.Col,
						FSM: r.FSM, Kind: r.Kind.String(), Type: r.Type,
						States: r.States, Object: r.Object,
						Witness: r.Witness, WitnessConstraint: r.WitnessConstraint,
					})
				}
				data, err := json.MarshalIndent(out, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				got := append(data, '\n')
				if golden == nil {
					golden = got
				} else if !bytes.Equal(golden, got) {
					t.Fatalf("self-check stream differs across worker counts:\n%s",
						goldenDiff(golden, got))
				}
			}

			path := filepath.Join("testdata", "golden", sub.name+".json")
			if *updateGolden {
				if err := os.WriteFile(path, golden, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if !bytes.Equal(golden, want) {
				t.Fatal(goldenDiff(want, golden))
			}
		})
	}
}

// goldenDiff renders the first divergence between two golden streams with a
// little context, so a regression is readable without an external diff tool.
func goldenDiff(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			lo := i - 2
			if lo < 0 {
				lo = 0
			}
			var buf bytes.Buffer
			fmt.Fprintf(&buf, "golden mismatch at line %d:\n", i+1)
			for j := lo; j < i; j++ {
				fmt.Fprintf(&buf, "  %s\n", wl[j])
			}
			fmt.Fprintf(&buf, "- %s\n+ %s\n", wl[i], gl[i])
			return buf.String()
		}
	}
	return fmt.Sprintf("golden length mismatch: want %d lines, got %d", len(wl), len(gl))
}
