package grapple

import (
	"fmt"
	"strings"
	"testing"
)

// Integration tests drive the whole pipeline (frontend -> ICFET -> cloning
// -> alias closure -> dataflow closure -> FSM checking) through the public
// API on programs that combine multiple features at once.

func mustCheck(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	if opts.WorkDir == "" {
		opts.WorkDir = t.TempDir()
	}
	res, err := Check(src, BuiltinCheckers(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func kinds(res *Result) (leaks, errors int) {
	for _, r := range res.Reports {
		if r.Kind == KindLeak {
			leaks++
		} else {
			errors++
		}
	}
	return
}

// TestIntegrationDeepCallChain tracks a resource through a five-deep call
// chain where the close happens at the bottom.
func TestIntegrationDeepCallChain(t *testing.T) {
	src := `
type FileWriter;
fun l5(w: FileWriter) { w.close(); return; }
fun l4(w: FileWriter) { l5(w); return; }
fun l3(w: FileWriter) { w.write(); l4(w); return; }
fun l2(w: FileWriter) { l3(w); return; }
fun l1(w: FileWriter) { l2(w); return; }
fun main() {
  var w: FileWriter = new FileWriter();
  l1(w);
  return;
}`
	res := mustCheck(t, src, Options{})
	if len(res.Reports) != 0 {
		t.Fatalf("deep-chain close missed: %v", res.Reports)
	}
}

// TestIntegrationRecursionSharedClone: recursive methods are analyzed
// context-insensitively through a single shared clone (paper §2.1). The
// analysis must terminate, and the known imprecision — the recursion's
// re-entry re-applies the abstract object's events, so the same writer can
// appear to be written after its close — may produce at most one warning on
// the recursive allocation itself, never elsewhere.
func TestIntegrationRecursionSharedClone(t *testing.T) {
	src := `
type FileWriter;
fun walk(n: int) {
  if (n <= 0) {
    return;
  }
  var w: FileWriter = new FileWriter();
  w.write();
  w.close();
  walk(n - 1);
  return;
}
fun main() {
  var outer: FileWriter = new FileWriter();
  outer.write();
  walk(input());
  outer.close();
  return;
}`
	res := mustCheck(t, src, Options{})
	for _, r := range res.Reports {
		if r.Pos.Line != 7 {
			t.Fatalf("warning outside the recursive allocation: %v", r)
		}
	}
	if len(res.Reports) > 1 {
		t.Fatalf("too many recursive warnings: %v", res.Reports)
	}
}

// TestIntegrationRecursiveLeak: the leak inside a recursive function is
// still found.
func TestIntegrationRecursiveLeak(t *testing.T) {
	src := `
type FileWriter;
fun walk(n: int) {
  if (n <= 0) {
    return;
  }
  var w: FileWriter = new FileWriter();
  w.write();
  walk(n - 1);
  return;
}
fun main() {
  walk(input());
  return;
}`
	res := mustCheck(t, src, Options{})
	leaks, _ := kinds(res)
	if leaks == 0 {
		t.Fatalf("recursive leak missed: %v", res.Reports)
	}
}

// TestIntegrationFieldChains: object flows through two hops of heap storage.
func TestIntegrationFieldChains(t *testing.T) {
	src := `
type FileWriter;
type Inner;
type Outer;
fun main() {
  var w: FileWriter = new FileWriter();
  var inner: Inner = new Inner();
  var outer: Outer = new Outer();
  inner.fw = w;
  outer.in = inner;
  var i2: Inner = outer.in;
  var w2: FileWriter = i2.fw;
  w2.write();
  w2.close();
  return;
}`
	res := mustCheck(t, src, Options{})
	if len(res.Reports) != 0 {
		t.Fatalf("two-hop heap close missed: %v", res.Reports)
	}
}

// TestIntegrationExceptionThroughTwoFrames: an exception thrown two frames
// down and caught at the top; the intermediate frame must propagate.
func TestIntegrationExceptionThroughTwoFrames(t *testing.T) {
	src := `
type Exception;
type Socket;
fun inner(n: int) {
  if (n > 10) {
    throw new Exception();
  }
  return;
}
fun middle(n: int) {
  inner(n);
  return;
}
fun main() {
  var s: Socket = new Socket();
  s.bind();
  try {
    middle(input());
    s.close();
  } catch (e) {
    s.close();
  }
  return;
}`
	res := mustCheck(t, src, Options{})
	if len(res.Reports) != 0 {
		t.Fatalf("two-frame exception handling flagged: %v", res.Reports)
	}
}

// TestIntegrationMixedTypesOneFunction: four tracked types in one scope,
// each with a different outcome.
func TestIntegrationMixedTypesOneFunction(t *testing.T) {
	src := `
type FileWriter;
type Lock;
type Socket;
type Exception;
fun main() {
  var w: FileWriter = new FileWriter();
  var l: Lock = new Lock();
  var s: Socket = new Socket();
  l.lock();
  w.write();
  s.bind();
  w.close();
  l.unlock();
  // socket never closed: one leak expected
  if (input() < 0 - 100) {
    throw new Exception();   // uncaught: one leak expected
  }
  return;
}`
	res := mustCheck(t, src, Options{})
	byFSM := map[string]int{}
	for _, r := range res.Reports {
		byFSM[r.FSM]++
	}
	if byFSM["socket"] != 1 || byFSM["exception"] != 1 || byFSM["io"] != 0 || byFSM["lock"] != 0 {
		t.Fatalf("per-checker outcome wrong: %v (%v)", byFSM, res.Reports)
	}
}

// TestIntegrationPathCorrelationAcrossCalls: the guard and the cleanup live
// in different functions but share the same input; the callee's constraint
// must flow through the call edge (parameter-passing equations, §3.2).
func TestIntegrationPathCorrelationAcrossCalls(t *testing.T) {
	src := `
type FileWriter;
fun shouldClose(n: int): int {
  if (n >= 0) {
    return 1;
  }
  return 0;
}
fun main() {
  var w: FileWriter = null;
  var n: int = input();
  if (n >= 0) {
    w = new FileWriter();
    w.write();
  }
  var flag: int = shouldClose(n);
  if (flag > 0) {
    w.close();
  }
  return;
}`
	res := mustCheck(t, src, Options{})
	// flag>0 iff n>=0 iff the writer exists: no feasible leak path. This
	// requires decoding the call's return equation (flag = 1 under n>=0,
	// flag = 0 under n<0).
	if len(res.Reports) != 0 {
		t.Fatalf("interprocedural correlation lost: %v", res.Reports)
	}
}

// TestIntegrationLoopCarriedResource: open before a loop, close after; the
// loop body only uses the resource.
func TestIntegrationLoopCarriedResource(t *testing.T) {
	src := `
type FileWriter;
fun main() {
  var w: FileWriter = new FileWriter();
  var i: int = 0;
  var n: int = input();
  while (i < n) {
    w.write();
    if (i > 50) {
      w.flush();
    }
    i = i + 1;
  }
  w.close();
  return;
}`
	res := mustCheck(t, src, Options{})
	if len(res.Reports) != 0 {
		t.Fatalf("loop-carried resource flagged: %v", res.Reports)
	}
}

// TestIntegrationWitnessesAreReported: warnings carry a decodable witness.
func TestIntegrationWitnessesAreReported(t *testing.T) {
	src := `
type Socket;
fun main() {
  var s: Socket = new Socket();
  s.bind();
  if (input() > 7) {
    s.close();
  }
  return;
}`
	res := mustCheck(t, src, Options{})
	if len(res.Reports) != 1 {
		t.Fatalf("reports: %v", res.Reports)
	}
	r := res.Reports[0]
	if r.Witness == "" || r.Witness == "{}" {
		t.Fatalf("empty witness: %+v", r)
	}
	if r.WitnessConstraint == "" {
		t.Fatal("empty witness constraint")
	}
	// The leak path requires NOT taking the close branch: the constraint
	// should mention the comparison against 7.
	if !strings.Contains(r.WitnessConstraint, "7") {
		t.Fatalf("witness constraint %q should involve the guard", r.WitnessConstraint)
	}
}

// TestIntegrationManyObjectsScale: dozens of independent resources in one
// program; exactly the odd-indexed ones leak.
func TestIntegrationManyObjectsScale(t *testing.T) {
	var b strings.Builder
	b.WriteString("type FileWriter;\nfun main() {\n")
	const n = 30
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "  var w%d: FileWriter = new FileWriter();\n", i)
		fmt.Fprintf(&b, "  w%d.write();\n", i)
		if i%2 == 0 {
			fmt.Fprintf(&b, "  w%d.close();\n", i)
		}
	}
	b.WriteString("  return;\n}\n")
	res := mustCheck(t, b.String(), Options{})
	leaks, errs := kinds(res)
	if leaks != n/2 || errs != 0 {
		t.Fatalf("want %d leaks, got %d leaks %d errors", n/2, leaks, errs)
	}
}

// TestIntegrationOutOfCoreAgreesWithInMemory: a tiny memory budget (heavy
// partitioning) must not change any report.
func TestIntegrationOutOfCoreAgreesWithInMemory(t *testing.T) {
	src := `
type Socket;
type FileWriter;
fun open(): FileWriter {
  var w: FileWriter = new FileWriter();
  return w;
}
fun main() {
  var a: FileWriter = open();
  var b: FileWriter = open();
  a.write();
  a.close();
  b.write();
  var s: Socket = new Socket();
  s.bind();
  if (input() > 0) {
    s.close();
  }
  return;
}`
	// Enough resources to make the graphs non-trivial.
	var extra strings.Builder
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&extra, "  var e%d: FileWriter = open();\n  e%d.write();\n  e%d.close();\n", i, i, i)
	}
	src = strings.Replace(src, "  return;\n}", extra.String()+"  return;\n}", 1)
	big := mustCheck(t, src, Options{MemoryBudget: 256 << 20})
	small := mustCheck(t, src, Options{MemoryBudget: 16 << 10})
	if len(big.Reports) != len(small.Reports) {
		t.Fatalf("budget changed results: %d vs %d\nbig: %v\nsmall: %v",
			len(big.Reports), len(small.Reports), big.Reports, small.Reports)
	}
	for i := range big.Reports {
		if big.Reports[i].Pos != small.Reports[i].Pos || big.Reports[i].Kind != small.Reports[i].Kind {
			t.Fatalf("report %d differs: %v vs %v", i, big.Reports[i], small.Reports[i])
		}
	}
	if small.Alias.Partitions < 2 && small.Dataflow.Partitions < 2 {
		t.Fatalf("small budget did not partition: %+v / %+v", small.Alias, small.Dataflow)
	}
}
