package grapple

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const leaky = `
type FileWriter;
fun main() {
  var w: FileWriter = new FileWriter();
  w.write();
  return;
}`

func TestCheckBuiltins(t *testing.T) {
	res, err := Check(leaky, BuiltinCheckers(), Options{WorkDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 1 || res.Reports[0].Kind != KindLeak {
		t.Fatalf("reports: %v", res.Reports)
	}
	if res.TrackedObjects != 1 {
		t.Fatalf("tracked: %d", res.TrackedObjects)
	}
	if res.Alias.EdgesAfter == 0 || res.Dataflow.EdgesAfter == 0 {
		t.Fatal("phase stats empty")
	}
}

func TestCheckFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prog.ml")
	if err := os.WriteFile(path, []byte(leaky), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := CheckFile(path, BuiltinCheckers(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 1 {
		t.Fatalf("reports: %v", res.Reports)
	}
	if _, err := CheckFile(filepath.Join(t.TempDir(), "missing.ml"), nil, Options{}); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestCustomFSMAPI(t *testing.T) {
	f, err := NewFSM("session", "Session", "Fresh", "Active", "Ended")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetInit("Fresh"); err != nil {
		t.Fatal(err)
	}
	if err := f.SetAccept("Fresh", "Ended"); err != nil {
		t.Fatal(err)
	}
	for _, tr := range [][3]string{
		{"Fresh", "new", "Fresh"},
		{"Fresh", "begin", "Active"},
		{"Active", "use", "Active"},
		{"Active", "end", "Ended"},
	} {
		if err := f.AddTransition(tr[0], tr[1], tr[2]); err != nil {
			t.Fatal(err)
		}
	}
	if f.Name() != "session" || f.Type() != "Session" {
		t.Fatal("accessors wrong")
	}
	src := `
type Session;
fun main() {
  var s: Session = new Session();
  s.begin();
  s.use();
  return;
}`
	res, err := Check(src, []*FSM{f}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 1 || res.Reports[0].Kind != KindLeak {
		t.Fatalf("unended session must leak: %v", res.Reports)
	}
}

func TestParseFSMsAPI(t *testing.T) {
	fs, err := ParseFSMs(`
fsm io for FileWriter {
  states Init Open Close;
  init Init;
  accept Init Close;
  new:   Init -> Open;
  close: Open -> Close;
}`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(leaky, fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// write is undefined for this stripped FSM: Error transition expected.
	if len(res.Reports) != 1 || res.Reports[0].Kind != KindError {
		t.Fatalf("reports: %v", res.Reports)
	}
}

func TestBindOption(t *testing.T) {
	src := `
type AuditLog;
fun main() {
  var l: AuditLog = new AuditLog();
  l.write();
  return;
}`
	res, err := Check(src, BuiltinCheckers(), Options{Bind: map[string]string{"AuditLog": "io"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 1 {
		t.Fatalf("bound type not tracked: %v", res.Reports)
	}
}

func TestParseErrorSurfaces(t *testing.T) {
	_, err := Check("fun main( {", BuiltinCheckers(), Options{})
	if err == nil || !strings.Contains(err.Error(), "parse") {
		t.Fatalf("want parse error, got %v", err)
	}
}

func TestDisableCacheStillCorrect(t *testing.T) {
	a, err := Check(leaky, BuiltinCheckers(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Check(leaky, BuiltinCheckers(), Options{DisableConstraintCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Reports) != len(b.Reports) {
		t.Fatal("cache must not change results")
	}
	if b.Dataflow.CacheLookups != 0 {
		t.Fatal("cache was consulted while disabled")
	}
}

func TestQueryPointsTo(t *testing.T) {
	src := `
type R;
fun pick(a: R, b: R, n: int): R {
  if (n > 0) {
    return a;
  }
  return b;
}
fun main() {
  var x: R = new R();
  var y: R = new R();
  var z: R = pick(x, y, input());
  return;
}`
	res, err := Check(src, BuiltinCheckers(), Options{RecordPointsTo: true})
	if err != nil {
		t.Fatal(err)
	}
	facts := res.QueryPointsTo("main", "z")
	// z may reference both allocations (via pick's two returns).
	types := map[int]bool{}
	for _, f := range facts {
		if f.ObjType != "R" {
			t.Fatalf("bad fact: %+v", f)
		}
		types[f.ObjPos.Line] = true
	}
	if len(types) != 2 {
		t.Fatalf("z should point to 2 allocation sites, got %d (%+v)", len(types), facts)
	}
	// Without the option, nothing is recorded.
	res2, err := Check(src, BuiltinCheckers(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.PointsTo) != 0 {
		t.Fatal("facts recorded without opt-in")
	}
}
