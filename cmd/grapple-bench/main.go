// Command grapple-bench regenerates the paper's evaluation artifacts
// (DESIGN.md §3) over the simulated subjects:
//
//	grapple-bench -table 1          subject characteristics (Table 1)
//	grapple-bench -table 2          TP/FP per checker (Table 2)
//	grapple-bench -table 3          graph sizes and times (Table 3)
//	grapple-bench -figure 9         cost breakdown (Figure 9)
//	grapple-bench -table 4          constraint-caching ablation (Table 4)
//	grapple-bench -table 5          naive string-engine comparison (Table 5)
//	grapple-bench -table oom        traditional in-memory OOM result (§5.3)
//	grapple-bench -table batch      batch-scheduler scaling vs worker count
//	grapple-bench -table io         partition-store traffic, prefetch on/off
//	grapple-bench -table resume     journal overhead and kill-at-midpoint resume latency
//	grapple-bench -table obs        observability (tracing + progress) overhead
//	grapple-bench -table prune      infeasible-branch pruning ablation
//	grapple-bench -table slice      property-relevance slicing ablation
//	grapple-bench -table gofront    synthetic subjects vs a real Go package
//	grapple-bench -table hotpath    zero-copy decode and join-pooling ablations
//	grapple-bench -table devirt     devirtualization rate and concurrency-lint cost
//	grapple-bench -all              everything above
//
// -subjects restricts the subject set (comma separated), -mem sets the
// engine memory budget, -naive-timeout bounds each naive run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/grapple-system/grapple/internal/bench"
)

func main() {
	table := flag.String("table", "", "table to regenerate: 1|2|3|4|5|oom|prune|slice|batch|io|resume|obs|gofront|hotpath|devirt")
	hotpathJSON := flag.String("hotpath-json", "", "also write -table hotpath rows to this JSON file")
	goDir := flag.String("godir", "internal/storage", "real-Go package for -table gofront")
	figure := flag.String("figure", "", "figure to regenerate: 9")
	all := flag.Bool("all", false, "regenerate every table and figure")
	subjects := flag.String("subjects", "", "comma-separated subject subset")
	mem := flag.Int64("mem", 8<<20, "engine memory budget in bytes")
	naiveTimeout := flag.Duration("naive-timeout", 2*time.Minute, "per-subject naive-engine timeout (DNF beyond)")
	flag.Parse()

	names := bench.SubjectNames()
	if *subjects != "" {
		names = strings.Split(*subjects, ",")
	}
	if !*all && *table == "" && *figure == "" {
		fmt.Fprintln(os.Stderr, "usage: grapple-bench -all | -table 1|2|3|4|5|oom|prune|slice|batch|io|resume|obs|gofront|hotpath|devirt | -figure 9")
		os.Exit(2)
	}

	want := func(t string) bool { return *all || *table == t }
	opts := bench.RunOptions{MemoryBudget: *mem}

	if want("1") {
		fmt.Println(bench.Table1())
	}

	var runs []*bench.SubjectRun
	needRuns := want("2") || want("3") || *all || *figure == "9"
	if needRuns {
		for _, name := range names {
			fmt.Fprintf(os.Stderr, "analyzing %s...\n", name)
			run, err := bench.RunSubject(name, opts)
			if err != nil {
				fatal(err)
			}
			runs = append(runs, run)
		}
	}
	if want("2") {
		fmt.Println(bench.Table2(runs))
	}
	if want("3") {
		fmt.Println(bench.Table3(runs))
	}
	if *all || *figure == "9" {
		fmt.Println(bench.Figure9(runs))
	}
	if want("4") {
		fmt.Fprintln(os.Stderr, "running caching ablation (each subject twice)...")
		out, _, err := bench.Table4(names, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}
	if want("5") {
		fmt.Fprintln(os.Stderr, "running naive string-engine comparison...")
		out, _, err := bench.Table5(names, "", 0, *naiveTimeout)
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}
	if want("prune") {
		fmt.Fprintln(os.Stderr, "running pruning ablation (each subject twice)...")
		out, _, err := bench.PruneAblation(names, "")
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}
	if want("slice") {
		fmt.Fprintln(os.Stderr, "running slicing ablation (each subject x each property, twice)...")
		out, _, err := bench.SliceAblation(names, "")
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}
	if want("gofront") {
		fmt.Fprintln(os.Stderr, "running gofront bridge comparison (synthetic subjects + real Go)...")
		out, _, err := bench.GofrontTable(names, *goDir, "")
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}
	if want("devirt") {
		fmt.Fprintln(os.Stderr, "running devirtualization + concurrency-lint measurement (real Go packages)...")
		out, _, err := bench.DevirtTable([]string{
			"testdata/gofront", "testdata/ablation",
			"internal/storage", "internal/engine", "internal/trace",
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}
	if want("io") {
		fmt.Fprintln(os.Stderr, "running partition-store I/O measurement (each subject twice)...")
		out, _, err := bench.IOTable(names, "")
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}
	if want("hotpath") {
		fmt.Fprintln(os.Stderr, "running hot-path ablations (decode modes + join pooling, each subject)...")
		out, rows, err := bench.HotpathTable(names, "")
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
		if *hotpathJSON != "" {
			if err := bench.WriteHotpathJSON(*hotpathJSON, rows); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *hotpathJSON)
		}
	}
	if want("resume") {
		fmt.Fprintln(os.Stderr, "running checkpoint/resume measurement (each subject four times)...")
		out, _, err := bench.ResumeTable(names, "")
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}
	if want("obs") {
		fmt.Fprintln(os.Stderr, "running observability-overhead measurement (each subject six times)...")
		out, _, err := bench.ObsTable(names, "")
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}
	if want("batch") {
		fmt.Fprintln(os.Stderr, "running batch-scheduler scaling (each subject x each property, 5 configs)...")
		out, _, err := bench.BatchScaling(names, "")
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}
	if *all || *table == "oom" {
		fmt.Fprintln(os.Stderr, "running traditional in-memory baseline...")
		out, err := bench.TableOOM(names, 0, *naiveTimeout)
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "grapple-bench:", err)
	os.Exit(1)
}
