// Command grapple-gen emits the evaluation's synthetic subject programs
// (DESIGN.md §1): MiniLang sources with a ground-truth manifest of seeded
// bugs and expected false positives.
//
// Usage:
//
//	grapple-gen -subject hbase-sim -o out/
//	grapple-gen -all -o out/
//	grapple-gen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/grapple-system/grapple/internal/workload"
)

func main() {
	subject := flag.String("subject", "", "subject profile to generate")
	all := flag.Bool("all", false, "generate every subject")
	list := flag.Bool("list", false, "list available subjects")
	out := flag.String("o", ".", "output directory")
	flag.Parse()

	if *list {
		for _, p := range workload.Profiles() {
			s := workload.Generate(p)
			fmt.Printf("%-15s %-12s %6d LoC  %3d seeded  %s\n",
				p.Name, p.Version, s.LoC, len(s.Seeded), p.Description)
		}
		return
	}

	var names []string
	switch {
	case *all:
		for _, p := range workload.Profiles() {
			names = append(names, p.Name)
		}
	case *subject != "":
		names = []string{*subject}
	default:
		fmt.Fprintln(os.Stderr, "usage: grapple-gen -subject NAME | -all | -list")
		os.Exit(2)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, name := range names {
		p, ok := workload.ProfileByName(name)
		if !ok {
			fatal(fmt.Errorf("unknown subject %q (try -list)", name))
		}
		s := workload.Generate(p)
		srcPath := filepath.Join(*out, name+".ml")
		if err := os.WriteFile(srcPath, []byte(s.Source), 0o644); err != nil {
			fatal(err)
		}
		var m strings.Builder
		fmt.Fprintf(&m, "# ground truth for %s (line type checker kind expectFP)\n", name)
		for _, sd := range s.Seeded {
			fmt.Fprintf(&m, "%d %s %s %s %v\n", sd.Line, sd.Type, sd.Checker, sd.Kind, sd.ExpectFP)
		}
		fmt.Fprintf(&m, "# lint ground truth (line code): `grapple lint` must report exactly these\n")
		for _, ls := range s.LintSeeded {
			fmt.Fprintf(&m, "%d %s\n", ls.Line, ls.Code)
		}
		manifestPath := filepath.Join(*out, name+".manifest")
		if err := os.WriteFile(manifestPath, []byte(m.String()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d LoC) and %s (%d seeds, %d lint seeds)\n",
			srcPath, s.LoC, manifestPath, len(s.Seeded), len(s.LintSeeded))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "grapple-gen:", err)
	os.Exit(2)
}
