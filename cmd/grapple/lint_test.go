package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const defectiveSrc = `
type FileWriter;
fun main() {
  var c: int = input();
  var u: int;
  var x: int = u + 1;
  var w: FileWriter = new FileWriter();
  if (0 > 1) {
    c = c + 7;
  }
  if (x > c) {
    return;
  }
  return;
}
`

func TestLintCleanExitsZero(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "p.ml", `
type FileWriter;
fun main() {
  var w: FileWriter = new FileWriter();
  w.close();
  return;
}
`)
	var out, errb bytes.Buffer
	code, err := run([]string{"lint", prog}, &out, &errb)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v out=%q", code, err, out.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean program produced output: %q", out.String())
	}
}

func TestLintFindingsExitOne(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "p.ml", defectiveSrc)
	var out, errb bytes.Buffer
	code, err := run([]string{"lint", prog}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code %d, want 1\n%s", code, out.String())
	}
	for _, want := range []string{"RD001", "CF002", "UA001", "p.ml:6:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q in output:\n%s", want, out.String())
		}
	}
}

func TestLintJSONOutput(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "p.ml", defectiveSrc)
	var out, errb bytes.Buffer
	code, err := run([]string{"lint", "-json", prog}, &out, &errb)
	if err != nil || code != 1 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("want >=3 JSON findings, got %d:\n%s", len(lines), out.String())
	}
	sawRD := false
	for _, line := range lines {
		var d jsonDiagnostic
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("bad json %q: %v", line, err)
		}
		if d.File != prog || d.Line <= 0 || d.Code == "" || d.Func != "main" {
			t.Fatalf("incomplete diagnostic: %+v", d)
		}
		if d.Code == "RD001" {
			sawRD = true
			if d.Line != 6 {
				t.Fatalf("RD001 line %d, want 6", d.Line)
			}
		}
	}
	if !sawRD {
		t.Fatalf("no RD001 in %s", out.String())
	}
}

func TestLintMultiFileLocations(t *testing.T) {
	dir := t.TempDir()
	lib := writeFile(t, dir, "lib.ml", `
type FileWriter;
fun helper(w: FileWriter) {
  w.close();
  return;
}
`)
	mainSrc := writeFile(t, dir, "main.ml", `
fun main() {
  var w: FileWriter = new FileWriter();
  helper(w);
  var u: int;
  var x: int = u + 1;
  if (x > 0) {
    return;
  }
  return;
}
`)
	var out, errb bytes.Buffer
	code, err := run([]string{"lint", lib, mainSrc}, &out, &errb)
	if err != nil || code != 1 {
		t.Fatalf("code=%d err=%v out=%q", code, err, out.String())
	}
	// The defect is in main.ml line 6; the diagnostic must map back to it.
	if !strings.Contains(out.String(), "main.ml:6:") {
		t.Fatalf("cross-file location mapping wrong: %q", out.String())
	}
}

func TestLintRulesFilter(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "p.ml", defectiveSrc)
	var out, errb bytes.Buffer
	code, err := run([]string{"lint", "-rules", "RD001,UA001", prog}, &out, &errb)
	if err != nil || code != 1 {
		t.Fatalf("code=%d err=%v out=%q", code, err, out.String())
	}
	for _, want := range []string{"RD001", "UA001"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q in filtered output:\n%s", want, out.String())
		}
	}
	// CF002 fires on defectiveSrc but was not requested.
	if strings.Contains(out.String(), "CF002") {
		t.Errorf("unrequested CF002 in filtered output:\n%s", out.String())
	}
}

func TestLintUnknownRuleExitsTwo(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "p.ml", defectiveSrc)
	var out, errb bytes.Buffer
	code, err := run([]string{"lint", "-rules", "ND001,XX999", prog}, &out, &errb)
	if code != 2 {
		t.Fatalf("unknown-rule exit code %d, want 2", code)
	}
	if err == nil || !strings.Contains(err.Error(), "unknown lint rule") {
		t.Fatalf("unknown-rule error %v, want mention of unknown lint rule", err)
	}
}

func TestLintUsageAndParseErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code, _ := run([]string{"lint"}, &out, &errb); code != 2 {
		t.Fatalf("no-args exit code %d", code)
	}
	if code, _ := run([]string{"lint", "/nonexistent/file.ml"}, &out, &errb); code != 2 {
		t.Fatalf("missing-file exit code %d", code)
	}
	dir := t.TempDir()
	bad := writeFile(t, dir, "bad.ml", "fun main( {")
	if code, _ := run([]string{"lint", bad}, &out, &errb); code != 2 {
		t.Fatalf("parse-error exit code %d", code)
	}
}

func TestRunNoPruneFlag(t *testing.T) {
	dir := t.TempDir()
	// A program whose constant branch gives the pruner something to remove;
	// reports must be identical either way.
	prog := writeFile(t, dir, "p.ml", `
type FileWriter;
fun main() {
  var mode: int = 3;
  var w: FileWriter = new FileWriter();
  if (mode > 1) {
    w.write();
  } else {
    w.write();
  }
  return;
}
`)
	// Stats land on stderr now, so each run gets its own stderr buffer.
	var pruned, unpruned, prunedErr, unprunedErr bytes.Buffer
	codeP, errP := run([]string{"-stats", prog}, &pruned, &prunedErr)
	codeU, errU := run([]string{"-stats", "-noprune", prog}, &unpruned, &unprunedErr)
	if errP != nil || errU != nil || codeP != 1 || codeU != 1 {
		t.Fatalf("codes=%d/%d errs=%v/%v", codeP, codeU, errP, errU)
	}
	if !strings.Contains(prunedErr.String(), "pruned branches: 1") {
		t.Fatalf("pruned run stats: %q", prunedErr.String())
	}
	if !strings.Contains(unprunedErr.String(), "pruned branches: 0") {
		t.Fatalf("unpruned run stats: %q", unprunedErr.String())
	}
	reportLine := func(s string) string {
		for _, line := range strings.Split(s, "\n") {
			if strings.Contains(line, "[io]") {
				return line
			}
		}
		return ""
	}
	if rp, ru := reportLine(pruned.String()), reportLine(unpruned.String()); rp == "" || rp != ru {
		t.Fatalf("reports differ with pruning:\n  pruned:   %q\n  unpruned: %q", rp, ru)
	}
}

func TestRunNoSliceFlag(t *testing.T) {
	dir := t.TempDir()
	// tune touches no tracked object, so the slicer drops it; reports must be
	// identical either way.
	prog := writeFile(t, dir, "p.ml", `
type FileWriter;
fun tune(n: int) {
  var k: int = n + 2;
  k = k * 3;
  return;
}
fun main() {
  var cfg: int = input();
  tune(cfg);
  var w: FileWriter = new FileWriter();
  if (cfg > 4) {
    w.write();
  }
  return;
}
`)
	// Stats land on stderr now, so each run gets its own stderr buffer.
	var sliced, unsliced, slicedErr, unslicedErr bytes.Buffer
	codeS, errS := run([]string{"-stats", prog}, &sliced, &slicedErr)
	codeU, errU := run([]string{"-stats", "-noslice", prog}, &unsliced, &unslicedErr)
	if errS != nil || errU != nil || codeS != 1 || codeU != 1 {
		t.Fatalf("codes=%d/%d errs=%v/%v", codeS, codeU, errS, errU)
	}
	if !strings.Contains(slicedErr.String(), "sliced functions: 1") {
		t.Fatalf("sliced run stats: %q", slicedErr.String())
	}
	if !strings.Contains(unslicedErr.String(), "sliced functions: 0") {
		t.Fatalf("unsliced run stats: %q", unslicedErr.String())
	}
	reportLine := func(s string) string {
		for _, line := range strings.Split(s, "\n") {
			if strings.Contains(line, "[io]") {
				return line
			}
		}
		return ""
	}
	if rs, ru := reportLine(sliced.String()), reportLine(unsliced.String()); rs == "" || rs != ru {
		t.Fatalf("reports differ with slicing:\n  sliced:   %q\n  unsliced: %q", rs, ru)
	}
}
