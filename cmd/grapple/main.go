// Command grapple checks MiniLang programs against finite-state property
// specifications and reports FSM violations (paper §2.2's workflow as a
// command-line tool).
//
// Usage:
//
//	grapple [run] [flags] program.ml [more.ml ...]
//	grapple run -pack <name> [flags] ./gopkg | files.go ...
//	grapple run -packs
//	grapple lint [flags] program.ml [more.ml ...]
//	grapple lint -pack <name> [flags] ./gopkg
//	grapple batch [flags] [path ...]
//
// Multiple MiniLang source files are concatenated into one compilation
// unit. A directory or .go arguments select Go mode: the package is lowered
// through the gofront bridge using the selected property packs' binding
// rules and checked by the unchanged pipeline, with reports mapped back to
// Go file:line (docs/gofront.md). The batch subcommand instead treats every
// path (and every -profile workload subject) as its own compilation unit
// and checks the whole set under a bounded-worker scheduler with a shared
// constraint cache, emitting one deterministic merged report stream; see
// docs/batch.md.
//
// Flags:
//
//	-fsm file      FSM spec file (repeatable); default: built-in checkers
//	-pack name     property pack for Go input (repeatable)
//	-packs         list the property-pack library and exit
//	-workdir dir   partition directory (default: temporary)
//	-mem bytes     engine memory budget (default 256 MiB)
//	-unroll n      loop unroll depth (default 2)
//	-json          emit reports as JSON (one object per line)
//	-stats         print phase statistics and the cost breakdown (stderr)
//	-v             verbose reports (witness encodings and constraints)
//	-nodevirt      disable interface-call devirtualization (Go input)
//	-nomhp         disable spawn lowering + may-happen-in-parallel (Go input)
//	-journal       checkpoint engine state to -workdir every superstep
//	-resume        continue a killed -journal run from its last checkpoint
//	-trace file    write a Chrome trace-event JSON file (plus .events.jsonl)
//	-progress dur  heartbeat line to stderr (and status.json under -workdir)
//	-pprof addr    serve net/http/pprof and live progress counters
//
// -journal/-resume require -workdir and guarantee that a run killed at any
// superstep boundary resumes to a byte-identical report; a missing, corrupt,
// or stale journal makes -resume exit 2 instead of silently starting cold
// (docs/resume.md). `grapple batch` accepts the same pair at instance
// granularity: -resume reruns only the instances a previous -journal batch
// did not finish.
//
// -stats writes to stderr so piped -json report streams on stdout stay
// clean; -stats -json renders the statistics as one JSON object instead.
// -trace/-progress/-pprof are observation-only — reports are byte-identical
// with them on or off (docs/observability.md).
//
// Exit status: 0 no warnings, 1 warnings found, 2 usage/analysis error.
package main

import (
	"fmt"
	"os"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "grapple:", err)
		if code == 0 {
			code = 2
		}
	}
	os.Exit(code)
}
