package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunBadSpecExitsTwo(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "bad.spec", `
fsm broken for T {
  states A;
  init Nope;
}
`)
	prog := writeFile(t, dir, "p.ml", leakySrc)
	var out, errb bytes.Buffer
	code, err := run([]string{"run", "-fsm", spec, prog}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit code %d, want 2 (err=%v)", code, err)
	}
	if err == nil || !strings.Contains(err.Error(), "fsm spec") {
		t.Fatalf("want fsm spec error, got %v", err)
	}
}

const leakyGoSrc = `package p

import "os"

func Leak(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	f.Read(nil)
	return nil
}
`

const cleanGoSrc = `package p

import "os"

func Clean(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	f.Read(nil)
	return nil
}
`

func TestRunGoLeak(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "leak.go", leakyGoSrc)
	var out, errb bytes.Buffer
	code, err := run([]string{"run", "-pack", "file-handle", dir}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code %d, want 1; out=%q", code, out.String())
	}
	if !strings.Contains(out.String(), "leak.go:6:") {
		t.Fatalf("report not mapped to Go source: %q", out.String())
	}
}

func TestRunGoClean(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "clean.go", cleanGoSrc)
	var out, errb bytes.Buffer
	code, err := run([]string{"run", "-pack", "file-handle", "-pack", "use-after-release", dir}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d, want 0; out=%q", code, out.String())
	}
}

func TestRunGoWithoutPackExitsTwo(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "leak.go", leakyGoSrc)
	var out, errb bytes.Buffer
	code, _ := run([]string{"run", dir}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "requires -pack") {
		t.Fatalf("stderr: %q", errb.String())
	}
}

func TestRunListPacks(t *testing.T) {
	var out, errb bytes.Buffer
	code, err := run([]string{"-packs"}, &out, &errb)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	for _, name := range []string{"file-handle", "use-after-release", "mutex", "context-cancel", "http-body", "sql-rows"} {
		if !strings.Contains(out.String(), name) {
			t.Fatalf("pack %s missing from listing: %q", name, out.String())
		}
	}
}

func TestLintGoPackage(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "leak.go", leakyGoSrc)
	var out, errb bytes.Buffer
	code, err := run([]string{"lint", "-pack", "file-handle", dir}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 && code != 1 {
		t.Fatalf("exit code %d, want 0 or 1", code)
	}
	if code == 1 && !strings.Contains(out.String(), "leak.go:") {
		t.Fatalf("diagnostics not mapped to Go source: %q", out.String())
	}
}
