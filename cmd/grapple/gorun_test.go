package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBadSpecExitsTwo(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "bad.spec", `
fsm broken for T {
  states A;
  init Nope;
}
`)
	prog := writeFile(t, dir, "p.ml", leakySrc)
	var out, errb bytes.Buffer
	code, err := run([]string{"run", "-fsm", spec, prog}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit code %d, want 2 (err=%v)", code, err)
	}
	if err == nil || !strings.Contains(err.Error(), "fsm spec") {
		t.Fatalf("want fsm spec error, got %v", err)
	}
}

const leakyGoSrc = `package p

import "os"

func Leak(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	f.Read(nil)
	return nil
}
`

const cleanGoSrc = `package p

import "os"

func Clean(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	f.Read(nil)
	return nil
}
`

func TestRunGoLeak(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "leak.go", leakyGoSrc)
	var out, errb bytes.Buffer
	code, err := run([]string{"run", "-pack", "file-handle", dir}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code %d, want 1; out=%q", code, out.String())
	}
	if !strings.Contains(out.String(), "leak.go:6:") {
		t.Fatalf("report not mapped to Go source: %q", out.String())
	}
}

func TestRunGoClean(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "clean.go", cleanGoSrc)
	var out, errb bytes.Buffer
	code, err := run([]string{"run", "-pack", "file-handle", "-pack", "use-after-release", dir}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d, want 0; out=%q", code, out.String())
	}
}

func TestRunGoWithoutPackExitsTwo(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "leak.go", leakyGoSrc)
	var out, errb bytes.Buffer
	code, _ := run([]string{"run", dir}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "requires -pack") {
		t.Fatalf("stderr: %q", errb.String())
	}
}

func TestRunListPacks(t *testing.T) {
	var out, errb bytes.Buffer
	code, err := run([]string{"-packs"}, &out, &errb)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	for _, name := range []string{"file-handle", "use-after-release", "mutex", "context-cancel", "http-body", "sql-rows"} {
		if !strings.Contains(out.String(), name) {
			t.Fatalf("pack %s missing from listing: %q", name, out.String())
		}
	}
}

func TestLintGoPackage(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "leak.go", leakyGoSrc)
	var out, errb bytes.Buffer
	code, err := run([]string{"lint", "-pack", "file-handle", dir}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 && code != 1 {
		t.Fatalf("exit code %d, want 0 or 1", code)
	}
	if code == 1 && !strings.Contains(out.String(), "leak.go:") {
		t.Fatalf("diagnostics not mapped to Go source: %q", out.String())
	}
}

func TestRunGoUnknownPackExitsTwoListingPacks(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "leak.go", leakyGoSrc)
	var out, errb bytes.Buffer
	code, err := run([]string{"run", "-pack", "no-such-pack", dir}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit code %d, want 2 (err=%v)", code, err)
	}
	if err == nil || !strings.Contains(err.Error(), `unknown property pack "no-such-pack"`) {
		t.Fatalf("error %v, want unknown property pack", err)
	}
	// The error must enumerate the library so the user can correct the name.
	for _, name := range []string{"file-handle", "mutex", "context-cancel"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("pack %s missing from error: %v", name, err)
		}
	}
}

func TestLintGoUnknownPackExitsTwoListingPacks(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "leak.go", leakyGoSrc)
	var out, errb bytes.Buffer
	code, err := run([]string{"lint", "-pack", "bogus", dir}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit code %d, want 2 (err=%v)", code, err)
	}
	if err == nil || !strings.Contains(err.Error(), `unknown property pack "bogus"`) ||
		!strings.Contains(err.Error(), "file-handle") {
		t.Fatalf("error %v, want unknown pack with library listing", err)
	}
}

func TestLintUnknownRuleListsKnownCodes(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "leak.go", leakyGoSrc)
	var out, errb bytes.Buffer
	code, err := run([]string{"lint", "-rules", "ZZ123", dir}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit code %d, want 2 (err=%v)", code, err)
	}
	if err == nil || !strings.Contains(err.Error(), `unknown lint rule "ZZ123"`) {
		t.Fatalf("error %v, want unknown lint rule", err)
	}
	// The listing must include the concurrency rules alongside the classics.
	for _, want := range []string{"ND001", "LK001", "GR001", "GR002"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("rule %s missing from error: %v", want, err)
		}
	}
}

func TestRunGoDevirtAndMHPFlags(t *testing.T) {
	// -nodevirt -nomhp must be accepted and reproduce the baseline result
	// byte-for-byte on interface/goroutine-free input (ablation identity on
	// richer corpora is pinned in the library tests).
	dir := t.TempDir()
	writeFile(t, dir, "leak.go", leakyGoSrc)
	var on, off, errb bytes.Buffer
	codeOn, err := run([]string{"run", "-pack", "file-handle", dir}, &on, &errb)
	if err != nil {
		t.Fatal(err)
	}
	codeOff, err := run([]string{"run", "-pack", "file-handle", "-nodevirt", "-nomhp", dir}, &off, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if codeOn != codeOff || on.String() != off.String() {
		t.Fatalf("ablated run diverged: code %d vs %d\non:  %q\noff: %q",
			codeOn, codeOff, on.String(), off.String())
	}
}

// TestAblationIdentity pins the ablation contract on a subject where both
// passes bite: testdata/ablation uses interface dispatch and shares a
// tracked file with a goroutine. testdata/golden/ablation.json is the
// report stream the pipeline produced BEFORE the devirtualization and MHP
// passes existed; with -nodevirt -nomhp the new pipeline must reproduce it
// byte for byte. The default run must differ — the MHP widening recognizes
// the goroutine-shared file and withdraws the leak-at-exit verdict the old
// pipeline (wrongly certain about the spawn-free world it saw) reported.
func TestAblationIdentity(t *testing.T) {
	subject := filepath.Join("..", "..", "testdata", "ablation")
	args := []string{"run", "-pack", "file-handle", "-pack", "mutex", "-json"}

	var off, errb bytes.Buffer
	codeOff, err := run(append(args, "-nodevirt", "-nomhp", subject), &off, &errb)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", "ablation.json"))
	if err != nil {
		t.Fatal(err)
	}
	if codeOff != 1 || off.String() != string(want) {
		t.Fatalf("ablated run does not match the pre-pass golden (code %d):\ngot:  %q\nwant: %q",
			codeOff, off.String(), string(want))
	}

	var on bytes.Buffer
	codeOn, err := run(append(args, subject), &on, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if codeOn != 0 || on.Len() != 0 {
		t.Fatalf("default run should suppress the shared-file leak (code %d):\n%s",
			codeOn, on.String())
	}
}
