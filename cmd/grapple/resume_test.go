package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunResumeRequiresWorkdir(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "p.ml", leakySrc)
	for _, flag := range []string{"-resume", "-journal"} {
		var out, errb bytes.Buffer
		code, err := run([]string{flag, prog}, &out, &errb)
		if code != 2 || err == nil || !strings.Contains(err.Error(), "-workdir") {
			t.Fatalf("%s without -workdir: code=%d err=%v", flag, code, err)
		}
	}
}

func TestRunResumeMissingJournalExits2(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "p.ml", leakySrc)
	var out, errb bytes.Buffer
	code, err := run([]string{"-resume", "-workdir", t.TempDir(), prog}, &out, &errb)
	if code != 2 || err == nil || !strings.Contains(err.Error(), "journal") {
		t.Fatalf("-resume with no journal: code=%d err=%v", code, err)
	}
}

// TestRunJournalThenResume journals a complete run, then resumes it: the
// resumed invocation replays the completed checkpoints and must print the
// same reports with the same exit code.
func TestRunJournalThenResume(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "p.ml", leakySrc)
	work := t.TempDir()
	var out1, err1 bytes.Buffer
	code1, err := run([]string{"-journal", "-workdir", work, prog}, &out1, &err1)
	if err != nil || code1 != 1 {
		t.Fatalf("journaled run: code=%d err=%v", code1, err)
	}
	var out2, err2 bytes.Buffer
	code2, err := run([]string{"-resume", "-workdir", work, prog}, &out2, &err2)
	if err != nil || code2 != 1 {
		t.Fatalf("resumed run: code=%d err=%v", code2, err)
	}
	if out1.String() != out2.String() {
		t.Fatalf("resumed output differs:\n%q\nvs\n%q", out2.String(), out1.String())
	}
}

func TestBatchResumeFlagValidation(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "p.ml", leakySrc)
	var out, errb bytes.Buffer
	code, err := run([]string{"batch", "-resume", prog}, &out, &errb)
	if code != 2 || err == nil || !strings.Contains(err.Error(), "-workdir") {
		t.Fatalf("batch -resume without -workdir: code=%d err=%v", code, err)
	}
}

// TestBatchJournalThenResume journals a complete batch, then resumes it:
// every instance restores from the completion log and the merged JSON
// stream must be byte-identical.
func TestBatchJournalThenResume(t *testing.T) {
	dir := t.TempDir()
	a := writeFile(t, dir, "a.ml", leakySrc)
	b := writeFile(t, dir, "b.ml", `
type Socket;
fun main() {
  var s: Socket = new Socket();
  s.connect();
  return;
}
`)
	work := t.TempDir()
	var out1, err1 bytes.Buffer
	code1, err := run([]string{"batch", "-json", "-journal", "-workdir", work, a, b}, &out1, &err1)
	if err != nil || code1 != 1 {
		t.Fatalf("journaled batch: code=%d err=%v stderr=%s", code1, err, err1.String())
	}
	var out2, err2 bytes.Buffer
	code2, err := run([]string{"batch", "-json", "-resume", "-workdir", work, a, b}, &out2, &err2)
	if err != nil || code2 != 1 {
		t.Fatalf("resumed batch: code=%d err=%v stderr=%s", code2, err, err2.String())
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Fatalf("resumed merged stream differs:\n%q\nvs\n%q", out2.String(), out1.String())
	}
}
