package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	grapple "github.com/grapple-system/grapple"
	"github.com/grapple-system/grapple/internal/workload"
)

// jsonBatchReport is the machine-readable merged-stream format
// (`grapple batch -json`). Field order is fixed and reports are totally
// ordered, so the output is byte-identical across worker counts and
// submission orders.
type jsonBatchReport struct {
	Subject           string   `json:"subject"`
	Group             string   `json:"group"`
	Line              int      `json:"line"`
	Col               int      `json:"col"`
	FSM               string   `json:"fsm"`
	Kind              string   `json:"kind"`
	Type              string   `json:"type"`
	States            []string `json:"states"`
	Object            string   `json:"object,omitempty"`
	Witness           string   `json:"witness,omitempty"`
	WitnessConstraint string   `json:"witnessConstraint,omitempty"`
}

// collectSubjects resolves CLI operands into batch subjects: .ml files are
// one subject each, directories contribute every .ml file under them
// (sorted), and -profile names add generated workload subjects.
func collectSubjects(paths, profiles []string) ([]grapple.Subject, error) {
	var subjects []grapple.Subject
	addFile := func(path string) error {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		subjects = append(subjects, grapple.Subject{Name: path, Source: string(data)})
		return nil
	}
	for _, path := range paths {
		info, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			if err := addFile(path); err != nil {
				return nil, err
			}
			continue
		}
		var files []string
		err = filepath.WalkDir(path, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(p, ".ml") {
				files = append(files, p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		sort.Strings(files)
		if len(files) == 0 {
			return nil, fmt.Errorf("%s: no .ml files", path)
		}
		for _, f := range files {
			if err := addFile(f); err != nil {
				return nil, err
			}
		}
	}
	for _, name := range profiles {
		p, ok := workload.ProfileByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown workload profile %q", name)
		}
		s := workload.Generate(p)
		subjects = append(subjects, grapple.Subject{Name: s.Name, Source: s.Source})
	}
	seen := map[string]bool{}
	for _, s := range subjects {
		if seen[s.Name] {
			return nil, fmt.Errorf("duplicate subject %q", s.Name)
		}
		seen[s.Name] = true
	}
	return subjects, nil
}

// runBatch implements `grapple batch`: many subjects × FSM property groups
// under the bounded-worker scheduler, one shared constraint cache, one
// deterministic merged report stream. Exit 0 clean, 1 warnings, 2 usage/
// analysis error (including any failed instance).
func runBatch(args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("grapple batch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var fsmFiles, profiles multiFlag
	fs.Var(&fsmFiles, "fsm", "FSM specification file (repeatable)")
	fs.Var(&profiles, "profile", "add a generated workload profile as a subject (repeatable)")
	workers := fs.Int("workers", 0, "concurrent checking instances (default GOMAXPROCS)")
	timeout := fs.Duration("timeout", 0, "per-instance timeout (0 = none)")
	workDir := fs.String("workdir", "", "partition directory root (temporary if empty)")
	mem := fs.Int64("mem", 0, "per-instance engine memory budget in bytes")
	unroll := fs.Int("unroll", 0, "static loop unroll depth")
	jsonOut := fs.Bool("json", false, "emit merged reports as JSON lines")
	stats := fs.Bool("stats", false, "print per-instance and scheduler statistics")
	verbose := fs.Bool("v", false, "verbose reports")
	combined := fs.Bool("combined", false, "one instance per subject with all properties (instead of one per property)")
	noPrune := fs.Bool("noprune", false, "disable constant-driven infeasible-branch pruning")
	journal := fs.Bool("journal", false, "log finished instances to -workdir so an interrupted batch can be resumed")
	resume := fs.Bool("resume", false, "rerun only the instances a previous -journal batch did not finish (implies -journal)")
	tracePath := fs.String("trace", "", "write a Chrome trace-event JSON file here (plus <file>.events.jsonl); one lane per batch worker")
	progress := fs.Duration("progress", 0, "emit a one-line batch heartbeat to stderr at this interval (and rewrite status.json under -workdir)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof and live progress counters on this address (e.g. localhost:6060)")
	if err := fs.Parse(args); err != nil {
		return 2, nil // flag package already printed the error
	}
	if (*journal || *resume) && *workDir == "" {
		return 2, fmt.Errorf("-journal/-resume require -workdir (the completion log lives there)")
	}
	if fs.NArg() == 0 && len(profiles) == 0 {
		fmt.Fprintln(stderr, "usage: grapple batch [flags] [path ...]")
		fmt.Fprintln(stderr, "paths are .ml files or directories; -profile adds generated subjects")
		fs.PrintDefaults()
		return 2, nil
	}

	var fsms []*grapple.FSM
	if len(fsmFiles) == 0 {
		fsms = grapple.BuiltinCheckers()
	} else {
		for _, path := range fsmFiles {
			data, err := os.ReadFile(path)
			if err != nil {
				return 2, err
			}
			parsed, err := grapple.ParseFSMs(string(data))
			if err != nil {
				return 2, fmt.Errorf("%s: %w", path, err)
			}
			fsms = append(fsms, parsed...)
		}
	}

	subjects, err := collectSubjects(fs.Args(), profiles)
	if err != nil {
		return 2, err
	}

	prune := grapple.PruneDefault
	if *noPrune {
		prune = grapple.PruneOff
	}
	res, err := grapple.CheckAll(subjects, fsms, grapple.BatchOptions{
		Options: grapple.Options{
			WorkDir:      *workDir,
			MemoryBudget: *mem,
			UnrollDepth:  *unroll,
			Prune:        prune,
			Journal:      *journal,
			Resume:       *resume,
			Obs: grapple.ObsOptions{
				TracePath:      *tracePath,
				Progress:       *progress,
				ProgressWriter: stderr,
				PprofAddr:      *pprofAddr,
			},
		},
		BatchWorkers:      *workers,
		InstanceTimeout:   *timeout,
		CombineProperties: *combined,
	})
	if err != nil {
		return 2, err
	}

	for _, r := range res.Reports {
		if *jsonOut {
			out, _ := json.Marshal(jsonBatchReport{
				Subject: r.Subject, Group: r.Group,
				Line: r.Pos.Line, Col: r.Pos.Col,
				FSM: r.FSM, Kind: r.Kind.String(), Type: r.Type,
				States: r.States, Object: r.Object,
				Witness: r.Witness, WitnessConstraint: r.WitnessConstraint,
			})
			fmt.Fprintln(stdout, string(out))
			continue
		}
		fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s: %s object may exit in state(s) %s\n",
			r.Subject, r.Pos.Line, r.Pos.Col, r.FSM, r.Kind, r.Type,
			strings.Join(r.States, ","))
		if *verbose {
			fmt.Fprintf(stdout, "    object:     %s\n    witness:    %s\n    constraint: %s\n",
				r.Object, r.Witness, r.WitnessConstraint)
		}
	}

	failed := res.Failed()
	for _, st := range failed {
		why := st.Err.Error()
		if st.TimedOut {
			why = fmt.Sprintf("timed out after %s", timeoutString(*timeout))
		}
		fmt.Fprintf(stderr, "grapple batch: instance %s/%s failed: %s\n", st.Subject, st.Group, why)
	}

	if *stats {
		// Statistics go to stderr so the merged report stream on stdout
		// stays clean for pipes; -stats -json makes them one JSON object.
		if *jsonOut {
			emitBatchStatsJSON(stderr, res, len(subjects))
		} else {
			emitBatchStats(stderr, res, len(subjects))
		}
	}

	switch {
	case len(failed) > 0:
		return 2, nil
	case len(res.Reports) > 0:
		return 1, nil
	default:
		return 0, nil
	}
}

func timeoutString(d time.Duration) string {
	if d <= 0 {
		return "deadline"
	}
	return d.String()
}

// emitBatchStats prints the batch -stats block (to stderr, keeping stdout
// clean for the merged report stream).
func emitBatchStats(w io.Writer, res *grapple.BatchResult, subjects int) {
	fmt.Fprintf(w, "\nbatch: %d instances over %d subjects in %v (wall)\n",
		len(res.Instances), subjects, res.Wall.Round(time.Millisecond))
	fmt.Fprintf(w, "scheduler: %s\n", res.Scheduler)
	fmt.Fprintf(w, "shared cache: %d/%d hits (%.1f%%)\n",
		res.CacheHits, res.CacheLookups, 100*res.CacheHitRate)
	fmt.Fprintf(w, "frontend prepares: %d (shared across %d instances)\n",
		res.FrontendPrepares, len(res.Instances))
	fmt.Fprintf(w, "io: %s\n", res.IO)
	for _, st := range res.Instances {
		status := "ok"
		if st.Resumed {
			status = "resumed"
		}
		if st.Err != nil {
			status = "FAILED"
		}
		fmt.Fprintf(w, "  %-20s %-12s %-6s %3d reports  wait %-10v run %v\n",
			st.Subject, st.Group, status, st.Reports,
			st.Wait.Round(time.Microsecond), st.Elapsed.Round(time.Millisecond))
	}
}

// emitBatchStatsJSON is the machine-readable -stats -json form: one JSON
// object on stderr. Durations are nanoseconds.
func emitBatchStatsJSON(w io.Writer, res *grapple.BatchResult, subjects int) {
	type jsonInstance struct {
		Subject   string `json:"subject"`
		Group     string `json:"group"`
		Status    string `json:"status"`
		Error     string `json:"error,omitempty"`
		Reports   int    `json:"reports"`
		WaitNs    int64  `json:"waitNs"`
		ElapsedNs int64  `json:"elapsedNs"`
	}
	instances := make([]jsonInstance, 0, len(res.Instances))
	for _, st := range res.Instances {
		ji := jsonInstance{
			Subject: st.Subject, Group: st.Group, Status: "ok",
			Reports: st.Reports,
			WaitNs:  st.Wait.Nanoseconds(), ElapsedNs: st.Elapsed.Nanoseconds(),
		}
		if st.Resumed {
			ji.Status = "resumed"
		}
		if st.Err != nil {
			ji.Status = "failed"
			ji.Error = st.Err.Error()
		}
		instances = append(instances, ji)
	}
	out, _ := json.Marshal(struct {
		Instances        int                    `json:"instances"`
		Subjects         int                    `json:"subjects"`
		WallNs           int64                  `json:"wallNs"`
		Scheduler        grapple.SchedulerStats `json:"scheduler"`
		CacheLookups     int64                  `json:"cacheLookups"`
		CacheHits        int64                  `json:"cacheHits"`
		CacheHitRate     float64                `json:"cacheHitRate"`
		FrontendPrepares int                    `json:"frontendPrepares"`
		IO               grapple.IOStats        `json:"io"`
		InstanceList     []jsonInstance         `json:"instanceList"`
	}{
		Instances:        len(res.Instances),
		Subjects:         subjects,
		WallNs:           res.Wall.Nanoseconds(),
		Scheduler:        res.Scheduler,
		CacheLookups:     res.CacheLookups,
		CacheHits:        res.CacheHits,
		CacheHitRate:     res.CacheHitRate,
		FrontendPrepares: res.FrontendPrepares,
		IO:               res.IO,
		InstanceList:     instances,
	})
	fmt.Fprintln(w, string(out))
}
