package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const cleanSrc = `
type FileWriter;
fun main() {
  var w: FileWriter = new FileWriter();
  w.close();
  return;
}
`

func TestBatchMergesSubjects(t *testing.T) {
	dir := t.TempDir()
	leaky := writeFile(t, dir, "leaky.ml", leakySrc)
	clean := writeFile(t, dir, "clean.ml", cleanSrc)

	var out, errb bytes.Buffer
	code, err := run([]string{"batch", "-workers", "2", leaky, clean}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code %d, want 1\nstderr: %s", code, errb.String())
	}
	text := out.String()
	if !strings.Contains(text, leaky+":4:") || !strings.Contains(text, "[io] leak") {
		t.Fatalf("missing leak report for %s: %q", leaky, text)
	}
	if strings.Contains(text, "clean.ml:") {
		t.Fatalf("clean subject reported: %q", text)
	}
}

func TestBatchDirectoryAndDeterminism(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "a.ml", leakySrc)
	writeFile(t, dir, "b.ml", cleanSrc)
	writeFile(t, dir, "c.ml", strings.ReplaceAll(leakySrc, "FileWriter", "Socket"))

	runOnce := func(workers string) string {
		t.Helper()
		var out, errb bytes.Buffer
		code, err := run([]string{"batch", "-json", "-workers", workers, dir}, &out, &errb)
		if err != nil {
			t.Fatal(err)
		}
		if code != 1 {
			t.Fatalf("exit code %d, want 1\nstderr: %s", code, errb.String())
		}
		return out.String()
	}
	first := runOnce("1")
	if got := runOnce("8"); got != first {
		t.Fatalf("-workers=8 output differs from -workers=1:\n%s\nvs\n%s", first, got)
	}
	// Every line is valid JSON with a subject field pointing into the dir.
	for _, line := range strings.Split(strings.TrimSpace(first), "\n") {
		var rep map[string]any
		if err := json.Unmarshal([]byte(line), &rep); err != nil {
			t.Fatalf("bad JSON line %q: %v", line, err)
		}
		subj, _ := rep["subject"].(string)
		if !strings.HasPrefix(subj, dir) {
			t.Fatalf("unexpected subject %q", subj)
		}
	}
}

func TestBatchProfileSubject(t *testing.T) {
	var out, errb bytes.Buffer
	code, err := run([]string{"batch", "-profile", "mini-sim", "-stats"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code %d, want 1\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "mini-sim:") {
		t.Fatalf("no mini-sim reports: %q", out.String())
	}
	// Statistics go to stderr, keeping stdout clean for the report stream.
	text := errb.String()
	if !strings.Contains(text, "shared cache:") || !strings.Contains(text, "scheduler:") {
		t.Fatalf("missing -stats sections: %q", text)
	}
	if !strings.Contains(text, "io: read ") {
		t.Fatalf("missing io stats line: %q", text)
	}
	if strings.Contains(out.String(), "shared cache:") {
		t.Fatalf("stats leaked to stdout: %q", out.String())
	}
}

func TestBatchUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	code, err := run([]string{"batch"}, &out, &errb)
	if err != nil || code != 2 {
		t.Fatalf("no-args: code %d err %v", code, err)
	}
	code, err = run([]string{"batch", "-profile", "no-such-profile"}, &out, &errb)
	if code != 2 || err == nil {
		t.Fatalf("bad profile: code %d err %v", code, err)
	}
}
