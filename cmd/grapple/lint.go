package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"strings"

	grapple "github.com/grapple-system/grapple"
)

// jsonDiagnostic is the machine-readable lint finding format (-json).
type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Code    string `json:"code"`
	Pass    string `json:"pass"`
	Func    string `json:"func"`
	Message string `json:"message"`
}

// runLint implements `grapple lint`: it runs only the IR-level dataflow
// passes — no alias/typestate pipeline — and exits 0 when the program is
// clean, 1 when diagnostics were found, 2 on usage or parse errors.
func runLint(args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("grapple lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON lines")
	rules := fs.String("rules", "", "comma-separated diagnostic codes to run (e.g. ND001,LK001); default all")
	var packNames multiFlag
	fs.Var(&packNames, "pack", "property pack whose binding rules shape Go lowering (repeatable)")
	noDevirt := fs.Bool("nodevirt", false, "disable interface-call devirtualization (Go input only)")
	noMHP := fs.Bool("nomhp", false, "disable goroutine spawn lowering and the may-happen-in-parallel pass (Go input only)")
	if err := fs.Parse(args); err != nil {
		return 2, nil // flag package already printed the error
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: grapple lint [flags] program.ml [more.ml ...]")
		fmt.Fprintln(stderr, "       grapple lint [flags] ./gopkg")
		fs.PrintDefaults()
		return 2, nil
	}
	var ruleCodes []string
	for _, code := range strings.Split(*rules, ",") {
		if code = strings.TrimSpace(code); code != "" {
			ruleCodes = append(ruleCodes, code)
		}
	}

	var (
		diags  []grapple.Diagnostic
		locate func(int) (string, int)
	)
	if goArgs(fs.Args()) {
		if fs.NArg() != 1 {
			return 2, fmt.Errorf("go lint takes one package directory")
		}
		ds, pkg, err := grapple.LintGoPackageWith(fs.Arg(0), packNames, ruleCodes,
			grapple.Options{NoDevirt: *noDevirt, NoMHP: *noMHP})
		if err != nil {
			return 2, err
		}
		diags, locate = ds, pkg.Locate
	} else {
		if len(packNames) > 0 {
			return 2, fmt.Errorf("-pack applies to Go input; got MiniLang sources")
		}
		combined, loc, err := loadSources(fs.Args())
		if err != nil {
			return 2, err
		}
		ds, err := grapple.LintWith(combined, ruleCodes)
		if err != nil {
			return 2, err
		}
		diags, locate = ds, loc
	}
	for _, d := range diags {
		file, line := locate(d.Pos.Line)
		if *jsonOut {
			out, _ := json.Marshal(jsonDiagnostic{
				File: file, Line: line, Col: d.Pos.Col,
				Code: d.Code, Pass: d.Pass, Func: d.Func, Message: d.Message,
			})
			fmt.Fprintln(stdout, string(out))
			continue
		}
		fmt.Fprintf(stdout, "%s:%d:%d: %s: %s (in %s)\n",
			file, line, d.Pos.Col, d.Code, d.Message, d.Func)
	}
	if len(diags) > 0 {
		return 1, nil
	}
	return 0, nil
}
