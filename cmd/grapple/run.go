package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	grapple "github.com/grapple-system/grapple"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

// jsonReport is the machine-readable warning format (-json).
type jsonReport struct {
	File              string   `json:"file"`
	Line              int      `json:"line"`
	Col               int      `json:"col"`
	FSM               string   `json:"fsm"`
	Kind              string   `json:"kind"`
	Type              string   `json:"type"`
	States            []string `json:"states"`
	Object            string   `json:"object,omitempty"`
	Witness           string   `json:"witness,omitempty"`
	WitnessConstraint string   `json:"witnessConstraint,omitempty"`
}

// loadSources concatenates MiniLang files into one compilation unit and
// returns a locator mapping combined line numbers back to (file, line).
func loadSources(paths []string) (string, func(int) (string, int), error) {
	type fileSpan struct {
		name      string
		startLine int // 1-based first line in the combined unit
		lines     int
	}
	var spans []fileSpan
	var combined strings.Builder
	lineCount := 0
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return "", nil, err
		}
		text := string(data)
		if !strings.HasSuffix(text, "\n") {
			text += "\n"
		}
		n := strings.Count(text, "\n")
		spans = append(spans, fileSpan{name: path, startLine: lineCount + 1, lines: n})
		combined.WriteString(text)
		lineCount += n
	}
	locate := func(line int) (string, int) {
		for i := len(spans) - 1; i >= 0; i-- {
			if line >= spans[i].startLine {
				return spans[i].name, line - spans[i].startLine + 1
			}
		}
		return paths[0], line
	}
	return combined.String(), locate, nil
}

// run is the testable CLI core; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) (int, error) {
	if len(args) > 0 && args[0] == "lint" {
		return runLint(args[1:], stdout, stderr)
	}
	if len(args) > 0 && args[0] == "batch" {
		return runBatch(args[1:], stdout, stderr)
	}
	if len(args) > 0 && args[0] == "run" {
		// `grapple run` is an explicit alias of the default mode.
		args = args[1:]
	}
	fs := flag.NewFlagSet("grapple", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var fsmFiles multiFlag
	fs.Var(&fsmFiles, "fsm", "FSM specification file (repeatable)")
	var packNames multiFlag
	fs.Var(&packNames, "pack", "property pack for Go input (repeatable; see -packs)")
	listPacks := fs.Bool("packs", false, "list the built-in property packs and exit")
	workDir := fs.String("workdir", "", "partition directory (temporary if empty)")
	mem := fs.Int64("mem", 0, "engine memory budget in bytes")
	unroll := fs.Int("unroll", 0, "static loop unroll depth")
	jsonOut := fs.Bool("json", false, "emit reports as JSON lines")
	stats := fs.Bool("stats", false, "print phase statistics")
	verbose := fs.Bool("v", false, "verbose reports")
	query := fs.String("query", "", "points-to query 'method.variable' (e.g. main.w)")
	dotDir := fs.String("dot", "", "write program graphs as Graphviz files into this directory")
	noPrune := fs.Bool("noprune", false, "disable constant-driven infeasible-branch pruning")
	noSlice := fs.Bool("noslice", false, "disable property-relevance slicing")
	noDevirt := fs.Bool("nodevirt", false, "disable interface-call devirtualization (Go input only)")
	noMHP := fs.Bool("nomhp", false, "disable goroutine spawn lowering and the may-happen-in-parallel pass (Go input only)")
	journal := fs.Bool("journal", false, "checkpoint engine state to -workdir after every superstep (crash recovery)")
	resume := fs.Bool("resume", false, "continue a previous -journal run from -workdir (implies -journal)")
	tracePath := fs.String("trace", "", "write a Chrome trace-event JSON file here (plus <file>.events.jsonl) covering every pipeline phase")
	progress := fs.Duration("progress", 0, "emit a one-line heartbeat to stderr at this interval (and rewrite status.json under -workdir)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof and live progress counters on this address (e.g. localhost:6060)")
	if err := fs.Parse(args); err != nil {
		return 2, nil // flag package already printed the error
	}
	if (*journal || *resume) && *workDir == "" {
		return 2, fmt.Errorf("-journal/-resume require -workdir (the journal lives beside the partitions)")
	}
	if *listPacks {
		for _, p := range grapple.Packs() {
			fmt.Fprintf(stdout, "%-18s %s (tracks %s, fsm %s)\n", p.Name, p.Doc, p.Type, p.FSMName)
		}
		return 0, nil
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: grapple [run] [flags] program.ml [more.ml ...]")
		fmt.Fprintln(stderr, "       grapple [run] [flags] -pack name ./gopkg | file.go ...")
		fmt.Fprintln(stderr, "       grapple lint [flags] program.ml [more.ml ...]")
		fs.PrintDefaults()
		return 2, nil
	}

	if goArgs(fs.Args()) {
		return runGo(goOpts{
			args: fs.Args(), packs: packNames,
			workDir: *workDir, mem: *mem, unroll: *unroll,
			jsonOut: *jsonOut, stats: *stats, verbose: *verbose,
			dotDir: *dotDir, noPrune: *noPrune, noSlice: *noSlice,
			noDevirt: *noDevirt, noMHP: *noMHP,
			journal: *journal, resume: *resume,
			tracePath: *tracePath, progress: *progress, pprofAddr: *pprofAddr,
		}, stdout, stderr)
	}
	if len(packNames) > 0 {
		return 2, fmt.Errorf("-pack selects property packs for Go input (.go files or a package directory); got MiniLang sources")
	}

	var fsms []*grapple.FSM
	if len(fsmFiles) == 0 {
		fsms = grapple.BuiltinCheckers()
	} else {
		for _, path := range fsmFiles {
			data, err := os.ReadFile(path)
			if err != nil {
				return 2, err
			}
			parsed, err := grapple.ParseFSMs(string(data))
			if err != nil {
				return 2, fmt.Errorf("%s: %w", path, err)
			}
			fsms = append(fsms, parsed...)
		}
	}

	// Line numbers are reported against the combined unit; locate maps back.
	combined, locate, err := loadSources(fs.Args())
	if err != nil {
		return 2, err
	}

	prune := grapple.PruneDefault
	if *noPrune {
		prune = grapple.PruneOff
	}
	slice := grapple.SliceDefault
	if *noSlice {
		slice = grapple.SliceOff
	}
	res, err := grapple.Check(combined, fsms, grapple.Options{
		WorkDir:        *workDir,
		MemoryBudget:   *mem,
		UnrollDepth:    *unroll,
		RecordPointsTo: *query != "",
		DumpDOT:        *dotDir,
		Prune:          prune,
		Slice:          slice,
		Journal:        *journal,
		Resume:         *resume,
		Obs: grapple.ObsOptions{
			TracePath:      *tracePath,
			Progress:       *progress,
			ProgressWriter: stderr,
			PprofAddr:      *pprofAddr,
		},
	})
	if err != nil {
		return 2, err
	}

	if *query != "" {
		dot := strings.LastIndex(*query, ".")
		if dot <= 0 || dot == len(*query)-1 {
			return 2, fmt.Errorf("bad -query %q: want method.variable", *query)
		}
		method, varName := (*query)[:dot], (*query)[dot+1:]
		facts := res.QueryPointsTo(method, varName)
		if len(facts) == 0 {
			fmt.Fprintf(stdout, "%s.%s points to nothing\n", method, varName)
		}
		seen := map[string]bool{}
		for _, f := range facts {
			file, line := locate(f.ObjPos.Line)
			cond := ""
			if f.Conditional {
				cond = " under " + f.Constraint
			}
			key := fmt.Sprintf("%s.%s (clone %d) -> %s allocated at %s:%d%s",
				method, varName, f.Ctx, f.ObjType, file, line, cond)
			if seen[key] {
				continue
			}
			seen[key] = true
			fmt.Fprintln(stdout, key)
		}
	}

	emitReports(stdout, res.Reports, locate, *jsonOut, *verbose)
	if *stats {
		// Statistics go to stderr so they never corrupt piped report
		// streams; -stats -json makes them one machine-readable object.
		if *jsonOut {
			emitStatsJSON(stderr, res)
		} else {
			emitStats(stderr, res)
		}
	}
	if len(res.Reports) > 0 {
		return 1, nil
	}
	return 0, nil
}

// emitReports prints warnings, mapping combined-unit lines through locate.
func emitReports(stdout io.Writer, reports []grapple.Report, locate func(int) (string, int), jsonOut, verbose bool) {
	for _, r := range reports {
		file, line := locate(r.Pos.Line)
		if jsonOut {
			out, _ := json.Marshal(jsonReport{
				File: file, Line: line, Col: r.Pos.Col,
				FSM: r.FSM, Kind: r.Kind.String(), Type: r.Type,
				States: r.States, Object: r.Object,
				Witness: r.Witness, WitnessConstraint: r.WitnessConstraint,
			})
			fmt.Fprintln(stdout, string(out))
			continue
		}
		fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s: %s object may exit in state(s) %s\n",
			file, line, r.Pos.Col, r.FSM, r.Kind, r.Type,
			strings.Join(r.States, ","))
		if verbose {
			fmt.Fprintf(stdout, "    object:     %s\n    witness:    %s\n    constraint: %s\n",
				r.Object, r.Witness, r.WitnessConstraint)
			for _, step := range r.Steps {
				if step.Pos.Line > 0 {
					sf, sl := locate(step.Pos.Line)
					fmt.Fprintf(stdout, "    step:       %s:%d: %s\n", sf, sl, step.Desc)
				} else {
					fmt.Fprintf(stdout, "    step:       %s\n", step.Desc)
				}
			}
		}
	}
}

// emitStats prints the -stats block (to stderr, keeping stdout clean for
// piped report streams).
func emitStats(w io.Writer, res *grapple.Result) {
	fmt.Fprintf(w, "\ntracked objects: %d\n", res.TrackedObjects)
	fmt.Fprintf(w, "cfet paths: %d (pruned branches: %d)\n",
		res.Alias.CFETPaths, res.Alias.PrunedBranches)
	fmt.Fprintf(w, "sliced functions: %d (sliced branches: %d)\n",
		res.Alias.SlicedFunctions, res.Alias.SlicedBranches)
	if res.Alias.Unlowered > 0 {
		fmt.Fprintf(w, "unlowered constructs (havocked): %d\n", res.Alias.Unlowered)
	}
	printPhase(w, "alias", res.Alias)
	printPhase(w, "dataflow", res.Dataflow)
	io := res.Alias.IO
	io.Add(res.Dataflow.IO)
	fmt.Fprintf(w, "io: %s\n", io)
	fmt.Fprintf(w, "io latency: %s\n", io.LatencyString())
	solve := res.Alias.SolveLatency
	solve.Add(res.Dataflow.SolveLatency)
	fmt.Fprintf(w, "solve latency: %s\n", solve.String(grapple.SolveLatencyBuckets()))
	if ck := res.Alias.Checkpoints + res.Dataflow.Checkpoints; ck > 0 {
		fmt.Fprintf(w, "journal: %d checkpoints, %.1f KiB\n",
			ck, float64(res.Alias.JournalBytes+res.Dataflow.JournalBytes)/(1<<10))
	}
	fmt.Fprintf(w, "preprocessing %v, computation %v\n", res.GenTime, res.ComputeTime)
	fmt.Fprintf(w, "breakdown: I/O %.1f%% | constraint lookup %.1f%% | SMT solving %.1f%% | edge computation %.1f%%\n",
		res.Breakdown.IOPct, res.Breakdown.DecodePct, res.Breakdown.SolvePct, res.Breakdown.ComputePct)
}

// emitStatsJSON is the machine-readable -stats -json form: one JSON object
// on stderr. Durations are nanoseconds; the latency histograms are
// per-bucket counts whose bounds are in the *BucketsNs arrays.
func emitStatsJSON(w io.Writer, res *grapple.Result) {
	bounds := grapple.SolveLatencyBuckets()
	boundsNs := make([]int64, len(bounds))
	for i, b := range bounds {
		boundsNs[i] = b.Nanoseconds()
	}
	out, _ := json.Marshal(struct {
		TrackedObjects        int                `json:"trackedObjects"`
		Alias                 grapple.PhaseStats `json:"alias"`
		Dataflow              grapple.PhaseStats `json:"dataflow"`
		GenTimeNs             int64              `json:"genTimeNs"`
		ComputeTimeNs         int64              `json:"computeTimeNs"`
		Breakdown             grapple.Breakdown  `json:"breakdown"`
		SolveLatencyBucketsNs []int64            `json:"solveLatencyBucketsNs"`
	}{
		TrackedObjects:        res.TrackedObjects,
		Alias:                 res.Alias,
		Dataflow:              res.Dataflow,
		GenTimeNs:             res.GenTime.Nanoseconds(),
		ComputeTimeNs:         res.ComputeTime.Nanoseconds(),
		Breakdown:             res.Breakdown,
		SolveLatencyBucketsNs: boundsNs,
	})
	fmt.Fprintln(w, string(out))
}

func printPhase(w io.Writer, name string, p grapple.PhaseStats) {
	fmt.Fprintf(w, "%-9s V=%d EB=%d EA=%d iterations=%d partitions=%d repartitions=%d solved=%d cache=%d/%d\n",
		name+":", p.Vertices, p.EdgesBefore, p.EdgesAfter, p.Iterations,
		p.Partitions, p.Repartitions, p.ConstraintsSolved, p.CacheHits, p.CacheLookups)
}
