package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestTraceGoldenIdentity is the CLI half of the observation-only contract:
// stdout with the full observability stack on (-trace, -progress, a workdir
// for status.json) must be byte-identical to a bare run, and the artifacts
// must be well-formed.
func TestTraceGoldenIdentity(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "p.ml", leakySrc)
	work := filepath.Join(dir, "work")
	if err := os.MkdirAll(work, 0o755); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "trace.json")

	var bareOut, bareErr bytes.Buffer
	codeBare, errBare := run([]string{"-v", prog}, &bareOut, &bareErr)

	var obsOut, obsErr bytes.Buffer
	codeObs, errObs := run([]string{
		"-v", "-trace", tracePath, "-progress", "1ms", "-workdir", work, prog,
	}, &obsOut, &obsErr)

	if errBare != nil || errObs != nil || codeBare != 1 || codeObs != 1 {
		t.Fatalf("codes=%d/%d errs=%v/%v", codeBare, codeObs, errBare, errObs)
	}
	if bareOut.String() != obsOut.String() {
		t.Fatalf("stdout differs with observability on:\nbare: %q\nobs:  %q",
			bareOut.String(), obsOut.String())
	}

	// The trace must be a loadable Chrome trace-event document covering the
	// pipeline phases, with a parallel JSONL stream.
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
			Cat  string `json:"cat"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace is empty")
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"pre-analysis", "cfet-build", "phase.alias", "phase.dataflow", "fsm-check", "superstep"} {
		if !names[want] {
			t.Errorf("trace missing %q span (have %v)", want, names)
		}
	}
	events, err := os.ReadFile(tracePath + ".events.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(events)), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("JSONL line does not parse: %v: %q", err, line)
		}
	}

	// The heartbeat leaves a final status.json in the workdir.
	status, err := os.ReadFile(filepath.Join(work, "status.json"))
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Phase         string `json:"phase"`
		UpdatedUnixMs int64  `json:"updatedUnixMs"`
	}
	if err := json.Unmarshal(status, &snap); err != nil {
		t.Fatalf("status.json does not parse: %v", err)
	}
	if snap.Phase == "" || snap.UpdatedUnixMs == 0 {
		t.Fatalf("status.json incomplete: %s", status)
	}
}

// TestStatsJSONWellFormed pins the -stats -json contract: stdout carries
// only report JSON, stderr carries exactly one machine-readable stats
// object.
func TestStatsJSONWellFormed(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "p.ml", leakySrc)
	var out, errb bytes.Buffer
	code, err := run([]string{"-json", "-stats", prog}, &out, &errb)
	if err != nil || code != 1 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		var rep map[string]any
		if err := json.Unmarshal([]byte(line), &rep); err != nil {
			t.Fatalf("stdout line is not report JSON: %v: %q", err, line)
		}
	}
	var stats struct {
		TrackedObjects int            `json:"trackedObjects"`
		Alias          map[string]any `json:"alias"`
		Dataflow       map[string]any `json:"dataflow"`
		GenTimeNs      int64          `json:"genTimeNs"`
	}
	if err := json.Unmarshal(errb.Bytes(), &stats); err != nil {
		t.Fatalf("stderr is not one stats object: %v: %q", err, errb.String())
	}
	if stats.TrackedObjects == 0 || stats.Alias == nil || stats.Dataflow == nil {
		t.Fatalf("stats object incomplete: %s", errb.String())
	}
	if _, ok := stats.Alias["SolveLatency"]; !ok {
		t.Fatalf("stats missing SolveLatency histogram: %s", errb.String())
	}
}

// TestBatchStatsJSONWellFormed is the batch analogue.
func TestBatchStatsJSONWellFormed(t *testing.T) {
	var out, errb bytes.Buffer
	code, err := run([]string{"batch", "-profile", "mini-sim", "-json", "-stats"}, &out, &errb)
	if err != nil || code != 1 {
		t.Fatalf("code=%d err=%v stderr=%q", code, err, errb.String())
	}
	var stats struct {
		Instances    int              `json:"instances"`
		Subjects     int              `json:"subjects"`
		WallNs       int64            `json:"wallNs"`
		InstanceList []map[string]any `json:"instanceList"`
	}
	if err := json.Unmarshal(errb.Bytes(), &stats); err != nil {
		t.Fatalf("stderr is not one stats object: %v: %q", err, errb.String())
	}
	if stats.Instances == 0 || stats.Subjects != 1 || len(stats.InstanceList) != stats.Instances {
		t.Fatalf("batch stats incomplete: %s", errb.String())
	}
}

// TestProgressHeartbeatEmits drives -progress at a tiny interval over the
// batch path (slow enough to tick) and requires at least one heartbeat line.
func TestProgressHeartbeatEmits(t *testing.T) {
	var out, errb bytes.Buffer
	start := time.Now()
	code, err := run([]string{"batch", "-profile", "mini-sim", "-progress", "1ms"}, &out, &errb)
	if err != nil || code != 1 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	if time.Since(start) >= time.Millisecond && !strings.Contains(errb.String(), "grapple:") {
		t.Fatalf("no heartbeat on stderr: %q", errb.String())
	}
}
