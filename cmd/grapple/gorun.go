package main

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	grapple "github.com/grapple-system/grapple"
)

// goArgs reports whether the positional arguments name Go input: a single
// package directory, or one or more .go files.
func goArgs(args []string) bool {
	for _, a := range args {
		if strings.HasSuffix(a, ".go") {
			return true
		}
		if st, err := os.Stat(a); err == nil && st.IsDir() {
			return true
		}
	}
	return false
}

// goOpts carries the main flag set into the Go-mode runner.
type goOpts struct {
	args      []string
	packs     []string
	workDir   string
	mem       int64
	unroll    int
	jsonOut   bool
	stats     bool
	verbose   bool
	dotDir    string
	noPrune   bool
	noSlice   bool
	noDevirt  bool
	noMHP     bool
	journal   bool
	resume    bool
	tracePath string
	progress  time.Duration
	pprofAddr string
}

// runGo checks real Go input against the selected property packs through
// the gofront lowering and the full engine pipeline.
func runGo(o goOpts, stdout, stderr io.Writer) (int, error) {
	if len(o.packs) == 0 {
		fmt.Fprintln(stderr, "grapple: Go input requires -pack; available packs:")
		for _, p := range grapple.Packs() {
			fmt.Fprintf(stderr, "  %-18s %s\n", p.Name, p.Doc)
		}
		return 2, nil
	}
	var dirs, files []string
	for _, a := range o.args {
		if st, err := os.Stat(a); err == nil && st.IsDir() {
			dirs = append(dirs, a)
		} else {
			files = append(files, a)
		}
	}
	if len(dirs) > 1 || (len(dirs) == 1 && len(files) > 0) {
		return 2, fmt.Errorf("go input must be one package directory or a list of .go files")
	}
	prune := grapple.PruneDefault
	if o.noPrune {
		prune = grapple.PruneOff
	}
	slice := grapple.SliceDefault
	if o.noSlice {
		slice = grapple.SliceOff
	}
	opts := grapple.Options{
		WorkDir:      o.workDir,
		MemoryBudget: o.mem,
		UnrollDepth:  o.unroll,
		DumpDOT:      o.dotDir,
		Prune:        prune,
		Slice:        slice,
		NoDevirt:     o.noDevirt,
		NoMHP:        o.noMHP,
		Journal:      o.journal,
		Resume:       o.resume,
		Obs: grapple.ObsOptions{
			TracePath:      o.tracePath,
			Progress:       o.progress,
			ProgressWriter: stderr,
			PprofAddr:      o.pprofAddr,
		},
	}
	var (
		res *grapple.Result
		pkg *grapple.GoPackage
		err error
	)
	if len(dirs) == 1 {
		res, pkg, err = grapple.CheckGoPackage(dirs[0], o.packs, opts)
	} else {
		res, pkg, err = grapple.CheckGoFiles(files, o.packs, opts)
	}
	if err != nil {
		return 2, err
	}
	emitReports(stdout, res.Reports, pkg.Locate, o.jsonOut, o.verbose)
	if o.stats {
		if o.jsonOut {
			emitStatsJSON(stderr, res)
		} else {
			emitStats(stderr, res)
			fmt.Fprintf(stderr, "lowered functions: %d, havocked constructs: %d\n",
				pkg.Functions(), pkg.Unlowered())
			if calls, direct, split, open := pkg.Devirt(); calls > 0 {
				fmt.Fprintf(stderr, "interface calls: %d (direct %d, split %d, open %d)\n",
					calls, direct, split, open)
			}
		}
	}
	if len(res.Reports) > 0 {
		return 1, nil
	}
	return 0, nil
}
