package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const leakySrc = `
type FileWriter;
fun main() {
  var w: FileWriter = new FileWriter();
  w.write();
  return;
}
`

func TestRunReportsLeak(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "p.ml", leakySrc)
	var out, errb bytes.Buffer
	code, err := run([]string{prog}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(out.String(), "[io] leak") {
		t.Fatalf("output: %q", out.String())
	}
	if !strings.Contains(out.String(), "p.ml:4:") {
		t.Fatalf("wrong location: %q", out.String())
	}
}

func TestRunCleanExitsZero(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "p.ml", `
type FileWriter;
fun main() {
  var w: FileWriter = new FileWriter();
  w.close();
  return;
}
`)
	var out, errb bytes.Buffer
	code, err := run([]string{prog}, &out, &errb)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v out=%q", code, err, out.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "p.ml", leakySrc)
	var out, errb bytes.Buffer
	code, err := run([]string{"-json", prog}, &out, &errb)
	if err != nil || code != 1 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	var r jsonReport
	if err := json.Unmarshal(out.Bytes(), &r); err != nil {
		t.Fatalf("bad json %q: %v", out.String(), err)
	}
	if r.FSM != "io" || r.Kind != "leak" || r.Line != 4 {
		t.Fatalf("report: %+v", r)
	}
}

func TestRunMultipleFiles(t *testing.T) {
	dir := t.TempDir()
	lib := writeFile(t, dir, "lib.ml", `
type FileWriter;
fun closeIt(w: FileWriter) {
  w.close();
  return;
}
`)
	mainSrc := writeFile(t, dir, "main.ml", `
fun main() {
  var w: FileWriter = new FileWriter();
  var w2: FileWriter = new FileWriter();
  closeIt(w);
  w2.write();
  return;
}
`)
	var out, errb bytes.Buffer
	code, err := run([]string{lib, mainSrc}, &out, &errb)
	if err != nil || code != 1 {
		t.Fatalf("code=%d err=%v out=%q", code, err, out.String())
	}
	// The leak (w2) is in main.ml line 4; the report must map back to it.
	if !strings.Contains(out.String(), "main.ml:4:") {
		t.Fatalf("cross-file location mapping wrong: %q", out.String())
	}
	if strings.Count(out.String(), "leak") != 1 {
		t.Fatalf("want exactly one leak: %q", out.String())
	}
}

func TestRunCustomFSMFile(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "txn.fsm", `
fsm txn for Txn {
  states Fresh Active Done;
  init Fresh;
  accept Fresh Done;
  new:    Fresh -> Fresh;
  begin:  Fresh -> Active;
  commit: Active -> Done;
}
`)
	prog := writeFile(t, dir, "p.ml", `
type Txn;
fun main() {
  var t: Txn = new Txn();
  t.begin();
  return;
}
`)
	var out, errb bytes.Buffer
	code, err := run([]string{"-fsm", spec, prog}, &out, &errb)
	if err != nil || code != 1 {
		t.Fatalf("code=%d err=%v out=%q", code, err, out.String())
	}
	if !strings.Contains(out.String(), "[txn] leak") {
		t.Fatalf("output: %q", out.String())
	}
}

func TestRunVerboseStats(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "p.ml", leakySrc)
	var out, errb bytes.Buffer
	code, err := run([]string{"-v", "-stats", prog}, &out, &errb)
	if err != nil || code != 1 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	for _, want := range []string{"witness:", "constraint:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q in stdout", want)
		}
	}
	// Statistics go to stderr so they never corrupt piped report streams.
	for _, want := range []string{"tracked objects:", "alias:", "dataflow:", "breakdown:", "io:", "io latency:", "solve latency:"} {
		if !strings.Contains(errb.String(), want) {
			t.Errorf("missing %q in stderr", want)
		}
	}
	if strings.Contains(out.String(), "tracked objects:") {
		t.Errorf("stats leaked to stdout: %q", out.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code, _ := run(nil, &out, &errb); code != 2 {
		t.Fatalf("no-args exit code %d", code)
	}
	if code, _ := run([]string{"/nonexistent/file.ml"}, &out, &errb); code != 2 {
		t.Fatalf("missing-file exit code %d", code)
	}
	dir := t.TempDir()
	bad := writeFile(t, dir, "bad.ml", "fun main( {")
	if code, _ := run([]string{bad}, &out, &errb); code != 2 {
		t.Fatalf("parse-error exit code %d", code)
	}
	badSpec := writeFile(t, dir, "bad.fsm", "fsm x {")
	good := writeFile(t, dir, "g.ml", leakySrc)
	if code, _ := run([]string{"-fsm", badSpec, good}, &out, &errb); code != 2 {
		t.Fatalf("bad-spec exit code %d", code)
	}
}

func TestRunPointsToQuery(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "p.ml", `
type R;
fun main() {
  var x: R = new R();
  var y: R = x;
  y.use();
  return;
}
`)
	var out, errb bytes.Buffer
	code, err := run([]string{"-query", "main.y", prog}, &out, &errb)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v out=%q", code, err, out.String())
	}
	if !strings.Contains(out.String(), "main.y") || !strings.Contains(out.String(), "p.ml:4") ||
		!strings.Contains(out.String(), "R allocated at") {
		t.Fatalf("query output: %q", out.String())
	}
	// Malformed query.
	if code, _ := run([]string{"-query", "noVarPart", prog}, &out, &errb); code != 2 {
		t.Fatalf("bad query exit code %d", code)
	}
}

func TestRunDOTExport(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "p.ml", leakySrc)
	dotDir := filepath.Join(dir, "graphs")
	var out, errb bytes.Buffer
	code, err := run([]string{"-dot", dotDir, prog}, &out, &errb)
	if err != nil || code != 1 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	for _, name := range []string{"alias.dot", "dataflow.dot"} {
		data, err := os.ReadFile(filepath.Join(dotDir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		text := string(data)
		if !strings.HasPrefix(text, "digraph") || !strings.Contains(text, "->") {
			t.Fatalf("%s is not a graph:\n%s", name, text)
		}
	}
	// The alias graph must show the Fig. 4 labels.
	data, _ := os.ReadFile(filepath.Join(dotDir, "alias.dot"))
	if !strings.Contains(string(data), "new") {
		t.Fatalf("alias.dot missing new edge:\n%s", string(data))
	}
}
