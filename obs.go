package grapple

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/grapple-system/grapple/internal/checker"
	"github.com/grapple-system/grapple/internal/trace"
)

// ObsOptions configures the observability layer of a checking run: tracing,
// the progress heartbeat, and the pprof/expvar debug server. The zero value
// disables all three at zero overhead; every feature is observation-only and
// never changes reports (docs/observability.md).
type ObsOptions struct {
	// TracePath, when non-empty, writes a Chrome trace-event JSON document
	// there (loadable in Perfetto or chrome://tracing) and a streamed JSONL
	// event log to TracePath + ".events.jsonl". Spans cover every pipeline
	// phase and every engine superstep; instants cover partition loads,
	// writes, appends, and prefetch hits.
	TracePath string
	// Progress, when positive, emits a one-line status heartbeat to
	// ProgressWriter every interval (superstep, frontier, dirty pairs, ETA)
	// and atomically rewrites StatusPath with a JSON snapshot.
	Progress time.Duration
	// ProgressWriter receives heartbeat lines; os.Stderr when nil.
	ProgressWriter io.Writer
	// StatusPath is the JSON status file the heartbeat rewrites (crash-safe:
	// temp file, fsync, rename). Defaults to WorkDir/status.json when
	// Progress is set and the run has a persistent WorkDir; empty with no
	// WorkDir means no status file.
	StatusPath string
	// PprofAddr, when non-empty (host:port; ":0" picks a free port), serves
	// net/http/pprof profiles and an expvar mirror of the live progress
	// counters for the duration of the run.
	PprofAddr string
}

// enabled reports whether any observability feature is on.
func (o ObsOptions) enabled() bool {
	return o.TracePath != "" || o.Progress > 0 || o.PprofAddr != ""
}

// obsSession owns a run's live observability resources: the trace recorder,
// the progress tracker with its heartbeat goroutine, and the debug server.
// A nil session is valid and inert, mirroring the recorder's nil-safety.
type obsSession struct {
	rec     *trace.Recorder
	prog    *trace.Progress
	stopHB  func()
	stopSrv func() error
}

// startObs materializes ObsOptions into a session. workDir anchors the
// default status.json location. Returns nil (a no-op session) when every
// feature is disabled.
func startObs(o ObsOptions, workDir string) (*obsSession, error) {
	if !o.enabled() {
		return nil, nil
	}
	s := &obsSession{}
	if o.TracePath != "" {
		rec, err := trace.Open(o.TracePath)
		if err != nil {
			return nil, fmt.Errorf("grapple: trace: %w", err)
		}
		s.rec = rec
	}
	if o.Progress > 0 || o.PprofAddr != "" {
		s.prog = trace.NewProgress()
	}
	if o.Progress > 0 {
		w := o.ProgressWriter
		if w == nil {
			w = os.Stderr
		}
		statusPath := o.StatusPath
		if statusPath == "" && workDir != "" {
			statusPath = filepath.Join(workDir, "status.json")
		}
		s.stopHB = s.prog.Heartbeat(o.Progress, w, statusPath)
	}
	if o.PprofAddr != "" {
		_, stop, err := trace.ServeDebug(o.PprofAddr, s.prog)
		if err != nil {
			s.finish()
			return nil, fmt.Errorf("grapple: pprof: %w", err)
		}
		s.stopSrv = stop
	}
	return s, nil
}

// bind threads the session's recorder and progress tracker into one
// checker's options. Safe on a nil session.
func (s *obsSession) bind(co *checker.Options) {
	if s == nil {
		return
	}
	co.Trace = s.rec
	co.Progress = s.prog
}

// recorder returns the session's trace recorder (nil when tracing is off or
// the session is nil; both are valid inert recorders).
func (s *obsSession) recorder() *trace.Recorder {
	if s == nil {
		return nil
	}
	return s.rec
}

// progress returns the session's progress tracker, nil when none.
func (s *obsSession) progress() *trace.Progress {
	if s == nil {
		return nil
	}
	return s.prog
}

// span opens a top-level pipeline span (no-op on a nil session).
func (s *obsSession) span(cat, name string) trace.Span {
	if s == nil {
		return trace.Span{}
	}
	return s.rec.Start(0, cat, name)
}

// finish stops the heartbeat (writing one final status snapshot), shuts the
// debug server down, and finalizes the trace files. The returned error is
// the recorder's first write error, if any; the caller surfaces it only when
// the check itself succeeded. Safe on a nil session, and idempotent.
func (s *obsSession) finish() error {
	if s == nil {
		return nil
	}
	if s.stopHB != nil {
		s.stopHB()
		s.stopHB = nil
	}
	if s.stopSrv != nil {
		s.stopSrv()
		s.stopSrv = nil
	}
	err := s.rec.Close()
	s.rec = nil
	if err != nil {
		return fmt.Errorf("grapple: trace: %w", err)
	}
	return nil
}
