module github.com/grapple-system/grapple

go 1.22
