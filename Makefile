GO ?= go

.PHONY: build test vet fmt-check race fuzz golden ci bench

build:
	$(GO) build ./...

# -shuffle=on randomizes test execution order, so accidental inter-test
# state dependence fails loudly instead of by timing luck.
test: build
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt -w needed on:"; echo "$$out"; exit 1; \
	fi

# Race-check the concurrent core (engine workers, checker pipeline, and the
# batch scheduler, whose determinism test exercises shared-cache and
# shared-frontend accesses from many workers).
race:
	$(GO) test -race ./internal/engine/... ./internal/checker/... ./internal/scheduler/...

# Short fuzzing session over the SMT cache-keying invariants.
fuzz:
	$(GO) test ./internal/smt/ -fuzz FuzzCacheKeying -fuzztime 30s

# Regenerate the golden-report regression corpus (testdata/golden/).
golden:
	$(GO) test -run TestGoldenReports -update .

bench:
	$(GO) run ./cmd/grapple-bench -all

ci: vet fmt-check race test
