GO ?= go

.PHONY: build test vet fmt-check race fuzz golden ci bench bench-hotpath alloc-budget lint-self check-self unlowered-budget crash obs-smoke

build:
	$(GO) build ./...

# -shuffle=on randomizes test execution order, so accidental inter-test
# state dependence fails loudly instead of by timing luck.
test: build
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt -w needed on:"; echo "$$out"; exit 1; \
	fi

# Race-check the concurrent core (engine workers + prefetcher, the storage
# layer they stream through, the checker pipeline, the batch scheduler,
# whose determinism test exercises shared-cache and shared-frontend accesses
# from many workers, plus the observability layer: shared metrics counters
# and the trace recorder / progress heartbeat, which are read from other
# goroutines mid-run).
race:
	$(GO) test -race ./internal/storage/... ./internal/engine/... ./internal/checker/... ./internal/scheduler/... ./internal/metrics/... ./internal/trace/...
	$(GO) test -race ./cmd/grapple/ -run TestAblationIdentity -count=1

# Short fuzzing sessions: SMT cache-keying invariants, the partition
# store's record decoders (v1 and v2), whole-file reader, and journal
# reader (resume must never crash or silently accept corrupt state), then
# the interprocedural points-to solver (termination bound + summary
# idempotence on arbitrary MiniLang inputs) and the devirtualization
# hierarchy (every live covering type must stay a dispatch candidate).
fuzz:
	$(GO) test ./internal/smt/ -fuzz FuzzCacheKeying -fuzztime 30s
	$(GO) test ./internal/storage/ -fuzz FuzzReadRecord -fuzztime 20s
	$(GO) test ./internal/storage/ -fuzz FuzzDecodeRecordV2 -fuzztime 20s
	$(GO) test ./internal/storage/ -fuzz FuzzReadPart -fuzztime 20s
	$(GO) test ./internal/storage/ -fuzz FuzzReadJournal -fuzztime 20s
	$(GO) test ./internal/analysis/ -fuzz FuzzPointsTo -fuzztime 20s
	$(GO) test ./internal/analysis/ -fuzz FuzzDevirt -fuzztime 20s
	$(GO) test ./internal/gofront/ -fuzz FuzzLowerGo -fuzztime 20s

# Crash-injection harness: kill the engine at EVERY superstep boundary (and
# mid-journal-write for torn-record coverage), resume from the journal, and
# require a byte-identical final report; same at checker granularity (both
# closure phases) and batch granularity (kill between instances, resume
# reruns only the unfinished ones). Superstep counts are bounded by small
# workloads so the every-boundary sweep stays fast.
crash: build
	$(GO) test ./internal/engine/ ./internal/checker/ ./internal/scheduler/ ./cmd/grapple/ -run 'Resume|Torn|Journal' -count=1

# Self-lint: every shipped example's embedded MiniLang program must pass
# `grapple lint` (all rules, including the interprocedural ones) with no
# findings — the linter's zero-false-positive bias, checked against our
# own code.
lint-self: build
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	for d in examples/*/main.go; do \
		name=$$(basename $$(dirname $$d)); \
		awk '/^const program = `$$/{flag=1;next} flag && /^`$$/{exit} flag' $$d > "$$tmp/$$name.ml"; \
		echo "lint-self: $$name"; \
		$(GO) run ./cmd/grapple lint "$$tmp/$$name.ml"; \
	done

# Regenerate the golden-report regression corpus (testdata/golden/):
# the synthetic workload profiles plus the real-Go self-check subjects
# (storage with the resource packs, engine and trace with the sync packs).
golden:
	$(GO) test -run 'TestGolden' -update .

# Self-check: run the full typestate pipeline — gofront lowering, alias and
# dataflow closure phases, disk engine, SMT feasibility — over our own
# storage layer with the file-handle and use-after-release packs, and over
# the engine and trace packages with the concurrency packs (mutex,
# context-cancel), requiring clean reports. The sync-pack subjects are also
# pinned as goldens so a report conjured by a frontend change fails even if
# it would still exit zero. Grapple checks grapple.
check-self: build
	@echo "check-self: internal/storage (file-handle, use-after-release)"
	$(GO) run ./cmd/grapple run -pack file-handle -pack use-after-release ./internal/storage
	@echo "check-self: internal/engine (mutex, context-cancel)"
	$(GO) run ./cmd/grapple run -pack mutex -pack context-cancel ./internal/engine
	@echo "check-self: internal/trace (mutex, context-cancel)"
	$(GO) run ./cmd/grapple run -pack mutex -pack context-cancel ./internal/trace
	$(GO) test -run TestGoldenSelfCheckPacks -count=1 .

# Observability smoke: tracing and progress are observation-only — CLI
# stdout must be byte-identical with the full stack on or off, and the
# emitted trace/status artifacts must be well-formed JSON.
obs-smoke: build
	$(GO) test ./cmd/grapple/ -run 'TestTraceGoldenIdentity|TestStatsJSON|TestBatchStatsJSON' -count=1
	$(GO) test ./internal/checker/ -run TestTracingPreservesReports -count=1
	$(GO) vet ./internal/trace/...

# Lowering-coverage budget: corpus-wide Unlowered (havoc) counts — every
# gofront corpus snippet plus the self-check packages — are pinned in
# testdata/unlowered_budget.json. A frontend change that loses (or gains)
# coverage must bank it explicitly:
# go test ./internal/gofront/ -run TestUnloweredBudget -update
unlowered-budget: build
	$(GO) test ./internal/gofront/ -run TestUnloweredBudget -count=1

bench:
	$(GO) run ./cmd/grapple-bench -all

# Hot-path ablation table (zero-copy decode + join pooling), with the
# machine-readable artifact committed next to EXPERIMENTS.md.
bench-hotpath: build
	$(GO) run ./cmd/grapple-bench -table hotpath -hotpath-json BENCH_hotpath.json

# Allocation-budget regression gates: the zero-copy read path must stay
# near zero allocs/record (and under half of the legacy decoder), and a
# warm SMT-cache probe from the pooled join must not allocate at all.
# Run without -race: the race runtime inflates allocation counts, so these
# tests skip themselves under it.
alloc-budget: build
	$(GO) test ./internal/storage/ -run TestDecodeAllocBudget -count=1
	$(GO) test ./internal/engine/ -run TestCacheProbeZeroAlloc -count=1

ci: vet fmt-check race test crash lint-self check-self unlowered-budget obs-smoke alloc-budget
