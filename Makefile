GO ?= go

.PHONY: build test vet fmt-check race ci bench

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt -w needed on:"; echo "$$out"; exit 1; \
	fi

# Race-check the concurrent core (engine workers, checker pipeline).
race:
	$(GO) test -race ./internal/engine/... ./internal/checker/...

bench:
	$(GO) run ./cmd/grapple-bench -all

ci: vet fmt-check race test
