GO ?= go

.PHONY: build test vet fmt-check race fuzz golden ci bench

build:
	$(GO) build ./...

# -shuffle=on randomizes test execution order, so accidental inter-test
# state dependence fails loudly instead of by timing luck.
test: build
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt -w needed on:"; echo "$$out"; exit 1; \
	fi

# Race-check the concurrent core (engine workers + prefetcher, the storage
# layer they stream through, the checker pipeline, and the batch scheduler,
# whose determinism test exercises shared-cache and shared-frontend accesses
# from many workers).
race:
	$(GO) test -race ./internal/storage/... ./internal/engine/... ./internal/checker/... ./internal/scheduler/...

# Short fuzzing sessions: SMT cache-keying invariants, then the partition
# store's record decoders (v1 and v2) and whole-file reader.
fuzz:
	$(GO) test ./internal/smt/ -fuzz FuzzCacheKeying -fuzztime 30s
	$(GO) test ./internal/storage/ -fuzz FuzzReadRecord -fuzztime 20s
	$(GO) test ./internal/storage/ -fuzz FuzzDecodeRecordV2 -fuzztime 20s
	$(GO) test ./internal/storage/ -fuzz FuzzReadPart -fuzztime 20s

# Regenerate the golden-report regression corpus (testdata/golden/).
golden:
	$(GO) test -run TestGoldenReports -update .

bench:
	$(GO) run ./cmd/grapple-bench -all

ci: vet fmt-check race test
