package grapple

import (
	"context"
	"time"

	"github.com/grapple-system/grapple/internal/fsm"
	"github.com/grapple-system/grapple/internal/metrics"
	"github.com/grapple-system/grapple/internal/scheduler"
)

// Subject is one named compilation unit for batch checking.
type Subject struct {
	// Name identifies the subject in merged reports; it must be unique
	// within a batch.
	Name string
	// Source is the subject's MiniLang text.
	Source string
}

// BatchReport is one merged-stream warning: a Report annotated with the
// subject and FSM property group that produced it.
type BatchReport struct {
	Subject string
	Group   string
	Report
}

// InstanceStatus summarizes one (subject, property-group) checking
// instance of a batch.
type InstanceStatus struct {
	Subject string
	Group   string
	// Err is the instance's failure, nil on success; TimedOut marks it as
	// the per-instance deadline expiring.
	Err      error
	TimedOut bool
	// Resumed marks an instance restored from a previous journaled batch's
	// completion log (BatchOptions.Resume) rather than recomputed; only the
	// report set and Elapsed survive, so phase stats are zero.
	Resumed bool
	// Wait is time spent queued for a worker; Elapsed the run itself.
	Wait    time.Duration
	Elapsed time.Duration
	// Reports is this instance's warning count (the warnings themselves
	// live in the merged stream).
	Reports  int
	Alias    PhaseStats
	Dataflow PhaseStats
}

// SchedulerStats is the batch scheduler's queue-depth and latency counters.
type SchedulerStats = metrics.SchedSnapshot

// BatchOptions tunes CheckAll. The embedded Options apply to every
// instance, except Journal and Resume, which act at batch granularity:
// Journal logs each finished instance's reports to WorkDir, and Resume
// reruns only the instances a previous journaled batch did not finish,
// merging restored and fresh results into a byte-identical report stream.
type BatchOptions struct {
	Options
	// BatchWorkers bounds how many checking instances run concurrently
	// (default GOMAXPROCS). Distinct from Options.Workers, the per-instance
	// edge-induction parallelism.
	BatchWorkers int
	// InstanceTimeout bounds each instance; an expired instance is recorded
	// as failed and the batch continues. Zero means no per-instance bound.
	InstanceTimeout time.Duration
	// CombineProperties checks each subject once against all FSMs instead
	// of the default paper configuration of one instance per (property,
	// subject) pair. The merged report stream is the same either way; only
	// the instance granularity (and so scheduling/sharing behaviour)
	// changes.
	CombineProperties bool
}

// BatchResult is the outcome of a CheckAll run.
type BatchResult struct {
	// Reports is the deterministic merged warning stream, totally ordered
	// by (Subject, Line, Col, FSM, Kind, Object, Type, Group) — byte-
	// identical output regardless of worker count or submission order.
	Reports []BatchReport
	// Instances is sorted by (Subject, Group).
	Instances []InstanceStatus
	// Scheduler reports queue depth and latency for the batch.
	Scheduler SchedulerStats
	// CacheLookups/CacheHits/CacheHitRate describe the SMT memo cache
	// shared across all instances (zeros with DisableConstraintCache).
	CacheLookups int64
	CacheHits    int64
	CacheHitRate float64
	// FrontendPrepares is how many frontend + alias-closure computations the
	// batch actually performed; with sharing (the default) it equals the
	// distinct-subject count rather than the instance count.
	FrontendPrepares int
	// IO aggregates partition-store traffic (bytes, cache and prefetch
	// effectiveness, load latencies) across every instance's phases.
	IO IOStats
	// Wall is the batch's wall-clock time.
	Wall time.Duration
}

// Failed returns the statuses of instances that did not finish cleanly.
func (b *BatchResult) Failed() []InstanceStatus {
	var out []InstanceStatus
	for _, st := range b.Instances {
		if st.Err != nil {
			out = append(out, st)
		}
	}
	return out
}

// CheckAll analyzes many subjects against the FSM properties as one batch:
// one checking instance per (subject, property) pair — the paper's §5
// configuration of hundreds of independent Grapple instances under a
// load-balancing scheduler — fanned across a bounded worker pool, all
// instances sharing one SMT constraint-memoization cache.
func CheckAll(subjects []Subject, fsms []*FSM, opts BatchOptions) (*BatchResult, error) {
	return CheckAllContext(context.Background(), subjects, fsms, opts)
}

// CheckAllContext is CheckAll under a batch-wide cancellation context (the
// per-instance deadline is BatchOptions.InstanceTimeout).
func CheckAllContext(ctx context.Context, subjects []Subject, fsms []*FSM, opts BatchOptions) (*BatchResult, error) {
	innerFSMs := make([]*fsm.FSM, len(fsms))
	for i, f := range fsms {
		innerFSMs[i] = f.inner
	}
	groups := scheduler.GroupPerFSM(innerFSMs)
	if opts.CombineProperties {
		groups = scheduler.OneGroup(innerFSMs)
	}
	subs := make([]scheduler.Subject, len(subjects))
	for i, s := range subjects {
		subs[i] = scheduler.Subject{Name: s.Name, Source: s.Source}
	}
	// Batch crash recovery is instance-granular: the scheduler's completion
	// log (not per-engine journals) decides what reruns, so the per-instance
	// checker options carry no journal flags.
	iopts := opts.Options
	iopts.Journal, iopts.Resume = false, false
	instances := scheduler.Expand(subs, groups, checkerOptions(iopts))
	obs, err := startObs(opts.Obs, opts.WorkDir)
	if err != nil {
		return nil, err
	}
	schedOpts := scheduler.Options{
		Workers:  opts.BatchWorkers,
		Timeout:  opts.InstanceTimeout,
		WorkDir:  opts.WorkDir,
		Journal:  opts.Journal,
		Resume:   opts.Resume,
		Trace:    obs.recorder(),
		Progress: obs.progress(),
	}
	if opts.DisableConstraintCache {
		schedOpts.CacheSize = -1
	}
	res, err := scheduler.Run(ctx, instances, schedOpts)
	obsErr := obs.finish()
	if err != nil {
		return nil, err
	}
	if obsErr != nil {
		return nil, obsErr
	}
	out := &BatchResult{
		Scheduler:        res.Sched,
		CacheLookups:     res.CacheLookups,
		CacheHits:        res.CacheHits,
		CacheHitRate:     res.CacheHitRate,
		FrontendPrepares: res.FrontendPrepares,
		Wall:             res.Wall,
	}
	for _, r := range res.Reports {
		out.Reports = append(out.Reports, BatchReport{Subject: r.Subject, Group: r.Group, Report: r.Report})
	}
	for _, ir := range res.Instances {
		st := InstanceStatus{
			Subject: ir.Subject, Group: ir.Group,
			Err: ir.Err, TimedOut: ir.TimedOut, Resumed: ir.Resumed,
			Wait: ir.Wait, Elapsed: ir.Elapsed,
		}
		if ir.Result != nil {
			st.Reports = len(ir.Result.Reports)
			st.Alias = phaseStats(ir.Result.Alias)
			st.Dataflow = phaseStats(ir.Result.Dataflow)
			out.IO.Add(st.Alias.IO)
			out.IO.Add(st.Dataflow.IO)
		}
		out.Instances = append(out.Instances, st)
	}
	return out, nil
}
