// Socket-leak example: the ZooKeeper NIOServerCnxnFactory.reconfigure leak
// of the paper's Fig. 1, reconstructed in MiniLang.
//
// configure() opens and binds a server socket; reconfigure() saves the old
// socket, opens a replacement, and closes the old one only after several
// statements that may throw. On the exception path the old socket is never
// closed — the channel "would remain open indefinitely due to the loss of
// reference".
//
//	go run ./examples/socketleak
package main

import (
	"fmt"
	"log"

	grapple "github.com/grapple-system/grapple"
)

const program = `
type Socket;
type IOException;
type Factory;

// configure opens the initial server channel (Fig. 1's configure()).
fun configure(f: Factory): Socket {
  var ss: Socket = new Socket();
  ss.bind();
  ss.configureBlocking();
  f.ss = ss;
  return ss;
}

// wakeupAndJoin models acceptThread.wakeupSelector()/join(), which can
// throw before the old channel is closed.
fun wakeupAndJoin(n: int) {
  if (n > 3) {
    var e: IOException = new IOException();
    throw e;
  }
  return;
}

// reconfigure rebinds to a new port (Fig. 1's reconfigure()): the old
// channel is closed only if nothing throws first.
fun reconfigure(f: Factory, n: int) {
  var oldSS: Socket = f.ss;
  var ss: Socket = new Socket();
  ss.bind();
  ss.configureBlocking();
  f.ss = ss;
  try {
    wakeupAndJoin(n);
    oldSS.close();
  } catch (e) {
    // Fig. 1's catch only logs; oldSS stays open. BUG.
  }
  ss.close();
  return;
}

fun main() {
  var f: Factory = new Factory();
  var first: Socket = configure(f);
  reconfigure(f, input());
  return;
}
`

func main() {
	res, err := grapple.Check(program, grapple.BuiltinCheckers(), grapple.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tracked objects: %d, warnings: %d\n\n", res.TrackedObjects, len(res.Reports))
	for _, r := range res.Reports {
		fmt.Printf("warning: %s\n", r)
	}
	fmt.Println()
	fmt.Println("Expected: the socket opened in configure() leaks on the path where")
	fmt.Println("wakeupAndJoin throws before oldSS.close() runs — the Fig. 1 bug.")
	fmt.Println("The replacement socket is closed on every path and is not reported.")
}
