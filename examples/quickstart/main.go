// Quickstart: check the paper's worked example (Fig. 3b) with the built-in
// Java-I/O checker.
//
// The program has four control-flow paths; the analysis must (a) report the
// path that creates the writer but never closes it (x >= 0 && y <= 0), and
// (b) NOT report the infeasible third path (x < 0 && y > 0) that a
// path-insensitive checker would flag — §2.1's motivating precision
// argument.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	grapple "github.com/grapple-system/grapple"
)

const program = `
type FileWriter;

fun main() {
  var out: FileWriter = null;
  var o: FileWriter = null;
  var x: int = input();
  var y: int = x;
  if (x >= 0) {
    out = new FileWriter();   // the tracked object
    o = out;                  // o and out alias
    y = y - 1;
  } else {
    y = y + 1;
  }
  if (y > 0) {
    out.write();
    o.close();                // close through the alias
  }
  return;
}
`

func main() {
	res, err := grapple.Check(program, grapple.BuiltinCheckers(), grapple.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("tracked objects: %d\n", res.TrackedObjects)
	fmt.Printf("alias phase:     %d -> %d edges (%d partitions)\n",
		res.Alias.EdgesBefore, res.Alias.EdgesAfter, res.Alias.Partitions)
	fmt.Printf("dataflow phase:  %d -> %d edges\n",
		res.Dataflow.EdgesBefore, res.Dataflow.EdgesAfter)
	fmt.Printf("infeasible flows pruned: %d (solver) + %d (encoding conflicts)\n\n",
		res.Alias.RejectedUnsat+res.Dataflow.RejectedUnsat,
		res.Alias.RejectedConflict+res.Dataflow.RejectedConflict)

	if len(res.Reports) == 0 {
		fmt.Println("no warnings (unexpected for this program!)")
		return
	}
	for _, r := range res.Reports {
		fmt.Printf("warning: %s\n", r)
	}
	fmt.Println()
	fmt.Println("Expected: exactly one leak — the writer created under x>=0 is")
	fmt.Println("not closed when y<=0. The write-without-create path (x<0, y>0)")
	fmt.Println("is infeasible and correctly not reported.")
}
