// Custom-FSM example: Grapple checks any user-specified finite-state
// property (the paper's input is "a set of FSMs describing the appropriate
// states and transitions"). Here a database-transaction protocol is
// specified twice — programmatically and as a parsed spec — and run over a
// small data-access layer.
//
// Protocol: a transaction must be begun before queries, and must end with
// exactly one commit or rollback; using it afterwards is an error.
//
//	go run ./examples/customfsm
package main

import (
	"fmt"
	"log"

	grapple "github.com/grapple-system/grapple"
)

const spec = `
# Transaction lifecycle property.
fsm txn for Txn {
  states Fresh Active Done;
  init Fresh;
  accept Fresh Done;
  new:      Fresh  -> Fresh;
  begin:    Fresh  -> Active;
  query:    Active -> Active;
  exec:     Active -> Active;
  commit:   Active -> Done;
  rollback: Active -> Done;
}
`

const program = `
type Txn;
type DBError;

fun runQuery(t: Txn, n: int) {
  t.query();
  if (n > 100) {
    var e: DBError = new DBError();
    throw e;
  }
  return;
}

// transfer commits on success and rolls back on failure: clean.
fun transfer(amount: int) {
  var t: Txn = new Txn();
  t.begin();
  try {
    runQuery(t, amount);
    t.commit();
  } catch (e) {
    t.rollback();
  }
  return;
}

// audit forgets to finish the transaction on the error path: BUG (leak).
fun audit(amount: int) {
  var t: Txn = new Txn();
  t.begin();
  try {
    runQuery(t, amount);
    t.commit();
  } catch (e) {
    // swallowed: no rollback!
  }
  return;
}

// report queries after commit: BUG (error transition).
fun report() {
  var t: Txn = new Txn();
  t.begin();
  t.commit();
  t.query();
  return;
}

fun main() {
  var amount: int = input();
  transfer(amount);
  audit(amount);
  report();
  return;
}
`

func main() {
	// Variant 1: parse the property from its spec text.
	parsed, err := grapple.ParseFSMs(spec)
	if err != nil {
		log.Fatal(err)
	}

	// Variant 2: build the same property programmatically.
	built, err := grapple.NewFSM("txn", "Txn", "Fresh", "Active", "Done")
	if err != nil {
		log.Fatal(err)
	}
	must(built.SetInit("Fresh"))
	must(built.SetAccept("Fresh", "Done"))
	for _, tr := range [][3]string{
		{"Fresh", "new", "Fresh"}, {"Fresh", "begin", "Active"},
		{"Active", "query", "Active"}, {"Active", "exec", "Active"},
		{"Active", "commit", "Done"}, {"Active", "rollback", "Done"},
	} {
		must(built.AddTransition(tr[0], tr[1], tr[2]))
	}

	for i, fsms := range [][]*grapple.FSM{parsed, {built}} {
		res, err := grapple.Check(program, fsms, grapple.Options{})
		if err != nil {
			log.Fatal(err)
		}
		src := "parsed spec"
		if i == 1 {
			src = "programmatic FSM"
		}
		fmt.Printf("--- %s: %d warnings ---\n", src, len(res.Reports))
		for _, r := range res.Reports {
			fmt.Printf("warning: %s\n", r)
		}
	}
	fmt.Println()
	fmt.Println("Expected (both variants): a leak in audit (transaction left Active")
	fmt.Println("on the exception path) and an error transition in report (query")
	fmt.Println("after commit). transfer is clean on every feasible path.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
