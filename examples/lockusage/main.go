// Lock-usage example: the paper's lock checker on a small request handler
// (§5.1 found one lock bug in HDFS where lock and unlock are mis-ordered).
//
// Three lock disciplines are shown:
//
//   - a balanced lock/unlock (clean),
//
//   - a conditional unlock whose skip path is infeasible (clean — this is
//     path sensitivity at work),
//
//   - an unlock-before-lock mis-order (the HDFS-style bug).
//
//     go run ./examples/lockusage
package main

import (
	"fmt"
	"log"

	grapple "github.com/grapple-system/grapple"
)

const program = `
type Lock;

// handleRead locks and unlocks correctly.
fun handleRead(n: int): int {
  var mu: Lock = new Lock();
  mu.lock();
  var result: int = n * 2;
  mu.unlock();
  return result;
}

// handleGuarded releases the lock under the same condition it acquired it:
// both branches agree, so no feasible path leaks the lock.
fun handleGuarded(n: int) {
  var mu: Lock = new Lock();
  if (n > 0) {
    mu.lock();
  }
  if (n > 0) {
    mu.unlock();
  }
  return;
}

// handleBroken mis-orders unlock and lock (the HDFS bug shape).
fun handleBroken() {
  var mu: Lock = new Lock();
  mu.unlock();   // BUG: unlock before lock
  mu.lock();
  mu.unlock();
  return;
}

fun main() {
  var n: int = input();
  handleRead(n);
  handleGuarded(n);
  handleBroken();
  return;
}
`

func main() {
	res, err := grapple.Check(program, grapple.BuiltinCheckers(), grapple.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tracked locks: %d, warnings: %d\n\n", res.TrackedObjects, len(res.Reports))
	for _, r := range res.Reports {
		fmt.Printf("warning: %s\n", r)
	}
	fmt.Println()
	fmt.Println("Expected: exactly one error-transition in handleBroken. handleGuarded")
	fmt.Println("is clean because the lock-without-unlock path (n>0 then !(n>0)) is")
	fmt.Println("infeasible — a path-insensitive checker would flag it.")
}
