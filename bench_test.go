// Benchmarks regenerating each evaluation artifact (DESIGN.md §3). Each
// table/figure has a benchmark exercising exactly the code path that
// produces it; `go run ./cmd/grapple-bench -all` prints the full tables over
// the four paper-scale subjects, while these benchmarks measure the same
// pipelines on the reduced mini-sim subject so `go test -bench=.` stays
// affordable. Ablation benchmarks cover the design choices DESIGN.md calls
// out: constraint memoization, interval encodings vs string constraints,
// loop-unroll depth, context-sensitive cloning, and the memory budget
// (out-of-core vs in-memory operation).
package grapple

import (
	"testing"
	"time"

	"github.com/grapple-system/grapple/internal/baseline"
	"github.com/grapple-system/grapple/internal/bench"
	"github.com/grapple-system/grapple/internal/callgraph"
	"github.com/grapple-system/grapple/internal/cfet"
	"github.com/grapple-system/grapple/internal/checker"
	"github.com/grapple-system/grapple/internal/constraint"
	"github.com/grapple-system/grapple/internal/engine"
	"github.com/grapple-system/grapple/internal/fsm"
	"github.com/grapple-system/grapple/internal/ir"
	"github.com/grapple-system/grapple/internal/lang"
	"github.com/grapple-system/grapple/internal/pgraph"
	"github.com/grapple-system/grapple/internal/smt"
	"github.com/grapple-system/grapple/internal/storage"
	"github.com/grapple-system/grapple/internal/symbolic"
	"github.com/grapple-system/grapple/internal/workload"
)

const benchSubject = "mini-sim"

// BenchmarkTable1SubjectGeneration measures generating all four subjects
// (Table 1's inputs).
func BenchmarkTable1SubjectGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range workload.Profiles() {
			s := workload.Generate(p)
			if s.LoC == 0 {
				b.Fatal("empty subject")
			}
		}
	}
}

// BenchmarkTable2Checkers measures the full four-checker pipeline plus
// ground-truth evaluation (Table 2's cells).
func BenchmarkTable2Checkers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run, err := bench.RunSubject(benchSubject, bench.RunOptions{WorkDir: b.TempDir()})
		if err != nil {
			b.Fatal(err)
		}
		if run.Tally.Totals().TP == 0 {
			b.Fatal("no bugs found")
		}
	}
}

// BenchmarkTable3Performance measures the end-to-end pipeline whose phase
// times and graph sizes fill Table 3.
func BenchmarkTable3Performance(b *testing.B) {
	p, _ := workload.ProfileByName(benchSubject)
	s := workload.Generate(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := checker.New(fsm.Builtins(), checker.Options{WorkDir: b.TempDir()})
		res, err := c.CheckSource(s.Source)
		if err != nil {
			b.Fatal(err)
		}
		if res.Dataflow.EdgesAfter == 0 {
			b.Fatal("empty closure")
		}
	}
}

// BenchmarkFigure9Breakdown measures the instrumented run that yields the
// per-component cost split.
func BenchmarkFigure9Breakdown(b *testing.B) {
	p, _ := workload.ProfileByName(benchSubject)
	s := workload.Generate(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := checker.New(fsm.Builtins(), checker.Options{WorkDir: b.TempDir()})
		res, err := c.CheckSource(s.Source)
		if err != nil {
			b.Fatal(err)
		}
		if res.Breakdown.Total() == 0 {
			b.Fatal("no breakdown recorded")
		}
	}
}

// BenchmarkTable4Caching measures the checking pipeline with and without
// constraint memoization (Table 4's TOC/TWC columns).
func BenchmarkTable4Caching(b *testing.B) {
	p, _ := workload.ProfileByName(benchSubject)
	s := workload.Generate(p)
	for _, cfg := range []struct {
		name    string
		disable bool
	}{{"WithCache", false}, {"WithoutCache", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cacheSize := 0
				if cfg.disable {
					cacheSize = -1
				}
				c := checker.New(fsm.Builtins(), checker.Options{
					WorkDir: b.TempDir(),
					Engine:  engine.Options{CacheSize: cacheSize, SolverOpts: smt.DefaultOptions()},
				})
				if _, err := c.CheckSource(s.Source); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// aliasGraph builds the phase-1 inputs for the engine-level benchmarks.
func aliasGraph(b *testing.B) (*cfet.ICFET, *pgraph.AliasGraph) {
	b.Helper()
	p, _ := workload.ProfileByName(benchSubject)
	s := workload.Generate(p)
	prog, err := lang.Parse(s.Source)
	if err != nil {
		b.Fatal(err)
	}
	info, err := lang.Resolve(prog)
	if err != nil {
		b.Fatal(err)
	}
	irProg, err := ir.Lower(info, ir.Options{})
	if err != nil {
		b.Fatal(err)
	}
	cg := callgraph.Build(irProg)
	ic, err := cfet.Build(irProg, symbolic.NewTable(), cfet.Options{})
	if err != nil {
		b.Fatal(err)
	}
	pr := pgraph.NewProgram(irProg, cg, ic, pgraph.Options{})
	return ic, pgraph.BuildAlias(pr)
}

// BenchmarkTable5StringBaseline compares the interval-encoding engine with
// the naive string-constraint engine on the alias analysis (Table 5).
func BenchmarkTable5StringBaseline(b *testing.B) {
	ic, ag := aliasGraph(b)
	b.Run("GrappleEncoding", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			en := engine.New(ic, ag.Ptr.G, engine.Options{
				Dir: b.TempDir(), MemoryBudget: 2 << 20, SolverOpts: smt.DefaultOptions(),
			}, nil)
			in := append([]storage.Edge(nil), ag.Edges...)
			if _, err := en.Run(in, ag.NumVerts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("NaiveStrings", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			se := baseline.NewStringEngine(ic, ag.Ptr.G, baseline.StringOptions{
				Dir: b.TempDir(), MemoryBudget: 2 << 20, Timeout: 5 * time.Minute,
			})
			in := append([]storage.Edge(nil), ag.Edges...)
			if _, err := se.Run(in, ag.NumVerts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTraditionalOOM measures how quickly the non-systemized in-memory
// implementation exhausts the memory budget under which the disk engine
// completes (§5.3's OOM result).
func BenchmarkTraditionalOOM(b *testing.B) {
	ic, ag := aliasGraph(b)
	for i := 0; i < b.N; i++ {
		st, _ := baseline.RunTraditional(ic, ag.Ptr.G, ag.Edges, baseline.TraditionalOptions{
			MemoryBudget: 64 << 10, Timeout: time.Minute,
		})
		if !st.OOM {
			b.Fatal("expected OOM under the small budget")
		}
	}
}

// --- ablation benchmarks ---

// BenchmarkAblationUnrollDepth sweeps the static loop-unroll bound (§3.1).
func BenchmarkAblationUnrollDepth(b *testing.B) {
	p, _ := workload.ProfileByName(benchSubject)
	s := workload.Generate(p)
	for _, depth := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "U1", 2: "U2", 4: "U4"}[depth], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := checker.New(fsm.Builtins(), checker.Options{
					WorkDir: b.TempDir(), UnrollDepth: depth,
				})
				if _, err := c.CheckSource(s.Source); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationContextSensitivity compares full cloning against a
// context-insensitive configuration (every callee shared, §2.1's trade-off).
func BenchmarkAblationContextSensitivity(b *testing.B) {
	p, _ := workload.ProfileByName(benchSubject)
	s := workload.Generate(p)
	for _, cfg := range []struct {
		name        string
		maxContexts int
	}{{"FullCloning", 0}, {"ContextInsensitive", 1}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := checker.New(fsm.Builtins(), checker.Options{WorkDir: b.TempDir()})
				if cfg.maxContexts > 0 {
					c.Opts.Clone.MaxContexts = cfg.maxContexts
				}
				if _, err := c.CheckSource(s.Source); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMemoryBudget sweeps the engine budget: large budgets run
// in memory with one partition; small budgets exercise partitioning,
// repartitioning and disk traffic (§4.3).
func BenchmarkAblationMemoryBudget(b *testing.B) {
	p, _ := workload.ProfileByName(benchSubject)
	s := workload.Generate(p)
	for _, cfg := range []struct {
		name   string
		budget int64
	}{{"InMemory256MiB", 256 << 20}, {"OutOfCore1MiB", 1 << 20}, {"OutOfCore256KiB", 256 << 10}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := checker.New(fsm.Builtins(), checker.Options{
					WorkDir: b.TempDir(),
					Engine:  engine.Options{MemoryBudget: cfg.budget, SolverOpts: smt.DefaultOptions()},
				})
				if _, err := c.CheckSource(s.Source); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- component micro-benchmarks ---

// BenchmarkPathConstraintDecode measures ICFET path decoding (Algorithm 1),
// the "constraint lookup" slice of Figure 9.
func BenchmarkPathConstraintDecode(b *testing.B) {
	ic, _ := aliasGraph(b)
	m := ic.Methods[len(ic.Methods)-1] // main
	var deepest uint64
	for id := range m.Nodes {
		if id > deepest {
			deepest = id
		}
	}
	enc := cfet.Enc{cfet.Interval(m.Method, 0, deepest)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ic.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodingMerge measures the §4.2 merge cases.
func BenchmarkEncodingMerge(b *testing.B) {
	ic := &cfet.ICFET{MaxEncLen: 64}
	e1 := cfet.Enc{cfet.Interval(0, 0, 2), cfet.CallElem(7), cfet.Interval(1, 0, 0)}
	e2 := cfet.Enc{cfet.Interval(1, 0, 5), cfet.RetElem(7), cfet.Interval(0, 2, 6)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ic.Merge(e1, e2); !ok {
			b.Fatal("merge failed")
		}
	}
}

// BenchmarkSolver measures the Fourier-Motzkin decision procedure on the
// paper's Fig. 6 constraint.
func BenchmarkSolver(b *testing.B) {
	tab := symbolic.NewTable()
	x := symbolic.Var(tab.Intern("x"))
	a := symbolic.Var(tab.Intern("a"))
	y := symbolic.Var(tab.Intern("y"))
	c := constraint.Conj{
		constraint.NewAtom(x, constraint.GT, symbolic.Const(0)),
		constraint.NewAtom(a, constraint.EQ, x.Scale(2)),
		constraint.NewAtom(a, constraint.LT, symbolic.Const(0)),
		constraint.NewAtom(y, constraint.EQ, a.Add(symbolic.Const(1))),
		constraint.NewAtom(y, constraint.GE, symbolic.Const(0)),
	}
	s := smt.New(smt.DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Solve(c) != smt.Unsat {
			b.Fatal("wrong verdict")
		}
	}
}

// BenchmarkRelCompose measures FSM transition-relation composition, the
// per-join typestate cost.
func BenchmarkRelCompose(b *testing.B) {
	f := fsm.BuiltinSocket()
	r1 := fsm.EventRel(f, "bind")
	r2 := fsm.EventRel(f, "close")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fsm.Compose(r1, r2) == (fsm.Rel{}) {
			b.Fatal("empty relation")
		}
	}
}

// BenchmarkAblationRepartitioning compares eager repartitioning (the
// paper's §4.3 choice for variable-sized edge data) against deferring all
// splits, under a budget small enough that partitions outgrow it.
func BenchmarkAblationRepartitioning(b *testing.B) {
	ic, ag := aliasGraph(b)
	for _, cfg := range []struct {
		name   string
		defer_ bool
	}{{"Eager", false}, {"Deferred", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				en := engine.New(ic, ag.Ptr.G, engine.Options{
					Dir: b.TempDir(), MemoryBudget: 512 << 10,
					DeferRepartition: cfg.defer_, SolverOpts: smt.DefaultOptions(),
				}, nil)
				in := append([]storage.Edge(nil), ag.Edges...)
				if _, err := en.Run(in, ag.NumVerts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
