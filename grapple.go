// Package grapple is a single-machine, disk-based graph system for fully
// context-sensitive, path-sensitive finite-state property checking of large
// codebases — a from-scratch Go implementation of "Grapple: A Graph System
// for Static Finite-State Property Checking of Large-Scale Systems Code"
// (EuroSys 2019).
//
// Grapple takes (1) a program, (2) object types of interest, and (3) FSMs
// describing the legal states and transitions of those types; it tracks
// every object of every specified type through a context- and
// path-sensitive alias analysis and dataflow analysis — both formulated as
// dynamic transitive closures over disk-resident program graphs — and
// reports every object that some feasible path drives into an error state
// or leaves in a non-accepting state at program exit.
//
// Quick start:
//
//	res, err := grapple.Check(source, grapple.BuiltinCheckers(), grapple.Options{})
//	for _, r := range res.Reports {
//	    fmt.Println(r)
//	}
//
// The input language is MiniLang, a small Java-like language providing the
// constructs the analyses consume (allocation, assignment, field store/
// load, calls, branches, loops, exceptions); see the README for its
// grammar. FSMs can be the built-in checkers (Java-I/O, lock usage,
// exception handling, socket usage — the four properties of the paper's
// evaluation), parsed from a spec file, or built programmatically.
package grapple

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/grapple-system/grapple/internal/analysis"
	"github.com/grapple-system/grapple/internal/checker"
	"github.com/grapple-system/grapple/internal/engine"
	"github.com/grapple-system/grapple/internal/fsm"
	"github.com/grapple-system/grapple/internal/fsm/packs"
	"github.com/grapple-system/grapple/internal/gofront"
	"github.com/grapple-system/grapple/internal/ir"
	"github.com/grapple-system/grapple/internal/lang"
	"github.com/grapple-system/grapple/internal/metrics"
	"github.com/grapple-system/grapple/internal/smt"
	"github.com/grapple-system/grapple/internal/trace"
)

// FSM is a finite-state property specification for one object type.
type FSM struct {
	inner *fsm.FSM
}

// NewFSM creates an FSM for objects of the given type. The first state
// listed is the initial state; an implicit absorbing "Error" state is added
// and any (state, event) pair without a transition moves to it.
func NewFSM(name, objectType string, states ...string) (*FSM, error) {
	f, err := fsm.New(name, objectType, states...)
	if err != nil {
		return nil, err
	}
	return &FSM{inner: f}, nil
}

// SetInit selects the initial state by name.
func (f *FSM) SetInit(state string) error { return f.inner.SetInit(state) }

// SetAccept marks the states acceptable when the object's program exits.
func (f *FSM) SetAccept(states ...string) error { return f.inner.SetAccept(states...) }

// AddTransition adds "from --event--> to". Events are method names invoked
// on tracked objects; "new" is the implicit allocation event.
func (f *FSM) AddTransition(from, event, to string) error {
	return f.inner.AddTransition(from, event, to)
}

// Name returns the FSM's name.
func (f *FSM) Name() string { return f.inner.Name }

// Type returns the object type the FSM applies to.
func (f *FSM) Type() string { return f.inner.Type }

// ParseFSMs parses FSM specifications from the text format:
//
//	fsm io for FileWriter {
//	  states Init Open Close;
//	  init Init;
//	  accept Init Close;
//	  new:   Init -> Open;
//	  write: Open -> Open;
//	  close: Open -> Close;
//	}
func ParseFSMs(src string) ([]*FSM, error) {
	inner, err := fsm.ParseSpec(src)
	if err != nil {
		return nil, err
	}
	out := make([]*FSM, len(inner))
	for i, f := range inner {
		out[i] = &FSM{inner: f}
	}
	return out, nil
}

// BuiltinCheckers returns the four checkers of the paper's evaluation
// (§5): Java I/O, lock usage, exception handling, and socket usage.
func BuiltinCheckers() []*FSM {
	inner := fsm.Builtins()
	out := make([]*FSM, len(inner))
	for i, f := range inner {
		out[i] = &FSM{inner: f}
	}
	return out
}

// Kind classifies a warning.
type Kind = checker.Kind

// Warning kinds.
const (
	// KindError marks feasible event sequences reaching the FSM's error
	// state (write-after-close, unlock-before-lock, ...).
	KindError = checker.KindError
	// KindLeak marks objects left in a non-accepting state at program exit
	// (unclosed files/sockets, held locks, uncaught exceptions).
	KindLeak = checker.KindLeak
)

// Report is one warning.
type Report = checker.Report

// WitnessStep is one source-level step of a warning's witness path.
type WitnessStep = checker.WitnessStep

// Position is a source location.
type Position struct {
	Line int
	Col  int
}

// Options tunes a checking run. The zero value gives sensible defaults.
type Options struct {
	// WorkDir holds the on-disk graph partitions; a temporary directory is
	// used (and removed) when empty.
	WorkDir string
	// MemoryBudget bounds the engine's in-memory edge data in bytes; two
	// partitions loaded together never exceed it (default 256 MiB).
	MemoryBudget int64
	// Workers sets edge-induction parallelism (default GOMAXPROCS).
	Workers int
	// UnrollDepth statically unrolls loops this many times (default 2).
	UnrollDepth int
	// MaxNodesPerMethod bounds per-method symbolic-execution trees.
	MaxNodesPerMethod int
	// DisableConstraintCache turns off LRU memoization of solver verdicts
	// (used by the Table-4 ablation).
	DisableConstraintCache bool
	// Bind maps extra object type names onto FSM names; an FSM always
	// applies to its own declared type.
	Bind map[string]string
	// RecordPointsTo retains the alias phase's points-to facts so the
	// Result can answer "what objects does a variable point to under a
	// particular context?" (the query class the paper's cloning-based
	// design exists to support, §2.1).
	RecordPointsTo bool
	// DumpDOT, when non-empty, writes the generated program graphs as
	// Graphviz files (alias.dot, dataflow.dot) into that directory.
	DumpDOT string
	// Prune controls constant-driven infeasible-branch pruning (default on).
	// The IR-level pre-analysis proves branch conditions constant, and CFET
	// construction then skips the statically-dead arms; the reports are
	// identical but the trees — and every downstream phase — are smaller.
	// Set PruneOff for the unpruned baseline.
	Prune PruneMode
	// Slice controls property-relevance slicing (default on). A
	// flow-insensitive points-to pass computes which functions and branches
	// can possibly affect an object of a checked FSM's type; irrelevant
	// functions collapse to stubs and irrelevant branches never split the
	// CFET. Verdicts are preserved (docs/slicing.md gives the argument);
	// set SliceOff for the unsliced baseline. Slicing is skipped
	// automatically when RecordPointsTo is set, since that query class
	// spans untracked variables too.
	Slice SliceMode
	// Journal checkpoints the engines' superstep state to per-phase run
	// journals under WorkDir after every superstep, so a crashed or killed
	// run can be continued with Resume instead of restarting (docs/
	// resume.md). Requires a persistent WorkDir to be useful.
	Journal bool
	// Resume continues a previously journaled run from WorkDir, replaying
	// each phase from its last durable checkpoint; the reports are identical
	// to an uninterrupted run. Requires WorkDir and implies Journal. A
	// missing, corrupt, or mismatched journal is an error — resume never
	// silently starts cold.
	Resume bool
	// Obs configures the observability layer — execution tracing, the
	// progress heartbeat, and the pprof debug server (docs/observability.md).
	// The zero value disables all of it; enabling any of it never changes
	// the reports.
	Obs ObsOptions
	// NoDevirt disables the Go frontend's interface devirtualization:
	// interface method calls havoc instead of resolving against the
	// package's type hierarchy (docs/gofront.md). Only affects Go inputs.
	NoDevirt bool
	// NoMHP disables the Go frontend's goroutine modeling: `go` statements
	// havoc and inline the callee instead of lowering to spawn statements,
	// so the may-happen-in-parallel pass and the GR lint rules see nothing
	// (docs/concurrency.md). Only affects Go inputs.
	NoMHP bool
}

// gofrontOptions lowers the public ablation toggles into the frontend's.
func gofrontOptions(opts Options) gofront.Options {
	return gofront.Options{NoDevirt: opts.NoDevirt, NoMHP: opts.NoMHP}
}

// PruneMode selects whether infeasible-branch pruning runs.
type PruneMode = checker.PruneMode

// Prune modes.
const (
	// PruneDefault (the zero value) enables pruning.
	PruneDefault = checker.PruneDefault
	// PruneOn explicitly enables pruning.
	PruneOn = checker.PruneOn
	// PruneOff disables pruning.
	PruneOff = checker.PruneOff
)

// SliceMode selects whether property-relevance slicing runs.
type SliceMode = checker.SliceMode

// Slice modes.
const (
	// SliceDefault (the zero value) enables slicing.
	SliceDefault = checker.SliceDefault
	// SliceOn explicitly enables slicing.
	SliceOn = checker.SliceOn
	// SliceOff disables slicing.
	SliceOff = checker.SliceOff
)

// PointsToFact is one alias-phase result: under one clone of Method, Var
// may reference the object of type ObjType allocated at ObjPos, under
// Constraint ("true" when unconditional).
type PointsToFact = checker.PointsToFact

// PhaseStats summarizes one engine phase for the evaluation tables.
type PhaseStats struct {
	Vertices uint32
	// CFETPaths is the number of encoded CFET paths the phase decodes
	// against; PrunedBranches counts the branch sites the pre-analysis
	// resolved before the tree was built (0 with Options.Prune off).
	CFETPaths      int
	PrunedBranches int
	// SlicedFunctions and SlicedBranches count what property-relevance
	// slicing removed: methods collapsed to stubs, and branch sites whose
	// both arms were irrelevant (0 with Options.Slice off).
	SlicedFunctions   int
	SlicedBranches    int
	EdgesBefore       int64
	EdgesAfter        int64
	Iterations        int64
	Partitions        int
	Repartitions      int64
	ConstraintsSolved int64
	CacheLookups      int64
	CacheHits         int64
	RejectedUnsat     int64
	RejectedConflict  int64
	SolveTime         time.Duration
	// Checkpoints and JournalBytes describe the phase's crash-recovery
	// journal traffic (both 0 with Options.Journal off).
	Checkpoints  int64
	JournalBytes int64
	// Unlowered counts Go constructs the frontend soundly over-approximated
	// (havocked) instead of modeling precisely. It is a frontend-wide count,
	// reported identically on both phases; always 0 in MiniLang mode.
	Unlowered int
	// IO reports the phase's partition-store traffic: bytes moved, cache
	// and prefetch effectiveness, and the perceived load-latency histogram.
	IO IOStats
	// SolveLatency is the per-call SMT solve latency histogram (cache
	// misses only), bucketed by metrics.SolveLatencyBuckets.
	SolveLatency LatencyCounts
}

// IOStats is the partition store's traffic summary for one engine phase.
// Loads count reads that reached the disk; CacheHits count loads served
// from the in-memory partition cache; PrefetchHits count disk loads whose
// latency overlapped the previous iteration's computation.
type IOStats = metrics.IOSnapshot

// LatencyCounts is a fixed-bucket latency histogram (per-bucket counts
// aligned with metrics.SolveLatencyBuckets).
type LatencyCounts = metrics.LatencyCounts

// SolveLatencyBuckets returns the exclusive upper bounds of the
// PhaseStats.SolveLatency histogram buckets (the final bucket is unbounded);
// pass it to LatencyCounts.String to render the histogram.
func SolveLatencyBuckets() []time.Duration { return metrics.SolveLatencyBuckets }

// Breakdown is the Figure-9 cost split (percent of summed component time).
type Breakdown struct {
	IOPct      float64
	DecodePct  float64
	SolvePct   float64
	ComputePct float64
}

// Result is the outcome of a checking run.
type Result struct {
	// Reports lists warnings, ordered by source position.
	Reports []Report
	// Alias and Dataflow summarize the two closure phases.
	Alias    PhaseStats
	Dataflow PhaseStats
	// GenTime is frontend + graph generation ("preprocessing" in Table 3);
	// ComputeTime covers both engine runs and FSM checking.
	GenTime     time.Duration
	ComputeTime time.Duration
	Breakdown   Breakdown
	// TrackedObjects is the number of allocation instances with FSMs.
	TrackedObjects int
	// PointsTo holds alias facts when Options.RecordPointsTo is set.
	PointsTo []PointsToFact
}

// QueryPointsTo returns the recorded alias facts for a variable of a
// method, across every clone and block. Requires Options.RecordPointsTo.
func (r *Result) QueryPointsTo(method, varName string) []PointsToFact {
	var out []PointsToFact
	for _, f := range r.PointsTo {
		if f.Method == method && f.Var == varName {
			out = append(out, f)
		}
	}
	return out
}

func phaseStats(p checker.PhaseStats) PhaseStats {
	return PhaseStats{
		Vertices:          p.Vertices,
		CFETPaths:         p.CFETPaths,
		PrunedBranches:    p.PrunedBranches,
		SlicedFunctions:   p.SlicedFunctions,
		SlicedBranches:    p.SlicedBranches,
		EdgesBefore:       p.EdgesBefore,
		EdgesAfter:        p.EdgesAfter,
		Iterations:        p.Iterations,
		Partitions:        p.Partitions,
		Repartitions:      p.Repartitions,
		ConstraintsSolved: p.ConstraintsSolved,
		CacheLookups:      p.CacheLookups,
		CacheHits:         p.CacheHits,
		RejectedUnsat:     p.RejectedUnsat,
		RejectedConflict:  p.RejectedConflict,
		SolveTime:         p.SolveTime,
		Checkpoints:       p.Checkpoints,
		JournalBytes:      p.JournalBytes,
		IO:                p.IO,
		SolveLatency:      p.SolveLatency,
	}
}

// checkerOptions lowers public Options into the internal checker's form.
func checkerOptions(opts Options) checker.Options {
	cacheSize := 0
	if opts.DisableConstraintCache {
		cacheSize = -1
	}
	co := checker.Options{
		WorkDir:     opts.WorkDir,
		UnrollDepth: opts.UnrollDepth,
		Engine: engine.Options{
			MemoryBudget: opts.MemoryBudget,
			Workers:      opts.Workers,
			CacheSize:    cacheSize,
			SolverOpts:   smt.DefaultOptions(),
		},
		Bind:           opts.Bind,
		RecordPointsTo: opts.RecordPointsTo,
		DumpDOT:        opts.DumpDOT,
		Prune:          opts.Prune,
		Slice:          opts.Slice,
		Journal:        opts.Journal,
		Resume:         opts.Resume,
	}
	if opts.MaxNodesPerMethod > 0 {
		co.CFET.MaxNodesPerMethod = opts.MaxNodesPerMethod
	}
	return co
}

// publicResult converts the internal checker result.
func publicResult(res *checker.Result) *Result {
	io, dec, sol, comp := res.Breakdown.Percentages()
	return &Result{
		Reports:  res.Reports,
		Alias:    phaseStats(res.Alias),
		Dataflow: phaseStats(res.Dataflow),
		GenTime:  res.GenTime, ComputeTime: res.ComputeTime,
		Breakdown:      Breakdown{IOPct: io, DecodePct: dec, SolvePct: sol, ComputePct: comp},
		TrackedObjects: res.TrackedObjects,
		PointsTo:       res.PointsTo,
	}
}

// Check analyzes MiniLang source against the given FSM properties.
func Check(source string, fsms []*FSM, opts Options) (*Result, error) {
	inner := make([]*fsm.FSM, len(fsms))
	for i, f := range fsms {
		inner[i] = f.inner
	}
	obs, err := startObs(opts.Obs, opts.WorkDir)
	if err != nil {
		return nil, err
	}
	co := checkerOptions(opts)
	obs.bind(&co)
	c := checker.New(inner, co)
	res, err := c.CheckSource(source)
	obsErr := obs.finish()
	if err != nil {
		return nil, err
	}
	if obsErr != nil {
		return nil, obsErr
	}
	return publicResult(res), nil
}

// CheckFile analyzes a MiniLang source file.
func CheckFile(path string, fsms []*FSM, opts Options) (*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("grapple: %w", err)
	}
	return Check(string(data), fsms, opts)
}

// Diagnostic is one lint finding: a stable code (see docs/lint.md), the
// source position, the enclosing function, and a message.
type Diagnostic = analysis.Diagnostic

// Lint parses and lowers MiniLang source, runs the IR-level dataflow lint
// passes (use-before-init, dead stores, constant conditions, unused
// allocations), and returns the findings ordered by source position. It does
// not run the alias/typestate pipeline, so it is cheap enough for an
// edit-compile loop.
func Lint(source string) ([]Diagnostic, error) {
	prog, err := lang.Parse(source)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	info, err := lang.Resolve(prog)
	if err != nil {
		return nil, fmt.Errorf("resolve: %w", err)
	}
	p, err := ir.Lower(info, ir.Options{})
	if err != nil {
		return nil, fmt.Errorf("lower: %w", err)
	}
	res, err := analysis.Run(p, analysis.Default())
	if err != nil {
		return nil, err
	}
	return res.Diagnostics, nil
}

// LintFile runs Lint on a source file.
func LintFile(path string) ([]Diagnostic, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("grapple: %w", err)
	}
	return Lint(string(data))
}

// lintRules maps each stable diagnostic code to the analyzer that emits it
// (two constant-condition codes share one analyzer).
var lintRules = map[string]*analysis.Analyzer{
	"RD001": analysis.ReachDef,
	"DS001": analysis.DeadStore,
	"CF001": analysis.Unreachable,
	"CF002": analysis.Unreachable,
	"UA001": analysis.UnusedAlloc,
	"ND001": analysis.NilDeref,
	"LK001": analysis.LeakCall,
	"DP001": analysis.DeadParam,
	"GR001": analysis.GoroutineLeak,
	"GR002": analysis.SharedSync,
}

// LintCodes returns every stable diagnostic code Lint can emit, sorted.
func LintCodes() []string {
	out := make([]string, 0, len(lintRules))
	for code := range lintRules {
		out = append(out, code)
	}
	sort.Strings(out)
	return out
}

// LintWith runs only the lint passes that emit the requested diagnostic
// codes (dependencies like the points-to solver are pulled in as needed but
// report nothing themselves). An unknown code is a usage error. An empty
// code list behaves like Lint.
func LintWith(source string, ruleCodes []string) ([]Diagnostic, error) {
	if len(ruleCodes) == 0 {
		return Lint(source)
	}
	want := map[string]bool{}
	var passes []*analysis.Analyzer
	seen := map[*analysis.Analyzer]bool{}
	for _, code := range ruleCodes {
		a, ok := lintRules[code]
		if !ok {
			return nil, fmt.Errorf("unknown lint rule %q (known rules: %s)",
				code, strings.Join(LintCodes(), ", "))
		}
		want[code] = true
		if !seen[a] {
			seen[a] = true
			passes = append(passes, a)
		}
	}
	prog, err := lang.Parse(source)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	info, err := lang.Resolve(prog)
	if err != nil {
		return nil, fmt.Errorf("resolve: %w", err)
	}
	p, err := ir.Lower(info, ir.Options{})
	if err != nil {
		return nil, fmt.Errorf("lower: %w", err)
	}
	res, err := analysis.Run(p, passes)
	if err != nil {
		return nil, err
	}
	// A shared analyzer can emit sibling codes the caller did not ask for
	// (CF001 vs CF002); keep only the requested ones.
	var out []Diagnostic
	for _, d := range res.Diagnostics {
		if want[d.Code] {
			out = append(out, d)
		}
	}
	return out, nil
}

// PropertyPack describes one entry of the built-in property-pack library:
// an FSM typestate property plus the Go binding rules that map real call
// patterns (os.Open, mu.Lock, rows.Close, ...) onto its alphabet. Packs are
// selected by name in CheckGoPackage and `grapple run -pack`.
type PropertyPack struct {
	// Name selects the pack.
	Name string
	// Doc is a one-line description.
	Doc string
	// Type is the tracked object type (gofront spelling, e.g. "os_File").
	Type string
	// FSMName is the name of the pack's FSM.
	FSMName string
}

// Packs lists the built-in property packs, sorted by name.
func Packs() []PropertyPack {
	all := packs.All()
	out := make([]PropertyPack, len(all))
	for i, p := range all {
		out[i] = PropertyPack{Name: p.Name, Doc: p.Doc, Type: p.FSM.Type, FSMName: p.FSM.Name}
	}
	return out
}

// GoPackage is a Go package lowered to MiniLang: the analyzable program
// text plus the machinery to map combined-unit report lines back to the
// original Go files.
type GoPackage struct {
	res *gofront.Result
}

// Source returns the lowered MiniLang program text.
func (g *GoPackage) Source() string { return g.res.Source() }

// Locate maps a combined-unit line (Report.Pos.Line, Diagnostic.Pos.Line)
// back to the original (Go file, line).
func (g *GoPackage) Locate(line int) (file string, goLine int) { return g.res.Locate(line) }

// Unlowered counts the Go constructs the frontend havocked (soundly
// over-approximated) instead of modeling precisely.
func (g *GoPackage) Unlowered() int { return g.res.Stats.Havocs }

// UnloweredByKind breaks Unlowered down by construct kind.
func (g *GoPackage) UnloweredByKind() map[string]int {
	out := make(map[string]int, len(g.res.Stats.ByKind))
	for k, v := range g.res.Stats.ByKind {
		out[k] = v
	}
	return out
}

// Functions is the number of Go functions and methods lowered (including
// lifted closures).
func (g *GoPackage) Functions() int { return g.res.Stats.Functions }

// Devirt reports the devirtualizer's interface-call partition: sites
// examined, resolved to a direct call, lowered to a path-split dispatch,
// and left open (havocked).
func (g *GoPackage) Devirt() (calls, direct, split, open int) {
	s := g.res.Stats
	return s.IfaceCalls, s.IfaceDirect, s.IfaceSplit, s.IfaceOpen
}

// resolvePacks maps pack names to library entries; at least one is required.
func resolvePacks(packNames []string) ([]*packs.Pack, error) {
	if len(packNames) == 0 {
		return nil, fmt.Errorf("grapple: checking Go source requires at least one property pack (have: %s)",
			strings.Join(packs.Names(), ", "))
	}
	out := make([]*packs.Pack, 0, len(packNames))
	seen := map[string]bool{}
	for _, name := range packNames {
		if seen[name] {
			continue
		}
		seen[name] = true
		p, err := packs.Get(name)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// checkLoweredGo runs the full pipeline on an already-lowered package. obs
// may be nil (no observability features enabled); ownership stays with the
// caller, which started it before lowering.
func checkLoweredGo(g *gofront.Result, selected []*packs.Pack, opts Options, obs *obsSession) (*Result, error) {
	info, err := lang.Resolve(g.Prog)
	if err != nil {
		return nil, fmt.Errorf("resolve lowered Go: %w", err)
	}
	p, err := ir.Lower(info, ir.Options{})
	if err != nil {
		return nil, fmt.Errorf("lower lowered Go: %w", err)
	}
	inner := make([]*fsm.FSM, len(selected))
	for i, pk := range selected {
		inner[i] = pk.FSM
	}
	co := checkerOptions(opts)
	obs.bind(&co)
	if co.Engine.MaxVariants == 0 {
		// Real-Go subjects produce more per-edge path variants than
		// hand-written MiniLang (lifted closures, defer flushing, and
		// branch duplication multiply call edges per site), so the default
		// widening cap loses the call/return balance that keeps helper
		// frames honest. A higher cap keeps self-checks report-clean.
		co.Engine.MaxVariants = 32
	}
	res, err := checker.New(inner, co).CheckIR(p)
	if err != nil {
		return nil, err
	}
	out := publicResult(res)
	out.Alias.Unlowered = g.Stats.Havocs
	out.Dataflow.Unlowered = g.Stats.Havocs
	return out, nil
}

// CheckGoPackage lowers the non-test .go files of dir through the Go
// frontend using the named property packs' binding rules, then runs the
// full pipeline — points-to, slicing, CFET construction, interval encoding,
// the disk engine, SMT path conditions — on the lowered program. Report
// positions are in the combined lowered unit; map them back with
// GoPackage.Locate.
func CheckGoPackage(dir string, packNames []string, opts Options) (*Result, *GoPackage, error) {
	selected, err := resolvePacks(packNames)
	if err != nil {
		return nil, nil, err
	}
	obs, err := startObs(opts.Obs, opts.WorkDir)
	if err != nil {
		return nil, nil, err
	}
	sp := obs.span("gofront", "gofront-lower")
	g, err := gofront.LowerPackageWith(dir, packs.MergedRules(selected), gofrontOptions(opts))
	if err != nil {
		obs.finish()
		return nil, nil, err
	}
	sp.End(trace.Args{"funcs": len(g.Prog.Funs), "havocs": g.Stats.Havocs})
	res, err := checkLoweredGo(g, selected, opts, obs)
	obsErr := obs.finish()
	if err != nil {
		return nil, nil, err
	}
	if obsErr != nil {
		return nil, nil, obsErr
	}
	return res, &GoPackage{res: g}, nil
}

// CheckGoFiles is CheckGoPackage over an explicit file list (one package).
func CheckGoFiles(paths []string, packNames []string, opts Options) (*Result, *GoPackage, error) {
	selected, err := resolvePacks(packNames)
	if err != nil {
		return nil, nil, err
	}
	obs, err := startObs(opts.Obs, opts.WorkDir)
	if err != nil {
		return nil, nil, err
	}
	sp := obs.span("gofront", "gofront-lower")
	g, err := gofront.LowerFilesWith(paths, packs.MergedRules(selected), gofrontOptions(opts))
	if err != nil {
		obs.finish()
		return nil, nil, err
	}
	sp.End(trace.Args{"funcs": len(g.Prog.Funs), "havocs": g.Stats.Havocs})
	res, err := checkLoweredGo(g, selected, opts, obs)
	obsErr := obs.finish()
	if err != nil {
		return nil, nil, err
	}
	if obsErr != nil {
		return nil, nil, obsErr
	}
	return res, &GoPackage{res: g}, nil
}

// LintGoPackage lowers the non-test .go files of dir and runs the IR-level
// lint passes on the result. packNames select whose binding rules shape the
// lowering (allocation and event mapping); empty means every pack's rules
// merged. Diagnostic positions map back through GoPackage.Locate.
func LintGoPackage(dir string, packNames []string, ruleCodes []string) ([]Diagnostic, *GoPackage, error) {
	return LintGoPackageWith(dir, packNames, ruleCodes, Options{})
}

// LintGoPackageWith is LintGoPackage with explicit options (only the
// frontend toggles NoDevirt/NoMHP are consulted).
func LintGoPackageWith(dir string, packNames []string, ruleCodes []string, opts Options) ([]Diagnostic, *GoPackage, error) {
	var selected []*packs.Pack
	if len(packNames) == 0 {
		selected = packs.All()
	} else {
		var err error
		if selected, err = resolvePacks(packNames); err != nil {
			return nil, nil, err
		}
	}
	g, err := gofront.LowerPackageWith(dir, packs.MergedRules(selected), gofrontOptions(opts))
	if err != nil {
		return nil, nil, err
	}
	diags, err := LintWith(g.Source(), ruleCodes)
	if err != nil {
		return nil, nil, err
	}
	return diags, &GoPackage{res: g}, nil
}
