package ablation

// The ablation-identity subject: interface dispatch and a goroutine sharing
// a tracked file, so both the devirtualizer and the MHP pass have something
// to change. With -nodevirt -nomhp the pipeline must reproduce the pre-pass
// report stream on this package byte for byte (testdata/golden/ablation.json).

import (
	"os"
	"sync"
)

type sink interface {
	record(f *os.File)
}

type writer struct{}

func (writer) record(f *os.File) { f.Write(nil) }

type noter struct{}

func (noter) record(f *os.File) { f.Sync() }

func ship(s sink, f *os.File) {
	s.record(f)
}

func worker(f *os.File, mu *sync.Mutex) {
	mu.Lock()
	f.Write(nil)
	mu.Unlock()
}

func Run(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	mu := &sync.Mutex{}
	go worker(f, mu)
	ship(writer{}, f)
	ship(noter{}, f)
	return nil // f is never closed: the file-handle pack reports the leak
}
