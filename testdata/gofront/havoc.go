package subject

// havoc piles up constructs outside the supported subset; every one must
// lower soundly (over-approximated) rather than error.
func havoc(xs []int, m map[string]int) int {
	ch := make(chan int, 1)
	go func() { ch <- 1 }()
	total := <-ch
	for _, x := range xs {
		total += x
	}
	for k := range m {
		total += len(k)
	}
	defer func() { recover() }()
	select {
	case v := <-ch:
		total += v
	default:
	}
	return total
}
