package subject

import "os"

// openClose is the canonical file-handle happy path.
func openClose(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	f.Read(nil)
	f.Close()
	return nil
}
