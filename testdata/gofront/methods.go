package subject

import "sync"

// Counter exercises methods, struct fields, and mutex tracking.
type Counter struct {
	mu sync.Mutex
	n  int
}

func (c *Counter) Incr() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *Counter) Value() int {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	return v
}
