package subject

import "os"

// closure exercises closure lifting with captured file handles.
func closure(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	fail := func(e error) error {
		f.Close()
		return e
	}
	if _, err := f.Write(nil); err != nil {
		return fail(err)
	}
	return fail(nil)
}
