package subject

import "os"

// errflow exercises the error-return modeling: err != nil guards must ride
// the SMT path-condition correlation.
func errflow(a, b string) error {
	f, err := os.Open(a)
	if err != nil {
		return err
	}
	g, err2 := os.Open(b)
	if err2 != nil {
		f.Close()
		return err2
	}
	f.Close()
	g.Close()
	return nil
}
