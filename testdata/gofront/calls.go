package subject

import "os"

// calls exercises cross-function flow: the handle escapes to a helper that
// closes it.
func helperClose(f *os.File) {
	if f != nil {
		f.Close()
	}
}

func calls(path string) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	helperClose(f)
}
