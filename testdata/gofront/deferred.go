package subject

import "os"

// deferred closes through a defer flushed on every return edge.
func deferred(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n, err := f.Read(nil)
	if err != nil {
		return 0, err
	}
	return n, nil
}
