package subject

// ifaces exercises interface devirtualization: Flusher has one live
// implementation (direct call), Sink has two (path-split dispatch), and
// Phantom's only implementer is never allocated (open — RTA excludes it).

type Flusher interface {
	Flush()
}

type Sink interface {
	Put(v int)
}

type Phantom interface {
	Vanish()
}

type DiskSink struct{ n int }

func (d *DiskSink) Put(v int) { d.n += v }
func (d *DiskSink) Flush()    {}

type NullSink struct{}

func (NullSink) Put(v int) {}

type Ghost struct{}

func (Ghost) Vanish() {}

func drain(s Sink, f Flusher) {
	s.Put(1)
	f.Flush()
}

func vanish(p Phantom) {
	p.Vanish()
}

func runIfaces() {
	d := &DiskSink{}
	var n NullSink
	drain(d, d)
	drain(n, d)
	vanish(nil)
}
