package subject

// control exercises if/else chains, for loops, and switch lowering.
func control(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	switch {
	case total > 10:
		total = 10
	case total < 0:
		total = 0
	default:
		total++
	}
	if total == 5 {
		return -1
	} else if total == 6 {
		return -2
	}
	return total
}
