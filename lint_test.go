package grapple

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// exampleProgram extracts the embedded MiniLang `program` constant from one
// examples/*/main.go file.
func exampleProgram(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	const marker = "const program = `"
	text := string(data)
	i := strings.Index(text, marker)
	if i < 0 {
		t.Fatalf("%s: no embedded program constant", path)
	}
	rest := text[i+len(marker):]
	j := strings.Index(rest, "`")
	if j < 0 {
		t.Fatalf("%s: unterminated program constant", path)
	}
	return rest[:j]
}

// TestLintExamplesClean pins the lint suite's false-positive rate on the
// shipped examples at zero: every diagnostic on them is by definition noise.
func TestLintExamplesClean(t *testing.T) {
	paths, err := filepath.Glob("examples/*/main.go")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no examples found: %v", err)
	}
	for _, path := range paths {
		src := exampleProgram(t, path)
		diags, err := Lint(src)
		if err != nil {
			t.Errorf("%s: lint error: %v", path, err)
			continue
		}
		for _, d := range diags {
			t.Errorf("%s: false positive: %s", path, d)
		}
	}
}

func TestLintFindsSeededDefects(t *testing.T) {
	diags, err := Lint(`
type FileWriter;
fun main() {
  var c: int = input();
  var u: int;
  var x: int = u + 1;
  var dead: int = c + 2;
  var w: FileWriter = new FileWriter();
  if (0 > 1) {
    c = c + 7;
  }
  if (x > c) {
    return;
  }
  return;
}`)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	want := map[string]int{"RD001": 1, "DS001": 1, "CF002": 1, "UA001": 1}
	got := map[string]int{}
	for _, d := range diags {
		got[d.Code]++
	}
	for code, n := range want {
		if got[code] != n {
			t.Errorf("code %s: got %d, want %d\nall: %v", code, got[code], n, diags)
		}
	}
	if len(diags) != 4 {
		t.Errorf("total diagnostics = %d, want 4: %v", len(diags), diags)
	}
}

func TestLintParseError(t *testing.T) {
	if _, err := Lint("fun main( {"); err == nil {
		t.Fatal("expected parse error")
	}
}
