package gofront

import (
	"go/ast"
	"go/token"

	"github.com/grapple-system/grapple/internal/lang"
)

func (f *fnLowerer) ifStmt(s *ast.IfStmt, out *[]lang.Stmt) {
	f.push()
	defer f.pop()
	if s.Init != nil {
		f.stmt(s.Init, out)
	}
	pos := f.pos(s)
	cond := f.lowerBool(s.Cond, out)
	var thenStmts []lang.Stmt
	f.push()
	for _, st := range s.Body.List {
		f.stmt(st, &thenStmts)
	}
	f.pop()
	var elseStmts []lang.Stmt
	if s.Else != nil {
		f.push()
		f.stmt(s.Else, &elseStmts)
		f.pop()
	}
	*out = append(*out, &lang.IfStmt{Cond: cond, Then: thenStmts, Else: elseStmts, Pos: pos})
}

// forStmt lowers a C-style for loop to while. A condition that needs
// statements of its own (it performs calls, e.g. rows.Next()) is staged in a
// condition variable re-evaluated at the end of each iteration, so the
// per-iteration event count matches Go's evaluation order.
func (f *fnLowerer) forStmt(s *ast.ForStmt, out *[]lang.Stmt) {
	f.push()
	defer f.pop()
	if s.Init != nil {
		f.stmt(s.Init, out)
	}
	pos := f.pos(s)
	var pre []lang.Stmt
	var cond lang.Expr = &lang.BoolLit{Value: true, Pos: pos}
	if s.Cond != nil {
		cond = f.lowerBool(s.Cond, &pre)
	}
	if len(pre) == 0 {
		var body []lang.Stmt
		f.lowerLoopBody(s.Body, s.Post, &body)
		*out = append(*out, &lang.WhileStmt{Cond: cond, Body: body, Pos: pos})
		return
	}
	cv := f.temp("cond")
	*out = append(*out, &lang.VarDecl{Name: cv, Type: "bool",
		Init: &lang.BoolLit{Value: false, Pos: pos}, Pos: pos})
	*out = append(*out, pre...)
	*out = append(*out, &lang.AssignStmt{LHS: &lang.Ident{Name: cv, Pos: pos}, RHS: cond, Pos: pos})
	var body []lang.Stmt
	f.lowerLoopBody(s.Body, s.Post, &body)
	var pre2 []lang.Stmt
	cond2 := f.lowerBool(s.Cond, &pre2)
	body = append(body, pre2...)
	body = append(body, &lang.AssignStmt{LHS: &lang.Ident{Name: cv, Pos: pos}, RHS: cond2, Pos: pos})
	*out = append(*out, &lang.WhileStmt{Cond: &lang.Ident{Name: cv, Pos: pos}, Body: body, Pos: pos})
}

func (f *fnLowerer) lowerLoopBody(b *ast.BlockStmt, post ast.Stmt, out *[]lang.Stmt) {
	f.push()
	defer f.pop()
	for _, st := range b.List {
		f.stmt(st, out)
	}
	if post != nil {
		f.stmt(post, out)
	}
}

// rangeStmt over-approximates range loops: an opaque trip count, opaque
// key/value bindings refreshed each iteration.
func (f *fnLowerer) rangeStmt(s *ast.RangeStmt, out *[]lang.Stmt) {
	f.push()
	defer f.pop()
	pos := f.pos(s)
	f.evalEffects(s.X, out)
	f.havoc("range")
	bindVar := func(e ast.Expr, cat string) *varInfo {
		if e == nil || isBlank(e) {
			return nil
		}
		id, ok := unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if s.Tok == token.ASSIGN {
			if vi := f.lookup(id.Name); vi != nil {
				return vi
			}
			return nil
		}
		ml := f.fresh(id.Name)
		vi := &varInfo{ml: ml, cat: cat}
		f.bind(id.Name, vi)
		f.p.regObjType(cat)
		*out = append(*out, &lang.VarDecl{Name: ml, Type: cat, Init: zeroFor(cat, pos), Pos: pos})
		return vi
	}
	valCat := "int"
	if c := f.catOf(s.X); c != "" {
		if el, ok := cutSliceSuffix(c); ok {
			valCat = el
		}
	}
	if valCat == "" {
		valCat = "int"
	}
	keyVi := bindVar(s.Key, "int")
	valVi := bindVar(s.Value, valCat)
	var body []lang.Stmt
	if keyVi != nil {
		body = append(body, &lang.AssignStmt{LHS: &lang.Ident{Name: keyVi.ml, Pos: pos},
			RHS: zeroFor(keyVi.cat, pos), Pos: pos})
	}
	if valVi != nil {
		body = append(body, &lang.AssignStmt{LHS: &lang.Ident{Name: valVi.ml, Pos: pos},
			RHS: zeroFor(valVi.cat, pos), Pos: pos})
	}
	f.push()
	for _, st := range s.Body.List {
		f.stmt(st, &body)
	}
	f.pop()
	*out = append(*out, &lang.WhileStmt{Cond: opaqueBool(pos), Body: body, Pos: pos})
}

func cutSliceSuffix(c string) (string, bool) {
	const suf = "_slice"
	if len(c) > len(suf) && c[len(c)-len(suf):] == suf {
		return c[:len(c)-len(suf)], true
	}
	return "", false
}

// switchStmt lowers to an if/else chain on a staged tag. Integer case
// comparisons stay symbolic; everything else is an opaque branch.
func (f *fnLowerer) switchStmt(s *ast.SwitchStmt, out *[]lang.Stmt) {
	f.push()
	defer f.pop()
	if s.Init != nil {
		f.stmt(s.Init, out)
	}
	pos := f.pos(s)
	var tag *lang.Ident
	tagCat := ""
	if s.Tag != nil {
		e, cat := f.lowerAny(s.Tag, out)
		tagCat = cat
		if cat == "int" {
			tag = f.materialize(e, "int", pos, out)
		}
	}
	var clauses []*ast.CaseClause
	var defaultClause *ast.CaseClause
	for _, st := range s.Body.List {
		cc, ok := st.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		clauses = append(clauses, cc)
	}
	*out = append(*out, f.caseChain(clauses, defaultClause, tag, tagCat, s.Tag == nil, pos)...)
}

// caseChain builds the nested if/else structure for switch clauses. Each
// clause's condition statements (calls in case expressions) live in the
// enclosing else arm, preserving Go's top-to-bottom evaluation.
func (f *fnLowerer) caseChain(clauses []*ast.CaseClause, def *ast.CaseClause, tag *lang.Ident, tagCat string, tagless bool, pos lang.Pos) []lang.Stmt {
	if len(clauses) == 0 {
		var body []lang.Stmt
		if def != nil {
			f.push()
			for _, st := range def.Body {
				f.stmt(st, &body)
			}
			f.pop()
		}
		return body
	}
	cc := clauses[0]
	var arm []lang.Stmt
	var cond lang.Expr
	for _, ce := range cc.List {
		var one lang.Expr
		switch {
		case tagless:
			one = f.lowerBool(ce, &arm)
		case tag != nil && (f.catOf(ce) == "int" || f.catOf(ce) == "nil"):
			v := f.lowerInt(ce, &arm)
			one = &lang.Binary{Op: lang.OpEq, L: &lang.Ident{Name: tag.Name, Pos: pos}, R: v, Pos: pos}
		default:
			f.evalEffects(ce, &arm)
			one = opaqueBool(pos)
		}
		if cond == nil {
			cond = one
		} else {
			cond = &lang.Binary{Op: lang.OpOr, L: cond, R: one, Pos: pos}
		}
	}
	if cond == nil {
		cond = opaqueBool(pos)
	}
	var body []lang.Stmt
	f.push()
	for _, st := range cc.Body {
		f.stmt(st, &body)
	}
	f.pop()
	rest := f.caseChain(clauses[1:], def, tag, tagCat, tagless, pos)
	arm = append(arm, &lang.IfStmt{Cond: cond, Then: body, Else: rest, Pos: pos})
	return arm
}

// typeSwitchStmt lowers to an opaque-condition chain; each clause binding
// keeps the subject's identity (the assert does not copy the object).
func (f *fnLowerer) typeSwitchStmt(s *ast.TypeSwitchStmt, out *[]lang.Stmt) {
	f.push()
	defer f.pop()
	if s.Init != nil {
		f.stmt(s.Init, out)
	}
	pos := f.pos(s)
	f.havoc("type-switch")
	// Extract the subject and optional binding name.
	var subject ast.Expr
	bindName := ""
	switch a := s.Assign.(type) {
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			if ta, ok := unparen(a.Rhs[0]).(*ast.TypeAssertExpr); ok {
				subject = ta.X
			}
		}
		if len(a.Lhs) == 1 {
			if id, ok := unparen(a.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
				bindName = id.Name
			}
		}
	case *ast.ExprStmt:
		if ta, ok := unparen(a.X).(*ast.TypeAssertExpr); ok {
			subject = ta.X
		}
	}
	var subjID *lang.Ident
	subjCat := ""
	if subject != nil {
		if c := f.catOf(subject); lang.IsObjectType(c) && c != "nil" {
			e, typ := f.lowerObj(subject, out)
			if typ != "" {
				c = typ
			}
			subjID = f.materialize(e, c, pos, out)
			subjCat = c
		} else {
			f.evalEffects(subject, out)
		}
	}
	var chain []lang.Stmt
	for i := len(s.Body.List) - 1; i >= 0; i-- {
		cc, ok := s.Body.List[i].(*ast.CaseClause)
		if !ok {
			continue
		}
		var body []lang.Stmt
		f.push()
		if bindName != "" && subjID != nil {
			cat := subjCat
			if len(cc.List) == 1 && cc.List[0] != nil && !isNilIdent(cc.List[0]) {
				if c := f.typeNameOf(cc.List[0]); lang.IsObjectType(c) {
					cat = c
				}
			}
			ml := f.fresh(bindName)
			f.bind(bindName, &varInfo{ml: ml, cat: cat})
			f.p.regObjType(cat)
			body = append(body, &lang.VarDecl{Name: ml, Type: cat,
				Init: &lang.Ident{Name: subjID.Name, Pos: pos}, Pos: pos})
		}
		for _, st := range cc.Body {
			f.stmt(st, &body)
		}
		f.pop()
		if cc.List == nil && chain == nil {
			chain = body
			continue
		}
		chain = []lang.Stmt{&lang.IfStmt{Cond: opaqueBool(pos), Then: body, Else: chain, Pos: pos}}
	}
	*out = append(*out, chain...)
}

// selectStmt lowers to an opaque-condition chain over the comm clauses.
func (f *fnLowerer) selectStmt(s *ast.SelectStmt, out *[]lang.Stmt) {
	pos := f.pos(s)
	f.havoc("select")
	var chain []lang.Stmt
	for i := len(s.Body.List) - 1; i >= 0; i-- {
		cc, ok := s.Body.List[i].(*ast.CommClause)
		if !ok {
			continue
		}
		var body []lang.Stmt
		f.push()
		if cc.Comm != nil {
			f.stmt(cc.Comm, &body)
		}
		for _, st := range cc.Body {
			f.stmt(st, &body)
		}
		f.pop()
		if cc.Comm == nil && chain == nil {
			chain = body
			continue
		}
		chain = []lang.Stmt{&lang.IfStmt{Cond: opaqueBool(pos), Then: body, Else: chain, Pos: pos}}
	}
	*out = append(*out, chain...)
}
