package gofront

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/grapple-system/grapple/internal/analysis"
	"github.com/grapple-system/grapple/internal/lang"
)

// The lowering maps every expression into one of MiniLang's three value
// categories: "int" (all Go numerics, strings, and — deliberately — error
// values, with nil == 0), "bool", or an object type name (pointers, structs,
// interfaces, slices, maps, funcs). Modeling errors as integers is the load-
// bearing decision: `f, err := os.Open(p)` lowers to a guarded allocation
// under `err == 0`, and every later `if err != nil` re-tests the same
// integer symbol, so the engine's SMT path conditions correlate acquisition
// guards with error-path returns exactly as they do for MiniLang programs.

type typeMethodKey struct {
	typ    string
	method string
}

// pkgLowerer is the per-package lowering context.
type pkgLowerer struct {
	fset  *token.FileSet
	files []namedFile
	rules *Rules
	opts  Options
	res   *Result
	info  *types.Info
	// hier is the package's interface/implementation hierarchy (CHA narrowed
	// to allocated types); nil when devirtualization is off.
	hier *analysis.Hierarchy

	spanOf       map[string]int                 // filename -> combined line offset
	localType    map[string]ast.Expr            // local named type -> definition
	fields       map[string]map[string]ast.Expr // struct type -> field -> type expr
	methods      map[typeMethodKey]*funcMeta
	funcs        map[string]*funcMeta // plain function go-name -> meta
	metaByDecl   map[*ast.FuncDecl]*funcMeta
	usedNames    map[string]bool // top-level MiniLang names
	usedObjTypes map[string]bool
}

// funcMeta is the call-interface of a lowered function, method, or lifted
// closure: the MiniLang parameter list (receiver first for methods, captured
// variables last for closures) and which Go result the single MiniLang
// return value carries.
type funcMeta struct {
	name       string
	params     []lang.Param
	goNames    []string // Go-side name per param ("" for synthetic)
	recvOffset int      // 1 for methods, 0 otherwise
	nGoArgs    int      // fixed (non-variadic) Go argument count
	variadic   bool

	results     []string // category per Go result
	resultNames []string // named-result Go names ("" when unnamed)
	// retIndex selects the Go result the MiniLang function returns: the
	// first object-category result if any (tracked values flow through
	// returns), otherwise the last error result (callers branch on it),
	// otherwise the first result. -1 for void.
	retIndex int
	retType  string

	captures []captureMeta // closures only
}

type captureMeta struct {
	goName string
	typ    string
}

type closureBinding struct {
	meta *funcMeta
}

type varInfo struct {
	ml  string
	cat string // "int", "bool", or an object type name
	clo *closureBinding
}

// ---------------------------------------------------------------------------
// Names and categories

var miniKeywords = map[string]bool{
	"fun": true, "var": true, "if": true, "else": true, "while": true,
	"return": true, "new": true, "null": true, "true": true, "false": true,
	"try": true, "catch": true, "throw": true, "type": true, "input": true,
	"int": true, "bool": true, "spawn": true,
}

// sanitizeName makes an arbitrary Go identifier or type spelling a valid
// MiniLang identifier.
func sanitizeName(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if b.Len() == 0 {
				b.WriteByte('T')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	out := b.String()
	if out == "" {
		out = "T"
	}
	if miniKeywords[out] {
		out += "_"
	}
	return out
}

var basicIntTypes = map[string]bool{
	"int": true, "int8": true, "int16": true, "int32": true, "int64": true,
	"uint": true, "uint8": true, "uint16": true, "uint32": true, "uint64": true,
	"uintptr": true, "byte": true, "rune": true, "float32": true,
	"float64": true, "complex64": true, "complex128": true, "string": true,
	"error": true,
}

// typeName reduces a Go type expression to a MiniLang type: "int", "bool",
// or an object type name. Pointers are transparent; error is an int.
func (p *pkgLowerer) typeName(e ast.Expr, imp map[string]string) string {
	return p.typeNameDepth(e, imp, 0)
}

func (p *pkgLowerer) typeNameDepth(e ast.Expr, imp map[string]string, depth int) string {
	if depth > 8 {
		return "Ext"
	}
	switch e := e.(type) {
	case *ast.Ident:
		if basicIntTypes[e.Name] {
			return "int"
		}
		if e.Name == "bool" {
			return "bool"
		}
		if e.Name == "any" {
			return "Any"
		}
		if def, ok := p.localType[e.Name]; ok {
			u := p.typeNameDepth(def, imp, depth+1)
			if u == "int" || u == "bool" {
				return u
			}
			return sanitizeName(e.Name)
		}
		return sanitizeName(e.Name)
	case *ast.SelectorExpr:
		if x, ok := e.X.(*ast.Ident); ok {
			pkg := x.Name
			if base, ok := imp[x.Name]; ok {
				pkg = base
			}
			return sanitizeName(pkg + "_" + e.Sel.Name)
		}
		return "Ext"
	case *ast.StarExpr:
		return p.typeNameDepth(e.X, imp, depth+1)
	case *ast.ArrayType:
		el := p.typeNameDepth(e.Elt, imp, depth+1)
		return sanitizeName(el + "_slice")
	case *ast.Ellipsis:
		return p.typeNameDepth(e.Elt, imp, depth+1)
	case *ast.MapType:
		return "Map"
	case *ast.ChanType:
		return "Chan"
	case *ast.FuncType:
		return "Func"
	case *ast.InterfaceType:
		return "Any"
	case *ast.StructType:
		return "Struct"
	case *ast.ParenExpr:
		return p.typeNameDepth(e.X, imp, depth+1)
	case *ast.IndexExpr:
		return p.typeNameDepth(e.X, imp, depth+1)
	case *ast.IndexListExpr:
		return p.typeNameDepth(e.X, imp, depth+1)
	}
	return "Ext"
}

// typesCat consults the lenient go/types pass as a category oracle of last
// resort.
func (p *pkgLowerer) typesCat(e ast.Expr) (string, bool) {
	if p.info == nil {
		return "", false
	}
	tv, ok := p.info.Types[e]
	if !ok || tv.Type == nil {
		return "", false
	}
	return catFromType(tv.Type)
}

func (p *pkgLowerer) typesDefCat(id *ast.Ident) (string, bool) {
	if p.info == nil {
		return "", false
	}
	obj := p.info.Defs[id]
	if obj == nil || obj.Type() == nil {
		return "", false
	}
	return catFromType(obj.Type())
}

func catFromType(t types.Type) (string, bool) {
	if n, ok := t.(*types.Named); ok {
		if n.Obj() != nil && n.Obj().Pkg() == nil && n.Obj().Name() == "error" {
			return "int", true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Kind() == types.Invalid || u.Kind() == types.UntypedNil {
			return "", false
		}
		if u.Info()&types.IsBoolean != 0 {
			return "bool", true
		}
		return "int", true
	case *types.Pointer:
		return catFromType(u.Elem())
	}
	if n, ok := t.(*types.Named); ok && n.Obj() != nil {
		return sanitizeName(n.Obj().Name()), true
	}
	return "Ext", true
}

func isScalarCat(c string) bool { return c == "int" || c == "bool" }

func (p *pkgLowerer) regObjType(t string) {
	if !lang.IsObjectType(t) {
		return
	}
	if p.usedObjTypes == nil {
		p.usedObjTypes = map[string]bool{}
	}
	p.usedObjTypes[t] = true
}

func (p *pkgLowerer) freshTop(base string) string {
	name := sanitizeName(base)
	if !p.usedNames[name] {
		p.usedNames[name] = true
		return name
	}
	for i := 2; ; i++ {
		cand := fmt.Sprintf("%s_%d", name, i)
		if !p.usedNames[cand] {
			p.usedNames[cand] = true
			return cand
		}
	}
}

func (p *pkgLowerer) mapPos(tp token.Pos) lang.Pos {
	if !tp.IsValid() {
		return lang.Pos{Line: 1, Col: 1}
	}
	pos := p.fset.Position(tp)
	return lang.Pos{Line: p.spanOf[pos.Filename] + pos.Line, Col: pos.Column}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

func isNilIdent(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func isBlank(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

// hasCall reports whether evaluating e can perform a call (and therefore
// emit an event or exercise an allocator).
func hasCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// ---------------------------------------------------------------------------
// Collect pass

func (p *pkgLowerer) collect() {
	for _, nf := range p.files {
		for _, d := range nf.ast.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				p.localType[ts.Name.Name] = ts.Type
				if st, ok := ts.Type.(*ast.StructType); ok && st.Fields != nil {
					m := map[string]ast.Expr{}
					for _, fl := range st.Fields.List {
						for _, n := range fl.Names {
							m[n.Name] = fl.Type
						}
					}
					p.fields[sanitizeName(ts.Name.Name)] = m
				}
			}
		}
	}
	for _, nf := range p.files {
		imp := importsOf(nf.ast)
		for _, d := range nf.ast.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p.collectFunc(fd, imp)
		}
	}
}

// buildHierarchy assembles the devirtualization fact base after collect():
// interface method sets from local interface declarations (CHA), concrete
// implementations from the package's method map, and liveness from the
// syntactic allocation forms a local struct value can be born through —
// composite literals, new(T), and zero-value var declarations (RTA).
// Liveness deliberately over-approximates (a spurious live type only widens
// a dispatch split); it must never under-approximate, or a real dynamic
// target would be dropped (the FuzzDevirt soundness contract).
func (p *pkgLowerer) buildHierarchy() {
	h := analysis.NewHierarchy()
	declared := false
	for name, def := range p.localType {
		it, ok := def.(*ast.InterfaceType)
		if !ok || it.Methods == nil {
			continue
		}
		var methods []string
		pure := true
		for _, fl := range it.Methods.List {
			if len(fl.Names) == 0 {
				pure = false // embedded interface or type-set term
				break
			}
			for _, n := range fl.Names {
				methods = append(methods, n.Name)
			}
		}
		// Interfaces with embedded entries keep havocking: the declared
		// method subset would admit candidate types that cannot satisfy the
		// full contract, and the split would be noise.
		if !pure || len(methods) == 0 {
			continue
		}
		h.AddInterface(sanitizeName(name), methods)
		declared = true
	}
	if !declared {
		return // no devirtualizable interfaces; keep hier nil
	}
	for key, meta := range p.methods {
		h.AddImpl(key.typ, key.method, meta.name)
	}
	var markLive func(e ast.Expr)
	markLive = func(e ast.Expr) {
		switch t := e.(type) {
		case *ast.ParenExpr:
			markLive(t.X)
		case *ast.StarExpr:
			markLive(t.X)
		case *ast.ArrayType:
			markLive(t.Elt)
		case *ast.MapType:
			markLive(t.Key)
			markLive(t.Value)
		case *ast.Ident:
			h.AddLiveType(sanitizeName(t.Name))
		}
	}
	for _, nf := range p.files {
		ast.Inspect(nf.ast, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if n.Type != nil {
					markLive(n.Type)
				}
			case *ast.CallExpr:
				if id, ok := unparen(n.Fun).(*ast.Ident); ok && id.Name == "new" && len(n.Args) == 1 {
					markLive(n.Args[0])
				}
			case *ast.ValueSpec:
				if n.Type != nil {
					markLive(n.Type)
				}
			}
			return true
		})
	}
	p.hier = h
}

func (p *pkgLowerer) collectFunc(fd *ast.FuncDecl, imp map[string]string) {
	meta := &funcMeta{retIndex: -1}
	goName := fd.Name.Name
	var recvType string
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		recvType = p.typeName(fd.Recv.List[0].Type, imp)
		meta.name = p.freshTop(recvType + "_" + goName)
		recvName := "recv"
		if names := fd.Recv.List[0].Names; len(names) > 0 && names[0].Name != "_" {
			recvName = names[0].Name
		}
		meta.recvOffset = 1
		p.addParam(meta, recvName, recvType)
	} else {
		meta.name = p.freshTop(goName)
	}
	p.collectSignature(meta, fd.Type, imp)
	if recvType != "" && lang.IsObjectType(recvType) {
		p.methods[typeMethodKey{recvType, goName}] = meta
	} else if fd.Recv == nil {
		if _, dup := p.funcs[goName]; !dup {
			p.funcs[goName] = meta
		}
	}
	if p.metaByDecl == nil {
		p.metaByDecl = map[*ast.FuncDecl]*funcMeta{}
	}
	p.metaByDecl[fd] = meta
}

// collectSignature fills params and the return plan from a function type.
func (p *pkgLowerer) collectSignature(meta *funcMeta, ft *ast.FuncType, imp map[string]string) {
	synth := 0
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			if _, ok := field.Type.(*ast.Ellipsis); ok {
				meta.variadic = true
				continue
			}
			typ := p.typeName(field.Type, imp)
			if len(field.Names) == 0 {
				p.addParam(meta, fmt.Sprintf("p%d", synth), typ)
				synth++
				continue
			}
			for _, n := range field.Names {
				name := n.Name
				if name == "_" {
					name = fmt.Sprintf("p%d", synth)
					synth++
				}
				p.addParam(meta, name, typ)
			}
		}
	}
	meta.nGoArgs = len(meta.params) - meta.recvOffset
	if ft.Results != nil {
		for _, field := range ft.Results.List {
			typ := p.typeName(field.Type, imp)
			isErr := false
			if id, ok := field.Type.(*ast.Ident); ok && id.Name == "error" {
				isErr = true
			}
			n := len(field.Names)
			if n == 0 {
				n = 1
			}
			_ = isErr
			for i := 0; i < n; i++ {
				name := ""
				if i < len(field.Names) && field.Names[i].Name != "_" {
					name = field.Names[i].Name
				}
				meta.results = append(meta.results, typ)
				meta.resultNames = append(meta.resultNames, name)
			}
		}
		meta.retIndex = chooseRet(ft, meta.results)
		if meta.retIndex >= 0 {
			meta.retType = meta.results[meta.retIndex]
		}
	}
}

// chooseRet picks the Go result the MiniLang return value carries.
func chooseRet(ft *ast.FuncType, cats []string) int {
	for i, c := range cats {
		if lang.IsObjectType(c) {
			return i
		}
	}
	// Last error result, scanned via the syntax (error fields).
	idx := -1
	i := 0
	for _, field := range ft.Results.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		isErr := false
		if id, ok := field.Type.(*ast.Ident); ok && id.Name == "error" {
			isErr = true
		}
		for j := 0; j < n; j++ {
			if isErr {
				idx = i
			}
			i++
		}
	}
	if idx >= 0 {
		return idx
	}
	if len(cats) > 0 {
		return 0
	}
	return -1
}

func (p *pkgLowerer) addParam(meta *funcMeta, goName, typ string) {
	ml := sanitizeName(goName)
	for _, prev := range meta.params {
		if prev.Name == ml {
			ml = fmt.Sprintf("%s_%d", ml, len(meta.params))
			break
		}
	}
	meta.params = append(meta.params, lang.Param{Name: ml, Type: typ})
	meta.goNames = append(meta.goNames, goName)
	p.regObjType(typ)
}

// ---------------------------------------------------------------------------
// Function lowering

type deferEntry struct {
	emit func(out *[]lang.Stmt)
}

type fnLowerer struct {
	p      *pkgLowerer
	imp    map[string]string
	meta   *funcMeta
	scopes []map[string]*varInfo
	used   map[string]bool
	tmpN   int
	defers []deferEntry
}

func (p *pkgLowerer) newFn(meta *funcMeta, imp map[string]string) *fnLowerer {
	f := &fnLowerer{p: p, imp: imp, meta: meta, used: map[string]bool{}}
	scope := map[string]*varInfo{}
	for i, goN := range meta.goNames {
		f.used[meta.params[i].Name] = true
		if goN == "" {
			continue
		}
		scope[goN] = &varInfo{ml: meta.params[i].Name, cat: meta.params[i].Type}
	}
	f.scopes = []map[string]*varInfo{scope}
	return f
}

func (p *pkgLowerer) lowerFunc(fd *ast.FuncDecl, imp map[string]string) {
	meta := p.metaByDecl[fd]
	if meta == nil {
		return
	}
	f := p.newFn(meta, imp)
	fun := &lang.FunDecl{
		Name: meta.name, Params: meta.params, RetType: meta.retType,
		Pos: p.mapPos(fd.Pos()),
	}
	p.regObjType(meta.retType)
	p.res.Prog.Funs = append(p.res.Prog.Funs, fun)
	p.res.Stats.Functions++
	var body []lang.Stmt
	f.declareNamedResults(&body, fd.Pos())
	for _, st := range fd.Body.List {
		f.stmt(st, &body)
	}
	if !terminates(body) {
		f.flushDefers(&body)
	}
	fun.Body = body
}

// lowerClosure lowers a lifted function literal under a synthesized name.
func (p *pkgLowerer) lowerClosure(meta *funcMeta, lit *ast.FuncLit, imp map[string]string) {
	f := p.newFn(meta, imp)
	fun := &lang.FunDecl{
		Name: meta.name, Params: meta.params, RetType: meta.retType,
		Pos: p.mapPos(lit.Pos()),
	}
	p.regObjType(meta.retType)
	p.res.Prog.Funs = append(p.res.Prog.Funs, fun)
	p.res.Stats.Functions++
	var body []lang.Stmt
	f.declareNamedResults(&body, lit.Pos())
	for _, st := range lit.Body.List {
		f.stmt(st, &body)
	}
	if !terminates(body) {
		f.flushDefers(&body)
	}
	fun.Body = body
}

func (f *fnLowerer) declareNamedResults(out *[]lang.Stmt, at token.Pos) {
	pos := f.p.mapPos(at)
	for i, name := range f.meta.resultNames {
		if name == "" {
			continue
		}
		cat := f.meta.results[i]
		ml := f.fresh(name)
		f.bind(name, &varInfo{ml: ml, cat: cat})
		var init lang.Expr
		switch cat {
		case "int":
			init = &lang.IntLit{Value: 0, Pos: pos}
		case "bool":
			init = &lang.BoolLit{Value: false, Pos: pos}
		default:
			init = &lang.NullLit{Pos: pos}
		}
		f.p.regObjType(cat)
		*out = append(*out, &lang.VarDecl{Name: ml, Type: cat, Init: init, Pos: pos})
	}
}

func terminates(body []lang.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	switch body[len(body)-1].(type) {
	case *lang.ReturnStmt, *lang.ThrowStmt:
		return true
	}
	return false
}

// --- scope helpers ---

func (f *fnLowerer) push() { f.scopes = append(f.scopes, map[string]*varInfo{}) }
func (f *fnLowerer) pop()  { f.scopes = f.scopes[:len(f.scopes)-1] }

func (f *fnLowerer) lookup(name string) *varInfo {
	for i := len(f.scopes) - 1; i >= 0; i-- {
		if vi, ok := f.scopes[i][name]; ok {
			return vi
		}
	}
	return nil
}

func (f *fnLowerer) bind(goName string, vi *varInfo) {
	f.scopes[len(f.scopes)-1][goName] = vi
}

func (f *fnLowerer) inCurrentScope(name string) *varInfo {
	return f.scopes[len(f.scopes)-1][name]
}

// fresh returns an unused MiniLang variable name derived from base.
func (f *fnLowerer) fresh(base string) string {
	name := sanitizeName(base)
	if !f.used[name] {
		f.used[name] = true
		return name
	}
	for i := 2; ; i++ {
		cand := fmt.Sprintf("%s_%d", name, i)
		if !f.used[cand] {
			f.used[cand] = true
			return cand
		}
	}
}

func (f *fnLowerer) temp(prefix string) string { // tg: "temporary, generated"
	f.tmpN++
	return f.fresh(fmt.Sprintf("tg%s%d", prefix, f.tmpN))
}

func (f *fnLowerer) pos(n ast.Node) lang.Pos { return f.p.mapPos(n.Pos()) }

func (f *fnLowerer) havoc(kind string) { f.p.res.Stats.havoc(kind) }

// opaqueInt is a fresh unconstrained integer.
func opaqueInt(pos lang.Pos) lang.Expr { return &lang.InputExpr{Pos: pos} }

// opaqueBool is a fresh unconstrained boolean (input() != 0).
func opaqueBool(pos lang.Pos) lang.Expr {
	return &lang.Binary{Op: lang.OpNe, L: &lang.InputExpr{Pos: pos},
		R: &lang.IntLit{Value: 0, Pos: pos}, Pos: pos}
}

func (f *fnLowerer) ident(vi *varInfo, pos lang.Pos) *lang.Ident {
	return &lang.Ident{Name: vi.ml, Pos: pos}
}

// materialize binds e to a temp var unless it is already an atom, returning
// an Ident (several MiniLang forms require identifier receivers).
func (f *fnLowerer) materialize(e lang.Expr, cat string, pos lang.Pos, out *[]lang.Stmt) *lang.Ident {
	if id, ok := e.(*lang.Ident); ok {
		return id
	}
	typ := cat
	name := f.temp("v")
	f.p.regObjType(typ)
	*out = append(*out, &lang.VarDecl{Name: name, Type: typ, Init: e, Pos: pos})
	return &lang.Ident{Name: name, Pos: pos}
}
