package gofront_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/grapple-system/grapple/internal/gofront"
)

// TestDevirtStats pins the three devirtualization outcomes on the interface
// corpus snippet: Flush has one live implementer (direct call), Put has two
// (path-split dispatch), and Vanish's only implementer is never allocated
// (open, so the call havocs exactly as before the pass existed).
func TestDevirtStats(t *testing.T) {
	data, err := os.ReadFile(filepath.Join(corpusDir, "ifaces.go"))
	if err != nil {
		t.Fatal(err)
	}
	rules := allRules(t)
	res, err := gofront.LowerSource(string(data), rules)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.IfaceCalls != 3 || st.IfaceDirect != 1 || st.IfaceSplit != 1 || st.IfaceOpen != 1 {
		t.Fatalf("iface stats = calls %d direct %d split %d open %d, want 3/1/1/1",
			st.IfaceCalls, st.IfaceDirect, st.IfaceSplit, st.IfaceOpen)
	}
	// The split dispatch must name both live Put implementations; the dead
	// Ghost type must not appear anywhere in the lowered program.
	src := res.Source()
	for _, want := range []string{"DiskSink_Put", "NullSink_Put", "DiskSink_Flush"} {
		if !strings.Contains(src, want) {
			t.Errorf("lowered program is missing a call to %s:\n%s", want, src)
		}
	}
	// Its lowered definition is still emitted; no call site may reach it.
	if strings.Count(src, "Ghost_Vanish(") != strings.Count(src, "fun Ghost_Vanish(") {
		t.Errorf("dead implementer is called in the lowered program:\n%s", src)
	}

	// Ablated, every interface call havocs: the examined-site counters stay
	// zero and the havoc count strictly grows.
	abl, err := gofront.LowerSourceWith(string(data), rules, gofront.Options{NoDevirt: true})
	if err != nil {
		t.Fatal(err)
	}
	if abl.Stats.IfaceCalls != 0 {
		t.Errorf("-nodevirt still examined %d interface calls", abl.Stats.IfaceCalls)
	}
	if abl.Stats.Havocs <= st.Havocs {
		t.Errorf("devirt must reduce havocs: with pass %d, ablated %d", st.Havocs, abl.Stats.Havocs)
	}
}
