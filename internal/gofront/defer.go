package gofront

import (
	"go/ast"
	"go/token"

	"github.com/grapple-system/grapple/internal/lang"
)

// Defer is desugared to exit-edge calls: each defer statement registers an
// emitter on a lexical stack; the stack is flushed in reverse registration
// order before every return, before panic-throws, and at the end of a
// function falling off its body. Arguments (and the receiver identity) are
// evaluated at registration time into temps, matching Go's semantics; each
// flush re-emits fresh AST nodes so a function with several returns gets an
// independent exit edge per return.
//
// This is an under-approximation in one corner: a defer registered inside a
// conditional flushes on exits that Go would not run it on only if the exit
// is lexically AFTER the registration — which matches the dominant
// `open; if err { return }; defer close` idiom that motivates the design.

func (f *fnLowerer) flushDefers(out *[]lang.Stmt) {
	for i := len(f.defers) - 1; i >= 0; i-- {
		f.defers[i].emit(out)
	}
}

func (f *fnLowerer) deferStmt(s *ast.DeferStmt, out *[]lang.Stmt) {
	call := s.Call
	pos := f.pos(s)
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		// defer recv.Field.Method() — depth-two field event.
		if inner, ok := unparen(fun.X).(*ast.SelectorExpr); ok {
			if iv := f.identVar(inner.X); iv != nil && lang.IsObjectType(iv.cat) {
				key := TypeFieldMethod{Type: iv.cat, Field: inner.Sel.Name, Method: fun.Sel.Name}
				if ev, ok := f.p.rules.FieldEvents[key]; ok {
					f.evalArgs(call.Args, out)
					f.pushDeferEvent(iv.ml, ev, pos)
					return
				}
			}
		}
		// defer on a package function: external, effects now, no exit edge.
		if x, ok := unparen(fun.X).(*ast.Ident); ok && f.lookup(x.Name) == nil {
			f.evalArgs(call.Args, out)
			f.havoc("defer-ext")
			return
		}
		recvCat := f.catOf(fun.X)
		if lang.IsObjectType(recvCat) && recvCat != "nil" {
			recvExpr, typ := f.lowerObj(fun.X, out)
			if typ == "" {
				typ = recvCat
			}
			recv := f.materialize(recvExpr, typ, pos, out)
			if ev, ok := f.p.rules.Events[TypeMethod{Type: typ, Method: fun.Sel.Name}]; ok {
				f.evalArgs(call.Args, out)
				f.pushDeferEvent(recv.Name, ev, pos)
				return
			}
			if mm := f.p.methods[typeMethodKey{typ, fun.Sel.Name}]; mm != nil {
				args := f.stageDeferArgs(mm, call.Args, out)
				recvName := recv.Name
				f.pushDeferCall(mm, append([]string{recvName}, args...), pos)
				return
			}
		}
		f.evalEffects(fun.X, out)
		f.evalArgs(call.Args, out)
		f.havoc("defer-ext")
	case *ast.Ident:
		if vi := f.lookup(fun.Name); vi != nil {
			if vi.clo != nil {
				// Captures resolve at flush time — matching Go closures,
				// which read captured variables when the defer runs.
				clo := vi.clo
				args := f.stageDeferArgs(clo.meta, call.Args, out)
				f.pushDeferClosure(clo, args, pos)
				return
			}
			if lang.IsObjectType(vi.cat) {
				if ev, ok := f.p.rules.CallEvents[vi.cat]; ok {
					f.evalArgs(call.Args, out)
					f.pushDeferEvent(vi.ml, ev, pos)
					return
				}
			}
			f.evalArgs(call.Args, out)
			f.havoc("defer-ext")
			return
		}
		if meta := f.p.funcs[fun.Name]; meta != nil {
			args := f.stageDeferArgs(meta, call.Args, out)
			f.pushDeferCall(meta, args, pos)
			return
		}
		f.evalArgs(call.Args, out)
		f.havoc("defer-ext")
	case *ast.FuncLit:
		clo := f.liftClosure(fun, "deferred")
		args := f.stageDeferArgs(clo.meta, call.Args, out)
		f.pushDeferClosure(clo, args, pos)
	default:
		f.evalEffects(call.Fun, out)
		f.evalArgs(call.Args, out)
		f.havoc("defer-ext")
	}
}

// stageDeferArgs evaluates the fixed Go arguments into temps at registration
// time and returns the temp names (parallel to the callee's Go params).
func (f *fnLowerer) stageDeferArgs(meta *funcMeta, args []ast.Expr, out *[]lang.Stmt) []string {
	names := make([]string, 0, meta.nGoArgs)
	for i := 0; i < meta.nGoArgs; i++ {
		pi := meta.recvOffset + i
		cat := meta.params[pi].Type
		pos := lang.Pos{Line: 1, Col: 1}
		var e lang.Expr
		if i < len(args) {
			pos = f.pos(args[i])
			e = f.lowerByCat(args[i], cat, out)
		} else {
			e = zeroFor(cat, pos)
		}
		id := f.materialize(e, cat, pos, out)
		names = append(names, id.Name)
	}
	if len(args) > meta.nGoArgs {
		f.evalArgs(args[meta.nGoArgs:], out)
	}
	return names
}

func (f *fnLowerer) pushDeferEvent(recvML, event string, pos lang.Pos) {
	f.defers = append(f.defers, deferEntry{emit: func(out *[]lang.Stmt) {
		*out = append(*out, &lang.ExprStmt{
			X:   &lang.MethodCall{Recv: &lang.Ident{Name: recvML, Pos: pos}, Method: event, Pos: pos},
			Pos: pos,
		})
	}})
}

// pushDeferCall registers a deferred call to a lowered function; argNames
// are staged temps (receiver first when the callee is a method).
func (f *fnLowerer) pushDeferCall(meta *funcMeta, argNames []string, pos lang.Pos) {
	f.defers = append(f.defers, deferEntry{emit: func(out *[]lang.Stmt) {
		args := make([]lang.Expr, 0, len(meta.params))
		for i := range meta.params {
			if i < len(argNames) {
				args = append(args, &lang.Ident{Name: argNames[i], Pos: pos})
				continue
			}
			args = append(args, zeroFor(meta.params[i].Type, pos))
		}
		call := &lang.CallExpr{Name: meta.name, Args: args, Pos: pos}
		*out = append(*out, callOrDrop(call, meta, pos))
	}})
}

// pushDeferClosure registers a deferred closure call; captures resolve
// against the caller's scope when each exit edge is emitted.
func (f *fnLowerer) pushDeferClosure(clo *closureBinding, argNames []string, pos lang.Pos) {
	f.defers = append(f.defers, deferEntry{emit: func(out *[]lang.Stmt) {
		meta := clo.meta
		nCap := len(meta.captures)
		args := make([]lang.Expr, 0, len(meta.params))
		nFixed := len(meta.params) - nCap
		for i := 0; i < nFixed; i++ {
			if i < len(argNames) {
				args = append(args, &lang.Ident{Name: argNames[i], Pos: pos})
				continue
			}
			args = append(args, zeroFor(meta.params[i].Type, pos))
		}
		for i := 0; i < nCap; i++ {
			cm := meta.captures[i]
			if vi := f.lookup(cm.goName); vi != nil {
				args = append(args, &lang.Ident{Name: vi.ml, Pos: pos})
				continue
			}
			args = append(args, zeroFor(meta.params[nFixed+i].Type, pos))
		}
		call := &lang.CallExpr{Name: meta.name, Args: args, Pos: pos}
		*out = append(*out, callOrDrop(call, meta, pos))
	}})
}

// callOrDrop wraps a deferred call as a statement; non-void results are
// discarded into the expression statement directly (MiniLang allows call
// statements regardless of return type).
func callOrDrop(call *lang.CallExpr, meta *funcMeta, pos lang.Pos) lang.Stmt {
	return &lang.ExprStmt{X: call, Pos: pos}
}

// ---------------------------------------------------------------------------
// Return

// returnStmt computes the chosen result value FIRST, then flushes defers,
// then returns the staged value — so `return use(f)` runs its use event
// before a deferred f.Close() fires.
func (f *fnLowerer) returnStmt(s *ast.ReturnStmt, out *[]lang.Stmt) {
	pos := f.pos(s)
	meta := f.meta
	if meta.retIndex < 0 {
		// Void function.
		for _, r := range s.Results {
			f.evalEffects(r, out)
		}
		f.flushDefers(out)
		*out = append(*out, &lang.ReturnStmt{Pos: pos})
		return
	}
	cat := meta.retType
	var value lang.Expr
	switch {
	case len(s.Results) == 0:
		// Bare return: named results carry the value.
		name := ""
		if meta.retIndex < len(meta.resultNames) {
			name = meta.resultNames[meta.retIndex]
		}
		if name != "" {
			if vi := f.lookup(name); vi != nil {
				value = f.ident(vi, pos)
			}
		}
		if value == nil {
			value = zeroFor(cat, pos)
		}
	case len(s.Results) == 1 && len(meta.results) > 1:
		// Tuple passthrough: return g(...) forwarding g's whole tuple.
		value = f.lowerForwardedReturn(s.Results[0], cat, pos, out)
	default:
		// Evaluate results in order; the chosen one supplies the value.
		for i, r := range s.Results {
			if i == meta.retIndex {
				value = f.lowerByCat(r, cat, out)
				continue
			}
			f.evalEffects(r, out)
		}
		if value == nil {
			value = zeroFor(cat, pos)
		}
	}
	// Bool return values must be staged: the IR return path only lowers
	// int-category operands (idents, literals, calls), not comparisons.
	if cat == "bool" {
		if _, ok := value.(*lang.Ident); !ok {
			id := f.materialize(value, "bool", pos, out)
			value = &lang.Ident{Name: id.Name, Pos: pos}
		}
	}
	if len(f.defers) > 0 {
		id := f.materialize(value, cat, pos, out)
		value = &lang.Ident{Name: id.Name, Pos: pos}
		f.flushDefers(out)
	}
	*out = append(*out, &lang.ReturnStmt{X: value, Pos: pos})
}

// lowerForwardedReturn handles `return g(...)` where g's result tuple is
// forwarded whole. If the callee's chosen result index matches ours, the
// call value passes through; otherwise the call runs for effect and our
// result is opaque.
func (f *fnLowerer) lowerForwardedReturn(r ast.Expr, cat string, pos lang.Pos, out *[]lang.Stmt) lang.Expr {
	call, ok := unparen(r).(*ast.CallExpr)
	if !ok {
		f.evalEffects(r, out)
		return zeroFor(cat, pos)
	}
	if meta, clo, recvExpr, ok := f.matchLocalCall(call, out); ok {
		expr, _ := f.callLocal(meta, recvExpr, call.Args, clo, pos, out)
		if expr != nil && meta.retIndex == f.meta.retIndex {
			return expr
		}
		if expr != nil {
			*out = append(*out, &lang.ExprStmt{X: expr, Pos: pos})
		}
		f.havoc("tuple-forward")
		return zeroFor(cat, pos)
	}
	if al, ok := f.matchAlloc(call, out); ok {
		obj := f.allocValue(al, pos, out)
		if lang.IsObjectType(cat) && al.Obj == f.meta.retIndex {
			return obj
		}
		return zeroFor(cat, pos)
	}
	f.lowerCall(call, "void", out)
	return zeroFor(cat, pos)
}

// ---------------------------------------------------------------------------
// Closures

// liftClosure lifts a function literal to a synthesized top-level function
// whose trailing parameters are the literal's free variables; the binding is
// remembered so calls resolve captures against the caller's current scope.
func (f *fnLowerer) liftClosure(lit *ast.FuncLit, hint string) *closureBinding {
	p := f.p
	meta := &funcMeta{retIndex: -1, name: p.freshTop(f.meta.name + "_" + hint)}
	p.collectSignature(meta, lit.Type, f.imp)
	for _, cap := range f.freeVars(lit) {
		meta.captures = append(meta.captures, cap)
		p.addParam(meta, cap.goName, cap.typ)
	}
	p.lowerClosure(meta, lit, f.imp)
	return &closureBinding{meta: meta}
}

// freeVars lists, in first-use order, the enclosing-scope variables a
// literal's body references. Shadowing inside the literal is approximated:
// a name both captured and re-declared inside simply yields an unused
// parameter, which is harmless.
func (f *fnLowerer) freeVars(lit *ast.FuncLit) []captureMeta {
	declared := map[string]bool{}
	if lit.Type.Params != nil {
		for _, field := range lit.Type.Params.List {
			for _, n := range field.Names {
				declared[n.Name] = true
			}
		}
	}
	if lit.Type.Results != nil {
		for _, field := range lit.Type.Results.List {
			for _, n := range field.Names {
				declared[n.Name] = true
			}
		}
	}
	// Names declared anywhere inside the body shadow the capture.
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				for _, l := range n.Lhs {
					if id, ok := l.(*ast.Ident); ok {
						declared[id.Name] = true
					}
				}
			}
		case *ast.ValueSpec:
			for _, id := range n.Names {
				declared[id.Name] = true
			}
		case *ast.RangeStmt:
			if n.Tok == token.DEFINE {
				if id, ok := n.Key.(*ast.Ident); ok {
					declared[id.Name] = true
				}
				if id, ok := n.Value.(*ast.Ident); ok {
					declared[id.Name] = true
				}
			}
		}
		return true
	})
	// Selector fields and composite-literal keys are not variable uses.
	skip := map[*ast.Ident]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			skip[n.Sel] = true
		case *ast.KeyValueExpr:
			if id, ok := n.Key.(*ast.Ident); ok {
				skip[id] = true
			}
		}
		return true
	})
	var out []captureMeta
	seen := map[string]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || skip[id] || declared[id.Name] || seen[id.Name] {
			return true
		}
		vi := f.lookup(id.Name)
		if vi == nil || vi.clo != nil {
			return true
		}
		seen[id.Name] = true
		out = append(out, captureMeta{goName: id.Name, typ: vi.cat})
		return true
	})
	return out
}
