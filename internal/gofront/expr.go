package gofront

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"

	"github.com/grapple-system/grapple/internal/lang"
)

// catOf classifies a Go expression into a MiniLang category without lowering
// it: "int", "bool", "nil", or an object type name. Syntax first, the lenient
// go/types Info as fallback, "int" as the sound default (opaque scalar).
func (f *fnLowerer) catOf(e ast.Expr) string {
	switch e := unparen(e).(type) {
	case *ast.BasicLit:
		return "int"
	case *ast.Ident:
		switch e.Name {
		case "true", "false":
			return "bool"
		case "nil":
			return "nil"
		}
		if vi := f.lookup(e.Name); vi != nil {
			return vi.cat
		}
		if c, ok := f.p.typesCat(e); ok {
			return c
		}
		return "int"
	case *ast.CallExpr:
		return f.callCat(e)
	case *ast.UnaryExpr:
		switch e.Op {
		case token.NOT:
			return "bool"
		case token.AND:
			return f.catOf(e.X)
		}
		return "int"
	case *ast.BinaryExpr:
		if e.Op.Precedence() == 3 || e.Op == token.LAND || e.Op == token.LOR { // comparisons
			return "bool"
		}
		return f.catOf(e.X)
	case *ast.CompositeLit:
		if e.Type == nil {
			return "Ext"
		}
		return f.typeNameOf(e.Type)
	case *ast.FuncLit:
		return "Func"
	case *ast.StarExpr:
		return f.catOf(e.X)
	case *ast.SelectorExpr:
		if x, ok := unparen(e.X).(*ast.Ident); ok && f.lookup(x.Name) == nil {
			if _, isPkg := f.imp[x.Name]; isPkg {
				if c, ok := f.p.typesCat(e); ok {
					return c
				}
				return "int"
			}
		}
		recvCat := f.catOf(e.X)
		if lang.IsObjectType(recvCat) && recvCat != "nil" {
			if ft, ok := f.p.fields[recvCat][e.Sel.Name]; ok {
				return f.typeNameOf(ft)
			}
		}
		if c, ok := f.p.typesCat(e); ok {
			return c
		}
		return "int"
	case *ast.IndexExpr:
		c := f.catOf(e.X)
		if el, ok := strings.CutSuffix(c, "_slice"); ok {
			return el
		}
		if c, ok := f.p.typesCat(e); ok {
			return c
		}
		return "int"
	case *ast.SliceExpr:
		return f.catOf(e.X)
	case *ast.TypeAssertExpr:
		if e.Type == nil {
			return "Ext"
		}
		return f.typeNameOf(e.Type)
	}
	if c, ok := f.p.typesCat(e); ok {
		return c
	}
	return "int"
}

// callCat classifies a call expression's single-value result, mirroring the
// dispatch order of lowerCall.
func (f *fnLowerer) callCat(call *ast.CallExpr) string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		switch fun.Name {
		case "len", "cap", "copy", "min", "max", "real", "imag", "complex", "recover":
			return "int"
		case "append":
			if len(call.Args) > 0 {
				return f.catOf(call.Args[0])
			}
			return "Ext"
		case "make", "new":
			if len(call.Args) > 0 {
				return f.typeNameOf(call.Args[0])
			}
			return "Ext"
		}
		if vi := f.lookup(fun.Name); vi != nil {
			if vi.clo != nil {
				return retCat(vi.clo.meta)
			}
			if lang.IsObjectType(vi.cat) {
				if _, ok := f.p.rules.CallEvents[vi.cat]; ok {
					return "int"
				}
			}
			return "int"
		}
		if meta := f.p.funcs[fun.Name]; meta != nil {
			return retCat(meta)
		}
		// Conversion to a local or basic type.
		if _, ok := f.p.localType[fun.Name]; ok || basicIntTypes[fun.Name] || fun.Name == "bool" {
			return f.typeNameOf(fun)
		}
		return "int"
	case *ast.SelectorExpr:
		if x, ok := unparen(fun.X).(*ast.Ident); ok && f.lookup(x.Name) == nil {
			if base, isPkg := f.imp[x.Name]; isPkg {
				qname := base + "." + fun.Sel.Name
				if errPredicates[qname] {
					return "bool"
				}
				if al, ok := f.p.rules.FuncAllocs[qname]; ok {
					return al.Type
				}
				if c, ok := f.p.typesCat(call); ok {
					return c
				}
				return "int"
			}
		}
		recvCat := f.catOf(fun.X)
		if lang.IsObjectType(recvCat) && recvCat != "nil" {
			if al, ok := f.p.rules.MethodAllocs[typeMethodKey2(recvCat, fun.Sel.Name)]; ok {
				return al.Type
			}
			if mm := f.p.methods[typeMethodKey{recvCat, fun.Sel.Name}]; mm != nil {
				return retCat(mm)
			}
		}
		if c, ok := f.p.typesCat(call); ok {
			return c
		}
		return "int"
	case *ast.ArrayType, *ast.StarExpr, *ast.MapType, *ast.ChanType,
		*ast.FuncType, *ast.InterfaceType:
		return f.typeNameOf(call.Fun)
	}
	if c, ok := f.p.typesCat(call); ok {
		return c
	}
	return "int"
}

func typeMethodKey2(t, m string) TypeMethod { return TypeMethod{Type: t, Method: m} }

func retCat(meta *funcMeta) string {
	if meta.retType == "" {
		return "int"
	}
	return meta.retType
}

func (f *fnLowerer) typeNameOf(e ast.Expr) string { return f.p.typeName(e, f.imp) }

// ---------------------------------------------------------------------------
// Discard / effects-only evaluation

// lowerDiscard evaluates e for side effects only: calls within e still emit
// events, allocations, and havoc counts; every value is dropped.
func (f *fnLowerer) lowerDiscard(e ast.Expr, out *[]lang.Stmt) {
	switch e := e.(type) {
	case *ast.CallExpr:
		expr, cat := f.lowerCall(e, "void", out)
		switch x := expr.(type) {
		case nil:
		case *lang.MethodCall, *lang.CallExpr:
			// Events and local calls still execute when discarded.
			*out = append(*out, &lang.ExprStmt{X: x, Pos: lang.PosOf(x)})
		case *lang.NewExpr:
			// A discarded allocation still acquires: bind it so the leak
			// checker sees the object.
			f.materialize(x, cat, lang.PosOf(x), out)
		}
	case *ast.ParenExpr:
		f.lowerDiscard(e.X, out)
	case *ast.UnaryExpr:
		f.lowerDiscard(e.X, out)
	case *ast.StarExpr:
		f.lowerDiscard(e.X, out)
	case *ast.TypeAssertExpr:
		f.lowerDiscard(e.X, out)
	case *ast.BinaryExpr:
		f.lowerDiscard(e.X, out)
		f.lowerDiscard(e.Y, out)
	case *ast.SelectorExpr:
		f.lowerDiscard(e.X, out)
	case *ast.IndexExpr:
		f.lowerDiscard(e.X, out)
		f.lowerDiscard(e.Index, out)
	case *ast.SliceExpr:
		f.lowerDiscard(e.X, out)
		if e.Low != nil {
			f.lowerDiscard(e.Low, out)
		}
		if e.High != nil {
			f.lowerDiscard(e.High, out)
		}
		if e.Max != nil {
			f.lowerDiscard(e.Max, out)
		}
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				f.lowerDiscard(kv.Value, out)
				continue
			}
			f.lowerDiscard(el, out)
		}
	}
}

// evalEffects evaluates e only if it can call something.
func (f *fnLowerer) evalEffects(e ast.Expr, out *[]lang.Stmt) {
	if hasCall(e) {
		f.lowerDiscard(e, out)
	}
}

func (f *fnLowerer) evalArgs(args []ast.Expr, out *[]lang.Stmt) {
	for _, a := range args {
		f.evalEffects(a, out)
	}
}

// ---------------------------------------------------------------------------
// Typed lowering

// lowerAny lowers e in its natural category; returns the expression and its
// category ("int", "bool", or object type).
func (f *fnLowerer) lowerAny(e ast.Expr, out *[]lang.Stmt) (lang.Expr, string) {
	cat := f.catOf(e)
	switch {
	case cat == "bool":
		return f.lowerBool(e, out), "bool"
	case cat == "int" || cat == "nil":
		return f.lowerInt(e, out), "int"
	default:
		expr, typ := f.lowerObj(e, out)
		if typ == "" {
			typ = cat
		}
		return expr, typ
	}
}

// lowerInt lowers e as an integer. Unknown forms become fresh opaque inputs
// after their call-bearing subexpressions are evaluated for effect.
func (f *fnLowerer) lowerInt(e ast.Expr, out *[]lang.Stmt) lang.Expr {
	pos := f.pos(e)
	switch e := e.(type) {
	case *ast.ParenExpr:
		return f.lowerInt(e.X, out)
	case *ast.BasicLit:
		if e.Kind == token.INT {
			if v, err := strconv.ParseInt(e.Value, 0, 64); err == nil {
				return &lang.IntLit{Value: v, Pos: pos}
			}
		}
		if e.Kind == token.CHAR {
			if r, _, _, err := strconv.UnquoteChar(strings.Trim(e.Value, "'"), '\''); err == nil {
				return &lang.IntLit{Value: int64(r), Pos: pos}
			}
		}
		return opaqueInt(pos)
	case *ast.Ident:
		if e.Name == "nil" {
			return &lang.IntLit{Value: 0, Pos: pos}
		}
		if vi := f.lookup(e.Name); vi != nil {
			switch vi.cat {
			case "int":
				return f.ident(vi, pos)
			case "bool":
				return opaqueInt(pos)
			default:
				return opaqueInt(pos)
			}
		}
		// Package-level constant or variable: opaque.
		return opaqueInt(pos)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD, token.SUB, token.MUL:
			op := map[token.Token]lang.BinOp{
				token.ADD: lang.OpAdd, token.SUB: lang.OpSub, token.MUL: lang.OpMul,
			}[e.Op]
			if f.catOf(e.X) == "int" && f.catOf(e.Y) == "int" {
				l := f.lowerInt(e.X, out)
				r := f.lowerInt(e.Y, out)
				return &lang.Binary{Op: op, L: l, R: r, Pos: pos}
			}
		}
		f.evalEffects(e.X, out)
		f.evalEffects(e.Y, out)
		return opaqueInt(pos)
	case *ast.UnaryExpr:
		switch e.Op {
		case token.SUB:
			return &lang.Unary{Op: '-', X: f.lowerInt(e.X, out), Pos: pos}
		case token.ADD:
			return f.lowerInt(e.X, out)
		}
		f.evalEffects(e.X, out)
		return opaqueInt(pos)
	case *ast.CallExpr:
		expr, cat := f.lowerCall(e, "int", out)
		if expr == nil {
			return opaqueInt(pos)
		}
		if cat == "int" {
			return expr
		}
		return opaqueInt(pos)
	}
	f.evalEffects(e, out)
	return opaqueInt(pos)
}

// lowerBool lowers e as a boolean, preserving int-symbol correlation for
// comparisons (the engine's path conditions live here).
func (f *fnLowerer) lowerBool(e ast.Expr, out *[]lang.Stmt) lang.Expr {
	pos := f.pos(e)
	switch e := e.(type) {
	case *ast.ParenExpr:
		return f.lowerBool(e.X, out)
	case *ast.Ident:
		switch e.Name {
		case "true":
			return &lang.BoolLit{Value: true, Pos: pos}
		case "false":
			return &lang.BoolLit{Value: false, Pos: pos}
		}
		if vi := f.lookup(e.Name); vi != nil && vi.cat == "bool" {
			return f.ident(vi, pos)
		}
		return opaqueBool(pos)
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			return &lang.Unary{Op: '!', X: f.lowerBool(e.X, out), Pos: pos}
		}
		f.evalEffects(e.X, out)
		return opaqueBool(pos)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			return &lang.Binary{Op: lang.OpAnd, L: f.lowerBool(e.X, out), R: f.lowerBool(e.Y, out), Pos: pos}
		case token.LOR:
			return &lang.Binary{Op: lang.OpOr, L: f.lowerBool(e.X, out), R: f.lowerBool(e.Y, out), Pos: pos}
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			op := map[token.Token]lang.BinOp{
				token.EQL: lang.OpEq, token.NEQ: lang.OpNe, token.LSS: lang.OpLt,
				token.LEQ: lang.OpLe, token.GTR: lang.OpGt, token.GEQ: lang.OpGe,
			}[e.Op]
			cx, cy := f.catOf(e.X), f.catOf(e.Y)
			intish := func(c string) bool { return c == "int" || c == "nil" }
			if intish(cx) && intish(cy) {
				l := f.lowerInt(e.X, out)
				r := f.lowerInt(e.Y, out)
				return &lang.Binary{Op: op, L: l, R: r, Pos: pos}
			}
			f.evalEffects(e.X, out)
			f.evalEffects(e.Y, out)
			return opaqueBool(pos)
		}
		f.evalEffects(e.X, out)
		f.evalEffects(e.Y, out)
		return opaqueBool(pos)
	case *ast.CallExpr:
		expr, cat := f.lowerCall(e, "bool", out)
		if expr == nil {
			return opaqueBool(pos)
		}
		switch cat {
		case "bool":
			if _, isCall := expr.(*lang.CallExpr); isCall {
				// The IR has no bool-valued call form: run the call for
				// its effects (the callee's events stay on the path) and
				// branch on a fresh opaque bool.
				*out = append(*out, &lang.ExprStmt{X: expr, Pos: pos})
				return opaqueBool(pos)
			}
			return expr
		case "int":
			// Int-valued call in a bool slot: compare against zero so the
			// call's symbol survives into the path condition.
			id := f.materialize(expr, "int", pos, out)
			return &lang.Binary{Op: lang.OpNe, L: id, R: &lang.IntLit{Value: 0, Pos: pos}, Pos: pos}
		}
		return opaqueBool(pos)
	}
	f.evalEffects(e, out)
	return opaqueBool(pos)
}

// lowerObj lowers e as an object reference, returning the expression and its
// object type name ("" when unknown).
func (f *fnLowerer) lowerObj(e ast.Expr, out *[]lang.Stmt) (lang.Expr, string) {
	pos := f.pos(e)
	switch e := e.(type) {
	case *ast.ParenExpr:
		return f.lowerObj(e.X, out)
	case *ast.Ident:
		if e.Name == "nil" {
			return &lang.NullLit{Pos: pos}, ""
		}
		if vi := f.lookup(e.Name); vi != nil {
			if lang.IsObjectType(vi.cat) {
				return f.ident(vi, pos), vi.cat
			}
			return &lang.NullLit{Pos: pos}, ""
		}
		if f.p.funcs[e.Name] != nil {
			f.havoc("func-value")
			return &lang.NullLit{Pos: pos}, "Func"
		}
		return &lang.NullLit{Pos: pos}, ""
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return f.lowerObj(e.X, out)
		}
		f.evalEffects(e.X, out)
		return &lang.NullLit{Pos: pos}, ""
	case *ast.StarExpr:
		return f.lowerObj(e.X, out)
	case *ast.SelectorExpr:
		recvCat := f.catOf(e.X)
		if lang.IsObjectType(recvCat) && recvCat != "nil" {
			recvExpr, typ := f.lowerObj(e.X, out)
			if typ == "" {
				typ = recvCat
			}
			recv := f.materialize(recvExpr, typ, pos, out)
			fieldType := ""
			if ft, ok := f.p.fields[typ][e.Sel.Name]; ok {
				fieldType = f.typeNameOf(ft)
			}
			if lang.IsObjectType(fieldType) {
				return &lang.FieldAccess{Recv: recv, Field: e.Sel.Name, Pos: pos}, fieldType
			}
			// Unknown field type: still a depth-one object read.
			return &lang.FieldAccess{Recv: recv, Field: e.Sel.Name, Pos: pos}, ""
		}
		f.evalEffects(e.X, out)
		return &lang.NullLit{Pos: pos}, ""
	case *ast.CallExpr:
		expr, cat := f.lowerCall(e, "obj", out)
		if expr == nil || !lang.IsObjectType(cat) {
			return &lang.NullLit{Pos: pos}, ""
		}
		return expr, cat
	case *ast.CompositeLit:
		return f.lowerCompositeLit(e, out)
	case *ast.TypeAssertExpr:
		if e.Type == nil {
			return f.lowerObj(e.X, out)
		}
		// Identity-preserving: interface narrowing does not change the
		// object, only our name for its type.
		expr, _ := f.lowerObj(e.X, out)
		return expr, f.typeNameOf(e.Type)
	case *ast.IndexExpr:
		f.evalEffects(e.X, out)
		f.evalEffects(e.Index, out)
		f.havoc("index-obj")
		return &lang.NullLit{Pos: pos}, ""
	case *ast.SliceExpr:
		expr, typ := f.lowerObj(e.X, out)
		return expr, typ
	case *ast.FuncLit:
		// A closure escaping into a value position cannot be modeled.
		f.havoc("closure-escape")
		return &lang.NullLit{Pos: pos}, "Func"
	}
	f.evalEffects(e, out)
	return &lang.NullLit{Pos: pos}, ""
}

// lowerCompositeLit allocates an object for a struct-like composite literal,
// initializing object-typed fields (depth one) and evaluating the rest for
// effect. sync.Mutex-style composite allocations of tracked types route
// through the pack rules.
func (f *fnLowerer) lowerCompositeLit(e *ast.CompositeLit, out *[]lang.Stmt) (lang.Expr, string) {
	pos := f.pos(e)
	typ := "Ext"
	if e.Type != nil {
		typ = f.typeNameOf(e.Type)
		// Qualified tracked composite (e.g. sync.Mutex{}).
		if sel, ok := unparen(e.Type).(*ast.SelectorExpr); ok {
			if x, ok := unparen(sel.X).(*ast.Ident); ok {
				if base, isPkg := f.imp[x.Name]; isPkg {
					if t, ok := f.p.rules.CompositeAllocs[base+"."+sel.Sel.Name]; ok {
						typ = t
					}
				}
			}
		}
	}
	if !lang.IsObjectType(typ) {
		typ = "Ext"
	}
	f.p.regObjType(typ)
	name := f.temp("lit")
	*out = append(*out, &lang.VarDecl{Name: name, Type: typ,
		Init: &lang.NewExpr{Type: typ, Pos: pos}, Pos: pos})
	tmp := &lang.Ident{Name: name, Pos: pos}
	fieldOrder := f.namedFieldOrder(e.Type)
	for i, el := range e.Elts {
		key := ""
		val := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				key = id.Name
			}
			val = kv.Value
		} else if i < len(fieldOrder) {
			key = fieldOrder[i]
		}
		if key != "" && lang.IsObjectType(f.catOf(val)) && f.catOf(val) != "nil" {
			ve, _ := f.lowerObj(val, out)
			*out = append(*out, &lang.AssignStmt{
				LHS: &lang.FieldAccess{Recv: &lang.Ident{Name: name, Pos: pos}, Field: key, Pos: pos},
				RHS: ve, Pos: pos,
			})
			continue
		}
		f.evalEffects(val, out)
	}
	return tmp, typ
}

// namedFieldOrder returns the declared field order of a local struct type so
// positional composite literals can be keyed.
func (f *fnLowerer) namedFieldOrder(t ast.Expr) []string {
	id, ok := unparen(t).(*ast.Ident)
	if !ok {
		return nil
	}
	def, ok := f.p.localType[id.Name]
	if !ok {
		return nil
	}
	st, ok := def.(*ast.StructType)
	if !ok || st.Fields == nil {
		return nil
	}
	var out []string
	for _, fl := range st.Fields.List {
		for _, n := range fl.Names {
			out = append(out, n.Name)
		}
	}
	return out
}

// lowerByCat lowers e into the given category.
func (f *fnLowerer) lowerByCat(e ast.Expr, cat string, out *[]lang.Stmt) lang.Expr {
	switch cat {
	case "int":
		return f.lowerInt(e, out)
	case "bool":
		return f.lowerBool(e, out)
	default:
		expr, _ := f.lowerObj(e, out)
		return expr
	}
}
