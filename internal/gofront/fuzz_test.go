package gofront_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"github.com/grapple-system/grapple/internal/fsm/packs"
	"github.com/grapple-system/grapple/internal/gofront"
	"github.com/grapple-system/grapple/internal/lang"
)

// FuzzLowerGo feeds arbitrary Go-ish text through the frontend:
// parse-what-compiles, never panic, and everything lowered must re-parse as
// MiniLang.
func FuzzLowerGo(f *testing.F) {
	entries, err := os.ReadDir(corpusDir)
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(corpusDir, e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Add("package p\nfunc f() {}\n")
	rules := packs.MergedRules(packs.All())
	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		if _, err := parser.ParseFile(fset, "fuzz.go", src, parser.SkipObjectResolution); err != nil {
			t.Skip() // not Go; the frontend only sees parseable files
		}
		res, err := gofront.LowerSource(src, rules)
		if err != nil {
			return // rejected cleanly is fine; panics are not
		}
		if _, err := lang.Parse(res.Source()); err != nil {
			t.Fatalf("lowered output does not parse: %v\ninput:\n%s\noutput:\n%s", err, src, res.Source())
		}
	})
}
