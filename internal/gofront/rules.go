package gofront

import "sort"

// Alloc describes a call pattern that produces a tracked object: which
// MiniLang object type to allocate, which result-tuple index carries the
// object, and which (if any) carries an error that guards the allocation.
// A call with Err >= 0 lowers to a guarded allocation — the object exists
// only on the error == nil arm — so error-checked acquisition sites do not
// produce spurious leak paths.
type Alloc struct {
	Type string
	// Obj is the index of the tracked object in the result tuple (0 for
	// single-result allocators).
	Obj int
	// Err is the index of the error result, or -1 when the allocator
	// cannot fail.
	Err int
}

// TypeMethod keys a method-call pattern by receiver type and method name.
// Type names use the sanitized MiniLang spelling ("os_File", "sql_DB").
type TypeMethod struct {
	Type   string
	Method string
}

// TypeFieldMethod keys a depth-two pattern like resp.Body.Close(): a method
// invoked on a named field of a typed receiver. The event is attributed to
// the receiver itself (the tracked object), because the field's content is
// installed by library code the frontend never sees.
type TypeFieldMethod struct {
	Type   string
	Field  string
	Method string
}

// Rules bind Go call patterns to lowering actions. Property packs provide
// them; the lowering consults the merged rule set of every selected pack.
type Rules struct {
	// FuncAllocs matches qualified package-function calls ("os.Open").
	FuncAllocs map[string]Alloc
	// MethodAllocs matches method calls on a typed receiver
	// (sql_DB.Query -> sql_Rows).
	MethodAllocs map[TypeMethod]Alloc
	// CompositeAllocs matches composite literals and zero-value variable
	// declarations of a qualified type ("sync.Mutex" -> "sync_Mutex").
	CompositeAllocs map[string]string
	// Events map (receiver type, method) to the FSM event emitted.
	// Methods invoked on a tracked type but absent here lower to opaque
	// havoc, never to events, so an incomplete alphabet cannot push the
	// FSM into its implicit error state.
	Events map[TypeMethod]string
	// FieldEvents map receiver.field.method() chains to events.
	FieldEvents map[TypeFieldMethod]string
	// CallEvents fire when a tracked func-valued object is itself called,
	// e.g. the CancelFunc returned by context.WithCancel.
	CallEvents map[string]string
}

// NewRules returns an empty, non-nil rule set.
func NewRules() *Rules {
	return &Rules{
		FuncAllocs:      map[string]Alloc{},
		MethodAllocs:    map[TypeMethod]Alloc{},
		CompositeAllocs: map[string]string{},
		Events:          map[TypeMethod]string{},
		FieldEvents:     map[TypeFieldMethod]string{},
		CallEvents:      map[string]string{},
	}
}

// Merge folds o into r. On a key collision the earlier binding wins, so
// packs sharing a tracked type must (and do) agree on event names.
func (r *Rules) Merge(o *Rules) {
	if o == nil {
		return
	}
	for k, v := range o.FuncAllocs {
		if _, ok := r.FuncAllocs[k]; !ok {
			r.FuncAllocs[k] = v
		}
	}
	for k, v := range o.MethodAllocs {
		if _, ok := r.MethodAllocs[k]; !ok {
			r.MethodAllocs[k] = v
		}
	}
	for k, v := range o.CompositeAllocs {
		if _, ok := r.CompositeAllocs[k]; !ok {
			r.CompositeAllocs[k] = v
		}
	}
	for k, v := range o.Events {
		if _, ok := r.Events[k]; !ok {
			r.Events[k] = v
		}
	}
	for k, v := range o.FieldEvents {
		if _, ok := r.FieldEvents[k]; !ok {
			r.FieldEvents[k] = v
		}
	}
	for k, v := range o.CallEvents {
		if _, ok := r.CallEvents[k]; !ok {
			r.CallEvents[k] = v
		}
	}
}

// TrackedTypes returns the sorted set of object types any rule mentions.
func (r *Rules) TrackedTypes() []string {
	set := map[string]bool{}
	for _, a := range r.FuncAllocs {
		set[a.Type] = true
	}
	for _, a := range r.MethodAllocs {
		set[a.Type] = true
	}
	for _, t := range r.CompositeAllocs {
		set[t] = true
	}
	for k := range r.Events {
		set[k.Type] = true
	}
	for k := range r.FieldEvents {
		set[k.Type] = true
	}
	for t := range r.CallEvents {
		set[t] = true
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// errPredicates are error-classification functions whose result is known
// false when the inspected error is nil. Calls lower to
// "err != 0 && input() != 0", which keeps the error symbol in the path
// condition: a branch like `if os.IsNotExist(err)` taken before a deferred
// Close stays correlated with the acquisition guard, instead of opening a
// spurious leak path. These are frontend-global, not per-pack.
var errPredicates = map[string]bool{
	"os.IsNotExist":   true,
	"os.IsExist":      true,
	"os.IsPermission": true,
	"os.IsTimeout":    true,
	"errors.Is":       true,
	"errors.As":       true,
}
