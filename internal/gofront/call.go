package gofront

import (
	"go/ast"

	"github.com/grapple-system/grapple/internal/lang"
)

// lowerCall is the central call dispatcher. want is "int", "bool", "obj", or
// "void"; the returned category is the call's natural single-value category
// (callers coerce). A nil expression means the call produced no usable value
// (void, or fully opaque after effects were emitted).
//
// Dispatch order: builtins -> local variables (closures, tracked call-events,
// func values) -> local functions -> conversions -> pack rules (predicates,
// allocators, events) -> external havoc.
func (f *fnLowerer) lowerCall(call *ast.CallExpr, want string, out *[]lang.Stmt) (lang.Expr, string) {
	pos := f.pos(call)
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.lowerIdentCall(call, fun, want, out)
	case *ast.SelectorExpr:
		return f.lowerSelectorCall(call, fun, want, out)
	case *ast.FuncLit:
		// Immediately-invoked literal: lift it, then call it.
		clo := f.liftClosure(fun, "iife")
		return f.callLocal(clo.meta, nil, call.Args, clo, pos, out)
	case *ast.ArrayType, *ast.StarExpr, *ast.MapType, *ast.ChanType,
		*ast.FuncType, *ast.InterfaceType:
		if len(call.Args) == 1 {
			return f.lowerConversion(call.Args[0], f.typeNameOf(call.Fun), pos, out)
		}
	case *ast.IndexExpr:
		// Generic instantiation f[T](args): retry with the uninstantiated fun.
		inner := &ast.CallExpr{Fun: fun.X, Args: call.Args, Lparen: call.Lparen, Rparen: call.Rparen}
		return f.lowerCall(inner, want, out)
	}
	f.evalEffects(call.Fun, out)
	f.evalArgs(call.Args, out)
	f.havoc("dynamic-call")
	return nil, ""
}

func (f *fnLowerer) lowerIdentCall(call *ast.CallExpr, fun *ast.Ident, want string, out *[]lang.Stmt) (lang.Expr, string) {
	pos := f.pos(call)
	switch fun.Name {
	case "len", "cap", "copy", "min", "max", "real", "imag", "complex", "recover":
		f.evalArgs(call.Args, out)
		return opaqueInt(pos), "int"
	case "append":
		if len(call.Args) == 0 {
			return nil, ""
		}
		first, typ := f.lowerObj(call.Args[0], out)
		f.evalArgs(call.Args[1:], out)
		return first, typ
	case "make":
		if len(call.Args) == 0 {
			return nil, ""
		}
		typ := f.typeNameOf(call.Args[0])
		f.evalArgs(call.Args[1:], out)
		if !lang.IsObjectType(typ) {
			return opaqueInt(pos), "int"
		}
		f.p.regObjType(typ)
		return &lang.NewExpr{Type: typ, Pos: pos}, typ
	case "new":
		if len(call.Args) == 0 {
			return nil, ""
		}
		typ := f.typeNameOf(call.Args[0])
		if !lang.IsObjectType(typ) {
			typ = "Ext"
		}
		f.p.regObjType(typ)
		return &lang.NewExpr{Type: typ, Pos: pos}, typ
	case "delete", "print", "println", "clear":
		f.evalArgs(call.Args, out)
		return nil, ""
	case "panic":
		f.evalArgs(call.Args, out)
		f.lowerPanic(pos, out)
		return nil, ""
	}
	if vi := f.lookup(fun.Name); vi != nil {
		if vi.clo != nil {
			return f.callLocal(vi.clo.meta, nil, call.Args, vi.clo, pos, out)
		}
		if lang.IsObjectType(vi.cat) {
			if ev, ok := f.p.rules.CallEvents[vi.cat]; ok {
				// Calling a tracked func-valued object IS the event
				// (e.g. invoking a context.CancelFunc).
				f.evalArgs(call.Args, out)
				return &lang.MethodCall{Recv: f.ident(vi, pos), Method: ev, Pos: pos}, "int"
			}
		}
		// Calling through an untracked func value.
		f.evalArgs(call.Args, out)
		f.havoc("indirect-call")
		return nil, ""
	}
	if meta := f.p.funcs[fun.Name]; meta != nil {
		return f.callLocal(meta, nil, call.Args, nil, pos, out)
	}
	// Conversion to a local named type or a basic type.
	if _, ok := f.p.localType[fun.Name]; ok || basicIntTypes[fun.Name] || fun.Name == "bool" {
		if len(call.Args) == 1 {
			return f.lowerConversion(call.Args[0], f.typeNameOf(fun), pos, out)
		}
	}
	f.evalArgs(call.Args, out)
	f.havoc("ext-call")
	return nil, ""
}

func (f *fnLowerer) lowerSelectorCall(call *ast.CallExpr, sel *ast.SelectorExpr, want string, out *[]lang.Stmt) (lang.Expr, string) {
	pos := f.pos(call)
	// Package-qualified call: pkg.Fn(args).
	if x, ok := unparen(sel.X).(*ast.Ident); ok && f.lookup(x.Name) == nil {
		if base, isPkg := f.imp[x.Name]; isPkg {
			qname := base + "." + sel.Sel.Name
			if errPredicates[qname] && len(call.Args) >= 1 {
				return f.lowerPredicate(call, pos, out), "bool"
			}
			if al, ok := f.p.rules.FuncAllocs[qname]; ok {
				f.evalArgs(call.Args, out)
				return f.allocValue(al, pos, out), al.Type
			}
			f.evalArgs(call.Args, out)
			f.havoc("ext-call")
			return nil, ""
		}
		// Unknown bare identifier (package-level var, dot import).
		f.evalArgs(call.Args, out)
		f.havoc("ext-call")
		return nil, ""
	}
	// Method call on a value.
	recvCat := f.catOf(sel.X)
	if lang.IsObjectType(recvCat) && recvCat != "nil" {
		// Depth-two field event: recv.Field.Method() (resp.Body.Close()).
		if inner, ok := unparen(sel.X).(*ast.SelectorExpr); ok {
			if iv := f.identVar(inner.X); iv != nil && lang.IsObjectType(iv.cat) {
				key := TypeFieldMethod{Type: iv.cat, Field: inner.Sel.Name, Method: sel.Sel.Name}
				if ev, ok := f.p.rules.FieldEvents[key]; ok {
					f.evalArgs(call.Args, out)
					return &lang.MethodCall{Recv: f.ident(iv, pos), Method: ev, Pos: pos}, "int"
				}
			}
		}
		recvExpr, typ := f.lowerObj(sel.X, out)
		if typ == "" {
			typ = recvCat
		}
		if ev, ok := f.p.rules.Events[TypeMethod{Type: typ, Method: sel.Sel.Name}]; ok {
			recv := f.materialize(recvExpr, typ, pos, out)
			f.evalArgs(call.Args, out)
			return &lang.MethodCall{Recv: recv, Method: ev, Pos: pos}, "int"
		}
		if al, ok := f.p.rules.MethodAllocs[TypeMethod{Type: typ, Method: sel.Sel.Name}]; ok {
			f.evalArgs(call.Args, out)
			return f.allocValue(al, pos, out), al.Type
		}
		if mm := f.p.methods[typeMethodKey{typ, sel.Sel.Name}]; mm != nil {
			return f.callLocal(mm, recvExpr, call.Args, nil, pos, out)
		}
		// Interface method call on a locally declared interface: resolve
		// against the package hierarchy instead of havocking.
		if f.p.hier != nil && f.p.hier.IsInterface(typ) {
			return f.devirtCall(call, sel.Sel.Name, typ, recvExpr, pos, out)
		}
		// Unmapped method on an object: NEVER an event (an incomplete
		// alphabet must not drive the FSM to its implicit error state).
		f.evalArgs(call.Args, out)
		f.havoc("ext-method")
		return nil, ""
	}
	// Method on a scalar or unclassifiable receiver.
	f.evalEffects(sel.X, out)
	f.evalArgs(call.Args, out)
	f.havoc("ext-method")
	return nil, ""
}

// identVar resolves e to a local variable if it is a plain identifier.
func (f *fnLowerer) identVar(e ast.Expr) *varInfo {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return f.lookup(id.Name)
}

// lowerPredicate lowers an error-classification call like os.IsNotExist(err)
// to `err != 0 && input() != 0`: false when the error is nil, opaque
// otherwise, keeping the error symbol in the path condition.
func (f *fnLowerer) lowerPredicate(call *ast.CallExpr, pos lang.Pos, out *[]lang.Stmt) lang.Expr {
	arg := f.lowerInt(call.Args[0], out)
	f.evalArgs(call.Args[1:], out)
	nonNil := &lang.Binary{Op: lang.OpNe, L: arg, R: &lang.IntLit{Value: 0, Pos: pos}, Pos: pos}
	return &lang.Binary{Op: lang.OpAnd, L: nonNil, R: opaqueBool(pos), Pos: pos}
}

// allocValue materializes an allocator call used in single-value position.
// Fallible allocators (Err >= 0) still guard the allocation on an opaque
// error — the discarded error means the caller cannot branch on it, but the
// object may legitimately be nil.
func (f *fnLowerer) allocValue(al Alloc, pos lang.Pos, out *[]lang.Stmt) lang.Expr {
	f.p.regObjType(al.Type)
	if al.Err < 0 {
		return &lang.NewExpr{Type: al.Type, Pos: pos}
	}
	errName := f.temp("err")
	objName := f.temp("obj")
	*out = append(*out,
		&lang.VarDecl{Name: errName, Type: "int", Init: opaqueInt(pos), Pos: pos},
		&lang.VarDecl{Name: objName, Type: al.Type, Init: &lang.NullLit{Pos: pos}, Pos: pos},
		&lang.IfStmt{
			Cond: &lang.Binary{Op: lang.OpEq, L: &lang.Ident{Name: errName, Pos: pos},
				R: &lang.IntLit{Value: 0, Pos: pos}, Pos: pos},
			Then: []lang.Stmt{&lang.AssignStmt{
				LHS: &lang.Ident{Name: objName, Pos: pos},
				RHS: &lang.NewExpr{Type: al.Type, Pos: pos}, Pos: pos}},
			Pos: pos,
		})
	return &lang.Ident{Name: objName, Pos: pos}
}

// maxDevirtSplit bounds path-split dispatch: beyond this many candidates the
// duplicated branch bodies cost more than the havoc they avoid.
const maxDevirtSplit = 3

// devirtCall lowers an interface method call using the package hierarchy:
// a singleton candidate set becomes a direct call, a small set becomes an
// opaque if/else dispatch over the candidates (each path calls exactly one
// implementation, so path-sensitive downstream analyses see every possible
// event sequence), and anything else havocs exactly as before.
func (f *fnLowerer) devirtCall(call *ast.CallExpr, method, iface string, recvExpr lang.Expr, pos lang.Pos, out *[]lang.Stmt) (lang.Expr, string) {
	st := &f.p.res.Stats
	st.IfaceCalls++
	cands := f.p.hier.Resolve(iface, method)
	metas := make([]*funcMeta, 0, len(cands))
	for _, c := range cands {
		if mm := f.p.methods[typeMethodKey{c.Type, method}]; mm != nil {
			metas = append(metas, mm)
		} else {
			metas = nil // a target we cannot lower: dispatch would be unsound
			break
		}
	}
	switch {
	case len(metas) == 1:
		st.IfaceDirect++
		return f.callLocal(metas[0], recvExpr, call.Args, nil, pos, out)
	case len(metas) >= 2 && len(metas) <= maxDevirtSplit:
		st.IfaceSplit++
		recv := f.materialize(recvExpr, iface, pos, out)
		branch := func(mm *funcMeta) []lang.Stmt {
			var sub []lang.Stmt
			ce, cat := f.callLocal(mm, &lang.Ident{Name: recv.Name, Pos: pos}, call.Args, nil, pos, &sub)
			if cat != "" {
				sub = append(sub, &lang.ExprStmt{X: ce, Pos: pos})
			}
			return sub
		}
		cur := branch(metas[len(metas)-1])
		for i := len(metas) - 2; i >= 0; i-- {
			cur = []lang.Stmt{&lang.IfStmt{Cond: opaqueBool(pos), Then: branch(metas[i]), Else: cur, Pos: pos}}
		}
		*out = append(*out, cur...)
		// The per-path return values are unrecoverable from statement
		// position; callers bind an opaque value of their expected category.
		return nil, ""
	default:
		st.IfaceOpen++
		f.evalArgs(call.Args, out)
		f.havoc("ext-method")
		return nil, ""
	}
}

// callLocal builds a MiniLang call to a lowered function/method/closure and
// places it: void calls are emitted as statements, value-producing calls are
// returned as expressions. recvExpr is non-nil for method calls; clo carries
// capture bindings for closure calls (captures resolve to the caller's
// CURRENT variables, a by-reference approximation evaluated at call time).
func (f *fnLowerer) callLocal(meta *funcMeta, recvExpr lang.Expr, goArgs []ast.Expr, clo *closureBinding, pos lang.Pos, out *[]lang.Stmt) (lang.Expr, string) {
	callExpr, cat := f.buildLocalCall(meta, recvExpr, goArgs, clo, pos, out)
	if cat == "" {
		*out = append(*out, &lang.ExprStmt{X: callExpr, Pos: pos})
		return nil, ""
	}
	return callExpr, cat
}

// buildLocalCall lowers receiver, arguments, and captures, returning the
// bare CallExpr without emitting it (the category is "" for void callees).
// Spawn lowering needs the unemitted form to wrap in a MiniLang spawn
// statement.
func (f *fnLowerer) buildLocalCall(meta *funcMeta, recvExpr lang.Expr, goArgs []ast.Expr, clo *closureBinding, pos lang.Pos, out *[]lang.Stmt) (*lang.CallExpr, string) {
	// Tuple-forwarding call g(h()) where h is multi-result: argument values
	// are unrecoverable; evaluate for effect and havoc the parameters.
	forwarded := len(goArgs) == 1 && meta.nGoArgs > 1 && hasCall(goArgs[0])
	if forwarded {
		if c, ok := goArgs[0].(*ast.CallExpr); ok {
			f.lowerCall(c, "void", out)
			f.havoc("tuple-forward")
			goArgs = nil
		}
	}
	args := make([]lang.Expr, 0, len(meta.params))
	if meta.recvOffset == 1 {
		if recvExpr == nil {
			recvExpr = &lang.NullLit{Pos: pos}
		}
		args = append(args, recvExpr)
	}
	nFixed := meta.nGoArgs
	nCap := len(meta.captures)
	for i := 0; i < nFixed; i++ {
		pi := meta.recvOffset + i
		cat := meta.params[pi].Type
		if i < len(goArgs) {
			args = append(args, f.lowerByCat(goArgs[i], cat, out))
			continue
		}
		args = append(args, zeroFor(cat, pos))
	}
	// Variadic tail: evaluated for effect, not passed.
	if len(goArgs) > nFixed {
		f.evalArgs(goArgs[nFixed:], out)
		if meta.variadic {
			f.havoc("variadic")
		}
	}
	// Captures resolve against the caller's scope at the call site.
	if clo != nil && nCap > 0 {
		for i := 0; i < nCap; i++ {
			pi := len(meta.params) - nCap + i
			cm := meta.captures[i]
			if vi := f.lookup(cm.goName); vi != nil {
				args = append(args, f.ident(vi, pos))
				continue
			}
			args = append(args, zeroFor(meta.params[pi].Type, pos))
		}
	}
	return &lang.CallExpr{Name: meta.name, Args: args, Pos: pos}, meta.retType
}

func zeroFor(cat string, pos lang.Pos) lang.Expr {
	switch cat {
	case "int":
		return &lang.InputExpr{Pos: pos}
	case "bool":
		return &lang.Binary{Op: lang.OpNe, L: &lang.InputExpr{Pos: pos},
			R: &lang.IntLit{Value: 0, Pos: pos}, Pos: pos}
	default:
		return &lang.NullLit{Pos: pos}
	}
}

// lowerConversion lowers T(x). Same-category conversions are identity
// (object conversions preserve aliasing — io.Writer(f) is still f); cross-
// category conversions are opaque.
func (f *fnLowerer) lowerConversion(x ast.Expr, target string, pos lang.Pos, out *[]lang.Stmt) (lang.Expr, string) {
	srcCat := f.catOf(x)
	switch {
	case target == "int" && (srcCat == "int" || srcCat == "nil"):
		return f.lowerInt(x, out), "int"
	case target == "bool" && srcCat == "bool":
		return f.lowerBool(x, out), "bool"
	case lang.IsObjectType(target) && lang.IsObjectType(srcCat) && srcCat != "nil":
		expr, _ := f.lowerObj(x, out)
		return expr, target
	case lang.IsObjectType(target):
		f.evalEffects(x, out)
		return &lang.NullLit{Pos: pos}, target
	default:
		f.evalEffects(x, out)
		return opaqueInt(pos), "int"
	}
}

// lowerPanic flushes pending defers then raises a Panic object through the
// existing throw/catch machinery.
func (f *fnLowerer) lowerPanic(pos lang.Pos, out *[]lang.Stmt) {
	f.flushDefers(out)
	f.p.regObjType("Panic")
	*out = append(*out, &lang.ThrowStmt{X: &lang.NewExpr{Type: "Panic", Pos: pos}, Pos: pos})
}
