package gofront

import (
	"go/ast"
	"go/token"

	"github.com/grapple-system/grapple/internal/lang"
)

// stmt lowers one Go statement, appending MiniLang statements to out.
func (f *fnLowerer) stmt(s ast.Stmt, out *[]lang.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		f.push()
		for _, st := range s.List {
			f.stmt(st, out)
		}
		f.pop()
	case *ast.ExprStmt:
		f.lowerDiscard(s.X, out)
	case *ast.AssignStmt:
		f.assign(s, out)
	case *ast.DeclStmt:
		f.declStmt(s, out)
	case *ast.IfStmt:
		f.ifStmt(s, out)
	case *ast.ForStmt:
		f.forStmt(s, out)
	case *ast.RangeStmt:
		f.rangeStmt(s, out)
	case *ast.SwitchStmt:
		f.switchStmt(s, out)
	case *ast.TypeSwitchStmt:
		f.typeSwitchStmt(s, out)
	case *ast.SelectStmt:
		f.selectStmt(s, out)
	case *ast.ReturnStmt:
		f.returnStmt(s, out)
	case *ast.DeferStmt:
		f.deferStmt(s, out)
	case *ast.GoStmt:
		f.goStmt(s, out)
	case *ast.IncDecStmt:
		f.incDec(s, out)
	case *ast.BranchStmt:
		f.havoc(branchKind(s.Tok))
	case *ast.LabeledStmt:
		f.stmt(s.Stmt, out)
	case *ast.SendStmt:
		f.evalEffects(s.Chan, out)
		f.evalEffects(s.Value, out)
		f.havoc("chan")
	case *ast.EmptyStmt:
	default:
		f.havoc("stmt")
	}
}

// goStmt lowers a `go` statement. When the spawned call resolves to a
// lowered function, method, or function literal, it becomes a MiniLang spawn
// statement — arguments are evaluated at the spawn site (Go's semantics) and
// the callee body is marked as running on a concurrent task, which feeds the
// MHP pass. Unresolvable targets (external functions, func values) keep the
// old behavior: havoc plus an immediate call, so the body's effects stay
// visible to the checker. -nomhp forces the old behavior everywhere.
func (f *fnLowerer) goStmt(s *ast.GoStmt, out *[]lang.Stmt) {
	pos := f.pos(s)
	if !f.p.opts.NoMHP {
		if lit, ok := unparen(s.Call.Fun).(*ast.FuncLit); ok {
			clo := f.liftClosure(lit, "go")
			ce, _ := f.buildLocalCall(clo.meta, nil, s.Call.Args, clo, pos, out)
			*out = append(*out, &lang.SpawnStmt{Call: ce, Pos: pos})
			return
		}
		if meta, clo, recvExpr, ok := f.matchLocalCall(s.Call, out); ok {
			ce, _ := f.buildLocalCall(meta, recvExpr, s.Call.Args, clo, pos, out)
			*out = append(*out, &lang.SpawnStmt{Call: ce, Pos: pos})
			return
		}
	}
	// The goroutine body's effects happen "sometime"; modeling it as an
	// immediate call keeps its events visible to the checker.
	f.havoc("go-stmt")
	f.lowerCall(s.Call, "void", out)
}

func branchKind(t token.Token) string {
	switch t {
	case token.BREAK:
		return "break"
	case token.CONTINUE:
		return "continue"
	case token.GOTO:
		return "goto"
	}
	return "fallthrough"
}

// declStmt lowers `var x T = e` / `const` declaration statements.
func (f *fnLowerer) declStmt(s *ast.DeclStmt, out *[]lang.Stmt) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			var init ast.Expr
			if i < len(vs.Values) {
				init = vs.Values[i]
			}
			cat := ""
			if vs.Type != nil {
				cat = f.typeNameOf(vs.Type)
			} else if init != nil {
				cat = f.catOf(init)
			}
			if cat == "" || cat == "nil" {
				cat = "int"
			}
			pos := f.p.mapPos(name.Pos())
			if name.Name == "_" {
				if init != nil {
					f.evalEffects(init, out)
				}
				continue
			}
			// Zero-value declaration of a tracked composite type
			// (var mu sync.Mutex) is an allocation.
			var initExpr lang.Expr
			if init != nil {
				initExpr = f.lowerByCat(init, cat, out)
			} else if lang.IsObjectType(cat) {
				initExpr = f.zeroValueAlloc(vs.Type, cat, pos)
			} else {
				initExpr = zeroLit(cat, pos)
			}
			ml := f.fresh(name.Name)
			f.bind(name.Name, &varInfo{ml: ml, cat: cat})
			f.p.regObjType(cat)
			*out = append(*out, &lang.VarDecl{Name: ml, Type: cat, Init: initExpr, Pos: pos})
		}
	}
}

// zeroValueAlloc decides whether a zero-value object declaration allocates.
// Tracked composite types (sync.Mutex) allocate; everything else starts null.
func (f *fnLowerer) zeroValueAlloc(typeExpr ast.Expr, cat string, pos lang.Pos) lang.Expr {
	if typeExpr != nil {
		if sel, ok := unparen(typeExpr).(*ast.SelectorExpr); ok {
			if x, ok := unparen(sel.X).(*ast.Ident); ok {
				if base, isPkg := f.imp[x.Name]; isPkg {
					if t, ok := f.p.rules.CompositeAllocs[base+"."+sel.Sel.Name]; ok {
						f.p.regObjType(t)
						return &lang.NewExpr{Type: t, Pos: pos}
					}
				}
			}
		}
		// Local struct value types are objects from declaration on.
		if id, ok := unparen(typeExpr).(*ast.Ident); ok {
			if def, ok := f.p.localType[id.Name]; ok {
				if _, isStruct := def.(*ast.StructType); isStruct {
					return &lang.NewExpr{Type: cat, Pos: pos}
				}
			}
		}
	}
	return &lang.NullLit{Pos: pos}
}

func zeroLit(cat string, pos lang.Pos) lang.Expr {
	switch cat {
	case "bool":
		return &lang.BoolLit{Value: false, Pos: pos}
	case "int":
		return &lang.IntLit{Value: 0, Pos: pos}
	}
	return &lang.NullLit{Pos: pos}
}

// ---------------------------------------------------------------------------
// Assignment

func (f *fnLowerer) assign(s *ast.AssignStmt, out *[]lang.Stmt) {
	if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		f.opAssign(s, out)
		return
	}
	define := s.Tok == token.DEFINE
	if len(s.Lhs) > 1 && len(s.Rhs) == 1 {
		f.tupleAssign(s.Lhs, s.Rhs[0], define, out)
		return
	}
	if len(s.Lhs) == len(s.Rhs) {
		// Pairwise. For multi-assign, stage RHS values in temps first so
		// `a, b = b, a` keeps Go's simultaneous semantics.
		if len(s.Lhs) == 1 {
			f.singleAssign(s.Lhs[0], s.Rhs[0], define, out)
			return
		}
		type staged struct {
			expr lang.Expr
			cat  string
		}
		vals := make([]staged, len(s.Rhs))
		for i, r := range s.Rhs {
			cat := f.lhsCat(s.Lhs[i], r, define)
			e := f.lowerByCat(r, cat, out)
			id := f.materialize(e, cat, f.pos(r), out)
			vals[i] = staged{expr: id, cat: cat}
		}
		for i, l := range s.Lhs {
			f.assignLowered(l, vals[i].expr, vals[i].cat, define, out)
		}
		return
	}
	// Mismatched arity (invalid Go); evaluate everything.
	for _, r := range s.Rhs {
		f.evalEffects(r, out)
	}
	f.havoc("assign")
}

// lhsCat decides the category an assignment's RHS should be lowered into:
// the existing variable's category when assigning, the RHS's natural
// category when defining.
func (f *fnLowerer) lhsCat(lhs, rhs ast.Expr, define bool) string {
	if id, ok := unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
		if vi := f.lookup(id.Name); vi != nil && (!define || f.inCurrentScope(id.Name) != nil) {
			return vi.cat
		}
	}
	cat := f.catOf(rhs)
	if cat == "nil" || cat == "" {
		cat = "int"
	}
	return cat
}

func (f *fnLowerer) singleAssign(lhs, rhs ast.Expr, define bool, out *[]lang.Stmt) {
	pos := f.pos(lhs)
	// Blank target still evaluates (events!) then drops.
	if isBlank(lhs) {
		f.evalEffects(rhs, out)
		return
	}
	// Closure literal bound to a variable: lift, bind, no runtime statement.
	if lit, ok := unparen(rhs).(*ast.FuncLit); ok {
		if id, ok := unparen(lhs).(*ast.Ident); ok {
			clo := f.liftClosure(lit, id.Name)
			f.bind(id.Name, &varInfo{ml: f.fresh(id.Name), cat: "Func", clo: clo})
			return
		}
	}
	if id, ok := unparen(lhs).(*ast.Ident); ok {
		vi := f.lookup(id.Name)
		reuse := vi != nil && (!define || f.inCurrentScope(id.Name) != nil)
		if reuse {
			e := f.lowerByCat(rhs, vi.cat, out)
			*out = append(*out, &lang.AssignStmt{LHS: f.ident(vi, pos), RHS: e, Pos: pos})
			return
		}
		// New variable (define, or first sight of an if-init shadow).
		cat := f.catOf(rhs)
		if cat == "nil" || cat == "" {
			cat = "int"
		}
		var e lang.Expr
		if lang.IsObjectType(cat) {
			var typ string
			e, typ = f.lowerObj(rhs, out)
			if typ != "" {
				cat = typ
			}
		} else {
			e = f.lowerByCat(rhs, cat, out)
		}
		ml := f.fresh(id.Name)
		f.bind(id.Name, &varInfo{ml: ml, cat: cat})
		f.p.regObjType(cat)
		*out = append(*out, &lang.VarDecl{Name: ml, Type: cat, Init: e, Pos: pos})
		return
	}
	// Field store: object-typed stores are modeled; scalar stores drop.
	if sel, ok := unparen(lhs).(*ast.SelectorExpr); ok {
		if iv := f.identVar(sel.X); iv != nil && lang.IsObjectType(iv.cat) {
			rcat := f.catOf(rhs)
			if lang.IsObjectType(rcat) || rcat == "nil" {
				e, _ := f.lowerObj(rhs, out)
				*out = append(*out, &lang.AssignStmt{
					LHS: &lang.FieldAccess{Recv: f.ident(iv, pos), Field: sel.Sel.Name, Pos: pos},
					RHS: e, Pos: pos})
				return
			}
			f.evalEffects(rhs, out)
			return
		}
		f.evalEffects(sel.X, out)
		f.evalEffects(rhs, out)
		f.havoc("store")
		return
	}
	// *p = e, m[k] = e, a[i] = e.
	f.lowerDiscard(lhs, out)
	f.evalEffects(rhs, out)
	f.havoc("store")
}

// assignLowered stores an already-lowered value into a target.
func (f *fnLowerer) assignLowered(lhs ast.Expr, val lang.Expr, cat string, define bool, out *[]lang.Stmt) {
	pos := f.pos(lhs)
	if isBlank(lhs) {
		return
	}
	if id, ok := unparen(lhs).(*ast.Ident); ok {
		vi := f.lookup(id.Name)
		if vi != nil && (!define || f.inCurrentScope(id.Name) != nil) {
			*out = append(*out, &lang.AssignStmt{LHS: f.ident(vi, pos), RHS: val, Pos: pos})
			return
		}
		ml := f.fresh(id.Name)
		f.bind(id.Name, &varInfo{ml: ml, cat: cat})
		f.p.regObjType(cat)
		*out = append(*out, &lang.VarDecl{Name: ml, Type: cat, Init: val, Pos: pos})
		return
	}
	if sel, ok := unparen(lhs).(*ast.SelectorExpr); ok {
		if iv := f.identVar(sel.X); iv != nil && lang.IsObjectType(iv.cat) && lang.IsObjectType(cat) {
			*out = append(*out, &lang.AssignStmt{
				LHS: &lang.FieldAccess{Recv: f.ident(iv, pos), Field: sel.Sel.Name, Pos: pos},
				RHS: val, Pos: pos})
			return
		}
	}
	f.havoc("store")
}

// tupleAssign lowers `a, b, ... = rhs` for a multi-result RHS: allocator
// calls become guarded allocations binding both the object and the error
// symbol; local calls bind the chosen result; everything else is opaque.
func (f *fnLowerer) tupleAssign(lhs []ast.Expr, rhs ast.Expr, define bool, out *[]lang.Stmt) {
	pos := f.pos(rhs)
	switch rhs := unparen(rhs).(type) {
	case *ast.CallExpr:
		if al, ok := f.matchAlloc(rhs, out); ok {
			f.lowerAllocTuple(lhs, al, define, pos, out)
			return
		}
		if meta, clo, recvExpr, ok := f.matchLocalCall(rhs, out); ok {
			f.lowerLocalTuple(lhs, meta, clo, recvExpr, rhs, define, pos, out)
			return
		}
		// Mapped event in tuple position: n, err := fh.ReadAt(...).
		if mc, ok := f.matchEvent(rhs, out); ok {
			*out = append(*out, &lang.ExprStmt{X: mc, Pos: pos})
			f.opaqueTargets(lhs, define, pos, out)
			return
		}
		// External multi-result call.
		f.lowerCall(rhs, "void", out)
		f.opaqueTargets(lhs, define, pos, out)
		return
	case *ast.TypeAssertExpr:
		// v, ok := x.(T): identity-preserving narrow + opaque ok.
		if len(lhs) == 2 {
			cat := "Ext"
			if rhs.Type != nil {
				cat = f.typeNameOf(rhs.Type)
			}
			if lang.IsObjectType(cat) {
				e, _ := f.lowerObj(rhs.X, out)
				id := f.materialize(e, cat, pos, out)
				f.assignLowered(lhs[0], &lang.Ident{Name: id.Name, Pos: pos}, cat, define, out)
			} else {
				f.evalEffects(rhs.X, out)
				f.assignLowered(lhs[0], opaqueInt(pos), "int", define, out)
			}
			f.assignLowered(lhs[1], opaqueBool(pos), "bool", define, out)
			return
		}
	case *ast.IndexExpr:
		// v, ok := m[k].
		f.evalEffects(rhs.X, out)
		f.evalEffects(rhs.Index, out)
		f.opaqueTargets(lhs, define, pos, out)
		return
	case *ast.UnaryExpr:
		if rhs.Op == token.ARROW {
			f.evalEffects(rhs.X, out)
			f.havoc("chan")
			f.opaqueTargets(lhs, define, pos, out)
			return
		}
	}
	f.evalEffects(rhs, out)
	f.opaqueTargets(lhs, define, pos, out)
}

// opaqueTargets binds each target to a fresh opaque value of its category.
func (f *fnLowerer) opaqueTargets(lhs []ast.Expr, define bool, pos lang.Pos, out *[]lang.Stmt) {
	for _, l := range lhs {
		if isBlank(l) {
			continue
		}
		cat := "int"
		if id, ok := unparen(l).(*ast.Ident); ok {
			if vi := f.lookup(id.Name); vi != nil && (!define || f.inCurrentScope(id.Name) != nil) {
				cat = vi.cat
			} else if c, ok := f.p.typesDefCat(id); ok {
				cat = c
			}
		}
		f.assignLowered(l, zeroFor(cat, pos), cat, define, out)
	}
}

// matchAlloc recognizes allocator calls (pack FuncAllocs/MethodAllocs),
// evaluating the receiver and arguments for effect.
func (f *fnLowerer) matchAlloc(call *ast.CallExpr, out *[]lang.Stmt) (Alloc, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return Alloc{}, false
	}
	if x, ok := unparen(sel.X).(*ast.Ident); ok && f.lookup(x.Name) == nil {
		if base, isPkg := f.imp[x.Name]; isPkg {
			if al, ok := f.p.rules.FuncAllocs[base+"."+sel.Sel.Name]; ok {
				f.evalArgs(call.Args, out)
				return al, true
			}
		}
		return Alloc{}, false
	}
	recvCat := f.catOf(sel.X)
	if lang.IsObjectType(recvCat) && recvCat != "nil" {
		if al, ok := f.p.rules.MethodAllocs[TypeMethod{Type: recvCat, Method: sel.Sel.Name}]; ok {
			f.evalEffects(sel.X, out)
			f.evalArgs(call.Args, out)
			return al, true
		}
	}
	return Alloc{}, false
}

// matchLocalCall recognizes calls to lowered functions/methods/closures.
func (f *fnLowerer) matchLocalCall(call *ast.CallExpr, out *[]lang.Stmt) (*funcMeta, *closureBinding, lang.Expr, bool) {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if vi := f.lookup(fun.Name); vi != nil {
			if vi.clo != nil {
				return vi.clo.meta, vi.clo, nil, true
			}
			return nil, nil, nil, false
		}
		if meta := f.p.funcs[fun.Name]; meta != nil {
			return meta, nil, nil, true
		}
	case *ast.SelectorExpr:
		if x, ok := unparen(fun.X).(*ast.Ident); ok && f.lookup(x.Name) == nil {
			return nil, nil, nil, false
		}
		recvCat := f.catOf(fun.X)
		if lang.IsObjectType(recvCat) && recvCat != "nil" {
			if mm := f.p.methods[typeMethodKey{recvCat, fun.Sel.Name}]; mm != nil {
				recvExpr, _ := f.lowerObj(fun.X, out)
				return mm, nil, recvExpr, true
			}
		}
	}
	return nil, nil, nil, false
}

// matchEvent recognizes mapped event calls used in tuple position.
func (f *fnLowerer) matchEvent(call *ast.CallExpr, out *[]lang.Stmt) (*lang.MethodCall, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	pos := f.pos(call)
	if inner, ok := unparen(sel.X).(*ast.SelectorExpr); ok {
		if iv := f.identVar(inner.X); iv != nil && lang.IsObjectType(iv.cat) {
			key := TypeFieldMethod{Type: iv.cat, Field: inner.Sel.Name, Method: sel.Sel.Name}
			if ev, ok := f.p.rules.FieldEvents[key]; ok {
				f.evalArgs(call.Args, out)
				return &lang.MethodCall{Recv: f.ident(iv, pos), Method: ev, Pos: pos}, true
			}
		}
	}
	recvCat := f.catOf(sel.X)
	if !lang.IsObjectType(recvCat) || recvCat == "nil" {
		return nil, false
	}
	ev, ok := f.p.rules.Events[TypeMethod{Type: recvCat, Method: sel.Sel.Name}]
	if !ok {
		return nil, false
	}
	recvExpr, typ := f.lowerObj(sel.X, out)
	if typ == "" {
		typ = recvCat
	}
	recv := f.materialize(recvExpr, typ, pos, out)
	f.evalArgs(call.Args, out)
	return &lang.MethodCall{Recv: recv, Method: ev, Pos: pos}, true
}

// lowerAllocTuple binds `obj, err := allocator(...)` as a guarded
// allocation: err gets a fresh symbol and the object is non-null exactly on
// the err == 0 arm, so later `if err != nil` branches correlate.
func (f *fnLowerer) lowerAllocTuple(lhs []ast.Expr, al Alloc, define bool, pos lang.Pos, out *[]lang.Stmt) {
	f.p.regObjType(al.Type)
	var errTarget, objTarget ast.Expr
	if al.Err >= 0 && al.Err < len(lhs) {
		errTarget = lhs[al.Err]
	}
	if al.Obj >= 0 && al.Obj < len(lhs) {
		objTarget = lhs[al.Obj]
	}
	// Remaining results are opaque.
	for i, l := range lhs {
		if i == al.Err || i == al.Obj || isBlank(l) {
			continue
		}
		f.assignLowered(l, zeroFor("int", pos), "int", define, out)
	}
	if errTarget == nil || isBlank(errTarget) {
		// No observable error: unconditional allocation.
		objExpr := lang.Expr(&lang.NewExpr{Type: al.Type, Pos: pos})
		if objTarget == nil || isBlank(objTarget) {
			// Object also dropped: still allocate into a temp so the leak
			// checker sees the acquisition.
			name := f.temp("drop")
			*out = append(*out, &lang.VarDecl{Name: name, Type: al.Type, Init: objExpr, Pos: pos})
			return
		}
		f.assignLowered(objTarget, objExpr, al.Type, define, out)
		return
	}
	errVar := f.bindScalarTarget(errTarget, "int", define, opaqueInt(pos), pos, out)
	objVar := f.bindObjTarget(objTarget, al.Type, define, pos, out)
	*out = append(*out, &lang.IfStmt{
		Cond: &lang.Binary{Op: lang.OpEq, L: &lang.Ident{Name: errVar, Pos: pos},
			R: &lang.IntLit{Value: 0, Pos: pos}, Pos: pos},
		Then: []lang.Stmt{&lang.AssignStmt{
			LHS: &lang.Ident{Name: objVar, Pos: pos},
			RHS: &lang.NewExpr{Type: al.Type, Pos: pos}, Pos: pos}},
		Pos: pos,
	})
}

// bindScalarTarget assigns/declares a scalar target with init, returning the
// MiniLang name holding the value.
func (f *fnLowerer) bindScalarTarget(t ast.Expr, cat string, define bool, init lang.Expr, pos lang.Pos, out *[]lang.Stmt) string {
	if id, ok := unparen(t).(*ast.Ident); ok && id.Name != "_" {
		if vi := f.lookup(id.Name); vi != nil && (!define || f.inCurrentScope(id.Name) != nil) && vi.cat == cat {
			*out = append(*out, &lang.AssignStmt{LHS: f.ident(vi, pos), RHS: init, Pos: pos})
			return vi.ml
		}
		ml := f.fresh(id.Name)
		f.bind(id.Name, &varInfo{ml: ml, cat: cat})
		*out = append(*out, &lang.VarDecl{Name: ml, Type: cat, Init: init, Pos: pos})
		return ml
	}
	name := f.temp("err")
	*out = append(*out, &lang.VarDecl{Name: name, Type: cat, Init: init, Pos: pos})
	return name
}

// bindObjTarget declares/assigns an object target initialized to null,
// returning the MiniLang name to allocate into.
func (f *fnLowerer) bindObjTarget(t ast.Expr, typ string, define bool, pos lang.Pos, out *[]lang.Stmt) string {
	f.p.regObjType(typ)
	if t != nil && !isBlank(t) {
		if id, ok := unparen(t).(*ast.Ident); ok {
			if vi := f.lookup(id.Name); vi != nil && (!define || f.inCurrentScope(id.Name) != nil) && vi.cat == typ {
				*out = append(*out, &lang.AssignStmt{LHS: f.ident(vi, pos), RHS: &lang.NullLit{Pos: pos}, Pos: pos})
				return vi.ml
			}
			ml := f.fresh(id.Name)
			f.bind(id.Name, &varInfo{ml: ml, cat: typ})
			*out = append(*out, &lang.VarDecl{Name: ml, Type: typ, Init: &lang.NullLit{Pos: pos}, Pos: pos})
			return ml
		}
	}
	name := f.temp("obj")
	*out = append(*out, &lang.VarDecl{Name: name, Type: typ, Init: &lang.NullLit{Pos: pos}, Pos: pos})
	return name
}

// lowerLocalTuple binds a multi-result local call: the callee's chosen
// result index gets the call value, the rest are opaque.
func (f *fnLowerer) lowerLocalTuple(lhs []ast.Expr, meta *funcMeta, clo *closureBinding, recvExpr lang.Expr, call *ast.CallExpr, define bool, pos lang.Pos, out *[]lang.Stmt) {
	callExpr, cat := f.callLocal(meta, recvExpr, call.Args, clo, pos, out)
	bound := false
	for i, l := range lhs {
		if i == meta.retIndex && callExpr != nil {
			bound = true
			if isBlank(l) {
				*out = append(*out, &lang.ExprStmt{X: callExpr, Pos: pos})
				continue
			}
			f.assignLowered(l, callExpr, cat, define, out)
			continue
		}
		if isBlank(l) {
			continue
		}
		tcat := "int"
		if i < len(meta.results) {
			tcat = meta.results[i]
		}
		if lang.IsObjectType(tcat) {
			f.havoc("dropped-result")
			f.assignLowered(l, &lang.NullLit{Pos: pos}, tcat, define, out)
			continue
		}
		f.assignLowered(l, zeroFor(tcat, pos), tcat, define, out)
	}
	if !bound && callExpr != nil {
		*out = append(*out, &lang.ExprStmt{X: callExpr, Pos: pos})
	}
}

// opAssign lowers x op= e; only int += - * forms stay symbolic.
func (f *fnLowerer) opAssign(s *ast.AssignStmt, out *[]lang.Stmt) {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return
	}
	pos := f.pos(s.Lhs[0])
	id, ok := unparen(s.Lhs[0]).(*ast.Ident)
	if !ok {
		f.evalEffects(s.Rhs[0], out)
		f.havoc("store")
		return
	}
	vi := f.lookup(id.Name)
	if vi == nil || vi.cat != "int" {
		f.evalEffects(s.Rhs[0], out)
		return
	}
	var op lang.BinOp
	switch s.Tok {
	case token.ADD_ASSIGN:
		op = lang.OpAdd
	case token.SUB_ASSIGN:
		op = lang.OpSub
	case token.MUL_ASSIGN:
		op = lang.OpMul
	default:
		f.evalEffects(s.Rhs[0], out)
		*out = append(*out, &lang.AssignStmt{LHS: f.ident(vi, pos), RHS: opaqueInt(pos), Pos: pos})
		return
	}
	r := f.lowerInt(s.Rhs[0], out)
	*out = append(*out, &lang.AssignStmt{LHS: f.ident(vi, pos),
		RHS: &lang.Binary{Op: op, L: f.ident(vi, pos), R: r, Pos: pos}, Pos: pos})
}

func (f *fnLowerer) incDec(s *ast.IncDecStmt, out *[]lang.Stmt) {
	pos := f.pos(s.X)
	id, ok := unparen(s.X).(*ast.Ident)
	if !ok {
		f.evalEffects(s.X, out)
		return
	}
	vi := f.lookup(id.Name)
	if vi == nil || vi.cat != "int" {
		return
	}
	op := lang.OpAdd
	if s.Tok == token.DEC {
		op = lang.OpSub
	}
	*out = append(*out, &lang.AssignStmt{LHS: f.ident(vi, pos),
		RHS: &lang.Binary{Op: op, L: f.ident(vi, pos), R: &lang.IntLit{Value: 1, Pos: pos}, Pos: pos},
		Pos: pos})
}
