package gofront_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"github.com/grapple-system/grapple/internal/gofront"
)

// updateBudget rewrites testdata/unlowered_budget.json. Regenerate with:
//
//	go test ./internal/gofront/ -run TestUnloweredBudget -update
var updateBudget = flag.Bool("update", false, "rewrite the unlowered budget file")

const budgetPath = "../../testdata/unlowered_budget.json"

// unloweredBudget is the committed lowering-coverage contract: for every
// corpus snippet and every self-check package, the number of constructs the
// frontend havocs (PhaseStats.Unlowered) is pinned exactly. A frontend
// change that loses coverage fails CI until the regression is either fixed
// or acknowledged by regenerating the file, and a change that gains
// coverage must bank the improvement the same way.
type unloweredBudget struct {
	Subjects map[string]int `json:"subjects"`
	Total    int            `json:"total"`
}

// budgetSubjects lowers the whole corpus (files and packages) once and
// returns name -> Havocs. Package subjects are the self-check targets: the
// code grapple checks over itself, so the budget tracks real-Go coverage,
// not just the synthetic corpus.
func budgetSubjects(t *testing.T) map[string]int {
	t.Helper()
	rules := allRules(t)
	got := map[string]int{}

	entries, err := os.ReadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(corpusDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		res, err := gofront.LowerSource(string(data), rules)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		got["corpus/"+e.Name()] = res.Stats.Havocs
	}

	for _, pkg := range []string{"storage", "engine", "trace"} {
		dir := filepath.Join("..", "..", "internal", pkg)
		res, err := gofront.LowerPackage(dir, rules)
		if err != nil {
			t.Fatalf("%s: %v", pkg, err)
		}
		got["internal/"+pkg] = res.Stats.Havocs

		// The devirtualization and spawn-lowering passes exist to shrink
		// the havoc count; with both ablated the count must not go down.
		abl, err := gofront.LowerPackageWith(dir, rules,
			gofront.Options{NoDevirt: true, NoMHP: true})
		if err != nil {
			t.Fatalf("%s (ablated): %v", pkg, err)
		}
		if abl.Stats.Havocs < res.Stats.Havocs {
			t.Errorf("internal/%s: passes on havocs %d > ablated %d — a pass added havocs",
				pkg, res.Stats.Havocs, abl.Stats.Havocs)
		}
	}
	return got
}

func TestUnloweredBudget(t *testing.T) {
	got := budgetSubjects(t)
	total := 0
	for _, n := range got {
		total += n
	}

	if *updateBudget {
		data, err := json.MarshalIndent(unloweredBudget{Subjects: got, Total: total}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(budgetPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (total %d)", budgetPath, total)
		return
	}

	data, err := os.ReadFile(budgetPath)
	if err != nil {
		t.Fatalf("missing budget file (run with -update): %v", err)
	}
	var want unloweredBudget
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}

	var names []string
	for n := range got {
		names = append(names, n)
	}
	for n := range want.Subjects {
		if _, ok := got[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		w, inBudget := want.Subjects[n]
		g, lowered := got[n]
		switch {
		case !inBudget:
			t.Errorf("%s: not in budget file (run with -update)", n)
		case !lowered:
			t.Errorf("%s: in budget file but no longer lowered", n)
		case g != w:
			t.Errorf("%s: %d unlowered constructs, budget pins %d", n, g, w)
		}
	}
	if total != want.Total {
		t.Errorf("corpus-wide unlowered total = %d, budget pins %d", total, want.Total)
	}
}
