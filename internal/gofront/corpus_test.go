package gofront_test

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/grapple-system/grapple/internal/fsm/packs"
	"github.com/grapple-system/grapple/internal/gofront"
	"github.com/grapple-system/grapple/internal/ir"
	"github.com/grapple-system/grapple/internal/lang"
)

// corpusDir is the table-driven lowering-fidelity corpus.
const corpusDir = "../../testdata/gofront"

func allRules(t *testing.T) *gofront.Rules {
	t.Helper()
	if err := packs.BuildErr(); err != nil {
		t.Fatal(err)
	}
	return packs.MergedRules(packs.All())
}

// TestCorpusRoundTrip lowers every corpus snippet and asserts the produced
// program round-trips through the internal/lang printer: parse(print(p))
// prints byte-identically, resolves, and lowers to IR.
func TestCorpusRoundTrip(t *testing.T) {
	entries, err := os.ReadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	rules := allRules(t)
	if len(entries) == 0 {
		t.Fatal("empty corpus")
	}
	for _, e := range entries {
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join(corpusDir, name))
			if err != nil {
				t.Fatal(err)
			}
			res, err := gofront.LowerSource(string(data), rules)
			if err != nil {
				t.Fatalf("lower: %v", err)
			}
			src := res.Source()
			reparsed, err := lang.Parse(src)
			if err != nil {
				t.Fatalf("lowered output does not parse: %v\n%s", err, src)
			}
			if again := lang.Format(reparsed); again != src {
				t.Fatalf("print/parse/print not stable:\n--- first\n%s\n--- second\n%s", src, again)
			}
			info, err := lang.Resolve(reparsed)
			if err != nil {
				t.Fatalf("resolve: %v", err)
			}
			if _, err := ir.Lower(info, ir.Options{}); err != nil {
				t.Fatalf("ir lower: %v", err)
			}
		})
	}
}

// TestCorpusDeterministic asserts the lowering is byte-stable across runs
// (a golden-corpus requirement).
func TestCorpusDeterministic(t *testing.T) {
	rules := allRules(t)
	data, err := os.ReadFile(filepath.Join(corpusDir, "closure.go"))
	if err != nil {
		t.Fatal(err)
	}
	first, err := gofront.LowerSource(string(data), rules)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, err := gofront.LowerSource(string(data), rules)
		if err != nil {
			t.Fatal(err)
		}
		if res.Source() != first.Source() {
			t.Fatal("lowering is not deterministic")
		}
	}
}

// TestHavocCounted asserts unsupported constructs are havocked and counted
// rather than rejected.
func TestHavocCounted(t *testing.T) {
	data, err := os.ReadFile(filepath.Join(corpusDir, "havoc.go"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := gofront.LowerSource(string(data), allRules(t))
	if err != nil {
		t.Fatalf("havoc-heavy source must still lower: %v", err)
	}
	if res.Stats.Havocs == 0 {
		t.Fatal("expected nonzero havoc count")
	}
	if len(res.Stats.ByKind) == 0 {
		t.Fatal("expected per-kind havoc breakdown")
	}
}
