// Package gofront lowers a restricted-but-useful subset of Go into MiniLang,
// so the full Grapple pipeline — points-to summaries, slicing, CFET
// construction, interval encoding, the disk engine, SMT path-condition
// checking — runs unchanged on real Go packages.
//
// The supported subset covers what typestate checking needs: functions and
// methods, structs and pointers, depth-one field access, if/for/switch,
// calls, closures assigned to locals, defer (desugared to exit-edge calls),
// and error returns (modeled as integers so `if err != nil` guards ride the
// engine's SMT path-condition correlation). Everything else is soundly
// over-approximated — havocked to opaque values — and counted in
// Stats.Havocs rather than rejected, so arbitrary Go packages lower without
// errors; see docs/gofront.md for the exact rules.
//
// The lowering is syntax-directed and deterministic: the same input always
// yields byte-identical MiniLang (a requirement of the golden corpus).
// go/types runs in lenient, stdlib-import-free mode as a category oracle of
// last resort; everything load-bearing is resolved from syntax.
package gofront

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/grapple-system/grapple/internal/lang"
)

// Options toggles the optional precision passes of the lowering. The zero
// value enables everything; the ablation flags exist so `grapple run
// -nodevirt -nomhp` reproduces the pre-pass lowering byte-for-byte.
type Options struct {
	// NoDevirt disables interface devirtualization: interface method calls
	// havoc ("ext-method") instead of resolving against the package's type
	// hierarchy.
	NoDevirt bool
	// NoMHP disables spawn lowering: `go` statements havoc ("go-stmt") and
	// inline the callee body instead of producing MiniLang spawn statements.
	NoMHP bool
}

// Stats reports what the lowering covered and what it over-approximated.
type Stats struct {
	// Functions is the number of Go functions and methods lowered
	// (including lifted closures).
	Functions int
	// Havocs counts constructs that were over-approximated instead of
	// modeled precisely. This is the PhaseStats.Unlowered count.
	Havocs int
	// ByKind breaks Havocs down by construct kind ("ext-call", "range",
	// "go-stmt", ...).
	ByKind map[string]int
	// TypeErrors is how many diagnostics the lenient go/types pass
	// produced (imports are unresolved by design, so nonzero is normal).
	TypeErrors int

	// IfaceCalls counts interface method call sites the devirtualizer
	// examined; the next three partition it by outcome.
	IfaceCalls int
	// IfaceDirect: exactly one live implementation — lowered to a direct
	// call.
	IfaceDirect int
	// IfaceSplit: a small candidate set — lowered to an opaque path-split
	// dispatch over the candidates.
	IfaceSplit int
	// IfaceOpen: unresolvable (no live implementer, too many, or an
	// unlowerable target) — havocked as before.
	IfaceOpen int
}

func (s *Stats) havoc(kind string) {
	s.Havocs++
	if s.ByKind == nil {
		s.ByKind = map[string]int{}
	}
	s.ByKind[kind]++
}

// Result is a lowered Go package.
type Result struct {
	// Prog is the MiniLang program; it resolves and lowers through the
	// standard internal/lang + internal/ir path.
	Prog  *lang.Program
	Stats Stats

	spans []fileSpan
}

type fileSpan struct {
	name      string
	startLine int // first combined line (1-based)
	lines     int
}

// Source renders the lowered program as canonical MiniLang text.
func (r *Result) Source() string { return lang.Format(r.Prog) }

// Locate maps a combined (lang.Pos) line back to (Go file, line), exactly
// like the CLI's multi-file MiniLang locator.
func (r *Result) Locate(line int) (string, int) {
	for i := len(r.spans) - 1; i >= 0; i-- {
		if line >= r.spans[i].startLine {
			return r.spans[i].name, line - r.spans[i].startLine + 1
		}
	}
	if len(r.spans) > 0 {
		return r.spans[0].name, line
	}
	return "", line
}

// PackageFiles lists the non-test .go files of dir, sorted.
func PackageFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, filepath.Join(dir, name))
	}
	sort.Strings(out)
	if len(out) == 0 {
		return nil, fmt.Errorf("gofront: no Go source files in %s", dir)
	}
	return out, nil
}

// LowerPackage parses and lowers every non-test .go file of dir with
// default options (all precision passes on).
func LowerPackage(dir string, rules *Rules) (*Result, error) {
	return LowerPackageWith(dir, rules, Options{})
}

// LowerPackageWith is LowerPackage with explicit options.
func LowerPackageWith(dir string, rules *Rules, opts Options) (*Result, error) {
	files, err := PackageFiles(dir)
	if err != nil {
		return nil, err
	}
	return LowerFilesWith(files, rules, opts)
}

// LowerFiles parses and lowers the given Go files as one package with
// default options.
func LowerFiles(paths []string, rules *Rules) (*Result, error) {
	return LowerFilesWith(paths, rules, Options{})
}

// LowerFilesWith is LowerFiles with explicit options.
func LowerFilesWith(paths []string, rules *Rules, opts Options) (*Result, error) {
	fset := token.NewFileSet()
	named := make([]namedFile, 0, len(paths))
	for _, path := range paths {
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("gofront: %w", err)
		}
		named = append(named, namedFile{name: path, ast: f})
	}
	return lower(fset, named, rules, opts)
}

// LowerSource lowers a single Go source string (tests, fuzzing) with
// default options.
func LowerSource(src string, rules *Rules) (*Result, error) {
	return LowerSourceWith(src, rules, Options{})
}

// LowerSourceWith is LowerSource with explicit options.
func LowerSourceWith(src string, rules *Rules, opts Options) (*Result, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "input.go", src, parser.SkipObjectResolution)
	if err != nil {
		return nil, fmt.Errorf("gofront: %w", err)
	}
	return lower(fset, []namedFile{{name: "input.go", ast: f}}, rules, opts)
}

type namedFile struct {
	name string
	ast  *ast.File
}

func lower(fset *token.FileSet, files []namedFile, rules *Rules, opts Options) (*Result, error) {
	if rules == nil {
		rules = NewRules()
	}
	res := &Result{Prog: &lang.Program{}}
	p := &pkgLowerer{
		fset:      fset,
		files:     files,
		rules:     rules,
		opts:      opts,
		res:       res,
		spanOf:    map[string]int{},
		localType: map[string]ast.Expr{},
		fields:    map[string]map[string]ast.Expr{},
		methods:   map[typeMethodKey]*funcMeta{},
		funcs:     map[string]*funcMeta{},
		usedNames: map[string]bool{},
	}
	p.buildSpans()
	p.typeCheck()
	p.collect()
	if !opts.NoDevirt {
		p.buildHierarchy()
	}
	for _, nf := range files {
		imp := importsOf(nf.ast)
		for _, d := range nf.ast.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p.lowerFunc(fd, imp)
		}
	}
	p.emitTypes()
	return res, nil
}

// buildSpans assigns each file a combined-line offset so every lang.Pos maps
// back to a real (file, line) pair.
func (p *pkgLowerer) buildSpans() {
	line := 0
	for _, nf := range p.files {
		tf := p.fset.File(nf.ast.Pos())
		n := 1
		if tf != nil {
			n = tf.LineCount()
		}
		p.res.spans = append(p.res.spans, fileSpan{name: nf.name, startLine: line + 1, lines: n})
		p.spanOf[nf.name] = line
		line += n
	}
}

// typeCheck runs go/types leniently: no importer (imported names resolve to
// invalid types, which is tolerated), errors collected as a count. The
// resulting Info is a category oracle of last resort for expressions the
// syntactic rules cannot classify.
func (p *pkgLowerer) typeCheck() {
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{
		Error:                    func(error) { p.res.Stats.TypeErrors++ },
		FakeImportC:              true,
		DisableUnusedImportCheck: true,
	}
	asts := make([]*ast.File, len(p.files))
	for i, nf := range p.files {
		asts[i] = nf.ast
	}
	pkgName := "p"
	if len(asts) > 0 && asts[0].Name != nil {
		pkgName = asts[0].Name.Name
	}
	// Check never succeeds fully without imports; we only want Info.
	_, _ = conf.Check(pkgName, p.fset, asts, info)
	p.info = info
}

// importsOf maps each file-local package identifier to the canonical package
// name used in rule keys ("os", "errors", "http", "sql", "context").
func importsOf(f *ast.File) map[string]string {
	out := map[string]string{}
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		base := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			base = path[i+1:]
		}
		name := base
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == "." || name == "_" {
			continue
		}
		out[name] = base
	}
	return out
}

// emitTypes declares every object type the lowering mentioned, sorted, so
// checkers (and readers) can enumerate them.
func (p *pkgLowerer) emitTypes() {
	if len(p.usedObjTypes) == 0 {
		return
	}
	names := make([]string, 0, len(p.usedObjTypes))
	for t := range p.usedObjTypes {
		names = append(names, t)
	}
	sort.Strings(names)
	for _, t := range names {
		p.res.Prog.Types = append(p.res.Prog.Types, &lang.TypeDecl{Name: t})
	}
}
