package analysis

import (
	"strings"
	"testing"

	"github.com/grapple-system/grapple/internal/callgraph"
)

func TestComputeMHPFacts(t *testing.T) {
	p, pts := solve(t, `
type Obj;
type Box;

fun helper() {
  return;
}

fun worker(b: Box) {
  helper();
  return;
}

fun main() {
  var o: Obj = new Obj();
  var b: Box = new Box();
  b.fld = o;
  spawn worker(b);
  return;
}`)
	m := ComputeMHP(pts, callgraph.Build(p))
	if m.SpawnCount != 1 {
		t.Fatalf("SpawnCount = %d, want 1", m.SpawnCount)
	}
	for _, fn := range []string{"worker", "helper"} {
		if !m.MayRunInParallel(fn) {
			t.Errorf("%s must be in the spawned set", fn)
		}
	}
	if m.MayRunInParallel("main") {
		t.Error("main is the spawner, not a spawned task")
	}
	// The Box argument is shared directly; the Obj stored in its field is
	// shared through the field closure.
	box := siteOfType(t, p, "Box")
	obj := siteOfType(t, p, "Obj")
	if got := m.SharedSiteList(); len(got) != 2 || !m.SharedSites[box] || !m.SharedSites[obj] {
		t.Errorf("SharedSites = %v, want {%d,%d}", got, box, obj)
	}
}

func TestComputeMHPSpawnFree(t *testing.T) {
	p, pts := solve(t, `
type Obj;

fun main() {
  var o: Obj = new Obj();
  o.use();
  return;
}`)
	m := ComputeMHP(pts, callgraph.Build(p))
	if m.SpawnCount != 0 || len(m.Spawned) != 0 || len(m.SharedSites) != 0 {
		t.Fatalf("spawn-free program produced facts: %+v", m)
	}
}

// grCodes filters a diagnostic list down to the GR concurrency codes so the
// assertions stay stable when unrelated passes also fire.
func grCodes(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		if strings.HasPrefix(d.Code, "GR") {
			out = append(out, d.Code)
		}
	}
	return out
}

func TestGoroutineLeakRule(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want int // expected GR001 count
	}{
		{
			name: "neither side releases",
			src: `
type FileWriter;

fun worker(f: FileWriter) {
  f.write();
  return;
}

fun main() {
  var f: FileWriter = new FileWriter();
  spawn worker(f);
  return;
}`,
			want: 1,
		},
		{
			name: "spawner releases after spawn",
			src: `
type FileWriter;

fun worker(f: FileWriter) {
  f.write();
  return;
}

fun main() {
  var f: FileWriter = new FileWriter();
  spawn worker(f);
  f.close();
  return;
}`,
			want: 0,
		},
		{
			name: "goroutine takes ownership and releases",
			src: `
type FileWriter;

fun worker(f: FileWriter) {
  f.write();
  f.close();
  return;
}

fun main() {
  var f: FileWriter = new FileWriter();
  spawn worker(f);
  return;
}`,
			want: 0,
		},
		{
			name: "transitive callee of the goroutine releases",
			src: `
type FileWriter;

fun finish(f: FileWriter) {
  f.close();
  return;
}

fun worker(f: FileWriter) {
  f.write();
  finish(f);
  return;
}

fun main() {
  var f: FileWriter = new FileWriter();
  spawn worker(f);
  return;
}`,
			want: 0,
		},
		{
			name: "resource not allocated by the spawner",
			src: `
type FileWriter;

fun worker(f: FileWriter) {
  f.write();
  return;
}

fun handoff(f: FileWriter) {
  spawn worker(f);
  return;
}

fun main() {
  var f: FileWriter = new FileWriter();
  handoff(f);
  f.close();
  return;
}`,
			want: 0,
		},
		{
			name: "untracked type is ignored",
			src: `
type Plain;

fun worker(p: Plain) {
  p.use();
  return;
}

fun main() {
  var p: Plain = new Plain();
  spawn worker(p);
  return;
}`,
			want: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := 0
			for _, c := range grCodes(lint(t, tc.src)) {
				if c == "GR001" {
					got++
				}
			}
			if got != tc.want {
				t.Errorf("GR001 count = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestSharedSyncRule(t *testing.T) {
	// worker closes the file so GR001 stays quiet and the cases isolate
	// GR002. The Lock guard comes from the builtin lock property.
	const workerAndTypes = `
type FileWriter;
type Lock;

fun worker(f: FileWriter) {
  f.close();
  return;
}
`
	cases := []struct {
		name string
		main string
		want int // expected GR002 count
	}{
		{
			name: "unguarded event on shared object",
			main: `
fun main() {
  var l: Lock = new Lock();
  var f: FileWriter = new FileWriter();
  spawn worker(f);
  f.write();
  l.lock();
  f.flush();
  l.unlock();
  return;
}`,
			want: 1,
		},
		{
			name: "dominating acquire",
			main: `
fun main() {
  var l: Lock = new Lock();
  var f: FileWriter = new FileWriter();
  spawn worker(f);
  l.lock();
  f.write();
  f.flush();
  l.unlock();
  return;
}`,
			want: 0,
		},
		{
			name: "release clears the guard",
			main: `
fun main() {
  var l: Lock = new Lock();
  var f: FileWriter = new FileWriter();
  spawn worker(f);
  l.lock();
  l.unlock();
  f.write();
  return;
}`,
			want: 1,
		},
		{
			name: "acquire on one branch only",
			main: `
fun main() {
  var l: Lock = new Lock();
  var f: FileWriter = new FileWriter();
  spawn worker(f);
  if (input() > 0) {
    l.lock();
  }
  f.write();
  return;
}`,
			want: 1,
		},
		{
			name: "acquire on both branches",
			main: `
fun main() {
  var l: Lock = new Lock();
  var f: FileWriter = new FileWriter();
  spawn worker(f);
  if (input() > 0) {
    l.lock();
  } else {
    l.lock();
  }
  f.write();
  l.unlock();
  return;
}`,
			want: 0,
		},
		{
			name: "no guard in scope",
			main: `
fun main() {
  var f: FileWriter = new FileWriter();
  spawn worker(f);
  f.write();
  return;
}`,
			want: 0,
		},
		{
			name: "event on unshared object",
			main: `
fun main() {
  var l: Lock = new Lock();
  var f: FileWriter = new FileWriter();
  var g: FileWriter = new FileWriter();
  spawn worker(f);
  g.write();
  g.close();
  return;
}`,
			want: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := 0
			for _, c := range grCodes(lint(t, workerAndTypes+tc.main)) {
				if c == "GR002" {
					got++
				}
			}
			if got != tc.want {
				t.Errorf("GR002 count = %d, want %d", got, tc.want)
			}
		})
	}
}

// TestSharedSyncFirstEventOnly pins the one-finding-per-receiver dedupe: two
// unguarded events on the same shared object produce a single GR002 at the
// earliest position.
func TestSharedSyncFirstEventOnly(t *testing.T) {
	diags := lint(t, `
type FileWriter;
type Lock;

fun worker(f: FileWriter) {
  f.close();
  return;
}

fun main() {
  var l: Lock = new Lock();
  var f: FileWriter = new FileWriter();
  spawn worker(f);
  f.write();
  f.flush();
  l.lock();
  l.unlock();
  return;
}`)
	var gr []Diagnostic
	for _, d := range diags {
		if d.Code == "GR002" {
			gr = append(gr, d)
		}
	}
	if len(gr) != 1 {
		t.Fatalf("GR002 diagnostics = %d, want 1 (%v)", len(gr), gr)
	}
	if !strings.Contains(gr[0].Message, `"write"`) {
		t.Errorf("finding should name the earliest event (write): %q", gr[0].Message)
	}
}

// TestConcurrencyRulesInertWithoutSpawn is the ablation guarantee: on
// spawn-free input the GR rules add nothing, so pre-concurrency programs
// report byte-identically.
func TestConcurrencyRulesInertWithoutSpawn(t *testing.T) {
	diags := lint(t, `
type FileWriter;
type Lock;

fun main() {
  var l: Lock = new Lock();
  var f: FileWriter = new FileWriter();
  f.write();
  f.close();
  l.lock();
  l.unlock();
  return;
}`)
	if got := grCodes(diags); len(got) != 0 {
		t.Fatalf("GR codes on spawn-free input: %v", got)
	}
}
