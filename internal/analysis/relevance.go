// Property-relevance slicing: given the solved points-to relation and the
// set of object types an FSM property tracks, compute which functions and
// which branch sites can possibly matter to the property's verdict. The
// CFET builder skips everything else before symbolic execution enumerates
// a single path (docs/slicing.md gives the full soundness argument).
//
// The two facts computed are:
//
//   - KeepFunc(f): f can transitively reach a statement that touches a
//     tracked object (allocation, event, field traffic, call/return flow,
//     throw of a tracked exception), or a kept caller observes f's integer
//     return value (the value may feed a path condition, so f's leaf
//     structure must survive for the constraint encoding).
//
//   - InertBranch(s): both arms of If s contain only statements whose
//     removal cannot change any tracked object's event sequences or the
//     satisfiability of any kept path's condition: no scalar writes (those
//     feed later conditions), no tracked allocations/events/flow, no calls
//     into kept functions, no returns or throw exits (control structure).
//     Skipping such a branch keeps one unsplit path through statements that
//     cannot be observed, because for a total condition c and any suffix
//     constraint R, sat(R ∧ c) ∨ sat(R ∧ ¬c) ⟺ sat(R).
package analysis

import (
	"github.com/grapple-system/grapple/internal/callgraph"
	"github.com/grapple-system/grapple/internal/ir"
)

// Relevance is the slicer's answer for one (program, tracked-type set).
type Relevance struct {
	keep  map[string]bool
	inert map[*ir.If]bool
	// TrackedSites is how many allocation sites have a tracked type.
	TrackedSites int
}

// KeepFunc reports whether the CFET builder must encode fn.
func (r *Relevance) KeepFunc(fn string) bool { return r.keep[fn] }

// InertBranch reports whether both arms of s are property-irrelevant and
// the branch can be skipped without splitting the path.
func (r *Relevance) InertBranch(s *ir.If) bool { return r.inert[s] }

// SlicedFunctions counts the functions relevance dropped.
func (r *Relevance) SlicedFunctions(p *ir.Program) int {
	n := 0
	for _, fn := range p.Funs {
		if !r.keep[fn.Name] {
			n++
		}
	}
	return n
}

// ComputeRelevance runs the slicer. trackedTypes is the union of the
// checked FSMs' object types (plus any Bind'd types); an empty set keeps
// everything (slicing disabled is expressed by not calling this at all).
func ComputeRelevance(p *ir.Program, cg *callgraph.Graph, pts *PointsToResult, trackedTypes map[string]bool) *Relevance {
	r := &Relevance{keep: map[string]bool{}, inert: map[*ir.If]bool{}}

	trackedSites := map[int32]bool{}
	for site, typ := range p.AllocSiteType {
		if trackedTypes[typ] {
			trackedSites[int32(site)] = true
		}
	}
	r.TrackedSites = len(trackedSites)
	if len(trackedSites) == 0 {
		// Nothing of the tracked types is ever allocated: no statement can
		// generate a property event on a live object, but the roots must
		// still exist for the pipeline. Keep only the call-graph roots as
		// stubs.
		for _, root := range cg.Roots() {
			r.keep[root] = true
		}
		markAllInert(p, r)
		return r
	}

	tracked := func(fn, v string) bool {
		return v != "" && pts.pointsIntoSet(fn, v, trackedSites)
	}

	// relevantStmt: the statement itself touches a tracked object.
	relevantStmt := func(fn string, st ir.Stmt) bool {
		switch st := st.(type) {
		case *ir.NewObj:
			return trackedSites[st.Site] || tracked(fn, st.Dst)
		case *ir.ObjAssign:
			return tracked(fn, st.Dst) || tracked(fn, st.Src)
		case *ir.Store:
			return tracked(fn, st.Recv) || tracked(fn, st.Src)
		case *ir.Load:
			return tracked(fn, st.Recv) || tracked(fn, st.Dst)
		case *ir.Event:
			return tracked(fn, st.Recv)
		case *ir.Call:
			for _, a := range st.ObjArgs {
				if tracked(fn, a.Arg) {
					return true
				}
			}
			return st.DstIsObject && tracked(fn, st.Dst)
		case *ir.Return:
			return st.SrcIsObject && tracked(fn, st.Src.Var)
		case *ir.CatchBind:
			return tracked(fn, st.Var)
		case *ir.ThrowExit:
			return tracked(fn, ir.ExcVar)
		}
		return false
	}

	// Base relevance: functions containing a tracked-touching statement.
	base := map[string]bool{}
	for _, fn := range p.Funs {
		name := fn.Name
		eachStmt(fn.Body, func(st ir.Stmt) {
			if !base[name] && relevantStmt(name, st) {
				base[name] = true
			}
		})
	}

	// Keep closure 1: reverse call-graph reachability — every (transitive)
	// caller of a base-relevant function stays, since its call/branch
	// structure scopes the callee's events.
	work := make([]string, 0, len(base))
	for name := range base {
		work = append(work, name)
	}
	for len(work) > 0 {
		name := work[len(work)-1]
		work = work[:len(work)-1]
		if r.keep[name] {
			continue
		}
		r.keep[name] = true
		work = append(work, cg.Callers[name]...)
	}
	// Roots always survive (the context tree grows from them).
	for _, root := range cg.Roots() {
		r.keep[root] = true
	}

	// Keep closure 2: a kept function observing a dropped callee's integer
	// return needs that callee's summary equation, so the callee's CFET
	// must exist. Iterate to fixpoint (the newly kept callee may itself
	// observe further integer returns).
	for changed := true; changed; {
		changed = false
		for _, fn := range p.Funs {
			if !r.keep[fn.Name] {
				continue
			}
			eachStmt(fn.Body, func(st ir.Stmt) {
				c, ok := st.(*ir.Call)
				if ok && c.Dst != "" && !c.DstIsObject && !r.keep[c.Callee] {
					r.keep[c.Callee] = true
					changed = true
				}
			})
		}
	}

	// Branch inertness within kept functions.
	var inertStmt func(fn string, st ir.Stmt) bool
	inertStmt = func(fn string, st ir.Stmt) bool {
		switch st := st.(type) {
		case *ir.NewObj, *ir.ObjAssign, *ir.Store, *ir.Load:
			return !relevantStmt(fn, st)
		case *ir.Event:
			// An event binding a scalar result participates in later path
			// conditions even on an untracked receiver.
			return st.Dst == "" && !relevantStmt(fn, st)
		case *ir.Call:
			return st.Dst == "" && !r.keep[st.Callee] && !relevantStmt(fn, st)
		case *ir.If:
			return allInert(fn, st.Then, inertStmt) && allInert(fn, st.Else, inertStmt)
		}
		// Scalar writes feed later conditions; Return/ThrowExit/CatchBind
		// shape control flow and exception paths. Never inert.
		return false
	}
	for _, fn := range p.Funs {
		if !r.keep[fn.Name] {
			continue
		}
		name := fn.Name
		eachStmt(fn.Body, func(st ir.Stmt) {
			if s, ok := st.(*ir.If); ok && inertStmt(name, s) {
				r.inert[s] = true
			}
		})
	}
	return r
}

func allInert(fn string, b *ir.Block, inertStmt func(string, ir.Stmt) bool) bool {
	for _, st := range b.Stmts {
		if !inertStmt(fn, st) {
			return false
		}
	}
	return true
}

// markAllInert marks every branch of every kept function inert — used when
// no tracked object exists at all, so no branch can matter.
func markAllInert(p *ir.Program, r *Relevance) {
	for _, fn := range p.Funs {
		if !r.keep[fn.Name] {
			continue
		}
		eachStmt(fn.Body, func(st ir.Stmt) {
			if s, ok := st.(*ir.If); ok {
				r.inert[s] = true
			}
		})
	}
}
