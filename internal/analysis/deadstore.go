package analysis

import (
	"strings"

	"github.com/grapple-system/grapple/internal/ir"
	"github.com/grapple-system/grapple/internal/lang"
)

// DeadStoreFacts is the dead-store result for one function.
type DeadStoreFacts struct {
	// Stmts holds every scalar assignment (IntAssign/BoolAssign) whose value
	// is provably never read, keyed by statement identity. Only sites where
	// every lowered copy is dead appear here (see the suppression rule below).
	Stmts map[ir.Stmt]bool
}

// DeadStore runs backward liveness over scalars and reports DS001 for
// assignments whose value no later statement can read.
//
// Loop unrolling and short-circuit desugaring clone statements, so one source
// assignment may have several lowered copies — and the deepest unrolled copy
// of a loop-carried update (i = i + 1) is always "dead" even though the
// source statement is not. A site is therefore reported only when every
// lowered copy sharing its (position, destination) is dead.
var DeadStore = &Analyzer{
	Name: "deadstore",
	Doc:  "backward liveness on scalars; reports stores never read (DS001)",
	Run:  runDeadStore,
}

// storeKey identifies a source-level scalar assignment site.
type storeKey struct {
	pos lang.Pos
	dst string
}

func runDeadStore(p *Pass) (any, error) {
	cfg := p.CFG
	n := len(cfg.Blocks)

	// Backward may-liveness in reverse RPO: every successor's liveIn is
	// final before its predecessors run, so one sweep converges on the
	// acyclic CFG and dead stores can be recorded in the same sweep.
	order := cfg.RPO()
	liveIn := make([]map[string]bool, n)
	total := map[storeKey]int{}
	dead := map[storeKey][]ir.Stmt{}
	for oi := len(order) - 1; oi >= 0; oi-- {
		bi := order[oi]
		b := cfg.Blocks[bi]
		live := map[string]bool{}
		for _, si := range b.Succs {
			for v := range liveIn[si] {
				live[v] = true
			}
		}
		if b.Branch != nil {
			for _, u := range ir.CondUses(b.Branch.Cond) {
				live[u] = true
			}
		}
		for i := len(b.Stmts) - 1; i >= 0; i-- {
			s := b.Stmts[i]
			recordDeadStore(s, live, total, dead)
			for _, d := range ir.Defs(s) {
				delete(live, d)
			}
			for _, u := range ir.Uses(s) {
				live[u] = true
			}
		}
		liveIn[bi] = live
	}

	facts := &DeadStoreFacts{Stmts: map[ir.Stmt]bool{}}
	for key, stmts := range dead {
		if len(stmts) != total[key] {
			continue // some lowered copy of this site is live — unroll artifact
		}
		for _, s := range stmts {
			facts.Stmts[s] = true
		}
		p.Reportf("DS001", key.pos, "value assigned to %q is never read", key.dst)
	}
	return facts, nil
}

// recordDeadStore tallies scalar assignment sites and which copies are dead.
// Only IntAssign/BoolAssign to user variables count: object assignments feed
// the alias analysis, and compiler temporaries are not user defects.
func recordDeadStore(s ir.Stmt, live map[string]bool, total map[storeKey]int, dead map[storeKey][]ir.Stmt) {
	var dst string
	switch s := s.(type) {
	case *ir.IntAssign:
		dst = s.Dst
	case *ir.BoolAssign:
		dst = s.Dst
	default:
		return
	}
	if strings.HasPrefix(dst, "$") {
		return
	}
	key := storeKey{pos: ir.StmtPos(s), dst: dst}
	total[key]++
	if !live[dst] {
		dead[key] = append(dead[key], s)
	}
}

// EliminateDeadStores removes every all-copies-dead scalar store found by the
// DeadStore pass from the program, in place, and returns how many statements
// it dropped. Removal is sound for the checker: dead scalar stores carry no
// events, allocations, or object flow.
func EliminateDeadStores(prog *ir.Program) (int, error) {
	res, err := Run(prog, []*Analyzer{DeadStore})
	if err != nil {
		return 0, err
	}
	removed := 0
	for fn, f := range res.FactsOf(DeadStore) {
		df, ok := f.(*DeadStoreFacts)
		if !ok || len(df.Stmts) == 0 {
			continue
		}
		removed += pruneStmts(fn.Body, df.Stmts)
	}
	return removed, nil
}

func pruneStmts(b *ir.Block, doomed map[ir.Stmt]bool) int {
	removed := 0
	kept := b.Stmts[:0]
	for _, s := range b.Stmts {
		if doomed[s] {
			removed++
			continue
		}
		if iff, ok := s.(*ir.If); ok {
			removed += pruneStmts(iff.Then, doomed)
			removed += pruneStmts(iff.Else, doomed)
		}
		kept = append(kept, s)
	}
	b.Stmts = kept
	return removed
}
