package analysis

import (
	"fmt"
	"sort"
	"testing"

	"github.com/grapple-system/grapple/internal/callgraph"
	"github.com/grapple-system/grapple/internal/ir"
	"github.com/grapple-system/grapple/internal/lang"
)

// FuzzPointsTo checks two solver invariants on arbitrary (parseable)
// MiniLang programs: the worklist terminates well inside its theoretical
// bound, and the derived summaries are idempotent — solving the same
// program twice yields byte-identical summaries.
func FuzzPointsTo(f *testing.F) {
	f.Add(`
type Obj;
fun make(flag: int): Obj {
  var o: Obj = null;
  if (flag > 0) {
    o = new Obj();
  }
  return o;
}
fun main() {
  var a: Obj = make(input());
  a.use();
  return;
}`)
	f.Add(`
type A;
type B;
fun swap(x: A, y: B): A {
  var box: B = new B();
  box.l = x;
  var z: A = box.l;
  return z;
}
fun main() {
  var p: A = new A();
  var q: B = new B();
  var r: A = swap(p, q);
  r.ev();
  return;
}`)
	f.Add(`
type R;
fun ping(n: int): int {
  if (n > 0) {
    return pong(n - 1);
  }
  return 0;
}
fun pong(n: int): int {
  return ping(n);
}
fun main() {
  var r: R = new R();
  if (ping(input()) > 2) {
    r.close();
  }
  return;
}`)
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := lang.Parse(src)
		if err != nil {
			return
		}
		info, err := lang.Resolve(prog)
		if err != nil {
			return
		}
		p, err := ir.Lower(info, ir.Options{})
		if err != nil {
			return
		}
		cg := callgraph.Build(p)
		r1 := SolvePointsTo(p, cg)

		// Termination bound: each worklist pop follows an enqueue, and a
		// cell is enqueued only when seeded or grown — at most once per
		// (cell, site) pair plus once per constraint-edge re-queue. Cells
		// and sites are both bounded by the statement count, so a generous
		// quadratic-ish bound catches runaway propagation.
		nStmt := 0
		for _, fn := range p.Funs {
			eachStmt(fn.Body, func(ir.Stmt) { nStmt++ })
		}
		cells := 4*nStmt + 4*len(p.Funs) + 16
		sites := len(p.AllocSiteType) + 2
		bound := cells * sites * 4
		if it := r1.Iterations(); it > bound {
			t.Fatalf("solver took %d iterations, bound %d (stmts=%d sites=%d)",
				it, bound, nStmt, len(p.AllocSiteType))
		}

		// Summary idempotence across independent solves.
		r2 := SolvePointsTo(p, cg)
		if a, b := renderSummaries(p, r1), renderSummaries(p, r2); a != b {
			t.Fatalf("summaries differ across solves:\n--- first\n%s\n--- second\n%s", a, b)
		}
	})
}

func renderSummaries(p *ir.Program, pts *PointsToResult) string {
	sums := BuildSummaries(p, pts)
	names := make([]string, 0, len(sums.ByName))
	for name := range sums.ByName {
		names = append(names, name)
	}
	sort.Strings(names)
	out := ""
	for _, name := range names {
		s := sums.ByName[name]
		out += fmt.Sprintf("%s null=%v fresh=%v throws=%v ret=%v types=%v\n",
			name, s.MayReturnNull, s.FreshReturn, s.MayThrow,
			s.ReturnSites, sums.ReturnedTypes(name))
	}
	return out
}
