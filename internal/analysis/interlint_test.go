package analysis

import (
	"fmt"
	"strings"
	"testing"

	"github.com/grapple-system/grapple/internal/callgraph"
	"github.com/grapple-system/grapple/internal/ir"
)

// solve lowers src and runs the points-to pass over its call graph.
func solve(t *testing.T, src string) (*ir.Program, *PointsToResult) {
	t.Helper()
	p := lower(t, src)
	return p, SolvePointsTo(p, callgraph.Build(p))
}

// siteOfType returns the single allocation site with the given type.
func siteOfType(t *testing.T, p *ir.Program, typ string) int32 {
	t.Helper()
	found := int32(-1)
	for site, st := range p.AllocSiteType {
		if st == typ {
			if found >= 0 {
				t.Fatalf("multiple %s sites", typ)
			}
			found = int32(site)
		}
	}
	if found < 0 {
		t.Fatalf("no %s site", typ)
	}
	return found
}

func TestPointsToInterprocedural(t *testing.T) {
	p, pts := solve(t, `
type Obj;
type Box;

fun make(flag: int): Obj {
  var o: Obj = null;
  if (flag > 0) {
    o = new Obj();
  }
  return o;
}

fun pass(q: Obj): Obj {
  return q;
}

fun main() {
  var a: Obj = make(input());
  var b: Obj = pass(a);
  var box: Box = new Box();
  box.fld = b;
  var d: Obj = box.fld;
  d.use();
  return;
}`)
	obj := siteOfType(t, p, "Obj")
	box := siteOfType(t, p, "Box")

	if !pts.MayReturnNull("make") {
		t.Error("make must may-return-null")
	}
	if got := pts.ReturnSites("make"); len(got) != 1 || got[0] != obj {
		t.Errorf("make return sites = %v, want [%d]", got, obj)
	}
	// The site and the null flow through the call into a, through pass into
	// b, through the field store/load into d.
	for _, v := range []string{"a", "b", "d"} {
		if got := pts.VarPointsTo("main", v); len(got) != 2 || got[0] != NullSite || got[1] != obj {
			t.Errorf("main.%s points to %v, want [-1 %d]", v, got, obj)
		}
		if !pts.MayBeNull("main", v) {
			t.Errorf("main.%s must be possibly-null", v)
		}
	}
	if !pts.MayReturnNull("pass") {
		t.Error("pass forwards a possibly-null argument")
	}
	if got := pts.FieldPointsTo(box, "fld"); len(got) != 2 || got[1] != obj {
		t.Errorf("Box.fld points to %v, want [-1 %d]", got, obj)
	}
	if got := pts.VarPointsTo("main", "box"); len(got) != 1 || got[0] != box {
		t.Errorf("main.box points to %v, want [%d]", got, box)
	}
}

func TestSummariesFreshReturn(t *testing.T) {
	p, pts := solve(t, `
type Res;
type Box;

fun fresh(): Res {
  var r: Res = new Res();
  return r;
}

fun ident(q: Res): Res {
  return q;
}

fun register(r: Res) {
  r.use();
  return;
}

fun freshButPassed(): Res {
  var r: Res = new Res();
  register(r);
  return r;
}

fun freshButStored(box: Box): Res {
  var r: Res = new Res();
  box.keep = r;
  return r;
}

fun main() {
  var a: Res = fresh();
  var b: Res = ident(a);
  var c: Res = freshButPassed();
  var box: Box = new Box();
  var d: Res = freshButStored(box);
  a.use(); b.use(); c.use(); d.use();
  return;
}`)
	sums := BuildSummaries(p, pts)
	cases := []struct {
		fn    string
		fresh bool
	}{
		{"fresh", true},
		{"ident", false},          // returns its caller's object
		{"freshButPassed", false}, // object escapes through register's formal
		{"freshButStored", false}, // object escapes into a field
	}
	for _, c := range cases {
		sum := sums.ByName[c.fn]
		if sum == nil {
			t.Fatalf("no summary for %s", c.fn)
		}
		if sum.FreshReturn != c.fresh {
			t.Errorf("%s: FreshReturn = %v, want %v", c.fn, sum.FreshReturn, c.fresh)
		}
		if len(sum.ReturnSites) == 0 {
			t.Errorf("%s: expected concrete return sites", c.fn)
		}
	}
	if got := sums.ReturnedTypes("fresh"); len(got) != 1 || got[0] != "Res" {
		t.Errorf("ReturnedTypes(fresh) = %v, want [Res]", got)
	}
	if sums.ByName["main"].MayReturnNull {
		t.Error("main never returns null")
	}
}

func TestNilDerefRule(t *testing.T) {
	p := lower(t, `
type W;

fun may(n: int): W {
  var w: W = null;
  if (n > 0) {
    w = new W();
  }
  return w;
}

fun never(): W {
  var w: W = new W();
  return w;
}

fun bad() {
  var a: W = may(input());
  a.use();
  return;
}

fun guarded() {
  var b: W = may(input());
  var n: int = input();
  if (n > 0) {
    b.use();
  }
  return;
}

fun redefined() {
  var c: W = may(input());
  c = never();
  c.use();
  return;
}

fun clean() {
  var d: W = never();
  d.use();
  return;
}

fun main() {
  bad(); guarded(); redefined(); clean();
  return;
}`)
	res, err := Run(p, []*Analyzer{NilDeref})
	if err != nil {
		t.Fatalf("analysis: %v", err)
	}
	if got := codes(res.Diagnostics); !eqCodes(got, []string{"ND001"}) {
		t.Fatalf("codes = %v, want exactly one ND001 (in bad)", got)
	}
	d := res.Diagnostics[0]
	if d.Func != "bad" || !strings.Contains(d.Message, "may") {
		t.Fatalf("ND001 in %q (%s), want the unchecked deref in bad", d.Func, d.Message)
	}
}

func TestLeakCallRule(t *testing.T) {
	p := lower(t, `
type FileWriter;

fun open(): FileWriter {
  var w: FileWriter = new FileWriter();
  return w;
}

fun leak() {
  var a: FileWriter = open();
  var n: int = input();
  if (n > 0) {
    a.close();
  }
  return;
}

fun balanced() {
  var b: FileWriter = open();
  b.write();
  b.close();
  return;
}

fun redef() {
  var c: FileWriter = open();
  c = open();
  c.close();
  return;
}

fun handoff(): FileWriter {
  var d: FileWriter = open();
  return d;
}

fun main() {
  leak(); balanced(); redef();
  var h: FileWriter = handoff();
  h.close();
  return;
}`)
	res, err := Run(p, []*Analyzer{LeakCall})
	if err != nil {
		t.Fatalf("analysis: %v", err)
	}
	byFunc := map[string]int{}
	for _, d := range res.Diagnostics {
		if d.Code != "LK001" {
			t.Fatalf("unexpected code %s", d.Code)
		}
		byFunc[d.Func]++
	}
	// leak: close on one branch only. redef: the first handle is dropped by
	// the reassignment. balanced is clean; handoff's result escapes by
	// return (and handoff itself is not fresh-returning to main, since the
	// site belongs to open).
	want := map[string]int{"leak": 1, "redef": 1}
	if fmt.Sprint(byFunc) != fmt.Sprint(want) {
		t.Fatalf("LK001 by function = %v, want %v", byFunc, want)
	}
}

func TestDeadParamRule(t *testing.T) {
	p := lower(t, `
type Box;

fun make(): Box {
  var b: Box = new Box();
  return b;
}

fun calc(a: int, extra: int): int {
  return a + 1;
}

fun main() {
  var x: int = calc(input(), 4);
  make();
  var y: Box = make();
  y.put();
  calc(x, x);
  return;
}`)
	res, err := Run(p, []*Analyzer{DeadParam})
	if err != nil {
		t.Fatalf("analysis: %v", err)
	}
	if got := codes(res.Diagnostics); !eqCodes(got, []string{"DP001", "DP001"}) {
		t.Fatalf("codes = %v, want [DP001 DP001]", got)
	}
	var msgs []string
	for _, d := range res.Diagnostics {
		msgs = append(msgs, d.Message)
	}
	joined := strings.Join(msgs, "\n")
	if !strings.Contains(joined, `parameter "extra"`) {
		t.Errorf("missing dead-parameter report for extra:\n%s", joined)
	}
	if !strings.Contains(joined, "result of make") {
		t.Errorf("missing ignored-object-result report for make():\n%s", joined)
	}
	// The discarded int result of calc(x, x) must stay silent.
	if strings.Contains(joined, "result of calc") {
		t.Errorf("ignored int result must not be flagged:\n%s", joined)
	}
}

func TestComputeRelevance(t *testing.T) {
	src := `
type T;
type U;

fun useT(o: T) {
  o.ev();
  return;
}

fun makeU(): U {
  var u: U = new U();
  return u;
}

fun uOnly(n: int) {
  var u: U = makeU();
  u.ping();
  if (n > 0) {
    u.ping();
  }
  return;
}

fun tPath(n: int) {
  var t: T = new T();
  useT(t);
  if (n > 2) {
    var u2: U = new U();
    u2.ping();
  }
  if (n > 5) {
    var m: int = n + 1;
    uOnly(m);
  }
  return;
}

fun main() {
  var n: int = input();
  tPath(n);
  uOnly(n);
  return;
}`
	p, pts := solve(t, src)
	cg := callgraph.Build(p)
	rel := ComputeRelevance(p, cg, pts, map[string]bool{"T": true})

	if rel.TrackedSites != 1 {
		t.Fatalf("TrackedSites = %d, want 1 (the new T in tPath)", rel.TrackedSites)
	}
	for _, fn := range []string{"useT", "tPath", "main"} {
		if !rel.KeepFunc(fn) {
			t.Errorf("%s must be kept", fn)
		}
	}
	for _, fn := range []string{"uOnly", "makeU"} {
		if rel.KeepFunc(fn) {
			t.Errorf("%s must be sliced away", fn)
		}
	}
	if got := rel.SlicedFunctions(p); got != 2 {
		t.Errorf("SlicedFunctions = %d, want 2", got)
	}

	// Branch inertness inside tPath: the U-touching branch is inert, the
	// scalar-writing branch is not.
	var ifs []*ir.If
	eachStmt(p.FunByName["tPath"].Body, func(st ir.Stmt) {
		if s, ok := st.(*ir.If); ok {
			ifs = append(ifs, s)
		}
	})
	if len(ifs) != 2 {
		t.Fatalf("tPath has %d ifs, want 2", len(ifs))
	}
	if !rel.InertBranch(ifs[0]) {
		t.Error("the untracked-allocation branch must be inert")
	}
	if rel.InertBranch(ifs[1]) {
		t.Error("the scalar-writing branch must not be inert")
	}

	// Zero tracked sites: only roots survive, every kept branch is inert.
	empty := ComputeRelevance(p, cg, pts, map[string]bool{"Missing": true})
	if empty.TrackedSites != 0 {
		t.Fatalf("TrackedSites = %d, want 0", empty.TrackedSites)
	}
	if !empty.KeepFunc("main") {
		t.Error("roots must survive even with no tracked sites")
	}
	if empty.KeepFunc("tPath") || empty.KeepFunc("useT") {
		t.Error("non-roots must be sliced when nothing is tracked")
	}
}

func TestComputeRelevanceIntReturnKeep(t *testing.T) {
	// decide has no tracked statement, but a kept caller binds its integer
	// return — the value can feed a path condition, so decide must survive.
	p, pts := solve(t, `
type T;

fun decide(n: int): int {
  return n * 2;
}

fun main() {
  var n: int = input();
  var k: int = decide(n);
  var t: T = new T();
  if (k > 3) {
    t.ev();
  }
  return;
}`)
	cg := callgraph.Build(p)
	rel := ComputeRelevance(p, cg, pts, map[string]bool{"T": true})
	if !rel.KeepFunc("decide") {
		t.Error("decide's integer return feeds a kept path condition; it must be kept")
	}
}

// TestRunValidateReportsAllProblems is the regression test for the pass
// manager reporting every configuration problem at once instead of stopping
// at the first (companion to TestRunDependencyOrderAndMissingDep).
func TestRunValidateReportsAllProblems(t *testing.T) {
	progBad := &Analyzer{
		Name:       "progbad",
		ProgramRun: func(p *Pass) (any, error) { return nil, nil },
		Requires:   []*Analyzer{ReachDef},
	}
	neither := &Analyzer{Name: "neither"}
	nilReq := &Analyzer{
		Name:     "nilreq",
		Run:      func(p *Pass) (any, error) { return nil, nil },
		Requires: []*Analyzer{nil},
	}
	p := lower(t, `
fun main() {
  return;
}`)
	_, err := Run(p, []*Analyzer{progBad, neither, nilReq})
	if err == nil {
		t.Fatal("Run must reject the invalid analyzer list")
	}
	for _, want := range []string{
		"program-scoped progbad requires per-function reachdef",
		"neither must set exactly one of Run and ProgramRun",
		"nilreq requires a nil analyzer",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error does not mention %q:\n%v", want, err)
		}
	}
}
