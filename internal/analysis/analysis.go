// Package analysis is Grapple's IR-level pre-analysis subsystem: a
// pass-manager framework running cheap classical dataflow analyses over the
// lowered IR (internal/ir) before the expensive CFET/closure pipeline.
//
// It serves two consumers. `grapple lint` surfaces the passes' diagnostics
// (use-before-init, dead stores, constant conditions, unused allocations)
// directly to developers. The checker consumes the constant-propagation
// facts to skip statically-infeasible CFET subtrees before symbolic
// execution ever enumerates them — the classical "fast pass in front of the
// precise phase" layering of production typestate checkers.
//
// Analyses run per function over a shared ir.CFG; results flow between
// passes through the Pass.ResultOf dependency mechanism (the design follows
// golang.org/x/tools/go/analysis, shrunk to this IR).
package analysis

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/grapple-system/grapple/internal/callgraph"
	"github.com/grapple-system/grapple/internal/ir"
	"github.com/grapple-system/grapple/internal/lang"
	"github.com/grapple-system/grapple/internal/metrics"
)

// Diagnostic is one lint finding.
type Diagnostic struct {
	// Pass is the reporting analyzer's name.
	Pass string
	// Code is the stable diagnostic code (e.g. "RD001"); see docs/lint.md.
	Code string
	// Pos is the source position of the finding.
	Pos lang.Pos
	// Func is the enclosing function.
	Func string
	// Message is the human-readable description.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s (%s, in %s)", d.Pos, d.Code, d.Message, d.Pass, d.Func)
}

// Analyzer is one analysis pass: a name, the passes it depends on, and a
// per-function Run that may report diagnostics and return a result value
// for dependents.
type Analyzer struct {
	// Name identifies the pass (also the metrics key).
	Name string
	// Doc is a one-line description.
	Doc string
	// Requires lists analyzers whose per-function results this pass reads
	// via Pass.ResultOf. The manager runs them first.
	Requires []*Analyzer
	// Run executes the pass on one function. Exactly one of Run and
	// ProgramRun must be set.
	Run func(p *Pass) (any, error)
	// ProgramRun executes the pass once for the whole program, before any
	// per-function pass. Pass.Fn and Pass.CFG are nil; Pass.CG carries the
	// call graph. A program-scoped analyzer may only require other
	// program-scoped analyzers, and its single result is what dependents see
	// through ResultOf in every function.
	ProgramRun func(p *Pass) (any, error)
}

func (a *Analyzer) programScoped() bool { return a.ProgramRun != nil }

// Pass carries one analyzer invocation's inputs and sinks.
type Pass struct {
	Analyzer *Analyzer
	// Prog is the whole lowered program; Fn the function under analysis
	// (nil during a ProgramRun).
	Prog *ir.Program
	Fn   *ir.Func
	// CFG is Fn's control-flow graph, built once and shared by all passes
	// (nil during a ProgramRun).
	CFG *ir.CFG
	// CG is the program's call graph; set for ProgramRun invocations, built
	// once per Run when any program-scoped analyzer participates.
	CG *callgraph.Graph

	deps  map[*Analyzer]any
	diags *[]Diagnostic
}

// ResultOf returns the result of a required analyzer for this function.
// It panics when a is not in Analyzer.Requires (a bug in the pass).
func (p *Pass) ResultOf(a *Analyzer) any {
	r, ok := p.deps[a]
	if !ok {
		panic(fmt.Sprintf("analysis: %s did not declare a dependency on %s", p.Analyzer.Name, a.Name))
	}
	return r
}

// Reportf records a diagnostic against this pass.
func (p *Pass) Reportf(code string, pos lang.Pos, format string, args ...any) {
	fn := ""
	if p.Fn != nil {
		fn = p.Fn.Name
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pass: p.Analyzer.Name, Code: code, Pos: pos, Func: fn,
		Message: fmt.Sprintf(format, args...),
	})
}

// Result is the outcome of running a set of analyzers over a program.
type Result struct {
	// Diagnostics holds every finding, ordered by position then code.
	Diagnostics []Diagnostic
	// Passes is the per-pass cost breakdown.
	Passes *metrics.PassBreakdown
	// Prune counts statically-decided conditions (the checker fills in the
	// pruned-branch side after CFET construction).
	Prune metrics.PruneCounters

	// facts maps analyzer -> function -> that pass's result.
	facts map[*Analyzer]map[*ir.Func]any
	// progFacts maps a program-scoped analyzer to its single result.
	progFacts map[*Analyzer]any
}

// FactsOf returns an analyzer's per-function results ("" when it did not
// run). Consumers outside the pass pipeline (the checker) use this.
func (r *Result) FactsOf(a *Analyzer) map[*ir.Func]any {
	return r.facts[a]
}

// ProgramFactsOf returns a program-scoped analyzer's single result (nil
// when it did not run).
func (r *Result) ProgramFactsOf(a *Analyzer) any {
	return r.progFacts[a]
}

// BranchVerdict reports the statically-proven verdict for an If condition
// discovered by the SCCP pass: +1 the condition always holds, -1 it never
// holds, 0 unknown. The zero Result (no SCCP run) answers 0 everywhere.
func (r *Result) BranchVerdict(s *ir.If) int {
	for _, facts := range r.facts[SCCP] {
		sf, ok := facts.(*SCCPFacts)
		if !ok {
			continue
		}
		if v, ok := sf.Verdicts[s]; ok {
			return v
		}
	}
	return 0
}

// Default returns every analyzer in dependency-safe order: the lint suite
// the `grapple lint` command runs. The interprocedural passes (backed by
// the whole-program points-to solution) come after the classical
// intraprocedural ones.
func Default() []*Analyzer {
	return []*Analyzer{ReachDef, DeadStore, SCCP, Unreachable, UnusedAlloc,
		NilDeref, LeakCall, DeadParam, GoroutineLeak, SharedSync}
}

// PruneAnalyzers returns just the passes the checker's infeasible-branch
// pruning needs (no diagnostics-only passes).
func PruneAnalyzers() []*Analyzer {
	return []*Analyzer{SCCP}
}

// Run executes the analyzers (plus their transitive requirements) over
// every function of the program. Program-scoped analyzers (ProgramRun) go
// first, once; per-function analyzers then run over each function with
// both kinds of requirement visible through ResultOf. Invalid analyzer
// graphs are rejected up front with every problem aggregated into one
// error (not just the first), so a broken suite reads as one report.
func Run(prog *ir.Program, analyzers []*Analyzer) (*Result, error) {
	if err := validate(analyzers); err != nil {
		return nil, err
	}
	order, err := toposort(analyzers)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Passes:    &metrics.PassBreakdown{},
		facts:     map[*Analyzer]map[*ir.Func]any{},
		progFacts: map[*Analyzer]any{},
	}
	var progOrder, fnOrder []*Analyzer
	for _, a := range order {
		if a.programScoped() {
			progOrder = append(progOrder, a)
		} else {
			fnOrder = append(fnOrder, a)
			res.facts[a] = map[*ir.Func]any{}
		}
	}
	var cg *callgraph.Graph
	if len(progOrder) > 0 {
		cg = callgraph.Build(prog)
	}
	for _, a := range progOrder {
		deps := map[*Analyzer]any{}
		for _, req := range a.Requires {
			deps[req] = res.progFacts[req]
		}
		p := &Pass{
			Analyzer: a, Prog: prog, CG: cg,
			deps: deps, diags: &res.Diagnostics,
		}
		start := time.Now()
		out, err := a.ProgramRun(p)
		res.Passes.AddPass(a.Name, time.Since(start))
		if err != nil {
			return nil, fmt.Errorf("analysis %s: %w", a.Name, err)
		}
		res.progFacts[a] = out
	}
	for _, fn := range prog.Funs {
		cfg := ir.BuildCFG(fn)
		for _, a := range fnOrder {
			deps := map[*Analyzer]any{}
			for _, req := range a.Requires {
				if req.programScoped() {
					deps[req] = res.progFacts[req]
				} else {
					deps[req] = res.facts[req][fn]
				}
			}
			p := &Pass{
				Analyzer: a, Prog: prog, Fn: fn, CFG: cfg, CG: cg,
				deps: deps, diags: &res.Diagnostics,
			}
			start := time.Now()
			out, err := a.Run(p)
			res.Passes.AddPass(a.Name, time.Since(start))
			if err != nil {
				return nil, fmt.Errorf("analysis %s: %s: %w", a.Name, fn.Name, err)
			}
			res.facts[a][fn] = out
		}
	}
	for _, facts := range res.facts[SCCP] {
		if sf, ok := facts.(*SCCPFacts); ok {
			res.Prune.CondsDecided.Add(int64(len(sf.Verdicts)))
		}
	}
	sort.SliceStable(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Message < b.Message
	})
	return res, nil
}

// validate walks the transitive analyzer set and collects every structural
// problem — nil requirements, analyzers without exactly one of Run and
// ProgramRun, and program-scoped analyzers requiring per-function ones —
// into a single joined error, so a suite with several broken dependencies
// reports all of them at once.
func validate(in []*Analyzer) error {
	var problems []error
	seen := map[*Analyzer]bool{}
	var visit func(a *Analyzer, dependent string)
	visit = func(a *Analyzer, dependent string) {
		if a == nil {
			problems = append(problems,
				fmt.Errorf("analysis: %s requires a nil analyzer", dependent))
			return
		}
		if seen[a] {
			return
		}
		seen[a] = true
		if (a.Run == nil) == (a.ProgramRun == nil) {
			problems = append(problems,
				fmt.Errorf("analysis: %s must set exactly one of Run and ProgramRun", a.Name))
		}
		for _, req := range a.Requires {
			if req != nil && a.programScoped() && !req.programScoped() {
				problems = append(problems,
					fmt.Errorf("analysis: program-scoped %s requires per-function %s", a.Name, req.Name))
			}
			visit(req, a.Name)
		}
	}
	for _, a := range in {
		visit(a, "analyzer list")
	}
	return errors.Join(problems...)
}

// toposort orders analyzers so that requirements run before dependents,
// pulling in transitive requirements not listed explicitly.
func toposort(in []*Analyzer) ([]*Analyzer, error) {
	var out []*Analyzer
	state := map[*Analyzer]int{} // 0 unseen, 1 visiting, 2 done
	var visit func(a *Analyzer) error
	visit = func(a *Analyzer) error {
		switch state[a] {
		case 1:
			return fmt.Errorf("analysis: dependency cycle through %s", a.Name)
		case 2:
			return nil
		}
		state[a] = 1
		for _, req := range a.Requires {
			if err := visit(req); err != nil {
				return err
			}
		}
		state[a] = 2
		out = append(out, a)
		return nil
	}
	for _, a := range in {
		if err := visit(a); err != nil {
			return nil, err
		}
	}
	return out, nil
}
