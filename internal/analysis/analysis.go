// Package analysis is Grapple's IR-level pre-analysis subsystem: a
// pass-manager framework running cheap classical dataflow analyses over the
// lowered IR (internal/ir) before the expensive CFET/closure pipeline.
//
// It serves two consumers. `grapple lint` surfaces the passes' diagnostics
// (use-before-init, dead stores, constant conditions, unused allocations)
// directly to developers. The checker consumes the constant-propagation
// facts to skip statically-infeasible CFET subtrees before symbolic
// execution ever enumerates them — the classical "fast pass in front of the
// precise phase" layering of production typestate checkers.
//
// Analyses run per function over a shared ir.CFG; results flow between
// passes through the Pass.ResultOf dependency mechanism (the design follows
// golang.org/x/tools/go/analysis, shrunk to this IR).
package analysis

import (
	"fmt"
	"sort"
	"time"

	"github.com/grapple-system/grapple/internal/ir"
	"github.com/grapple-system/grapple/internal/lang"
	"github.com/grapple-system/grapple/internal/metrics"
)

// Diagnostic is one lint finding.
type Diagnostic struct {
	// Pass is the reporting analyzer's name.
	Pass string
	// Code is the stable diagnostic code (e.g. "RD001"); see docs/lint.md.
	Code string
	// Pos is the source position of the finding.
	Pos lang.Pos
	// Func is the enclosing function.
	Func string
	// Message is the human-readable description.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s (%s, in %s)", d.Pos, d.Code, d.Message, d.Pass, d.Func)
}

// Analyzer is one analysis pass: a name, the passes it depends on, and a
// per-function Run that may report diagnostics and return a result value
// for dependents.
type Analyzer struct {
	// Name identifies the pass (also the metrics key).
	Name string
	// Doc is a one-line description.
	Doc string
	// Requires lists analyzers whose per-function results this pass reads
	// via Pass.ResultOf. The manager runs them first.
	Requires []*Analyzer
	// Run executes the pass on one function.
	Run func(p *Pass) (any, error)
}

// Pass carries one analyzer invocation's inputs and sinks.
type Pass struct {
	Analyzer *Analyzer
	// Prog is the whole lowered program; Fn the function under analysis.
	Prog *ir.Program
	Fn   *ir.Func
	// CFG is Fn's control-flow graph, built once and shared by all passes.
	CFG *ir.CFG

	deps  map[*Analyzer]any
	diags *[]Diagnostic
}

// ResultOf returns the result of a required analyzer for this function.
// It panics when a is not in Analyzer.Requires (a bug in the pass).
func (p *Pass) ResultOf(a *Analyzer) any {
	r, ok := p.deps[a]
	if !ok {
		panic(fmt.Sprintf("analysis: %s did not declare a dependency on %s", p.Analyzer.Name, a.Name))
	}
	return r
}

// Reportf records a diagnostic against this pass.
func (p *Pass) Reportf(code string, pos lang.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pass: p.Analyzer.Name, Code: code, Pos: pos, Func: p.Fn.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Result is the outcome of running a set of analyzers over a program.
type Result struct {
	// Diagnostics holds every finding, ordered by position then code.
	Diagnostics []Diagnostic
	// Passes is the per-pass cost breakdown.
	Passes *metrics.PassBreakdown
	// Prune counts statically-decided conditions (the checker fills in the
	// pruned-branch side after CFET construction).
	Prune metrics.PruneCounters

	// facts maps analyzer -> function -> that pass's result.
	facts map[*Analyzer]map[*ir.Func]any
}

// FactsOf returns an analyzer's per-function results ("" when it did not
// run). Consumers outside the pass pipeline (the checker) use this.
func (r *Result) FactsOf(a *Analyzer) map[*ir.Func]any {
	return r.facts[a]
}

// BranchVerdict reports the statically-proven verdict for an If condition
// discovered by the SCCP pass: +1 the condition always holds, -1 it never
// holds, 0 unknown. The zero Result (no SCCP run) answers 0 everywhere.
func (r *Result) BranchVerdict(s *ir.If) int {
	for _, facts := range r.facts[SCCP] {
		sf, ok := facts.(*SCCPFacts)
		if !ok {
			continue
		}
		if v, ok := sf.Verdicts[s]; ok {
			return v
		}
	}
	return 0
}

// Default returns every analyzer in dependency-safe order: the lint suite
// the `grapple lint` command runs.
func Default() []*Analyzer {
	return []*Analyzer{ReachDef, DeadStore, SCCP, Unreachable, UnusedAlloc}
}

// PruneAnalyzers returns just the passes the checker's infeasible-branch
// pruning needs (no diagnostics-only passes).
func PruneAnalyzers() []*Analyzer {
	return []*Analyzer{SCCP}
}

// Run executes the analyzers (plus their transitive requirements) over
// every function of the program.
func Run(prog *ir.Program, analyzers []*Analyzer) (*Result, error) {
	order, err := toposort(analyzers)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Passes: &metrics.PassBreakdown{},
		facts:  map[*Analyzer]map[*ir.Func]any{},
	}
	for _, a := range order {
		res.facts[a] = map[*ir.Func]any{}
	}
	for _, fn := range prog.Funs {
		cfg := ir.BuildCFG(fn)
		for _, a := range order {
			deps := map[*Analyzer]any{}
			for _, req := range a.Requires {
				deps[req] = res.facts[req][fn]
			}
			p := &Pass{
				Analyzer: a, Prog: prog, Fn: fn, CFG: cfg,
				deps: deps, diags: &res.Diagnostics,
			}
			start := time.Now()
			out, err := a.Run(p)
			res.Passes.AddPass(a.Name, time.Since(start))
			if err != nil {
				return nil, fmt.Errorf("analysis %s: %s: %w", a.Name, fn.Name, err)
			}
			res.facts[a][fn] = out
		}
	}
	for _, facts := range res.facts[SCCP] {
		if sf, ok := facts.(*SCCPFacts); ok {
			res.Prune.CondsDecided.Add(int64(len(sf.Verdicts)))
		}
	}
	sort.SliceStable(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Message < b.Message
	})
	return res, nil
}

// toposort orders analyzers so that requirements run before dependents,
// pulling in transitive requirements not listed explicitly.
func toposort(in []*Analyzer) ([]*Analyzer, error) {
	var out []*Analyzer
	state := map[*Analyzer]int{} // 0 unseen, 1 visiting, 2 done
	var visit func(a *Analyzer) error
	visit = func(a *Analyzer) error {
		switch state[a] {
		case 1:
			return fmt.Errorf("analysis: dependency cycle through %s", a.Name)
		case 2:
			return nil
		}
		state[a] = 1
		for _, req := range a.Requires {
			if err := visit(req); err != nil {
				return err
			}
		}
		state[a] = 2
		out = append(out, a)
		return nil
	}
	for _, a := range in {
		if err := visit(a); err != nil {
			return nil, err
		}
	}
	return out, nil
}
