package analysis

import (
	"strings"
	"testing"

	"github.com/grapple-system/grapple/internal/ir"
	"github.com/grapple-system/grapple/internal/lang"
)

func lower(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := lang.Resolve(prog)
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	p, err := ir.Lower(info, ir.Options{})
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

func lint(t *testing.T, src string) []Diagnostic {
	t.Helper()
	res, err := Run(lower(t, src), Default())
	if err != nil {
		t.Fatalf("analysis: %v", err)
	}
	return res.Diagnostics
}

// codes extracts just the diagnostic codes, in report order.
func codes(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.Code)
	}
	return out
}

func TestAnalyzers(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string // expected codes in order; nil = clean
	}{
		{
			name: "clean straight line",
			src: `
fun main() {
  var x: int = input();
  var y: int = x + 2;
  if (y > 0) {
    return;
  }
  return;
}`,
		},
		{
			name: "use before init int",
			src: `
fun main() {
  var z: int = input();
  var x: int;
  var y: int = x + 1;
  if (y > z) {
    return;
  }
  return;
}`,
			want: []string{"RD001"},
		},
		{
			name: "init on one path only is not definite",
			src: `
fun main() {
  var c: int = input();
  var x: int;
  if (c > 0) {
    x = 1;
  }
  if (c > 0) {
    if (x > c) {
      return;
    }
  }
  return;
}`,
			want: nil,
		},
		{
			name: "dead store simple",
			src: `
fun main() {
  var c: int = input();
  var x: int = c + 1;
  var y: int = x + 1;
  x = 7;
  if (y > c) {
    return;
  }
  return;
}`,
			want: []string{"DS001"},
		},
		{
			name: "loop counter update is not a dead store",
			src: `
fun main() {
  var n: int = input();
  var i: int = 0;
  var acc: int = 0;
  while (i < n) {
    acc = acc + i;
    i = i + 1;
  }
  if (acc > n) {
    return;
  }
  return;
}`,
			want: nil,
		},
		{
			name: "store dead on both branch arms",
			src: `
fun main() {
  var c: int = input();
  var x: int = 0;
  if (c > 0) {
    x = 1;
  } else {
    x = 2;
  }
  x = 9;
  if (x > c) {
    return;
  }
  return;
}`,
			// x=0, x=1 and x=2 are all overwritten by x=9 before any read.
			want: []string{"DS001", "DS001", "DS001"},
		},
		{
			name: "constant condition always true",
			src: `
fun main() {
  var c: int = input();
  var x: int = 3;
  if (x > 1) {
    c = c + 1;
  }
  if (c > 0) {
    return;
  }
  return;
}`,
			want: []string{"CF001"},
		},
		{
			name: "constant condition always false",
			src: `
fun main() {
  var c: int = input();
  var x: int = 1;
  var y: int = x - 1;
  if (y > 0) {
    c = c + 5;
  }
  if (c > 0) {
    return;
  }
  return;
}`,
			want: []string{"CF002"},
		},
		{
			name: "input keeps condition undecided",
			src: `
fun main() {
  var x: int = input();
  if (x > 1) {
    x = x - 1;
  }
  if (x > 0) {
    return;
  }
  return;
}`,
			want: nil,
		},
		{
			name: "join of unequal constants loses constness",
			src: `
fun main() {
  var c: int = input();
  var x: int = 0;
  if (c > 0) {
    x = 1;
  } else {
    x = 2;
  }
  if (x > 0) {
    return;
  }
  return;
}`,
			// x>0 happens to hold on both arms but x is not one constant; the
			// must-constant lattice stays silent. x=0 is a dead store.
			want: []string{"DS001"},
		},
		{
			name: "sccp tracks through arithmetic and bools",
			src: `
fun main() {
  var c: int = input();
  var a: int = 2;
  var b: int = a * 3;
  var ok: bool = b == 6;
  if (ok) {
    c = c + b;
  }
  if (c > 0) {
    return;
  }
  return;
}`,
			want: []string{"CF001"},
		},
		{
			name: "non-constant conditions stay clean",
			src: `
fun main() {
  var x: int = input();
  var z: int = 0;
  if (x > 0) {
    z = 1;
  }
  if (z == 5) {
    if (x > 7) {
      z = 2;
    }
  }
  if (z > x) {
    return;
  }
  return;
}`,
			// z is in {0,1} at the join, so z==5 is not decided by the
			// must-constant lattice even though it can never hold.
			want: nil,
		},
		{
			name: "unused allocation",
			src: `
type FileWriter;
fun main() {
  var w: FileWriter = new FileWriter();
  var x: int = input();
  if (x > 0) {
    return;
  }
  return;
}`,
			want: []string{"UA001"},
		},
		{
			name: "allocation used via event is not reported",
			src: `
type FileWriter;
fun main() {
  var w: FileWriter = new FileWriter();
  w.close();
  return;
}`,
			want: nil,
		},
		{
			name: "allocation escaping via call is not reported",
			src: `
type FileWriter;
fun use(w: FileWriter) {
  w.close();
  return;
}
fun main() {
  var w: FileWriter = new FileWriter();
  use(w);
  return;
}`,
			want: nil,
		},
		{
			name: "allocation escaping via return is not reported",
			src: `
type FileWriter;
fun make(): FileWriter {
  var w: FileWriter = new FileWriter();
  return w;
}
fun main() {
  var w: FileWriter = make();
  w.close();
  return;
}`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := lint(t, tc.src)
			if !eqCodes(codes(got), tc.want) {
				t.Fatalf("diagnostics:\n%s\nwant codes %v", renderDiags(got), tc.want)
			}
		})
	}
}

func eqCodes(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func renderDiags(diags []Diagnostic) string {
	if len(diags) == 0 {
		return "  (none)"
	}
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString("  " + d.String() + "\n")
	}
	return sb.String()
}

func TestSCCPVerdictKeysAreIfPointers(t *testing.T) {
	p := lower(t, `
fun main() {
  var c: int = input();
  var x: int = 3;
  if (x > 1) {
    c = c + 1;
  }
  if (c > 0) {
    return;
  }
  return;
}`)
	res, err := Run(p, PruneAnalyzers())
	if err != nil {
		t.Fatalf("analysis: %v", err)
	}
	decided, _ := res.Prune.Snapshot()
	if decided != 1 {
		t.Fatalf("CondsDecided = %d, want 1", decided)
	}
	found := 0
	for _, fn := range p.Funs {
		var walk func(b *ir.Block)
		walk = func(b *ir.Block) {
			for _, s := range b.Stmts {
				if iff, ok := s.(*ir.If); ok {
					if v := res.BranchVerdict(iff); v != 0 {
						found++
						if v != 1 {
							t.Fatalf("verdict for x>1 = %d, want +1", v)
						}
					}
					walk(iff.Then)
					walk(iff.Else)
				}
			}
		}
		walk(fn.Body)
	}
	if found != 1 {
		t.Fatalf("decided If nodes found in IR walk = %d, want 1", found)
	}
}

func TestEliminateDeadStores(t *testing.T) {
	p := lower(t, `
fun main() {
  var c: int = input();
  var x: int = c + 1;
  var y: int = x + 1;
  x = 7;
  if (y > c) {
    return;
  }
  return;
}`)
	removed, err := EliminateDeadStores(p)
	if err != nil {
		t.Fatalf("eliminate: %v", err)
	}
	if removed != 1 {
		t.Fatalf("removed = %d, want 1 (the x=7 store)", removed)
	}
	// After elimination the program must lint clean.
	res, err := Run(p, Default())
	if err != nil {
		t.Fatalf("analysis: %v", err)
	}
	if len(res.Diagnostics) != 0 {
		t.Fatalf("post-elimination diagnostics:\n%s", renderDiags(res.Diagnostics))
	}
	if stats := res.Passes.Passes(); len(stats) == 0 {
		t.Fatal("expected per-pass timing stats")
	}
}

func TestRunDependencyOrderAndMissingDep(t *testing.T) {
	// Unreachable requires SCCP; Run must pull it in transitively.
	p := lower(t, `
fun main() {
  var c: int = input();
  var x: int = 3;
  if (x > 1) {
    c = c + 1;
  }
  if (c > 0) {
    return;
  }
  return;
}`)
	res, err := Run(p, []*Analyzer{Unreachable})
	if err != nil {
		t.Fatalf("analysis: %v", err)
	}
	if got := codes(res.Diagnostics); !eqCodes(got, []string{"CF001"}) {
		t.Fatalf("codes = %v, want [CF001]", got)
	}
	// An undeclared dependency must panic (it is a bug in the pass).
	bad := &Analyzer{
		Name: "bad",
		Run: func(p *Pass) (any, error) {
			defer func() {
				if recover() == nil {
					t.Error("ResultOf on undeclared dep did not panic")
				}
			}()
			p.ResultOf(SCCP)
			return nil, nil
		},
	}
	if _, err := Run(p, []*Analyzer{bad}); err != nil {
		t.Fatalf("bad analyzer run: %v", err)
	}
}
