package analysis

import (
	"strings"

	"github.com/grapple-system/grapple/internal/ir"
	"github.com/grapple-system/grapple/internal/lang"
)

// ReachDefFacts is the reaching-definitions result for one function.
type ReachDefFacts struct {
	// DefinedIn[b] is the set of variables with at least one definition
	// reaching the entry of CFG block b (parameters count as entry defs).
	DefinedIn []map[string]bool
	// Uninit lists the variables reported as used-before-init.
	Uninit []string
}

// ReachDef computes reaching definitions per CFG block and reports RD001
// for every use of a variable that no definition reaches on any path — a
// definite use-before-init (never a may-warning, so it cannot false-positive
// on variables initialized on only some paths).
var ReachDef = &Analyzer{
	Name: "reachdef",
	Doc:  "reaching definitions; reports uses of never-initialized variables (RD001)",
	Run:  runReachDef,
}

func runReachDef(p *Pass) (any, error) {
	cfg := p.CFG
	n := len(cfg.Blocks)
	facts := &ReachDefFacts{DefinedIn: make([]map[string]bool, n)}

	entry := map[string]bool{}
	for _, prm := range p.Fn.Params {
		entry[prm.Name] = true
	}
	facts.DefinedIn[0] = entry

	// Forward union-dataflow. The CFG is acyclic, so one sweep in reverse
	// postorder reaches the fixpoint.
	order := cfg.RPO()
	out := make([]map[string]bool, n)
	for _, bi := range order {
		b := cfg.Blocks[bi]
		in := facts.DefinedIn[bi]
		if in == nil {
			in = map[string]bool{}
			for _, pi := range b.Preds {
				for v := range out[pi] {
					in[v] = true
				}
			}
			facts.DefinedIn[bi] = in
		}
		cur := make(map[string]bool, len(in))
		for v := range in {
			cur[v] = true
		}
		for _, s := range b.Stmts {
			for _, u := range ir.Uses(s) {
				p.checkUninit(facts, cur, u, ir.StmtPos(s))
			}
			for _, d := range ir.Defs(s) {
				cur[d] = true
			}
		}
		if b.Branch != nil {
			for _, u := range ir.CondUses(b.Branch.Cond) {
				p.checkUninit(facts, cur, u, b.Branch.Pos)
			}
		}
		out[bi] = cur
	}
	return facts, nil
}

// checkUninit reports a use of a variable no definition reaches. Compiler
// temporaries ($t..., $exc) are skipped: a use-before-init there would be a
// lowering bug, not a user defect.
func (p *Pass) checkUninit(facts *ReachDefFacts, defined map[string]bool, v string, pos lang.Pos) {
	if defined[v] || strings.HasPrefix(v, "$") {
		return
	}
	for _, seen := range facts.Uninit {
		if seen == v {
			return
		}
	}
	facts.Uninit = append(facts.Uninit, v)
	p.Reportf("RD001", pos, "variable %q is used before it is ever initialized", v)
}
