// Devirtualization support: a class-hierarchy / rapid-type-analysis core the
// Go frontend consults while lowering interface method calls, plus a
// program-scoped pass measuring how monomorphic the lowered program's event
// sites actually are (the bench table's "resolved dispatch" column).
//
// The split matters: MiniLang has no dynamic dispatch, so devirtualization
// must happen at lowering time (gofront builds a Hierarchy from the
// package's interface declarations, method sets, and allocated types, then
// rewrites `iface.M()` into a direct call, a small path-split dispatch, or a
// havoc). The Hierarchy lives here — not in gofront — because it is a pure
// string-domain lattice with a crisp soundness contract (every concrete
// target is in the resolved set) that the fuzzer exercises independently of
// Go parsing.
package analysis

import (
	"sort"

	"github.com/grapple-system/grapple/internal/ir"
)

// Candidate is one possible concrete target of an interface method call.
type Candidate struct {
	// Type is the concrete receiver type.
	Type string
	// Func is the lowered function implementing the method for Type.
	Func string
}

// Hierarchy is the type-hierarchy fact base devirtualization resolves
// against: interface method sets (CHA) narrowed to allocated types (RTA).
// The zero value is unusable; use NewHierarchy.
type Hierarchy struct {
	ifaces map[string]map[string]bool   // interface name -> required methods
	impls  map[string]map[string]string // concrete type -> method -> impl func
	live   map[string]bool              // types with at least one allocation site
}

// NewHierarchy returns an empty hierarchy.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{
		ifaces: map[string]map[string]bool{},
		impls:  map[string]map[string]string{},
		live:   map[string]bool{},
	}
}

// AddInterface declares an interface and its full method set. Re-declaring
// replaces the method set (last writer wins, matching Go shadowing).
func (h *Hierarchy) AddInterface(name string, methods []string) {
	set := map[string]bool{}
	for _, m := range methods {
		set[m] = true
	}
	h.ifaces[name] = set
}

// AddImpl records that concrete type typ implements method via the lowered
// function fn.
func (h *Hierarchy) AddImpl(typ, method, fn string) {
	ms := h.impls[typ]
	if ms == nil {
		ms = map[string]string{}
		h.impls[typ] = ms
	}
	ms[method] = fn
}

// AddLiveType marks a concrete type as allocated somewhere in the analyzed
// program (the RTA narrowing: types never instantiated cannot be dispatch
// targets).
func (h *Hierarchy) AddLiveType(typ string) { h.live[typ] = true }

// IsInterface reports whether name was declared via AddInterface.
func (h *Hierarchy) IsInterface(name string) bool { _, ok := h.ifaces[name]; return ok }

// Implements reports whether the concrete type's method set covers the
// interface's.
func (h *Hierarchy) Implements(typ, iface string) bool {
	req, ok := h.ifaces[iface]
	if !ok {
		return false
	}
	ms := h.impls[typ]
	for m := range req {
		if _, ok := ms[m]; !ok {
			return false
		}
	}
	return true
}

// Resolve returns every live concrete type implementing iface, paired with
// its implementation of method, sorted by type name. A nil result means the
// call cannot be devirtualized (unknown interface, method outside the
// declared set, or no live implementer) and the caller must havoc.
//
// Soundness contract (fuzzed): for any live type T whose method set covers
// iface, T appears in Resolve(iface, m) for every m in iface's method set.
func (h *Hierarchy) Resolve(iface, method string) []Candidate {
	req, ok := h.ifaces[iface]
	if !ok || !req[method] {
		return nil
	}
	var out []Candidate
	for typ := range h.impls {
		if !h.live[typ] || !h.Implements(typ, iface) {
			continue
		}
		out = append(out, Candidate{Type: typ, Func: h.impls[typ][method]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Type < out[j].Type })
	return out
}

// LiveImplementers returns the sorted live types implementing iface.
func (h *Hierarchy) LiveImplementers(iface string) []string {
	var out []string
	for typ := range h.impls {
		if h.live[typ] && h.Implements(typ, iface) {
			out = append(out, typ)
		}
	}
	sort.Strings(out)
	return out
}

// DevirtFacts summarizes receiver monomorphism over the lowered program's
// event sites: after frontend devirtualization, how many typestate events
// fire on a receiver whose allocation type is unique? (The frontend's own
// Stats count interface *calls*; this pass measures what survived into IR.)
type DevirtFacts struct {
	// EventSites is the number of event statements with an object receiver.
	EventSites int
	// Mono counts event sites whose receiver's points-to set spans exactly
	// one allocation type.
	Mono int
	// Poly counts sites spanning two or more types.
	Poly int
	// Unknown counts sites whose receiver has an empty points-to set
	// (objects entering from outside the analyzed unit).
	Unknown int
}

// Devirt is the program-scoped pass computing *DevirtFacts. It reports no
// diagnostics — the bench devirt table and tests consume it.
var Devirt = &Analyzer{
	Name:     "devirt",
	Doc:      "receiver monomorphism stats over event sites (no diagnostics)",
	Requires: []*Analyzer{PointsTo},
	ProgramRun: func(p *Pass) (any, error) {
		pts := p.ResultOf(PointsTo).(*PointsToResult)
		f := &DevirtFacts{}
		for _, fn := range p.Prog.Funs {
			seen := map[*ir.Event]bool{}
			eachStmt(fn.Body, func(st ir.Stmt) {
				ev, ok := st.(*ir.Event)
				if !ok || seen[ev] {
					return
				}
				seen[ev] = true
				f.EventSites++
				types := map[string]bool{}
				for _, site := range pts.VarPointsTo(fn.Name, ev.Recv) {
					if site >= 0 && int(site) < len(p.Prog.AllocSiteType) {
						types[p.Prog.AllocSiteType[site]] = true
					}
				}
				switch {
				case len(types) == 0:
					f.Unknown++
				case len(types) == 1:
					f.Mono++
				default:
					f.Poly++
				}
			})
		}
		return f, nil
	},
}
