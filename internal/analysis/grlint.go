// Concurrency lint rules over the MHP facts:
//
//	GR001 (goroutineleak): a tracked resource allocated in the spawning
//	function is passed to a spawned goroutine and NEITHER side ever
//	releases it. One-sided release is a clean ownership transfer and stays
//	silent — the rule only fires when no possible owner closes the
//	resource, which keeps it zero-false-positive on the ownership idioms
//	real Go code uses (spawn-and-close-inside, spawn-then-close-after).
//
//	GR002 (sharedsync): a typestate event fires on an object shared with a
//	spawned goroutine, the enclosing function has a guard (mutex-shaped
//	object) in scope, and no guard acquire dominates the event. Events the
//	property marked concurrency-safe (sync.Mutex's own lock/unlock,
//	context.CancelFunc invocation) are exempt, as are events on the guard
//	types themselves. The guard-in-scope requirement makes the rule an
//	inconsistency check — "you synchronize this object sometimes" — rather
//	than a global race detector, which is the precision the lint layer
//	promises.
//
// Both rules are inert on spawn-free programs, so pre-concurrency MiniLang
// inputs (and gofront -nomhp output) produce byte-identical reports.
package analysis

import (
	"github.com/grapple-system/grapple/internal/fsm"
	"github.com/grapple-system/grapple/internal/ir"
	"github.com/grapple-system/grapple/internal/lang"
)

// GoroutineLeak is the GR001 rule.
var GoroutineLeak = &Analyzer{
	Name:     "goroutineleak",
	Doc:      "resource passed to a spawned goroutine and released by neither side (GR001)",
	Requires: []*Analyzer{PointsTo, MHP},
	Run:      runGoroutineLeak,
}

func runGoroutineLeak(p *Pass) (any, error) {
	mhp := p.ResultOf(MHP).(*MHPFacts)
	if mhp.SpawnCount == 0 {
		return nil, nil
	}
	spawns := spawnSitesOf(p.Fn)
	if len(spawns) == 0 {
		return nil, nil
	}
	pts := p.ResultOf(PointsTo).(*PointsToResult)
	release := releaseAlphabet(fsm.KnownProperties())

	// Sites allocated in this function — GR001 only charges the spawner for
	// resources it created itself (a resource received from elsewhere has an
	// owner the rule cannot see).
	localSites := map[int32]bool{}
	eachStmt(p.Fn.Body, func(st ir.Stmt) {
		if n, ok := st.(*ir.NewObj); ok {
			localSites[n.Site] = true
		}
	})

	type key struct {
		call int32
		site int32
	}
	reported := map[key]bool{}
	for _, c := range spawns {
		// All functions the spawned task may run; a release by any of them
		// counts as the goroutine taking ownership.
		inTask := p.CG.Reachable([]string{c.Callee})
		for _, a := range c.ObjArgs {
			for _, site := range pts.VarPointsTo(p.Fn.Name, a.Arg) {
				if site < 0 || !localSites[site] || reported[key{c.Site, site}] {
					continue
				}
				typ := p.Prog.AllocSiteType[site]
				rel := release[typ]
				if len(rel) == 0 {
					continue // not a tracked resource type
				}
				if releasesSite(p.Prog, pts, p.Fn.Name, site, rel) {
					continue // spawner keeps ownership and releases
				}
				released := false
				for g := range inTask {
					if releasesSite(p.Prog, pts, g, site, rel) {
						released = true
						break
					}
				}
				if released {
					continue // ownership transferred to the goroutine
				}
				reported[key{c.Site, site}] = true
				p.Reportf("GR001", c.Pos,
					"resource %q (type %s) is shared with spawned goroutine %q but released by neither side",
					a.Arg, typ, c.Callee)
			}
		}
	}
	return nil, nil
}

// releasesSite reports whether fn's body contains a release-alphabet event
// whose receiver may reference site.
func releasesSite(prog *ir.Program, pts *PointsToResult, fn string, site int32, rel map[string]bool) bool {
	f := prog.FunByName[fn]
	if f == nil {
		return false
	}
	found := false
	eachStmt(f.Body, func(st ir.Stmt) {
		if found {
			return
		}
		ev, ok := st.(*ir.Event)
		if !ok || !rel[ev.Method] {
			return
		}
		for _, s := range pts.VarPointsTo(fn, ev.Recv) {
			if s == site {
				found = true
				return
			}
		}
	})
	return found
}

// SharedSync is the GR002 rule.
var SharedSync = &Analyzer{
	Name:     "sharedsync",
	Doc:      "typestate event on a goroutine-shared object without a dominating guard acquire (GR002)",
	Requires: []*Analyzer{PointsTo, MHP},
	Run:      runSharedSync,
}

// guardAlphabets scans the known properties for "guard-shaped" FSMs — an
// accepting initial state with an acquire event into a non-accepting state
// and a release event straight back — and returns the acquire events, the
// release events, and the guard object types. The shape picks out mutex-like
// properties (builtin Lock, the mutex pack's sync_Mutex) and rejects
// resource lifecycles: file-handle's close lands in Closed, not back in
// Init, and exception's catch does not return to the initial state.
func guardAlphabets(fsms []*fsm.FSM) (acquire, release, guardTypes map[string]bool) {
	acquire = map[string]bool{}
	release = map[string]bool{}
	guardTypes = map[string]bool{}
	for _, f := range fsms {
		if !f.IsAccept(f.Init) {
			continue
		}
		for _, a := range f.Events() {
			mid := f.Step(f.Init, a)
			if mid == fsm.ErrorState || mid == f.Init || f.IsAccept(mid) {
				continue
			}
			for _, b := range f.Events() {
				if f.Step(mid, b) == f.Init {
					acquire[a] = true
					release[b] = true
					guardTypes[f.Type] = true
				}
			}
		}
	}
	return acquire, release, guardTypes
}

func runSharedSync(p *Pass) (any, error) {
	mhp := p.ResultOf(MHP).(*MHPFacts)
	if mhp.SpawnCount == 0 || len(mhp.SharedSites) == 0 {
		return nil, nil
	}
	props := fsm.KnownProperties()
	acquire, release, guardTypes := guardAlphabets(props)
	if len(guardTypes) == 0 {
		return nil, nil
	}
	// Only functions with a guard in scope participate: the rule flags
	// inconsistent synchronization, not its absence.
	if !guardInScope(p.Fn, guardTypes) {
		return nil, nil
	}
	pts := p.ResultOf(PointsTo).(*PointsToResult)

	// Per-type event alphabets and concurrency-safe exemptions.
	alphabet := map[string]map[string]bool{}
	safe := map[string]map[string]bool{}
	for _, f := range props {
		evs := alphabet[f.Type]
		if evs == nil {
			evs = map[string]bool{}
			alphabet[f.Type] = evs
		}
		sf := safe[f.Type]
		if sf == nil {
			sf = map[string]bool{}
			safe[f.Type] = sf
		}
		for _, ev := range f.Events() {
			evs[ev] = true
			if f.IsConcurrencySafe(ev) {
				sf[ev] = true
			}
		}
	}

	// Forward "a guard acquire dominates here" dataflow over the acyclic
	// CFG: acquire sets the flag, release clears it, meet is AND over
	// predecessors, entry starts unguarded. Optimistic init (true) is sound
	// because the CFG is acyclic (loops are statically unrolled) so the
	// fixpoint is reached in topological order.
	blocks := p.CFG.Blocks
	in := make([]bool, len(blocks))
	outF := make([]bool, len(blocks))
	for i := range in {
		in[i], outF[i] = true, true
	}
	transfer := func(b *ir.CFGBlock, g bool) bool {
		for _, st := range b.Stmts {
			if ev, ok := st.(*ir.Event); ok {
				if acquire[ev.Method] {
					g = true
				} else if release[ev.Method] {
					g = false
				}
			}
		}
		return g
	}
	for changed := true; changed; {
		changed = false
		for i, b := range blocks {
			iv := true
			if i == 0 {
				iv = false // entry is unguarded
			} else {
				for _, pr := range b.Preds {
					iv = iv && outF[pr]
				}
			}
			ov := transfer(b, iv)
			if iv != in[i] || ov != outF[i] {
				in[i], outF[i] = iv, ov
				changed = true
			}
		}
	}

	// One finding per receiver variable, at its earliest unguarded event —
	// the first racy touch is the actionable one; repeating it per statement
	// would drown the report.
	type cand struct {
		pos    lang.Pos
		method string
	}
	best := map[string]cand{}
	for i, b := range blocks {
		g := in[i]
		for _, st := range b.Stmts {
			ev, ok := st.(*ir.Event)
			if !ok {
				continue
			}
			if acquire[ev.Method] {
				g = true
				continue
			}
			if release[ev.Method] {
				g = false
				continue
			}
			if g {
				continue
			}
			for _, site := range pts.VarPointsTo(p.Fn.Name, ev.Recv) {
				if site < 0 || !mhp.SharedSites[site] {
					continue
				}
				typ := p.Prog.AllocSiteType[site]
				if guardTypes[typ] || !alphabet[typ][ev.Method] || safe[typ][ev.Method] {
					continue
				}
				if old, ok := best[ev.Recv]; !ok || posBefore(ev.Pos, old.pos) {
					best[ev.Recv] = cand{pos: ev.Pos, method: ev.Method}
				}
				break
			}
		}
	}
	for recv, c := range best {
		p.Reportf("GR002", c.pos,
			"event %q on goroutine-shared %q is not protected by a dominating guard acquire",
			c.method, recv)
	}
	return nil, nil
}

// guardInScope reports whether fn receives or allocates a guard-typed
// object.
func guardInScope(fn *ir.Func, guardTypes map[string]bool) bool {
	for _, pr := range fn.Params {
		if guardTypes[pr.Type] {
			return true
		}
	}
	found := false
	eachStmt(fn.Body, func(st ir.Stmt) {
		if n, ok := st.(*ir.NewObj); ok && guardTypes[n.Type] {
			found = true
		}
	})
	return found
}

func posBefore(a, b lang.Pos) bool {
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Col < b.Col
}
