package analysis

import (
	"fmt"
	"testing"
)

func demoHierarchy() *Hierarchy {
	h := NewHierarchy()
	h.AddInterface("Writer", []string{"WriteIt"})
	h.AddInterface("Closer", []string{"WriteIt", "CloseIt"})
	h.AddImpl("FileW", "WriteIt", "FileW_WriteIt")
	h.AddImpl("FileW", "CloseIt", "FileW_CloseIt")
	h.AddImpl("NetW", "WriteIt", "NetW_WriteIt")
	h.AddImpl("DeadW", "WriteIt", "DeadW_WriteIt")
	h.AddLiveType("FileW")
	h.AddLiveType("NetW")
	// DeadW implements Writer but is never allocated: RTA excludes it.
	return h
}

func TestHierarchyResolve(t *testing.T) {
	h := demoHierarchy()
	got := h.Resolve("Writer", "WriteIt")
	if len(got) != 2 || got[0] != (Candidate{"FileW", "FileW_WriteIt"}) ||
		got[1] != (Candidate{"NetW", "NetW_WriteIt"}) {
		t.Fatalf("Resolve(Writer, WriteIt) = %v", got)
	}
	// Closer needs both methods; only FileW's set covers it.
	if got := h.Resolve("Closer", "CloseIt"); len(got) != 1 || got[0].Func != "FileW_CloseIt" {
		t.Fatalf("Resolve(Closer, CloseIt) = %v", got)
	}
	// Unknown interface, method outside the declared set, unimplemented
	// method: all must refuse (nil), never guess.
	for _, bad := range [][2]string{
		{"Nope", "WriteIt"}, {"Writer", "CloseIt"}, {"Writer", "FlushIt"},
	} {
		if got := h.Resolve(bad[0], bad[1]); got != nil {
			t.Errorf("Resolve(%s, %s) = %v, want nil", bad[0], bad[1], got)
		}
	}
	if h.Implements("NetW", "Closer") {
		t.Error("NetW lacks CloseIt; it must not implement Closer")
	}
	if got := h.LiveImplementers("Writer"); len(got) != 2 || got[0] != "FileW" || got[1] != "NetW" {
		t.Fatalf("LiveImplementers(Writer) = %v", got)
	}
}

func TestHierarchyRedeclareReplaces(t *testing.T) {
	h := demoHierarchy()
	h.AddInterface("Writer", []string{"WriteIt", "CloseIt"})
	// After narrowing Writer's method set, NetW no longer qualifies.
	if got := h.Resolve("Writer", "WriteIt"); len(got) != 1 || got[0].Type != "FileW" {
		t.Fatalf("Resolve after redeclare = %v", got)
	}
}

func TestDevirtFactsPass(t *testing.T) {
	p := lower(t, `
type A;
type B;

fun ghost(x: A) {
  x.use();
  return;
}

fun main() {
  var a: A = new A();
  a.use();
  var m: A = new A();
  if (input() > 0) {
    m = new B();
  }
  m.use();
  return;
}`)
	res, err := Run(p, []*Analyzer{PointsTo, Devirt})
	if err != nil {
		t.Fatal(err)
	}
	f := res.ProgramFactsOf(Devirt).(*DevirtFacts)
	// a.use() is monomorphic (one A site); m.use() spans A and B (poly);
	// ghost is never called so x has an empty points-to set (unknown).
	want := DevirtFacts{EventSites: 3, Mono: 1, Poly: 1, Unknown: 1}
	if *f != want {
		t.Fatalf("DevirtFacts = %+v, want %+v", *f, want)
	}
}

// FuzzDevirt fuzzes the hierarchy soundness contract: however interfaces,
// implementations, and allocations are arranged, a live concrete type whose
// method set covers an interface must appear in Resolve for every method of
// that interface. A devirtualizer missing a concrete target would silently
// drop real behavior from the analyzed program, which is the one failure
// mode the frontend must never have.
func FuzzDevirt(f *testing.F) {
	f.Add(uint16(0x0003), uint16(0x0001), uint16(0x0007), uint8(3))
	f.Add(uint16(0xffff), uint16(0xffff), uint16(0xffff), uint8(15))
	f.Add(uint16(0x0101), uint16(0x1010), uint16(0x0110), uint8(7))
	f.Fuzz(func(t *testing.T, ifaceBits, implBits, liveBits uint16, nMethods uint8) {
		// Four interfaces over up to 16 methods, four concrete types whose
		// method sets are carved out of implBits, liveness from liveBits.
		methods := int(nMethods%16) + 1
		h := NewHierarchy()
		ifaces := make([][]string, 4)
		for i := 0; i < 4; i++ {
			var set []string
			for m := 0; m < methods; m++ {
				if ifaceBits>>(uint(i*4+m)%16)&1 == 1 {
					set = append(set, fmt.Sprintf("m%d", m))
				}
			}
			ifaces[i] = set
			h.AddInterface(fmt.Sprintf("I%d", i), set)
		}
		impl := make([]map[string]bool, 4)
		for ty := 0; ty < 4; ty++ {
			impl[ty] = map[string]bool{}
			for m := 0; m < methods; m++ {
				if implBits>>(uint(ty*4+m)%16)&1 == 1 {
					name := fmt.Sprintf("m%d", m)
					impl[ty][name] = true
					h.AddImpl(fmt.Sprintf("T%d", ty), name, fmt.Sprintf("T%d_%s", ty, name))
				}
			}
		}
		live := make([]bool, 4)
		for ty := 0; ty < 4; ty++ {
			if liveBits>>uint(ty)&1 == 1 {
				live[ty] = true
				h.AddLiveType(fmt.Sprintf("T%d", ty))
			}
		}
		for i, set := range ifaces {
			iface := fmt.Sprintf("I%d", i)
			for ty := 0; ty < 4; ty++ {
				covers := true
				for _, m := range set {
					covers = covers && impl[ty][m]
				}
				if !covers || !live[ty] {
					continue
				}
				typ := fmt.Sprintf("T%d", ty)
				// Soundness: T must be a candidate for every method of I.
				for _, m := range set {
					found := false
					for _, c := range h.Resolve(iface, m) {
						if c.Type == typ {
							if want := fmt.Sprintf("%s_%s", typ, m); c.Func != want {
								t.Fatalf("Resolve(%s,%s) maps %s to %s, want %s",
									iface, m, typ, c.Func, want)
							}
							found = true
						}
					}
					if !found {
						t.Fatalf("live implementer %s missing from Resolve(%s, %s)", typ, iface, m)
					}
				}
			}
			// Precision spot-check: dead or non-covering types never appear.
			for _, m := range set {
				for _, c := range h.Resolve(iface, m) {
					var ty int
					fmt.Sscanf(c.Type, "T%d", &ty)
					if !live[ty] {
						t.Fatalf("dead type %s in Resolve(%s, %s)", c.Type, iface, m)
					}
				}
			}
		}
	})
}
