// Andersen-style whole-program points-to analysis over the lowered IR.
//
// The solver is flow- and context-insensitive (one abstract cell per
// variable per function, one per allocation-site field), inclusion-based,
// and solved to a fixpoint with a worklist. Interprocedural flow follows
// the paper's §2.1 cloning structure without the cloning: per-function
// summaries connect argument cells to formal cells and "$ret"/"$exc"
// channel cells back to call sites, and constraint generation visits
// functions bottom-up over the call graph's SCC condensation (recursion
// groups collapsed) so most facts are final the first time a caller reads
// them. The result over-approximates every context-sensitive solution the
// checker later computes, which is what makes it safe to slice with.
package analysis

import (
	"sort"

	"github.com/grapple-system/grapple/internal/callgraph"
	"github.com/grapple-system/grapple/internal/ir"
)

// NullSite is the pseudo allocation site for the `null` literal; it appears
// in points-to sets next to real ir.Program alloc-site IDs.
const NullSite int32 = -1

// ptKey names one abstract pointer cell: a (function, variable) pair for
// locals/formals/"$ret"/"$exc" channels (site == -1), or an (allocation
// site, field) cell for object fields (fn == "").
type ptKey struct {
	fn   string
	name string
	site int32
}

func varKey(fn, name string) ptKey        { return ptKey{fn: fn, name: name, site: -1} }
func fieldKey(site int32, f string) ptKey { return ptKey{name: f, site: site} }

// retVar and excVar are the per-function return/exception channel cells.
const retVar = "$ret"

type ptLoad struct {
	field string
	dst   ptKey
}

type ptStore struct {
	field string
	src   ptKey
}

// PointsToResult is the solved inclusion constraint system.
type PointsToResult struct {
	prog *ir.Program

	pts map[ptKey]map[int32]bool

	// iterations counts worklist propagation steps (fuzzing asserts the
	// solver terminates within a polynomial budget).
	iterations int
}

// solver carries the constraint graph during solving.
type solver struct {
	prog *ir.Program
	res  *PointsToResult

	succ   map[ptKey]map[ptKey]bool
	loads  map[ptKey][]ptLoad
	stores map[ptKey][]ptStore
	work   []ptKey
	queued map[ptKey]bool

	// siteCallee maps a call-site ID to its callee, for CatchBind's
	// exception re-binding (the lowering records only the site).
	siteCallee map[int32]string
}

// SolvePointsTo computes the whole-program points-to solution. The call
// graph parameter supplies the bottom-up SCC order used for constraint
// generation; pass callgraph.Build(p) when no graph is at hand.
func SolvePointsTo(p *ir.Program, cg *callgraph.Graph) *PointsToResult {
	s := &solver{
		prog: p,
		res: &PointsToResult{
			prog: p,
			pts:  map[ptKey]map[int32]bool{},
		},
		succ:       map[ptKey]map[ptKey]bool{},
		loads:      map[ptKey][]ptLoad{},
		stores:     map[ptKey][]ptStore{},
		queued:     map[ptKey]bool{},
		siteCallee: map[int32]string{},
	}
	for _, fn := range p.Funs {
		eachStmt(fn.Body, func(st ir.Stmt) {
			if c, ok := st.(*ir.Call); ok && c.Site >= 0 {
				s.siteCallee[c.Site] = c.Callee
			}
		})
	}
	// Bottom-up constraint generation: callees before callers, recursion
	// groups adjacent. The fixpoint below is order-independent; the order
	// only shortens it.
	for _, name := range cg.BottomUpNames() {
		fn := p.FunByName[name]
		if fn == nil {
			continue
		}
		s.genFunc(fn)
	}
	s.solve()
	return s.res
}

// eachStmt visits every statement of a lowered block tree, including both
// If arms (and TryRegion parts, defensively — the checker's input has
// exceptions expanded away).
func eachStmt(b *ir.Block, f func(ir.Stmt)) {
	for _, st := range b.Stmts {
		f(st)
		switch st := st.(type) {
		case *ir.If:
			eachStmt(st.Then, f)
			eachStmt(st.Else, f)
		case *ir.TryRegion:
			eachStmt(st.Body, f)
			eachStmt(st.Catch, f)
		}
	}
}

// genFunc emits the inclusion constraints for one function's statements.
func (s *solver) genFunc(fn *ir.Func) {
	f := fn.Name
	eachStmt(fn.Body, func(st ir.Stmt) {
		switch st := st.(type) {
		case *ir.NewObj:
			s.addPts(varKey(f, st.Dst), st.Site)
		case *ir.ObjAssign:
			if st.Src == "" {
				s.addPts(varKey(f, st.Dst), NullSite)
			} else {
				s.addEdge(varKey(f, st.Src), varKey(f, st.Dst))
			}
		case *ir.Load:
			k := varKey(f, st.Recv)
			s.loads[k] = append(s.loads[k], ptLoad{field: st.Field, dst: varKey(f, st.Dst)})
			s.resolveRecv(k)
		case *ir.Store:
			k := varKey(f, st.Recv)
			s.stores[k] = append(s.stores[k], ptStore{field: st.Field, src: varKey(f, st.Src)})
			s.resolveRecv(k)
		case *ir.Call:
			for _, a := range st.ObjArgs {
				s.addEdge(varKey(f, a.Arg), varKey(st.Callee, a.Formal))
			}
			if st.Dst != "" && st.DstIsObject {
				s.addEdge(varKey(st.Callee, retVar), varKey(f, st.Dst))
			}
		case *ir.Return:
			if st.SrcIsObject {
				if st.Src.Var == "" {
					s.addPts(varKey(f, retVar), NullSite)
				} else {
					s.addEdge(varKey(f, st.Src.Var), varKey(f, retVar))
				}
			}
		case *ir.CatchBind:
			if st.FromCall >= 0 {
				if callee, ok := s.siteCallee[st.FromCall]; ok {
					s.addEdge(varKey(callee, ir.ExcVar), varKey(f, st.Var))
				}
			}
			// Local raises (FromCall < 0) are lowered as an ObjAssign into
			// the bound variable; nothing more to do here.
		}
	})
}

// resolveRecv replays a receiver's known pointees against its (possibly
// just-registered) load/store constraints.
func (s *solver) resolveRecv(k ptKey) {
	if len(s.res.pts[k]) > 0 {
		s.enqueue(k)
	}
}

func (s *solver) addPts(k ptKey, site int32) {
	set := s.res.pts[k]
	if set == nil {
		set = map[int32]bool{}
		s.res.pts[k] = set
	}
	if !set[site] {
		set[site] = true
		s.enqueue(k)
	}
}

func (s *solver) addEdge(from, to ptKey) {
	m := s.succ[from]
	if m == nil {
		m = map[ptKey]bool{}
		s.succ[from] = m
	}
	if !m[to] {
		m[to] = true
		if len(s.res.pts[from]) > 0 {
			s.enqueue(from)
		}
	}
}

func (s *solver) enqueue(k ptKey) {
	if !s.queued[k] {
		s.queued[k] = true
		s.work = append(s.work, k)
	}
}

// solve runs the worklist to fixpoint. Each step flushes one node's set
// into its copy successors and expands its pending field loads/stores into
// concrete field-cell edges.
func (s *solver) solve() {
	for len(s.work) > 0 {
		k := s.work[len(s.work)-1]
		s.work = s.work[:len(s.work)-1]
		s.queued[k] = false
		s.res.iterations++

		set := s.res.pts[k]
		for to := range s.succ[k] {
			for site := range set {
				s.addPts(to, site)
			}
		}
		for _, ld := range s.loads[k] {
			for site := range set {
				if site < 0 {
					continue // loading through null: no cell
				}
				s.addEdge(fieldKey(site, ld.field), ld.dst)
			}
		}
		for _, st := range s.stores[k] {
			for site := range set {
				if site < 0 {
					continue
				}
				s.addEdge(st.src, fieldKey(site, st.field))
			}
		}
	}
}

// VarPointsTo returns the sorted allocation sites variable name in function
// fn may reference; NullSite (-1) marks a possible null.
func (r *PointsToResult) VarPointsTo(fn, name string) []int32 {
	return sortedSites(r.pts[varKey(fn, name)])
}

// FieldPointsTo returns the sorted allocation sites field f of objects
// allocated at site may reference.
func (r *PointsToResult) FieldPointsTo(site int32, f string) []int32 {
	return sortedSites(r.pts[fieldKey(site, f)])
}

// MayBeNull reports whether null reaches variable name of function fn.
func (r *PointsToResult) MayBeNull(fn, name string) bool {
	return r.pts[varKey(fn, name)][NullSite]
}

// MayReturnNull reports whether fn's return channel includes null.
func (r *PointsToResult) MayReturnNull(fn string) bool {
	return r.pts[varKey(fn, retVar)][NullSite]
}

// ReturnSites returns the sorted real allocation sites fn may return
// (NullSite excluded; see MayReturnNull).
func (r *PointsToResult) ReturnSites(fn string) []int32 {
	var out []int32
	for site := range r.pts[varKey(fn, retVar)] {
		if site >= 0 {
			out = append(out, site)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Iterations is the number of worklist steps the solve took.
func (r *PointsToResult) Iterations() int { return r.iterations }

// EscapingSites returns the allocation sites that may leave the analyzed
// unit through one of the given entry functions' return values — directly
// returned, or reachable from a returned object through any chain of
// fields. An escaping object's lifetime continues in a caller the analysis
// cannot see, so "still open at program exit" is not evidence of a leak
// for it (the caller inherited the release obligation, exactly as LK001's
// fresh-return contract states it).
func (r *PointsToResult) EscapingSites(entries []string) map[int32]bool {
	out := map[int32]bool{}
	for _, fn := range entries {
		for site := range r.pts[varKey(fn, retVar)] {
			if site >= 0 {
				out[site] = true
			}
		}
	}
	r.fieldClosure(out)
	return out
}

// fieldClosure extends the site set in place with every site reachable from
// a member through any chain of fields: anything a reachable object's fields
// point to is reachable from whoever holds the object. Shared by
// EscapingSites (returned objects) and the MHP pass (goroutine-shared
// objects).
func (r *PointsToResult) fieldClosure(out map[int32]bool) {
	fields := map[int32][]int32{}
	for k, set := range r.pts {
		if k.site < 0 {
			continue
		}
		for site := range set {
			if site >= 0 {
				fields[k.site] = append(fields[k.site], site)
			}
		}
	}
	work := make([]int32, 0, len(out))
	for site := range out {
		work = append(work, site)
	}
	for len(work) > 0 {
		site := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range fields[site] {
			if s >= 0 && !out[s] {
				out[s] = true
				work = append(work, s)
			}
		}
	}
}

// pointsIntoSet reports whether (fn, name) may reference any site in the
// given set — the relevance slicer's "tracked variable" test.
func (r *PointsToResult) pointsIntoSet(fn, name string, sites map[int32]bool) bool {
	for site := range r.pts[varKey(fn, name)] {
		if site >= 0 && sites[site] {
			return true
		}
	}
	return false
}

func sortedSites(set map[int32]bool) []int32 {
	if len(set) == 0 {
		return nil
	}
	out := make([]int32, 0, len(set))
	for site := range set {
		out = append(out, site)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PointsTo is the program-scoped pass wrapping SolvePointsTo; its result is
// a *PointsToResult. It reports no diagnostics itself — NilDeref, LeakCall,
// and the checker's relevance slicer consume it.
var PointsTo = &Analyzer{
	Name: "pointsto",
	Doc:  "whole-program Andersen-style points-to solution (no diagnostics)",
	ProgramRun: func(p *Pass) (any, error) {
		return SolvePointsTo(p.Prog, p.CG), nil
	},
}
