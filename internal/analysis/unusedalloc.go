package analysis

import (
	"sort"
	"strings"

	"github.com/grapple-system/grapple/internal/ir"
	"github.com/grapple-system/grapple/internal/lang"
)

// UnusedAlloc reports UA001 for allocations whose object is provably never
// used: no event fires on it and it never escapes the variable it was
// assigned to (no copy, field store, call argument, return, or throw). Such
// an object cannot affect any typestate property, so the allocation is noise
// at best and a leaked-intent bug at worst.
//
// The check is name-based and conservative: if the destination variable is
// read anywhere in the function, every allocation flowing into it counts as
// used. That forgoes some true positives to guarantee no false ones.
var UnusedAlloc = &Analyzer{
	Name: "unusedalloc",
	Doc:  "reports allocations never observed by an event and never escaping (UA001)",
	Run:  runUnusedAlloc,
}

func runUnusedAlloc(p *Pass) (any, error) {
	type alloc struct {
		pos lang.Pos
		typ string
		dst string
	}
	allocs := map[int32]alloc{}
	used := map[string]bool{}
	for _, b := range p.CFG.Blocks {
		for _, s := range b.Stmts {
			if nw, ok := s.(*ir.NewObj); ok && !strings.HasPrefix(nw.Dst, "$") {
				if _, seen := allocs[nw.Site]; !seen {
					allocs[nw.Site] = alloc{pos: nw.Pos, typ: nw.Type, dst: nw.Dst}
				}
			}
			for _, u := range ir.Uses(s) {
				used[u] = true
			}
		}
		if b.Branch != nil {
			for _, u := range ir.CondUses(b.Branch.Cond) {
				used[u] = true
			}
		}
	}
	sites := make([]int32, 0, len(allocs))
	for site := range allocs {
		sites = append(sites, site)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	for _, site := range sites {
		a := allocs[site]
		if used[a.dst] {
			continue
		}
		p.Reportf("UA001", a.pos, "allocated %s %q is never used: no events observed and it does not escape", a.typ, a.dst)
	}
	return nil, nil
}
