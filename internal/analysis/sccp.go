package analysis

import (
	"github.com/grapple-system/grapple/internal/ir"
)

// SCCPFacts is the sparse-conditional-constant-propagation result for one
// function.
type SCCPFacts struct {
	// Verdicts maps each If whose condition is statically decided on every
	// executable path reaching it: +1 the condition always holds, -1 it never
	// holds. Ifs with unknown or path-dependent conditions are absent.
	Verdicts map[*ir.If]int
	// Exec[b] reports whether CFG block b is reachable once decided branches
	// are respected (entry is always executable).
	Exec []bool
}

// SCCP runs conditional constant propagation over integer and boolean
// temporaries, tracking edge executability in the classic Wegman–Zadeck
// style: constants found along only-executable paths decide branches, and
// decided branches in turn keep unreachable arms from polluting joins.
//
// The pass reports nothing itself; Unreachable turns its verdicts into
// diagnostics and the checker uses them to skip infeasible CFET subtrees.
var SCCP = &Analyzer{
	Name: "sccp",
	Doc:  "conditional constant propagation; proves branch conditions constant",
	Run:  runSCCP,
}

// constEnv holds the variables proven constant at a program point. A missing
// key means "not a constant" — the analysis is must-constant, so values only
// ever leave the maps as facts weaken, which guarantees termination.
type constEnv struct {
	ints  map[string]int64
	bools map[string]bool
}

func newConstEnv() *constEnv {
	return &constEnv{ints: map[string]int64{}, bools: map[string]bool{}}
}

func (e *constEnv) clone() *constEnv {
	c := newConstEnv()
	for k, v := range e.ints {
		c.ints[k] = v
	}
	for k, v := range e.bools {
		c.bools[k] = v
	}
	return c
}

// meet intersects other into e (agreeing constants survive). It reports
// whether e changed.
func (e *constEnv) meet(other *constEnv) bool {
	changed := false
	for k, v := range e.ints {
		if ov, ok := other.ints[k]; !ok || ov != v {
			delete(e.ints, k)
			changed = true
		}
	}
	for k, v := range e.bools {
		if ov, ok := other.bools[k]; !ok || ov != v {
			delete(e.bools, k)
			changed = true
		}
	}
	return changed
}

func runSCCP(p *Pass) (any, error) {
	cfg := p.CFG
	n := len(cfg.Blocks)
	facts := &SCCPFacts{Verdicts: map[*ir.If]int{}, Exec: make([]bool, n)}

	in := make([]*constEnv, n)
	in[0] = newConstEnv()
	facts.Exec[0] = true

	// Worklist over blocks. The CFG is acyclic and constants only decay, so
	// this terminates quickly; revisits happen when a join's in-state weakens
	// or a new edge becomes executable.
	work := []int{0}
	inWork := make([]bool, n)
	inWork[0] = true
	for len(work) > 0 {
		bi := work[0]
		work = work[1:]
		inWork[bi] = false
		b := cfg.Blocks[bi]

		env := in[bi].clone()
		for _, s := range b.Stmts {
			transferConst(env, s)
		}

		succs := b.Succs
		if b.Branch != nil {
			if v, ok := evalCond(env, b.Branch.Cond); ok {
				// Succs is [then, else]; a decided condition makes only one
				// executable.
				if v {
					facts.Verdicts[b.Branch] = 1
					succs = b.Succs[:1]
				} else {
					facts.Verdicts[b.Branch] = -1
					succs = b.Succs[1:]
				}
			} else {
				delete(facts.Verdicts, b.Branch)
			}
		}
		for _, si := range succs {
			changed := false
			if in[si] == nil {
				in[si] = env.clone()
				facts.Exec[si] = true
				changed = true
			} else if in[si].meet(env) {
				changed = true
			}
			if changed && !inWork[si] {
				work = append(work, si)
				inWork[si] = true
			}
		}
	}
	return facts, nil
}

// transferConst updates the constant environment across one statement.
// Anything not provably constant (opaque reads, call results, event results)
// kills its destination.
func transferConst(env *constEnv, s ir.Stmt) {
	switch s := s.(type) {
	case *ir.IntAssign:
		if v, ok := evalArith(env, s); ok {
			env.ints[s.Dst] = v
		} else {
			delete(env.ints, s.Dst)
		}
	case *ir.BoolAssign:
		if v, ok := evalCond(env, s.Cond); ok {
			env.bools[s.Dst] = v
		} else {
			delete(env.bools, s.Dst)
		}
	default:
		// Object statements don't touch scalars; Call/Event/Load/CatchBind
		// destinations are unknown values.
		for _, d := range ir.Defs(s) {
			delete(env.ints, d)
			delete(env.bools, d)
		}
	}
}

func evalOperand(env *constEnv, o ir.Operand) (int64, bool) {
	if o.IsConst() {
		return o.Const, true
	}
	v, ok := env.ints[o.Var]
	return v, ok
}

func evalArith(env *constEnv, s *ir.IntAssign) (int64, bool) {
	if s.Op == ir.Opaque {
		return 0, false
	}
	a, ok := evalOperand(env, s.A)
	if !ok {
		return 0, false
	}
	switch s.Op {
	case ir.Mov:
		return a, true
	case ir.Neg:
		return -a, true
	}
	b, ok := evalOperand(env, s.B)
	if !ok {
		return 0, false
	}
	switch s.Op {
	case ir.Add:
		return a + b, true
	case ir.Sub:
		return a - b, true
	case ir.Mul:
		return a * b, true
	}
	return 0, false
}

// evalCond decides a branch condition under the constant environment.
func evalCond(env *constEnv, c ir.Cond) (bool, bool) {
	var v bool
	switch {
	case c.IsOpaque():
		return false, false
	case c.BoolVar != "":
		bv, ok := env.bools[c.BoolVar]
		if !ok {
			return false, false
		}
		v = bv
	default:
		a, ok := evalOperand(env, c.A)
		if !ok {
			return false, false
		}
		b, ok := evalOperand(env, c.B)
		if !ok {
			return false, false
		}
		switch c.Kind {
		case ir.CmpEq:
			v = a == b
		case ir.CmpNe:
			v = a != b
		case ir.CmpLt:
			v = a < b
		case ir.CmpLe:
			v = a <= b
		case ir.CmpGt:
			v = a > b
		case ir.CmpGe:
			v = a >= b
		}
	}
	if c.Negated {
		v = !v
	}
	return v, true
}
