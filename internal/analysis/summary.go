// Per-function interprocedural summaries derived from the points-to
// solution. A summary is the caller-visible abstract of a function: what it
// may return (null, which allocation sites), whether those returns are
// fresh (ownership transfers to the caller), and whether it may throw. The
// interprocedural diagnostics (ND001/LK001) and the relevance slicer read
// callee behaviour exclusively through summaries, never callee bodies —
// the "file-at-a-time" structure that keeps the pre-analysis linear.
package analysis

import (
	"sort"

	"github.com/grapple-system/grapple/internal/ir"
)

// FuncSummary is one function's caller-visible abstract.
type FuncSummary struct {
	Name string
	// MayReturnNull: null flows to the function's return channel.
	MayReturnNull bool
	// ReturnSites are the real allocation sites the function may return,
	// sorted (empty for int/void functions).
	ReturnSites []int32
	// FreshReturn: the function returns only objects it allocated itself,
	// and it escapes them solely through the return value — the function
	// never stores them into a field, passes them onward, or throws them.
	// A caller of a fresh-returning function becomes the object's only
	// owner, so releasing it is the caller's obligation (the premise of
	// LK001; what the caller then does with the object is judged at the
	// caller).
	FreshReturn bool
	// MayThrow mirrors ir.Func.MayThrow.
	MayThrow bool
}

// Summaries holds every function's summary plus the points-to solution the
// summaries were derived from.
type Summaries struct {
	ByName map[string]*FuncSummary
	PTS    *PointsToResult
}

// BuildSummaries derives all function summaries from a solved points-to
// result.
func BuildSummaries(p *ir.Program, pts *PointsToResult) *Summaries {
	// siteOwner: which function contains each allocation site.
	siteOwner := map[int32]string{}
	for _, fn := range p.Funs {
		eachStmt(fn.Body, func(st ir.Stmt) {
			if n, ok := st.(*ir.NewObj); ok {
				siteOwner[n.Site] = fn.Name
			}
		})
	}
	// escaped: sites whose OWNER function shares them before (or instead of)
	// returning them — stored into a field, passed to another function,
	// thrown. Only owner-side escapes disqualify freshness: what a *caller*
	// does with a returned object is that caller's business and is judged at
	// the caller (runLeakCall's local escape set).
	escaped := map[int32]bool{}
	markOwned := func(fn, v string) {
		for _, site := range pts.VarPointsTo(fn, v) {
			if site >= 0 && siteOwner[site] == fn {
				escaped[site] = true
			}
		}
	}
	for _, fn := range p.Funs {
		name := fn.Name
		eachStmt(fn.Body, func(st ir.Stmt) {
			switch st := st.(type) {
			case *ir.Store:
				markOwned(name, st.Src)
			case *ir.Call:
				for _, a := range st.ObjArgs {
					markOwned(name, a.Arg)
				}
			}
		})
		markOwned(name, ir.ExcVar)
	}

	out := &Summaries{ByName: map[string]*FuncSummary{}, PTS: pts}
	for _, fn := range p.Funs {
		s := &FuncSummary{
			Name:          fn.Name,
			MayReturnNull: pts.MayReturnNull(fn.Name),
			ReturnSites:   pts.ReturnSites(fn.Name),
			MayThrow:      fn.MayThrow,
		}
		s.FreshReturn = len(s.ReturnSites) > 0
		for _, site := range s.ReturnSites {
			if siteOwner[site] != fn.Name || escaped[site] {
				s.FreshReturn = false
				break
			}
		}
		out.ByName[fn.Name] = s
	}
	return out
}

// ReturnedTypes lists the distinct object types a summary may return,
// sorted.
func (s *Summaries) ReturnedTypes(name string) []string {
	sum := s.ByName[name]
	if sum == nil {
		return nil
	}
	seen := map[string]bool{}
	var out []string
	for _, site := range sum.ReturnSites {
		typ := s.PTS.prog.AllocSiteType[site]
		if !seen[typ] {
			seen[typ] = true
			out = append(out, typ)
		}
	}
	sort.Strings(out)
	return out
}

// Summary is the program-scoped pass wrapping BuildSummaries; its result is
// a *Summaries. The interprocedural diagnostics require it.
var Summary = &Analyzer{
	Name:     "summaries",
	Doc:      "per-function interprocedural summaries over the points-to solution",
	Requires: []*Analyzer{PointsTo},
	ProgramRun: func(p *Pass) (any, error) {
		return BuildSummaries(p.Prog, p.ResultOf(PointsTo).(*PointsToResult)), nil
	},
}
