package analysis

import (
	"sort"

	"github.com/grapple-system/grapple/internal/lang"
)

// Unreachable turns SCCP's branch verdicts into diagnostics: CF001 for a
// condition that always holds (the else arm can never run) and CF002 for one
// that never holds (the then arm can never run).
//
// Lowering clones branches (loop unrolling, short-circuit desugaring), so one
// source if-statement can have many lowered copies with genuinely different
// verdicts — an unrolled `i < 2` is true in the first copy and false in the
// last. A position is reported only when every executable copy agrees, which
// confines reports to conditions that are constant in the source program.
var Unreachable = &Analyzer{
	Name:     "unreachable",
	Doc:      "reports branch conditions proven always true (CF001) or always false (CF002)",
	Requires: []*Analyzer{SCCP},
	Run:      runUnreachable,
}

func runUnreachable(p *Pass) (any, error) {
	sf, ok := p.ResultOf(SCCP).(*SCCPFacts)
	if !ok {
		return nil, nil
	}
	type site struct {
		verdict int  // agreed verdict so far
		mixed   bool // copies disagree or some copy is undecided
		text    string
	}
	sites := map[lang.Pos]*site{}
	for _, b := range p.CFG.Blocks {
		if b.Branch == nil || !sf.Exec[b.Index] {
			continue // branches in unreachable code are not separate findings
		}
		v := sf.Verdicts[b.Branch] // 0 when undecided
		s := sites[b.Branch.Pos]
		if s == nil {
			sites[b.Branch.Pos] = &site{verdict: v, mixed: v == 0, text: b.Branch.Cond.String()}
			continue
		}
		if v == 0 || v != s.verdict {
			s.mixed = true
		}
	}
	positions := make([]lang.Pos, 0, len(sites))
	for pos := range sites {
		positions = append(positions, pos)
	}
	sort.Slice(positions, func(i, j int) bool {
		a, b := positions[i], positions[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	for _, pos := range positions {
		s := sites[pos]
		if s.mixed {
			continue
		}
		switch s.verdict {
		case 1:
			p.Reportf("CF001", pos, "condition %q is always true; the else branch is unreachable", s.text)
		case -1:
			p.Reportf("CF002", pos, "condition %q is always false; the then branch is unreachable", s.text)
		}
	}
	return nil, nil
}
