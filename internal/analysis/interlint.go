// Interprocedural diagnostics on top of the points-to summaries:
//
//	ND001  possible-nil dereference of a call result
//	LK001  resource obtained from a call, not released on some path
//	DP001  dead parameter / ignored object result
//
// All three read callee behaviour only through FuncSummary — the passes
// themselves stay per-function, so the pass manager's cost model is
// unchanged. The trigger rules are deliberately narrow (each requires a
// summary fact no intraprocedural pass can see) to hold the lint suite's
// false-positive rate on clean code at zero; docs/lint.md records the
// caveats.
package analysis

import (
	"sort"

	"github.com/grapple-system/grapple/internal/fsm"
	"github.com/grapple-system/grapple/internal/ir"
	"github.com/grapple-system/grapple/internal/lang"
)

// NilDeref reports ND001: a variable assigned from a call whose summary
// says "may return null", dereferenced (event or field access) before any
// redefinition or intervening branch. The same-basic-block scope means no
// null check can possibly guard the dereference, so every report is a real
// feasible-path nil dereference under the summary.
var NilDeref = &Analyzer{
	Name:     "nilderef",
	Doc:      "possible-nil dereference through call returns (ND001)",
	Requires: []*Analyzer{Summary},
	Run:      runNilDeref,
}

func runNilDeref(p *Pass) (any, error) {
	sums := p.ResultOf(Summary).(*Summaries)
	// The CFG duplicates try/catch continuations into the normal and
	// exception paths, so one source statement can sit in several blocks;
	// dedupe by statement identity.
	reported := map[ir.Stmt]bool{}
	for _, b := range p.CFG.Blocks {
		// maybeNil maps a variable to the call statement that made it
		// possibly-nil, within this block.
		maybeNil := map[string]*ir.Call{}
		for _, st := range b.Stmts {
			recv, pos := deref(st)
			if recv != "" {
				if c, ok := maybeNil[recv]; ok {
					if !reported[st] {
						reported[st] = true
						p.Reportf("ND001", pos,
							"%q may be null here: %s can return null (declared at line %d) and no check intervenes",
							recv, c.Callee, calleePosLine(p.Prog, c.Callee))
					}
					delete(maybeNil, recv) // one report per poisoned definition
				}
			}
			for _, d := range ir.Defs(st) {
				delete(maybeNil, d)
			}
			if c, ok := st.(*ir.Call); ok && c.Dst != "" && c.DstIsObject {
				if sum := sums.ByName[c.Callee]; sum != nil && sum.MayReturnNull {
					maybeNil[c.Dst] = c
				}
			}
		}
	}
	return nil, nil
}

// deref returns the receiver a statement dereferences, if any.
func deref(st ir.Stmt) (string, lang.Pos) {
	switch st := st.(type) {
	case *ir.Event:
		return st.Recv, st.Pos
	case *ir.Store:
		return st.Recv, st.Pos
	case *ir.Load:
		return st.Recv, st.Pos
	}
	return "", lang.Pos{}
}

func calleePosLine(p *ir.Program, name string) int {
	if fn := p.FunByName[name]; fn != nil {
		return fn.Pos.Line
	}
	return 0
}

// LeakCall reports LK001: a call returns a fresh tracked resource (the
// callee's summary proves sole ownership transfers to this caller), the
// resource's FSM alphabet has release events, and some path from the call
// to function exit performs none of them on the result. Results that
// escape the caller (stored, passed on, returned, copied, thrown) are
// skipped — ownership moved again and a later holder may release.
var LeakCall = &Analyzer{
	Name:     "leakcall",
	Doc:      "call-returned resource not released on some caller path (LK001)",
	Requires: []*Analyzer{Summary},
	Run:      runLeakCall,
}

// releaseAlphabet maps an object type to the FSM events that move a
// non-accepting state into an accepting one — "release" in the typestate
// sense (io close, lock unlock, socket close). Built from the builtin
// property set; a custom property checked via the full pipeline gets the
// same treatment through the checker's slicer, not through lint.
func releaseAlphabet(fsms []*fsm.FSM) map[string]map[string]bool {
	out := map[string]map[string]bool{}
	for _, f := range fsms {
		rel := map[string]bool{}
		for _, ev := range f.Events() {
			for s := 1; s < len(f.States); s++ {
				if !f.IsAccept(s) && f.Step(s, ev) != fsm.ErrorState && f.IsAccept(f.Step(s, ev)) {
					rel[ev] = true
				}
			}
		}
		if len(rel) > 0 {
			out[f.Type] = rel
		}
	}
	return out
}

func runLeakCall(p *Pass) (any, error) {
	sums := p.ResultOf(Summary).(*Summaries)
	release := releaseAlphabet(fsm.Builtins())

	// escaped: call-result variables whose ownership moves on within this
	// function (flow-insensitive over the whole body: any escape anywhere
	// disqualifies the variable).
	escaped := map[string]bool{}
	for _, b := range p.CFG.Blocks {
		for _, st := range b.Stmts {
			switch st := st.(type) {
			case *ir.ObjAssign:
				if st.Src != "" {
					escaped[st.Src] = true
				}
			case *ir.Store:
				escaped[st.Src] = true
			case *ir.Call:
				for _, a := range st.ObjArgs {
					escaped[a.Arg] = true
				}
			case *ir.Return:
				if st.SrcIsObject {
					escaped[st.Src.Var] = true
				}
			}
		}
	}

	// One source statement can sit in several blocks (try/catch continuation
	// duplication); report each leaking call once.
	reported := map[*ir.Call]bool{}
	for bi, b := range p.CFG.Blocks {
		for si, st := range b.Stmts {
			c, ok := st.(*ir.Call)
			if !ok || c.Dst == "" || !c.DstIsObject || escaped[c.Dst] || reported[c] {
				continue
			}
			sum := sums.ByName[c.Callee]
			if sum == nil || !sum.FreshReturn {
				continue
			}
			rel := releaseEventsFor(p.Prog, sums, c.Callee, release)
			if rel == nil {
				continue // not a tracked resource type
			}
			if leakPath(p.CFG, bi, si+1, c.Dst, rel) {
				reported[c] = true
				p.Reportf("LK001", c.Pos,
					"resource returned by %s may never be released: a path to exit performs no release event on %q",
					c.Callee, c.Dst)
			}
		}
	}
	return nil, nil
}

// releaseEventsFor merges the release alphabets of every type the callee
// may return; nil when none of the returned types is tracked.
func releaseEventsFor(p *ir.Program, sums *Summaries, callee string, release map[string]map[string]bool) map[string]bool {
	var out map[string]bool
	for _, typ := range sums.ReturnedTypes(callee) {
		for ev := range release[typ] {
			if out == nil {
				out = map[string]bool{}
			}
			out[ev] = true
		}
	}
	return out
}

// leakPath reports whether some CFG path from (block bi, statement si) to a
// function exit performs no release event on v. A redefinition of v drops
// the handle (that path leaks); an escape was already excluded by the
// caller.
func leakPath(cfg *ir.CFG, bi, si int, v string, release map[string]bool) bool {
	// scan returns +1 when the suffix of block b from statement s releases
	// v, -1 when it redefines v first (leak), 0 when neither.
	scan := func(b *ir.CFGBlock, s int) int {
		for _, st := range b.Stmts[s:] {
			if ev, ok := st.(*ir.Event); ok && ev.Recv == v && release[ev.Method] {
				return 1
			}
			for _, d := range ir.Defs(st) {
				if d == v {
					return -1
				}
			}
		}
		return 0
	}
	switch scan(cfg.Blocks[bi], si) {
	case 1:
		return false
	case -1:
		return true
	}
	// DFS over block successors from the call block's end.
	seen := map[int]bool{}
	var walk func(int) bool
	walk = func(cur int) bool {
		if seen[cur] {
			return false
		}
		seen[cur] = true
		b := cfg.Blocks[cur]
		if len(b.Succs) == 0 {
			return true // reached exit without a release
		}
		for _, nxt := range b.Succs {
			switch scan(cfg.Blocks[nxt], 0) {
			case 1:
				continue
			case -1:
				return true
			}
			if walk(nxt) {
				return true
			}
		}
		return false
	}
	return walk(bi)
}

// DeadParam reports DP001: (a) a function parameter no statement or branch
// condition ever reads, and (b) a call whose object-typed result is
// discarded. Discarded int/bool results are idiomatic (status codes) and
// stay silent.
var DeadParam = &Analyzer{
	Name: "deadparam",
	Doc:  "dead parameters and ignored object results (DP001)",
	Run:  runDeadParam,
}

func runDeadParam(p *Pass) (any, error) {
	used := map[string]bool{}
	for _, b := range p.CFG.Blocks {
		for _, st := range b.Stmts {
			for _, u := range ir.Uses(st) {
				used[u] = true
			}
		}
		if b.Branch != nil {
			for _, u := range ir.CondUses(b.Branch.Cond) {
				used[u] = true
			}
		}
	}
	var dead []string
	for _, prm := range p.Fn.Params {
		if !used[prm.Name] {
			dead = append(dead, prm.Name)
		}
	}
	sort.Strings(dead)
	for _, name := range dead {
		p.Reportf("DP001", p.Fn.Pos, "parameter %q of %s is never used", name, p.Fn.Name)
	}
	reported := map[*ir.Call]bool{}
	for _, b := range p.CFG.Blocks {
		for _, st := range b.Stmts {
			c, ok := st.(*ir.Call)
			if !ok || c.Dst != "" || reported[c] {
				continue
			}
			callee := p.Prog.FunByName[c.Callee]
			if callee != nil && lang.IsObjectType(callee.RetType) {
				reported[c] = true
				p.Reportf("DP001", c.Pos,
					"result of %s (a %s) is ignored", c.Callee, callee.RetType)
			}
		}
	}
	return nil, nil
}
