// MHP-lite: a flow-insensitive may-happen-in-parallel and goroutine-escape
// analysis over spawn-marked calls (lowered `go` statements).
//
// The model is deliberately coarse — the paper's engine is sequential, so
// anything a spawned task does is over-approximated by "its body runs at the
// spawn statement" (the lowering already encodes that). What sequential
// over-approximation loses is *sharing*: an object reachable both from the
// spawner and from a spawned task has two owners whose operations interleave
// arbitrarily. This pass recovers exactly that relation:
//
//   - Spawned: every function that may execute on a spawned task (spawn
//     targets plus their transitive callees) — these may happen in parallel
//     with any code after the spawn.
//   - SharedSites: allocation sites reachable from a spawn call's object
//     arguments (field-closed via the points-to solution) — the
//     goroutine-shared heap.
//
// Consumers: the checker widens typestate verdicts on shared sites (their
// lifetime continues on the spawned task, so "still open at exit" is not
// evidence of a leak), and the GR001/GR002 lint rules read the sharing
// relation directly.
package analysis

import (
	"sort"

	"github.com/grapple-system/grapple/internal/callgraph"
	"github.com/grapple-system/grapple/internal/ir"
)

// MHPFacts is the result of the MHP pass.
type MHPFacts struct {
	// SpawnCount is the number of spawn statements in the program; zero
	// means the whole pass (and every rule gated on it) is inert.
	SpawnCount int
	// Spawned maps each function that may run on a spawned task to true.
	Spawned map[string]bool
	// SharedSites holds the allocation sites that may be reachable from a
	// spawned task's arguments — the goroutine-shared heap.
	SharedSites map[int32]bool
}

// MayRunInParallel reports whether fn's body may execute concurrently with
// its caller's continuation (i.e. fn is reachable from a spawn target).
func (m *MHPFacts) MayRunInParallel(fn string) bool { return m.Spawned[fn] }

// SharedSiteList returns the shared sites in ascending order (for stable
// diagnostics and bench tables).
func (m *MHPFacts) SharedSiteList() []int32 {
	out := make([]int32, 0, len(m.SharedSites))
	for s := range m.SharedSites {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ComputeMHP builds the MHP facts from a points-to solution and call graph;
// the MHP analyzer wraps it, and the checker calls it directly (its pipeline
// runs outside the pass manager).
func ComputeMHP(pts *PointsToResult, cg *callgraph.Graph) *MHPFacts {
	m := &MHPFacts{
		Spawned:     map[string]bool{},
		SharedSites: map[int32]bool{},
	}
	var targets []string
	for fn, spawns := range cg.SpawnSites {
		m.SpawnCount += len(spawns)
		for _, c := range spawns {
			targets = append(targets, c.Callee)
			for _, a := range c.ObjArgs {
				for _, site := range pts.VarPointsTo(fn, a.Arg) {
					if site >= 0 {
						m.SharedSites[site] = true
					}
				}
			}
		}
	}
	if m.SpawnCount == 0 {
		return m
	}
	m.Spawned = cg.Reachable(targets)
	// Anything a spawned function allocates and publishes via a field of a
	// shared object is shared too: close SharedSites over fields.
	pts.fieldClosure(m.SharedSites)
	return m
}

// MHP is the program-scoped pass computing the may-happen-in-parallel and
// goroutine-escape relation; its result is a *MHPFacts. It reports no
// diagnostics itself — GR001, GR002, and the checker consume it.
var MHP = &Analyzer{
	Name:     "mhp",
	Doc:      "may-happen-in-parallel + goroutine-escape relation over spawn calls (no diagnostics)",
	Requires: []*Analyzer{PointsTo},
	ProgramRun: func(p *Pass) (any, error) {
		pts := p.ResultOf(PointsTo).(*PointsToResult)
		return ComputeMHP(pts, p.CG), nil
	},
}

// spawnSitesOf scans a lowered body for spawn-marked calls (the per-function
// GR rules use it so their view matches the call graph's).
func spawnSitesOf(fn *ir.Func) []*ir.Call {
	var out []*ir.Call
	eachStmt(fn.Body, func(st ir.Stmt) {
		if c, ok := st.(*ir.Call); ok && c.Spawn {
			out = append(out, c)
		}
	})
	return out
}
