package grammar

import (
	"fmt"
	"strings"
	"testing"
)

func TestInternStable(t *testing.T) {
	g := New()
	a := g.Intern("assign")
	if g.Intern("assign") != a {
		t.Fatal("intern not stable")
	}
	if g.Lookup("assign") != a {
		t.Fatal("lookup failed")
	}
	if g.Lookup("nope") != NoLabel {
		t.Fatal("lookup of unknown must be NoLabel")
	}
	if g.Name(a) != "assign" {
		t.Fatal("name round trip")
	}
}

func TestPointerGrammarRules(t *testing.T) {
	p := NewPointer([]string{"f", "g"})
	g := p.G
	// VF ::= new (unary).
	heads := g.MatchUnary(p.New)
	if len(heads) != 1 || heads[0] != p.FlowsTo {
		t.Fatalf("unary heads: %v", heads)
	}
	// VF ::= VF assign.
	heads = g.MatchBinary(p.FlowsTo, p.Assign)
	if len(heads) != 1 || heads[0] != p.FlowsTo {
		t.Fatalf("VF assign heads: %v", heads)
	}
	// alias ::= VFbar VF.
	heads = g.MatchBinary(p.Bar, p.FlowsTo)
	if len(heads) != 1 || heads[0] != p.Alias {
		t.Fatalf("alias heads: %v", heads)
	}
	// Field chain: store_f alias -> t1_f ; t1_f load_f -> t2_f ; VF t2_f -> VF.
	t1 := g.MatchBinary(p.Store["f"], p.Alias)
	if len(t1) != 1 {
		t.Fatalf("t1 heads: %v", t1)
	}
	t2 := g.MatchBinary(t1[0], p.Load["f"])
	if len(t2) != 1 {
		t.Fatalf("t2 heads: %v", t2)
	}
	if heads = g.MatchBinary(p.FlowsTo, t2[0]); len(heads) != 1 || heads[0] != p.FlowsTo {
		t.Fatalf("VF t2 heads: %v", heads)
	}
	// Cross-field must NOT match: t1_f load_g.
	if got := g.MatchBinary(t1[0], p.Load["g"]); len(got) != 0 {
		t.Fatalf("cross-field match: %v", got)
	}
	// Mirror.
	if g.Mirror(p.FlowsTo) != p.Bar {
		t.Fatal("flowsTo must mirror to bar")
	}
	if g.Mirror(p.Assign) != NoLabel {
		t.Fatal("assign has no mirror")
	}
	// Finals.
	if !g.IsFinal(p.FlowsTo) || !g.IsFinal(p.Alias) || g.IsFinal(p.New) {
		t.Fatal("final labels wrong")
	}
}

func TestPointerGrammarClosureByHand(t *testing.T) {
	// Simulate the closure on the paper's Fig. 5b graph by hand:
	// object --new--> out2 --assign--> o2, out0 --assign--> out2 ... The
	// engine will do this for real; here we check the grammar drives it.
	p := NewPointer(nil)
	g := p.G
	// new edge: object->out2 becomes flowsTo via unary.
	if got := g.MatchUnary(p.New); len(got) != 1 {
		t.Fatal("new must lift to flowsTo")
	}
	// flowsTo(object,out2) + assign(out2,o2) -> flowsTo(object,o2).
	if got := g.MatchBinary(p.FlowsTo, p.Assign); len(got) != 1 || got[0] != p.FlowsTo {
		t.Fatal("transitive assign broken")
	}
	// bar(out2,object) + flowsTo(object,o2) -> alias(out2,o2).
	if got := g.MatchBinary(p.Bar, p.FlowsTo); len(got) != 1 || got[0] != p.Alias {
		t.Fatal("alias composition broken")
	}
}

func TestDataflowGrammar(t *testing.T) {
	d := NewDataflow()
	if got := d.G.MatchBinary(d.Flow, d.Flow); len(got) != 1 || got[0] != d.Flow {
		t.Fatalf("flow flow -> %v", got)
	}
	if !d.G.IsFinal(d.Flow) {
		t.Fatal("flow must be final")
	}
}

func TestHasLeft(t *testing.T) {
	p := NewPointer([]string{"f"})
	if !p.G.HasLeft(p.FlowsTo) {
		t.Fatal("flowsTo starts productions")
	}
	if p.G.HasLeft(p.Alias) == false {
		// store_f alias is binary with alias on the RIGHT; alias never left?
		// alias is not a left symbol in the pointer grammar.
		t.Skip("alias is right-only; acceptable")
	}
}

func TestInternLabelSpaceExhaustion(t *testing.T) {
	g := New()
	for i := 0; i < int(NoLabel); i++ {
		if l := g.Intern(fmt.Sprintf("l%d", i)); l == NoLabel {
			t.Fatalf("premature exhaustion at %d", i)
		}
	}
	if err := g.Err(); err != nil {
		t.Fatalf("unexpected error before overflow: %v", err)
	}
	if l := g.Intern("overflow-a"); l != NoLabel {
		t.Fatalf("overflow intern returned %d, want NoLabel", l)
	}
	err := g.Err()
	if err == nil {
		t.Fatal("no error after overflow")
	}
	if !strings.Contains(err.Error(), "65535") {
		t.Fatalf("error not sized: %v", err)
	}
	// Sticky: further overflows neither crash nor replace the error.
	if l := g.Intern("overflow-b"); l != NoLabel {
		t.Fatal("second overflow must also return NoLabel")
	}
	if g.Err() != err {
		t.Fatal("error must be sticky")
	}
	// Existing labels still resolve after exhaustion.
	if g.Intern("l7") != g.Lookup("l7") {
		t.Fatal("existing labels must survive exhaustion")
	}
}
