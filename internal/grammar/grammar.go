// Package grammar implements the context-free grammars that guide Grapple's
// dynamic transitive-closure computation (paper §2.1 "Graph Formulation").
//
// Grammars are normalized so every production has at most two right-hand
// symbols (the paper notes any CFG can be binarized, à la Chomsky normal
// form), which is what lets the engine examine one edge pair at a time.
// A label may also declare a mirror: producing an edge x->y with label A
// then also produces y->x with label mirror(A) and the same path encoding —
// this realizes the "bar" edges (flowsTo-bar) of the pointer grammar.
package grammar

import "fmt"

// Label identifies a terminal or nonterminal edge label.
type Label uint16

// NoLabel is an invalid label.
const NoLabel Label = 0xffff

// Grammar is a binarized context-free grammar over edge labels.
type Grammar struct {
	names  []string
	byName map[string]Label

	unary  map[Label][]Label
	binary map[uint32][]Label
	mirror map[Label]Label

	// Final marks labels whose edges are analysis results (e.g. flowsTo,
	// alias); the engine reports counts per final label.
	final map[Label]bool

	// err records label-space exhaustion (sticky); see Err.
	err error
}

// New returns an empty grammar.
func New() *Grammar {
	return &Grammar{
		byName: map[string]Label{},
		unary:  map[Label][]Label{},
		binary: map[uint32][]Label{},
		mirror: map[Label]Label{},
		final:  map[Label]bool{},
	}
}

// Intern returns the label for name, creating it if needed. When the 16-bit
// label space is exhausted it returns NoLabel and records a sized error
// (see Err) instead of crashing mid-run; callers building grammars from
// program-derived names (one store/load pair per distinct field) check Err
// once after construction.
func (g *Grammar) Intern(name string) Label {
	if l, ok := g.byName[name]; ok {
		return l
	}
	l := Label(len(g.names))
	if l == NoLabel {
		if g.err == nil {
			g.err = fmt.Errorf("grammar: label space exhausted: %d labels interned, limit %d; the input declares too many distinct field names for one analysis unit — split the package or reduce tracked fields",
				len(g.names), NoLabel)
		}
		return NoLabel
	}
	g.names = append(g.names, name)
	g.byName[name] = l
	return l
}

// Err reports label-space exhaustion: nil, or one sized error no matter how
// many Intern calls overflowed.
func (g *Grammar) Err() error { return g.err }

// Lookup returns the label for name, or NoLabel.
func (g *Grammar) Lookup(name string) Label {
	if l, ok := g.byName[name]; ok {
		return l
	}
	return NoLabel
}

// Name returns the name of a label.
func (g *Grammar) Name(l Label) string {
	if int(l) < len(g.names) {
		return g.names[l]
	}
	return fmt.Sprintf("label(%d)", l)
}

// NumLabels reports the number of interned labels.
func (g *Grammar) NumLabels() int { return len(g.names) }

// AddUnary adds A ::= B.
func (g *Grammar) AddUnary(a, b Label) { g.unary[b] = append(g.unary[b], a) }

// AddBinary adds A ::= B C.
func (g *Grammar) AddBinary(a, b, c Label) {
	k := binKey(b, c)
	g.binary[k] = append(g.binary[k], a)
}

// SetMirror declares that producing label a also produces rev on the
// reversed edge.
func (g *Grammar) SetMirror(a, rev Label) { g.mirror[a] = rev }

// Mirror returns the mirror label of a, or NoLabel.
func (g *Grammar) Mirror(a Label) Label {
	if m, ok := g.mirror[a]; ok {
		return m
	}
	return NoLabel
}

// SetFinal marks a label as an analysis result.
func (g *Grammar) SetFinal(a Label) { g.final[a] = true }

// IsFinal reports whether a label is an analysis result.
func (g *Grammar) IsFinal(a Label) bool { return g.final[a] }

// MatchBinary returns the heads A with A ::= B C.
func (g *Grammar) MatchBinary(b, c Label) []Label { return g.binary[binKey(b, c)] }

// MatchUnary returns the heads A with A ::= B.
func (g *Grammar) MatchUnary(b Label) []Label { return g.unary[b] }

// HasLeft reports whether any binary production starts with label b; the
// engine uses this to skip edges that can never begin a match.
func (g *Grammar) HasLeft(b Label) bool {
	for k := range g.binary {
		if Label(k>>16) == b {
			return true
		}
	}
	return false
}

func binKey(b, c Label) uint32 { return uint32(b)<<16 | uint32(c) }

// Pointer builds the Sridharan-Bodik pointer-analysis grammar of Fig. 4:
//
//	flowsTo ::= new (assign | store[f] alias load[f])*
//	alias   ::= flowsToBar flowsTo
//
// binarized per field f as:
//
//	VF   ::= new | VF assign | VF T2_f
//	T1_f ::= store_f alias
//	T2_f ::= T1_f load_f
//	AL   ::= VFbar VF
//
// with VFbar the mirror of VF (and newBar the mirror of new so a lone new
// edge already yields a usable reversed leg).
type Pointer struct {
	G       *Grammar
	New     Label
	Assign  Label
	FlowsTo Label
	Bar     Label // flowsToBar
	Alias   Label
	Store   map[string]Label
	Load    map[string]Label
}

// NewPointer builds the pointer grammar over the given field names.
func NewPointer(fields []string) *Pointer {
	g := New()
	p := &Pointer{
		G:      g,
		Store:  map[string]Label{},
		Load:   map[string]Label{},
		New:    g.Intern("new"),
		Assign: g.Intern("assign"),
	}
	p.FlowsTo = g.Intern("flowsTo")
	p.Bar = g.Intern("flowsToBar")
	p.Alias = g.Intern("alias")

	// VF ::= new  — and every VF edge mirrors to VFbar.
	g.AddUnary(p.FlowsTo, p.New)
	g.SetMirror(p.FlowsTo, p.Bar)
	// VF ::= VF assign
	g.AddBinary(p.FlowsTo, p.FlowsTo, p.Assign)
	// AL ::= VFbar VF
	g.AddBinary(p.Alias, p.Bar, p.FlowsTo)

	for _, f := range fields {
		st := g.Intern("store[" + f + "]")
		ld := g.Intern("load[" + f + "]")
		p.Store[f] = st
		p.Load[f] = ld
		t1 := g.Intern("t1[" + f + "]")
		t2 := g.Intern("t2[" + f + "]")
		// T1_f ::= store_f alias ; T2_f ::= T1_f load_f ; VF ::= VF T2_f
		g.AddBinary(t1, st, p.Alias)
		g.AddBinary(t2, t1, ld)
		g.AddBinary(p.FlowsTo, p.FlowsTo, t2)
	}
	g.SetFinal(p.FlowsTo)
	g.SetFinal(p.Alias)
	return p
}

// Dataflow builds the trivial transitive-closure grammar used by the
// dataflow/typestate graph: flow ::= flow flow. Edge composition carries the
// FSM transition relation (handled by the engine's relation hook).
type Dataflow struct {
	G    *Grammar
	Flow Label
}

// NewDataflow builds the dataflow grammar.
func NewDataflow() *Dataflow {
	g := New()
	d := &Dataflow{G: g, Flow: g.Intern("flow")}
	g.AddBinary(d.Flow, d.Flow, d.Flow)
	g.SetFinal(d.Flow)
	return d
}
