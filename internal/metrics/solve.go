package metrics

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// SolveLatencyBuckets are the upper bounds (exclusive) of the SMT solve
// latency histogram; the final bucket is unbounded. Solves are much shorter
// than partition loads, so the bounds sit an order of magnitude below
// LoadLatencyBuckets.
var SolveLatencyBuckets = []time.Duration{
	5 * time.Microsecond,
	10 * time.Microsecond,
	25 * time.Microsecond,
	50 * time.Microsecond,
	100 * time.Microsecond,
	500 * time.Microsecond,
	5 * time.Millisecond,
}

// LatencyCounts is a snapshot of one latency histogram: LatencyCounts[i]
// counts observations under the i-th bucket bound; the last entry is the
// unbounded overflow bucket.
type LatencyCounts [numLatencyBuckets]int64

// Total sums all buckets.
func (c LatencyCounts) Total() int64 {
	var n int64
	for _, v := range c {
		n += v
	}
	return n
}

// Add accumulates another snapshot (merging phases or batch instances).
func (c *LatencyCounts) Add(o LatencyCounts) {
	for i := range c {
		c[i] += o[i]
	}
}

// String renders the histogram against bounds, e.g. "<5µs:12 ... ≥5ms:1",
// omitting empty buckets.
func (c LatencyCounts) String(bounds []time.Duration) string {
	var b strings.Builder
	for i, n := range c {
		if n == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		if i < len(bounds) {
			fmt.Fprintf(&b, "<%s:%d", bounds[i], n)
		} else {
			fmt.Fprintf(&b, "≥%s:%d", bounds[len(bounds)-1], n)
		}
	}
	if b.Len() == 0 {
		return "none"
	}
	return b.String()
}

// SolveHist accumulates SMT solve latencies. Safe for concurrent use: the
// engine's join workers each record their own solver's calls into one
// shared instance.
type SolveHist struct {
	buckets [numLatencyBuckets]atomic.Int64
}

// Observe records one solve of duration d. Bucket bounds are exclusive
// upper bounds, matching IOStats.observeLatency: a solve exactly at a bound
// lands in the next bucket up.
func (h *SolveHist) Observe(d time.Duration) {
	for i, ub := range SolveLatencyBuckets {
		if d < ub {
			h.buckets[i].Add(1)
			return
		}
	}
	h.buckets[numLatencyBuckets-1].Add(1)
}

// Snapshot returns the current totals.
func (h *SolveHist) Snapshot() LatencyCounts {
	var out LatencyCounts
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}
