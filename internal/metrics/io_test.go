package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestIOStatsCounters(t *testing.T) {
	var s IOStats
	s.AddRead(1000, 80*time.Microsecond)
	s.AddRead(2000, 10*time.Millisecond)
	s.AddWrite(500)
	s.AddAppend(50)
	s.CacheHit()
	s.Eviction()
	s.PrefetchIssued()
	s.PrefetchHit(3000, 5*time.Microsecond)
	s.PrefetchStale()
	s.PrefetchWasted()

	got := s.Snapshot()
	if got.BytesRead != 6000 {
		t.Errorf("BytesRead = %d, want 6000", got.BytesRead)
	}
	if got.BytesWritten != 550 {
		t.Errorf("BytesWritten = %d, want 550", got.BytesWritten)
	}
	if got.Loads != 3 || got.CacheHits != 1 || got.Evictions != 1 ||
		got.Writes != 1 || got.Appends != 1 {
		t.Errorf("counter mismatch: %+v", got)
	}
	if got.PrefetchIssued != 1 || got.PrefetchHits != 1 ||
		got.PrefetchStale != 1 || got.PrefetchWasted != 1 {
		t.Errorf("prefetch counters: %+v", got)
	}
	// 5µs and 80µs land in buckets 0 and 1; 10ms in the <25ms bucket.
	if got.LoadLatency[0] != 1 || got.LoadLatency[1] != 1 || got.LoadLatency[6] != 1 {
		t.Errorf("latency histogram: %v", got.LoadLatency)
	}
	if r := got.PrefetchHitRate(); r < 0.33 || r > 0.34 {
		t.Errorf("hit rate = %v, want 1/3", r)
	}
}

func TestIOSnapshotAdd(t *testing.T) {
	a := IOSnapshot{BytesRead: 10, Loads: 2, PrefetchHits: 1}
	a.LoadLatency[3] = 4
	b := IOSnapshot{BytesRead: 5, Loads: 1, Evictions: 7}
	b.LoadLatency[3] = 1
	a.Add(b)
	if a.BytesRead != 15 || a.Loads != 3 || a.Evictions != 7 || a.LoadLatency[3] != 5 {
		t.Errorf("Add: %+v", a)
	}
}

func TestIOSnapshotStrings(t *testing.T) {
	var zero IOSnapshot
	if zero.PrefetchHitRate() != 0 {
		t.Error("zero snapshot must have zero hit rate")
	}
	if zero.LatencyString() != "no loads" {
		t.Errorf("zero latency string: %q", zero.LatencyString())
	}
	var s IOStats
	s.AddRead(1<<20, 200*time.Microsecond)
	s.AddRead(1<<20, 100*time.Millisecond)
	snap := s.Snapshot()
	if out := snap.String(); !strings.Contains(out, "2 loads") {
		t.Errorf("String: %q", out)
	}
	ls := snap.LatencyString()
	if !strings.Contains(ls, "<250µs:1") || !strings.Contains(ls, "≥25ms:1") {
		t.Errorf("LatencyString: %q", ls)
	}
}

func TestIOStatsConcurrent(t *testing.T) {
	var s IOStats
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.AddRead(1, time.Microsecond)
				s.CacheHit()
			}
		}()
	}
	wg.Wait()
	got := s.Snapshot()
	if got.Loads != 8000 || got.CacheHits != 8000 || got.BytesRead != 8000 {
		t.Errorf("concurrent totals: %+v", got)
	}
}
