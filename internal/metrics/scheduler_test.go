package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestSchedStatsLifecycle(t *testing.T) {
	var s SchedStats
	s.Enqueue()
	s.Enqueue()
	s.Enqueue()
	s.Dequeue(2 * time.Second)
	s.Done(4*time.Second, true)
	s.Dequeue(6 * time.Second)
	s.Done(2*time.Second, false)

	snap := s.Snapshot()
	if snap.Enqueued != 3 || snap.Started != 2 || snap.Completed != 1 || snap.Failed != 1 {
		t.Fatalf("counters: %+v", snap)
	}
	if snap.MaxDepth != 3 {
		t.Fatalf("max depth = %d, want 3", snap.MaxDepth)
	}
	if snap.TotalWait != 8*time.Second || snap.MaxWait != 6*time.Second {
		t.Fatalf("wait: total %v max %v", snap.TotalWait, snap.MaxWait)
	}
	if snap.AvgWait() != 4*time.Second {
		t.Fatalf("avg wait = %v, want 4s", snap.AvgWait())
	}
	if snap.TotalRun != 6*time.Second || snap.MaxRun != 4*time.Second || snap.AvgRun() != 3*time.Second {
		t.Fatalf("run: total %v max %v avg %v", snap.TotalRun, snap.MaxRun, snap.AvgRun())
	}
	if snap.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestSchedStatsZeroAverages(t *testing.T) {
	var snap SchedSnapshot
	if snap.AvgWait() != 0 || snap.AvgRun() != 0 {
		t.Fatal("zero-value snapshot must not divide by zero")
	}
}

// TestSchedStatsConcurrent hammers the counters from many goroutines; run
// with -race this checks the atomics are actually race-free, and the totals
// check that no update is lost.
func TestSchedStatsConcurrent(t *testing.T) {
	var s SchedStats
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Enqueue()
				s.Dequeue(time.Millisecond)
				s.Done(time.Millisecond, i%10 != 0)
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	n := int64(workers * per)
	if snap.Enqueued != n || snap.Started != n || snap.Completed+snap.Failed != n {
		t.Fatalf("lost updates: %+v", snap)
	}
	if snap.TotalWait != time.Duration(n)*time.Millisecond {
		t.Fatalf("total wait %v, want %v", snap.TotalWait, time.Duration(n)*time.Millisecond)
	}
	if snap.MaxDepth < 1 || snap.MaxDepth > n {
		t.Fatalf("max depth %d out of range", snap.MaxDepth)
	}
}
