package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSolveHistBucketBoundaries(t *testing.T) {
	// Bounds are exclusive upper bounds: an observation exactly at a bound
	// must land in the next bucket up, not the one the bound names.
	var h SolveHist
	for i, ub := range SolveLatencyBuckets {
		h.Observe(ub - time.Nanosecond) // strictly under → bucket i
		h.Observe(ub)                   // exactly at the bound → bucket i+1
		s := h.Snapshot()
		if s[i] != 1 {
			t.Fatalf("bucket %d after observing bound-1ns: got %d, want 1 (%v)", i, s[i], s)
		}
		if s[i+1] != 1 {
			t.Fatalf("bucket %d after observing exact bound %v: got %d, want 1 (%v)", i+1, ub, s[i+1], s)
		}
		h = SolveHist{}
	}
}

func TestSolveHistOverflowBucket(t *testing.T) {
	var h SolveHist
	last := SolveLatencyBuckets[len(SolveLatencyBuckets)-1]
	h.Observe(last)
	h.Observe(10 * last)
	s := h.Snapshot()
	if got := s[len(s)-1]; got != 2 {
		t.Fatalf("overflow bucket: got %d, want 2 (%v)", got, s)
	}
	if s.Total() != 2 {
		t.Fatalf("total: got %d, want 2", s.Total())
	}
}

func TestSolveHistConcurrent(t *testing.T) {
	// The engine's join workers share one histogram; concurrent Observe
	// calls must not lose counts (and must pass -race).
	var h SolveHist
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(time.Duration(i%200) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Snapshot().Total(); got != workers*perWorker {
		t.Fatalf("total after concurrent observes: got %d, want %d", got, workers*perWorker)
	}
}

func TestLatencyCountsAddAndString(t *testing.T) {
	var a, b LatencyCounts
	a[0], a[3] = 2, 1
	b[0], b[7] = 5, 4
	a.Add(b)
	want := LatencyCounts{7, 0, 0, 1, 0, 0, 0, 4}
	if a != want {
		t.Fatalf("Add: got %v, want %v", a, want)
	}
	if a.Total() != 12 {
		t.Fatalf("Total: got %d, want 12", a.Total())
	}
	s := a.String(SolveLatencyBuckets)
	for _, frag := range []string{"<5µs:7", "<50µs:1", "≥5ms:4"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String: %q missing %q", s, frag)
		}
	}
	if strings.Contains(s, "<10µs") {
		t.Fatalf("String should omit empty buckets: %q", s)
	}
	var empty LatencyCounts
	if got := empty.String(SolveLatencyBuckets); got != "none" {
		t.Fatalf("empty String: got %q, want \"none\"", got)
	}
}

func TestIOStatsLoadLatencyBoundaries(t *testing.T) {
	// observeLatency shares the exclusive-upper-bound convention with
	// SolveHist; pin the same edge behaviour for partition loads.
	var s IOStats
	for i, ub := range LoadLatencyBuckets {
		s.AddRead(1, ub-time.Nanosecond)
		s.AddRead(1, ub)
		snap := s.Snapshot()
		if snap.LoadLatency[i] != 1 || snap.LoadLatency[i+1] != 1 {
			t.Fatalf("bound %v: buckets %v, want 1 at %d and %d", ub, snap.LoadLatency, i, i+1)
		}
		s = IOStats{}
	}
}

func TestSchedStatsMergedAcrossWorkers(t *testing.T) {
	// Every pool worker reports into one SchedStats; the snapshot must
	// reflect the union: summed waits/runs, global maxima, exact counts.
	var s SchedStats
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s.Enqueue()
				s.Dequeue(time.Duration(w+1) * time.Millisecond)
				s.Done(time.Duration(i+1)*time.Microsecond, i%10 != 0)
			}
		}(w)
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.Enqueued != workers*perWorker || snap.Started != workers*perWorker {
		t.Fatalf("enqueued/started: %d/%d, want %d", snap.Enqueued, snap.Started, workers*perWorker)
	}
	if snap.Completed+snap.Failed != workers*perWorker {
		t.Fatalf("completed+failed: %d, want %d", snap.Completed+snap.Failed, workers*perWorker)
	}
	if snap.Failed != workers*perWorker/10 {
		t.Fatalf("failed: %d, want %d", snap.Failed, workers*perWorker/10)
	}
	if snap.MaxWait != time.Duration(workers)*time.Millisecond {
		t.Fatalf("max wait: %v, want %v", snap.MaxWait, time.Duration(workers)*time.Millisecond)
	}
	if snap.MaxRun != perWorker*time.Microsecond {
		t.Fatalf("max run: %v, want %v", snap.MaxRun, perWorker*time.Microsecond)
	}
	var wantWait time.Duration
	for w := 1; w <= workers; w++ {
		wantWait += time.Duration(w) * perWorker * time.Millisecond
	}
	if snap.TotalWait != wantWait {
		t.Fatalf("total wait: %v, want %v", snap.TotalWait, wantWait)
	}
}
