package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// PassBreakdown accumulates wall time and counters per named analysis pass
// (the pre-analysis layer's analogue of Breakdown). Safe for concurrent use.
type PassBreakdown struct {
	mu    sync.Mutex
	times map[string]time.Duration
	runs  map[string]int64
}

// AddPass records one run of a named pass.
func (p *PassBreakdown) AddPass(name string, d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.times == nil {
		p.times = map[string]time.Duration{}
		p.runs = map[string]int64{}
	}
	p.times[name] += d
	p.runs[name]++
}

// PassStat is one pass's accumulated cost.
type PassStat struct {
	Name string
	Time time.Duration
	Runs int64
}

// Passes returns the accumulated per-pass stats sorted by descending time.
func (p *PassBreakdown) Passes() []PassStat {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PassStat, 0, len(p.times))
	for name, d := range p.times {
		out = append(out, PassStat{Name: name, Time: d, Runs: p.runs[name]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time > out[j].Time
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// String renders one line per pass ("name: 1.2ms over 34 runs").
func (p *PassBreakdown) String() string {
	var b strings.Builder
	for _, s := range p.Passes() {
		fmt.Fprintf(&b, "%s: %v over %d runs\n", s.Name, s.Time, s.Runs)
	}
	return b.String()
}

// PruneCounters tracks how much work the pre-analysis removed before the
// expensive phases ran. Safe for concurrent use.
type PruneCounters struct {
	// CondsDecided counts If conditions the pre-analysis proved constant.
	CondsDecided atomic.Int64
	// BranchesPruned counts If arms skipped during CFET construction
	// because their condition was statically decided.
	BranchesPruned atomic.Int64
}

// Snapshot returns the current counter values.
func (p *PruneCounters) Snapshot() (decided, pruned int64) {
	return p.CondsDecided.Load(), p.BranchesPruned.Load()
}
