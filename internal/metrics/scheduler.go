package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// SchedStats accumulates the batch scheduler's queue-depth and latency
// counters (the scheduler-layer analogue of Breakdown). One instance's walk
// through the scheduler is enqueue -> dequeue (a worker picks it up) ->
// done; the counters record how deep the ready queue got, how long
// instances waited for a worker, and how long they ran. Safe for concurrent
// use by all pool workers.
type SchedStats struct {
	enqueued  atomic.Int64
	started   atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64

	depth    atomic.Int64 // current ready-queue depth
	maxDepth atomic.Int64

	waitNs    atomic.Int64 // summed queue wait
	maxWaitNs atomic.Int64
	runNs     atomic.Int64 // summed instance runtime
	maxRunNs  atomic.Int64
}

// Enqueue records an instance entering the ready queue.
func (s *SchedStats) Enqueue() {
	s.enqueued.Add(1)
	d := s.depth.Add(1)
	storeMax(&s.maxDepth, d)
}

// Dequeue records a worker picking an instance up after waiting in queue.
func (s *SchedStats) Dequeue(wait time.Duration) {
	s.started.Add(1)
	s.depth.Add(-1)
	s.waitNs.Add(int64(wait))
	storeMax(&s.maxWaitNs, int64(wait))
}

// Done records an instance finishing; failed covers both analysis errors
// and per-instance timeouts.
func (s *SchedStats) Done(run time.Duration, ok bool) {
	if ok {
		s.completed.Add(1)
	} else {
		s.failed.Add(1)
	}
	s.runNs.Add(int64(run))
	storeMax(&s.maxRunNs, int64(run))
}

// storeMax raises m to v if v is larger (CAS loop; contention is per-batch,
// not per-edge, so this is never hot).
func storeMax(m *atomic.Int64, v int64) {
	for {
		cur := m.Load()
		if v <= cur || m.CompareAndSwap(cur, v) {
			return
		}
	}
}

// SchedSnapshot is a point-in-time view of a batch's scheduler counters.
type SchedSnapshot struct {
	Enqueued  int64
	Started   int64
	Completed int64
	Failed    int64
	MaxDepth  int64

	TotalWait time.Duration
	MaxWait   time.Duration
	TotalRun  time.Duration
	MaxRun    time.Duration
}

// Snapshot returns the current totals.
func (s *SchedStats) Snapshot() SchedSnapshot {
	return SchedSnapshot{
		Enqueued:  s.enqueued.Load(),
		Started:   s.started.Load(),
		Completed: s.completed.Load(),
		Failed:    s.failed.Load(),
		MaxDepth:  s.maxDepth.Load(),
		TotalWait: time.Duration(s.waitNs.Load()),
		MaxWait:   time.Duration(s.maxWaitNs.Load()),
		TotalRun:  time.Duration(s.runNs.Load()),
		MaxRun:    time.Duration(s.maxRunNs.Load()),
	}
}

// AvgWait is the mean queue wait per started instance.
func (s SchedSnapshot) AvgWait() time.Duration {
	if s.Started == 0 {
		return 0
	}
	return s.TotalWait / time.Duration(s.Started)
}

// AvgRun is the mean runtime per finished instance.
func (s SchedSnapshot) AvgRun() time.Duration {
	n := s.Completed + s.Failed
	if n == 0 {
		return 0
	}
	return s.TotalRun / time.Duration(n)
}

// String renders the snapshot on one line.
func (s SchedSnapshot) String() string {
	return fmt.Sprintf("instances %d (ok %d, failed %d) | max queue depth %d | wait avg %v max %v | run avg %v max %v",
		s.Enqueued, s.Completed, s.Failed, s.MaxDepth,
		s.AvgWait().Round(time.Microsecond), s.MaxWait.Round(time.Microsecond),
		s.AvgRun().Round(time.Microsecond), s.MaxRun.Round(time.Microsecond))
}
