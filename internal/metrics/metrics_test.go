package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBreakdownAccumulates(t *testing.T) {
	var b Breakdown
	b.AddIO(10 * time.Millisecond)
	b.AddDecode(20 * time.Millisecond)
	b.AddSolve(30 * time.Millisecond)
	b.AddCompute(40 * time.Millisecond)
	s := b.Snapshot()
	if s.Total() != 100*time.Millisecond {
		t.Fatalf("total = %v", s.Total())
	}
	io, dec, sol, comp := s.Percentages()
	if io != 10 || dec != 20 || sol != 30 || comp != 40 {
		t.Fatalf("percentages: %v %v %v %v", io, dec, sol, comp)
	}
}

func TestEmptyBreakdown(t *testing.T) {
	var b Breakdown
	s := b.Snapshot()
	io, dec, sol, comp := s.Percentages()
	if io != 0 || dec != 0 || sol != 0 || comp != 0 {
		t.Fatal("empty breakdown must be all zeros")
	}
	if s.Total() != 0 {
		t.Fatal("empty total")
	}
}

func TestStringFormat(t *testing.T) {
	var b Breakdown
	b.AddSolve(time.Second)
	out := b.Snapshot().String()
	for _, want := range []string{"I/O", "constraint lookup", "SMT solving", "edge computation", "100.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
}

func TestConcurrentAccumulation(t *testing.T) {
	var b Breakdown
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				b.AddCompute(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := b.Snapshot().Compute; got != 8*1000*time.Microsecond {
		t.Fatalf("compute = %v", got)
	}
}

func TestSince(t *testing.T) {
	start := time.Now()
	if Since(start) < 0 {
		t.Fatal("negative duration")
	}
}
