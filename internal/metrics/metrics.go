// Package metrics accumulates the per-component cost breakdown the paper
// reports in Figure 9: I/O, constraint encoding/decoding ("constraint
// lookup"), SMT solving, and in-memory edge-pair computation. Components run
// concurrently, so times are summed across workers and reported as fractions
// of the summed total, exactly as the paper computes its percentages.
package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Breakdown accumulates nanoseconds per component. Safe for concurrent use.
type Breakdown struct {
	io      atomic.Int64
	decode  atomic.Int64
	solve   atomic.Int64
	compute atomic.Int64
}

// AddIO records disk time.
func (b *Breakdown) AddIO(d time.Duration) { b.io.Add(int64(d)) }

// AddDecode records constraint encoding/decoding time.
func (b *Breakdown) AddDecode(d time.Duration) { b.decode.Add(int64(d)) }

// AddSolve records SMT solving time.
func (b *Breakdown) AddSolve(d time.Duration) { b.solve.Add(int64(d)) }

// AddCompute records edge-pair computation time.
func (b *Breakdown) AddCompute(d time.Duration) { b.compute.Add(int64(d)) }

// Snapshot is a point-in-time view of the breakdown.
type Snapshot struct {
	IO      time.Duration
	Decode  time.Duration
	Solve   time.Duration
	Compute time.Duration
}

// Snapshot returns the current totals.
func (b *Breakdown) Snapshot() Snapshot {
	return Snapshot{
		IO:      time.Duration(b.io.Load()),
		Decode:  time.Duration(b.decode.Load()),
		Solve:   time.Duration(b.solve.Load()),
		Compute: time.Duration(b.compute.Load()),
	}
}

// Total returns the summed component time.
func (s Snapshot) Total() time.Duration { return s.IO + s.Decode + s.Solve + s.Compute }

// Percentages returns the Figure-9 percentages (I/O, decode, solve,
// compute). All zeros when nothing was recorded.
func (s Snapshot) Percentages() (io, decode, solve, compute float64) {
	t := float64(s.Total())
	if t == 0 {
		return 0, 0, 0, 0
	}
	return 100 * float64(s.IO) / t, 100 * float64(s.Decode) / t,
		100 * float64(s.Solve) / t, 100 * float64(s.Compute) / t
}

// String renders the snapshot in Figure-9 form.
func (s Snapshot) String() string {
	io, de, so, co := s.Percentages()
	return fmt.Sprintf("I/O %.1f%% | constraint lookup %.1f%% | SMT solving %.1f%% | edge computation %.1f%%",
		io, de, so, co)
}

// Timer measures one region: defer b.AddIO(Since(t)) style helpers keep call
// sites terse.
func Since(start time.Time) time.Duration { return time.Since(start) }
