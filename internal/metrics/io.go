package metrics

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// LoadLatencyBuckets are the upper bounds (exclusive) of the partition-load
// latency histogram; the final bucket is unbounded. Loads served from the
// prefetcher record their *perceived* latency — the time the join actually
// waited — so the histogram shows prefetch overlap directly.
var LoadLatencyBuckets = []time.Duration{
	50 * time.Microsecond,
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	5 * time.Millisecond,
	25 * time.Millisecond,
}

// numLatencyBuckets includes the overflow bucket.
const numLatencyBuckets = 8

// IOStats accumulates the out-of-core engine's partition I/O counters.
// Safe for concurrent use; the engine shares one instance between the join
// loop and the prefetcher.
type IOStats struct {
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64

	loads     atomic.Int64 // partition loads that hit the disk
	cacheHits atomic.Int64 // loads served from the in-memory LRU cache
	evictions atomic.Int64 // cached partitions written back / dropped
	writes    atomic.Int64 // whole-partition writes (flush, repartition)
	appends   atomic.Int64 // pending-buffer appends to unloaded partitions

	prefetchIssued atomic.Int64 // background loads started
	prefetchHits   atomic.Int64 // loads satisfied by a completed/inflight prefetch
	prefetchStale  atomic.Int64 // prefetches invalidated before use (file changed)
	prefetchWasted atomic.Int64 // prefetches completed but never consumed

	journalAppends atomic.Int64 // checkpoint records made durable
	journalBytes   atomic.Int64 // bytes appended to the run journal

	latency [numLatencyBuckets]atomic.Int64
}

// AddRead records a disk load of n bytes with its perceived latency.
func (s *IOStats) AddRead(n int64, d time.Duration) {
	s.bytesRead.Add(n)
	s.loads.Add(1)
	s.observeLatency(d)
}

// AddWrite records a whole-partition write of n bytes.
func (s *IOStats) AddWrite(n int64) {
	s.bytesWritten.Add(n)
	s.writes.Add(1)
}

// AddAppend records a pending-buffer append of n bytes.
func (s *IOStats) AddAppend(n int64) {
	s.bytesWritten.Add(n)
	s.appends.Add(1)
}

// CacheHit records a load served from the in-memory cache.
func (s *IOStats) CacheHit() { s.cacheHits.Add(1) }

// Eviction records a cached partition leaving memory.
func (s *IOStats) Eviction() { s.evictions.Add(1) }

// PrefetchIssued records a background load being started.
func (s *IOStats) PrefetchIssued() { s.prefetchIssued.Add(1) }

// PrefetchHit records a load satisfied by a prefetch, with the bytes the
// prefetcher read on the join's behalf and the perceived wait.
func (s *IOStats) PrefetchHit(n int64, waited time.Duration) {
	s.prefetchHits.Add(1)
	s.bytesRead.Add(n)
	s.loads.Add(1)
	s.observeLatency(waited)
}

// AddJournal records one checkpoint record of n bytes reaching the run
// journal. Journal traffic is counted separately from partition writes so
// the resume bench can report checkpointing overhead in isolation.
func (s *IOStats) AddJournal(n int64) {
	s.journalAppends.Add(1)
	s.journalBytes.Add(n)
}

// PrefetchStale records a prefetch invalidated before use.
func (s *IOStats) PrefetchStale() { s.prefetchStale.Add(1) }

// PrefetchWasted records a completed prefetch that was never consumed.
func (s *IOStats) PrefetchWasted() { s.prefetchWasted.Add(1) }

func (s *IOStats) observeLatency(d time.Duration) {
	for i, ub := range LoadLatencyBuckets {
		if d < ub {
			s.latency[i].Add(1)
			return
		}
	}
	s.latency[numLatencyBuckets-1].Add(1)
}

// IOSnapshot is a point-in-time view of IOStats. The zero value reads as
// "no I/O".
type IOSnapshot struct {
	BytesRead    int64
	BytesWritten int64

	Loads     int64
	CacheHits int64
	Evictions int64
	Writes    int64
	Appends   int64

	PrefetchIssued int64
	PrefetchHits   int64
	PrefetchStale  int64
	PrefetchWasted int64

	JournalAppends int64
	JournalBytes   int64

	// LoadLatency[i] counts loads under LoadLatencyBuckets[i] (the last
	// bucket is unbounded). Prefetch hits record perceived wait, not disk
	// time.
	LoadLatency [numLatencyBuckets]int64
}

// Snapshot returns the current totals.
func (s *IOStats) Snapshot() IOSnapshot {
	var out IOSnapshot
	out.BytesRead = s.bytesRead.Load()
	out.BytesWritten = s.bytesWritten.Load()
	out.Loads = s.loads.Load()
	out.CacheHits = s.cacheHits.Load()
	out.Evictions = s.evictions.Load()
	out.Writes = s.writes.Load()
	out.Appends = s.appends.Load()
	out.PrefetchIssued = s.prefetchIssued.Load()
	out.PrefetchHits = s.prefetchHits.Load()
	out.PrefetchStale = s.prefetchStale.Load()
	out.PrefetchWasted = s.prefetchWasted.Load()
	out.JournalAppends = s.journalAppends.Load()
	out.JournalBytes = s.journalBytes.Load()
	for i := range out.LoadLatency {
		out.LoadLatency[i] = s.latency[i].Load()
	}
	return out
}

// Add accumulates another snapshot into s (for aggregating phases or batch
// instances).
func (s *IOSnapshot) Add(o IOSnapshot) {
	s.BytesRead += o.BytesRead
	s.BytesWritten += o.BytesWritten
	s.Loads += o.Loads
	s.CacheHits += o.CacheHits
	s.Evictions += o.Evictions
	s.Writes += o.Writes
	s.Appends += o.Appends
	s.PrefetchIssued += o.PrefetchIssued
	s.PrefetchHits += o.PrefetchHits
	s.PrefetchStale += o.PrefetchStale
	s.PrefetchWasted += o.PrefetchWasted
	s.JournalAppends += o.JournalAppends
	s.JournalBytes += o.JournalBytes
	for i := range s.LoadLatency {
		s.LoadLatency[i] += o.LoadLatency[i]
	}
}

// PrefetchHitRate returns the fraction of disk loads satisfied by a
// prefetch, in [0, 1]. Zero when no loads happened.
func (s IOSnapshot) PrefetchHitRate() float64 {
	if s.Loads == 0 {
		return 0
	}
	return float64(s.PrefetchHits) / float64(s.Loads)
}

// String renders the snapshot as one stats line.
func (s IOSnapshot) String() string {
	line := fmt.Sprintf(
		"read %.1f MiB in %d loads (%d cache hits, %d prefetch hits, %.0f%% hit rate) | wrote %.1f MiB in %d writes + %d appends | %d evictions",
		float64(s.BytesRead)/(1<<20), s.Loads, s.CacheHits, s.PrefetchHits,
		100*s.PrefetchHitRate(), float64(s.BytesWritten)/(1<<20), s.Writes,
		s.Appends, s.Evictions)
	if s.JournalAppends > 0 {
		line += fmt.Sprintf(" | journaled %d checkpoints (%.1f KiB)",
			s.JournalAppends, float64(s.JournalBytes)/(1<<10))
	}
	return line
}

// LatencyString renders the load-latency histogram, e.g.
// "<50µs:12 <100µs:3 ... ≥25ms:1", omitting empty buckets.
func (s IOSnapshot) LatencyString() string {
	var b strings.Builder
	for i, n := range s.LoadLatency {
		if n == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		if i < len(LoadLatencyBuckets) {
			fmt.Fprintf(&b, "<%s:%d", LoadLatencyBuckets[i], n)
		} else {
			fmt.Fprintf(&b, "≥%s:%d", LoadLatencyBuckets[len(LoadLatencyBuckets)-1], n)
		}
	}
	if b.Len() == 0 {
		return "no loads"
	}
	return b.String()
}
