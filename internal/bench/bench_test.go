package bench

import (
	"strings"
	"testing"
	"time"
)

func TestTable1Renders(t *testing.T) {
	out := Table1()
	for _, want := range []string{"zookeeper-sim", "hadoop-sim", "hdfs-sim", "hbase-sim", "#LoC"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestMiniSubjectTables(t *testing.T) {
	run, err := RunSubject("mini-sim", RunOptions{WorkDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	runs := []*SubjectRun{run}
	t2 := Table2(runs)
	if !strings.Contains(t2, "mini-sim") {
		t.Errorf("table 2:\n%s", t2)
	}
	t3 := Table3(runs)
	if !strings.Contains(t3, "#EA") || !strings.Contains(t3, "mini-sim") {
		t.Errorf("table 3:\n%s", t3)
	}
	f9 := Figure9(runs)
	if !strings.Contains(f9, "SMT solving") {
		t.Errorf("figure 9:\n%s", f9)
	}
	tot := run.Tally.Totals()
	if tot.TP == 0 {
		t.Fatalf("mini subject found no bugs: %+v", run.Tally)
	}
}

func TestTable4Mini(t *testing.T) {
	out, rows, err := Table4([]string{"mini-sim"}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Constraints == 0 {
		t.Fatalf("rows: %+v", rows)
	}
	if rows[0].Hits == 0 || rows[0].HitRate <= 0 {
		t.Fatalf("cache ineffective: %+v", rows[0])
	}
	if !strings.Contains(out, "TOC") {
		t.Errorf("table 4:\n%s", out)
	}
}

func TestTable5Mini(t *testing.T) {
	out, rows, err := Table5([]string{"mini-sim"}, t.TempDir(), 1<<20, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows: %+v", rows)
	}
	r := rows[0]
	// The naive representation must cost at least as many partitions and
	// more constraint solves (no memoization) — the Table 5 shape.
	if !r.NaiveDNF && r.NaiveConstraints < r.GrappleConstraints {
		t.Errorf("naive should solve more constraints: %+v", r)
	}
	if !strings.Contains(out, "naive") {
		t.Errorf("table 5:\n%s", out)
	}
}

func TestTableOOMMini(t *testing.T) {
	out, err := TableOOM([]string{"mini-sim"}, 64<<10, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "OOM") {
		t.Errorf("traditional implementation should OOM under 1 MiB:\n%s", out)
	}
}

func TestUnknownSubject(t *testing.T) {
	if _, err := RunSubject("nope", RunOptions{}); err == nil {
		t.Fatal("want error for unknown subject")
	}
}

func TestSliceAblationMini(t *testing.T) {
	out, rows, err := SliceAblation([]string{"mini-sim"}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows: %+v", rows)
	}
	r := rows[0]
	if !r.ReportsEqual {
		t.Fatalf("slicing changed a report set: %+v", r)
	}
	if r.FuncsSliced == 0 {
		t.Fatalf("no functions sliced on mini-sim: %+v", r)
	}
	if r.PathsSliced >= r.PathsUnsliced {
		t.Fatalf("slicing did not reduce encoded paths: %+v", r)
	}
	if !strings.Contains(out, "mini-sim") {
		t.Fatalf("table output missing subject:\n%s", out)
	}
}

func TestPruneAblationMini(t *testing.T) {
	out, rows, err := PruneAblation([]string{"mini-sim"}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows: %+v", rows)
	}
	r := rows[0]
	if !r.ReportsEqual {
		t.Fatalf("pruning changed the report set: %+v", r)
	}
	if r.BranchesRemoved == 0 {
		t.Fatalf("no branches pruned on mini-sim: %+v", r)
	}
	if r.PathsPruned >= r.PathsUnpruned {
		t.Fatalf("pruning did not reduce encoded paths: %+v", r)
	}
	if !strings.Contains(out, "mini-sim") || !strings.Contains(out, "equal") {
		t.Errorf("ablation table:\n%s", out)
	}
}

func TestDevirtTableMini(t *testing.T) {
	out, rows, err := DevirtTable([]string{
		"../../testdata/gofront", "../../testdata/ablation",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Resolved") || !strings.Contains(out, "testdata/ablation") {
		t.Errorf("devirt table:\n%s", out)
	}
	corpus, abl := rows[0], rows[1]
	// The corpus has all three devirt outcomes (pinned in gofront's
	// TestDevirtStats); the ablation subject's single site path-splits.
	if corpus.IfaceCalls != 3 || corpus.Resolved <= 0.5 {
		t.Errorf("corpus devirt rate: %+v", corpus)
	}
	if abl.IfaceCalls != 1 || abl.Resolved != 1.0 {
		t.Errorf("ablation devirt rate: %+v", abl)
	}
	for _, r := range rows {
		if r.HavocsOff < r.HavocsOn {
			t.Errorf("%s: ablated lowering has FEWER havocs (%d < %d)", r.Name, r.HavocsOff, r.HavocsOn)
		}
		if r.LintTime <= 0 {
			t.Errorf("%s: no lint timing recorded", r.Name)
		}
	}
	// GR001 must fire on the ablation subject: the spawned worker shares
	// the never-closed file.
	if abl.GRFindings == 0 {
		t.Errorf("ablation subject: no GR findings: %+v", abl)
	}
}
