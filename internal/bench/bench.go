// Package bench regenerates every table and figure of the paper's
// evaluation (§5) over the simulated subjects: Table 1 (subjects), Table 2
// (TP/FP per checker), Table 3 (graph sizes and times), Figure 9 (cost
// breakdown), Table 4 (constraint caching), Table 5 (string-constraint
// naive engine), and the §5.3 traditional-implementation OOM result.
// cmd/grapple-bench and the root benchmarks both drive this package.
package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/grapple-system/grapple/internal/baseline"
	"github.com/grapple-system/grapple/internal/callgraph"
	"github.com/grapple-system/grapple/internal/cfet"
	"github.com/grapple-system/grapple/internal/checker"
	"github.com/grapple-system/grapple/internal/engine"
	"github.com/grapple-system/grapple/internal/fsm"
	"github.com/grapple-system/grapple/internal/grammar"
	"github.com/grapple-system/grapple/internal/ir"
	"github.com/grapple-system/grapple/internal/lang"
	"github.com/grapple-system/grapple/internal/pgraph"
	"github.com/grapple-system/grapple/internal/smt"
	"github.com/grapple-system/grapple/internal/storage"
	"github.com/grapple-system/grapple/internal/symbolic"
	"github.com/grapple-system/grapple/internal/workload"
)

// RunOptions configures one subject analysis.
type RunOptions struct {
	// WorkDir for engine partitions (temp dir when empty).
	WorkDir string
	// MemoryBudget for the engine; small values exercise the out-of-core
	// path (default 8 MiB, which partitions the larger subjects).
	MemoryBudget int64
	// DisableCache turns off constraint memoization (Table 4's "without").
	DisableCache bool
}

// SubjectRun bundles one analyzed subject.
type SubjectRun struct {
	Subject *workload.Subject
	Result  *checker.Result
	Tally   *workload.Tally
	Total   time.Duration
}

// RunSubject generates and analyzes one subject.
func RunSubject(name string, opts RunOptions) (*SubjectRun, error) {
	p, ok := workload.ProfileByName(name)
	if !ok {
		return nil, fmt.Errorf("bench: unknown subject %q", name)
	}
	s := workload.Generate(p)
	workDir := opts.WorkDir
	if workDir == "" {
		dir, err := os.MkdirTemp("", "grapple-bench-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		workDir = dir
	}
	budget := opts.MemoryBudget
	if budget == 0 {
		budget = 8 << 20
	}
	cacheSize := 0
	if opts.DisableCache {
		cacheSize = -1
	}
	c := checker.New(fsm.Builtins(), checker.Options{
		WorkDir: workDir,
		Engine: engine.Options{
			MemoryBudget: budget,
			CacheSize:    cacheSize,
			SolverOpts:   smt.DefaultOptions(),
		},
	})
	start := time.Now()
	res, err := c.CheckSource(s.Source)
	if err != nil {
		return nil, fmt.Errorf("bench: %s: %w", name, err)
	}
	return &SubjectRun{
		Subject: s,
		Result:  res,
		Tally:   workload.Evaluate(s, res.Reports),
		Total:   time.Since(start),
	}, nil
}

// SubjectNames returns the four evaluation subjects in Table order.
func SubjectNames() []string {
	var out []string
	for _, p := range workload.Profiles() {
		out = append(out, p.Name)
	}
	return out
}

// Table1 renders subject characteristics (paper Table 1).
func Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1. Characteristics of subject programs.\n")
	fmt.Fprintf(&b, "%-15s %-12s %8s  %s\n", "Subject", "Version", "#LoC", "Description")
	for _, p := range workload.Profiles() {
		s := workload.Generate(p)
		fmt.Fprintf(&b, "%-15s %-12s %8d  %s\n", s.Name, s.Version, s.LoC, s.Description)
	}
	return b.String()
}

// Table2 renders TP/FP per checker per subject (paper Table 2).
func Table2(runs []*SubjectRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2. Bugs reported per checker (TP = true bugs, FP = false positives).\n")
	fmt.Fprintf(&b, "%-15s %9s %9s %9s %9s %11s\n", "Checker", "I/O", "lock", "except.", "socket", "total")
	fmt.Fprintf(&b, "%-15s %4s %4s %4s %4s %4s %4s %4s %4s %5s %5s\n",
		"", "TP", "FP", "TP", "FP", "TP", "FP", "TP", "FP", "TP", "FP")
	for _, r := range runs {
		pc := r.Tally.PerChecker
		tot := r.Tally.Totals()
		fmt.Fprintf(&b, "%-15s %4d %4d %4d %4d %4d %4d %4d %4d %5d %5d\n",
			r.Subject.Name,
			pc["io"].TP, pc["io"].FP,
			pc["lock"].TP, pc["lock"].FP,
			pc["exception"].TP, pc["exception"].FP,
			pc["socket"].TP, pc["socket"].FP,
			tot.TP, tot.FP)
	}
	return b.String()
}

// Table3 renders graph sizes and running times (paper Table 3): vertices,
// edges before/after computation, preprocessing/computation/total times.
func Table3(runs []*SubjectRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3. Grapple's performance.\n")
	fmt.Fprintf(&b, "%-15s %9s %10s %10s %10s %12s %12s\n",
		"Subject", "#V (K)", "#EB (K)", "#EA (K)", "PT", "CT", "TT")
	for _, r := range runs {
		v := int64(r.Result.Alias.Vertices) + int64(r.Result.Dataflow.Vertices)
		eb := r.Result.Alias.EdgesBefore + r.Result.Dataflow.EdgesBefore
		ea := r.Result.Alias.EdgesAfter + r.Result.Dataflow.EdgesAfter
		fmt.Fprintf(&b, "%-15s %9.1f %10.1f %10.1f %10s %12s %12s\n",
			r.Subject.Name,
			float64(v)/1e3, float64(eb)/1e3, float64(ea)/1e3,
			round(r.Result.GenTime), round(r.Result.ComputeTime), round(r.Total))
	}
	return b.String()
}

// Figure9 renders the per-component cost breakdown (paper Figure 9).
func Figure9(runs []*SubjectRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9. Performance breakdown (%% of summed component time).\n")
	fmt.Fprintf(&b, "%-15s %8s %18s %13s %17s\n",
		"Subject", "I/O", "Constraint lookup", "SMT solving", "Edge computation")
	for _, r := range runs {
		io, dec, sol, comp := r.Result.Breakdown.Percentages()
		fmt.Fprintf(&b, "%-15s %7.1f%% %17.1f%% %12.1f%% %16.1f%%\n",
			r.Subject.Name, io, dec, sol, comp)
	}
	return b.String()
}

// Table4Row is one subject's caching ablation.
type Table4Row struct {
	Subject     string
	Constraints int64
	Hits        int64
	HitRate     float64
	TimeNoCache time.Duration // total constraint-solving time without caching
	TimeCache   time.Duration // with caching
	Saving      float64
}

// Table4 runs each subject twice (cache off/on) and renders the caching
// effectiveness table (paper Table 4).
func Table4(names []string, opts RunOptions) (string, []Table4Row, error) {
	var rows []Table4Row
	for _, name := range names {
		noCacheOpts := opts
		noCacheOpts.DisableCache = true
		noCache, err := RunSubject(name, noCacheOpts)
		if err != nil {
			return "", nil, err
		}
		cacheOpts := opts
		cacheOpts.DisableCache = false
		withCache, err := RunSubject(name, cacheOpts)
		if err != nil {
			return "", nil, err
		}
		lookups := withCache.Result.Alias.CacheLookups + withCache.Result.Dataflow.CacheLookups
		hits := withCache.Result.Alias.CacheHits + withCache.Result.Dataflow.CacheHits
		toc := noCache.Result.Alias.SolveTime + noCache.Result.Dataflow.SolveTime
		twc := withCache.Result.Alias.SolveTime + withCache.Result.Dataflow.SolveTime
		row := Table4Row{
			Subject:     name,
			Constraints: lookups,
			Hits:        hits,
			TimeNoCache: toc,
			TimeCache:   twc,
		}
		if lookups > 0 {
			row.HitRate = float64(hits) / float64(lookups)
		}
		if toc > 0 {
			row.Saving = 1 - float64(twc)/float64(toc)
		}
		rows = append(rows, row)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4. Effectiveness of constraint caching.\n")
	fmt.Fprintf(&b, "%-15s %10s %10s %7s %10s %10s %8s\n",
		"Subject", "#Const.", "#Hits", "Rate", "TOC", "TWC", "Saving")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s %10d %10d %6.1f%% %10s %10s %7.1f%%\n",
			r.Subject, r.Constraints, r.Hits, 100*r.HitRate,
			round(r.TimeNoCache), round(r.TimeCache), 100*r.Saving)
	}
	return b.String(), rows, nil
}

// aliasGraphFor rebuilds a subject's phase-1 alias graph for the baseline
// comparisons.
func aliasGraphFor(name string) (*cfet.ICFET, *pgraph.AliasGraph, error) {
	p, ok := workload.ProfileByName(name)
	if !ok {
		return nil, nil, fmt.Errorf("bench: unknown subject %q", name)
	}
	s := workload.Generate(p)
	prog, err := lang.Parse(s.Source)
	if err != nil {
		return nil, nil, err
	}
	info, err := lang.Resolve(prog)
	if err != nil {
		return nil, nil, err
	}
	irProg, err := ir.Lower(info, ir.Options{})
	if err != nil {
		return nil, nil, err
	}
	cg := callgraph.Build(irProg)
	ic, err := cfet.Build(irProg, symbolic.NewTable(), cfet.Options{})
	if err != nil {
		return nil, nil, err
	}
	pr := pgraph.NewProgram(irProg, cg, ic, pgraph.Options{})
	return ic, pgraph.BuildAlias(pr), nil
}

// Table5Row is one subject's Grapple-vs-naive comparison.
type Table5Row struct {
	Subject                string
	GrapplePartitions      int
	NaivePartitions        int
	GrappleIterations      int64
	NaiveIterations        int64
	GrappleConstraints     int64
	NaiveConstraints       int64
	GrappleTime, NaiveTime time.Duration
	NaiveDNF               bool
}

// Table5 compares the interval-encoding engine against the naive
// string-constraint engine on the path-sensitive alias analysis (paper
// Table 5). NaiveTimeout bounds each naive run (the paper's HBase naive
// run did not finish in 200 hours).
func Table5(names []string, workDir string, memoryBudget int64, naiveTimeout time.Duration) (string, []Table5Row, error) {
	if memoryBudget == 0 {
		memoryBudget = 512 << 10
	}
	if naiveTimeout == 0 {
		naiveTimeout = 2 * time.Minute
	}
	var rows []Table5Row
	for _, name := range names {
		ic, ag, err := aliasGraphFor(name)
		if err != nil {
			return "", nil, err
		}
		dir := workDir
		if dir == "" {
			d, err := os.MkdirTemp("", "grapple-t5-*")
			if err != nil {
				return "", nil, err
			}
			defer os.RemoveAll(d)
			dir = d
		}
		// Grapple engine.
		gStart := time.Now()
		en := engine.New(ic, ag.Ptr.G, engine.Options{
			Dir:          filepath.Join(dir, name+"-grapple"),
			MemoryBudget: memoryBudget,
			SolverOpts:   smt.DefaultOptions(),
		}, nil)
		gStats, err := en.Run(cloneEdges(ag.Edges), ag.NumVerts)
		if err != nil {
			return "", nil, err
		}
		gTime := time.Since(gStart)

		// Naive string engine, same memory budget.
		se := baseline.NewStringEngine(ic, ag.Ptr.G, baseline.StringOptions{
			Dir:          filepath.Join(dir, name+"-naive"),
			MemoryBudget: memoryBudget,
			Timeout:      naiveTimeout,
		})
		nStats, err := se.Run(cloneEdges(ag.Edges), ag.NumVerts)
		if err != nil {
			return "", nil, err
		}
		rows = append(rows, Table5Row{
			Subject:            name,
			GrapplePartitions:  gStats.Partitions,
			NaivePartitions:    nStats.Partitions,
			GrappleIterations:  gStats.Iterations,
			NaiveIterations:    nStats.Iterations,
			GrappleConstraints: gStats.ConstraintsSolved,
			NaiveConstraints:   nStats.Constraints,
			GrappleTime:        gTime,
			NaiveTime:          nStats.Elapsed,
			NaiveDNF:           nStats.TimedOut,
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5. Comparison with the naive string-constraint implementation\n")
	fmt.Fprintf(&b, "(path-sensitive alias analysis; naive timeout %s => DNF).\n", naiveTimeout)
	fmt.Fprintf(&b, "%-15s %18s %18s %20s %22s\n",
		"Subject", "#Partition", "#Iteration", "#Constraint", "Time")
	fmt.Fprintf(&b, "%-15s %8s %9s %8s %9s %9s %10s %10s %11s\n",
		"", "Grapple", "naive", "Grapple", "naive", "Grapple", "naive", "Grapple", "naive")
	for _, r := range rows {
		naiveTime := round(r.NaiveTime)
		if r.NaiveDNF {
			naiveTime = ">" + naiveTime + " DNF"
		}
		fmt.Fprintf(&b, "%-15s %8d %9d %8d %9d %9d %10d %10s %11s\n",
			r.Subject,
			r.GrapplePartitions, r.NaivePartitions,
			r.GrappleIterations, r.NaiveIterations,
			r.GrappleConstraints, r.NaiveConstraints,
			round(r.GrappleTime), naiveTime)
	}
	return b.String(), rows, nil
}

// TableOOM runs the traditional in-memory implementation on each subject's
// full analysis (path-sensitive alias closure, then the dataflow/typestate
// closure with explicit constraint objects) under the given memory budget —
// the same budget under which the disk engine completes. Paper §5.3: the
// traditional approach "could not finish checking any of these programs —
// they all crashed with out-of-memory errors".
func TableOOM(names []string, memoryBudget int64, timeout time.Duration) (string, error) {
	if memoryBudget == 0 {
		memoryBudget = 8 << 20 // the Table-3 engine budget
	}
	if timeout == 0 {
		timeout = 2 * time.Minute
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Traditional (non-systemized) in-memory implementation, %d MiB budget\n", memoryBudget>>20)
	fmt.Fprintf(&b, "(explicit constraint objects on edges; alias phase then dataflow phase):\n")
	fmt.Fprintf(&b, "%-15s %-10s %12s %14s\n", "Subject", "Outcome", "Edges", "Peak bytes")
	for _, name := range names {
		outcome, edges, peak, err := runTraditionalFull(name, memoryBudget, timeout)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-15s %-10s %12d %14d\n", name, outcome, edges, peak)
	}
	return b.String(), nil
}

// runTraditionalFull drives both phases through the traditional baseline,
// using the real engine's phase-1 results to build the phase-2 graph (the
// traditional alias phase rarely survives long enough to provide them).
func runTraditionalFull(name string, budget int64, timeout time.Duration) (string, int64, int64, error) {
	ic, ag, dfEdges, err := graphsFor(name)
	if err != nil {
		return "", 0, 0, err
	}
	var totalEdges, peak int64
	st, runErr := baseline.RunTraditional(ic, ag.Ptr.G, ag.Edges, baseline.TraditionalOptions{
		MemoryBudget: budget, Timeout: timeout,
	})
	totalEdges += st.Edges
	peak += st.PeakBytes
	if st.OOM {
		return "OOM", totalEdges, peak, nil
	}
	if runErr != nil {
		return "DNF", totalEdges, peak, nil
	}
	d := grammar.NewDataflow()
	st2, runErr := baseline.RunTraditional(ic, d.G, dfEdges, baseline.TraditionalOptions{
		MemoryBudget: budget - st.PeakBytes, Timeout: timeout, UseRel: true,
	})
	totalEdges += st2.Edges
	if peak < st.PeakBytes+st2.PeakBytes {
		peak = st.PeakBytes + st2.PeakBytes
	}
	switch {
	case st2.OOM:
		return "OOM", totalEdges, peak, nil
	case runErr != nil:
		return "DNF", totalEdges, peak, nil
	}
	return "finished", totalEdges, peak, nil
}

// graphsFor builds a subject's alias graph and — via a real phase-1 run —
// its dataflow graph.
func graphsFor(name string) (*cfet.ICFET, *pgraph.AliasGraph, []storage.Edge, error) {
	p, ok := workload.ProfileByName(name)
	if !ok {
		return nil, nil, nil, fmt.Errorf("bench: unknown subject %q", name)
	}
	s := workload.Generate(p)
	prog, err := lang.Parse(s.Source)
	if err != nil {
		return nil, nil, nil, err
	}
	info, err := lang.Resolve(prog)
	if err != nil {
		return nil, nil, nil, err
	}
	irProg, err := ir.Lower(info, ir.Options{})
	if err != nil {
		return nil, nil, nil, err
	}
	cg := callgraph.Build(irProg)
	ic, err := cfet.Build(irProg, symbolic.NewTable(), cfet.Options{})
	if err != nil {
		return nil, nil, nil, err
	}
	pr := pgraph.NewProgram(irProg, cg, ic, pgraph.Options{})
	ag := pgraph.BuildAlias(pr)

	dir, err := os.MkdirTemp("", "grapple-oom-*")
	if err != nil {
		return nil, nil, nil, err
	}
	defer os.RemoveAll(dir)
	en := engine.New(ic, ag.Ptr.G, engine.Options{
		Dir: dir, SolverOpts: smt.DefaultOptions(),
	}, nil)
	if _, err := en.Run(cloneEdges(ag.Edges), ag.NumVerts); err != nil {
		return nil, nil, nil, err
	}
	flows := pgraph.AliasResult{
		Flows:    map[pgraph.ObjID][]pgraph.FlowTarget{},
		Pointees: map[pgraph.VarKey]int{},
	}
	varObjs := map[pgraph.VarKey]map[pgraph.ObjID]bool{}
	if err := en.ForEach(func(e *storage.Edge) bool {
		if e.Label != ag.Ptr.FlowsTo {
			return true
		}
		obj, ok := ag.RevObj[e.Src]
		if !ok || int(e.Dst) >= len(ag.RevVar) || ag.RevVar[e.Dst] == nil {
			return true
		}
		vk := *ag.RevVar[e.Dst]
		flows.Flows[obj] = append(flows.Flows[obj], pgraph.FlowTarget{Var: vk, Enc: e.Enc.Clone()})
		if varObjs[vk] == nil {
			varObjs[vk] = map[pgraph.ObjID]bool{}
		}
		varObjs[vk][obj] = true
		return true
	}); err != nil {
		return nil, nil, nil, err
	}
	for vk, objs := range varObjs {
		flows.Pointees[vk] = len(objs)
	}
	builtins := fsm.Builtins()
	fsmFor := func(typ string) *fsm.FSM {
		for _, f := range builtins {
			if f.Type == typ {
				return f
			}
		}
		return nil
	}
	dg := pgraph.BuildDataflow(pr, flows, ag, fsmFor, pgraph.DataflowOptions{})
	return ic, ag, dg.Edges, nil
}

// PruneRow is one subject's constant-driven pruning ablation measurement.
type PruneRow struct {
	Name            string
	PathsPruned     int   // CFET paths encoded with pruning on
	PathsUnpruned   int   // CFET paths encoded with pruning off
	BranchesRemoved int   // branch sites the pre-analysis decided
	EdgesPruned     int64 // alias-closure edges joined with pruning on
	EdgesUnpruned   int64 // alias-closure edges joined with pruning off
	TimePruned      time.Duration
	TimeUnpruned    time.Duration
	ReportsEqual    bool // soundness check: identical report sets
}

// PruneAblation runs each subject with constant-driven infeasible-branch
// pruning on and off and reports the encoded-path reduction. The report
// sets must be identical (pruning only removes statically-decided splits);
// ReportsEqual records that check per subject.
func PruneAblation(names []string, workDir string) (string, []PruneRow, error) {
	var rows []PruneRow
	run := func(name string, mode checker.PruneMode) (*checker.Result, time.Duration, error) {
		p, ok := workload.ProfileByName(name)
		if !ok {
			return nil, 0, fmt.Errorf("bench: unknown subject %q", name)
		}
		s := workload.Generate(p)
		dir, err := os.MkdirTemp(workDir, "prune-*")
		if err != nil {
			return nil, 0, err
		}
		defer os.RemoveAll(dir)
		c := checker.New(fsm.Builtins(), checker.Options{WorkDir: dir, Prune: mode})
		start := time.Now()
		res, err := c.CheckSource(s.Source)
		return res, time.Since(start), err
	}
	renderSet := func(res *checker.Result) map[string]int {
		set := map[string]int{}
		for _, r := range res.Reports {
			set[fmt.Sprintf("%d:%d:%s:%s:%s", r.Pos.Line, r.Pos.Col, r.FSM, r.Kind, r.Type)]++
		}
		return set
	}
	for _, name := range names {
		on, tOn, err := run(name, checker.PruneOn)
		if err != nil {
			return "", nil, err
		}
		off, tOff, err := run(name, checker.PruneOff)
		if err != nil {
			return "", nil, err
		}
		equal := len(on.Reports) == len(off.Reports)
		if equal {
			a, b := renderSet(on), renderSet(off)
			for k, v := range a {
				if b[k] != v {
					equal = false
					break
				}
			}
		}
		rows = append(rows, PruneRow{
			Name:            name,
			PathsPruned:     on.Alias.CFETPaths,
			PathsUnpruned:   off.Alias.CFETPaths,
			BranchesRemoved: on.Alias.PrunedBranches,
			EdgesPruned:     on.Alias.EdgesAfter,
			EdgesUnpruned:   off.Alias.EdgesAfter,
			TimePruned:      tOn,
			TimeUnpruned:    tOff,
			ReportsEqual:    equal,
		})
	}
	var sb strings.Builder
	sb.WriteString("Prune ablation: CFET paths encoded and alias edges joined, with/without\n")
	sb.WriteString("constant-driven pruning\n")
	sb.WriteString(fmt.Sprintf("%-14s %11s %11s %9s %11s %11s %10s %10s %8s\n",
		"Subject", "Paths(on)", "Paths(off)", "Branches",
		"Edges(on)", "Edges(off)", "Time(on)", "Time(off)", "Reports"))
	for _, r := range rows {
		eq := "equal"
		if !r.ReportsEqual {
			eq = "DIFFER"
		}
		sb.WriteString(fmt.Sprintf("%-14s %11d %11d %9d %11d %11d %10s %10s %8s\n",
			r.Name, r.PathsPruned, r.PathsUnpruned, r.BranchesRemoved,
			r.EdgesPruned, r.EdgesUnpruned,
			round(r.TimePruned), round(r.TimeUnpruned), eq))
	}
	return sb.String(), rows, nil
}

// SliceRow is one subject's property-relevance slicing ablation
// measurement, aggregated over per-property runs.
type SliceRow struct {
	Name           string
	PathsSliced    int   // CFET paths encoded with slicing on, summed over properties
	PathsUnsliced  int   // CFET paths encoded with slicing off
	FuncsSliced    int   // function stubs the slicer introduced (summed)
	BranchesSliced int   // branch sites the slicer skipped (summed)
	EdgesSliced    int64 // alias-closure edges joined with slicing on
	EdgesUnsliced  int64 // alias-closure edges joined with slicing off
	TimeSliced     time.Duration
	TimeUnsliced   time.Duration
	ReportsEqual   bool // soundness check: identical report sets per property
}

// SliceAblation runs each subject once per builtin FSM property — the
// deployment the slicer targets: Grapple checks one finite-state property
// at a time, and relevance is computed against that property's event
// alphabet — with slicing on and off, and reports the aggregated
// encoded-path and alias-edge reduction. Report sets must match per
// property; ReportsEqual records that check per subject.
func SliceAblation(names []string, workDir string) (string, []SliceRow, error) {
	var rows []SliceRow
	run := func(src string, f *fsm.FSM, mode checker.SliceMode) (*checker.Result, time.Duration, error) {
		dir, err := os.MkdirTemp(workDir, "slice-*")
		if err != nil {
			return nil, 0, err
		}
		defer os.RemoveAll(dir)
		c := checker.New([]*fsm.FSM{f}, checker.Options{WorkDir: dir, Slice: mode})
		start := time.Now()
		res, err := c.CheckSource(src)
		return res, time.Since(start), err
	}
	renderSet := func(res *checker.Result) map[string]int {
		set := map[string]int{}
		for _, r := range res.Reports {
			set[fmt.Sprintf("%d:%d:%s:%s:%s", r.Pos.Line, r.Pos.Col, r.FSM, r.Kind, r.Type)]++
		}
		return set
	}
	for _, name := range names {
		p, ok := workload.ProfileByName(name)
		if !ok {
			return "", nil, fmt.Errorf("bench: unknown subject %q", name)
		}
		s := workload.Generate(p)
		row := SliceRow{Name: name, ReportsEqual: true}
		for _, f := range fsm.Builtins() {
			on, tOn, err := run(s.Source, f, checker.SliceOn)
			if err != nil {
				return "", nil, err
			}
			off, tOff, err := run(s.Source, f, checker.SliceOff)
			if err != nil {
				return "", nil, err
			}
			a, b := renderSet(on), renderSet(off)
			if len(a) != len(b) {
				row.ReportsEqual = false
			} else {
				for k, v := range a {
					if b[k] != v {
						row.ReportsEqual = false
						break
					}
				}
			}
			row.PathsSliced += on.Alias.CFETPaths
			row.PathsUnsliced += off.Alias.CFETPaths
			row.FuncsSliced += on.Alias.SlicedFunctions
			row.BranchesSliced += on.Alias.SlicedBranches
			row.EdgesSliced += on.Alias.EdgesAfter
			row.EdgesUnsliced += off.Alias.EdgesAfter
			row.TimeSliced += tOn
			row.TimeUnsliced += tOff
		}
		rows = append(rows, row)
	}
	var sb strings.Builder
	sb.WriteString("Slice ablation: CFET paths encoded and alias edges joined per property\n")
	sb.WriteString("(one checker at a time, summed over builtin properties), with/without\n")
	sb.WriteString("property-relevance slicing\n")
	sb.WriteString(fmt.Sprintf("%-14s %11s %11s %6s %8s %11s %11s %10s %10s %8s\n",
		"Subject", "Paths(on)", "Paths(off)", "Funcs", "Branches",
		"Edges(on)", "Edges(off)", "Time(on)", "Time(off)", "Reports"))
	for _, r := range rows {
		eq := "equal"
		if !r.ReportsEqual {
			eq = "DIFFER"
		}
		sb.WriteString(fmt.Sprintf("%-14s %11d %11d %6d %8d %11d %11d %10s %10s %8s\n",
			r.Name, r.PathsSliced, r.PathsUnsliced, r.FuncsSliced, r.BranchesSliced,
			r.EdgesSliced, r.EdgesUnsliced,
			round(r.TimeSliced), round(r.TimeUnsliced), eq))
	}
	return sb.String(), rows, nil
}

func cloneEdges(in []storage.Edge) []storage.Edge {
	out := make([]storage.Edge, len(in))
	copy(out, in)
	return out
}

func round(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return d.Round(time.Second).String()
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	default:
		return d.Round(10 * time.Microsecond).String()
	}
}
