package bench

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/grapple-system/grapple/internal/checker"
	"github.com/grapple-system/grapple/internal/engine"
	"github.com/grapple-system/grapple/internal/faultpoint"
	"github.com/grapple-system/grapple/internal/fsm"
	"github.com/grapple-system/grapple/internal/smt"
	"github.com/grapple-system/grapple/internal/workload"
)

// ResumeRow is one subject's checkpoint/resume measurement.
type ResumeRow struct {
	Subject string
	// WallCold is an unjournaled run; WallJournal the same run checkpointing
	// at every superstep boundary. Overhead is their relative difference.
	WallCold    time.Duration
	WallJournal time.Duration
	// Checkpoints and JournalKiB are the journaled run's record count and
	// total journal traffic across both phases.
	Checkpoints int64
	JournalKiB  float64
	// Boundaries is the total superstep-boundary count; the kill for the
	// resume measurement fires at KillAt (the midpoint).
	Boundaries int
	KillAt     int
	// WallResume is a resumed run picking up after the midpoint kill —
	// frontend regeneration plus the remaining supersteps.
	WallResume time.Duration
}

// OverheadPct is the journaling slowdown relative to the cold run.
func (r ResumeRow) OverheadPct() float64 {
	if r.WallCold <= 0 {
		return 0
	}
	return 100 * (float64(r.WallJournal) - float64(r.WallCold)) / float64(r.WallCold)
}

// ResumeTable measures what per-superstep checkpointing costs and what
// resuming saves, per subject: a cold run, a journaled run (reports must be
// identical — the journal-off ablation), then a run killed at the midpoint
// boundary and resumed (reports must again be identical).
func ResumeTable(names []string, workDir string) (string, []ResumeRow, error) {
	if len(names) == 0 {
		names = SubjectNames()
	}
	var rows []ResumeRow
	for _, name := range names {
		row, err := runResume(name, workDir)
		if err != nil {
			return "", nil, err
		}
		rows = append(rows, row)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Checkpoint/resume under a %d MiB budget (journal every superstep).\n", ioTableBudget>>20)
	fmt.Fprintf(&b, "%-15s %10s %10s %7s %7s %8s %10s %10s\n",
		"Subject", "cold", "journaled", "ovh %", "ckpts", "jnl KiB", "kill at", "resume")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s %10s %10s %7.1f %7d %8.1f %6d/%-3d %10s\n",
			r.Subject, round(r.WallCold), round(r.WallJournal), r.OverheadPct(),
			r.Checkpoints, r.JournalKiB, r.KillAt, r.Boundaries, round(r.WallResume))
	}
	b.WriteString("Reports are byte-identical across cold, journaled, and killed+resumed runs.\n")
	return b.String(), rows, nil
}

// resumeReportKey serializes a report stream for identity comparison.
func resumeReportKey(reports []checker.Report) string {
	var b strings.Builder
	for _, r := range reports {
		fmt.Fprintf(&b, "%s|%s|%d|%s|%s|%v|%s|%s\n",
			r.FSM, r.Type, r.Kind, r.Pos, r.Object, r.States, r.Witness, r.WitnessConstraint)
	}
	return b.String()
}

func resumeCheckerOpts(dir string) checker.Options {
	return checker.Options{
		WorkDir: dir,
		Engine: engine.Options{
			MemoryBudget: ioTableBudget,
			SolverOpts:   smt.DefaultOptions(),
		},
	}
}

func runResume(name, workDir string) (ResumeRow, error) {
	p, ok := workload.ProfileByName(name)
	if !ok {
		return ResumeRow{}, fmt.Errorf("bench: unknown subject %q", name)
	}
	s := workload.Generate(p)
	row := ResumeRow{Subject: s.Name}

	tmp := func(pattern string) (string, func(), error) {
		dir, err := os.MkdirTemp(workDir, pattern)
		if err != nil {
			return "", nil, err
		}
		return dir, func() { os.RemoveAll(dir) }, nil
	}

	// Cold baseline: no journal.
	coldDir, cleanCold, err := tmp("grapple-resume-cold-*")
	if err != nil {
		return row, err
	}
	defer cleanCold()
	start := time.Now()
	cold, err := checker.New(fsm.Builtins(), resumeCheckerOpts(coldDir)).CheckSource(s.Source)
	if err != nil {
		return row, fmt.Errorf("bench: %s: cold: %w", name, err)
	}
	row.WallCold = time.Since(start)
	wantReports := resumeReportKey(cold.Reports)

	// Journaled run: every superstep boundary checkpoints; reports must not
	// change (the journal-off ablation, run in the profitable direction).
	jDir, cleanJ, err := tmp("grapple-resume-jnl-*")
	if err != nil {
		return row, err
	}
	defer cleanJ()
	counter := faultpoint.New()
	jOpts := resumeCheckerOpts(jDir)
	jOpts.Journal = true
	jOpts.Faults = counter
	start = time.Now()
	jres, err := checker.New(fsm.Builtins(), jOpts).CheckSource(s.Source)
	if err != nil {
		return row, fmt.Errorf("bench: %s: journaled: %w", name, err)
	}
	row.WallJournal = time.Since(start)
	row.Checkpoints = jres.Alias.Checkpoints + jres.Dataflow.Checkpoints
	row.JournalKiB = float64(jres.Alias.JournalBytes+jres.Dataflow.JournalBytes) / (1 << 10)
	row.Boundaries = counter.Count(faultpoint.EngineSuperstep)
	if got := resumeReportKey(jres.Reports); got != wantReports {
		return row, fmt.Errorf("bench: %s: journaling changed the reports", name)
	}

	// Kill at the midpoint boundary, then resume.
	row.KillAt = row.Boundaries / 2
	if row.KillAt < 1 {
		row.KillAt = 1
	}
	kDir, cleanK, err := tmp("grapple-resume-kill-*")
	if err != nil {
		return row, err
	}
	defer cleanK()
	killer := faultpoint.New()
	killer.Arm(faultpoint.EngineSuperstep, row.KillAt)
	kOpts := resumeCheckerOpts(kDir)
	kOpts.Journal = true
	kOpts.Faults = killer
	if _, err := checker.New(fsm.Builtins(), kOpts).CheckSource(s.Source); !errors.Is(err, faultpoint.ErrInjected) {
		return row, fmt.Errorf("bench: %s: kill did not fire: %v", name, err)
	}
	rOpts := resumeCheckerOpts(kDir)
	rOpts.Resume = true
	start = time.Now()
	rres, err := checker.New(fsm.Builtins(), rOpts).CheckSource(s.Source)
	if err != nil {
		return row, fmt.Errorf("bench: %s: resume: %w", name, err)
	}
	row.WallResume = time.Since(start)
	if got := resumeReportKey(rres.Reports); got != wantReports {
		return row, fmt.Errorf("bench: %s: resume changed the reports", name)
	}
	return row, nil
}
