package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"github.com/grapple-system/grapple/internal/engine"
	"github.com/grapple-system/grapple/internal/smt"
	"github.com/grapple-system/grapple/internal/storage"
)

// HotpathRow is one subject's hot-path measurement: the v2 decode path with
// the zero-copy block cursor against the legacy stream decoder, and the edge
// join with scratch-buffer pooling against per-superstep allocation.
type HotpathRow struct {
	Subject string `json:"subject"`

	// Decode side: reading the subject's alias-graph edges back from one v2
	// partition file.
	Records           int64   `json:"records"`
	DecodeNsZeroCopy  float64 `json:"decode_ns_per_record_zero_copy"`
	DecodeNsLegacy    float64 `json:"decode_ns_per_record_legacy"`
	AllocsRecZeroCopy float64 `json:"allocs_per_record_zero_copy"`
	AllocsRecLegacy   float64 `json:"allocs_per_record_legacy"`

	// Join side: closing the alias graph with and without buffer pooling.
	InducedEdges   int64         `json:"induced_edges"`
	JoinNsPooled   float64       `json:"join_ns_per_edge_pooled"`
	JoinNsUnpooled float64       `json:"join_ns_per_edge_unpooled"`
	WallPooled     time.Duration `json:"wall_pooled_ns"`
	WallUnpooled   time.Duration `json:"wall_unpooled_ns"`
}

// AllocSaving reports the fractional allocs/record reduction of the
// zero-copy decoder (the number the alloc-budget CI gate checks).
func (r HotpathRow) AllocSaving() float64 {
	if r.AllocsRecLegacy == 0 {
		return 0
	}
	return 1 - r.AllocsRecZeroCopy/r.AllocsRecLegacy
}

// hotpathJoinBudget matches the I/O table's out-of-core budget: small enough
// that the join actually cycles partitions through the pools every
// superstep instead of staying resident.
const hotpathJoinBudget = 4 << 20

// HotpathTable measures both hot paths for the named subjects (default: all
// four profiles). Both comparisons are ablations of semantics-preserving
// optimizations, so each pair of runs must agree on every closure statistic;
// a disagreement fails the table rather than reporting bogus speedups.
func HotpathTable(names []string, workDir string) (string, []HotpathRow, error) {
	if len(names) == 0 {
		names = SubjectNames()
	}
	var rows []HotpathRow
	for _, name := range names {
		row, err := runHotpath(name, workDir)
		if err != nil {
			return "", nil, err
		}
		rows = append(rows, row)
	}

	var b strings.Builder
	b.WriteString("Hot-path ablations: zero-copy v2 decode vs legacy stream decode, pooled vs unpooled join buffers.\n")
	fmt.Fprintf(&b, "%-15s %8s %10s %10s %9s %9s %8s | %9s %12s %12s\n",
		"Subject", "records", "ns/rec zc", "ns/rec leg", "alloc/zc", "alloc/leg", "saving",
		"induced", "ns/join pool", "ns/join none")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s %8d %10.0f %10.0f %9.3f %9.3f %7.0f%% | %9d %12.0f %12.0f\n",
			r.Subject, r.Records, r.DecodeNsZeroCopy, r.DecodeNsLegacy,
			r.AllocsRecZeroCopy, r.AllocsRecLegacy, 100*r.AllocSaving(),
			r.InducedEdges, r.JoinNsPooled, r.JoinNsUnpooled)
	}
	return b.String(), rows, nil
}

func runHotpath(name, workDir string) (HotpathRow, error) {
	ic, ag, err := aliasGraphFor(name)
	if err != nil {
		return HotpathRow{}, err
	}
	row := HotpathRow{Subject: name, Records: int64(len(ag.Edges))}

	dir, err := os.MkdirTemp(workDir, "grapple-hotpath-*")
	if err != nil {
		return HotpathRow{}, err
	}
	defer os.RemoveAll(dir)

	// Decode side: one v2 partition file holding the subject's initial alias
	// edges, read back in both modes.
	path := filepath.Join(dir, "decode.edges")
	if _, err := storage.WritePart(path, ag.Edges, storage.PartInfo{Lo: 0, Hi: ag.NumVerts}); err != nil {
		return HotpathRow{}, err
	}
	zcNs, zcAllocs, err := measureDecode(path, len(ag.Edges), storage.ReadOptions{})
	if err != nil {
		return HotpathRow{}, err
	}
	legNs, legAllocs, err := measureDecode(path, len(ag.Edges), storage.ReadOptions{LegacyDecode: true})
	if err != nil {
		return HotpathRow{}, err
	}
	row.DecodeNsZeroCopy, row.AllocsRecZeroCopy = zcNs, zcAllocs
	row.DecodeNsLegacy, row.AllocsRecLegacy = legNs, legAllocs

	// Join side: close the alias graph with pooling on and off. The two
	// closures must be statistically identical — pooling is an ablation of
	// an allocation strategy, not of the computation.
	run := func(disable bool, sub string) (*engine.Stats, time.Duration, error) {
		en := engine.New(ic, ag.Ptr.G, engine.Options{
			Dir:            filepath.Join(dir, sub),
			MemoryBudget:   hotpathJoinBudget,
			SolverOpts:     smt.DefaultOptions(),
			DisablePooling: disable,
		}, nil)
		start := time.Now()
		st, err := en.Run(cloneEdges(ag.Edges), ag.NumVerts)
		return st, time.Since(start), err
	}
	pooled, pw, err := run(false, "pooled")
	if err != nil {
		return HotpathRow{}, err
	}
	unpooled, uw, err := run(true, "unpooled")
	if err != nil {
		return HotpathRow{}, err
	}
	if pooled.EdgesAfter != unpooled.EdgesAfter ||
		pooled.RejectedUnsat != unpooled.RejectedUnsat ||
		pooled.RejectedConflict != unpooled.RejectedConflict {
		return HotpathRow{}, fmt.Errorf("bench: %s: pooling changed the closure: %+v vs %+v",
			name, pooled, unpooled)
	}
	row.InducedEdges = pooled.EdgesAfter - pooled.EdgesBefore
	row.WallPooled, row.WallUnpooled = pw, uw
	if row.InducedEdges > 0 {
		row.JoinNsPooled = float64(pw.Nanoseconds()) / float64(row.InducedEdges)
		row.JoinNsUnpooled = float64(uw.Nanoseconds()) / float64(row.InducedEdges)
	}
	return row, nil
}

// measureDecode reads path best-of-three in the given mode, returning
// ns/record and allocs/record. Allocation counts come from the runtime's
// Mallocs counter around each pass; the minimum over passes discards GC and
// scheduler noise.
func measureDecode(path string, records int, opt storage.ReadOptions) (nsPerRec, allocsPerRec float64, err error) {
	if records == 0 {
		return 0, 0, nil
	}
	dst := make([]storage.Edge, 0, records)
	// Warmup pass: page cache, dst capacity.
	if dst, _, _, err = storage.ReadPartWith(path, dst[:0], opt); err != nil {
		return 0, 0, err
	}
	bestNs, bestAllocs := float64(0), float64(0)
	var ms runtime.MemStats
	for pass := 0; pass < 3; pass++ {
		runtime.GC()
		runtime.ReadMemStats(&ms)
		before := ms.Mallocs
		start := time.Now()
		if dst, _, _, err = storage.ReadPartWith(path, dst[:0], opt); err != nil {
			return 0, 0, err
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&ms)
		ns := float64(wall.Nanoseconds()) / float64(records)
		allocs := float64(ms.Mallocs-before) / float64(records)
		if pass == 0 || ns < bestNs {
			bestNs = ns
		}
		if pass == 0 || allocs < bestAllocs {
			bestAllocs = allocs
		}
	}
	return bestNs, bestAllocs, nil
}

// WriteHotpathJSON records the table's rows as machine-readable JSON (the
// BENCH_hotpath.json artifact `make bench-hotpath` commits next to
// EXPERIMENTS.md).
func WriteHotpathJSON(path string, rows []HotpathRow) error {
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
