package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"github.com/grapple-system/grapple/internal/checker"
	"github.com/grapple-system/grapple/internal/fsm"
	"github.com/grapple-system/grapple/internal/scheduler"
	"github.com/grapple-system/grapple/internal/workload"
)

// BatchRow is one scheduler configuration's measurement over the full
// subject × property-group cross product.
type BatchRow struct {
	Label     string
	Workers   int
	Shared    bool // one constraint cache shared across every instance
	Wall      time.Duration
	Speedup   float64 // vs the unshared workers=1 baseline
	HitRate   float64 // shared-cache hit rate (0 for the unshared baseline)
	Prepares  int     // frontend + alias closures actually computed
	Reports   int
	Identical bool // merged stream byte-identical to the baseline's
}

// BatchScaling measures batch wall-clock versus worker count over the
// named subjects (default: all four profiles), one checking instance per
// (subject, property) pair. The baseline runs the instances sequentially
// with private per-engine caches — equivalent to launching one grapple
// process per instance. Every other row shares one sharded constraint
// cache across the whole batch; because the alias phase of a subject
// poses identical constraints in each of its property groups, sharing is
// where the speedup comes from even on a single core, and the Identical
// column checks that memoization never changes the merged verdicts.
func BatchScaling(names []string, workDir string) (string, []BatchRow, error) {
	var subjects []scheduler.Subject
	for _, name := range names {
		p, ok := workload.ProfileByName(name)
		if !ok {
			return "", nil, fmt.Errorf("bench: unknown subject %q", name)
		}
		s := workload.Generate(p)
		subjects = append(subjects, scheduler.Subject{Name: s.Name, Source: s.Source})
	}
	instances := scheduler.Expand(subjects, scheduler.GroupPerFSM(fsm.Builtins()), checker.Options{})

	run := func(workers int, shared bool) (*scheduler.BatchResult, time.Duration, error) {
		opts := scheduler.Options{Workers: workers, WorkDir: workDir}
		if !shared {
			opts.CacheSize = -1 // private per-engine caches
		}
		start := time.Now()
		res, err := scheduler.Run(context.Background(), instances, opts)
		if err != nil {
			return nil, 0, err
		}
		if failed := res.Failed(); len(failed) > 0 {
			return nil, 0, fmt.Errorf("bench: instance %s/%s failed: %v",
				failed[0].Subject, failed[0].Group, failed[0].Err)
		}
		return res, time.Since(start), nil
	}
	render := func(res *scheduler.BatchResult) []byte {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for _, r := range res.Reports {
			enc.Encode(r)
		}
		return buf.Bytes()
	}

	base, baseWall, err := run(1, false)
	if err != nil {
		return "", nil, err
	}
	want := render(base)
	rows := []BatchRow{{
		Label: "unshared seq", Workers: 1, Shared: false,
		Wall: baseWall, Speedup: 1, Prepares: base.FrontendPrepares,
		Reports: len(base.Reports), Identical: true,
	}}
	for _, workers := range []int{1, 2, 4, 8} {
		res, wall, err := run(workers, true)
		if err != nil {
			return "", nil, err
		}
		rows = append(rows, BatchRow{
			Label:     fmt.Sprintf("shared w=%d", workers),
			Workers:   workers,
			Shared:    true,
			Wall:      wall,
			Speedup:   baseWall.Seconds() / wall.Seconds(),
			HitRate:   res.CacheHitRate,
			Prepares:  res.FrontendPrepares,
			Reports:   len(res.Reports),
			Identical: bytes.Equal(render(res), want),
		})
	}

	var sb strings.Builder
	sb.WriteString("Batch scaling: wall-clock vs worker count over the\n")
	sb.WriteString(fmt.Sprintf("%d-instance cross product (%d subjects x %d property groups)\n",
		len(instances), len(subjects), len(fsm.Builtins())))
	sb.WriteString(fmt.Sprintf("%-14s %8s %7s %10s %9s %9s %6s %8s %10s\n",
		"Config", "Workers", "Cache", "Wall", "Speedup", "HitRate", "Preps", "Reports", "Identical"))
	for _, r := range rows {
		cache := "private"
		hit := "-"
		if r.Shared {
			cache = "shared"
			hit = fmt.Sprintf("%.1f%%", 100*r.HitRate)
		}
		eq := "yes"
		if !r.Identical {
			eq = "NO"
		}
		sb.WriteString(fmt.Sprintf("%-14s %8d %7s %10s %8.2fx %9s %6d %8d %10s\n",
			r.Label, r.Workers, cache, round(r.Wall), r.Speedup, hit, r.Prepares, r.Reports, eq))
	}
	return sb.String(), rows, nil
}
