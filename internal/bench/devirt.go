package bench

import (
	"fmt"
	"strings"
	"time"

	"github.com/grapple-system/grapple/internal/analysis"
	"github.com/grapple-system/grapple/internal/fsm/packs"
	"github.com/grapple-system/grapple/internal/gofront"
	"github.com/grapple-system/grapple/internal/ir"
	"github.com/grapple-system/grapple/internal/lang"
)

// DevirtRow measures the interface/goroutine precision passes on one Go
// package: how many interface call sites the devirtualizer resolved, what
// the passes bought in lowering coverage (havocs with the passes on vs
// ablated), and what the full lint suite — including the concurrency rules
// GR001/GR002 — costs on the lowered program.
type DevirtRow struct {
	Name        string
	IfaceCalls  int
	IfaceDirect int
	IfaceSplit  int
	IfaceOpen   int
	// Resolved is the resolved-call rate (Direct+Split)/Calls, 0 when the
	// package has no interface call sites.
	Resolved float64
	// HavocsOn/HavocsOff are Stats.Havocs with the passes enabled vs with
	// -nodevirt -nomhp; the delta is coverage the passes recovered.
	HavocsOn  int
	HavocsOff int
	// GRFindings counts GR001/GR002 diagnostics; Findings is the whole
	// suite's total.
	GRFindings int
	Findings   int
	// LintTime is one analysis.Run over the lowered program with the full
	// Default() suite (best of three).
	LintTime time.Duration
}

// devirtPacks are the packs whose rules drive event recognition for the
// table's subjects: the resource packs give GR001 something to track, the
// sync packs give GR002 its guards.
var devirtPacks = []string{"file-handle", "use-after-release", "mutex", "context-cancel"}

// DevirtTable measures devirtualization and the concurrency lint rules over
// real Go packages. Each subject is lowered twice — passes on, passes
// ablated — and the lowered (passes-on) program runs the full lint suite.
func DevirtTable(goDirs []string) (string, []DevirtRow, error) {
	var ps []*packs.Pack
	for _, name := range devirtPacks {
		p, err := packs.Get(name)
		if err != nil {
			return "", nil, err
		}
		ps = append(ps, p)
	}
	rules := packs.MergedRules(ps)

	var rows []DevirtRow
	for _, dir := range goDirs {
		res, err := gofront.LowerPackage(dir, rules)
		if err != nil {
			return "", nil, fmt.Errorf("bench: lower %s: %w", dir, err)
		}
		abl, err := gofront.LowerPackageWith(dir, rules, gofront.Options{NoDevirt: true, NoMHP: true})
		if err != nil {
			return "", nil, fmt.Errorf("bench: lower %s (ablated): %w", dir, err)
		}
		info, err := lang.Resolve(res.Prog)
		if err != nil {
			return "", nil, fmt.Errorf("bench: resolve %s: %w", dir, err)
		}
		prog, err := ir.Lower(info, ir.Options{})
		if err != nil {
			return "", nil, fmt.Errorf("bench: ir %s: %w", dir, err)
		}
		var lintRes *analysis.Result
		best := time.Duration(0)
		for i := 0; i < 3; i++ {
			start := time.Now()
			lr, err := analysis.Run(prog, analysis.Default())
			elapsed := time.Since(start)
			if err != nil {
				return "", nil, fmt.Errorf("bench: lint %s: %w", dir, err)
			}
			if best == 0 || elapsed < best {
				best = elapsed
			}
			lintRes = lr
		}
		gr := 0
		for _, d := range lintRes.Diagnostics {
			if strings.HasPrefix(d.Code, "GR") {
				gr++
			}
		}
		st := res.Stats
		row := DevirtRow{
			Name:        dir,
			IfaceCalls:  st.IfaceCalls,
			IfaceDirect: st.IfaceDirect,
			IfaceSplit:  st.IfaceSplit,
			IfaceOpen:   st.IfaceOpen,
			HavocsOn:    st.Havocs,
			HavocsOff:   abl.Stats.Havocs,
			GRFindings:  gr,
			Findings:    len(lintRes.Diagnostics),
			LintTime:    best,
		}
		if st.IfaceCalls > 0 {
			row.Resolved = float64(st.IfaceDirect+st.IfaceSplit) / float64(st.IfaceCalls)
		}
		rows = append(rows, row)
	}

	var sb strings.Builder
	sb.WriteString("Devirtualization and concurrency lint: real Go packages\n")
	sb.WriteString("(rules from the file-handle/use-after-release/mutex/context-cancel packs)\n")
	sb.WriteString(fmt.Sprintf("%-22s %6s %7s %6s %5s %9s %9s %10s %4s %6s %9s\n",
		"Subject", "Iface", "Direct", "Split", "Open", "Resolved", "Unlow/on", "Unlow/off", "GR", "Diags", "Lint"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-22s %6d %7d %6d %5d %8.1f%% %9d %10d %4d %6d %9s\n",
			r.Name, r.IfaceCalls, r.IfaceDirect, r.IfaceSplit, r.IfaceOpen,
			100*r.Resolved, r.HavocsOn, r.HavocsOff, r.GRFindings, r.Findings, round(r.LintTime)))
	}
	return sb.String(), rows, nil
}
