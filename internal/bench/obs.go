package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/grapple-system/grapple/internal/checker"
	"github.com/grapple-system/grapple/internal/engine"
	"github.com/grapple-system/grapple/internal/fsm"
	"github.com/grapple-system/grapple/internal/smt"
	"github.com/grapple-system/grapple/internal/trace"
	"github.com/grapple-system/grapple/internal/workload"
)

// obsIters is how many times each configuration runs; the minimum wall time
// per configuration is compared, filtering scheduler noise out of an
// overhead measurement that claims single-digit percent.
const obsIters = 3

// ObsRow is one subject's tracing-overhead measurement.
type ObsRow struct {
	Subject string
	// WallOff is the bare pipeline; WallOn the same run with the full
	// observability stack attached: Chrome trace + JSONL stream to disk,
	// progress tracking with a heartbeat goroutine and status.json rewrites.
	// Both are the minimum over obsIters runs.
	WallOff time.Duration
	WallOn  time.Duration
	// Events is the traced run's event count; TraceKiB the Chrome document's
	// on-disk size.
	Events   int
	TraceKiB float64
}

// OverheadPct is the traced run's slowdown relative to the bare run.
func (r ObsRow) OverheadPct() float64 {
	if r.WallOff <= 0 {
		return 0
	}
	return 100 * (float64(r.WallOn) - float64(r.WallOff)) / float64(r.WallOff)
}

// ObsTable measures what the observability layer costs with everything on,
// per subject: reports must be byte-identical between the bare and traced
// configurations (tracing is observation-only), and the overhead is the
// wall-clock delta. The ISSUE-8 budget pins it at <= 2%.
func ObsTable(names []string, workDir string) (string, []ObsRow, error) {
	if len(names) == 0 {
		names = SubjectNames()
	}
	var rows []ObsRow
	for _, name := range names {
		row, err := runObs(name, workDir)
		if err != nil {
			return "", nil, err
		}
		rows = append(rows, row)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Observability overhead under a %d MiB budget (trace + JSONL + progress heartbeat + status.json, best of %d).\n",
		ioTableBudget>>20, obsIters)
	fmt.Fprintf(&b, "%-15s %10s %10s %7s %8s %10s\n",
		"Subject", "bare", "traced", "ovh %", "events", "trace KiB")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s %10s %10s %7.1f %8d %10.1f\n",
			r.Subject, round(r.WallOff), round(r.WallOn), r.OverheadPct(),
			r.Events, r.TraceKiB)
	}
	b.WriteString("Reports are byte-identical with the observability stack on or off.\n")
	return b.String(), rows, nil
}

func obsCheckerOpts(dir string) checker.Options {
	return checker.Options{
		WorkDir: dir,
		Engine: engine.Options{
			MemoryBudget: ioTableBudget,
			SolverOpts:   smt.DefaultOptions(),
		},
	}
}

func runObs(name, workDir string) (ObsRow, error) {
	p, ok := workload.ProfileByName(name)
	if !ok {
		return ObsRow{}, fmt.Errorf("bench: unknown subject %q", name)
	}
	s := workload.Generate(p)
	row := ObsRow{Subject: s.Name}

	var wantReports string
	for i := 0; i < obsIters; i++ {
		dir, err := os.MkdirTemp(workDir, "grapple-obs-off-*")
		if err != nil {
			return row, err
		}
		start := time.Now()
		res, err := checker.New(fsm.Builtins(), obsCheckerOpts(dir)).CheckSource(s.Source)
		wall := time.Since(start)
		os.RemoveAll(dir)
		if err != nil {
			return row, fmt.Errorf("bench: %s: bare: %w", name, err)
		}
		if row.WallOff == 0 || wall < row.WallOff {
			row.WallOff = wall
		}
		wantReports = resumeReportKey(res.Reports)
	}

	for i := 0; i < obsIters; i++ {
		dir, err := os.MkdirTemp(workDir, "grapple-obs-on-*")
		if err != nil {
			return row, err
		}
		wall, err := func() (time.Duration, error) {
			defer os.RemoveAll(dir)
			tracePath := filepath.Join(dir, "trace.json")
			rec, err := trace.Open(tracePath)
			if err != nil {
				return 0, err
			}
			prog := trace.NewProgress()
			stop := prog.Heartbeat(250*time.Millisecond, io.Discard, filepath.Join(dir, "status.json"))
			opts := obsCheckerOpts(dir)
			opts.Trace = rec
			opts.TraceTID = rec.Thread("bench")
			opts.Progress = prog
			start := time.Now()
			res, err := checker.New(fsm.Builtins(), opts).CheckSource(s.Source)
			wall := time.Since(start)
			stop()
			if err != nil {
				return 0, fmt.Errorf("bench: %s: traced: %w", name, err)
			}
			row.Events = rec.EventCount()
			if err := rec.Close(); err != nil {
				return 0, fmt.Errorf("bench: %s: trace close: %w", name, err)
			}
			if fi, err := os.Stat(tracePath); err == nil {
				row.TraceKiB = float64(fi.Size()) / (1 << 10)
			}
			if got := resumeReportKey(res.Reports); got != wantReports {
				return 0, fmt.Errorf("bench: %s: tracing changed the reports", name)
			}
			return wall, nil
		}()
		if err != nil {
			return row, err
		}
		if row.WallOn == 0 || wall < row.WallOn {
			row.WallOn = wall
		}
	}
	return row, nil
}
