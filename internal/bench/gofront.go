package bench

import (
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/grapple-system/grapple/internal/checker"
	"github.com/grapple-system/grapple/internal/engine"
	"github.com/grapple-system/grapple/internal/fsm"
	"github.com/grapple-system/grapple/internal/fsm/packs"
	"github.com/grapple-system/grapple/internal/gofront"
	"github.com/grapple-system/grapple/internal/ir"
	"github.com/grapple-system/grapple/internal/lang"
	"github.com/grapple-system/grapple/internal/smt"
	"github.com/grapple-system/grapple/internal/workload"
)

// GofrontRow is one subject of the synthetic-vs-real-Go comparison.
type GofrontRow struct {
	Name      string
	Mode      string // "synthetic" (workload generator) or "real-go" (gofront)
	Functions int    // lowered functions (synthetic: IR methods)
	Havocs    int    // gofront over-approximated constructs (synthetic: 0)
	Vertices  uint32 // alias-phase graph vertices
	CFETPaths int    // alias-phase encoded CFET paths
	Reports   int
	Time      time.Duration
}

// GofrontTable compares the pipeline's footprint on the synthetic workload
// subjects against a real Go package lowered through the gofront bridge
// (goDir, checked with the file-handle pack). Same engine, same phases;
// only the frontend differs — the table shows real-Go inputs land in the
// same size regime the synthetic profiles were scaled to.
func GofrontTable(names []string, goDir, workDir string) (string, []GofrontRow, error) {
	var rows []GofrontRow

	for _, name := range names {
		p, ok := workload.ProfileByName(name)
		if !ok {
			return "", nil, fmt.Errorf("bench: unknown subject %q", name)
		}
		s := workload.Generate(p)
		dir, err := os.MkdirTemp(workDir, "gofront-*")
		if err != nil {
			return "", nil, err
		}
		c := checker.New(fsm.Builtins(), checker.Options{WorkDir: dir})
		start := time.Now()
		res, err := c.CheckSource(s.Source)
		elapsed := time.Since(start)
		os.RemoveAll(dir)
		if err != nil {
			return "", nil, fmt.Errorf("bench: %s: %w", name, err)
		}
		parsed, err := lang.Parse(s.Source)
		if err != nil {
			return "", nil, err
		}
		rows = append(rows, GofrontRow{
			Name: name, Mode: "synthetic",
			Functions: len(parsed.Funs),
			Vertices:  res.Alias.Vertices,
			CFETPaths: res.Alias.CFETPaths,
			Reports:   len(res.Reports),
			Time:      elapsed,
		})
	}

	pk, err := packs.Get("file-handle")
	if err != nil {
		return "", nil, err
	}
	g, err := gofront.LowerPackage(goDir, pk.Rules)
	if err != nil {
		return "", nil, fmt.Errorf("bench: lower %s: %w", goDir, err)
	}
	info, err := lang.Resolve(g.Prog)
	if err != nil {
		return "", nil, err
	}
	prog, err := ir.Lower(info, ir.Options{})
	if err != nil {
		return "", nil, err
	}
	dir, err := os.MkdirTemp(workDir, "gofront-*")
	if err != nil {
		return "", nil, err
	}
	defer os.RemoveAll(dir)
	// Mirror the Go-mode engine default (see grapple.checkLoweredGo): real
	// Go multiplies call edges per site, so the variant cap is raised.
	c := checker.New([]*fsm.FSM{pk.FSM}, checker.Options{
		WorkDir: dir,
		Engine:  engine.Options{MaxVariants: 32, SolverOpts: smt.DefaultOptions()},
	})
	start := time.Now()
	res, err := c.CheckIR(prog)
	elapsed := time.Since(start)
	if err != nil {
		return "", nil, fmt.Errorf("bench: check %s: %w", goDir, err)
	}
	rows = append(rows, GofrontRow{
		Name: goDir, Mode: "real-go",
		Functions: g.Stats.Functions,
		Havocs:    g.Stats.Havocs,
		Vertices:  res.Alias.Vertices,
		CFETPaths: res.Alias.CFETPaths,
		Reports:   len(res.Reports),
		Time:      elapsed,
	})

	var sb strings.Builder
	sb.WriteString("Gofront bridge: synthetic workload subjects vs a real Go package\n")
	sb.WriteString("(file-handle pack), same engine and phases\n")
	sb.WriteString(fmt.Sprintf("%-22s %-10s %6s %7s %9s %10s %8s %9s\n",
		"Subject", "Mode", "Funcs", "Havocs", "Vertices", "CFETPaths", "Reports", "Time"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-22s %-10s %6d %7d %9d %10d %8d %9s\n",
			r.Name, r.Mode, r.Functions, r.Havocs, r.Vertices, r.CFETPaths,
			r.Reports, round(r.Time)))
	}
	return sb.String(), rows, nil
}
