package bench

import (
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/grapple-system/grapple/internal/checker"
	"github.com/grapple-system/grapple/internal/engine"
	"github.com/grapple-system/grapple/internal/fsm"
	"github.com/grapple-system/grapple/internal/metrics"
	"github.com/grapple-system/grapple/internal/smt"
	"github.com/grapple-system/grapple/internal/workload"
)

// IORow is one (subject, prefetch setting) measurement of the partition
// store's traffic.
type IORow struct {
	Subject  string
	Prefetch bool
	IO       metrics.IOSnapshot
	Wall     time.Duration
}

// ioTableBudget deliberately sits below the default 8 MiB: it forces every
// profile's dataflow phase to split into many partitions so the out-of-core
// path — loads, evictions, pending-buffer appends, and the prefetcher —
// actually runs.
const ioTableBudget = 4 << 20

// IOTable measures the partition store under the out-of-core budget with
// prefetching on and off, for the named subjects (default: all four
// profiles). Prefetching never changes what is computed — the on/off rows
// must agree on everything except who paid for the disk wait.
func IOTable(names []string, workDir string) (string, []IORow, error) {
	if len(names) == 0 {
		names = SubjectNames()
	}
	var rows []IORow
	for _, name := range names {
		for _, prefetch := range []bool{true, false} {
			row, err := runIO(name, workDir, prefetch)
			if err != nil {
				return "", nil, err
			}
			rows = append(rows, row)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Partition-store I/O under a %d MiB budget (prefetch on vs off).\n", ioTableBudget>>20)
	fmt.Fprintf(&b, "%-15s %-9s %9s %7s %7s %8s %8s %9s %10s\n",
		"Subject", "Prefetch", "read MiB", "loads", "cache", "pf hits", "hit %", "evicts", "wall")
	for _, r := range rows {
		onOff := "off"
		if r.Prefetch {
			onOff = "on"
		}
		fmt.Fprintf(&b, "%-15s %-9s %9.1f %7d %7d %8d %8.0f %9d %10s\n",
			r.Subject, onOff,
			float64(r.IO.BytesRead)/(1<<20), r.IO.Loads, r.IO.CacheHits,
			r.IO.PrefetchHits, 100*r.IO.PrefetchHitRate(), r.IO.Evictions,
			round(r.Wall))
	}
	b.WriteString("Perceived load latency (prefetch hits record the join's wait, not the disk's):\n")
	for _, r := range rows {
		onOff := "off"
		if r.Prefetch {
			onOff = "on"
		}
		fmt.Fprintf(&b, "%-15s %-9s %s\n", r.Subject, onOff, r.IO.LatencyString())
	}
	return b.String(), rows, nil
}

func runIO(name, workDir string, prefetch bool) (IORow, error) {
	p, ok := workload.ProfileByName(name)
	if !ok {
		return IORow{}, fmt.Errorf("bench: unknown subject %q", name)
	}
	s := workload.Generate(p)
	dir, err := os.MkdirTemp(workDir, "grapple-io-*")
	if err != nil {
		return IORow{}, err
	}
	defer os.RemoveAll(dir)
	c := checker.New(fsm.Builtins(), checker.Options{
		WorkDir: dir,
		Engine: engine.Options{
			MemoryBudget:    ioTableBudget,
			SolverOpts:      smt.DefaultOptions(),
			DisablePrefetch: !prefetch,
		},
	})
	start := time.Now()
	res, err := c.CheckSource(s.Source)
	if err != nil {
		return IORow{}, fmt.Errorf("bench: %s: %w", name, err)
	}
	io := res.Alias.IO
	io.Add(res.Dataflow.IO)
	return IORow{Subject: s.Name, Prefetch: prefetch, IO: io, Wall: time.Since(start)}, nil
}
