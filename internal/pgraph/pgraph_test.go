package pgraph

import (
	"testing"

	"github.com/grapple-system/grapple/internal/callgraph"
	"github.com/grapple-system/grapple/internal/cfet"
	"github.com/grapple-system/grapple/internal/fsm"
	"github.com/grapple-system/grapple/internal/grammar"
	"github.com/grapple-system/grapple/internal/ir"
	"github.com/grapple-system/grapple/internal/lang"
	"github.com/grapple-system/grapple/internal/storage"
	"github.com/grapple-system/grapple/internal/symbolic"
)

func buildProgram(t *testing.T, src string, opts Options) *Program {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := lang.Resolve(prog)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Lower(info, ir.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cg := callgraph.Build(p)
	ic, err := cfet.Build(p, symbolic.NewTable(), cfet.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return NewProgram(p, cg, ic, opts)
}

func TestContextTreeCloning(t *testing.T) {
	pr := buildProgram(t, `
fun helper() { return; }
fun a() { helper(); return; }
fun b() { helper(); helper(); return; }
fun main() { a(); b(); return; }
`, Options{})
	// main(1) + a(1) + b(1) + helper cloned 3 times = 6 contexts.
	if len(pr.Contexts) != 6 {
		t.Fatalf("contexts = %d, want 6: %+v", len(pr.Contexts), pr.Contexts)
	}
	byMethod := map[string]int{}
	for _, c := range pr.Contexts {
		byMethod[pr.IC.Methods[c.Method].Name]++
	}
	if byMethod["helper"] != 3 {
		t.Fatalf("helper clones = %d, want 3", byMethod["helper"])
	}
}

func TestRecursionSharedContext(t *testing.T) {
	pr := buildProgram(t, `
fun fib(n: int): int {
  if (n < 2) {
    return n;
  }
  return fib(n - 1) + fib(n - 2);
}
fun main() { fib(10); fib(20); return; }
`, Options{})
	shared := 0
	for _, c := range pr.Contexts {
		if c.Shared && pr.IC.Methods[c.Method].Name == "fib" {
			shared++
		}
	}
	if shared != 1 {
		t.Fatalf("recursive fib must have exactly 1 shared clone, got %d", shared)
	}
	// Both call sites in main map to the same shared context.
	var targets []uint32
	for _, call := range pr.CG.CallSites["main"] {
		id, ok := pr.CalleeCtx(pr.Roots[0], call.Site)
		if !ok {
			t.Fatal("missing callee ctx")
		}
		targets = append(targets, id)
	}
	if len(targets) != 2 || targets[0] != targets[1] {
		t.Fatalf("recursive call sites must share a clone: %v", targets)
	}
}

func TestContextBudgetOverflow(t *testing.T) {
	// Deep non-recursive chain with a tiny budget must fall back to shared
	// clones instead of exploding.
	src := ""
	for i := 0; i < 10; i++ {
		callee := "end"
		if i > 0 {
			callee = "f" + string(rune('0'+i-1))
		}
		src = "fun f" + string(rune('0'+i)) + "() { " + callee + "(); " + callee + "(); return; }\n" + src
	}
	src = "fun end() { return; }\n" + src + "fun main() { f9(); return; }\n"
	pr := buildProgram(t, src, Options{MaxContexts: 20})
	if len(pr.Contexts) > 40 {
		t.Fatalf("budget not honored: %d contexts", len(pr.Contexts))
	}
	if pr.ContextOverflow == 0 {
		t.Fatal("expected overflow fallbacks")
	}
}

func TestAliasGraphFigure5bShape(t *testing.T) {
	pr := buildProgram(t, `
type FileWriter;
fun main() {
  var out: FileWriter = null;
  var o: FileWriter = null;
  var x: int = input();
  var y: int = x;
  if (x >= 0) {
    out = new FileWriter();
    o = out;
    y = y - 1;
  } else {
    y = y + 1;
  }
  if (y > 0) {
    out.write();
    o.close();
  }
  return;
}`, Options{})
	ag := BuildAlias(pr)
	if len(ag.Objects) != 1 {
		t.Fatalf("objects: %+v", ag.Objects)
	}
	// The paper's Fig. 5b: a new edge (object->out2), an assign (out2->o2),
	// and artificial assigns like o2->o6 with encoding [2,6].
	var newEdges, assigns, artificial int
	for _, e := range ag.Edges {
		switch e.Label {
		case ag.Ptr.New:
			newEdges++
		case ag.Ptr.Assign:
			assigns++
			if len(e.Enc) == 1 && e.Enc[0].Kind == cfet.KInterval && e.Enc[0].Start != e.Enc[0].End {
				artificial++
			}
		}
	}
	if newEdges != 1 {
		t.Fatalf("new edges = %d", newEdges)
	}
	if artificial == 0 {
		t.Fatal("no artificial cross-block assign edges generated")
	}
	// The o2 -> o6 artificial edge of Fig. 5b: from the alloc node (2) to
	// the true-true node (6).
	found := false
	for _, e := range ag.Edges {
		if e.Label == ag.Ptr.Assign && len(e.Enc) == 1 &&
			e.Enc[0].Start == 2 && e.Enc[0].End == 6 {
			found = true
		}
	}
	if !found {
		t.Fatal("missing the [2,6] artificial edge of Fig. 5b")
	}
}

func TestAliasGraphParamReturnEdges(t *testing.T) {
	pr := buildProgram(t, `
type R;
fun make(): R {
  var r: R = new R();
  return r;
}
fun use(x: R) { return; }
fun main() {
  var a: R = make();
  use(a);
  return;
}`, Options{})
	ag := BuildAlias(pr)
	var callEncs, retEncs int
	for _, e := range ag.Edges {
		if len(e.Enc) == 1 {
			switch e.Enc[0].Kind {
			case cfet.KCall:
				callEncs++
			case cfet.KRet:
				retEncs++
			}
		}
	}
	if callEncs == 0 {
		t.Fatal("no parameter-passing edges")
	}
	if retEncs == 0 {
		t.Fatal("no value-return edges")
	}
}

func TestDataflowGraphBasics(t *testing.T) {
	pr := buildProgram(t, `
type FileWriter;
fun main() {
  var w: FileWriter = new FileWriter();
  w.close();
  return;
}`, Options{})
	ag := BuildAlias(pr)
	// Hand-construct the alias result as the checker would: w flows from
	// the object definitively everywhere it appears.
	flows := AliasResult{Flows: map[ObjID][]FlowTarget{}, Pointees: map[VarKey]int{}}
	obj := ag.Objects[0]
	for vk := range ag.VarVert {
		if vk.Name == "w" {
			flows.Flows[obj.ID] = append(flows.Flows[obj.ID], FlowTarget{Var: vk})
			flows.Pointees[vk] = 1
		}
	}
	io := fsm.BuiltinIO()
	dg := BuildDataflow(pr, flows, ag, func(typ string) *fsm.FSM {
		if typ == "FileWriter" {
			return io
		}
		return nil
	}, DataflowOptions{})
	if len(dg.Tracked) != 1 {
		t.Fatalf("tracked = %d", len(dg.Tracked))
	}
	if len(dg.Edges) == 0 {
		t.Fatal("no dataflow edges")
	}
	// Exactly one edge carries the "new" relation out of the source.
	tr := dg.Tracked[0]
	var fromSource int
	for _, e := range dg.Edges {
		if e.Src == tr.Source {
			fromSource++
			if e.Rel != fsm.EventRel(io, "new") {
				t.Fatal("source edge must carry the new relation")
			}
		}
	}
	if fromSource != 1 {
		t.Fatalf("source out-edges = %d", fromSource)
	}
}

func TestDataflowUntypedObjectsSkipped(t *testing.T) {
	pr := buildProgram(t, `
type Plain;
fun main() {
  var p: Plain = new Plain();
  return;
}`, Options{})
	ag := BuildAlias(pr)
	dg := BuildDataflow(pr, AliasResult{Flows: map[ObjID][]FlowTarget{}, Pointees: map[VarKey]int{}},
		ag, func(string) *fsm.FSM { return nil }, DataflowOptions{})
	if len(dg.Tracked) != 0 || len(dg.Edges) != 0 {
		t.Fatalf("untracked type produced a graph: %d tracked", len(dg.Tracked))
	}
}

func TestFindCallEdgeWalksAncestors(t *testing.T) {
	pr := buildProgram(t, `
type E;
fun risky() { throw new E(); }
fun main() {
  try {
    risky();
  } catch (e) {
    return;
  }
  return;
}`, Options{})
	m := pr.Method(pr.Roots[0])
	// The CatchBind lives in the true child of the call node; findCallEdge
	// must locate the call edge by walking up.
	var checked bool
	for node, n := range m.Nodes {
		for _, ps := range n.Stmts {
			if cb, ok := ps.Stmt.(*ir.CatchBind); ok && cb.FromCall >= 0 {
				if ce := findCallEdge(m, node, cb.FromCall); ce < 0 {
					t.Fatal("findCallEdge failed")
				}
				checked = true
			}
		}
	}
	if !checked {
		t.Fatal("no CatchBind found")
	}
}

func TestAliasEdgesHaveValidVertices(t *testing.T) {
	pr := buildProgram(t, `
type R;
fun id(x: R): R { return x; }
fun main() {
  var a: R = new R();
  var b: R = id(a);
  b.use();
  return;
}`, Options{})
	ag := BuildAlias(pr)
	for _, e := range ag.Edges {
		if e.Src >= ag.NumVerts || e.Dst >= ag.NumVerts {
			t.Fatalf("edge %v out of vertex range %d", e, ag.NumVerts)
		}
	}
	// Reverse tables must be consistent.
	if len(ag.RevVar) != int(ag.NumVerts) {
		t.Fatalf("revvar len %d != %d", len(ag.RevVar), ag.NumVerts)
	}
	for v, o := range ag.RevObj {
		if ag.RevVar[v] != nil {
			t.Fatalf("vertex %d is both var and obj %v", v, o)
		}
	}
}

var _ = storage.Edge{} // used via ag.Edges type

func TestGrammarLabelsAgree(t *testing.T) {
	pr := buildProgram(t, `
type R;
fun main() {
  var a: R = new R();
  var b: R = a;
  var c: Box = new Box();
  c.f = b;
  var d: R = c.f;
  return;
}
type Box;`, Options{})
	ag := BuildAlias(pr)
	var stores, loads int
	for _, e := range ag.Edges {
		switch e.Label {
		case ag.Ptr.Store["f"]:
			stores++
		case ag.Ptr.Load["f"]:
			loads++
		}
	}
	if stores != 1 || loads != 1 {
		t.Fatalf("store/load edges: %d/%d", stores, loads)
	}
	if ag.Ptr.G.NumLabels() == 0 {
		t.Fatal("grammar empty")
	}
	_ = grammar.NoLabel
}

func TestDataflowSummaryEdgesCarryCallStructure(t *testing.T) {
	// An irrelevant int-returning callee contributes {(c [0,leaf] )c}
	// identity edges so its return equation survives.
	pr := buildProgram(t, `
type R;
fun pick(n: int): int {
  if (n >= 0) {
    return 1;
  }
  return 0;
}
fun main() {
  var r: R = new R();
  var f: int = pick(input());
  if (f > 0) {
    r.use();
  }
  return;
}`, Options{})
	ag := BuildAlias(pr)
	flows := AliasResult{Flows: map[ObjID][]FlowTarget{}, Pointees: map[VarKey]int{}}
	obj := ag.Objects[0]
	for vk := range ag.VarVert {
		if vk.Name == "r" {
			flows.Flows[obj.ID] = append(flows.Flows[obj.ID], FlowTarget{Var: vk})
			flows.Pointees[vk] = 1
		}
	}
	io := fsm.BuiltinIO()
	dg := BuildDataflow(pr, flows, ag, func(typ string) *fsm.FSM {
		if typ == "R" {
			return io
		}
		return nil
	}, DataflowOptions{})
	summary := 0
	for _, e := range dg.Edges {
		hasCall, hasRet := false, false
		for _, el := range e.Enc {
			if el.Kind == cfet.KCall {
				hasCall = true
			}
			if el.Kind == cfet.KRet {
				hasRet = true
			}
		}
		if hasCall && hasRet {
			summary++
		}
	}
	// pick has two return leaves: two summary edges per call instance.
	if summary < 2 {
		t.Fatalf("want >=2 summary edges, got %d", summary)
	}
}

func TestDataflowSkipsOverBudgetObjects(t *testing.T) {
	pr := buildProgram(t, `
type R;
fun use(r: R) { r.touch(); return; }
fun a(r: R) { use(r); return; }
fun b(r: R) { use(r); return; }
fun main() {
  var r: R = new R();
  a(r);
  b(r);
  return;
}`, Options{})
	ag := BuildAlias(pr)
	flows := AliasResult{Flows: map[ObjID][]FlowTarget{}, Pointees: map[VarKey]int{}}
	obj := ag.Objects[0]
	for vk := range ag.VarVert {
		flows.Flows[obj.ID] = append(flows.Flows[obj.ID], FlowTarget{Var: vk})
		flows.Pointees[vk] = 1
	}
	io := fsm.BuiltinIO()
	fsmFor := func(typ string) *fsm.FSM {
		if typ == "R" {
			return io
		}
		return nil
	}
	dg := BuildDataflow(pr, flows, ag, fsmFor, DataflowOptions{MaxCtxsPerObject: 1})
	if dg.SkippedObjects != 1 || len(dg.Tracked) != 0 {
		t.Fatalf("budget not enforced: skipped=%d tracked=%d", dg.SkippedObjects, len(dg.Tracked))
	}
	// Generous budget tracks it.
	dg2 := BuildDataflow(pr, flows, ag, fsmFor, DataflowOptions{})
	if len(dg2.Tracked) != 1 {
		t.Fatalf("object not tracked under default budget")
	}
}
