package pgraph

import (
	"sort"

	"github.com/grapple-system/grapple/internal/cfet"
	"github.com/grapple-system/grapple/internal/grammar"
	"github.com/grapple-system/grapple/internal/ir"
	"github.com/grapple-system/grapple/internal/storage"
)

// VarKey identifies a variable-instance vertex: per the paper (§4.1), a
// separate vertex exists for each variable in each extended basic block it
// appears in, per clone.
type VarKey struct {
	Ctx  uint32
	Node uint64
	Name string
}

// AliasGraph is the program graph for the pointer/alias analysis.
type AliasGraph struct {
	Ptr *grammar.Pointer

	VarVert map[VarKey]uint32
	ObjVert map[ObjID]uint32
	// RevVar maps vertex IDs back to variable instances (for event
	// attribution and reporting); nil entries are object vertices.
	RevVar []*VarKey
	RevObj map[uint32]ObjID

	Edges   []storage.Edge
	Objects []ObjInfo
	// NumVerts sizes the engine's vertex space.
	NumVerts uint32

	objSeen map[ObjID]bool
	// appearances collects, per context, the nodes each variable occurs in.
	appearances map[VarKey]bool
}

// BuildAlias generates the alias program graph for all contexts.
func BuildAlias(pr *Program) *AliasGraph {
	fields := collectFields(pr.IR)
	ag := &AliasGraph{
		Ptr:         grammar.NewPointer(fields),
		VarVert:     map[VarKey]uint32{},
		ObjVert:     map[ObjID]uint32{},
		RevObj:      map[uint32]ObjID{},
		objSeen:     map[ObjID]bool{},
		appearances: map[VarKey]bool{},
	}
	for ctx := range pr.Contexts {
		ag.buildCtx(pr, uint32(ctx))
	}
	ag.addArtificialEdges(pr)
	return ag
}

func collectFields(p *ir.Program) []string {
	set := map[string]bool{}
	var walk func(b *ir.Block)
	walk = func(b *ir.Block) {
		for _, s := range b.Stmts {
			switch s := s.(type) {
			case *ir.Store:
				set[s.Field] = true
			case *ir.Load:
				set[s.Field] = true
			case *ir.If:
				walk(s.Then)
				walk(s.Else)
			}
		}
	}
	for _, fn := range p.Funs {
		walk(fn.Body)
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

func (ag *AliasGraph) varVert(k VarKey) uint32 {
	if v, ok := ag.VarVert[k]; ok {
		return v
	}
	v := ag.NumVerts
	ag.NumVerts++
	ag.VarVert[k] = v
	kk := k
	ag.RevVar = append(ag.RevVar, &kk)
	return v
}

func (ag *AliasGraph) objVert(o ObjID) uint32 {
	if v, ok := ag.ObjVert[o]; ok {
		return v
	}
	v := ag.NumVerts
	ag.NumVerts++
	ag.ObjVert[o] = v
	ag.RevVar = append(ag.RevVar, nil)
	ag.RevObj[v] = o
	return v
}

// appear registers that a variable occurs in a node (for artificial edges
// and event attribution) and returns its vertex.
func (ag *AliasGraph) appear(ctx uint32, node uint64, name string) uint32 {
	k := VarKey{Ctx: ctx, Node: node, Name: name}
	ag.appearances[k] = true
	return ag.varVert(k)
}

func (ag *AliasGraph) edge(src, dst uint32, label grammar.Label, enc cfet.Enc) {
	ag.Edges = append(ag.Edges, storage.Edge{Src: src, Dst: dst, Label: label, Enc: enc})
}

func here(m cfet.MethodID, n uint64) cfet.Enc {
	return cfet.Enc{cfet.Interval(m, n, n)}
}

// buildCtx emits Fig. 4 edges for every statement instance in one clone.
func (ag *AliasGraph) buildCtx(pr *Program, ctx uint32) {
	m := pr.Method(ctx)
	// Formal parameters of object type appear at the root block.
	fn := m.Fn
	for _, p := range fn.Params {
		if p.Type != "int" && p.Type != "bool" {
			ag.appear(ctx, 0, p.Name)
		}
	}
	for _, node := range sortedNodes(m) {
		n := m.Nodes[node]
		for _, ps := range n.Stmts {
			switch s := ps.Stmt.(type) {
			case *ir.NewObj:
				o := ObjID{Ctx: ctx, Site: s.Site}
				ov := ag.objVert(o)
				if !ag.objSeen[o] {
					ag.objSeen[o] = true
					ag.Objects = append(ag.Objects, ObjInfo{
						ID: o, Type: s.Type, Pos: s.Pos, Node: node,
					})
				}
				dv := ag.appear(ctx, node, s.Dst)
				ag.edge(ov, dv, ag.Ptr.New, here(m.Method, node))
			case *ir.ObjAssign:
				if s.Src == "" {
					continue // null assignment: no object flow
				}
				sv := ag.appear(ctx, node, s.Src)
				dv := ag.appear(ctx, node, s.Dst)
				ag.edge(sv, dv, ag.Ptr.Assign, here(m.Method, node))
			case *ir.Store:
				sv := ag.appear(ctx, node, s.Src)
				rv := ag.appear(ctx, node, s.Recv)
				ag.edge(sv, rv, ag.Ptr.Store[s.Field], here(m.Method, node))
			case *ir.Load:
				rv := ag.appear(ctx, node, s.Recv)
				dv := ag.appear(ctx, node, s.Dst)
				ag.edge(rv, dv, ag.Ptr.Load[s.Field], here(m.Method, node))
			case *ir.Event:
				// Events add no alias edge but the receiver instance must
				// exist so phase 2 can attribute events via flowsTo.
				ag.appear(ctx, node, s.Recv)
			case *ir.Call:
				ag.callEdges(pr, ctx, node, s, ps.CallEdge)
			case *ir.CatchBind:
				if s.FromCall >= 0 {
					ag.excReturnEdges(pr, ctx, node, s)
				} else {
					ag.appear(ctx, node, s.Var)
				}
			case *ir.Return:
				if s.SrcIsObject && s.Src.Var != "" {
					ag.appear(ctx, node, s.Src.Var)
				}
			}
		}
	}
}

// callEdges emits parameter-passing and value-return edges (paper §4.1),
// annotated with the ICFET call edge ID so decoding matches parentheses.
func (ag *AliasGraph) callEdges(pr *Program, ctx uint32, node uint64, s *ir.Call, callEdge int32) {
	cc, ok := pr.CalleeCtx(ctx, s.Site)
	if !ok || callEdge < 0 {
		return
	}
	callee := pr.Method(cc)
	for _, a := range s.ObjArgs {
		av := ag.appear(ctx, node, a.Arg)
		fv := ag.appear(cc, 0, a.Formal)
		ag.edge(av, fv, ag.Ptr.Assign, cfet.Enc{cfet.CallElem(callEdge)})
	}
	if s.DstIsObject && s.Dst != "" {
		dv := ag.appear(ctx, node, s.Dst)
		for _, leaf := range callee.Leaves {
			ln := callee.Nodes[leaf]
			if ln.Leaf != cfet.LeafReturn || ln.Ret.ObjVar == "" {
				continue
			}
			rv := ag.appear(cc, leaf, ln.Ret.ObjVar)
			ag.edge(rv, dv, ag.Ptr.Assign, cfet.Enc{cfet.RetElem(callEdge)})
		}
	}
}

// excReturnEdges wires a callee's uncaught exception object ($exc at each
// exceptional leaf) to the catching/propagating variable in the caller.
func (ag *AliasGraph) excReturnEdges(pr *Program, ctx uint32, node uint64, s *ir.CatchBind) {
	cc, ok := pr.CalleeCtx(ctx, s.FromCall)
	if !ok {
		return
	}
	m := pr.Method(ctx)
	callEdge := findCallEdge(m, node, s.FromCall)
	if callEdge < 0 {
		return
	}
	callee := pr.Method(cc)
	dv := ag.appear(ctx, node, s.Var)
	for _, leaf := range callee.Leaves {
		ln := callee.Nodes[leaf]
		if ln.Leaf != cfet.LeafThrow {
			continue
		}
		ev := ag.appear(cc, leaf, ir.ExcVar)
		ag.edge(ev, dv, ag.Ptr.Assign, cfet.Enc{cfet.RetElem(callEdge)})
	}
}

// findCallEdge locates the ICFET call edge for the call with the given IR
// site at or above `node` (the CatchBind sits in a child of the node that
// made the call).
func findCallEdge(m *cfet.CFET, node uint64, site int32) int32 {
	for {
		if n := m.Nodes[node]; n != nil {
			for _, ps := range n.Stmts {
				if c, ok := ps.Stmt.(*ir.Call); ok && c.Site == site && ps.CallEdge >= 0 {
					return ps.CallEdge
				}
			}
		}
		if node == 0 {
			return -1
		}
		node = cfet.Parent(node)
	}
}

// addArtificialEdges connects each variable's instances along tree paths:
// an assign edge vi -> vj with encoding [bi, bj] whenever bi is the nearest
// appearance ancestor of bj (paper §4.1, Fig. 5b's {[0,2]} edge).
func (ag *AliasGraph) addArtificialEdges(pr *Program) {
	// Group appearances by (ctx, name).
	type groupKey struct {
		ctx  uint32
		name string
	}
	groups := map[groupKey]map[uint64]bool{}
	for k := range ag.appearances {
		gk := groupKey{ctx: k.Ctx, name: k.Name}
		if groups[gk] == nil {
			groups[gk] = map[uint64]bool{}
		}
		groups[gk][k.Node] = true
	}
	for gk, nodes := range groups {
		m := pr.Method(gk.ctx)
		for node := range nodes {
			if node == 0 {
				continue
			}
			// Walk up to the nearest appearance ancestor.
			cur := cfet.Parent(node)
			for {
				if nodes[cur] {
					src := ag.varVert(VarKey{Ctx: gk.ctx, Node: cur, Name: gk.name})
					dst := ag.varVert(VarKey{Ctx: gk.ctx, Node: node, Name: gk.name})
					ag.edge(src, dst, ag.Ptr.Assign,
						cfet.Enc{cfet.Interval(m.Method, cur, node)})
					break
				}
				if cur == 0 {
					break
				}
				cur = cfet.Parent(cur)
			}
		}
	}
}

// sortedNodes returns the node IDs of a CFET in ascending order for
// deterministic graph generation.
func sortedNodes(m *cfet.CFET) []uint64 {
	out := make([]uint64, 0, len(m.Nodes))
	for id := range m.Nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
