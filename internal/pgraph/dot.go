package pgraph

import (
	"fmt"
	"io"
	"sort"

	"github.com/grapple-system/grapple/internal/cfet"
	"github.com/grapple-system/grapple/internal/grammar"
	"github.com/grapple-system/grapple/internal/storage"
)

// WriteAliasDOT renders the alias program graph in Graphviz DOT form, with
// object vertices as boxes, variable-instance vertices labeled
// "name@method:node", and edges labeled with their grammar label and path
// encoding — the Fig. 5b picture, mechanically.
func (ag *AliasGraph) WriteAliasDOT(w io.Writer, pr *Program, ic *cfet.ICFET) error {
	if _, err := fmt.Fprintln(w, "digraph alias {"); err != nil {
		return err
	}
	fmt.Fprintln(w, `  rankdir=LR; node [fontsize=10]; edge [fontsize=9];`)
	// Vertices.
	for v := uint32(0); v < ag.NumVerts; v++ {
		if obj, ok := ag.RevObj[v]; ok {
			info := objInfoFor(ag, obj)
			fmt.Fprintf(w, "  n%d [shape=box, style=filled, fillcolor=lightyellow, label=\"%s@%s\"];\n",
				v, info.Type, info.Pos)
			continue
		}
		if int(v) < len(ag.RevVar) && ag.RevVar[v] != nil {
			k := ag.RevVar[v]
			fmt.Fprintf(w, "  n%d [label=\"%s@%s:%d c%d\"];\n",
				v, k.Name, pr.Method(k.Ctx).Name, k.Node, k.Ctx)
		}
	}
	writeDOTEdges(w, ag.Edges, ag.Ptr.G, ic)
	_, err := fmt.Fprintln(w, "}")
	return err
}

// WriteDataflowDOT renders a dataflow graph: per-object subgraphs with
// source/exit vertices highlighted.
func (dg *DataflowGraph) WriteDataflowDOT(w io.Writer, ic *cfet.ICFET) error {
	if _, err := fmt.Fprintln(w, "digraph dataflow {"); err != nil {
		return err
	}
	fmt.Fprintln(w, `  rankdir=LR; node [fontsize=10]; edge [fontsize=9];`)
	for _, t := range dg.Tracked {
		fmt.Fprintf(w, "  n%d [shape=box, style=filled, fillcolor=lightgreen, label=\"source %s\"];\n",
			t.Source, t.Info.String())
		fmt.Fprintf(w, "  n%d [shape=box, style=filled, fillcolor=lightpink, label=\"exit %s\"];\n",
			t.Exit, t.Info.String())
	}
	writeDOTEdges(w, dg.Edges, dg.D.G, ic)
	_, err := fmt.Fprintln(w, "}")
	return err
}

func writeDOTEdges(w io.Writer, edges []storage.Edge, g *grammar.Grammar, ic *cfet.ICFET) {
	sorted := make([]int, len(edges))
	for i := range sorted {
		sorted[i] = i
	}
	sort.Slice(sorted, func(a, b int) bool {
		ea, eb := edges[sorted[a]], edges[sorted[b]]
		if ea.Src != eb.Src {
			return ea.Src < eb.Src
		}
		return ea.Dst < eb.Dst
	})
	for _, i := range sorted {
		e := edges[i]
		label := g.Name(e.Label)
		if len(e.Enc) > 0 {
			label += " " + e.Enc.String(ic)
		}
		fmt.Fprintf(w, "  n%d -> n%d [label=%q];\n", e.Src, e.Dst, label)
	}
}

func objInfoFor(ag *AliasGraph, id ObjID) ObjInfo {
	for _, o := range ag.Objects {
		if o.ID == id {
			return o
		}
	}
	return ObjInfo{ID: id, Type: "?"}
}
