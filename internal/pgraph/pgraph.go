// Package pgraph generates the program graphs Grapple processes (paper
// §4.1): the pointer/alias graph over Fig. 4 edges and the dataflow/
// typestate graph, both made context sensitive by bottom-up cloning of
// callee graphs into callers.
//
// Cloning is realized as a context tree: a context is one clone of a method,
// created per (caller context, call site) for non-recursive methods.
// Methods in call-graph SCCs (recursion) get a single shared context and are
// treated context-insensitively, exactly as the paper prescribes (§2.1).
// Parameter-passing and value-return edges connect clones and carry their
// ICFET call/return edge IDs in the path encoding so decoding can match
// parentheses (§4.1).
package pgraph

import (
	"fmt"

	"github.com/grapple-system/grapple/internal/callgraph"
	"github.com/grapple-system/grapple/internal/cfet"
	"github.com/grapple-system/grapple/internal/ir"
	"github.com/grapple-system/grapple/internal/lang"
)

// Options bounds the cloning.
type Options struct {
	// MaxContexts caps the number of clones; beyond it new call sites reuse
	// the callee's shared (context-insensitive) clone. Zero means 4096.
	MaxContexts int
	// MaxDepth caps the context-tree depth the same way. Zero means 32.
	MaxDepth int
	// Skip, when non-nil, names methods the property-relevance slicer
	// dropped: call sites into them get no callee context at all (their
	// CFETs are single-return stubs anyway), so the context tree never
	// grows below them.
	Skip func(name string) bool
}

// NoContext marks absent parent contexts.
const NoContext = ^uint32(0)

// Context is one clone of a method.
type Context struct {
	ID     uint32
	Method cfet.MethodID
	// Parent is the calling context (NoContext for roots).
	Parent uint32
	// Site is the IR call site that created this clone (-1 for roots).
	Site int32
	// Depth in the context tree.
	Depth int
	// Shared marks the context-insensitive clone of a recursive method (or
	// a budget-overflow fallback).
	Shared bool
}

// Program holds the context tree plus vertex tables for graph generation.
type Program struct {
	IR   *ir.Program
	CG   *callgraph.Graph
	IC   *cfet.ICFET
	Opts Options

	Contexts []Context
	// Roots are the entry contexts.
	Roots []uint32
	// children maps (ctx, site) -> callee ctx.
	children map[ctxSiteKey]uint32
	// Callers is the reverse of children: callee ctx -> calling (ctx, site)
	// pairs (a shared clone has many callers).
	Callers map[uint32][]ctxSiteKey
	// sharedCtx maps a method to its context-insensitive clone.
	sharedCtx map[cfet.MethodID]uint32
	// ContextOverflow counts call sites that fell back to shared clones.
	ContextOverflow int
}

type ctxSiteKey struct {
	ctx  uint32
	site int32
}

// NewProgram enumerates the context tree from the call-graph roots.
func NewProgram(p *ir.Program, cg *callgraph.Graph, ic *cfet.ICFET, opts Options) *Program {
	if opts.MaxContexts <= 0 {
		opts.MaxContexts = 4096
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 32
	}
	pr := &Program{
		IR: p, CG: cg, IC: ic, Opts: opts,
		children:  map[ctxSiteKey]uint32{},
		Callers:   map[uint32][]ctxSiteKey{},
		sharedCtx: map[cfet.MethodID]uint32{},
	}
	for _, root := range cg.Roots() {
		mid, ok := ic.MethodByName[root]
		if !ok {
			continue
		}
		id := pr.newContext(mid, NoContext, -1, 0, false)
		pr.Roots = append(pr.Roots, id)
		pr.expand(id)
	}
	return pr
}

func (pr *Program) newContext(m cfet.MethodID, parent uint32, site int32, depth int, shared bool) uint32 {
	id := uint32(len(pr.Contexts))
	pr.Contexts = append(pr.Contexts, Context{
		ID: id, Method: m, Parent: parent, Site: site, Depth: depth, Shared: shared,
	})
	return id
}

// shared returns (creating if needed) the context-insensitive clone of m.
func (pr *Program) shared(m cfet.MethodID) uint32 {
	if id, ok := pr.sharedCtx[m]; ok {
		return id
	}
	id := pr.newContext(m, NoContext, -1, 0, true)
	pr.sharedCtx[m] = id
	pr.expandShared(id)
	return id
}

// expand creates callee contexts for every call site in ctx's method.
func (pr *Program) expand(ctx uint32) {
	c := pr.Contexts[ctx]
	name := pr.IC.Methods[c.Method].Name
	for _, call := range pr.CG.CallSites[name] {
		calleeID, ok := pr.IC.MethodByName[call.Callee]
		if !ok {
			continue
		}
		if pr.Opts.Skip != nil && pr.Opts.Skip(call.Callee) {
			continue
		}
		key := ctxSiteKey{ctx: ctx, site: call.Site}
		if _, done := pr.children[key]; done {
			continue
		}
		switch {
		case pr.CG.IsRecursive(call.Callee):
			pr.setChild(key, pr.shared(calleeID))
		case len(pr.Contexts) >= pr.Opts.MaxContexts || c.Depth+1 >= pr.Opts.MaxDepth:
			pr.ContextOverflow++
			pr.setChild(key, pr.shared(calleeID))
		default:
			child := pr.newContext(calleeID, ctx, call.Site, c.Depth+1, false)
			pr.setChild(key, child)
			pr.expand(child)
		}
	}
}

// expandShared wires a shared clone's call sites to shared callee clones
// (context-insensitive region).
func (pr *Program) expandShared(ctx uint32) {
	c := pr.Contexts[ctx]
	name := pr.IC.Methods[c.Method].Name
	for _, call := range pr.CG.CallSites[name] {
		calleeID, ok := pr.IC.MethodByName[call.Callee]
		if !ok {
			continue
		}
		if pr.Opts.Skip != nil && pr.Opts.Skip(call.Callee) {
			continue
		}
		key := ctxSiteKey{ctx: ctx, site: call.Site}
		if _, done := pr.children[key]; done {
			continue
		}
		pr.setChild(key, pr.shared(calleeID))
	}
}

// setChild records a (ctx, site) -> callee mapping and its reverse.
func (pr *Program) setChild(key ctxSiteKey, callee uint32) {
	pr.children[key] = callee
	pr.Callers[callee] = append(pr.Callers[callee], key)
}

// CalleeCtx returns the callee context for (ctx, call site).
func (pr *Program) CalleeCtx(ctx uint32, site int32) (uint32, bool) {
	id, ok := pr.children[ctxSiteKey{ctx: ctx, site: site}]
	return id, ok
}

// Method returns the CFET of a context's method.
func (pr *Program) Method(ctx uint32) *cfet.CFET {
	return pr.IC.Methods[pr.Contexts[ctx].Method]
}

// ObjID identifies a tracked object: an allocation site under a context.
type ObjID struct {
	Ctx  uint32
	Site int32
}

// ObjInfo describes a tracked allocation instance.
type ObjInfo struct {
	ID   ObjID
	Type string
	Pos  lang.Pos
	// Node is the CFET node of the allocation (first occurrence).
	Node uint64
}

// String renders an object for reports.
func (o ObjInfo) String() string {
	return fmt.Sprintf("%s@%s(ctx%d)", o.Type, o.Pos, o.ID.Ctx)
}
