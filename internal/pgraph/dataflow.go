package pgraph

import (
	"sort"

	"github.com/grapple-system/grapple/internal/cfet"
	"github.com/grapple-system/grapple/internal/fsm"
	"github.com/grapple-system/grapple/internal/grammar"
	"github.com/grapple-system/grapple/internal/ir"
	"github.com/grapple-system/grapple/internal/storage"
)

// FlowTarget is one phase-1 result: the tracked object flows to (may be
// referenced by) a variable instance, under the path constraint Enc.
type FlowTarget struct {
	Var VarKey
	Enc cfet.Enc
}

// AliasResult holds the phase-1 aliasing facts. Per the paper's workflow
// (§2.2), it is held in memory during phase 2 to answer alias queries.
type AliasResult struct {
	// Flows maps each tracked object to its flow targets.
	Flows map[ObjID][]FlowTarget
	// Pointees counts the distinct objects (of any type) flowing to each
	// variable instance; a unique pointee upgrades may-alias to must-alias
	// for event attribution.
	Pointees map[VarKey]int
}

// DataflowOptions bounds dataflow graph generation.
type DataflowOptions struct {
	// MaxCtxsPerObject skips objects whose relevant-context set explodes
	// (usually via widely shared helpers). Zero means 256.
	MaxCtxsPerObject int
	// MaxLeaves bounds per-method exit-edge enumeration; extra leaves get a
	// single unconstrained exit edge. Zero means 512.
	MaxLeaves int
}

// DataflowGraph is the phase-2 program graph: per tracked object, a
// control-flow subgraph whose edges carry FSM transition relations and path
// encodings; the transitive closure of source->exit edges yields, for every
// feasible path bundle, the relation from allocation to program exit.
type DataflowGraph struct {
	D        *grammar.Dataflow
	Edges    []storage.Edge
	NumVerts uint32
	// Tracked lists the objects with graphs, with their source/exit
	// vertices.
	Tracked []TrackedObj
	// SkippedObjects counts objects dropped by MaxCtxsPerObject.
	SkippedObjects int
}

// TrackedObj pairs an object with its FSM and its graph endpoints.
type TrackedObj struct {
	Info   ObjInfo
	FSM    *fsm.FSM
	Source uint32
	Exit   uint32
}

// item is one relevant statement occurrence inside a CFET node.
type item struct {
	kind     itemKind
	seq      int        // statement index within the node (ordering)
	event    string     // event name (event/alloc/catch)
	encs     []cfet.Enc // alias-attribution encodings (nil = definite)
	definite bool
	// entryDefinite lists the call edges whose entry into this clone
	// already implies the event's attribution (entry-node events only):
	// a flow entering through such an edge definitely observes the event,
	// so the caller routes it past the may-not-alias bypass.
	entryDefinite map[int32]bool
	site          int32 // call site (call items)
	// summary marks a call into an *irrelevant* callee whose integer
	// return value feeds path constraints: the item contributes one
	// identity edge per callee exit path, carrying {(c [0,leaf] )c} so the
	// return-value equation and the callee's branch conditions survive
	// (the fully-inlined program graph of the paper keeps them by
	// construction; the per-object scoping must put them back).
	summary  bool
	callEdge int32
}

type itemKind uint8

const (
	itemEvent itemKind = iota
	itemAlloc
	itemCall
)

// BuildDataflow generates the phase-2 graph for every tracked object.
// fsmFor maps an object type to its FSM (nil = untracked).
func BuildDataflow(pr *Program, flows AliasResult, ag *AliasGraph,
	fsmFor func(typ string) *fsm.FSM, opts DataflowOptions) *DataflowGraph {
	if opts.MaxCtxsPerObject <= 0 {
		opts.MaxCtxsPerObject = 256
	}
	if opts.MaxLeaves <= 0 {
		opts.MaxLeaves = 512
	}
	dg := &DataflowGraph{D: grammar.NewDataflow()}
	for _, obj := range ag.Objects {
		f := fsmFor(obj.Type)
		if f == nil {
			continue
		}
		b := &objBuilder{pr: pr, dg: dg, obj: obj, fsm: f, opts: opts,
			pointees: flows.Pointees, points: map[pointKey]uint32{}}
		b.build(flows.Flows[obj.ID])
	}
	return dg
}

type pointKey struct {
	ctx  uint32
	node uint64
	pos  int
}

type objBuilder struct {
	pr   *Program
	dg   *DataflowGraph
	obj  ObjInfo
	fsm  *fsm.FSM
	opts DataflowOptions

	points   map[pointKey]uint32
	pointees map[VarKey]int
	// items per (ctx, node), in statement order.
	nodeItems map[uint32]map[uint64][]item
	relevant  map[uint32]bool
	// exitN/exitX are each clone's normal and exceptional exit points.
	// Exceptional callee exits are wired directly into the caller's catch
	// subtree so a thrown state can never "return normally" past a handler.
	exitN  map[uint32]uint32
	exitX  map[uint32]uint32
	source uint32
	exit   uint32
}

func (b *objBuilder) vert() uint32 {
	v := b.dg.NumVerts
	b.dg.NumVerts++
	return v
}

func (b *objBuilder) point(ctx uint32, node uint64, pos int) uint32 {
	k := pointKey{ctx: ctx, node: node, pos: pos}
	if v, ok := b.points[k]; ok {
		return v
	}
	v := b.vert()
	b.points[k] = v
	return v
}

func (b *objBuilder) edge(src, dst uint32, rel fsm.Rel, enc cfet.Enc) {
	b.dg.Edges = append(b.dg.Edges, storage.Edge{
		Src: src, Dst: dst, Label: b.dg.D.Flow, HasRel: true, Rel: rel, Enc: enc,
	})
}

// build assembles the object's subgraph.
func (b *objBuilder) build(targets []FlowTarget) {
	b.collectItems(targets)
	if !b.computeRelevance() {
		b.dg.SkippedObjects++
		return
	}
	b.source = b.vert()
	b.exit = b.vert()

	// Exit points per relevant ctx.
	b.exitN = map[uint32]uint32{}
	b.exitX = map[uint32]uint32{}
	ctxs := make([]uint32, 0, len(b.relevant))
	for c := range b.relevant {
		ctxs = append(ctxs, c)
	}
	sort.Slice(ctxs, func(i, j int) bool { return ctxs[i] < ctxs[j] })
	for _, c := range ctxs {
		b.exitN[c] = b.vert()
		b.exitX[c] = b.vert()
	}
	for _, c := range ctxs {
		b.buildCtx(c)
	}
	// Wire exits: root contexts reach the program exit both normally and by
	// crashing on an uncaught exception; called contexts return at their
	// call items (wired in buildCtx).
	id := fsm.Identity()
	for _, c := range ctxs {
		if b.isRootCtx(c) {
			b.edge(b.exitN[c], b.exit, id, nil)
			b.edge(b.exitX[c], b.exit, id, nil)
		}
	}
	b.dg.Tracked = append(b.dg.Tracked, TrackedObj{
		Info: b.obj, FSM: b.fsm, Source: b.source, Exit: b.exit,
	})
}

func (b *objBuilder) isRootCtx(c uint32) bool {
	for _, r := range b.pr.Roots {
		if r == c {
			return true
		}
	}
	return false
}

// collectItems finds, per (ctx, node), the statements relevant to this
// object, in statement order: its allocation, FSM events on aliased
// variables, and catches binding aliased variables.
func (b *objBuilder) collectItems(targets []FlowTarget) {
	b.nodeItems = map[uint32]map[uint64][]item{}
	// aliased[(ctx,node)][name] = attribution encodings.
	type nk struct {
		ctx  uint32
		node uint64
	}
	aliased := map[nk]map[string][]FlowTarget{}
	for _, t := range targets {
		k := nk{ctx: t.Var.Ctx, node: t.Var.Node}
		if aliased[k] == nil {
			aliased[k] = map[string][]FlowTarget{}
		}
		aliased[k][t.Var.Name] = append(aliased[k][t.Var.Name], t)
	}
	add := func(ctx uint32, node uint64, it item) {
		if b.nodeItems[ctx] == nil {
			b.nodeItems[ctx] = map[uint64][]item{}
		}
		b.nodeItems[ctx][node] = append(b.nodeItems[ctx][node], it)
	}
	visit := func(ctx uint32, node uint64, n *cfet.Node) {
		for si, ps := range n.Stmts {
			switch s := ps.Stmt.(type) {
			case *ir.NewObj:
				if ctx == b.obj.ID.Ctx && s.Site == b.obj.ID.Site {
					add(ctx, node, item{kind: itemAlloc, seq: si, event: "new", definite: true})
				}
			case *ir.Event:
				fts := aliased[nk{ctx, node}][s.Recv]
				if len(fts) == 0 {
					continue
				}
				it := b.eventItem(s.Method, ctx, node, s.Recv, fts)
				it.seq = si
				add(ctx, node, it)
			case *ir.CatchBind:
				if s.Var == ir.ExcVar {
					continue // propagation, not a catch
				}
				fts := aliased[nk{ctx, node}][s.Var]
				if len(fts) == 0 {
					continue
				}
				it := b.eventItem("catch", ctx, node, s.Var, fts)
				it.seq = si
				add(ctx, node, it)
			}
		}
	}
	// Which (ctx,node) pairs to scan: alias targets plus the allocation ctx.
	scanned := map[nk]bool{}
	for k := range aliased {
		m := b.pr.Method(k.ctx)
		if n := m.Nodes[k.node]; n != nil && !scanned[k] {
			scanned[k] = true
			visit(k.ctx, k.node, n)
		}
	}
	allocM := b.pr.Method(b.obj.ID.Ctx)
	for node, n := range allocM.Nodes {
		k := nk{b.obj.ID.Ctx, node}
		if !scanned[k] {
			scanned[k] = true
			visit(b.obj.ID.Ctx, node, n)
		}
	}
}

// eventItem builds an event item, deciding whether the attribution is
// *definite* (must-alias): the receiver instance has a unique pointee and
// the decoded attribution constraint is subsumed by the branch constraint
// of simply reaching the event's node — then any flow arriving here
// definitely observes the event and no may-not-alias bypass is added.
func (b *objBuilder) eventItem(event string, ctx uint32, node uint64, recv string, fts []FlowTarget) item {
	it := item{kind: itemEvent, event: event}
	unique := b.pointees[VarKey{Ctx: ctx, Node: node, Name: recv}] <= 1
	m := b.pr.Method(ctx)
	var pathKeys map[string]bool
	if unique {
		if pathConj, err := m.PathConstraint(0, node, nil, nil); err == nil {
			pathKeys = map[string]bool{}
			for _, a := range pathConj {
				pathKeys[a.Key()] = true
			}
		}
	}
	for _, ft := range fts {
		if unique && pathKeys != nil && b.subsumedByPath(ft.Enc, m, node, pathKeys) {
			it.definite = true
			it.encs = nil
			return it
		}
		it.encs = append(it.encs, ft.Enc)
	}
	// Intra-frame subsumption failed, but an attribution may still be
	// implied interprocedurally: the event sits at the entry node of a
	// private clone and the attribution's caller-side prefix is implied by
	// simply reaching the call node that enters it. Flows arriving through
	// such a call edge definitely observe the event; the caller-side
	// builder routes them past the may-not-alias bypass (per edge, so
	// entries on branch arms where the receiver is a different object keep
	// the bypass).
	if unique && node == 0 {
		c := b.pr.Contexts[ctx]
		if !c.Shared && c.Parent != NoContext {
			pm := b.pr.Method(c.Parent)
			for _, ce := range b.pr.IC.CallEdges {
				if ce == nil || ce.Callee != c.Method || ce.Site != c.Site || ce.Caller != pm.Method {
					continue
				}
				for _, ft := range fts {
					if b.entryCovered(ft.Enc, ctx, node, ce.ID) {
						if it.entryDefinite == nil {
							it.entryDefinite = map[int32]bool{}
						}
						it.entryDefinite[ce.ID] = true
						break
					}
				}
			}
		}
	}
	return it
}

// entryCovered checks one attribution encoding against one entry edge: the
// encoding must end with intervals of ctx's frame implied by reaching
// `node`, preceded by the given call edge, preceded (recursively) by a
// caller-side prefix implied by reaching the call node in the parent frame.
func (b *objBuilder) entryCovered(enc cfet.Enc, ctx uint32, node uint64, entry int32) bool {
	m := b.pr.Method(ctx)
	pathConj, err := m.PathConstraint(0, node, nil, nil)
	if err != nil {
		return false
	}
	pathKeys := map[string]bool{}
	for _, a := range pathConj {
		pathKeys[a.Key()] = true
	}
	i := len(enc)
	for i > 0 && enc[i-1].Kind == cfet.KInterval && enc[i-1].Method == m.Method {
		i--
	}
	if tail := enc[i:]; len(tail) > 0 && !b.subsumedByPath(tail, m, node, pathKeys) {
		return false
	}
	rest := enc[:i]
	if len(rest) == 0 {
		// No caller-side constraint at all: implied by any entry.
		return true
	}
	last := rest[len(rest)-1]
	if last.Kind != cfet.KCall || last.Call != entry {
		return false
	}
	c := b.pr.Contexts[ctx]
	if c.Shared || c.Parent == NoContext {
		return false
	}
	ce := b.pr.IC.CallEdges[entry]
	// The caller prefix must itself be implied by reaching the call node;
	// recurse with the parent clone's own entry edges.
	prefix := rest[:len(rest)-1]
	if len(prefix) == 0 {
		return true
	}
	pm := b.pr.Method(c.Parent)
	callConj, err := pm.PathConstraint(0, ce.CallerNode, nil, nil)
	if err != nil {
		return false
	}
	callKeys := map[string]bool{}
	for _, a := range callConj {
		callKeys[a.Key()] = true
	}
	j := len(prefix)
	for j > 0 && prefix[j-1].Kind == cfet.KInterval && prefix[j-1].Method == pm.Method {
		j--
	}
	if tail := prefix[j:]; len(tail) > 0 && !b.subsumedByPath(tail, pm, ce.CallerNode, callKeys) {
		return false
	}
	if j == 0 {
		return true
	}
	// Deeper frames: the remaining prefix must enter the parent clone via
	// one of ITS entry edges.
	pc := b.pr.Contexts[c.Parent]
	if pc.Shared || pc.Parent == NoContext {
		return false
	}
	if prefix[j-1].Kind != cfet.KCall {
		return false
	}
	deep := prefix[j-1].Call
	if int(deep) >= len(b.pr.IC.CallEdges) {
		return false
	}
	de := b.pr.IC.CallEdges[deep]
	if de == nil || de.Callee != pc.Method || de.Site != pc.Site ||
		de.Caller != b.pr.Method(pc.Parent).Method {
		return false
	}
	return b.entryCovered(prefix[:j], c.Parent, ce.CallerNode, deep)
}

// subsumedByPath reports whether the attribution encoding adds no
// constraint beyond reaching `node` in method m.
func (b *objBuilder) subsumedByPath(enc cfet.Enc, m *cfet.CFET, node uint64, pathKeys map[string]bool) bool {
	merged, ok := b.pr.IC.Merge(enc, cfet.Enc{cfet.Interval(m.Method, node, node)})
	if !ok {
		return false
	}
	conj, err := b.pr.IC.Decode(merged)
	if err != nil {
		return false
	}
	for _, a := range conj {
		if !pathKeys[a.Key()] {
			return false
		}
	}
	return true
}

// computeRelevance seeds relevance with item contexts (plus the allocation
// context) and closes it upward: the parent of a relevant clone is relevant
// (it must carry the flow onward), and every caller of a relevant *shared*
// clone is relevant (shared clones are context-insensitive). Returns false
// when the set exceeds the per-object budget.
func (b *objBuilder) computeRelevance() bool {
	b.relevant = map[uint32]bool{}
	var work []uint32
	push := func(c uint32) {
		if c == NoContext || b.relevant[c] {
			return
		}
		b.relevant[c] = true
		work = append(work, c)
	}
	push(b.obj.ID.Ctx)
	for c := range b.nodeItems {
		push(c)
	}
	for len(work) > 0 {
		c := work[len(work)-1]
		work = work[:len(work)-1]
		if len(b.relevant) > b.opts.MaxCtxsPerObject {
			return false
		}
		cc := b.pr.Contexts[c]
		if cc.Parent != NoContext {
			push(cc.Parent)
		} else if cc.Shared {
			for _, caller := range b.pr.Callers[c] {
				push(caller.ctx)
			}
		}
	}
	return true
}

// maxSummaryLeaves bounds per-call summary enumeration; callees with more
// exit paths contribute one unconstrained pass-through instead.
const maxSummaryLeaves = 32

// summaryCallEdges emits identity edges through an irrelevant callee, one
// per callee exit path, so the return-value equation ("y = a - 1") and the
// callee's internal branch constraints join the path constraint exactly as
// they would in the paper's fully-inlined program graph.
func (b *objBuilder) summaryCallEdges(ctx uint32, it item, prev, next uint32, hereEnc cfet.Enc) {
	id := fsm.Identity()
	ce := b.pr.IC.CallEdges[it.callEdge]
	callee := b.pr.IC.Methods[ce.Callee]
	if len(callee.Leaves) > maxSummaryLeaves {
		b.edge(prev, next, id, hereEnc)
		return
	}
	emitted := false
	for _, leaf := range callee.Leaves {
		if callee.Nodes[leaf].Leaf != cfet.LeafReturn {
			continue
		}
		enc := cfet.Enc{
			cfet.CallElem(it.callEdge),
			cfet.Interval(ce.Callee, 0, leaf),
			cfet.RetElem(it.callEdge),
		}
		b.edge(prev, next, id, enc)
		emitted = true
	}
	if !emitted {
		b.edge(prev, next, id, hereEnc)
	}
}

// hasThrowLeaf reports whether a method can exit exceptionally.
func hasThrowLeaf(m *cfet.CFET) bool {
	for _, l := range m.Leaves {
		if m.Nodes[l].Leaf == cfet.LeafThrow {
			return true
		}
	}
	return false
}

// buildCtx emits the intra-clone chains, tree edges, call/return edges, and
// exit edges for one relevant context.
func (b *objBuilder) buildCtx(ctx uint32) {
	m := b.pr.Method(ctx)
	id := fsm.Identity()

	// Relevant nodes: those with items or relevant call items, plus the
	// root. Call items are discovered here (calls into relevant contexts).
	items := map[uint64][]item{}
	for node, its := range b.nodeItems[ctx] {
		items[node] = its
	}
	for node, n := range m.Nodes {
		// Only nodes that already matter to this object (or the root chain)
		// get summary call items; fully irrelevant nodes stay out of the
		// subgraph.
		nodeMatters := len(b.nodeItems[ctx][node]) > 0
		for si, ps := range n.Stmts {
			c, ok := ps.Stmt.(*ir.Call)
			if !ok || ps.CallEdge < 0 {
				continue
			}
			callee, okc := b.pr.CalleeCtx(ctx, c.Site)
			if okc && b.relevant[callee] {
				items[node] = append(items[node], item{kind: itemCall, seq: si, site: c.Site})
				continue
			}
			// Irrelevant callee: keep its return-value equation when the
			// result is an integer feeding branch conditions.
			if nodeMatters && c.Dst != "" && !c.DstIsObject {
				items[node] = append(items[node],
					item{kind: itemCall, seq: si, site: c.Site, summary: true, callEdge: ps.CallEdge})
			}
		}
	}
	// Items were appended out of statement order when a node has both event
	// and call items; restore true statement order by recorded index.
	for node := range items {
		its := items[node]
		sort.SliceStable(its, func(i, j int) bool { return its[i].seq < its[j].seq })
	}
	if _, ok := items[0]; !ok {
		items[0] = nil
	}

	relNodes := make([]uint64, 0, len(items))
	for node := range items {
		relNodes = append(relNodes, node)
	}
	sort.Slice(relNodes, func(i, j int) bool { return relNodes[i] < relNodes[j] })
	isRel := map[uint64]bool{}
	for _, n := range relNodes {
		isRel[n] = true
	}

	// excArrival(n) is the landing point for exceptional returns of a
	// may-throw call in node n; the catch handler lives in n's true-child
	// subtree (the expansion's If(opaque-throw) branch), and ONLY this
	// point feeds that subtree, correlating "callee threw" with "handler
	// runs".
	excArrival := map[uint64]uint32{}

	// Intra-node chains.
	for _, node := range relNodes {
		its := items[node]
		for i, it := range its {
			prev := b.point(ctx, node, i)
			next := b.point(ctx, node, i+1)
			hereEnc := cfet.Enc{cfet.Interval(m.Method, node, node)}
			switch it.kind {
			case itemAlloc:
				// Anchor the allocation at the CFET root so the branch
				// conditions guarding the allocation itself participate in
				// every composed path constraint (reaching the allocation
				// under x>=0 and later taking an x<0 branch must be unsat).
				b.edge(b.source, next, fsm.EventRel(b.fsm, "new"),
					cfet.Enc{cfet.Interval(m.Method, 0, node)})
				// Identity pass-through: a re-execution of the site (via a
				// shared/recursive clone) creates a different object.
				b.edge(prev, next, id, hereEnc)
			case itemEvent:
				rel := fsm.EventRel(b.fsm, it.event)
				if it.definite {
					b.edge(prev, next, rel, hereEnc)
				} else {
					// Conditional attribution: the event applies under each
					// alias constraint; a may-not-alias bypass keeps paths
					// where the receiver is a different object.
					for _, enc := range it.encs {
						merged, ok := b.pr.IC.Merge(enc, hereEnc)
						if !ok {
							continue
						}
						b.edge(prev, next, rel, merged)
					}
					b.edge(prev, next, id, hereEnc)
				}
			case itemCall:
				if it.summary {
					b.summaryCallEdges(ctx, it, prev, next, hereEnc)
					continue
				}
				callee, _ := b.pr.CalleeCtx(ctx, it.site)
				callEdge := findCallEdge(m, node, it.site)
				if callEdge < 0 {
					b.edge(prev, next, id, hereEnc)
					continue
				}
				// Entry-definite event in the callee: the first statement of
				// the callee is an event whose attribution is implied by
				// entering through this very call edge, so the entering flow
				// observes it unconditionally — land past the event's
				// may-not-alias bypass, applying its relation on the way in.
				calleeEntry := b.point(callee, 0, 0)
				entryRel := id
				if hd := b.nodeItems[callee][0]; len(hd) > 0 &&
					hd[0].kind == itemEvent && hd[0].seq == 0 && hd[0].entryDefinite[callEdge] {
					calleeEntry = b.point(callee, 0, 1)
					entryRel = fsm.EventRel(b.fsm, hd[0].event)
				}
				b.edge(prev, calleeEntry, entryRel, cfet.Enc{cfet.CallElem(callEdge)})
				b.edge(b.exitN[callee], next, id, cfet.Enc{cfet.RetElem(callEdge)})
				if hasThrowLeaf(b.pr.Method(callee)) {
					p := b.vert()
					excArrival[node] = p
					b.edge(b.exitX[callee], p, id, cfet.Enc{cfet.RetElem(callEdge)})
				}
				// No direct pass-through: flows that bypass the callee's
				// events travel the callee's own identity chains (entry ->
				// exit tree/exit edges), so a definite event inside the
				// callee (e.g. a close() helper) is never skipped.
			}
		}
	}

	// treeSource picks the point feeding a descendant `to` of relevant
	// node `from`: the exceptional-arrival point when `to` lies in the
	// catch (true-child) subtree of a may-throw call node, else the node's
	// final position.
	treeSource := func(from, to uint64) uint32 {
		if p, ok := excArrival[from]; ok && to != from && cfet.IsAncestorOrEqual(2*from+2, to) {
			return p
		}
		return b.point(ctx, from, len(items[from]))
	}

	// Tree edges between relevant nodes.
	for _, node := range relNodes {
		if node == 0 {
			continue
		}
		cur := cfet.Parent(node)
		for {
			if isRel[cur] {
				src := treeSource(cur, node)
				dst := b.point(ctx, node, 0)
				b.edge(src, dst, id, cfet.Enc{cfet.Interval(m.Method, cur, node)})
				break
			}
			if cur == 0 {
				break
			}
			cur = cfet.Parent(cur)
		}
	}

	// Exit edges. Enumerating one edge per leaf would both explode (leaves
	// grow with the CFET) and trip the engine's per-endpoint variant cap,
	// widening away precisely the branch constraints path sensitivity
	// needs. Instead each relevant node emits one edge per *frontier*
	// subtree: a maximal subtree below it containing no relevant node. All
	// leaves inside a frontier subtree share the encoded prefix [node,
	// frontierRoot], and branches below the frontier cannot affect the
	// object (no relevant statements there), so the collapse is exact.
	sub := b.subtreeInfo(m, isRel)
	for _, node := range relNodes {
		b.exitEdgesFrom(ctx, m, node, len(items[node]), sub, isRel, treeSource)
	}
}

// subtreeSummary records, per CFET node, whether its subtree contains a
// relevant node and which leaf kinds it can end at.
type subtreeSummary struct {
	hasRelevant bool
	hasReturn   bool
	hasThrow    bool
}

// subtreeInfo computes subtree summaries bottom-up (descending node IDs:
// children have larger IDs than parents in the Eytzinger numbering).
func (b *objBuilder) subtreeInfo(m *cfet.CFET, isRel map[uint64]bool) map[uint64]*subtreeSummary {
	ids := make([]uint64, 0, len(m.Nodes))
	for id := range m.Nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] > ids[j] })
	sub := make(map[uint64]*subtreeSummary, len(ids))
	for _, id := range ids {
		n := m.Nodes[id]
		s := &subtreeSummary{hasRelevant: isRel[id]}
		switch n.Leaf {
		case cfet.LeafReturn, cfet.LeafTruncate:
			s.hasReturn = true
		case cfet.LeafThrow:
			s.hasThrow = true
		}
		for _, child := range [2]uint64{2*id + 1, 2*id + 2} {
			if cs, ok := sub[child]; ok {
				s.hasRelevant = s.hasRelevant || cs.hasRelevant
				s.hasReturn = s.hasReturn || cs.hasReturn
				s.hasThrow = s.hasThrow || cs.hasThrow
			}
		}
		sub[id] = s
	}
	return sub
}

// exitEdgesFrom walks down from a relevant node, emitting one exit edge per
// frontier subtree (and per exit kind present in it). Paths entering a
// deeper relevant node exit via that node's own edges instead.
func (b *objBuilder) exitEdgesFrom(ctx uint32, m *cfet.CFET, node uint64, lastPos int,
	sub map[uint64]*subtreeSummary, isRel map[uint64]bool,
	treeSource func(from, to uint64) uint32) {
	id := fsm.Identity()
	emit := func(d uint64) {
		s := sub[d]
		src := treeSource(node, d)
		enc := cfet.Enc{cfet.Interval(m.Method, node, d)}
		if s.hasReturn {
			b.edge(src, b.exitN[ctx], id, enc)
		}
		if s.hasThrow {
			b.edge(src, b.exitX[ctx], id, enc)
		}
	}
	// The node itself may be a leaf.
	if n := m.Nodes[node]; n.Leaf != cfet.LeafNone {
		enc := cfet.Enc{cfet.Interval(m.Method, node, node)}
		src := b.point(ctx, node, lastPos)
		if n.Leaf == cfet.LeafThrow {
			b.edge(src, b.exitX[ctx], id, enc)
		} else {
			b.edge(src, b.exitN[ctx], id, enc)
		}
	}
	var walk func(d uint64)
	walk = func(d uint64) {
		s, ok := sub[d]
		if !ok {
			return
		}
		if isRel[d] {
			return // handled by d's own exit edges
		}
		if !s.hasRelevant {
			emit(d)
			return
		}
		walk(2*d + 1)
		walk(2*d + 2)
	}
	walk(2*node + 1)
	walk(2*node + 2)
}
