// Package cfet implements the paper's central data structure (§3): per-method
// control-flow execution trees (CFETs) built by symbolic execution, connected
// into an interprocedural CFET (ICFET) by call/return edges, together with
// the interval-based path encoding, Algorithm-1 decoding, and the four
// encoding-merge cases of §4.2.
//
// A CFET is a binary tree of extended basic blocks. Node IDs follow the
// Eytzinger-style numbering of §3.1: the root is 0 and a node n has false
// child 2n+1 and true child 2n+2, so a parent is recovered by (id-1)>>1 and a
// child's branch direction by its parity. (The paper's Algorithm 1 prints
// "ID >> 1"; with its own numbering that is exact only for odd IDs — the
// intended, correct computation is (ID-1)>>1, which this package uses.)
//
// The ICFET is an in-memory index: it is never cloned (§3.3); context
// sensitivity in the *program graph* comes from inlining, while ICFET paths
// achieve context sensitivity by matching call/return parentheses during
// decoding.
package cfet

import (
	"fmt"

	"github.com/grapple-system/grapple/internal/constraint"
	"github.com/grapple-system/grapple/internal/ir"
	"github.com/grapple-system/grapple/internal/lang"
	"github.com/grapple-system/grapple/internal/symbolic"
)

// MethodID indexes a method's CFET within an ICFET.
type MethodID int32

// LeafKind classifies how a CFET path ends.
type LeafKind uint8

// Leaf kinds.
const (
	LeafNone     LeafKind = iota // interior node
	LeafReturn                   // normal return (explicit or fall-off)
	LeafThrow                    // exceptional exit ($exc set)
	LeafTruncate                 // exploration budget exhausted
)

// PlacedStmt is one statement instance executed in a CFET node. The same IR
// statement appears in every node whose path prefix executes it.
type PlacedStmt struct {
	Stmt ir.Stmt
	// CallEdge is the ICFET call-edge ID when Stmt is *ir.Call, else -1.
	CallEdge int32
	// EventResultSym is the opaque symbol bound to an Event's result, or
	// symbolic.NoSym.
	EventResultSym symbolic.Sym
}

// RetInfo describes the value returned at a leaf.
type RetInfo struct {
	Kind    LeafKind
	HasExpr bool
	Expr    symbolic.Expr // integer return value (symbolic), if HasExpr
	ObjVar  string        // object-typed return variable, "" if none
}

// Node is one extended basic block of a CFET.
type Node struct {
	ID      uint64
	HasCond bool
	// Cond is the symbolic branch conditional evaluated at the end of the
	// block (only local, per §3.1 — full path constraints are reconstructed
	// by decoding).
	Cond constraint.Atom
	// CondPos is the source position of the branch conditional.
	CondPos lang.Pos
	// CondText is the conditional as written (for witness explanations).
	CondText string
	Stmts    []PlacedStmt
	Leaf     LeafKind
	Ret      RetInfo
}

// CFET is the control-flow execution tree of one method.
type CFET struct {
	Method MethodID
	Name   string
	Fn     *ir.Func
	Nodes  map[uint64]*Node
	Leaves []uint64
	// Syms is every symbolic variable created for this method (params,
	// opaque inputs, call results, branch opaques); decoding renames these
	// per call-frame instance.
	Syms []symbolic.Sym
	// ParamSym maps a formal parameter name to its symbol.
	ParamSym map[string]symbolic.Sym
	// Truncated counts paths dropped by the node budget.
	Truncated int
	// Pruned counts branch sites resolved by Options.BranchVerdict: each one
	// continued straight into the statically-live arm instead of splitting
	// the tree.
	Pruned int
	// Sliced counts branch sites skipped by Options.SliceBranch: both arms
	// were property-irrelevant, so the walker continued past the conditional
	// without splitting.
	Sliced int
	// SlicedAway marks a method Options.SliceFunc dropped entirely: the tree
	// is a single-leaf stub (immediate return) kept so method IDs and call
	// edges stay well-formed.
	SlicedAway bool

	symsSet map[symbolic.Sym]bool // lazy cache, see symSet
}

// Equation asserts Sym == Expr; used on call edges for parameter passing
// (§3.2 "a = 2*x") and on return edges for result binding ("y = a - 1").
type Equation struct {
	Sym  symbolic.Sym
	Expr symbolic.Expr
}

// CallEdge connects a caller CFET node to a callee CFET root (§3.2). One
// call edge exists per call-statement instance (per node containing it).
type CallEdge struct {
	ID         int32
	Caller     MethodID
	CallerNode uint64
	Callee     MethodID
	// ParamEqs bind callee parameter symbols to caller-side expressions.
	ParamEqs []Equation
	// RetSym is the caller-side symbol receiving an integer result
	// (symbolic.NoSym when the result is void, object-typed or ignored).
	RetSym symbolic.Sym
	// Site is the IR call-site ID (for reporting).
	Site int32
}

// ICFET is the whole-program index: all CFETs plus call edges.
type ICFET struct {
	Syms         *symbolic.Table
	Methods      []*CFET
	MethodByName map[string]MethodID
	CallEdges    []*CallEdge
	// MaxEncLen caps encoding growth (see Merge); conservative fallback
	// above it.
	MaxEncLen int
}

// Options tunes CFET construction.
type Options struct {
	// MaxNodesPerMethod bounds symbolic-execution tree growth per method;
	// paths beyond the budget are truncated (counted in CFET.Truncated).
	// Zero means the default of 4096.
	MaxNodesPerMethod int
	// MaxEncLen caps merged encoding length (elements); zero means 64.
	MaxEncLen int
	// BranchVerdict, when non-nil, supplies statically-proven branch
	// verdicts (from the pre-analysis constant propagation): +1 the
	// condition always holds, -1 it never holds, 0 unknown. A decided
	// branch does not split the tree — the walker continues into the live
	// arm within the current node. Dropping the conditional is sound
	// because a tautological (or contradictory, on the other arm) conjunct
	// never changes a path constraint's satisfiability; it only spares the
	// engine from enumerating and refuting the dead subtree.
	BranchVerdict func(*ir.If) int
	// SliceFunc, when non-nil, names functions the property-relevance
	// slicer proved irrelevant: their trees collapse to a single-return
	// stub (see CFET.SlicedAway). docs/slicing.md gives the argument.
	SliceFunc func(name string) bool
	// SliceBranch, when non-nil, marks Ifs whose two arms contain only
	// property-irrelevant statements: the walker skips the conditional and
	// both arms without splitting the path. For a total condition c and any
	// surrounding constraint R, sat(R∧c) ∨ sat(R∧¬c) ⟺ sat(R), so
	// removing the split preserves every feasibility verdict as long as the
	// skipped arms write nothing a later statement reads — which is exactly
	// what the slicer's inertness check guarantees.
	SliceBranch func(*ir.If) bool
}

// maxNodeID keeps child IDs representable: beyond depth ~61 we truncate.
const maxNodeID = uint64(1) << 61

// Build symbolically executes every function of p and assembles the ICFET.
func Build(p *ir.Program, syms *symbolic.Table, opts Options) (*ICFET, error) {
	if opts.MaxNodesPerMethod <= 0 {
		opts.MaxNodesPerMethod = 4096
	}
	if opts.MaxEncLen <= 0 {
		opts.MaxEncLen = 64
	}
	ic := &ICFET{
		Syms:         syms,
		MethodByName: map[string]MethodID{},
		MaxEncLen:    opts.MaxEncLen,
	}
	// Assign method IDs first so call edges can reference forward.
	for i, fn := range p.Funs {
		id := MethodID(i)
		ic.MethodByName[fn.Name] = id
		ic.Methods = append(ic.Methods, &CFET{
			Method:   id,
			Name:     fn.Name,
			Fn:       fn,
			Nodes:    map[uint64]*Node{},
			ParamSym: map[string]symbolic.Sym{},
		})
	}
	for i, fn := range p.Funs {
		b := &walker{
			ic:      ic,
			m:       ic.Methods[i],
			budget:  opts.MaxNodesPerMethod,
			verdict: opts.BranchVerdict,
			slice:   opts.SliceBranch,
		}
		if opts.SliceFunc != nil && opts.SliceFunc(fn.Name) {
			b.stub(fn)
			continue
		}
		if err := b.run(fn); err != nil {
			return nil, err
		}
	}
	// Materialize owned-symbol sets now: the engine's workers decode
	// concurrently and must only read CFET state.
	for _, m := range ic.Methods {
		m.buildSymSet()
	}
	return ic, nil
}

// PathCount returns the total number of encoded paths (leaves) across all
// methods — the quantity branch pruning shrinks.
func (ic *ICFET) PathCount() int {
	n := 0
	for _, m := range ic.Methods {
		n += len(m.Leaves)
	}
	return n
}

// PrunedBranches returns the total number of branch sites resolved by
// Options.BranchVerdict across all methods.
func (ic *ICFET) PrunedBranches() int {
	n := 0
	for _, m := range ic.Methods {
		n += m.Pruned
	}
	return n
}

// SlicedFunctions returns how many methods Options.SliceFunc collapsed to
// stubs.
func (ic *ICFET) SlicedFunctions() int {
	n := 0
	for _, m := range ic.Methods {
		if m.SlicedAway {
			n++
		}
	}
	return n
}

// SlicedBranches returns the total number of branch sites skipped by
// Options.SliceBranch across all methods.
func (ic *ICFET) SlicedBranches() int {
	n := 0
	for _, m := range ic.Methods {
		n += m.Sliced
	}
	return n
}

// Method returns the CFET of a method by name.
func (ic *ICFET) Method(name string) *CFET {
	id, ok := ic.MethodByName[name]
	if !ok {
		return nil
	}
	return ic.Methods[id]
}

// boolVal is a boolean variable's symbolic value: a known atom or opaque.
type boolVal struct {
	known bool
	atom  constraint.Atom
	opq   symbolic.Sym // used when !known
}

// env is a symbolic-execution environment.
type env struct {
	ints  map[string]symbolic.Expr
	bools map[string]boolVal
}

func (e env) clone() env {
	n := env{
		ints:  make(map[string]symbolic.Expr, len(e.ints)),
		bools: make(map[string]boolVal, len(e.bools)),
	}
	for k, v := range e.ints {
		n.ints[k] = v
	}
	for k, v := range e.bools {
		n.bools[k] = v
	}
	return n
}

type walker struct {
	ic      *ICFET
	m       *CFET
	budget  int
	nodes   int
	verdict func(*ir.If) int
	slice   func(*ir.If) bool
	// opqSyms caches stable symbols for opaque branch conditions.
	opqSyms map[int32]symbolic.Sym
}

func (w *walker) fresh(prefix string) symbolic.Sym {
	s := w.ic.Syms.Fresh(w.m.Name + "." + prefix)
	w.m.Syms = append(w.m.Syms, s)
	return s
}

func (w *walker) intern(name string) symbolic.Sym {
	s := w.ic.Syms.Intern(w.m.Name + "." + name)
	w.m.Syms = append(w.m.Syms, s)
	return s
}

func (w *walker) opaqueSym(id int32) symbolic.Sym {
	if w.opqSyms == nil {
		w.opqSyms = map[int32]symbolic.Sym{}
	}
	if s, ok := w.opqSyms[id]; ok {
		return s
	}
	s := w.intern(fmt.Sprintf("opq%d", id))
	w.opqSyms[id] = s
	return s
}

func (w *walker) newNode(id uint64) *Node {
	n := &Node{ID: id}
	w.m.Nodes[id] = n
	w.nodes++
	return n
}

// contFrame lets statements after an If run inside both branches.
type contFrame struct {
	stmts []ir.Stmt
	next  *contFrame
}

func (w *walker) run(fn *ir.Func) error {
	e := env{ints: map[string]symbolic.Expr{}, bools: map[string]boolVal{}}
	for _, p := range fn.Params {
		s := w.intern(p.Name)
		w.m.ParamSym[p.Name] = s
		if p.Type == "int" || p.Type == "bool" {
			e.ints[p.Name] = symbolic.Var(s)
		}
	}
	root := w.newNode(0)
	w.walk(fn.Body.Stmts, nil, root, e)
	return nil
}

// stub replaces a sliced-away method's tree with a single immediate-return
// leaf. Parameter symbols are still interned so call edges into the stub
// bind their equations as usual.
func (w *walker) stub(fn *ir.Func) {
	for _, p := range fn.Params {
		w.m.ParamSym[p.Name] = w.intern(p.Name)
	}
	root := w.newNode(0)
	w.endLeaf(root, LeafReturn, RetInfo{Kind: LeafReturn})
	w.m.SlicedAway = true
}

// walk executes stmts in node n under environment e; k holds statements
// following enclosing Ifs.
func (w *walker) walk(stmts []ir.Stmt, k *contFrame, n *Node, e env) {
	for {
		if len(stmts) == 0 {
			if k == nil {
				w.endLeaf(n, LeafReturn, RetInfo{Kind: LeafReturn}) // fall-off
				return
			}
			stmts, k = k.stmts, k.next
			continue
		}
		s := stmts[0]
		rest := stmts[1:]
		switch s := s.(type) {
		case *ir.IntAssign:
			e.ints[s.Dst] = w.evalArith(s, e)
			n.Stmts = append(n.Stmts, PlacedStmt{Stmt: s, CallEdge: -1, EventResultSym: symbolic.NoSym})
		case *ir.BoolAssign:
			e.bools[s.Dst] = w.evalCondVal(s.Cond, e)
			n.Stmts = append(n.Stmts, PlacedStmt{Stmt: s, CallEdge: -1, EventResultSym: symbolic.NoSym})
		case *ir.ObjAssign, *ir.NewObj, *ir.Store, *ir.Load, *ir.CatchBind:
			n.Stmts = append(n.Stmts, PlacedStmt{Stmt: s, CallEdge: -1, EventResultSym: symbolic.NoSym})
		case *ir.Event:
			ps := PlacedStmt{Stmt: s, CallEdge: -1, EventResultSym: symbolic.NoSym}
			if s.Dst != "" {
				sym := w.fresh("ev_" + s.Method)
				e.ints[s.Dst] = symbolic.Var(sym)
				ps.EventResultSym = sym
			}
			n.Stmts = append(n.Stmts, ps)
		case *ir.Call:
			ce := w.makeCallEdge(s, n, e)
			if s.Dst != "" && !s.DstIsObject && ce != nil {
				e.ints[s.Dst] = symbolic.Var(ce.RetSym)
			}
			id := int32(-1)
			if ce != nil {
				id = ce.ID
			}
			n.Stmts = append(n.Stmts, PlacedStmt{Stmt: s, CallEdge: id, EventResultSym: symbolic.NoSym})
		case *ir.Return:
			ri := RetInfo{Kind: LeafReturn}
			if s.SrcIsObject {
				ri.ObjVar = s.Src.Var
			} else if s.Src != (ir.Operand{}) {
				ri.HasExpr = true
				ri.Expr = w.evalOperand(s.Src, e)
			}
			n.Stmts = append(n.Stmts, PlacedStmt{Stmt: s, CallEdge: -1, EventResultSym: symbolic.NoSym})
			w.endLeaf(n, LeafReturn, ri)
			return
		case *ir.ThrowExit:
			n.Stmts = append(n.Stmts, PlacedStmt{Stmt: s, CallEdge: -1, EventResultSym: symbolic.NoSym})
			w.endLeaf(n, LeafThrow, RetInfo{Kind: LeafThrow})
			return
		case *ir.If:
			if w.slice != nil && w.slice(s) {
				// Property-irrelevant on both arms: continue past the
				// conditional without splitting and without either arm.
				w.m.Sliced++
				stmts = rest
				continue
			}
			if w.verdict != nil {
				if v := w.verdict(s); v != 0 {
					// Statically decided: continue into the live arm inside
					// this node; the dead arm is never built.
					w.m.Pruned++
					arm := s.Then
					if v < 0 {
						arm = s.Else
					}
					if len(rest) > 0 {
						k = &contFrame{stmts: rest, next: k}
					}
					stmts = arm.Stmts
					continue
				}
			}
			atom := w.evalCondAtom(s.Cond, e)
			// Constant-foldable conditions still split (the CFET stays a
			// well-formed binary tree); the unsat side prunes at decode.
			n.HasCond = true
			n.Cond = atom
			n.CondPos = s.Pos
			n.CondText = s.Cond.String()
			falseID, trueID := 2*n.ID+1, 2*n.ID+2
			if trueID >= maxNodeID || w.nodes+2 > w.budget {
				// Budget or depth exhausted: truncate both branches.
				n.HasCond = false
				w.m.Truncated++
				w.endLeaf(n, LeafTruncate, RetInfo{Kind: LeafTruncate})
				return
			}
			nk := k
			if len(rest) > 0 {
				nk = &contFrame{stmts: rest, next: k}
			}
			tn := w.newNode(trueID)
			w.walk(s.Then.Stmts, nk, tn, e.clone())
			if w.nodes >= w.budget {
				// The sibling subtree consumed the budget. Skip the false
				// child entirely: no encoding will ever reference it, and
				// decoding only walks ancestors of referenced nodes.
				w.m.Truncated++
				return
			}
			fn := w.newNode(falseID)
			w.walk(s.Else.Stmts, nk, fn, e.clone())
			return
		default:
			panic(fmt.Sprintf("cfet: unexpected statement %T (exceptions must be expanded)", s))
		}
		stmts = rest
	}
}

func (w *walker) endLeaf(n *Node, kind LeafKind, ri RetInfo) {
	if n.Leaf != LeafNone {
		return
	}
	n.Leaf = kind
	n.Ret = ri
	w.m.Leaves = append(w.m.Leaves, n.ID)
}

func (w *walker) makeCallEdge(c *ir.Call, n *Node, e env) *CallEdge {
	calleeID, ok := w.ic.MethodByName[c.Callee]
	if !ok {
		return nil
	}
	callee := w.ic.Methods[calleeID]
	ce := &CallEdge{
		ID:         int32(len(w.ic.CallEdges)),
		Caller:     w.m.Method,
		CallerNode: n.ID,
		Callee:     calleeID,
		RetSym:     symbolic.NoSym,
		Site:       c.Site,
	}
	for _, a := range c.IntArgs {
		// The callee's parameter symbol is interned under the callee's
		// namespace; intern here in case the callee is processed later.
		ps, exists := callee.ParamSym[a.Formal]
		if !exists {
			ps = w.ic.Syms.Intern(c.Callee + "." + a.Formal)
			callee.ParamSym[a.Formal] = ps
			callee.Syms = append(callee.Syms, ps)
		}
		ce.ParamEqs = append(ce.ParamEqs, Equation{Sym: ps, Expr: w.evalOperand(a.Arg, e)})
	}
	if c.Dst != "" && !c.DstIsObject {
		ce.RetSym = w.fresh(fmt.Sprintf("call%d.ret", c.Site))
	}
	w.ic.CallEdges = append(w.ic.CallEdges, ce)
	return ce
}

func (w *walker) evalOperand(o ir.Operand, e env) symbolic.Expr {
	if o.IsConst() {
		return symbolic.Const(o.Const)
	}
	if v, ok := e.ints[o.Var]; ok {
		return v
	}
	// Unknown variable (e.g. used before def): opaque.
	s := w.fresh("undef_" + o.Var)
	e.ints[o.Var] = symbolic.Var(s)
	return e.ints[o.Var]
}

func (w *walker) evalArith(s *ir.IntAssign, e env) symbolic.Expr {
	switch s.Op {
	case ir.Mov:
		return w.evalOperand(s.A, e)
	case ir.Add:
		return w.evalOperand(s.A, e).Add(w.evalOperand(s.B, e))
	case ir.Sub:
		return w.evalOperand(s.A, e).Sub(w.evalOperand(s.B, e))
	case ir.Neg:
		return w.evalOperand(s.A, e).Neg()
	case ir.Mul:
		a, b := w.evalOperand(s.A, e), w.evalOperand(s.B, e)
		if a.IsConst() {
			return b.Scale(a.Const)
		}
		if b.IsConst() {
			return a.Scale(b.Const)
		}
		// Non-linear: over-approximate with a fresh symbol.
		return symbolic.Var(w.fresh("nonlin"))
	default: // Opaque
		return symbolic.Var(w.fresh("in"))
	}
}

// evalCondAtom turns an IR condition into a symbolic atom under e.
func (w *walker) evalCondAtom(c ir.Cond, e env) constraint.Atom {
	var a constraint.Atom
	switch {
	case c.BoolVar != "":
		bv, ok := e.bools[c.BoolVar]
		if !ok {
			bv = boolVal{opq: w.fresh("undefb_" + c.BoolVar)}
			e.bools[c.BoolVar] = bv
		}
		if bv.known {
			a = bv.atom
		} else {
			a = constraint.Atom{LHS: symbolic.Var(bv.opq), Op: constraint.NE}
		}
	case c.IsOpaque():
		a = constraint.Atom{LHS: symbolic.Var(w.opaqueSym(c.OpaqueID)), Op: constraint.NE}
	default:
		l := w.evalOperand(c.A, e)
		r := w.evalOperand(c.B, e)
		var op constraint.Op
		switch c.Kind {
		case ir.CmpEq:
			op = constraint.EQ
		case ir.CmpNe:
			op = constraint.NE
		case ir.CmpLt:
			op = constraint.LT
		case ir.CmpLe:
			op = constraint.LE
		case ir.CmpGt:
			op = constraint.GT
		default:
			op = constraint.GE
		}
		a = constraint.NewAtom(l, op, r)
	}
	if c.Negated {
		a = a.Negate()
	}
	return a
}

func (w *walker) evalCondVal(c ir.Cond, e env) boolVal {
	return boolVal{known: true, atom: w.evalCondAtom(c, e)}
}

// Parent returns the parent ID of a CFET node ((id-1)>>1; see package doc).
func Parent(id uint64) uint64 {
	if id == 0 {
		return 0
	}
	return (id - 1) >> 1
}

// IsTrueChild reports whether id is its parent's true child (even, nonzero).
func IsTrueChild(id uint64) bool { return id != 0 && id%2 == 0 }

// IsAncestorOrEqual reports whether a is an ancestor of b (or equal) in the
// complete binary numbering.
func IsAncestorOrEqual(a, b uint64) bool {
	for b > a {
		b = Parent(b)
	}
	return a == b
}

// PathConstraint reconstructs the branch constraint of the tree path from
// ancestor `from` down to `to` within this CFET (Algorithm 1), applying the
// activation renamer (nil for the identity).
func (m *CFET) PathConstraint(from, to uint64, ren *Renamer, out constraint.Conj) (constraint.Conj, error) {
	cur := to
	for cur != from {
		if cur == 0 {
			return out, fmt.Errorf("cfet %s: %d is not an ancestor of %d", m.Name, from, to)
		}
		parent := Parent(cur)
		pn := m.Nodes[parent]
		if pn == nil {
			return out, fmt.Errorf("cfet %s: missing node %d", m.Name, parent)
		}
		if pn.HasCond {
			a := pn.Cond
			if !IsTrueChild(cur) {
				a = a.Negate()
			}
			out = out.And(ren.Atom(a))
		}
		cur = parent
	}
	return out, nil
}
