package cfet

import (
	"testing"

	"github.com/grapple-system/grapple/internal/callgraph"
	"github.com/grapple-system/grapple/internal/constraint"
	"github.com/grapple-system/grapple/internal/ir"
	"github.com/grapple-system/grapple/internal/lang"
	"github.com/grapple-system/grapple/internal/smt"
	"github.com/grapple-system/grapple/internal/symbolic"
)

func buildICFET(t *testing.T, src string) (*ICFET, *symbolic.Table, *ir.Program) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := lang.Resolve(prog)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Lower(info, ir.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = callgraph.Build(p)
	tab := symbolic.NewTable()
	ic, err := Build(p, tab, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ic, tab, p
}

const figure3b = `
type FileWriter;
fun main() {
  var out: FileWriter = null;
  var o: FileWriter = null;
  var x: int = input();
  var y: int = x;
  if (x >= 0) {
    out = new FileWriter();
    o = out;
    y = y - 1;
  } else {
    y = y + 1;
  }
  if (y > 0) {
    out.write();
    o.close();
  }
  return;
}`

// TestFigure5aCFETShape checks the CFET of the paper's Fig. 3b program
// matches Fig. 5a: root 0 with cond x>=0; children 1 (false) and 2 (true)
// with conds x+1>0 and x-1>0; leaves 3..6.
func TestFigure5aCFETShape(t *testing.T) {
	ic, tab, _ := buildICFET(t, figure3b)
	m := ic.Method("main")
	if m == nil {
		t.Fatal("no main CFET")
	}
	root := m.Nodes[0]
	if root == nil || !root.HasCond {
		t.Fatal("root must carry the first conditional")
	}
	if got := root.Cond.String(tab); got != "main.x$0 >= 0" && got != "main.x >= 0" {
		// Symbol naming is table-dependent; check structure instead.
		if root.Cond.Op != constraint.GE {
			t.Fatalf("root cond = %s", got)
		}
	}
	n1, n2 := m.Nodes[1], m.Nodes[2]
	if n1 == nil || n2 == nil {
		t.Fatalf("children missing: %v", m.Nodes)
	}
	// Node 2 (true child): y = x-1, cond y>0 i.e. x-1>0.
	if !n2.HasCond || n2.Cond.Op != constraint.GT {
		t.Fatalf("node 2 cond: %+v", n2.Cond)
	}
	// Leaves 3,4,5,6 exist.
	for _, id := range []uint64{3, 4, 5, 6} {
		n := m.Nodes[id]
		if n == nil {
			t.Fatalf("leaf %d missing", id)
		}
		if n.Leaf != LeafReturn {
			t.Fatalf("leaf %d kind = %v", id, n.Leaf)
		}
	}
	if len(m.Nodes) != 7 {
		t.Fatalf("CFET has %d nodes, want 7", len(m.Nodes))
	}
	// The true-true leaf (node 6) contains the write/close events.
	var events int
	for _, ps := range m.Nodes[6].Stmts {
		if _, ok := ps.Stmt.(*ir.Event); ok {
			events++
		}
	}
	if events != 2 {
		t.Fatalf("node 6 has %d events, want 2", events)
	}
}

// TestFigure3bPathFeasibility reproduces §2.1: the third path (else branch
// then the second if taken) is infeasible; the first path is feasible.
func TestFigure3bPathFeasibility(t *testing.T) {
	ic, _, _ := buildICFET(t, figure3b)
	m := ic.Method("main")
	solver := smt.New(smt.DefaultOptions())

	// Path 0 -> 2 -> 6 (true, true): feasible (x big).
	c, err := m.PathConstraint(0, 6, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := solver.Solve(c); got != smt.Sat {
		t.Fatalf("path 0->6: %v, want sat", got)
	}
	// Path 0 -> 1 -> 4 (false branch, then true): infeasible: x<0 && x+1>0.
	c, err = m.PathConstraint(0, 4, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := solver.Solve(c); got != smt.Unsat {
		t.Fatalf("infeasible path 0->4: %v, want unsat", got)
	}
	// Path 0 -> 1 -> 3 (false, false): feasible.
	c, err = m.PathConstraint(0, 3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := solver.Solve(c); got != smt.Sat {
		t.Fatalf("path 0->3: %v, want sat", got)
	}
}

// figure6 is the paper's Fig. 6 code snippet.
const figure6 = `
fun bar(a: int): int {
  if (a < 0) {
    return a + 1;
  }
  return a - 1;
}
fun foo(x: int) {
  var y: int = x + 1;
  if (x > 0) {
    y = bar(2 * x);
  }
  if (y < 0) {
    return;
  }
  return;
}`

// TestFigure6InterproceduralEncoding reproduces the paper's §3.2 example:
// the path taking bar's a<0 branch then !(y<0) decodes to
// x>0 && a=2x && a<0 && y=a+1 && !(y<0), which is unsatisfiable, while the
// a>=0 variant is satisfiable.
func TestFigure6InterproceduralEncoding(t *testing.T) {
	ic, tab, _ := buildICFET(t, figure6)
	foo, bar := ic.Method("foo"), ic.Method("bar")
	if foo == nil || bar == nil {
		t.Fatal("methods missing")
	}
	// Find the call edge foo -> bar. It lives in foo's node 2 (true child).
	var ce *CallEdge
	for _, c := range ic.CallEdges {
		if ic.Methods[c.Caller].Name == "foo" {
			ce = c
		}
	}
	if ce == nil {
		t.Fatal("no call edge foo->bar")
	}
	if ce.CallerNode != 2 {
		t.Fatalf("call edge in node %d, want 2 (true child)", ce.CallerNode)
	}
	if len(ce.ParamEqs) != 1 {
		t.Fatalf("param eqs: %+v", ce.ParamEqs)
	}
	if ce.RetSym == symbolic.NoSym {
		t.Fatal("bar returns an int; RetSym required")
	}

	solver := smt.New(smt.DefaultOptions())

	// bar's CFET: root cond a<0; true child 2 returns a+1; false child 1
	// returns a-1.
	// Infeasible encoding: [foo0,foo2] (ce [bar0,bar2] )ce [foo2,foo5]
	// (foo node 5 is the false child of node 2, i.e. !(y<0)).
	enc := Enc{
		Interval(foo.Method, 0, 2),
		CallElem(ce.ID),
		Interval(bar.Method, 0, 2),
		RetElem(ce.ID),
		Interval(foo.Method, 2, 5),
	}
	c, err := ic.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got := solver.Solve(c); got != smt.Unsat {
		t.Fatalf("paper's infeasible path decoded to %q -> %v, want unsat", c.String(tab), got)
	}

	// Feasible variant: bar takes the a>=0 branch (leaf 1, returns a-1).
	enc2 := Enc{
		Interval(foo.Method, 0, 2),
		CallElem(ce.ID),
		Interval(bar.Method, 0, 1),
		RetElem(ce.ID),
		Interval(foo.Method, 2, 5),
	}
	c2, err := ic.Decode(enc2)
	if err != nil {
		t.Fatal(err)
	}
	if got := solver.Solve(c2); got != smt.Sat {
		t.Fatalf("feasible path decoded to %q -> %v, want sat", c2.String(tab), got)
	}
}

func TestParentChildAlgebra(t *testing.T) {
	for n := uint64(0); n < 2000; n++ {
		if Parent(2*n+1) != n || Parent(2*n+2) != n {
			t.Fatalf("parent algebra broken at %d", n)
		}
		if IsTrueChild(2*n + 1) {
			t.Fatalf("%d must be a false child", 2*n+1)
		}
		if !IsTrueChild(2*n + 2) {
			t.Fatalf("%d must be a true child", 2*n+2)
		}
		if !IsAncestorOrEqual(n, 2*n+1) || !IsAncestorOrEqual(n, 2*n+2) {
			t.Fatal("children must descend from parent")
		}
	}
	if !IsAncestorOrEqual(0, 123456) {
		t.Fatal("root is everyone's ancestor")
	}
	if IsAncestorOrEqual(1, 2) || IsAncestorOrEqual(2, 1) {
		t.Fatal("siblings are not related")
	}
}

func TestMergeCase1(t *testing.T) {
	ic := &ICFET{MaxEncLen: 64}
	got, ok := ic.Merge(Enc{Interval(0, 0, 2)}, Enc{Interval(0, 2, 6)})
	if !ok || !got.Equal(Enc{Interval(0, 0, 6)}) {
		t.Fatalf("case 1: %v %v", got, ok)
	}
	// Ancestor gap also joins: [0,1] + [3,3] where 1 is parent of 3.
	got, ok = ic.Merge(Enc{Interval(0, 0, 1)}, Enc{Interval(0, 3, 3)})
	if !ok || !got.Equal(Enc{Interval(0, 0, 3)}) {
		t.Fatalf("ancestor join: %v %v", got, ok)
	}
}

func TestMergeCase2(t *testing.T) {
	ic := &ICFET{MaxEncLen: 64}
	got, ok := ic.Merge(Enc{Interval(0, 0, 2)}, Enc{CallElem(7), Interval(1, 0, 0)})
	want := Enc{Interval(0, 0, 2), CallElem(7), Interval(1, 0, 0)}
	if !ok || !got.Equal(want) {
		t.Fatalf("case 2: %v", got)
	}
}

func TestMergeCase3MatchedElimination(t *testing.T) {
	ic := &ICFET{MaxEncLen: 64}
	e1 := Enc{Interval(0, 0, 2), CallElem(7), Interval(1, 0, 0)}
	e2 := Enc{Interval(1, 0, 5), RetElem(7), Interval(0, 2, 6)}
	got, ok := ic.Merge(e1, e2)
	if !ok || !got.Equal(Enc{Interval(0, 0, 6)}) {
		t.Fatalf("case 3: %v %v", got, ok)
	}
}

func TestMergeCase4UnmatchedCalls(t *testing.T) {
	ic := &ICFET{MaxEncLen: 64}
	e1 := Enc{Interval(0, 0, 2), CallElem(7), Interval(1, 0, 0)}
	e2 := Enc{Interval(1, 0, 1), CallElem(9), Interval(2, 0, 0)}
	got, ok := ic.Merge(e1, e2)
	want := Enc{Interval(0, 0, 2), CallElem(7), Interval(1, 0, 1), CallElem(9), Interval(2, 0, 0)}
	if !ok || !got.Equal(want) {
		t.Fatalf("case 4: %v", got)
	}
}

func TestMergeConflictingBranches(t *testing.T) {
	ic := &ICFET{MaxEncLen: 64}
	// [0,4] ends in node 4's subtree; [0,3] in node 3's: siblings at 3/4
	// under parent 1; node 4's parent is 1 too. 3 and 4 are siblings.
	_, ok := ic.Merge(Enc{Interval(0, 0, 3)}, Enc{Interval(0, 4, 4)})
	if ok {
		t.Fatal("conflicting sibling fragments must not merge")
	}
}

func TestMergeEmpty(t *testing.T) {
	ic := &ICFET{MaxEncLen: 64}
	e := Enc{Interval(0, 0, 2)}
	if got, ok := ic.Merge(nil, e); !ok || !got.Equal(e) {
		t.Fatal("empty left")
	}
	if got, ok := ic.Merge(e, nil); !ok || !got.Equal(e) {
		t.Fatal("empty right")
	}
}

func TestMergeNestedElimination(t *testing.T) {
	ic := &ICFET{MaxEncLen: 64}
	// Two-level nesting: ( 1 ( 2 ... )2 )1 collapses fully.
	e1 := Enc{Interval(0, 0, 0), CallElem(1), Interval(1, 0, 0), CallElem(2), Interval(2, 0, 0)}
	e2 := Enc{Interval(2, 0, 1), RetElem(2), Interval(1, 0, 2), RetElem(1), Interval(0, 0, 2)}
	got, ok := ic.Merge(e1, e2)
	if !ok || !got.Equal(Enc{Interval(0, 0, 2)}) {
		t.Fatalf("nested elimination: %v %v", got, ok)
	}
}

func TestDecodeRepeatedCalleeInstancesIndependent(t *testing.T) {
	// Calling bar twice with different arguments must not conflate the two
	// activations of bar's parameter.
	src := `
fun bar(a: int): int {
  if (a < 0) {
    return 0 - a;
  }
  return a;
}
fun foo(x: int) {
  var p: int = bar(x);
  var q: int = bar(0 - x);
  if (p + q < 0) {
    return;
  }
  return;
}`
	ic, tab, _ := buildICFET(t, src)
	foo := ic.Method("foo")
	var calls []*CallEdge
	for _, c := range ic.CallEdges {
		if ic.Methods[c.Caller].Name == "foo" {
			calls = append(calls, c)
		}
	}
	if len(calls) != 2 {
		t.Fatalf("expected 2 call edges, got %d", len(calls))
	}
	// Path: first call takes a<0 branch (leaf 2... bar true child 2), second
	// call takes a>=0 branch (leaf 1). With x<0... either way both
	// activations must use independent "a" symbols: conjunction
	// a1 = x && a1 < 0 && a2 = -x && a2 >= 0 is satisfiable (x<0).
	enc := Enc{
		Interval(foo.Method, 0, 0),
		CallElem(calls[0].ID),
		Interval(ic.Method("bar").Method, 0, 2),
		RetElem(calls[0].ID),
		CallElem(calls[1].ID),
		Interval(ic.Method("bar").Method, 0, 1),
		RetElem(calls[1].ID),
	}
	c, err := ic.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	solver := smt.New(smt.DefaultOptions())
	if got := solver.Solve(c); got != smt.Sat {
		t.Fatalf("independent activations should be sat, got %v: %s", got, c.String(tab))
	}
}

func TestBudgetTruncation(t *testing.T) {
	// 40 sequential branches would need 2^41 nodes; the budget truncates.
	src := "fun f(x: int) {\n"
	for i := 0; i < 40; i++ {
		src += "  if (x > 0) { x = x + 1; } else { x = x - 1; }\n"
	}
	src += "  return;\n}"
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := lang.Resolve(prog)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Lower(info, ir.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ic, err := Build(p, symbolic.NewTable(), Options{MaxNodesPerMethod: 255})
	if err != nil {
		t.Fatal(err)
	}
	m := ic.Method("f")
	if len(m.Nodes) > 256 {
		t.Fatalf("budget exceeded: %d nodes", len(m.Nodes))
	}
	if m.Truncated == 0 {
		t.Fatal("expected truncation")
	}
}

func TestLeafKinds(t *testing.T) {
	src := `
type E;
fun f(x: int) {
  if (x > 0) {
    throw new E();
  }
  return;
}`
	ic, _, _ := buildICFET(t, src)
	m := ic.Method("f")
	kinds := map[LeafKind]int{}
	for _, l := range m.Leaves {
		kinds[m.Nodes[l].Leaf]++
	}
	if kinds[LeafThrow] != 1 || kinds[LeafReturn] != 1 {
		t.Fatalf("leaf kinds: %v", kinds)
	}
}

func TestEncString(t *testing.T) {
	ic, _, _ := buildICFET(t, figure6)
	enc := Enc{Interval(ic.Method("foo").Method, 0, 2), CallElem(0)}
	s := enc.String(ic)
	if s == "" || s == "{}" {
		t.Fatalf("bad render %q", s)
	}
	if (Enc{}).String(ic) != "{}" {
		t.Fatal("empty encoding renders {}")
	}
}

func TestDecodeLenientOnUnmatchedStructure(t *testing.T) {
	ic, _, _ := buildICFET(t, figure6)
	foo := ic.Method("foo")
	var ce *CallEdge
	for _, c := range ic.CallEdges {
		if ic.Methods[c.Caller].Name == "foo" {
			ce = c
		}
	}
	// Unmatched return with no preceding call: decoded leniently (weaker
	// constraint, never an error).
	enc := Enc{Interval(foo.Method, 0, 2), RetElem(ce.ID)}
	if _, err := ic.Decode(enc); err != nil {
		t.Fatalf("unmatched return must be lenient: %v", err)
	}
	// Fragments from different methods without connecting call edges.
	bar := ic.Method("bar")
	enc2 := Enc{Interval(foo.Method, 0, 2), Interval(bar.Method, 0, 1)}
	if _, err := ic.Decode(enc2); err != nil {
		t.Fatalf("cross-method fragments must be lenient: %v", err)
	}
}

func TestDecodeErrorsOnBadIDs(t *testing.T) {
	ic, _, _ := buildICFET(t, figure6)
	if _, err := ic.Decode(Enc{Interval(99, 0, 1)}); err == nil {
		t.Fatal("bad method ID must error")
	}
	if _, err := ic.Decode(Enc{CallElem(9999)}); err == nil {
		t.Fatal("bad call ID must error")
	}
	if _, err := ic.Decode(Enc{RetElem(9999)}); err == nil {
		t.Fatal("bad ret ID must error")
	}
}

func TestPathConstraintNonAncestorErrors(t *testing.T) {
	ic, _, _ := buildICFET(t, figure3b)
	m := ic.Method("main")
	// Node 1 is not an ancestor of node 2 (siblings).
	if _, err := m.PathConstraint(1, 2, nil, nil); err == nil {
		t.Fatal("sibling interval must error")
	}
}

func TestEliminableKeepsEquationBearingCalls(t *testing.T) {
	ic, _, _ := buildICFET(t, figure6)
	foo, bar := ic.Method("foo"), ic.Method("bar")
	var ce *CallEdge
	for _, c := range ic.CallEdges {
		if ic.Methods[c.Caller].Name == "foo" {
			ce = c
		}
	}
	// bar binds a parameter and a return value: the completed pair must
	// survive reduction so its equations keep constraining the caller.
	e1 := Enc{Interval(foo.Method, 0, 2), CallElem(ce.ID), Interval(bar.Method, 0, 0)}
	e2 := Enc{Interval(bar.Method, 0, 1), RetElem(ce.ID), Interval(foo.Method, 2, 5)}
	merged, ok := ic.Merge(e1, e2)
	if !ok {
		t.Fatal("merge failed")
	}
	calls := 0
	for _, el := range merged {
		if el.Kind == KCall || el.Kind == KRet {
			calls++
		}
	}
	if calls != 2 {
		t.Fatalf("equation-bearing pair eliminated: %v", merged.String(ic))
	}
}
