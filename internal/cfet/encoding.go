package cfet

import (
	"fmt"
	"strings"
)

// ElemKind distinguishes encoding elements.
type ElemKind uint8

// Encoding element kinds: an interval within one method's CFET, a call edge
// "(i", or a return edge ")i" (§3.2).
const (
	KInterval ElemKind = iota
	KCall
	KRet
)

// Elem is one element of a path encoding.
type Elem struct {
	Kind   ElemKind
	Method MethodID // interval only
	Start  uint64   // interval only
	End    uint64   // interval only
	Call   int32    // call/ret: ICFET call-edge ID
}

// Interval builds an interval element.
func Interval(m MethodID, start, end uint64) Elem {
	return Elem{Kind: KInterval, Method: m, Start: start, End: end}
}

// CallElem builds a "(i" element.
func CallElem(id int32) Elem { return Elem{Kind: KCall, Call: id} }

// RetElem builds a ")i" element.
func RetElem(id int32) Elem { return Elem{Kind: KRet, Call: id} }

// Enc is a path encoding: a sequence of intervals connected by call/return
// edge IDs. The paper's §4.2 case-3 elimination keeps encodings compact; an
// Enc may also contain non-connecting fragments (e.g. the two flowsTo legs
// of an alias edge), whose decoded constraints are simply conjoined.
type Enc []Elem

// String renders the encoding against an ICFET (nil prints raw method IDs).
func (e Enc) String(ic *ICFET) string {
	if len(e) == 0 {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, el := range e {
		if i > 0 {
			b.WriteString(", ")
		}
		switch el.Kind {
		case KInterval:
			name := fmt.Sprintf("m%d", el.Method)
			if ic != nil {
				name = ic.Methods[el.Method].Name
			}
			fmt.Fprintf(&b, "[%s%d, %s%d]", name, el.Start, name, el.End)
		case KCall:
			fmt.Fprintf(&b, "(%d", el.Call)
		case KRet:
			fmt.Fprintf(&b, ")%d", el.Call)
		}
	}
	b.WriteByte('}')
	return b.String()
}

// Equal reports element-wise equality.
func (e Enc) Equal(o Enc) bool {
	if len(e) != len(o) {
		return false
	}
	for i := range e {
		if e[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone copies the encoding.
func (e Enc) Clone() Enc {
	out := make(Enc, len(e))
	copy(out, e)
	return out
}

// Skeleton returns just the call/return elements of the encoding. Widening
// an edge to its skeleton discards interval (branch) precision while
// preserving frame balance: a skeletonized path still cannot enter a callee
// through one call-edge instance and leave through another.
func (e Enc) Skeleton() Enc {
	var out Enc
	for _, el := range e {
		if el.Kind == KCall || el.Kind == KRet {
			out = append(out, el)
		}
	}
	return out
}

// Merge combines the encodings of two consecutive edges x->y (e1) and y->z
// (e2) into the encoding of the induced edge x->z, implementing the four
// cases of §4.2:
//
//  1. {[a,b]} + {[b,c]}            -> {[a,c]}        (same method, connects)
//  2. {[a,b]} + {(i}               -> {[a,b], (i, [0,0]}
//  3. {[a,b], (i, [0,d]} + {[0,d'], )i, [b,c]} -> {[a,c]}  (matched pair)
//  4. unmatched calls              -> concatenation (extended call string)
//
// Merge additionally reports ok=false when the two paths provably lie on
// conflicting branches of the same CFET (sibling subtrees), which lets the
// engine reject the edge without a solver call — that is path sensitivity
// acting structurally. If the merged encoding would exceed ic.MaxEncLen the
// merge degrades by dropping *interval* precision least recently used —
// never call/return structure — keeping soundness (constraints only get
// weaker, so feasible paths are never lost).
func (ic *ICFET) Merge(e1, e2 Enc) (Enc, bool) {
	if len(e1) == 0 {
		return e2.Clone(), true
	}
	if len(e2) == 0 {
		return e1.Clone(), true
	}
	out := make(Enc, 0, len(e1)+len(e2))
	out = append(out, e1...)

	// Join at the junction: last of e1 vs first of e2.
	first := e2[0]
	rest := e2[1:]
	last := &out[len(out)-1]
	if last.Kind == KInterval && first.Kind == KInterval && last.Method == first.Method {
		j, ok, conflict := joinIntervals(*last, first)
		if conflict {
			return nil, false
		}
		if ok {
			*last = j
			out = append(out, rest...)
			return ic.reduce(out)
		}
	}
	out = append(out, e2...)
	return ic.reduce(out)
}

// joinIntervals attempts to connect [a,b] and [c,d] in the same method.
// It succeeds when the tree path a..b extends to c (b ancestor-or-equal of
// c), or when one interval's path contains the other's. conflict=true means
// the two intervals lie in disjoint sibling subtrees, so no single
// control-flow path covers both.
func joinIntervals(x, y Elem) (Elem, bool, bool) {
	switch {
	case x.End == y.Start || IsAncestorOrEqual(x.End, y.Start):
		return Interval(x.Method, x.Start, y.End), true, false
	case IsAncestorOrEqual(x.Start, y.Start) && IsAncestorOrEqual(y.End, x.End):
		// y's fragment lies on x's path: x subsumes y.
		return x, true, false
	case IsAncestorOrEqual(y.Start, x.Start) && IsAncestorOrEqual(x.End, y.End):
		return y, true, false
	case IsAncestorOrEqual(y.End, x.Start):
		// y precedes x on the same path (reverse-direction composition, as
		// produced by bar edges in the alias grammar): cover both.
		return Interval(x.Method, y.Start, x.End), true, false
	case onOnePath(x, y):
		// Overlapping fragments of one path not covered above.
		lo, hi := x.Start, x.End
		if IsAncestorOrEqual(y.Start, lo) {
			lo = y.Start
		}
		if IsAncestorOrEqual(hi, y.End) {
			hi = y.End
		}
		return Interval(x.Method, lo, hi), true, false
	default:
		return Elem{}, false, disjointSiblings(x, y)
	}
}

// onOnePath reports whether all four endpoints lie on one root-to-leaf path.
func onOnePath(x, y Elem) bool {
	ends := [2]uint64{x.End, y.End}
	deepest := ends[0]
	if IsAncestorOrEqual(deepest, ends[1]) {
		deepest = ends[1]
	} else if !IsAncestorOrEqual(ends[1], deepest) {
		return false
	}
	return IsAncestorOrEqual(x.Start, deepest) && IsAncestorOrEqual(y.Start, deepest) &&
		IsAncestorOrEqual(x.End, deepest) && IsAncestorOrEqual(y.End, deepest)
}

// disjointSiblings reports whether the two fragments provably lie in
// sibling subtrees (no single path covers both).
func disjointSiblings(x, y Elem) bool {
	// If neither endpoint-pair is ancestor-related, the fragments diverge.
	return !IsAncestorOrEqual(x.End, y.End) && !IsAncestorOrEqual(y.End, x.End)
}

// reduce performs §4.2 case-3 matched call/return elimination and enforces
// the length cap.
func (ic *ICFET) reduce(e Enc) (Enc, bool) {
	changed := true
	for changed {
		changed = false
		for i := 0; i < len(e); i++ {
			if e[i].Kind != KRet {
				continue
			}
			// Find the matching KCall scanning left, skipping completed
			// pairs is unnecessary once inner pairs are already reduced:
			// the nearest KCall to the left with the same ID and no
			// intervening unmatched call is the match.
			j := i - 1
			depth := 0
			for ; j >= 0; j-- {
				if e[j].Kind == KRet {
					depth++
				} else if e[j].Kind == KCall {
					if depth == 0 {
						break
					}
					depth--
				}
			}
			if j < 0 {
				continue
			}
			if e[j].Call != e[i].Call {
				// The fragment between j and i is balanced, so e[j] opens
				// the very frame e[i] closes. A frame returns through the
				// call-edge instance that entered it, so differing IDs on
				// the same callee describe a path no single execution can
				// take (enter helper via one caller node, leave toward
				// another). Cross-callee mismatches stay: alias-grammar
				// splices (flowsToBar·flowsTo through store/load) join
				// legs of different frames legitimately.
				if ic.sameCallee(e[j].Call, e[i].Call) {
					return nil, false
				}
				continue
			}
			if !ic.eliminable(e[j : i+1]) {
				continue
			}
			// Remove e[j..i] inclusive; then try to join the now adjacent
			// caller intervals.
			tail := append(Enc{}, e[i+1:]...)
			e = append(e[:j], tail...)
			if j > 0 && j < len(e) &&
				e[j-1].Kind == KInterval && e[j].Kind == KInterval &&
				e[j-1].Method == e[j].Method {
				if joined, ok, conflict := joinIntervals(e[j-1], e[j]); conflict {
					return nil, false
				} else if ok {
					e[j-1] = joined
					e = append(e[:j], e[j+1:]...)
				}
			}
			changed = true
			break
		}
	}
	if len(e) > ic.MaxEncLen {
		e = compactEnc(e, ic.MaxEncLen)
	}
	return e, true
}

// eliminable reports whether a completed (i ... )i fragment contributes no
// constraint and may be dropped (§4.2 case 3). The paper eliminates every
// completed pair for compactness; this implementation keeps pairs whose
// call edge binds parameters or a return value, or whose enclosed intervals
// span branch conditionals — otherwise the "y = bar(2*x)" correlation of
// §3.2 would be lost the moment the call completes. Pairs referencing
// unknown call edges (foreign encodings) are eliminated as in the paper.
// sameCallee reports whether two call-edge IDs target the same callee
// method. Unknown IDs (foreign encodings, hand-built tests) report false so
// the mismatch falls through to plain concatenation.
func (ic *ICFET) sameCallee(a, b int32) bool {
	if a < 0 || b < 0 || int(a) >= len(ic.CallEdges) || int(b) >= len(ic.CallEdges) {
		return false
	}
	ea, eb := ic.CallEdges[a], ic.CallEdges[b]
	return ea != nil && eb != nil && ea.Callee == eb.Callee
}

func (ic *ICFET) eliminable(frag Enc) bool {
	call := frag[0]
	if int(call.Call) < len(ic.CallEdges) {
		ce := ic.CallEdges[call.Call]
		if ce != nil && (len(ce.ParamEqs) > 0 || ce.RetSym >= 0) {
			return false
		}
	}
	for _, el := range frag[1 : len(frag)-1] {
		if el.Kind != KInterval {
			// A nested unmatched call/ret inside: keep (shouldn't occur,
			// matched inner pairs were already reduced).
			return false
		}
		if el.Start != el.End {
			// The fragment spans branch conditionals in the callee.
			if int(el.Method) < len(ic.Methods) && ic.Methods[el.Method] != nil {
				return false
			}
		}
	}
	return true
}

// compactEnc drops redundant intervals (widest first) to honor the cap while
// preserving call/return structure. Losing an interval only weakens the
// decoded constraint, which is sound for bug finding.
func compactEnc(e Enc, max int) Enc {
	out := make(Enc, 0, len(e))
	over := len(e) - max
	for _, el := range e {
		if over > 0 && el.Kind == KInterval && el.Start == el.End {
			over--
			continue
		}
		out = append(out, el)
	}
	if len(out) > max {
		// Still too long: keep call/ret plus the first intervals.
		kept := make(Enc, 0, max)
		for _, el := range out {
			if el.Kind != KInterval || len(kept) < max/2 {
				kept = append(kept, el)
			}
		}
		out = kept
	}
	return out
}
