package cfet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/grapple-system/grapple/internal/smt"
	"github.com/grapple-system/grapple/internal/symbolic"
)

// randomTreePath returns a random root-to-node path in a conceptual complete
// binary tree, as the sequence of node IDs from 0 down.
func randomTreePath(rng *rand.Rand, maxDepth int) []uint64 {
	depth := rng.Intn(maxDepth)
	path := []uint64{0}
	cur := uint64(0)
	for i := 0; i < depth; i++ {
		if rng.Intn(2) == 0 {
			cur = 2*cur + 1
		} else {
			cur = 2*cur + 2
		}
		path = append(path, cur)
	}
	return path
}

// TestPropertyAncestryMatchesPaths: IsAncestorOrEqual agrees with explicit
// path membership on random tree paths.
func TestPropertyAncestryMatchesPaths(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		path := randomTreePath(rng, 30)
		leaf := path[len(path)-1]
		for _, n := range path {
			if !IsAncestorOrEqual(n, leaf) {
				return false
			}
		}
		// A sibling of any non-root path node is not an ancestor.
		if len(path) > 1 {
			i := 1 + rng.Intn(len(path)-1)
			n := path[i]
			sibling := n ^ 1 // flips 2k+1 <-> 2k+2
			if n%2 == 0 {
				sibling = n - 1
			} else {
				sibling = n + 1
			}
			if IsAncestorOrEqual(sibling, leaf) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyParentWalkTerminates: the Algorithm-1 parent walk from any
// node reaches the root in at most 62 steps.
func TestPropertyParentWalkTerminates(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		path := randomTreePath(rng, 60)
		cur := path[len(path)-1]
		steps := 0
		for cur != 0 {
			cur = Parent(cur)
			steps++
			if steps > 62 {
				return false
			}
		}
		return steps == len(path)-1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMergeSplitRoundTrip: splitting a single-method path interval
// at any intermediate node and re-merging recovers the original interval
// (case 1 of §4.2 is invertible along a path).
func TestPropertyMergeSplitRoundTrip(t *testing.T) {
	ic := &ICFET{MaxEncLen: 64}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		path := randomTreePath(rng, 24)
		if len(path) < 3 {
			return true
		}
		mid := path[1+rng.Intn(len(path)-2)]
		leaf := path[len(path)-1]
		merged, ok := ic.Merge(Enc{Interval(0, 0, mid)}, Enc{Interval(0, mid, leaf)})
		return ok && merged.Equal(Enc{Interval(0, 0, leaf)})
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMergeNeverLosesCallStructure: merging never drops unmatched
// call/return elements (context sensitivity depends on them).
func TestPropertyMergeNeverLosesCallStructure(t *testing.T) {
	ic := &ICFET{MaxEncLen: 64}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1 := Enc{Interval(0, 0, 1), CallElem(int32(rng.Intn(50)))}
		e2 := Enc{Interval(1, 0, 0), CallElem(int32(50 + rng.Intn(50)))}
		merged, ok := ic.Merge(e1, e2)
		if !ok {
			return true
		}
		calls := 0
		for _, el := range merged {
			if el.Kind == KCall {
				calls++
			}
		}
		return calls == 2 // both unmatched calls survive
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDecodeConstraintSubsumption: for a random CFET built from a
// branchy program, the constraint of [0, parent] is a subset of the
// constraint of [0, child] — extending a path only adds conjuncts.
func TestPropertyDecodeConstraintSubsumption(t *testing.T) {
	ic, _, _ := buildICFET(t, `
fun f(a: int, b: int, c: int) {
  if (a > 0) {
    if (b > a) {
      if (c > b) {
        a = 1;
      } else {
        a = 2;
      }
    } else {
      a = 3;
    }
  } else {
    if (b < 0) {
      a = 4;
    }
  }
  return;
}`)
	m := ic.Method("f")
	for id := range m.Nodes {
		if id == 0 {
			continue
		}
		parent := Parent(id)
		childConj, err := m.PathConstraint(0, id, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		parentConj, err := m.PathConstraint(0, parent, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		keys := map[string]bool{}
		for _, a := range childConj {
			keys[a.Key()] = true
		}
		for _, a := range parentConj {
			if !keys[a.Key()] {
				t.Fatalf("node %d: parent constraint not subsumed", id)
			}
		}
	}
}

// TestPropertyFeasiblePathsExist: in any CFET built from a program whose
// branch conditions are over independent opaque inputs, every root-to-leaf
// path must be satisfiable.
func TestPropertyFeasiblePathsExist(t *testing.T) {
	ic, _, _ := buildICFET(t, `
fun f() {
  var a: int = input();
  var b: int = input();
  var c: int = input();
  if (a > 0) { a = 1; }
  if (b < 5) { b = 1; }
  if (c == 7) { c = 1; }
  return;
}`)
	m := ic.Method("f")
	solver := smt.New(smt.DefaultOptions())
	if len(m.Leaves) == 0 {
		t.Fatal("no leaves")
	}
	for _, leaf := range m.Leaves {
		conj, err := m.PathConstraint(0, leaf, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := solver.Solve(conj); got == smt.Unsat {
			t.Fatalf("leaf %d: independent-input path unsat", leaf)
		}
	}
}

// TestRenamerIsolation: two renamers over the same method produce disjoint
// fresh symbols, and non-owned symbols pass through.
func TestRenamerIsolation(t *testing.T) {
	ic, tab, _ := buildICFET(t, `
fun g(p: int): int { return p + 1; }
fun f(x: int) {
  var y: int = g(x);
  if (y > 0) { y = 0; }
  return;
}`)
	g := ic.Method("g")
	// Two activations within one decode share a synthetic counter and must
	// get disjoint instance symbols.
	next := SyntheticBase
	r1 := g.newRenamerCounter(&next)
	r2 := g.newRenamerCounter(&next)
	pSym := g.ParamSym["p"]
	e := symbolic.Var(pSym)
	e1 := r1.Expr(e)
	e2 := r2.Expr(e)
	if e1.Equal(e2) {
		t.Fatal("activations sharing a counter must not share symbols")
	}
	// Stability within one renamer.
	if !r1.Expr(e).Equal(e1) {
		t.Fatal("renamer must be stable")
	}
	// Synthetic symbols never collide with interned ones.
	if len(e1.Terms) != 1 || e1.Terms[0].Sym < SyntheticBase {
		t.Fatalf("instance symbol not synthetic: %+v", e1)
	}
	// Foreign symbols are untouched.
	foreign := symbolic.Var(tab.Fresh("other"))
	if !r1.Expr(foreign).Equal(foreign) {
		t.Fatal("foreign symbol renamed")
	}
	// Nil renamer is identity.
	var nilR *Renamer
	if !nilR.Expr(e).Equal(e) {
		t.Fatal("nil renamer must be identity")
	}
}
