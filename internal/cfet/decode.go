package cfet

import (
	"fmt"

	"github.com/grapple-system/grapple/internal/constraint"
	"github.com/grapple-system/grapple/internal/symbolic"
)

// SyntheticBase is the first symbol ID used for per-activation instance
// symbols created during decoding. Real (interned) symbols are always below
// it, so synthetic symbols never collide with them; they are local to one
// Decode call (conjunctions never mix across decodes), so no global
// allocation — and no mutation of the shared symbol table — is needed.
// This keeps Decode safe for the engine's concurrent workers.
const SyntheticBase symbolic.Sym = 1 << 29

// Renamer maps one method's symbols to per-call-frame instance symbols, so
// that a path entering the same callee twice does not conflate the two
// activations' parameter values. A nil *Renamer is the identity.
type Renamer struct {
	owned map[symbolic.Sym]bool
	m     map[symbolic.Sym]symbolic.Sym
	next  *symbolic.Sym // shared per-decode synthetic counter
}

// NewRenamer creates a fresh activation renamer for method m. The tab
// parameter is retained for API compatibility and unused (synthetic symbols
// are decode-local; see SyntheticBase).
func (m *CFET) NewRenamer(tab *symbolic.Table) *Renamer {
	next := SyntheticBase
	return &Renamer{owned: m.symSet(), m: map[symbolic.Sym]symbolic.Sym{}, next: &next}
}

// newRenamerCounter creates an activation renamer drawing synthetic symbols
// from a shared per-decode counter.
func (m *CFET) newRenamerCounter(next *symbolic.Sym) *Renamer {
	return &Renamer{owned: m.symSet(), m: map[symbolic.Sym]symbolic.Sym{}, next: next}
}

func (r *Renamer) rename(s symbolic.Sym) (symbolic.Sym, bool) {
	if r == nil || !r.owned[s] {
		return s, false
	}
	if ns, ok := r.m[s]; ok {
		return ns, true
	}
	ns := *r.next
	*r.next++
	r.m[s] = ns
	return ns, true
}

// Atom rewrites an atom through the renamer.
func (r *Renamer) Atom(a constraint.Atom) constraint.Atom {
	if r == nil {
		return a
	}
	return constraint.Atom{LHS: r.Expr(a.LHS), Op: a.Op}
}

// Expr rewrites an expression through the renamer.
func (r *Renamer) Expr(e symbolic.Expr) symbolic.Expr {
	if r == nil {
		return e
	}
	out := e
	for _, t := range e.Terms {
		if ns, changed := r.rename(t.Sym); changed {
			out = out.Subst(t.Sym, symbolic.Var(ns))
		}
	}
	return out
}

// symSet returns the method's owned-symbol set (precomputed by Build; the
// fallback path exists for hand-built CFETs in tests).
func (m *CFET) symSet() map[symbolic.Sym]bool {
	if m.symsSet == nil {
		m.buildSymSet()
	}
	return m.symsSet
}

// buildSymSet materializes the owned-symbol set; called once at Build time
// so concurrent decoders only ever read it.
func (m *CFET) buildSymSet() {
	m.symsSet = make(map[symbolic.Sym]bool, len(m.Syms))
	for _, s := range m.Syms {
		m.symsSet[s] = true
	}
}

// DecodeStats counts decoder work for the Figure-9 breakdown.
type DecodeStats struct {
	Decodes    int64
	Elems      int64
	FrameDepth int64 // cumulative max depth
}

// frame is one activation during decoding.
type frame struct {
	method  *CFET
	ren     *Renamer
	call    *CallEdge // edge that pushed this frame (nil for the root)
	lastEnd uint64    // deepest node of the last interval decoded here
	hasEnd  bool
}

// Decode reconstructs the path constraint of an encoding (paper §3.2 and
// Algorithm 1 generalized interprocedurally): interval fragments contribute
// their branch conditions, call elements push an activation frame and
// conjoin parameter-passing equations, return elements conjoin the return
// binding and pop. Callee-owned symbols are renamed per activation so
// repeated calls to one callee stay independent.
//
// Decoding is lenient about structurally surprising encodings (fragments
// from non-connecting merges): they only ever weaken the constraint.
func (ic *ICFET) Decode(e Enc) (constraint.Conj, error) {
	var out constraint.Conj
	var stack []frame
	synth := SyntheticBase
	top := func() *frame {
		if len(stack) == 0 {
			return nil
		}
		return &stack[len(stack)-1]
	}
	for _, el := range e {
		switch el.Kind {
		case KInterval:
			if int(el.Method) >= len(ic.Methods) {
				return nil, fmt.Errorf("decode: bad method %d", el.Method)
			}
			m := ic.Methods[el.Method]
			t := top()
			if t == nil || t.method != m {
				// Root fragment (or fragment outside frame structure):
				// identity renaming.
				stack = append(stack, frame{method: m})
				t = top()
			}
			var err error
			out, err = m.PathConstraint(el.Start, el.End, t.ren, out)
			if err != nil {
				return nil, err
			}
			t.lastEnd, t.hasEnd = el.End, true
		case KCall:
			if int(el.Call) >= len(ic.CallEdges) {
				return nil, fmt.Errorf("decode: bad call edge %d", el.Call)
			}
			ce := ic.CallEdges[el.Call]
			callerRen := (*Renamer)(nil)
			if t := top(); t != nil {
				callerRen = t.ren
			}
			callee := ic.Methods[ce.Callee]
			nf := frame{method: callee, ren: callee.newRenamerCounter(&synth), call: ce}
			for _, eq := range ce.ParamEqs {
				ps, _ := nf.ren.rename(eq.Sym)
				arg := callerRen.Expr(eq.Expr)
				out = out.And(constraint.NewAtom(symbolic.Var(ps), constraint.EQ, arg))
			}
			stack = append(stack, nf)
		case KRet:
			if int(el.Call) >= len(ic.CallEdges) {
				return nil, fmt.Errorf("decode: bad return edge %d", el.Call)
			}
			ce := ic.CallEdges[el.Call]
			t := top()
			if t == nil || t.call == nil || t.call.ID != ce.ID {
				// Unmatched return: no constraint (lenient).
				if len(stack) > 0 {
					stack = stack[:len(stack)-1]
				}
				continue
			}
			calleeRen := t.ren
			leafEnd, hasLeaf := t.lastEnd, t.hasEnd
			stack = stack[:len(stack)-1]
			if ce.RetSym != symbolic.NoSym && hasLeaf {
				callee := ic.Methods[ce.Callee]
				if leaf := callee.Nodes[leafEnd]; leaf != nil && leaf.Ret.HasExpr {
					callerRen := (*Renamer)(nil)
					if nt := top(); nt != nil {
						callerRen = nt.ren
					}
					ret := calleeRen.Expr(leaf.Ret.Expr)
					lhsSym, _ := rename2(callerRen, ce.RetSym)
					out = out.And(constraint.NewAtom(symbolic.Var(lhsSym), constraint.EQ, ret))
				}
			}
		}
	}
	return out, nil
}

func rename2(r *Renamer, s symbolic.Sym) (symbolic.Sym, bool) {
	if r == nil {
		return s, false
	}
	return r.rename(s)
}
