package smt

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/grapple-system/grapple/internal/constraint"
	"github.com/grapple-system/grapple/internal/symbolic"
)

func atom(l symbolic.Expr, op constraint.Op, r symbolic.Expr) constraint.Atom {
	return constraint.NewAtom(l, op, r)
}

func TestTrivialConstants(t *testing.T) {
	s := New(DefaultOptions())
	cases := []struct {
		c    constraint.Conj
		want Result
	}{
		{nil, Sat},
		{constraint.Conj{atom(symbolic.Const(1), constraint.EQ, symbolic.Const(1))}, Sat},
		{constraint.Conj{atom(symbolic.Const(1), constraint.EQ, symbolic.Const(2))}, Unsat},
		{constraint.Conj{atom(symbolic.Const(3), constraint.GT, symbolic.Const(2))}, Sat},
		{constraint.Conj{atom(symbolic.Const(3), constraint.LT, symbolic.Const(2))}, Unsat},
		{constraint.Conj{atom(symbolic.Const(0), constraint.NE, symbolic.Const(0))}, Unsat},
	}
	for i, tc := range cases {
		if got := s.Solve(tc.c); got != tc.want {
			t.Errorf("case %d: got %v want %v", i, got, tc.want)
		}
	}
}

func TestPaperExampleFigure3(t *testing.T) {
	// Third path of Fig. 3b: x < 0 && y > 0 && y == x+1 is infeasible.
	tab := symbolic.NewTable()
	x := symbolic.Var(tab.Intern("x"))
	y := symbolic.Var(tab.Intern("y"))
	s := New(DefaultOptions())

	infeasible := constraint.Conj{
		atom(x, constraint.LT, symbolic.Const(0)),
		atom(y, constraint.GT, symbolic.Const(0)),
		atom(y, constraint.EQ, x.Add(symbolic.Const(1))),
	}
	if got := s.Solve(infeasible); got != Unsat {
		t.Fatalf("infeasible path: got %v want unsat", got)
	}

	// First path: x >= 0 && y > 0 && y == x-1 is feasible (x=2,y=1).
	feasible := constraint.Conj{
		atom(x, constraint.GE, symbolic.Const(0)),
		atom(y, constraint.GT, symbolic.Const(0)),
		atom(y, constraint.EQ, x.Sub(symbolic.Const(1))),
	}
	if got := s.Solve(feasible); got != Sat {
		t.Fatalf("feasible path: got %v want sat", got)
	}
}

func TestPaperExampleFigure6(t *testing.T) {
	// x > 0 && a == 2x && a < 0 && y == a+1 && !(y < 0): unsat (a=2x>0 vs a<0).
	tab := symbolic.NewTable()
	x := symbolic.Var(tab.Intern("x"))
	a := symbolic.Var(tab.Intern("a"))
	y := symbolic.Var(tab.Intern("y"))
	s := New(DefaultOptions())
	c := constraint.Conj{
		atom(x, constraint.GT, symbolic.Const(0)),
		atom(a, constraint.EQ, x.Scale(2)),
		atom(a, constraint.LT, symbolic.Const(0)),
		atom(y, constraint.EQ, a.Add(symbolic.Const(1))),
		atom(y, constraint.GE, symbolic.Const(0)),
	}
	if got := s.Solve(c); got != Unsat {
		t.Fatalf("got %v want unsat", got)
	}
	// Taking bar's other leaf: x > 0 && a == 2x && a >= 0 && y == a-1 && !(y<0): sat.
	c2 := constraint.Conj{
		atom(x, constraint.GT, symbolic.Const(0)),
		atom(a, constraint.EQ, x.Scale(2)),
		atom(a, constraint.GE, symbolic.Const(0)),
		atom(y, constraint.EQ, a.Sub(symbolic.Const(1))),
		atom(y, constraint.GE, symbolic.Const(0)),
	}
	if got := s.Solve(c2); got != Sat {
		t.Fatalf("got %v want sat", got)
	}
}

func TestContradictoryBranches(t *testing.T) {
	// The motivating example from §1.2: if(b) / if(!b) cannot both hold.
	tab := symbolic.NewTable()
	b := symbolic.Var(tab.Intern("b"))
	s := New(DefaultOptions())
	c := constraint.Conj{
		atom(b, constraint.NE, symbolic.Const(0)),
		atom(b, constraint.EQ, symbolic.Const(0)),
	}
	if got := s.Solve(c); got != Unsat {
		t.Fatalf("b && !b: got %v want unsat", got)
	}
}

func TestDisequalitySplit(t *testing.T) {
	tab := symbolic.NewTable()
	x := symbolic.Var(tab.Intern("x"))
	s := New(DefaultOptions())
	// x != 0 && 0 <= x && x <= 0 : unsat.
	c := constraint.Conj{
		atom(x, constraint.NE, symbolic.Const(0)),
		atom(x, constraint.GE, symbolic.Const(0)),
		atom(x, constraint.LE, symbolic.Const(0)),
	}
	if got := s.Solve(c); got != Unsat {
		t.Fatalf("got %v want unsat", got)
	}
	// x != 5 && x >= 5 : sat (x = 6).
	c2 := constraint.Conj{
		atom(x, constraint.NE, symbolic.Const(5)),
		atom(x, constraint.GE, symbolic.Const(5)),
	}
	if got := s.Solve(c2); got != Sat {
		t.Fatalf("got %v want sat", got)
	}
}

func TestIntegerTightening(t *testing.T) {
	tab := symbolic.NewTable()
	x := symbolic.Var(tab.Intern("x"))
	s := New(DefaultOptions())
	// 0 < 2x < 2 has no integer solution (x would be 1/2).
	c := constraint.Conj{
		atom(x.Scale(2), constraint.GT, symbolic.Const(0)),
		atom(x.Scale(2), constraint.LT, symbolic.Const(2)),
	}
	if got := s.Solve(c); got != Unsat {
		t.Fatalf("0<2x<2: got %v want unsat (no integer solution)", got)
	}
}

func TestChainedInequalities(t *testing.T) {
	tab := symbolic.NewTable()
	s := New(DefaultOptions())
	n := 12
	vars := make([]symbolic.Expr, n)
	for i := range vars {
		vars[i] = symbolic.Var(tab.Fresh("v"))
	}
	var c constraint.Conj
	for i := 0; i+1 < n; i++ {
		c = append(c, atom(vars[i], constraint.LT, vars[i+1]))
	}
	if got := s.Solve(c); got != Sat {
		t.Fatalf("ascending chain: got %v want sat", got)
	}
	c = append(c, atom(vars[n-1], constraint.LT, vars[0]))
	if got := s.Solve(c); got != Unsat {
		t.Fatalf("cyclic chain: got %v want unsat", got)
	}
}

// evalAtom checks an atom under an assignment.
func evalAtom(a constraint.Atom, env map[symbolic.Sym]int64) bool {
	v := a.LHS.Const
	for _, t := range a.LHS.Terms {
		v += t.Coeff * env[t.Sym]
	}
	switch a.Op {
	case constraint.EQ:
		return v == 0
	case constraint.NE:
		return v != 0
	case constraint.LE:
		return v <= 0
	case constraint.LT:
		return v < 0
	case constraint.GE:
		return v >= 0
	default:
		return v > 0
	}
}

// TestPropertySoundnessVsBruteForce cross-checks the solver against
// exhaustive evaluation over a small domain: whenever brute force finds a
// model, the solver must not report unsat, and whenever the solver reports
// unsat there must be no model (over that domain trivially, and generally by
// soundness of FM).
func TestPropertySoundnessVsBruteForce(t *testing.T) {
	const nvars, domain = 3, 4 // values in [-domain, domain]
	rng := rand.New(rand.NewSource(42))
	tab := symbolic.NewTable()
	syms := make([]symbolic.Sym, nvars)
	for i := range syms {
		syms[i] = tab.Fresh("q")
	}

	randConj := func() constraint.Conj {
		n := 1 + rng.Intn(4)
		c := make(constraint.Conj, 0, n)
		for i := 0; i < n; i++ {
			e := symbolic.Const(int64(rng.Intn(7) - 3))
			for j := 0; j < nvars; j++ {
				if rng.Intn(2) == 0 {
					e = e.Add(symbolic.Var(syms[j]).Scale(int64(rng.Intn(5) - 2)))
				}
			}
			op := constraint.Op(rng.Intn(6))
			c = append(c, constraint.Atom{LHS: e, Op: op})
		}
		return c
	}

	hasModel := func(c constraint.Conj) bool {
		env := map[symbolic.Sym]int64{}
		var rec func(i int) bool
		rec = func(i int) bool {
			if i == nvars {
				for _, a := range c {
					if !evalAtom(a, env) {
						return false
					}
				}
				return true
			}
			for v := int64(-domain); v <= domain; v++ {
				env[syms[i]] = v
				if rec(i + 1) {
					return true
				}
			}
			return false
		}
		return rec(0)
	}

	s := New(DefaultOptions())
	for trial := 0; trial < 400; trial++ {
		c := randConj()
		model := hasModel(c)
		got := s.Solve(c)
		if model && got == Unsat {
			t.Fatalf("trial %d: solver unsat but model exists for %s", trial, c.String(tab))
		}
		// Small-domain completeness check: our random coefficients/constants
		// are small, so if FM says sat a model within a slightly larger box
		// should exist; we only assert the strong direction (soundness).
		_ = got
	}
}

func TestQuickCanonKeyStable(t *testing.T) {
	// Canonicalization must be order-insensitive: shuffled conjunctions get
	// identical memo keys.
	tab := symbolic.NewTable()
	x := symbolic.Var(tab.Intern("x"))
	y := symbolic.Var(tab.Intern("y"))
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := constraint.Conj{
			atom(x, constraint.GE, symbolic.Const(0)),
			atom(y, constraint.LT, x),
			atom(y.Add(x), constraint.NE, symbolic.Const(3)),
		}
		shuffled := make(constraint.Conj, len(c))
		copy(shuffled, c)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		return c.Canon().Key() == shuffled.Canon().Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCacheBasics(t *testing.T) {
	c := NewCache(32)
	c.Put("a", Sat)
	c.Put("b", Unsat)
	if r, ok := c.Get("a"); !ok || r != Sat {
		t.Fatalf("get a: %v %v", r, ok)
	}
	if r, ok := c.Get("b"); !ok || r != Unsat {
		t.Fatalf("get b: %v %v", r, ok)
	}
	c.Put("a", Unsat) // update in place, no growth
	if r, ok := c.Get("a"); !ok || r != Unsat {
		t.Fatalf("get a after update: %v %v", r, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d want 2", c.Len())
	}
	if c.Lookups() != 3 || c.Hits() != 3 {
		t.Fatalf("lookups/hits = %d/%d want 3/3", c.Lookups(), c.Hits())
	}
}

func TestCacheEvictionBound(t *testing.T) {
	// Total size stays bounded by the requested capacity no matter how many
	// distinct keys are inserted; eviction is per-shard LRU.
	c := NewCache(32)
	for i := 0; i < 1000; i++ {
		c.Put(fmt.Sprintf("key-%d", i), Sat)
	}
	if c.Len() > 32 {
		t.Fatalf("len = %d want <= 32", c.Len())
	}
	// A freshly-inserted key is always retrievable (nothing can evict it
	// before any other shard traffic).
	c.Put("fresh", Unsat)
	if r, ok := c.Get("fresh"); !ok || r != Unsat {
		t.Fatalf("fresh: %v %v", r, ok)
	}
}

func TestCachedSolverHitRate(t *testing.T) {
	tab := symbolic.NewTable()
	x := symbolic.Var(tab.Intern("x"))
	cs := &CachedSolver{S: New(DefaultOptions()), Cache: NewCache(16)}
	c := constraint.Conj{atom(x, constraint.GT, symbolic.Const(0))}
	for i := 0; i < 10; i++ {
		if cs.Solve(c) != Sat {
			t.Fatal("want sat")
		}
	}
	if cs.Cache.Hits() != 9 {
		t.Fatalf("hits = %d want 9", cs.Cache.Hits())
	}
	if cs.S.Calls != 1 {
		t.Fatalf("solver calls = %d want 1", cs.S.Calls)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(128)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				key := string(rune('a' + (i+g)%64))
				c.Put(key, Sat)
				c.Get(key)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}

func TestDisequalityBudgetUnknown(t *testing.T) {
	// More disequalities than the split budget: Unknown (treated as SAT by
	// the engine — over-approximation, never a missed path).
	tab := symbolic.NewTable()
	s := New(Options{MaxNESplits: 2, MaxVars: 128, MaxIneqs: 4096})
	var c constraint.Conj
	for i := 0; i < 6; i++ {
		v := symbolic.Var(tab.Fresh("d"))
		c = append(c, atom(v, constraint.NE, symbolic.Const(int64(i))))
	}
	if got := s.Solve(c); got != Unknown {
		t.Fatalf("got %v want unknown", got)
	}
	if s.UnknownN == 0 {
		t.Fatal("unknown counter not bumped")
	}
}

func TestEqualityWithoutUnitCoefficient(t *testing.T) {
	tab := symbolic.NewTable()
	x := symbolic.Var(tab.Intern("xq"))
	s := New(DefaultOptions())
	// 2x == 5 has no integer solution.
	c := constraint.Conj{atom(x.Scale(2), constraint.EQ, symbolic.Const(5))}
	if got := s.Solve(c); got != Unsat {
		t.Fatalf("2x=5: got %v want unsat", got)
	}
	// 2x == 6 does (x=3).
	c2 := constraint.Conj{atom(x.Scale(2), constraint.EQ, symbolic.Const(6))}
	if got := s.Solve(c2); got != Sat {
		t.Fatalf("2x=6: got %v want sat", got)
	}
}

func TestSolverStatsCount(t *testing.T) {
	tab := symbolic.NewTable()
	x := symbolic.Var(tab.Intern("xs"))
	s := New(DefaultOptions())
	s.Solve(constraint.Conj{atom(x, constraint.GT, symbolic.Const(0))})
	s.Solve(constraint.Conj{atom(symbolic.Const(1), constraint.LT, symbolic.Const(0))})
	if s.Calls != 2 || s.SatN != 1 || s.UnsatN != 1 {
		t.Fatalf("stats: calls=%d sat=%d unsat=%d", s.Calls, s.SatN, s.UnsatN)
	}
}
