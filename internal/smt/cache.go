package smt

import (
	"container/list"
	"sync"
	"sync/atomic"

	"github.com/grapple-system/grapple/internal/constraint"
)

// Cache is the LRU constraint-memoization cache of paper §4.3. Keys are
// canonical encodings of conjunctions; values are solver verdicts. Edges in
// the same program scope share path constraints (temporal locality), so the
// hit rate is high in practice (Table 4 reports 60–78%).
//
// The cache is sharded: keys hash onto independent LRU segments, each with
// its own lock, so concurrent edge-induction workers — and, in batch mode,
// whole concurrent checking instances sharing one cache — do not serialize
// on a single mutex. Statistics are kept in atomics for the same reason.
//
// Cache is safe for concurrent use.
type Cache struct {
	shards [cacheShards]cacheShard

	lookups atomic.Int64
	hits    atomic.Int64
}

// cacheShards is the number of independent LRU segments. Must be a power of
// two (shard selection masks the key hash).
const cacheShards = 16

type cacheShard struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List
	items    map[string]*list.Element
}

type cacheEntry struct {
	key string
	res Result
}

// NewCache returns an LRU cache holding up to capacity verdicts in total,
// spread across its shards.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	per := (capacity + cacheShards - 1) / cacheShards
	if per < 1 {
		per = 1
	}
	c := &Cache{}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			capacity: per,
			ll:       list.New(),
			items:    make(map[string]*list.Element, per),
		}
	}
	return c
}

// shardFor selects the segment owning key (FNV-1a, masked).
func (c *Cache) shardFor(key string) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &c.shards[h&(cacheShards-1)]
}

// shardForBytes is shardFor over a byte-slice key. Kept as a separate body
// (rather than shardFor(string(key))) so callers on the engine hot path pay
// no conversion allocation.
func (c *Cache) shardForBytes(key []byte) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &c.shards[h&(cacheShards-1)]
}

// GetBytes is Get with a byte-slice key. The map index m[string(key)] form
// compiles allocation-free, so a cache probe costs no per-lookup garbage —
// the engine probes once per join candidate, which dominates allocation
// profiles without this. The caller may reuse key's backing array freely
// after the call.
func (c *Cache) GetBytes(key []byte) (Result, bool) {
	c.lookups.Add(1)
	s := c.shardForBytes(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[string(key)]
	if !ok {
		return Unknown, false
	}
	c.hits.Add(1)
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// PutBytes is Put with a byte-slice key; the key string is materialized
// only when a new entry is actually inserted. The caller may reuse key's
// backing array after the call.
func (c *Cache) PutBytes(key []byte, res Result) {
	s := c.shardForBytes(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[string(key)]; ok {
		el.Value.(*cacheEntry).res = res
		s.ll.MoveToFront(el)
		return
	}
	el := s.ll.PushFront(&cacheEntry{key: string(key), res: res})
	s.items[string(key)] = el
	if s.ll.Len() > s.capacity {
		last := s.ll.Back()
		s.ll.Remove(last)
		delete(s.items, last.Value.(*cacheEntry).key)
	}
}

// Get returns the memoized verdict for key if present.
func (c *Cache) Get(key string) (Result, bool) {
	c.lookups.Add(1)
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return Unknown, false
	}
	c.hits.Add(1)
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Put records a verdict, evicting the shard's least recently used entry
// when its segment is full.
func (c *Cache) Put(key string, res Result) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		s.ll.MoveToFront(el)
		return
	}
	el := s.ll.PushFront(&cacheEntry{key: key, res: res})
	s.items[key] = el
	if s.ll.Len() > s.capacity {
		last := s.ll.Back()
		s.ll.Remove(last)
		delete(s.items, last.Value.(*cacheEntry).key)
	}
}

// Len reports the number of cached verdicts across all shards.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Lookups reports the total number of Get calls.
func (c *Cache) Lookups() int64 { return c.lookups.Load() }

// Hits reports how many Get calls were served from the cache.
func (c *Cache) Hits() int64 { return c.hits.Load() }

// HitRate reports the fraction of lookups served from the cache.
func (c *Cache) HitRate() float64 {
	l := c.lookups.Load()
	if l == 0 {
		return 0
	}
	return float64(c.hits.Load()) / float64(l)
}

// CachedSolver pairs a Solver with a shared Cache.
type CachedSolver struct {
	S     *Solver
	Cache *Cache // nil disables memoization
}

// Solve decides c, consulting the cache first when one is configured. The
// solver runs on the *canonical* form of c — the underlying Solver's
// incomplete integer reasoning can be sensitive to atom order, and the memo
// key is order-blind, so solving anything other than the canonical form
// would let the first caller's atom order decide what every logically-equal
// conjunction gets back. Canonicalizing makes the verdict a pure function
// of the key.
func (cs *CachedSolver) Solve(c constraint.Conj) Result {
	canon := c.Canon()
	if cs.Cache == nil {
		return cs.S.Solve(canon)
	}
	key := canon.Key()
	if r, ok := cs.Cache.Get(key); ok {
		return r
	}
	r := cs.S.Solve(canon)
	cs.Cache.Put(key, r)
	return r
}
