package smt

import (
	"container/list"
	"sync"

	"github.com/grapple-system/grapple/internal/constraint"
)

// Cache is the LRU constraint-memoization cache of paper §4.3. Keys are
// canonical encodings of conjunctions; values are solver verdicts. Edges in
// the same program scope share path constraints (temporal locality), so the
// hit rate is high in practice (Table 4 reports 60–78%).
//
// Cache is safe for concurrent use by multiple edge-induction workers.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List
	items    map[string]*list.Element

	// Stats
	Lookups int64
	Hits    int64
}

type cacheEntry struct {
	key string
	res Result
}

// NewCache returns an LRU cache holding up to capacity verdicts.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// Get returns the memoized verdict for key if present.
func (c *Cache) Get(key string) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.Lookups++
	el, ok := c.items[key]
	if !ok {
		return Unknown, false
	}
	c.Hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Put records a verdict, evicting the least recently used entry when full.
func (c *Cache) Put(key string, res Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, res: res})
	c.items[key] = el
	if c.ll.Len() > c.capacity {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

// Len reports the number of cached verdicts.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// HitRate reports the fraction of lookups served from the cache.
func (c *Cache) HitRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.Lookups == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Lookups)
}

// CachedSolver pairs a Solver with a shared Cache.
type CachedSolver struct {
	S     *Solver
	Cache *Cache // nil disables memoization
}

// Solve decides c, consulting the cache first when one is configured.
func (cs *CachedSolver) Solve(c constraint.Conj) Result {
	if cs.Cache == nil {
		return cs.S.Solve(c)
	}
	key := c.Canon().Key()
	if r, ok := cs.Cache.Get(key); ok {
		return r
	}
	r := cs.S.Solve(c)
	cs.Cache.Put(key, r)
	return r
}
