package smt

import (
	"testing"

	"github.com/grapple-system/grapple/internal/constraint"
	"github.com/grapple-system/grapple/internal/symbolic"
)

// fuzzConj decodes fuzz bytes into a small conjunction over four symbols.
// Four bytes per atom: two term selectors, an operator, a constant.
func fuzzConj(tab *symbolic.Table, data []byte) constraint.Conj {
	syms := []symbolic.Sym{
		tab.Intern("a"), tab.Intern("b"), tab.Intern("c"), tab.Intern("d"),
	}
	var c constraint.Conj
	for len(data) >= 4 && len(c) < 8 {
		t0, t1, opb, k := data[0], data[1], data[2], int64(int8(data[3]))
		data = data[4:]
		lhs := symbolic.Var(syms[t0%4]).Scale(int64(int8(t0))%5 + 1)
		if t1%3 != 0 {
			lhs = lhs.Add(symbolic.Var(syms[t1%4]).Scale(int64(int8(t1)) % 4))
		}
		op := []constraint.Op{
			constraint.EQ, constraint.NE, constraint.LE,
			constraint.LT, constraint.GE, constraint.GT,
		}[opb%6]
		c = c.And(constraint.NewAtom(lhs, op, symbolic.Const(k)))
	}
	return c
}

// FuzzCacheKeying checks the §4.3 memoization invariants: a conjunction's
// canonical key is unchanged by atom reordering and duplication (logically
// identical conjunctions share one cache entry), a cached solver always
// agrees with an uncached solve of the canonical form, and Unsat — the
// verdict that prunes paths — is never returned for a conjunction a small
// brute-forced integer model satisfies.
func FuzzCacheKeying(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0}, uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(3))
	f.Add([]byte{9, 7, 1, 200, 4, 4, 2, 0, 13, 255, 5, 127}, uint8(5))
	f.Add([]byte{255, 255, 255, 255, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, uint8(1))

	f.Fuzz(func(t *testing.T, data []byte, rot uint8) {
		tab := symbolic.NewTable()
		c := fuzzConj(tab, data)
		if len(c) == 0 {
			t.Skip()
		}

		// Reorder by rotation and duplicate an atom: same logical conjunction.
		r := int(rot) % len(c)
		rotated := append(append(constraint.Conj{}, c[r:]...), c[:r]...)
		dup := append(append(constraint.Conj{}, rotated...), c[r%len(c)])

		key := c.Canon().Key()
		if got := rotated.Canon().Key(); got != key {
			t.Fatalf("rotation changed canonical key:\n %q\n %q", key, got)
		}
		if got := dup.Canon().Key(); got != key {
			t.Fatalf("duplication changed canonical key:\n %q\n %q", key, got)
		}
		if got := c.Canon().Canon().Key(); got != key {
			t.Fatalf("Canon not idempotent:\n %q\n %q", key, got)
		}

		// A cached solver must agree with an uncached solver run on the
		// canonical form (what it memoizes): on the first call (miss), on a
		// repeat (hit), and on the reordered and duplicated twins (hits via
		// the canonical key). The memoized verdict is a pure function of the
		// key, never of the atom order the first caller happened to use.
		want := New(DefaultOptions()).Solve(c.Canon())
		cs := &CachedSolver{S: New(DefaultOptions()), Cache: NewCache(64)}
		for _, variant := range []constraint.Conj{c, c, rotated, dup} {
			if got := cs.Solve(variant); got != want {
				t.Fatalf("cached solve = %v, uncached canonical = %v", got, want)
			}
		}
		if cs.Cache.Hits() < 3 {
			t.Fatalf("expected >=3 cache hits, got %d", cs.Cache.Hits())
		}

		// Unsat is the load-bearing verdict (it prunes paths; Sat and
		// Unknown both mean "not proven infeasible"), so cross-check it by
		// brute force: if any small integer assignment satisfies every atom,
		// no ordering may claim Unsat.
		uncached := &CachedSolver{S: New(DefaultOptions())}
		if hasSmallModel(c) {
			for _, variant := range []constraint.Conj{c, rotated, dup} {
				if uncached.Solve(variant) == Unsat {
					t.Fatalf("Unsat for a satisfiable conjunction (order %v)", variant)
				}
			}
		}
	})
}

// hasSmallModel brute-forces assignments of the four fuzz symbols (Syms
// 0..3) over a small box and reports whether one satisfies every atom.
func hasSmallModel(c constraint.Conj) bool {
	const lo, hi = -6, 6
	var vals [4]int64
	var rec func(i int) bool
	eval := func(a constraint.Atom) bool {
		v := a.LHS.Const
		for _, t := range a.LHS.Terms {
			v += t.Coeff * vals[int(t.Sym)]
		}
		switch a.Op {
		case constraint.EQ:
			return v == 0
		case constraint.NE:
			return v != 0
		case constraint.LE:
			return v <= 0
		case constraint.LT:
			return v < 0
		case constraint.GE:
			return v >= 0
		default: // GT
			return v > 0
		}
	}
	rec = func(i int) bool {
		if i == len(vals) {
			for _, a := range c {
				if !eval(a) {
					return false
				}
			}
			return true
		}
		for v := int64(lo); v <= hi; v++ {
			vals[i] = v
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	return rec(0)
}
