package smt

import (
	"fmt"
	"testing"
)

// TestCacheByteKeyInterop pins the contract the engine's pooled join relies
// on: GetBytes/PutBytes and Get/Put address the same entries — a byte-slice
// key and its string rendering are one key, landing on the same shard with
// the same LRU position.
func TestCacheByteKeyInterop(t *testing.T) {
	c := NewCache(1024)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("conj-%d", i)
		if i%2 == 0 {
			c.Put(key, Sat)
		} else {
			c.PutBytes([]byte(key), Unsat)
		}
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("conj-%d", i)
		want := Sat
		if i%2 != 0 {
			want = Unsat
		}
		if got, ok := c.Get(key); !ok || got != want {
			t.Fatalf("Get(%q) = %v, %v; want %v", key, got, ok, want)
		}
		if got, ok := c.GetBytes([]byte(key)); !ok || got != want {
			t.Fatalf("GetBytes(%q) = %v, %v; want %v", key, got, ok, want)
		}
	}
	// Overwrite through the other key form updates in place, no duplicate.
	before := c.Len()
	c.PutBytes([]byte("conj-0"), Unknown)
	if c.Len() != before {
		t.Fatalf("PutBytes of an existing key grew the cache: %d -> %d", before, c.Len())
	}
	if got, _ := c.Get("conj-0"); got != Unknown {
		t.Fatalf("string Get after byte Put = %v, want Unknown", got)
	}
}

// TestCacheByteKeyReuseSafe verifies PutBytes does not retain the caller's
// backing array: mutating the probe buffer after insert must not corrupt the
// stored key.
func TestCacheByteKeyReuseSafe(t *testing.T) {
	c := NewCache(64)
	buf := []byte("stable-key")
	c.PutBytes(buf, Sat)
	for i := range buf {
		buf[i] = 'x'
	}
	if got, ok := c.Get("stable-key"); !ok || got != Sat {
		t.Fatalf("stored key corrupted by caller reuse: %v, %v", got, ok)
	}
	if _, ok := c.Get("xxxxxxxxxx"); ok {
		t.Fatal("mutated buffer contents found in cache")
	}
}

// TestCacheByteKeyEviction checks that byte-key inserts participate in the
// same per-shard LRU as string inserts: filling a shard past capacity
// through PutBytes evicts its least-recently-used entries.
func TestCacheByteKeyEviction(t *testing.T) {
	// capacity 16 -> one slot per shard.
	c := NewCache(16)
	for i := 0; i < 500; i++ {
		c.PutBytes([]byte(fmt.Sprintf("k-%d", i)), Sat)
	}
	if got := c.Len(); got > 16 {
		t.Fatalf("cache holds %d entries, capacity 16", got)
	}
	// Each shard keeps only the newest key it received; at least one of the
	// early keys must be gone.
	evicted := false
	for i := 0; i < 100; i++ {
		if _, ok := c.GetBytes([]byte(fmt.Sprintf("k-%d", i))); !ok {
			evicted = true
			break
		}
	}
	if !evicted {
		t.Fatal("no early byte-key entry was evicted")
	}
}
