// Package smt decides satisfiability of the conjunctive linear integer
// arithmetic constraints Grapple's path decoding produces (paper §3.2, §4.2).
//
// The paper uses Z3; Grapple only ever hands the solver a conjunction of
// comparisons of linear integer expressions (branch conditionals composed by
// symbolic execution and parameter-passing equations). For that fragment a
// complete decision procedure is: substitute equalities away, case-split the
// few disequalities, then run Fourier–Motzkin elimination with integer bound
// tightening. This package implements exactly that, so its verdicts match
// what Z3 would return on the constraints the engine generates.
package smt

import (
	"math"

	"github.com/grapple-system/grapple/internal/constraint"
	"github.com/grapple-system/grapple/internal/symbolic"
)

// Result is a satisfiability verdict.
type Result uint8

// Verdicts. Unknown is returned only when a structural limit is hit
// (disequality case-split budget); the engine treats Unknown as SAT, which
// over-approximates feasibility and therefore never misses a bug.
const (
	Unsat Result = iota
	Sat
	Unknown
)

func (r Result) String() string {
	switch r {
	case Unsat:
		return "unsat"
	case Sat:
		return "sat"
	default:
		return "unknown"
	}
}

// Options tunes the solver.
type Options struct {
	// MaxNESplits bounds the number of disequality atoms case-split before
	// giving up with Unknown. 2^MaxNESplits branches are explored.
	MaxNESplits int
	// MaxVars bounds the number of distinct variables eliminated by
	// Fourier–Motzkin before giving up with Unknown.
	MaxVars int
	// MaxIneqs aborts with Unknown if elimination inflates the inequality
	// set beyond this size (FM is worst-case exponential).
	MaxIneqs int
}

// DefaultOptions are generous for the constraint sizes path decoding emits.
func DefaultOptions() Options {
	return Options{MaxNESplits: 8, MaxVars: 128, MaxIneqs: 4096}
}

// Solver decides conjunctions. It is stateless apart from statistics and is
// safe for concurrent use only through independent instances; the engine
// gives each worker its own Solver (sharing one memo cache).
type Solver struct {
	opts Options

	// Stats
	Calls    int64
	UnsatN   int64
	SatN     int64
	UnknownN int64
}

// New returns a Solver with the given options.
func New(opts Options) *Solver {
	if opts.MaxNESplits == 0 {
		opts = DefaultOptions()
	}
	return &Solver{opts: opts}
}

// ineq represents sum(coeffs)*vars + c <= 0 over int64 rationals scaled to
// integers (all coefficients integer; we keep them integer throughout and
// tighten bounds, which is sound and complete for integer feasibility of the
// shapes symbolic execution emits, and sound in general).
type ineq struct {
	terms  []symbolic.Term
	c      int64
	strict bool // sum + c < 0
}

// Solve decides the conjunction c.
func (s *Solver) Solve(c constraint.Conj) Result {
	s.Calls++
	res := s.solve(c)
	switch res {
	case Unsat:
		s.UnsatN++
	case Sat:
		s.SatN++
	default:
		s.UnknownN++
	}
	return res
}

func (s *Solver) solve(c constraint.Conj) Result {
	var eqs, nes []constraint.Atom
	var ineqs []ineq
	for _, a := range c {
		if a.IsTrivialFalse() {
			return Unsat
		}
		if a.IsTrivialTrue() {
			continue
		}
		switch a.Op {
		case constraint.EQ:
			eqs = append(eqs, a)
		case constraint.NE:
			nes = append(nes, a)
		case constraint.LE:
			ineqs = append(ineqs, ineq{terms: a.LHS.Terms, c: a.LHS.Const})
		case constraint.LT:
			ineqs = append(ineqs, ineq{terms: a.LHS.Terms, c: a.LHS.Const, strict: true})
		case constraint.GE:
			neg := a.LHS.Neg()
			ineqs = append(ineqs, ineq{terms: neg.Terms, c: neg.Const})
		case constraint.GT:
			neg := a.LHS.Neg()
			ineqs = append(ineqs, ineq{terms: neg.Terms, c: neg.Const, strict: true})
		}
	}
	return s.solveParts(eqs, nes, ineqs, s.opts.MaxNESplits)
}

// solveParts substitutes equalities, splits disequalities, then runs FM.
func (s *Solver) solveParts(eqs, nes []constraint.Atom, ineqs []ineq, neBudget int) Result {
	// Substitute equalities with a unit-coefficient variable; other
	// equalities become a pair of inequalities.
	for len(eqs) > 0 {
		a := eqs[len(eqs)-1]
		eqs = eqs[:len(eqs)-1]
		if a.LHS.IsConst() {
			if a.LHS.Const != 0 {
				return Unsat
			}
			continue
		}
		sym, repl, ok := unitSolve(a.LHS)
		if !ok {
			// No unit coefficient: encode as <=0 and >=0.
			neg := a.LHS.Neg()
			ineqs = append(ineqs,
				ineq{terms: a.LHS.Terms, c: a.LHS.Const},
				ineq{terms: neg.Terms, c: neg.Const})
			continue
		}
		for i := range eqs {
			eqs[i] = eqs[i].Subst(sym, repl)
			if eqs[i].IsTrivialFalse() {
				return Unsat
			}
		}
		for i := range nes {
			nes[i] = nes[i].Subst(sym, repl)
			if nes[i].IsTrivialFalse() {
				return Unsat
			}
		}
		for i := range ineqs {
			ineqs[i] = substIneq(ineqs[i], sym, repl)
			if constIneqFalse(ineqs[i]) {
				return Unsat
			}
		}
	}

	// Drop trivially-true disequalities; split the rest.
	kept := nes[:0]
	for _, a := range nes {
		if a.LHS.IsConst() {
			if a.LHS.Const == 0 {
				return Unsat
			}
			continue
		}
		kept = append(kept, a)
	}
	nes = kept
	if len(nes) > 0 {
		if neBudget <= 0 {
			return Unknown
		}
		a := nes[0]
		rest := nes[1:]
		// a != 0  ==>  a <= -1  or  a >= 1 (integer semantics).
		lo := append(cloneIneqs(ineqs), ineq{terms: a.LHS.Terms, c: a.LHS.Const + 1})
		if r := s.solveParts(nil, cloneAtoms(rest), lo, neBudget-1); r == Sat {
			return Sat
		} else if r == Unknown {
			return Unknown
		}
		neg := a.LHS.Neg()
		hi := append(cloneIneqs(ineqs), ineq{terms: neg.Terms, c: neg.Const + 1})
		return s.solveParts(nil, cloneAtoms(rest), hi, neBudget-1)
	}

	return s.fourierMotzkin(ineqs)
}

// unitSolve finds a symbol with coefficient ±1 in e (where e == 0) and
// returns the substitution sym -> repl.
func unitSolve(e symbolic.Expr) (symbolic.Sym, symbolic.Expr, bool) {
	for _, t := range e.Terms {
		if t.Coeff == 1 || t.Coeff == -1 {
			// t.Coeff*sym + rest = 0  =>  sym = -rest/t.Coeff
			rest := e.Subst(t.Sym, symbolic.Expr{}) // e without sym
			repl := rest.Scale(-t.Coeff)            // works since coeff = ±1
			return t.Sym, repl, true
		}
	}
	return symbolic.NoSym, symbolic.Expr{}, false
}

func substIneq(in ineq, sym symbolic.Sym, repl symbolic.Expr) ineq {
	e := symbolic.Expr{Terms: in.terms, Const: in.c}
	e = e.Subst(sym, repl)
	return ineq{terms: e.Terms, c: e.Const, strict: in.strict}
}

func constIneqFalse(in ineq) bool {
	if len(in.terms) != 0 {
		return false
	}
	if in.strict {
		return in.c >= 0
	}
	return in.c > 0
}

func cloneIneqs(in []ineq) []ineq {
	out := make([]ineq, len(in))
	copy(out, in)
	return out
}

func cloneAtoms(in []constraint.Atom) []constraint.Atom {
	out := make([]constraint.Atom, len(in))
	copy(out, in)
	return out
}

// fourierMotzkin eliminates variables one at a time. All atoms are integer
// comparisons, so a strict inequality e < 0 is first tightened to e+1 <= 0
// and bound combinations are gcd-tightened, giving integer completeness for
// the unit-ish coefficient systems symbolic execution produces.
func (s *Solver) fourierMotzkin(ineqs []ineq) Result {
	// Integer tightening: strict -> non-strict, divide by gcd with floor.
	work := make([]ineq, 0, len(ineqs))
	for _, in := range ineqs {
		if in.strict {
			in = ineq{terms: in.terms, c: in.c + 1}
		}
		in = gcdTighten(in)
		if len(in.terms) == 0 {
			if in.c > 0 {
				return Unsat
			}
			continue
		}
		work = append(work, in)
	}

	for vars := 0; ; vars++ {
		if len(work) == 0 {
			return Sat
		}
		if vars > s.opts.MaxVars || len(work) > s.opts.MaxIneqs {
			return Unknown
		}
		v := pickVar(work)
		if v == symbolic.NoSym {
			// Only constant atoms remain.
			for _, in := range work {
				if in.c > 0 {
					return Unsat
				}
			}
			return Sat
		}
		var lowers, uppers, others []ineq
		for _, in := range work {
			cf := coeffOf(in, v)
			switch {
			case cf > 0:
				uppers = append(uppers, in) // cf*v <= -rest
			case cf < 0:
				lowers = append(lowers, in) // cf*v <= -rest -> v >= ...
			default:
				others = append(others, in)
			}
		}
		next := others
		for _, up := range uppers {
			for _, lo := range lowers {
				comb, ok := combine(up, lo, v)
				if !ok {
					continue
				}
				comb = gcdTighten(comb)
				if len(comb.terms) == 0 {
					if comb.c > 0 {
						return Unsat
					}
					continue
				}
				next = append(next, comb)
				if len(next) > s.opts.MaxIneqs {
					return Unknown
				}
			}
		}
		work = next
	}
}

func pickVar(ineqs []ineq) symbolic.Sym {
	// Pick the variable with the fewest lower*upper products to limit blowup.
	type cnt struct{ lo, hi int }
	counts := map[symbolic.Sym]*cnt{}
	for _, in := range ineqs {
		for _, t := range in.terms {
			c := counts[t.Sym]
			if c == nil {
				c = &cnt{}
				counts[t.Sym] = c
			}
			if t.Coeff > 0 {
				c.hi++
			} else {
				c.lo++
			}
		}
	}
	best := symbolic.NoSym
	bestCost := math.MaxInt64
	for sym, c := range counts {
		cost := c.lo * c.hi
		if cost < bestCost || (cost == bestCost && sym < best) {
			best, bestCost = sym, cost
		}
	}
	return best
}

func coeffOf(in ineq, v symbolic.Sym) int64 {
	for _, t := range in.terms {
		if t.Sym == v {
			return t.Coeff
		}
	}
	return 0
}

// combine eliminates v from up (coeff a>0) and lo (coeff b<0):
// a*v + U <= 0 and b*v + L <= 0  ==>  (-b)*U + a*L <= 0.
func combine(up, lo ineq, v symbolic.Sym) (ineq, bool) {
	a := coeffOf(up, v)
	b := coeffOf(lo, v)
	if a <= 0 || b >= 0 {
		return ineq{}, false
	}
	ue := symbolic.Expr{Terms: up.terms, Const: up.c}
	le := symbolic.Expr{Terms: lo.terms, Const: lo.c}
	res := ue.Scale(-b).Add(le.Scale(a))
	// v's terms cancel: (-b)*a + a*b = 0.
	return ineq{terms: res.Terms, c: res.Const}, true
}

func gcdTighten(in ineq) ineq {
	if len(in.terms) == 0 {
		return in
	}
	g := int64(0)
	for _, t := range in.terms {
		g = gcd64(g, t.Coeff)
	}
	if g <= 1 {
		return in
	}
	terms := make([]symbolic.Term, len(in.terms))
	for i, t := range in.terms {
		terms[i] = symbolic.Term{Sym: t.Sym, Coeff: t.Coeff / g}
	}
	// sum*g + c <= 0  =>  sum <= floor(-c/g)  =>  sum - floor(-c/g) <= 0
	return ineq{terms: terms, c: -floorDiv(-in.c, g)}
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}
