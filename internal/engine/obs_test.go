package engine

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"github.com/grapple-system/grapple/internal/grammar"
	"github.com/grapple-system/grapple/internal/trace"
)

// TestStatsConcurrentWithRun pins the Stats() contract the progress
// heartbeat and debug server rely on: it may be called from another
// goroutine at any point during a run (including while the prefetcher is
// active) without racing the engine's own stats writes. Run under -race by
// `make race`.
func TestStatsConcurrentWithRun(t *testing.T) {
	d := grammar.NewDataflow()
	opts := Options{MemoryBudget: 4096, Dir: t.TempDir()}
	en := New(emptyICFET(), d.G, opts, nil)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-done:
				return
			default:
			}
			s := en.Stats()
			if s.Iterations < 0 || s.Partitions < 0 {
				panic("implausible snapshot")
			}
		}
	}()
	if _, err := en.Run(chainEdges(40, d.Flow), 40); err != nil {
		t.Fatal(err)
	}
	done <- struct{}{}
	<-done

	final := en.Stats()
	if final.Iterations == 0 || final.Partitions == 0 {
		t.Fatalf("final stats empty: %+v", final)
	}
	if final.SolveLatency.Total() != 0 && final.SolveLatency.Total() > final.ConstraintsSolved {
		t.Fatalf("solve latency histogram (%d) exceeds solves (%d)",
			final.SolveLatency.Total(), final.ConstraintsSolved)
	}
}

// TestTraceDoesNotChangeClosure is the engine-level half of the
// observation-only contract: the same input closed with tracing and
// progress attached must produce the exact same edge set, iteration count,
// and edge totals as a bare run.
func TestTraceDoesNotChangeClosure(t *testing.T) {
	d := grammar.NewDataflow()
	edges := chainEdges(48, d.Flow)

	enBare, stBare := runEngine(t, emptyICFET(), d.G, Options{MemoryBudget: 4096}, edges, 48)

	var chrome, jsonl bytes.Buffer
	rec := trace.NewWriters(&chrome, &jsonl)
	prog := trace.NewProgress()
	opts := Options{
		MemoryBudget: 4096,
		Dir:          t.TempDir(),
		Trace:        rec,
		TraceTID:     rec.Thread("engine-test"),
		Progress:     prog,
	}
	enObs := New(emptyICFET(), d.G, opts, nil)
	stObs, err := enObs.Run(edges, 48)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(closureKeys(t, enBare), closureKeys(t, enObs)) {
		t.Fatal("traced run produced a different closure")
	}
	if stBare.Iterations != stObs.Iterations ||
		stBare.EdgesBefore != stObs.EdgesBefore ||
		stBare.EdgesAfter != stObs.EdgesAfter {
		t.Fatalf("traced run changed stats: bare iter=%d eb=%d ea=%d, traced iter=%d eb=%d ea=%d",
			stBare.Iterations, stBare.EdgesBefore, stBare.EdgesAfter,
			stObs.Iterations, stObs.EdgesBefore, stObs.EdgesAfter)
	}

	// The trace itself must be a valid Chrome document with one span per
	// superstep (plus preprocess and metadata).
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace does not parse: %v", err)
	}
	supersteps := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "superstep" {
			supersteps++
		}
	}
	if int64(supersteps) != stObs.Iterations {
		t.Fatalf("trace has %d superstep spans, engine ran %d iterations", supersteps, stObs.Iterations)
	}

	snap := prog.Snapshot()
	if snap.Superstep != stObs.Iterations {
		t.Fatalf("progress superstep %d, want %d", snap.Superstep, stObs.Iterations)
	}
	if snap.Edges != stObs.EdgesAfter {
		t.Fatalf("progress edges %d, want %d", snap.Edges, stObs.EdgesAfter)
	}
}
