package engine

import (
	"testing"

	"github.com/grapple-system/grapple/internal/callgraph"
	"github.com/grapple-system/grapple/internal/cfet"
	"github.com/grapple-system/grapple/internal/fsm"
	"github.com/grapple-system/grapple/internal/grammar"
	"github.com/grapple-system/grapple/internal/ir"
	"github.com/grapple-system/grapple/internal/lang"
	"github.com/grapple-system/grapple/internal/storage"
	"github.com/grapple-system/grapple/internal/symbolic"
)

// emptyICFET builds a minimal ICFET (no methods) for tests whose edges carry
// no encodings.
func emptyICFET() *cfet.ICFET {
	return &cfet.ICFET{Syms: symbolic.NewTable(), MethodByName: map[string]cfet.MethodID{}, MaxEncLen: 64}
}

func flowEdge(src, dst uint32, l grammar.Label) storage.Edge {
	return storage.Edge{Src: src, Dst: dst, Label: l}
}

func runEngine(t *testing.T, ic *cfet.ICFET, g *grammar.Grammar, opts Options, edges []storage.Edge, nv uint32) (*Engine, *Stats) {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	en := New(ic, g, opts, nil)
	st, err := en.Run(edges, nv)
	if err != nil {
		t.Fatal(err)
	}
	return en, st
}

func collectLabel(t *testing.T, en *Engine, l grammar.Label) map[[2]uint32]int {
	t.Helper()
	out := map[[2]uint32]int{}
	if err := en.ForEach(func(e *storage.Edge) bool {
		if e.Label == l {
			out[[2]uint32{e.Src, e.Dst}]++
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestTransitiveClosureChain(t *testing.T) {
	d := grammar.NewDataflow()
	var edges []storage.Edge
	const n = 10
	for i := uint32(0); i+1 < n; i++ {
		edges = append(edges, flowEdge(i, i+1, d.Flow))
	}
	en, st := runEngine(t, emptyICFET(), d.G, Options{}, edges, n)
	got := collectLabel(t, en, d.Flow)
	// Closure of a chain: all (i,j) with i<j.
	want := n * (n - 1) / 2
	if len(got) != want {
		t.Fatalf("closure has %d edges, want %d", len(got), want)
	}
	if st.EdgesBefore != n-1 {
		t.Fatalf("edges before = %d", st.EdgesBefore)
	}
	if st.EdgesAfter != int64(want) {
		t.Fatalf("edges after = %d want %d", st.EdgesAfter, want)
	}
}

func TestClosureWithManyPartitions(t *testing.T) {
	// Tiny memory budget forces multiple partitions and out-of-core
	// behavior; the result must be identical.
	d := grammar.NewDataflow()
	var edges []storage.Edge
	const n = 40
	for i := uint32(0); i+1 < n; i++ {
		edges = append(edges, flowEdge(i, i+1, d.Flow))
	}
	en, st := runEngine(t, emptyICFET(), d.G, Options{MemoryBudget: 4096}, edges, n)
	got := collectLabel(t, en, d.Flow)
	want := n * (n - 1) / 2
	if len(got) != want {
		t.Fatalf("closure has %d edges, want %d (stats %+v)", len(got), want, st)
	}
	if st.Partitions < 2 {
		t.Fatalf("expected multiple partitions, got %d", st.Partitions)
	}
}

func TestRepartitioningTriggers(t *testing.T) {
	d := grammar.NewDataflow()
	var edges []storage.Edge
	const n = 64
	for i := uint32(0); i+1 < n; i++ {
		edges = append(edges, flowEdge(i, i+1, d.Flow))
	}
	// Budget so small that closure growth must split partitions.
	_, st := runEngine(t, emptyICFET(), d.G, Options{MemoryBudget: 8192}, edges, n)
	if st.Repartitions == 0 {
		t.Fatalf("expected eager repartitioning, stats %+v", st)
	}
	if st.EdgesAfter != int64(n*(n-1)/2) {
		t.Fatalf("closure wrong after repartitioning: %d", st.EdgesAfter)
	}
}

func TestPointerGrammarClosureFigure5b(t *testing.T) {
	// The alias graph of Fig. 5b: object --new--> out2 --assign--> o2,
	// out0 --assign--> out2 (reversed: paper draws out0 -> out2 as the
	// artificial edge; flow is object->out2, out2->o2, o2->o6).
	p := grammar.NewPointer(nil)
	const (
		object = 0
		out2   = 1
		o2     = 2
		o6     = 3
	)
	edges := []storage.Edge{
		{Src: object, Dst: out2, Label: p.New},
		{Src: out2, Dst: o2, Label: p.Assign},
		{Src: o2, Dst: o6, Label: p.Assign},
	}
	en, _ := runEngine(t, emptyICFET(), p.G, Options{}, edges, 4)
	flows := collectLabel(t, en, p.FlowsTo)
	for _, want := range [][2]uint32{{object, out2}, {object, o2}, {object, o6}} {
		if flows[want] == 0 {
			t.Errorf("missing flowsTo %v (have %v)", want, flows)
		}
	}
	aliases := collectLabel(t, en, p.Alias)
	// out2, o2, o6 all alias each other (and themselves).
	for _, want := range [][2]uint32{{out2, o2}, {o2, out2}, {out2, o6}, {o2, o6}} {
		if aliases[want] == 0 {
			t.Errorf("missing alias %v (have %v)", want, aliases)
		}
	}
}

func TestPointerGrammarFieldSensitivity(t *testing.T) {
	// a.f = b; c = a.g must NOT create a flow b -> c (different fields);
	// a.f = b; c = a.f must.
	p := grammar.NewPointer([]string{"f", "g"})
	const (
		oa = 0 // object for a
		ob = 1 // object for b
		a  = 2
		b  = 3
		c  = 4
	)
	base := []storage.Edge{
		{Src: oa, Dst: a, Label: p.New},
		{Src: ob, Dst: b, Label: p.New},
		{Src: b, Dst: a, Label: p.Store["f"]},
	}
	t.Run("same field", func(t *testing.T) {
		edges := append(append([]storage.Edge{}, base...),
			storage.Edge{Src: a, Dst: c, Label: p.Load["f"]})
		en, _ := runEngine(t, emptyICFET(), p.G, Options{}, edges, 5)
		flows := collectLabel(t, en, p.FlowsTo)
		if flows[[2]uint32{ob, c}] == 0 {
			t.Fatalf("ob should flow to c: %v", flows)
		}
	})
	t.Run("different field", func(t *testing.T) {
		edges := append(append([]storage.Edge{}, base...),
			storage.Edge{Src: a, Dst: c, Label: p.Load["g"]})
		en, _ := runEngine(t, emptyICFET(), p.G, Options{}, edges, 5)
		flows := collectLabel(t, en, p.FlowsTo)
		if flows[[2]uint32{ob, c}] != 0 {
			t.Fatalf("field mismatch must not flow: %v", flows)
		}
	})
}

func TestRelComposition(t *testing.T) {
	d := grammar.NewDataflow()
	f := fsm.BuiltinIO()
	newRel := fsm.EventRel(f, "new")
	writeRel := fsm.EventRel(f, "write")
	closeRel := fsm.EventRel(f, "close")
	edges := []storage.Edge{
		{Src: 0, Dst: 1, Label: d.Flow, HasRel: true, Rel: newRel},
		{Src: 1, Dst: 2, Label: d.Flow, HasRel: true, Rel: writeRel},
		{Src: 2, Dst: 3, Label: d.Flow, HasRel: true, Rel: closeRel},
	}
	en, _ := runEngine(t, emptyICFET(), d.G, Options{UseRel: true}, edges, 4)
	var final *storage.Edge
	if err := en.ForEach(func(e *storage.Edge) bool {
		if e.Src == 0 && e.Dst == 3 {
			cp := *e
			final = &cp
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if final == nil {
		t.Fatal("no composed 0->3 edge")
	}
	states := final.Rel.Apply(f.Init)
	closeIdx := f.StateIndex("Close")
	if states != 1<<uint(closeIdx) {
		t.Fatalf("composed relation maps Init to %b, want only Close", states)
	}
}

// buildFromSource compiles MiniLang down to an ICFET for constraint tests.
func buildFromSource(t *testing.T, src string) *cfet.ICFET {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := lang.Resolve(prog)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Lower(info, ir.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = callgraph.Build(p)
	ic, err := cfet.Build(p, symbolic.NewTable(), cfet.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ic
}

func TestConstraintPruningInEngine(t *testing.T) {
	// Two edges whose encodings lie on conflicting branches must not
	// compose; encodings on one path must.
	ic := buildFromSource(t, `
fun f(x: int) {
  if (x > 0) {
    x = x + 1;
  } else {
    x = x - 1;
  }
  return;
}`)
	m := ic.Method("f")
	d := grammar.NewDataflow()
	mkEdge := func(src, dst uint32, from, to uint64) storage.Edge {
		return storage.Edge{Src: src, Dst: dst, Label: d.Flow,
			Enc: cfet.Enc{cfet.Interval(m.Method, from, to)}}
	}
	t.Run("conflicting branches pruned", func(t *testing.T) {
		edges := []storage.Edge{
			mkEdge(0, 1, 0, 2), // true branch
			mkEdge(1, 2, 1, 1), // false branch fragment
		}
		en, st := runEngine(t, ic, d.G, Options{}, edges, 3)
		got := collectLabel(t, en, d.Flow)
		if got[[2]uint32{0, 2}] != 0 {
			t.Fatalf("conflicting-branch edge must be pruned: %v", got)
		}
		if st.RejectedConflict == 0 && st.RejectedUnsat == 0 {
			t.Fatalf("expected a rejection, stats %+v", st)
		}
	})
	t.Run("same path composes", func(t *testing.T) {
		edges := []storage.Edge{
			mkEdge(0, 1, 0, 2),
			mkEdge(1, 2, 2, 2),
		}
		en, _ := runEngine(t, ic, d.G, Options{}, edges, 3)
		got := collectLabel(t, en, d.Flow)
		if got[[2]uint32{0, 2}] == 0 {
			t.Fatalf("same-path edge missing: %v", got)
		}
	})
}

func TestUnsatPathPrunedBySolver(t *testing.T) {
	// if (x >= 0) {A} ; if (x < 0) {B}: a flow through A then B decodes to
	// x>=0 && x<0 — structurally mergeable (sequential branches), so only
	// the SMT solver can prune it.
	ic := buildFromSource(t, `
fun f(x: int) {
  var a: int = 0;
  if (x >= 0) {
    a = 1;
  }
  if (x < 0) {
    a = 2;
  }
  return;
}`)
	m := ic.Method("f")
	d := grammar.NewDataflow()
	// Node 2 = first-if true; its true child for second if = 2*2+2 = 6.
	edges := []storage.Edge{
		{Src: 0, Dst: 1, Label: d.Flow, Enc: cfet.Enc{cfet.Interval(m.Method, 0, 2)}},
		{Src: 1, Dst: 2, Label: d.Flow, Enc: cfet.Enc{cfet.Interval(m.Method, 2, 6)}},
	}
	en, st := runEngine(t, ic, d.G, Options{}, edges, 3)
	got := collectLabel(t, en, d.Flow)
	if got[[2]uint32{0, 2}] != 0 {
		t.Fatalf("solver should prune x>=0 && x<0: %v (stats %+v)", got, st)
	}
	if st.RejectedUnsat == 0 {
		t.Fatalf("expected unsat rejection, stats %+v", st)
	}
}

func TestDeduplication(t *testing.T) {
	d := grammar.NewDataflow()
	edges := []storage.Edge{
		flowEdge(0, 1, d.Flow),
		flowEdge(0, 1, d.Flow), // duplicate
		flowEdge(1, 2, d.Flow),
	}
	_, st := runEngine(t, emptyICFET(), d.G, Options{}, edges, 3)
	if st.EdgesBefore != 2 {
		t.Fatalf("duplicate initial edge not removed: %d", st.EdgesBefore)
	}
	if st.EdgesAfter != 3 {
		t.Fatalf("edges after = %d, want 3", st.EdgesAfter)
	}
}

func TestVariantWidening(t *testing.T) {
	// Many distinct encodings between the same endpoints hit the cap.
	ic := buildFromSource(t, `
fun f(x: int) {
  if (x > 0) { x = 1; } else { x = 2; }
  if (x > 1) { x = 3; } else { x = 4; }
  if (x > 2) { x = 5; } else { x = 6; }
  return;
}`)
	m := ic.Method("f")
	d := grammar.NewDataflow()
	var edges []storage.Edge
	// Distinct single-node encodings 0..8 between vertices 0->1, plus a
	// 1->2 edge so joins occur.
	for _, node := range []uint64{0, 1, 2, 3, 4, 5, 6} {
		edges = append(edges, storage.Edge{Src: 0, Dst: 1, Label: d.Flow,
			Enc: cfet.Enc{cfet.Interval(m.Method, node, node)}})
	}
	edges = append(edges, flowEdge(1, 2, d.Flow))
	_, st := runEngine(t, ic, d.G, Options{MaxVariants: 3}, edges, 3)
	if st.Widened == 0 {
		t.Fatalf("expected widening, stats %+v", st)
	}
}

func TestCacheCountersExposed(t *testing.T) {
	ic := buildFromSource(t, `
fun f(x: int) {
  if (x > 0) { x = 1; }
  return;
}`)
	m := ic.Method("f")
	d := grammar.NewDataflow()
	edges := []storage.Edge{
		{Src: 0, Dst: 1, Label: d.Flow, Enc: cfet.Enc{cfet.Interval(m.Method, 0, 2)}},
		{Src: 1, Dst: 2, Label: d.Flow, Enc: cfet.Enc{cfet.Interval(m.Method, 2, 2)}},
		{Src: 2, Dst: 3, Label: d.Flow, Enc: cfet.Enc{cfet.Interval(m.Method, 2, 2)}},
	}
	_, st := runEngine(t, ic, d.G, Options{}, edges, 4)
	if st.CacheLookups == 0 {
		t.Fatalf("cache not consulted: %+v", st)
	}
	// Disabled cache must still work.
	_, st2 := runEngine(t, ic, d.G, Options{CacheSize: -1}, edges, 4)
	if st2.CacheLookups != 0 {
		t.Fatalf("disabled cache consulted: %+v", st2)
	}
	if st2.EdgesAfter != st.EdgesAfter {
		t.Fatal("cache must not change results")
	}
}

func TestEmptyGraph(t *testing.T) {
	d := grammar.NewDataflow()
	_, st := runEngine(t, emptyICFET(), d.G, Options{}, nil, 1)
	if st.EdgesAfter != 0 || st.EdgesBefore != 0 {
		t.Fatalf("empty graph stats: %+v", st)
	}
}

func TestDeferRepartition(t *testing.T) {
	d := grammar.NewDataflow()
	var edges []storage.Edge
	const n = 64
	for i := uint32(0); i+1 < n; i++ {
		edges = append(edges, flowEdge(i, i+1, d.Flow))
	}
	_, st := runEngine(t, emptyICFET(), d.G, Options{MemoryBudget: 8192, DeferRepartition: true}, edges, n)
	if st.Repartitions != 0 {
		t.Fatalf("deferred mode must not repartition: %+v", st)
	}
	if st.EdgesAfter != int64(n*(n-1)/2) {
		t.Fatalf("closure wrong: %d", st.EdgesAfter)
	}
	// Eager mode must agree on the result.
	_, st2 := runEngine(t, emptyICFET(), d.G, Options{MemoryBudget: 8192}, edges, n)
	if st2.EdgesAfter != st.EdgesAfter {
		t.Fatal("eager and deferred modes disagree")
	}
}
