package engine

import (
	"encoding/binary"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/grapple-system/grapple/internal/cfet"
	"github.com/grapple-system/grapple/internal/fsm"
	"github.com/grapple-system/grapple/internal/smt"
	"github.com/grapple-system/grapple/internal/storage"
	"github.com/grapple-system/grapple/internal/trace"
)

// candidate is a validated induced edge awaiting insertion.
type candidate struct {
	edge storage.Edge
}

// joinScratch is one join chunk's reusable buffers: the candidate batch the
// chunk produces and the SMT-cache key scratch its probes encode into. The
// superstep loop is single-threaded, so a chunk's batch from superstep N is
// fully consumed (inserted) before superstep N+1 hands the same scratch to
// another goroutine; within a superstep each chunk owns its scratch
// exclusively.
type joinScratch struct {
	out    []candidate
	keyBuf []byte
}

// splitRange appends to dst the bounds of at most `workers` contiguous,
// near-equal chunks covering [0, n) — and never more chunks than elements,
// so a 3-edge frontier under 8 workers fans out to 3 single-edge chunks
// instead of serializing on one goroutine (the old clamp-to-1 behavior).
func splitRange(dst [][2]int, n, workers int) [][2]int {
	if n <= 0 || workers < 1 {
		return dst
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		dst = append(dst, [2]int{lo, hi})
	}
	return dst
}

// processPair loads partitions i and j, joins every consecutive edge pair
// (x->y, y->z) whose labels match a grammar production and whose combined
// path constraint is satisfiable, and adds the induced edges (paper §4.2,
// §4.3 "similar in spirit to table joining in relational algebra, but ...
// we need to consider the constraints of both assignment semantics and
// paths"). Returns the superstep's frontier size — how many source edges
// were eligible for joining — for the observability layer.
func (en *Engine) processPair(i, j int) (int, error) {
	// Make room for i, j; other cached partitions stay resident until the
	// memory budget forces them out, least-recently-used first.
	if err := en.ensureBudget(i, j); err != nil {
		return 0, err
	}
	pi, err := en.load(i)
	if err != nil {
		return 0, err
	}
	pj := pi
	if j != i {
		if pj, err = en.load(j); err != nil {
			return 0, err
		}
	}
	en.hot = [2]int{i, j}
	key := [2]int{en.parts[i].id, en.parts[j].id}
	last, seen := en.lastGen[key]
	en.curGen++
	gen := en.curGen

	// Collect source edges; semi-naive: at least one side must be new.
	// With pooling on the frontier slice is reused across supersteps: the
	// previous superstep's frontier is dead by the time the loop comes back
	// here (its candidates were inserted before the superstep ended).
	pool := !en.opts.DisablePooling
	var firsts []*storage.Edge
	if pool {
		firsts = en.firstsBuf[:0]
	}
	collect := func(mp *memPart) {
		for k := range mp.edges {
			e := &mp.edges[k]
			if en.g.HasLeft(e.Label) {
				firsts = append(firsts, e)
			}
		}
	}
	collect(pi)
	if j != i {
		collect(pj)
	}

	lookup := func(src uint32) ([]int32, *memPart) {
		if src >= pi.meta.lo && src < pi.meta.hi {
			return pi.bySrc[src], pi
		}
		if j != i && src >= pj.meta.lo && src < pj.meta.hi {
			return pj.bySrc[src], pj
		}
		return nil, nil
	}

	var chunks [][2]int
	if pool {
		chunks = splitRange(en.chunkBuf[:0], len(firsts), en.opts.Workers)
		en.chunkBuf = chunks
		for len(en.scratch) < len(chunks) {
			en.scratch = append(en.scratch, &joinScratch{})
		}
	} else {
		chunks = splitRange(nil, len(firsts), en.opts.Workers)
	}
	var wg sync.WaitGroup
	var results [][]candidate
	if !pool {
		results = make([][]candidate, len(chunks))
	}
	for w, c := range chunks {
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var scr *joinScratch
			if pool {
				scr = en.scratch[w]
			}
			out := en.joinRange(firsts[lo:hi], lookup, last, seen, gen, scr)
			if pool {
				en.scratch[w].out = out
			} else {
				results[w] = out
			}
		}(w, c[0], c[1])
	}
	// While the join computes, start loading the partition the scheduler is
	// predicted to need next, so the next iteration's disk wait overlaps
	// this iteration's CPU work.
	if !en.opts.DisablePrefetch {
		en.speculate(i, j)
	}
	wg.Wait()

	// Insert candidates (single-threaded: dedupe set and partitions).
	computeStart := time.Now()
	for w := range chunks {
		var batch []candidate
		if pool {
			batch = en.scratch[w].out
		} else {
			batch = results[w]
		}
		for _, c := range batch {
			en.insert(c.edge, i, j)
		}
	}
	en.bd.AddCompute(time.Since(computeStart))
	if pool {
		en.firstsBuf = firsts
	}

	// Edges induced during this very iteration carry generation `gen` and
	// still need to be joined against everything, so the pair is processed
	// "up to" gen-1: it stays dirty exactly when this pass added edges.
	en.lastGen[key] = gen - 1

	if err := en.flushPending(false); err != nil {
		return 0, err
	}
	// Eager repartitioning (paper §4.3): split any loaded partition whose
	// byte size outgrew the budget. Split j before i: the split inserts a
	// partition right after the split position, which would shift j.
	if !en.opts.DeferRepartition {
		for _, idx := range []int{j, i} {
			if mp, ok := en.loaded[idx]; ok && mp.meta.bytes > en.opts.MemoryBudget/3 {
				if err := en.repartition(idx); err != nil {
					return 0, err
				}
			}
		}
	}
	return len(firsts), nil
}

// speculate predicts the pair the scheduler will pick once the current one
// goes clean and starts background loads for its unloaded members. The scan
// mirrors nextPair (hot scoring, same order) but skips the current pair —
// re-selecting it costs no I/O — and pairs already fully in memory. A wrong
// guess costs one stale or wasted prefetch, never correctness: prefetching
// only changes when bytes are read, not what the engine computes.
func (en *Engine) speculate(curI, curJ int) {
	best, bestScore := [2]int{-1, -1}, -1
	for i := 0; i < len(en.parts); i++ {
		for j := i; j < len(en.parts); j++ {
			if i == curI && j == curJ {
				continue
			}
			key := [2]int{en.parts[i].id, en.parts[j].id}
			last, seen := en.lastGen[key]
			if seen && en.parts[i].maxGen <= last && en.parts[j].maxGen <= last {
				continue
			}
			_, iLoaded := en.loaded[i]
			_, jLoaded := en.loaded[j]
			if iLoaded && jLoaded {
				continue
			}
			score := 0
			if i == curI || i == curJ {
				score++
			}
			if j == curI || j == curJ {
				score++
			}
			if score > bestScore {
				best, bestScore = [2]int{i, j}, score
			}
		}
	}
	if bestScore < 0 {
		return
	}
	for _, idx := range best {
		if _, ok := en.loaded[idx]; !ok {
			en.pf.start(en.parts[idx])
		}
	}
}

// appendEncCacheKey appends the memoization key of an encoding's raw
// elements to dst. Callers reuse dst across probes so a cache lookup costs
// no allocation; the key string is materialized only when the cache
// actually inserts an entry (smt.Cache.PutBytes).
func appendEncCacheKey(dst []byte, enc cfet.Enc) []byte {
	var tmp [binary.MaxVarintLen64]byte
	for _, el := range enc {
		dst = append(dst, byte(el.Kind))
		switch el.Kind {
		case cfet.KInterval:
			n := binary.PutUvarint(tmp[:], uint64(el.Method))
			dst = append(dst, tmp[:n]...)
			n = binary.PutUvarint(tmp[:], el.Start)
			dst = append(dst, tmp[:n]...)
			n = binary.PutUvarint(tmp[:], el.End)
			dst = append(dst, tmp[:n]...)
		default:
			n := binary.PutUvarint(tmp[:], uint64(el.Call))
			dst = append(dst, tmp[:n]...)
		}
	}
	return dst
}

// encCacheKey builds the memoization key as a string (the unpooled path;
// the pooled join probes with appendEncCacheKey's bytes instead).
func encCacheKey(enc cfet.Enc) string {
	return string(appendEncCacheKey(make([]byte, 0, len(enc)*16), enc))
}

// joinRange joins each first edge against the loaded second edges and
// returns constraint-validated candidates. Runs concurrently; touches only
// read-only engine state plus its own solver and scratch. scr, when
// non-nil, supplies the reused candidate batch and cache-key buffer
// (nil reverts to fresh allocations — the pooling ablation).
func (en *Engine) joinRange(firsts []*storage.Edge, lookup func(uint32) ([]int32, *memPart), last uint32, seen bool, gen uint32, scr *joinScratch) []candidate {
	solver := &smt.CachedSolver{S: smt.New(en.opts.SolverOpts)}
	var out []candidate
	var keyBuf []byte
	if scr != nil {
		out = scr.out[:0]
		keyBuf = scr.keyBuf
	}
	var cacheLookups, cacheHits int64
	computeStart := time.Now()
	for _, e1 := range firsts {
		idxs, mp := lookup(e1.Dst)
		if mp == nil {
			continue
		}
		for _, k := range idxs {
			e2 := &mp.edges[k]
			if seen && e1.Gen <= last && e2.Gen <= last {
				continue // both sides already joined in a prior iteration
			}
			heads := en.g.MatchBinary(e1.Label, e2.Label)
			if len(heads) == 0 {
				continue
			}
			decodeStart := time.Now()
			enc, ok := en.ic.Merge(e1.Enc, e2.Enc)
			en.bd.AddDecode(time.Since(decodeStart))
			if !ok {
				en.addConflict()
				continue
			}
			// Quick global-dedupe pre-check (racy but safe: insert
			// re-checks under the engine lock).
			var rel fsm.Rel
			if en.opts.UseRel {
				rel = fsm.Compose(e1.Rel, e2.Rel)
			}
			allDup := true
			for _, h := range heads {
				cand := storage.Edge{Src: e1.Src, Dst: e2.Dst, Label: h, Gen: gen,
					HasRel: en.opts.UseRel, Rel: rel, Enc: enc}
				if !en.hasKey(cand.Key()) {
					allDup = false
					break
				}
			}
			if allDup {
				continue
			}
			if len(enc) > 0 {
				// Constraint memoization keyed by the encoded path (paper
				// §4.3: "using encoded paths as the keys"): a hit skips
				// both decoding and solving. The pooled path encodes the
				// key into the chunk's scratch buffer and probes with
				// byte-key lookups, so a probe per join candidate costs no
				// allocation; the key string only materializes when a miss
				// inserts a new entry.
				var key string
				var verdict smt.Result
				hit := false
				if en.cache != nil {
					cacheLookups++
					if scr != nil {
						keyBuf = append(keyBuf[:0], en.opts.CacheKeyPrefix...)
						keyBuf = appendEncCacheKey(keyBuf, enc)
						verdict, hit = en.cache.GetBytes(keyBuf)
					} else {
						key = en.opts.CacheKeyPrefix + encCacheKey(enc)
						verdict, hit = en.cache.Get(key)
					}
					if hit {
						cacheHits++
					}
				}
				if !hit {
					decodeStart = time.Now()
					conj, derr := en.ic.Decode(enc)
					en.bd.AddDecode(time.Since(decodeStart))
					verdict = smt.Sat
					if derr == nil && len(conj) > 0 {
						solveStart := time.Now()
						verdict = solver.S.Solve(conj)
						d := time.Since(solveStart)
						en.bd.AddSolve(d)
						en.addSolveTime(d)
						en.solve.Observe(d)
					}
					if en.cache != nil {
						if scr != nil {
							en.cache.PutBytes(keyBuf, verdict)
						} else {
							en.cache.Put(key, verdict)
						}
					}
				}
				if verdict == smt.Unsat {
					en.addUnsat()
					continue
				}
			}
			for _, h := range heads {
				out = append(out, candidate{edge: storage.Edge{
					Src: e1.Src, Dst: e2.Dst, Label: h, Gen: gen,
					HasRel: en.opts.UseRel, Rel: rel, Enc: enc,
				}})
			}
		}
	}
	en.bd.AddCompute(time.Since(computeStart))
	if scr != nil {
		scr.keyBuf = keyBuf
	}
	en.mu.Lock()
	en.stats.ConstraintsSolved += solver.S.Calls
	en.stats.CacheLookups += cacheLookups
	en.stats.CacheHits += cacheHits
	en.mu.Unlock()
	return out
}

func (en *Engine) hasKey(k uint64) bool {
	en.mu.Lock()
	_, ok := en.keys[k]
	en.mu.Unlock()
	return ok
}

func (en *Engine) addConflict() {
	en.mu.Lock()
	en.stats.RejectedConflict++
	en.mu.Unlock()
}

func (en *Engine) addUnsat() {
	en.mu.Lock()
	en.stats.RejectedUnsat++
	en.mu.Unlock()
}

func (en *Engine) addSolveTime(d time.Duration) {
	en.mu.Lock()
	en.stats.SolveTime += d
	en.mu.Unlock()
}

// insert adds one induced edge (and its unary/mirror derivatives) to its
// owning partition, honoring the per-endpoint variant cap.
func (en *Engine) insert(e storage.Edge, loadedI, loadedJ int) {
	for _, v := range en.expand(e) {
		k := v.Key()
		if _, dup := en.keys[k]; dup {
			continue
		}
		ep := v.Endpoint()
		if en.variants[ep] >= en.opts.MaxVariants && len(v.Enc) > 0 {
			// Widen: drop interval (branch) precision but keep call/return
			// structure — erasing it would let composed paths enter a
			// callee through one call-edge instance and exit through
			// another, stitching execution fragments no single run can
			// connect. Only past twice the cap does the edge widen to the
			// fully unconstrained variant.
			if sk := v.Enc.Skeleton(); len(sk) > 0 && en.variants[ep] < 2*en.opts.MaxVariants {
				v.Enc = sk
			} else {
				v.Enc = nil
			}
			k = v.Key()
			if _, dup := en.keys[k]; dup {
				continue
			}
			en.mu.Lock()
			en.stats.Widened++
			en.mu.Unlock()
		}
		en.keys[k] = struct{}{}
		en.variants[ep]++
		sz := storage.RecordSize(&v)
		owner := en.partOf(v.Src)
		if mp, ok := en.loaded[owner]; ok {
			mp.add(v, sz)
			continue
		}
		// Buffer for an unloaded partition ("new edges are written into the
		// partitions that contain their source vertices").
		en.pending[owner] = append(en.pending[owner], v)
		meta := en.parts[owner]
		meta.edges++
		meta.bytes += sz
		if v.Gen > meta.maxGen {
			meta.maxGen = v.Gen
		}
	}
}

// repartition splits partition idx at its median source vertex (paper §4.3
// "oversized partitions get dynamically repartitioned").
func (en *Engine) repartition(idx int) error {
	mp, ok := en.loaded[idx]
	if !ok {
		return nil
	}
	meta := mp.meta
	if meta.hi-meta.lo <= 1 || len(mp.edges) < 2 {
		return nil // cannot split a single-vertex interval
	}
	srcs := make([]uint32, len(mp.edges))
	for i := range mp.edges {
		srcs[i] = mp.edges[i].Src
	}
	sort.Slice(srcs, func(a, b int) bool { return srcs[a] < srcs[b] })
	mid := srcs[len(srcs)/2]
	if mid <= meta.lo {
		mid = meta.lo + (meta.hi-meta.lo)/2
	}
	if mid <= meta.lo || mid >= meta.hi {
		return nil
	}
	en.mu.Lock()
	en.stats.Repartitions++
	en.mu.Unlock()

	// Low half stays in the existing partition; the high half becomes a new
	// partition appended at the end of the table. Vertex->partition mapping
	// uses interval search, so ordering of en.parts by interval must be
	// maintained: insert the new partition right after idx.
	var loEdges, hiEdges []storage.Edge
	var loBytes, hiBytes int64
	var loGen, hiGen uint32
	for i := range mp.edges {
		sz := storage.RecordSize(&mp.edges[i])
		if mp.edges[i].Src < mid {
			loEdges = append(loEdges, mp.edges[i])
			loBytes += sz
			if mp.edges[i].Gen > loGen {
				loGen = mp.edges[i].Gen
			}
		} else {
			hiEdges = append(hiEdges, mp.edges[i])
			hiBytes += sz
			if mp.edges[i].Gen > hiGen {
				hiGen = mp.edges[i].Gen
			}
		}
	}
	newMeta := &partMeta{
		id:    en.nextPartID(),
		lo:    mid,
		hi:    meta.hi,
		path:  en.partPath(),
		edges: int64(len(hiEdges)), bytes: hiBytes, maxGen: hiGen,
	}
	meta.hi = mid
	meta.edges = int64(len(loEdges))
	meta.bytes = loBytes
	meta.maxGen = loGen
	if en.jw != nil {
		// Shrinking the low half under its original path would be the one
		// write that destroys a checkpointed file prefix. Redirect the
		// survivor to a fresh path instead: the pre-split file stays frozen
		// on disk (the last journal record still references it) until a
		// newer record supersedes it. Repartitions is already incremented,
		// so the suffix is unique for the run.
		meta.path = filepath.Join(en.opts.Dir,
			fmt.Sprintf("part-%06d-r%06d.edges", meta.id, en.stats.Repartitions))
	}

	// Persist the new partition; keep the low half loaded.
	ioStart := time.Now()
	n, err := storage.WritePart(newMeta.path, hiEdges, storage.PartInfo{Lo: newMeta.lo, Hi: newMeta.hi})
	if err != nil {
		return err
	}
	d := time.Since(ioStart)
	en.bd.AddIO(d)
	en.io.AddWrite(n)
	en.traceIO("write", newMeta.id, n, d)
	if en.opts.Trace.Enabled() {
		en.opts.Trace.Instant(en.opts.TraceTID, "engine", "repartition",
			trace.Args{"part": meta.id, "newPart": newMeta.id, "mid": mid})
	}

	mp.edges = loEdges
	mp.bySrc = en.buildBySrc(loEdges)
	mp.dirty = true

	// Insert newMeta right after idx to keep interval order.
	en.mu.Lock()
	en.parts = append(en.parts, nil)
	copy(en.parts[idx+2:], en.parts[idx+1:])
	en.parts[idx+1] = newMeta
	en.mu.Unlock()

	// Loaded and pending maps are indexed by position; remap anything at or
	// beyond the insertion point.
	en.remapAfterInsert(idx + 1)
	return nil
}

func (en *Engine) nextPartID() int {
	max := -1
	for _, p := range en.parts {
		if p.id > max {
			max = p.id
		}
	}
	return max + 1
}

func (en *Engine) partPath() string {
	return en.opts.Dir + "/" + "part-" + itoa6(en.nextPartID()) + ".edges"
}

func itoa6(n int) string {
	buf := []byte("000000")
	for i := 5; i >= 0 && n > 0; i-- {
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf)
}

// remapAfterInsert shifts position-indexed maps after inserting a partition
// at position pos.
func (en *Engine) remapAfterInsert(pos int) {
	newLoaded := make(map[int]*memPart, len(en.loaded))
	for idx, mp := range en.loaded {
		if idx >= pos {
			newLoaded[idx+1] = mp
		} else {
			newLoaded[idx] = mp
		}
	}
	en.loaded = newLoaded
	newPending := make(map[int][]storage.Edge, len(en.pending))
	for idx, p := range en.pending {
		if idx >= pos {
			newPending[idx+1] = p
		} else {
			newPending[idx] = p
		}
	}
	en.pending = newPending
	for k, idx := range en.hot {
		if idx >= pos {
			en.hot[k] = idx + 1
		}
	}
	// lastGen is keyed by stable partition IDs, not positions: safe. The
	// prefetcher is keyed by *partMeta pointers, equally stable.
}

// ForEach streams every edge of the closed graph from disk (after Run).
func (en *Engine) ForEach(f func(*storage.Edge) bool) error {
	for _, meta := range en.parts {
		edges, _, _, err := storage.ReadPartWith(meta.path, nil, en.readOpts)
		if err != nil {
			return err
		}
		for i := range edges {
			if !f(&edges[i]) {
				return nil
			}
		}
	}
	return nil
}

// EdgesAfter counts all edges on disk (after Run).
func (en *Engine) EdgesAfter() int64 {
	var n int64
	for _, meta := range en.parts {
		n += meta.edges
	}
	return n
}
