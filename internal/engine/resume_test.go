package engine

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"testing"

	"github.com/grapple-system/grapple/internal/faultpoint"
	"github.com/grapple-system/grapple/internal/grammar"
	"github.com/grapple-system/grapple/internal/storage"
)

// fingerprint hashes the closed graph exactly as it lies on disk — edge
// order included, since insertion order drives widening and therefore the
// byte-identity claim downstream.
func fingerprint(t *testing.T, en *Engine) string {
	t.Helper()
	h := fnv.New64a()
	if err := en.ForEach(func(e *storage.Edge) bool {
		fmt.Fprintf(h, "%d/%d/%d/%d/%v/%v/%v|", e.Src, e.Dst, e.Label, e.Gen, e.HasRel, e.Rel, e.Enc)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%x", h.Sum64())
}

// smallOpts forces many partitions and repartitions so checkpoints cover
// the interesting machinery (splits, redirected paths, pending buffers).
func smallOpts(dir string, tag uint64) Options {
	return Options{
		Dir: dir, MemoryBudget: 4096, Workers: 2,
		Journal: true, JournalTag: tag,
	}
}

// TestEngineResumeAtEveryBoundary is the engine half of the tentpole
// property: kill the run at every superstep boundary k, resume with fresh
// engine state, and require the closed graph on disk to be identical — edge
// for edge, in order — to an uninterrupted run's.
func TestEngineResumeAtEveryBoundary(t *testing.T) {
	// n and the 4 KiB budget in smallOpts are tuned together: ~34 superstep
	// boundaries with ~5 repartitions, so the kill loop covers the whole
	// machinery while staying a few seconds.
	const n = 24
	const tag = 0x5eed
	d := grammar.NewDataflow()

	// Reference: an uninterrupted journaled run.
	refDir := t.TempDir()
	refFaults := faultpoint.New()
	refOpts := smallOpts(refDir, tag)
	refOpts.Faults = refFaults
	refEn := New(emptyICFET(), d.G, refOpts, nil)
	refStats, err := refEn.Run(chainEdges(n, d.Flow), n)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, refEn)
	if refStats.Repartitions == 0 {
		t.Fatal("workload too small: no repartitions, redirect path untested")
	}
	if refStats.Checkpoints < 3 {
		t.Fatalf("workload too small: %d checkpoints", refStats.Checkpoints)
	}

	// Ablation: journaling must not change the result.
	offOpts := smallOpts(t.TempDir(), tag)
	offOpts.Journal = false
	offEn, offStats := runEngine(t, emptyICFET(), d.G, offOpts, chainEdges(n, d.Flow), n)
	if got := fingerprint(t, offEn); got != want {
		t.Fatalf("journal-off run differs from journal-on run")
	}
	if offStats.EdgesAfter != refStats.EdgesAfter || offStats.Iterations != refStats.Iterations {
		t.Fatalf("journal-off stats diverge: %d/%d edges, %d/%d iterations",
			offStats.EdgesAfter, refStats.EdgesAfter, offStats.Iterations, refStats.Iterations)
	}

	boundaries := refFaults.Count(faultpoint.EngineSuperstep)
	for k := 1; k <= boundaries; k++ {
		dir := t.TempDir()
		faults := faultpoint.New()
		faults.Arm(faultpoint.EngineSuperstep, k)
		opts := smallOpts(dir, tag)
		opts.Faults = faults
		en := New(emptyICFET(), d.G, opts, nil)
		if _, err := en.Run(chainEdges(n, d.Flow), n); !errors.Is(err, faultpoint.ErrInjected) {
			t.Fatalf("k=%d: kill did not fire: %v", k, err)
		}
		// Fresh objects: nothing survives the "crash" but the disk.
		ren := New(emptyICFET(), d.G, smallOpts(dir, tag), nil)
		rstats, err := ren.Resume(n)
		if err != nil {
			t.Fatalf("k=%d: resume: %v", k, err)
		}
		if got := fingerprint(t, ren); got != want {
			t.Fatalf("k=%d: resumed graph differs from uninterrupted run", k)
		}
		if rstats.EdgesAfter != refStats.EdgesAfter || rstats.Iterations != refStats.Iterations {
			t.Fatalf("k=%d: resumed stats diverge: %d/%d edges, %d/%d iterations",
				k, rstats.EdgesAfter, refStats.EdgesAfter, rstats.Iterations, refStats.Iterations)
		}
	}
}

// TestEngineResumeAfterTornWrites kills the run inside the journal append
// (torn record) and before the checkpoint flush; both must resume to the
// identical graph from the previous durable record.
func TestEngineResumeAfterTornWrites(t *testing.T) {
	const n = 24
	const tag = 9
	d := grammar.NewDataflow()

	refDir := t.TempDir()
	refEn := New(emptyICFET(), d.G, smallOpts(refDir, tag), nil)
	refStats, err := refEn.Run(chainEdges(n, d.Flow), n)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, refEn)

	// Journal append 1 is the baseline record: tearing it leaves a journal
	// with no usable checkpoint, and resume must refuse (never start cold).
	t.Run("torn baseline record refuses resume", func(t *testing.T) {
		dir := t.TempDir()
		faults := faultpoint.New()
		faults.Arm(faultpoint.JournalAppendMid, 1)
		opts := smallOpts(dir, tag)
		opts.Faults = faults
		en := New(emptyICFET(), d.G, opts, nil)
		if _, err := en.Run(chainEdges(n, d.Flow), n); !errors.Is(err, faultpoint.ErrInjected) {
			t.Fatalf("kill did not fire: %v", err)
		}
		ren := New(emptyICFET(), d.G, smallOpts(dir, tag), nil)
		if _, err := ren.Resume(n); !errors.Is(err, storage.ErrCorrupt) {
			t.Fatalf("resume over a record-less journal: %v", err)
		}
	})

	for _, point := range []string{faultpoint.JournalAppendMid, faultpoint.EngineCheckpointPre} {
		for _, k := range []int{2, 3, 4} {
			dir := t.TempDir()
			faults := faultpoint.New()
			faults.Arm(point, k)
			opts := smallOpts(dir, tag)
			opts.Faults = faults
			en := New(emptyICFET(), d.G, opts, nil)
			if _, err := en.Run(chainEdges(n, d.Flow), n); !errors.Is(err, faultpoint.ErrInjected) {
				t.Fatalf("%s k=%d: kill did not fire: %v", point, k, err)
			}
			ren := New(emptyICFET(), d.G, smallOpts(dir, tag), nil)
			rstats, err := ren.Resume(n)
			if err != nil {
				t.Fatalf("%s k=%d: resume: %v", point, k, err)
			}
			if got := fingerprint(t, ren); got != want {
				t.Fatalf("%s k=%d: resumed graph differs", point, k)
			}
			if rstats.EdgesAfter != refStats.EdgesAfter {
				t.Fatalf("%s k=%d: %d edges, want %d", point, k, rstats.EdgesAfter, refStats.EdgesAfter)
			}
		}
	}
}

func TestEngineResumeMissingJournal(t *testing.T) {
	d := grammar.NewDataflow()
	en := New(emptyICFET(), d.G, Options{Dir: t.TempDir(), MemoryBudget: 4096}, nil)
	if _, err := en.Resume(10); !errors.Is(err, storage.ErrNoJournal) {
		t.Fatalf("resume without journal: %v", err)
	}
}

func TestEngineResumeStaleJournal(t *testing.T) {
	const n = 20
	d := grammar.NewDataflow()
	dir := t.TempDir()
	en := New(emptyICFET(), d.G, smallOpts(dir, 1), nil)
	if _, err := en.Run(chainEdges(n, d.Flow), n); err != nil {
		t.Fatal(err)
	}
	// Wrong tag.
	ren := New(emptyICFET(), d.G, smallOpts(dir, 2), nil)
	if _, err := ren.Resume(n); !errors.Is(err, ErrStale) {
		t.Fatalf("tag mismatch: %v", err)
	}
	// Wrong vertex space.
	ren = New(emptyICFET(), d.G, smallOpts(dir, 1), nil)
	if _, err := ren.Resume(n + 1); !errors.Is(err, ErrStale) {
		t.Fatalf("vertex mismatch: %v", err)
	}
}

func TestEngineResumeCorruptJournal(t *testing.T) {
	const n = 20
	d := grammar.NewDataflow()
	dir := t.TempDir()
	en := New(emptyICFET(), d.G, smallOpts(dir, 1), nil)
	if _, err := en.Run(chainEdges(n, d.Flow), n); err != nil {
		t.Fatal(err)
	}
	// Smash the journal header.
	path := dir + "/" + storage.JournalName
	if err := overwriteByte(path, 2, 'X'); err != nil {
		t.Fatal(err)
	}
	ren := New(emptyICFET(), d.G, smallOpts(dir, 1), nil)
	if _, err := ren.Resume(n); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("corrupt journal: %v", err)
	}
}

func TestEngineResumeCompletedRun(t *testing.T) {
	const n = 20
	d := grammar.NewDataflow()
	dir := t.TempDir()
	en := New(emptyICFET(), d.G, smallOpts(dir, 3), nil)
	st, err := en.Run(chainEdges(n, d.Flow), n)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, en)
	ren := New(emptyICFET(), d.G, smallOpts(dir, 3), nil)
	rst, err := ren.Resume(n)
	if err != nil {
		t.Fatal(err)
	}
	if rst.EdgesAfter != st.EdgesAfter {
		t.Fatalf("completed resume: %d edges, want %d", rst.EdgesAfter, st.EdgesAfter)
	}
	if got := fingerprint(t, ren); got != want {
		t.Fatal("completed resume changed the graph")
	}
}

// countingCtx trips its Err after a fixed number of checks: a deterministic
// stand-in for a deadline, so the cancellation path is testable without
// timing races.
type countingCtx struct {
	context.Context
	left int
}

func (c *countingCtx) Err() error {
	if c.left <= 0 {
		return context.DeadlineExceeded
	}
	c.left--
	return nil
}

// TestEngineCancelFlushesFinalRecord covers the ctx.Err() path: with
// JournalEvery=3 a cancellation between boundaries must still leave a
// durable record at the exact superstep reached, and resume from it must
// reproduce the uninterrupted result.
func TestEngineCancelFlushesFinalRecord(t *testing.T) {
	const n = 40
	const tag = 11
	d := grammar.NewDataflow()

	refEn := New(emptyICFET(), d.G, smallOpts(t.TempDir(), tag), nil)
	if _, err := refEn.Run(chainEdges(n, d.Flow), n); err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, refEn)

	dir := t.TempDir()
	opts := smallOpts(dir, tag)
	opts.JournalEvery = 3
	en := New(emptyICFET(), d.G, opts, nil)
	ctx := &countingCtx{Context: context.Background(), left: 5}
	if _, err := en.RunContext(ctx, chainEdges(n, d.Flow), n); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancel did not fire: %v", err)
	}
	// The final record must carry the superstep the run actually reached —
	// not the last JournalEvery boundary.
	_, recs, _, err := storage.ReadJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no journal records after cancel")
	}
	lastRec := recs[len(recs)-1]
	if lastRec.Completed {
		t.Fatal("cancelled run wrote a completed record")
	}
	if lastRec.Iterations == 0 || lastRec.Iterations%3 == 0 {
		t.Fatalf("final record at iteration %d is a regular boundary, not the cancellation flush", lastRec.Iterations)
	}

	ropts := smallOpts(dir, tag)
	ropts.JournalEvery = 3
	ren := New(emptyICFET(), d.G, ropts, nil)
	rstats, err := ren.Resume(n)
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(t, ren); got != want {
		t.Fatal("resume after cancel differs from uninterrupted run")
	}
	if rstats.EdgesAfter == 0 {
		t.Fatal("resumed run produced no edges")
	}
}

func overwriteByte(path string, off int64, b byte) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteAt([]byte{b}, off)
	return err
}
