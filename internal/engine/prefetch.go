package engine

import (
	"sync"
	"time"

	"github.com/grapple-system/grapple/internal/metrics"
	"github.com/grapple-system/grapple/internal/storage"
)

// prefetched is the result of one background partition load.
type prefetched struct {
	edges []storage.Edge
	info  storage.PartInfo
	bytes int64
	err   error
}

type prefetchEntry struct {
	done chan struct{}
	res  prefetched
}

// prefetcher overlaps partition loads with the join: while one partition
// pair computes, the load the scheduler will need next already streams from
// disk. Entries are keyed by *partMeta — stable across repartitioning, which
// renumbers partition positions but never reallocates metadata.
//
// Prefetched edges live outside the engine's memory-budget accounting; at
// most a handful of entries exist at once (one speculation per iteration),
// bounded by the same per-partition size the budget already admits.
type prefetcher struct {
	mu      sync.Mutex
	entries map[*partMeta]*prefetchEntry
	wg      sync.WaitGroup
	io      *metrics.IOStats
	// readOpts mirrors the engine's decode mode so prefetched and
	// synchronous loads take the same path.
	readOpts storage.ReadOptions
}

func newPrefetcher(io *metrics.IOStats, readOpts storage.ReadOptions) *prefetcher {
	return &prefetcher{entries: map[*partMeta]*prefetchEntry{}, io: io, readOpts: readOpts}
}

// start begins loading meta's file in the background; no-op when a prefetch
// for meta is already in flight.
func (pf *prefetcher) start(meta *partMeta) {
	pf.mu.Lock()
	if _, dup := pf.entries[meta]; dup {
		pf.mu.Unlock()
		return
	}
	e := &prefetchEntry{done: make(chan struct{})}
	pf.entries[meta] = e
	pf.mu.Unlock()
	pf.io.PrefetchIssued()
	pf.wg.Add(1)
	go func() {
		defer pf.wg.Done()
		edges, info, n, err := storage.ReadPartWith(meta.path, nil, pf.readOpts)
		e.res = prefetched{edges: edges, info: info, bytes: n, err: err}
		close(e.done)
	}()
}

// take claims the prefetch for meta, blocking until the background read
// finishes. ok is false when no usable prefetch exists (never started,
// invalidated, or the read failed) — the caller then loads synchronously.
// waited is how long the caller actually blocked: the join's perceived
// latency, which a prefetch that overlapped fully drives to ~zero.
func (pf *prefetcher) take(meta *partMeta) (res prefetched, waited time.Duration, ok bool) {
	pf.mu.Lock()
	e, exists := pf.entries[meta]
	if exists {
		delete(pf.entries, meta)
	}
	pf.mu.Unlock()
	if !exists {
		return prefetched{}, 0, false
	}
	waitStart := time.Now()
	<-e.done
	waited = time.Since(waitStart)
	if e.res.err != nil {
		// A failed background read is not fatal: the caller retries
		// synchronously and surfaces that error if it persists.
		return prefetched{}, waited, false
	}
	return e.res, waited, true
}

// invalidate discards any prefetch of meta. Callers must invalidate before
// writing to a partition file that could be prefetch-in-flight; a reader
// racing an in-place append may see a torn block, so its result must never
// be consumed. (Whole-file writes rename and cannot tear, but the
// pre-rename bytes are equally stale.)
func (pf *prefetcher) invalidate(meta *partMeta) {
	pf.mu.Lock()
	_, exists := pf.entries[meta]
	delete(pf.entries, meta)
	pf.mu.Unlock()
	if exists {
		pf.io.PrefetchStale()
	}
}

// drain waits out in-flight reads and counts never-consumed entries. Safe to
// call more than once.
func (pf *prefetcher) drain() {
	pf.wg.Wait()
	pf.mu.Lock()
	wasted := len(pf.entries)
	pf.entries = map[*partMeta]*prefetchEntry{}
	pf.mu.Unlock()
	for i := 0; i < wasted; i++ {
		pf.io.PrefetchWasted()
	}
}
