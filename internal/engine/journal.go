// Checkpoint/resume: the engine journals its superstep state so a killed
// run continues from the last completed partition-pair iteration instead of
// starting over (the paper's production runs take up to 33 hours).
//
// The scheme leans on one invariant of the storage layer: between
// checkpoints a partition file's checkpointed prefix is never disturbed.
// Appends extend the file past the old (verified) trailer; dirty-partition
// writebacks rewrite the file in memory order, which is the loaded file
// order plus newly-inserted edges as a suffix; and the one operation that
// would shrink a file in place — repartitioning keeping the low half under
// the original path — is redirected to a fresh path while journaling, so
// the pre-split file stays frozen until a newer checkpoint supersedes it.
// Resume therefore needs no undo log: the journal records each partition's
// edge count at the checkpoint, and reading exactly that prefix back
// (storage.ReadPartPrefix, tolerant of any damage past it) reproduces the
// checkpoint state byte for byte, including edge order — which is what makes
// a resumed run's report identical to an uninterrupted one: insertion order
// drives variant widening, and the journaled hot pair drives scheduling.
//
// The in-memory dedupe index and variant counters rebuild exactly from the
// surviving edges: insert() records only the final (post-widening) key of
// every edge it keeps, one keys entry and one variants increment per disk
// edge. The constraint cache is deliberately not journaled — verdicts are a
// pure function of the cache key, so losing the cache costs time, never
// changes results.
package engine

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/grapple-system/grapple/internal/faultpoint"
	"github.com/grapple-system/grapple/internal/storage"
	"github.com/grapple-system/grapple/internal/trace"
)

// ErrStale reports a journal that parsed cleanly but was written by a
// different run (vertex space or tag mismatch): resuming under it would
// silently compute over the wrong graph, so it is rejected instead.
var ErrStale = errors.New("engine: journal does not match this run")

// journalEvery returns the checkpoint cadence in supersteps.
func (en *Engine) journalEvery() int64 {
	if en.opts.JournalEvery <= 0 {
		return 1
	}
	return int64(en.opts.JournalEvery)
}

// clearRunDir removes a previous run's journal and partition files so a
// cold journaled start cannot interleave with stale state. Only journaled
// runs clear: unjournaled engines keep their historical behavior.
func (en *Engine) clearRunDir() error {
	if err := os.Remove(filepath.Join(en.opts.Dir, storage.JournalName)); err != nil && !os.IsNotExist(err) {
		return err
	}
	for _, pat := range []string{"part-*.edges", "part-*.edges.tmp"} {
		matches, err := filepath.Glob(filepath.Join(en.opts.Dir, pat))
		if err != nil {
			return err
		}
		for _, m := range matches {
			if err := os.Remove(m); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	return nil
}

// startJournal creates the run journal and makes the post-preprocess state
// durable as the seq-0 baseline record.
func (en *Engine) startJournal(numVertices uint32) error {
	jw, err := storage.CreateJournal(en.opts.Dir,
		storage.JournalMeta{NumVertices: numVertices, Tag: en.opts.JournalTag}, en.opts.Faults)
	if err != nil {
		return err
	}
	en.jw = jw
	return en.checkpoint(false)
}

func (en *Engine) closeJournal() {
	if en.jw != nil {
		en.jw.Close()
		en.jw = nil
	}
}

// checkpoint makes the current superstep boundary durable: flush every
// buffered and dirty partition so disk equals memory, then append one
// journal record committing that state. Partitions stay loaded (and clean),
// so checkpointing does not perturb the LRU cache or pair scheduling.
func (en *Engine) checkpoint(completed bool) error {
	sp := en.opts.Trace.Start(en.opts.TraceTID, "engine", "checkpoint")
	if err := en.flushPending(true); err != nil {
		return err
	}
	for idx := 0; idx < len(en.parts); idx++ {
		mp, ok := en.loaded[idx]
		if !ok || !mp.dirty {
			continue
		}
		en.pf.invalidate(mp.meta)
		ioStart := time.Now()
		n, err := storage.WritePart(mp.meta.path, mp.edges, storage.PartInfo{Lo: mp.meta.lo, Hi: mp.meta.hi})
		if err != nil {
			return err
		}
		d := time.Since(ioStart)
		en.bd.AddIO(d)
		en.io.AddWrite(n)
		en.traceIO("write", mp.meta.id, n, d)
		mp.dirty = false
	}
	rec := &storage.JournalRecord{
		Seq:          en.jseq,
		Completed:    completed,
		Iterations:   en.stats.Iterations,
		CurGen:       en.curGen,
		EdgesBefore:  en.stats.EdgesBefore,
		Repartitions: en.stats.Repartitions,
		Widened:      en.stats.Widened,
		HotA:         -1,
		HotB:         -1,
	}
	if en.hot[0] >= 0 && en.hot[0] < len(en.parts) {
		rec.HotA = en.parts[en.hot[0]].id
	}
	if en.hot[1] >= 0 && en.hot[1] < len(en.parts) {
		rec.HotB = en.parts[en.hot[1]].id
	}
	for _, meta := range en.parts {
		rec.Parts = append(rec.Parts, storage.JournalPart{
			ID: meta.id, Lo: meta.lo, Hi: meta.hi,
			Edges: meta.edges, MaxGen: meta.maxGen,
			Path: filepath.Base(meta.path),
		})
	}
	pairs := make([][2]int, 0, len(en.lastGen))
	for k := range en.lastGen {
		pairs = append(pairs, k)
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a][0] != pairs[b][0] {
			return pairs[a][0] < pairs[b][0]
		}
		return pairs[a][1] < pairs[b][1]
	})
	for _, k := range pairs {
		rec.LastGen = append(rec.LastGen, storage.JournalGen{A: k[0], B: k[1], Gen: en.lastGen[k]})
	}
	ioStart := time.Now()
	n, err := en.jw.Append(rec)
	if err != nil {
		return err
	}
	en.bd.AddIO(time.Since(ioStart))
	en.io.AddJournal(n)
	en.jseq++
	en.mu.Lock()
	en.stats.Checkpoints++
	en.stats.JournalBytes += n
	en.mu.Unlock()
	sp.End(trace.Args{"seq": rec.Seq, "journalBytes": n, "completed": completed})
	if completed {
		en.closeJournal()
		en.removeUnreferenced()
	}
	// The canonical kill site: everything up to and including this record is
	// durable; a crash here loses nothing.
	return en.opts.Faults.Hit(faultpoint.EngineSuperstep)
}

// journalOnCancel makes a cancelled run resumable: if supersteps have run
// since the last checkpoint (JournalEvery > 1 windows), flush one final
// record before RunContext returns ctx.Err(). A failure here is swallowed —
// the previous durable record stays valid, which is exactly the guarantee a
// real mid-flush crash would leave.
func (en *Engine) journalOnCancel() {
	if en.jw == nil || en.stats.Iterations%en.journalEvery() == 0 {
		return
	}
	_ = en.checkpoint(false)
}

// removeUnreferenced deletes partition files the current partition table no
// longer points at: pre-split files frozen by the repartition redirect, and
// (on resume) files a crashed run created after its last durable record.
func (en *Engine) removeUnreferenced() {
	live := make(map[string]bool, len(en.parts))
	for _, meta := range en.parts {
		live[filepath.Base(meta.path)] = true
	}
	for _, pat := range []string{"part-*.edges", "part-*.edges.tmp"} {
		matches, err := filepath.Glob(filepath.Join(en.opts.Dir, pat))
		if err != nil {
			continue
		}
		for _, m := range matches {
			if !live[filepath.Base(m)] {
				os.Remove(m)
			}
		}
	}
}

// Resume continues a journaled run from its last durable checkpoint.
func (en *Engine) Resume(numVertices uint32) (*Stats, error) {
	return en.ResumeContext(context.Background(), numVertices)
}

// ResumeContext validates the journal in Options.Dir against this run
// (format, checksums, vertex space, tag) and against the partition
// directory (per-partition edge counts, intervals, generations), replays
// the repartition history embedded in the last record's partition table,
// and continues the fixpoint from the last completed superstep. A missing
// journal wraps storage.ErrNoJournal, a damaged one storage.ErrCorrupt, a
// mismatched one ErrStale — resume never silently starts cold.
func (en *Engine) ResumeContext(ctx context.Context, numVertices uint32) (*Stats, error) {
	defer en.pf.drain()
	jw, meta, recs, err := storage.OpenJournal(en.opts.Dir, en.opts.Faults)
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		jw.Close()
		return nil, fmt.Errorf("engine: %s: %w: journal has no usable checkpoint record",
			en.opts.Dir, storage.ErrCorrupt)
	}
	if meta.NumVertices != numVertices || meta.Tag != en.opts.JournalTag {
		jw.Close()
		return nil, fmt.Errorf("%w: journal written for vertices=%d tag=%#x, this run is vertices=%d tag=%#x (delete %s to start cold)",
			ErrStale, meta.NumVertices, meta.Tag, numVertices, en.opts.JournalTag,
			filepath.Join(en.opts.Dir, storage.JournalName))
	}
	rec := recs[len(recs)-1]
	if err := en.restoreFrom(rec, numVertices); err != nil {
		jw.Close()
		return nil, err
	}
	en.jw = jw
	en.jseq = rec.Seq + 1
	if rec.Completed {
		// Nothing left to compute; surface the closed graph's stats.
		en.closeJournal()
		after := en.EdgesAfter()
		en.mu.Lock()
		en.stats.EdgesAfter = after
		en.mu.Unlock()
		s := en.Stats()
		return &s, nil
	}
	return en.runLoop(ctx)
}

// restoreFrom rebuilds the engine's in-memory state from one journal
// record: the partition table, the global dedupe index and variant
// counters (from the surviving edges themselves), pair generations, and
// the scheduler's hot pair.
func (en *Engine) restoreFrom(rec *storage.JournalRecord, numVertices uint32) error {
	for _, jp := range rec.Parts {
		path := filepath.Join(en.opts.Dir, jp.Path)
		ioStart := time.Now()
		edges, info, exact, err := storage.ReadPartPrefix(path, jp.Edges)
		if err != nil {
			return err
		}
		en.bd.AddIO(time.Since(ioStart))
		if (info.Lo != 0 || info.Hi != 0) && (info.Lo != jp.Lo || info.Hi > jp.Hi) {
			return fmt.Errorf("engine: %s: %w: header interval [%d,%d) does not match journaled [%d,%d)",
				path, storage.ErrCorrupt, info.Lo, info.Hi, jp.Lo, jp.Hi)
		}
		meta := &partMeta{id: jp.ID, lo: jp.Lo, hi: jp.Hi, path: path, edges: jp.Edges}
		var maxGen uint32
		for i := range edges {
			e := &edges[i]
			if e.Src < jp.Lo || e.Src >= jp.Hi {
				return fmt.Errorf("engine: %s: %w: edge source %d outside journaled interval [%d,%d)",
					path, storage.ErrCorrupt, e.Src, jp.Lo, jp.Hi)
			}
			if e.Gen > rec.CurGen {
				return fmt.Errorf("engine: %s: %w: edge generation %d beyond journaled generation %d",
					path, storage.ErrCorrupt, e.Gen, rec.CurGen)
			}
			if e.Gen > maxGen {
				maxGen = e.Gen
			}
			meta.bytes += storage.RecordSize(e)
			k := e.Key()
			if _, dup := en.keys[k]; dup {
				return fmt.Errorf("engine: %s: %w: duplicate edge in checkpointed prefix", path, storage.ErrCorrupt)
			}
			en.keys[k] = struct{}{}
			en.variants[e.Endpoint()]++
		}
		if maxGen != jp.MaxGen {
			return fmt.Errorf("engine: %s: %w: max generation %d does not match journaled %d",
				path, storage.ErrCorrupt, maxGen, jp.MaxGen)
		}
		meta.maxGen = jp.MaxGen
		if !exact {
			// Cut the file back to exactly the checkpointed prefix (dropping
			// any post-checkpoint suffix or torn tail) so subsequent appends
			// land on a pristine v2 file. WritePart is atomic: a crash during
			// this rewrite leaves a file this same path can recover again.
			ioStart := time.Now()
			n, err := storage.WritePart(path, edges, storage.PartInfo{Lo: meta.lo, Hi: meta.hi})
			if err != nil {
				return err
			}
			en.bd.AddIO(time.Since(ioStart))
			en.io.AddWrite(n)
		}
		en.mu.Lock()
		en.parts = append(en.parts, meta)
		en.mu.Unlock()
	}
	if len(en.parts) == 0 {
		return fmt.Errorf("engine: %s: %w: journal record has no partitions", en.opts.Dir, storage.ErrCorrupt)
	}
	// The partition table must tile the vertex space, in order — partOf
	// depends on it, and any violation means the journal and directory
	// disagree about history.
	if en.parts[0].lo != 0 || en.parts[len(en.parts)-1].hi != numVertices {
		return fmt.Errorf("engine: %s: %w: partition table covers [%d,%d), want [0,%d)",
			en.opts.Dir, storage.ErrCorrupt, en.parts[0].lo, en.parts[len(en.parts)-1].hi, numVertices)
	}
	for idx := 1; idx < len(en.parts); idx++ {
		if en.parts[idx].lo != en.parts[idx-1].hi {
			return fmt.Errorf("engine: %s: %w: partition intervals do not tile at position %d",
				en.opts.Dir, storage.ErrCorrupt, idx)
		}
	}
	// Files past the last durable record — partitions a crashed run split
	// off, stale temp files — are unreachable history; drop them.
	en.removeUnreferenced()
	for _, g := range rec.LastGen {
		en.lastGen[[2]int{g.A, g.B}] = g.Gen
	}
	en.curGen = rec.CurGen
	en.mu.Lock()
	en.stats.Iterations = rec.Iterations
	en.stats.EdgesBefore = rec.EdgesBefore
	en.stats.Repartitions = rec.Repartitions
	en.stats.Widened = rec.Widened
	en.mu.Unlock()
	en.hot = [2]int{-1, -1}
	for idx, p := range en.parts {
		if p.id == rec.HotA {
			en.hot[0] = idx
		}
		if p.id == rec.HotB {
			en.hot[1] = idx
		}
	}
	return nil
}
