package engine

import (
	"fmt"
	"sort"
	"testing"

	"github.com/grapple-system/grapple/internal/cfet"
	"github.com/grapple-system/grapple/internal/grammar"
	"github.com/grapple-system/grapple/internal/raceflag"
	"github.com/grapple-system/grapple/internal/smt"
	"github.com/grapple-system/grapple/internal/storage"
)

// TestSmallFrontierFansOut pins the splitRange fix: a 3-edge frontier under
// 8 workers must fan out to 3 single-edge chunks, not collapse onto one
// goroutine (the old workers>len(firsts) clamp-to-1 behavior).
func TestSmallFrontierFansOut(t *testing.T) {
	chunks := splitRange(nil, 3, 8)
	if len(chunks) != 3 {
		t.Fatalf("3 edges under 8 workers split into %d chunks, want 3: %v", len(chunks), chunks)
	}
	for i, c := range chunks {
		if c != [2]int{i, i + 1} {
			t.Fatalf("chunk %d = %v, want [%d,%d)", i, c, i, i+1)
		}
	}
}

// TestSplitRangeProperties checks splitRange's invariants over a parameter
// sweep: chunks tile [0,n) in order, and there are never more chunks than
// workers or elements.
func TestSplitRangeProperties(t *testing.T) {
	for n := 0; n <= 40; n++ {
		for workers := 0; workers <= 12; workers++ {
			chunks := splitRange(nil, n, workers)
			if n == 0 || workers == 0 {
				if len(chunks) != 0 {
					t.Fatalf("n=%d workers=%d: got %v", n, workers, chunks)
				}
				continue
			}
			if len(chunks) > workers || len(chunks) > n {
				t.Fatalf("n=%d workers=%d: %d chunks", n, workers, len(chunks))
			}
			next := 0
			for _, c := range chunks {
				if c[0] != next || c[1] <= c[0] {
					t.Fatalf("n=%d workers=%d: bad tiling %v", n, workers, chunks)
				}
				next = c[1]
			}
			if next != n {
				t.Fatalf("n=%d workers=%d: chunks cover [0,%d), want [0,%d)", n, workers, next, n)
			}
		}
	}
}

// closureFingerprint canonicalizes an engine's closed graph into a sorted
// multiset of fully-rendered edges (endpoints, label, rel, and every
// encoding element), so two runs can be compared for byte-level identity.
func closureFingerprint(t *testing.T, en *Engine) []string {
	t.Helper()
	var out []string
	if err := en.ForEach(func(e *storage.Edge) bool {
		out = append(out, fmt.Sprintf("%d>%d:%d rel=%v,%v enc=%v", e.Src, e.Dst, e.Label, e.HasRel, e.Rel, e.Enc))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	sort.Strings(out)
	return out
}

// TestClosureIdentityAcrossAblation runs the same constraint-carrying
// workload under every {DisablePooling, LegacyDecode} combination, with a
// memory budget small enough to force real partition spills and reads, and
// requires bit-identical closures and identical rejection statistics.
// Pooling and decode mode are performance knobs, never semantic ones.
// Runs under `make race` with the rest of the engine package.
func TestClosureIdentityAcrossAblation(t *testing.T) {
	ic := buildFromSource(t, `
fun f(x: int) {
  if (x > 0) {
    x = x + 1;
  } else {
    x = x - 1;
  }
  return;
}`)
	m := ic.Method("f")
	d := grammar.NewDataflow()
	var edges []storage.Edge
	const n = 24
	for i := uint32(0); i+1 < n; i++ {
		e := flowEdge(i, i+1, d.Flow)
		if i%3 == 0 {
			e.Enc = cfet.Enc{cfet.Interval(m.Method, 0, 2)}
		}
		edges = append(edges, e)
	}

	type config struct {
		name string
		opts Options
	}
	var configs []config
	for _, pooling := range []bool{false, true} {
		for _, legacy := range []bool{false, true} {
			configs = append(configs, config{
				name: fmt.Sprintf("pooling=%v legacy=%v", !pooling, legacy),
				opts: Options{
					MemoryBudget:   4 << 10, // force multiple partitions
					Workers:        4,
					DisablePooling: pooling,
					LegacyDecode:   legacy,
				},
			})
		}
	}
	var baseline []string
	var baseStats *Stats
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			en, st := runEngine(t, ic, d.G, cfg.opts, edges, n)
			fp := closureFingerprint(t, en)
			if baseline == nil {
				baseline, baseStats = fp, st
				return
			}
			if len(fp) != len(baseline) {
				t.Fatalf("closure size %d, baseline %d", len(fp), len(baseline))
			}
			for i := range fp {
				if fp[i] != baseline[i] {
					t.Fatalf("closure diverges at edge %d:\n  got  %s\n  want %s", i, fp[i], baseline[i])
				}
			}
			if st.EdgesAfter != baseStats.EdgesAfter ||
				st.RejectedUnsat != baseStats.RejectedUnsat ||
				st.RejectedConflict != baseStats.RejectedConflict ||
				st.Widened != baseStats.Widened {
				t.Fatalf("stats diverge: %+v vs baseline %+v", st, baseStats)
			}
		})
	}
}

// TestCacheProbeZeroAlloc is satellite #2's allocation assertion: with the
// chunk's scratch buffer in place, an SMT-cache probe (key encode + lookup)
// must not allocate — the key string only materializes when PutBytes
// actually inserts.
func TestCacheProbeZeroAlloc(t *testing.T) {
	enc := cfet.Enc{
		cfet.Interval(3, 1, 9),
		cfet.CallElem(12),
		cfet.RetElem(12),
		cfet.Interval(4, 0, 1<<18),
	}
	// The byte key and the string key must render identically, or pooled and
	// unpooled runs would memoize past each other.
	if got, want := string(appendEncCacheKey(nil, enc)), encCacheKey(enc); got != want {
		t.Fatalf("appendEncCacheKey %q != encCacheKey %q", got, want)
	}

	cache := smt.NewCache(64)
	const prefix = "unit0:"
	warm := append([]byte(prefix), appendEncCacheKey(nil, enc)...)
	cache.PutBytes(warm, smt.Sat)
	if v, ok := cache.GetBytes(warm); !ok || v != smt.Sat {
		t.Fatalf("byte-key round trip failed: %v %v", v, ok)
	}

	if raceflag.Enabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	keyBuf := make([]byte, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		keyBuf = append(keyBuf[:0], prefix...)
		keyBuf = appendEncCacheKey(keyBuf, enc)
		if _, ok := cache.GetBytes(keyBuf); !ok {
			t.Fatal("warm probe missed")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm cache probe allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkEdgeJoin closes a constraint-carrying chain with pooling on and
// off, reporting ns per induced edge (the join's unit of work) and
// allocations. The pooled mode is the production default; the delta against
// DisablePooling is the cost of per-superstep buffer churn.
func BenchmarkEdgeJoin(b *testing.B) {
	d := grammar.NewDataflow()
	var edges []storage.Edge
	const n = 48
	for i := uint32(0); i+1 < n; i++ {
		edges = append(edges, flowEdge(i, i+1, d.Flow))
	}
	for _, mode := range []struct {
		name string
		pool bool
	}{
		{"pooled", true},
		{"unpooled", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var induced int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				opts := Options{
					Dir:            b.TempDir(),
					MemoryBudget:   8 << 10,
					Workers:        4,
					DisablePooling: !mode.pool,
				}
				en := New(emptyICFET(), d.G, opts, nil)
				b.StartTimer()
				st, err := en.Run(edges, n)
				if err != nil {
					b.Fatal(err)
				}
				induced = st.EdgesAfter - st.EdgesBefore
			}
			b.StopTimer()
			if induced > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(induced), "ns/edge-join")
			}
		})
	}
}
