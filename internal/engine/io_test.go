package engine

import (
	"sort"
	"testing"

	"github.com/grapple-system/grapple/internal/grammar"
	"github.com/grapple-system/grapple/internal/storage"
)

// chainEdges builds the n-vertex chain used by the out-of-core tests.
func chainEdges(n uint32, l grammar.Label) []storage.Edge {
	var edges []storage.Edge
	for i := uint32(0); i+1 < n; i++ {
		edges = append(edges, flowEdge(i, i+1, l))
	}
	return edges
}

// closureKeys flattens the final on-disk graph into a sorted, comparable
// form (identity plus generation, the full observable engine output).
func closureKeys(t *testing.T, en *Engine) []uint64 {
	t.Helper()
	var keys []uint64
	if err := en.ForEach(func(e *storage.Edge) bool {
		keys = append(keys, e.Key()^uint64(e.Gen)<<32)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func TestIOStatsReported(t *testing.T) {
	d := grammar.NewDataflow()
	_, st := runEngine(t, emptyICFET(), d.G, Options{MemoryBudget: 4096}, chainEdges(40, d.Flow), 40)
	if st.IO.BytesWritten == 0 || st.IO.Writes == 0 {
		t.Fatalf("no write traffic recorded: %+v", st.IO)
	}
	if st.IO.Loads == 0 || st.IO.BytesRead == 0 {
		t.Fatalf("no read traffic recorded: %+v", st.IO)
	}
	if st.IO.CacheHits == 0 {
		t.Fatalf("hot pair re-selection should hit the cache: %+v", st.IO)
	}
	var hist int64
	for _, n := range st.IO.LoadLatency {
		hist += n
	}
	if hist != st.IO.Loads {
		t.Fatalf("latency histogram covers %d of %d loads", hist, st.IO.Loads)
	}
}

func TestPrefetchOverlapsLoads(t *testing.T) {
	// A tiny budget forces many partitions, so the scheduler keeps paying
	// for loads — which the prefetcher should be serving.
	d := grammar.NewDataflow()
	_, st := runEngine(t, emptyICFET(), d.G, Options{MemoryBudget: 4096}, chainEdges(40, d.Flow), 40)
	if st.Partitions < 3 {
		t.Fatalf("want several partitions, got %d", st.Partitions)
	}
	if st.IO.PrefetchIssued == 0 {
		t.Fatalf("prefetcher never ran: %+v", st.IO)
	}
	if st.IO.PrefetchHits == 0 {
		t.Fatalf("no load served by prefetch: %+v", st.IO)
	}
	// Every issued prefetch is accounted for: consumed, invalidated, or
	// wasted.
	if st.IO.PrefetchIssued != st.IO.PrefetchHits+st.IO.PrefetchStale+st.IO.PrefetchWasted {
		t.Fatalf("prefetch accounting leak: %+v", st.IO)
	}
}

func TestPrefetchDisabled(t *testing.T) {
	d := grammar.NewDataflow()
	_, st := runEngine(t, emptyICFET(), d.G,
		Options{MemoryBudget: 4096, DisablePrefetch: true}, chainEdges(40, d.Flow), 40)
	if st.IO.PrefetchIssued != 0 || st.IO.PrefetchHits != 0 {
		t.Fatalf("prefetch ran while disabled: %+v", st.IO)
	}
}

// TestPrefetchAndCacheDeterminism is the acceptance gate for the I/O layer:
// the LRU cache and the prefetcher may only change when bytes move, never
// what the engine computes. The closure (edge identities and generations)
// must be identical with prefetch on and off, and iteration counts must
// match — proof that pair scheduling did not shift.
func TestPrefetchAndCacheDeterminism(t *testing.T) {
	d := grammar.NewDataflow()
	edges := chainEdges(48, d.Flow)
	enOn, stOn := runEngine(t, emptyICFET(), d.G,
		Options{MemoryBudget: 4096}, edges, 48)
	enOff, stOff := runEngine(t, emptyICFET(), d.G,
		Options{MemoryBudget: 4096, DisablePrefetch: true}, edges, 48)
	if stOn.Iterations != stOff.Iterations {
		t.Fatalf("schedule shifted: %d vs %d iterations", stOn.Iterations, stOff.Iterations)
	}
	if stOn.EdgesAfter != stOff.EdgesAfter || stOn.Repartitions != stOff.Repartitions ||
		stOn.Widened != stOff.Widened {
		t.Fatalf("results differ: on=%+v off=%+v", stOn, stOff)
	}
	kOn, kOff := closureKeys(t, enOn), closureKeys(t, enOff)
	if len(kOn) != len(kOff) {
		t.Fatalf("edge counts differ: %d vs %d", len(kOn), len(kOff))
	}
	for i := range kOn {
		if kOn[i] != kOff[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestLRUCacheEvicts(t *testing.T) {
	d := grammar.NewDataflow()
	_, st := runEngine(t, emptyICFET(), d.G, Options{MemoryBudget: 4096}, chainEdges(64, d.Flow), 64)
	if st.IO.Evictions == 0 {
		t.Fatalf("tiny budget must force evictions: %+v", st.IO)
	}
}

func TestLoadRejectsForeignPartitionFile(t *testing.T) {
	// A partition file whose header interval disagrees with the partition
	// table (e.g. files swapped by an operator) must fail the load, not
	// silently compute on the wrong vertices.
	d := grammar.NewDataflow()
	en, _ := runEngine(t, emptyICFET(), d.G, Options{MemoryBudget: 4096}, chainEdges(40, d.Flow), 40)
	if len(en.parts) < 2 {
		t.Fatalf("need at least 2 partitions, got %d", len(en.parts))
	}
	// Swap the first partition's file for the last one's.
	victim, donor := en.parts[0], en.parts[len(en.parts)-1]
	edges, info, _, err := storage.ReadPart(donor.path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !(info.Lo != 0 || info.Hi != 0) {
		t.Fatal("donor file has no recorded interval")
	}
	if _, err := storage.WritePart(victim.path, edges, info); err != nil {
		t.Fatal(err)
	}
	if _, err := en.load(0); err == nil {
		t.Fatal("load accepted a foreign partition file")
	}
}
