// Package engine implements Grapple's single-machine, disk-based graph
// computation (paper §4.3): vertex-interval partitions on SSD, an edge-pair-
// centric join that loads two partitions per iteration, constraint-guided
// edge induction (grammar match + path-encoding merge + SMT check), eager
// repartitioning, semi-naive scheduling, and LRU constraint memoization.
package engine

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/grapple-system/grapple/internal/cfet"
	"github.com/grapple-system/grapple/internal/faultpoint"
	"github.com/grapple-system/grapple/internal/grammar"
	"github.com/grapple-system/grapple/internal/metrics"
	"github.com/grapple-system/grapple/internal/smt"
	"github.com/grapple-system/grapple/internal/storage"
	"github.com/grapple-system/grapple/internal/trace"
)

// Options configures the engine.
type Options struct {
	// Dir is the on-disk partition directory.
	Dir string
	// MemoryBudget bounds the bytes of edge data held in memory; any two
	// partitions loaded together must fit (paper §4.3). Zero means 256 MiB.
	MemoryBudget int64
	// Workers is the edge-induction parallelism; zero means GOMAXPROCS.
	Workers int
	// CacheSize is the constraint-memoization LRU capacity; zero means the
	// default, negative disables memoization (Table 4's "without caching").
	CacheSize int
	// Cache, when non-nil, is an externally-owned constraint cache shared
	// with other engine instances (the batch scheduler's single cross-
	// instance memo store). It overrides CacheSize.
	Cache *smt.Cache
	// CacheKeyPrefix namespaces this engine's memoization keys. Encoded-
	// path keys are positional (method/call indices of one compilation
	// unit's ICFET), so two different programs produce colliding keys for
	// unrelated constraints; when a Cache is shared across programs, every
	// engine working on the same compilation unit must use the same prefix
	// and engines on different units must use different ones.
	CacheKeyPrefix string
	// SolverOpts tunes the SMT solver.
	SolverOpts smt.Options
	// MaxVariants caps distinct constraint variants kept per (src, dst,
	// label); beyond it the edge widens to the unconstrained variant. Zero
	// means 6.
	MaxVariants int
	// UseRel composes FSM transition relations along induced edges
	// (dataflow/typestate graphs).
	UseRel bool
	// SkipInitialSolve skips satisfiability checks on initial edges (they
	// represent real statements); on by default via Run.
	SkipInitialSolve bool
	// DeferRepartition delays splitting oversized partitions until the end
	// of the whole computation instead of splitting eagerly after each
	// iteration. The paper adopts eager repartitioning (§4.3) because
	// variable-sized edge data unbalances partitions quickly; this option
	// exists for the ablation benchmark.
	DeferRepartition bool
	// DisablePrefetch turns off the background load of the partition the
	// scheduler is predicted to need next. Prefetching never changes
	// results or scheduling — only whether the join waits on the disk — so
	// this exists for benchmarking the overlap (bench.IOTable).
	DisablePrefetch bool
	// DisablePooling turns off cross-superstep reuse of the join's scratch
	// buffers — the frontier slice, per-chunk candidate batches, the CSR
	// bySrc index arena, and per-chunk SMT-cache key buffers — reverting to
	// fresh allocations and string cache keys per candidate. Pooling never
	// changes what is computed; this is the ablation hook for the hotpath
	// bench and the closure-identity test.
	DisablePooling bool
	// LegacyDecode routes partition reads through the field-by-field v2
	// stream decoder instead of the zero-copy block cursor
	// (storage.ReadOptions.LegacyDecode). Decoding mode never changes the
	// edges read; ablation hook like DisablePooling.
	LegacyDecode bool
	// Journal makes superstep state durable: each checkpoint flushes every
	// partition and appends one record to a per-run journal in Dir, so a
	// killed run can continue via ResumeContext. Journaling never changes
	// results — only whether progress survives a crash.
	Journal bool
	// JournalEvery checkpoints every N supersteps; zero or one means every
	// superstep. Larger values trade re-computable work for journal I/O.
	JournalEvery int
	// JournalTag fingerprints the run's inputs. ResumeContext refuses a
	// journal whose tag differs (ErrStale): same directory, different graph.
	JournalTag uint64
	// Faults is the crash-injection switchboard threaded through the
	// checkpoint and journal write sites; nil (the default) is inert.
	Faults *faultpoint.Set
	// Trace, when non-nil, receives a span per superstep and checkpoint and
	// an instant per partition load/write/append. Tracing is observation
	// only: it never alters pair scheduling, insertion order, widening, or
	// reports.
	Trace *trace.Recorder
	// TraceTID is the trace thread lane this engine's events land on
	// (allocated by Recorder.Thread); zero is the process root lane.
	TraceTID uint64
	// Progress, when non-nil, receives one update per superstep for the
	// heartbeat and status.json machinery. Observation only, like Trace.
	Progress *trace.Progress
}

// Stats reports everything the evaluation tables need.
type Stats struct {
	EdgesBefore       int64
	EdgesAfter        int64
	Iterations        int64 // partition-pair computations
	Partitions        int   // final partition count
	Repartitions      int64
	ConstraintsSolved int64 // solver invocations (cache misses)
	CacheLookups      int64
	CacheHits         int64
	RejectedUnsat     int64 // candidate edges pruned by path sensitivity
	RejectedConflict  int64 // pruned structurally by encoding merge
	Widened           int64 // variants widened at the per-endpoint cap
	Checkpoints       int64 // journal records made durable (0 when not journaling)
	JournalBytes      int64 // bytes appended to the run journal
	PreprocessTime    time.Duration
	ComputeTime       time.Duration
	SolveTime         time.Duration // summed across workers
	// SolveLatency is the per-call SMT solve latency histogram (cache misses
	// only), bucketed by metrics.SolveLatencyBuckets.
	SolveLatency metrics.LatencyCounts
	// IO reports the partition store's traffic: bytes moved, cache and
	// prefetch effectiveness, and the perceived load-latency histogram.
	IO metrics.IOSnapshot
}

// partMeta describes one on-disk partition.
type partMeta struct {
	id     int
	lo, hi uint32 // vertex interval [lo, hi)
	path   string
	edges  int64
	bytes  int64
	maxGen uint32
}

// memPart is a loaded partition.
type memPart struct {
	meta  *partMeta
	edges []storage.Edge
	bySrc map[uint32][]int32
	dirty bool
	// lastUse is the engine's logical clock at the partition's most recent
	// load or cache hit; ensureBudget evicts the smallest value first.
	lastUse int64
}

// buildBySrc indexes edges by source vertex. With pooling on it builds the
// index CSR-style — counting pass, one shared backing array, capped
// subslices — so a partition load costs two allocations for the index
// instead of one per distinct source (the grow-by-append pattern this
// replaces). The capped subslices make later appends by memPart.add spill
// into fresh arrays, never into a neighbor's range. Slice contents and
// iteration-relevant order are identical in both modes: indices appear in
// increasing edge order.
func (en *Engine) buildBySrc(edges []storage.Edge) map[uint32][]int32 {
	if en.opts.DisablePooling || len(edges) == 0 {
		bySrc := map[uint32][]int32{}
		for i := range edges {
			bySrc[edges[i].Src] = append(bySrc[edges[i].Src], int32(i))
		}
		return bySrc
	}
	counts := make(map[uint32]int32, 64)
	for i := range edges {
		counts[edges[i].Src]++
	}
	backing := make([]int32, 0, len(edges))
	out := make(map[uint32][]int32, len(counts))
	for i := range edges {
		src := edges[i].Src
		s, ok := out[src]
		if !ok {
			lo := len(backing)
			hi := lo + int(counts[src])
			backing = backing[:hi]
			s = backing[lo:lo:hi]
		}
		out[src] = append(s, int32(i))
	}
	return out
}

func (mp *memPart) add(e storage.Edge, sz int64) {
	idx := int32(len(mp.edges))
	mp.edges = append(mp.edges, e)
	mp.bySrc[e.Src] = append(mp.bySrc[e.Src], idx)
	mp.meta.edges++
	mp.meta.bytes += sz
	if e.Gen > mp.meta.maxGen {
		mp.meta.maxGen = e.Gen
	}
	mp.dirty = true
}

// Engine runs one analysis (one graph) to fixpoint.
type Engine struct {
	opts  Options
	ic    *cfet.ICFET
	g     *grammar.Grammar
	bd    *metrics.Breakdown
	cache *smt.Cache
	io    *metrics.IOStats
	pf    *prefetcher

	parts   []*partMeta
	loaded  map[int]*memPart
	lastGen map[[2]int]uint32
	curGen  uint32
	// hot is the most recently processed pair (positions, remapped across
	// repartitions). nextPair scores against hot — not against the LRU
	// cache's contents — so pair scheduling is exactly what it was before
	// partitions could stay cached beyond the active pair: determinism of
	// insertion order (and thus of widening and reports) is preserved.
	hot [2]int
	// tick is the logical clock behind memPart.lastUse.
	tick int64

	// keys globally dedupes edges (an in-memory index, like the ICFET).
	keys map[uint64]struct{}
	// variants counts constraint variants per endpoint triple.
	variants map[storage.Endpoint]int

	// pending buffers edges owned by unloaded partitions.
	pending map[int][]storage.Edge

	// readOpts selects the partition decode path (zero-copy block cursor by
	// default; Options.LegacyDecode flips it).
	readOpts storage.ReadOptions

	// Join scratch reused across supersteps (left nil when
	// Options.DisablePooling): the superstep loop is single-threaded, so by
	// the time processPair runs again the previous superstep's frontier,
	// chunk bounds, and candidate batches have all been consumed.
	firstsBuf []*storage.Edge
	chunkBuf  [][2]int
	scratch   []*joinScratch

	// jw is the run journal while Options.Journal is on (or after resume);
	// jseq numbers the next checkpoint record.
	jw   *storage.JournalWriter
	jseq uint64

	// solve histograms per-call SMT latencies (internally atomic).
	solve metrics.SolveHist

	// stats and parts are written by the run goroutine under mu so that
	// Stats() can be called concurrently with a running computation (the
	// progress heartbeat and debug server do exactly that).
	stats Stats
	mu    sync.Mutex
}

// New creates an engine over an ICFET index and a grammar.
func New(ic *cfet.ICFET, g *grammar.Grammar, opts Options, bd *metrics.Breakdown) *Engine {
	if opts.MemoryBudget <= 0 {
		opts.MemoryBudget = 256 << 20
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.MaxVariants <= 0 {
		opts.MaxVariants = 6
	}
	if bd == nil {
		bd = &metrics.Breakdown{}
	}
	io := &metrics.IOStats{}
	readOpts := storage.ReadOptions{LegacyDecode: opts.LegacyDecode}
	e := &Engine{
		opts:     opts,
		ic:       ic,
		g:        g,
		bd:       bd,
		io:       io,
		pf:       newPrefetcher(io, readOpts),
		readOpts: readOpts,
		loaded:   map[int]*memPart{},
		lastGen:  map[[2]int]uint32{},
		keys:     map[uint64]struct{}{},
		variants: map[storage.Endpoint]int{},
		pending:  map[int][]storage.Edge{},
		hot:      [2]int{-1, -1},
	}
	switch {
	case opts.Cache != nil:
		e.cache = opts.Cache
	case opts.CacheSize >= 0:
		e.cache = smt.NewCache(opts.CacheSize)
	}
	return e
}

// Stats returns a snapshot of the engine's counters. Cache lookups and hits
// are counted by this engine's own probes, so they stay per-instance even
// when Options.Cache shares one store across many engines. Safe to call
// while RunContext is executing on another goroutine.
func (en *Engine) Stats() Stats {
	en.mu.Lock()
	s := en.stats
	s.Partitions = len(en.parts)
	en.mu.Unlock()
	s.SolveLatency = en.solve.Snapshot()
	s.IO = en.io.Snapshot()
	return s
}

// Run computes the transitive closure from the initial edges, then leaves
// the full closed graph on disk. numVertices sizes the partition space.
func (en *Engine) Run(initial []storage.Edge, numVertices uint32) (*Stats, error) {
	return en.RunContext(context.Background(), initial, numVertices)
}

// RunContext is Run with cooperative cancellation: the fixpoint loop checks
// ctx between partition-pair iterations and returns ctx.Err() once it is
// done, leaving any partially-computed partitions on disk.
func (en *Engine) RunContext(ctx context.Context, initial []storage.Edge, numVertices uint32) (*Stats, error) {
	start := time.Now()
	// On every exit path, wait out in-flight background loads so no
	// goroutine outlives the run.
	defer en.pf.drain()
	if err := os.MkdirAll(en.opts.Dir, 0o755); err != nil {
		return nil, err
	}
	if en.opts.Journal {
		// A cold journaled start owns the directory: stale partitions or a
		// journal from a previous run must not interleave with this one.
		if err := en.clearRunDir(); err != nil {
			return nil, err
		}
	}
	sp := en.opts.Trace.Start(en.opts.TraceTID, "engine", "preprocess")
	if err := en.preprocess(initial, numVertices); err != nil {
		return nil, err
	}
	sp.End(trace.Args{"edges": en.stats.EdgesBefore, "partitions": len(en.parts)})
	if en.opts.Journal {
		if err := en.startJournal(numVertices); err != nil {
			en.closeJournal()
			return nil, err
		}
	}
	en.mu.Lock()
	en.stats.PreprocessTime = time.Since(start)
	en.mu.Unlock()
	return en.runLoop(ctx)
}

// runLoop drives partition-pair iterations to fixpoint. Both cold starts
// (RunContext) and resumed runs (ResumeContext) finish through here.
func (en *Engine) runLoop(ctx context.Context) (*Stats, error) {
	computeStart := time.Now()
	observe := en.opts.Trace.Enabled() || en.opts.Progress != nil
	for {
		if err := ctx.Err(); err != nil {
			// Leave a final record so a deadline-killed run resumes from
			// right here instead of the last JournalEvery boundary.
			en.journalOnCancel()
			en.closeJournal()
			return nil, err
		}
		i, j, ok := en.nextPair()
		if !ok {
			break
		}
		sp := en.opts.Trace.Start(en.opts.TraceTID, "engine", "superstep")
		firsts, err := en.processPair(i, j)
		if err != nil {
			en.closeJournal()
			return nil, err
		}
		en.mu.Lock()
		en.stats.Iterations++
		en.mu.Unlock()
		if observe {
			en.observeSuperstep(sp, i, j, firsts)
		}
		if en.jw != nil && en.stats.Iterations%en.journalEvery() == 0 {
			if err := en.opts.Faults.Hit(faultpoint.EngineCheckpointPre); err != nil {
				en.closeJournal()
				return nil, err
			}
			if err := en.checkpoint(false); err != nil {
				en.closeJournal()
				return nil, err
			}
		}
	}
	if en.jw != nil {
		if err := en.checkpoint(true); err != nil {
			en.closeJournal()
			return nil, err
		}
	}
	// Drain before the final snapshot so never-consumed prefetches are
	// counted as wasted in the returned stats.
	en.pf.drain()
	if err := en.evictAll(); err != nil {
		return nil, err
	}
	en.mu.Lock()
	en.stats.ComputeTime = time.Since(computeStart)
	en.mu.Unlock()
	after := en.EdgesAfter()
	en.mu.Lock()
	en.stats.EdgesAfter = after
	en.mu.Unlock()
	s := en.Stats()
	return &s, nil
}

// observeSuperstep emits the completed superstep's trace span and progress
// update. Everything here is a pure read over engine state: the dirty-pair
// count replays nextPair's dirtiness test without its scoring or early
// return, so observation can never perturb the schedule (and with it
// insertion order, widening, or reports).
func (en *Engine) observeSuperstep(sp trace.Span, i, j, firsts int) {
	dirty := en.dirtyPairs()
	edges := en.EdgesAfter()
	en.mu.Lock()
	s := en.stats
	en.mu.Unlock()
	sp.End(trace.Args{
		"pair":         trace.Pair(i, j),
		"frontier":     firsts,
		"dirtyPairs":   dirty,
		"edges":        edges,
		"solved":       s.ConstraintsSolved,
		"cacheHits":    s.CacheHits,
		"cacheLookups": s.CacheLookups,
		"journalBytes": s.JournalBytes,
	})
	en.opts.Progress.Update(trace.EngineUpdate{
		Frontier:   int64(firsts),
		DirtyPairs: int64(dirty),
		Edges:      edges,
		Solved:     s.ConstraintsSolved,
		CacheHits:  s.CacheHits,
		CacheLkps:  s.CacheLookups,
		IO:         en.io.Snapshot(),
	})
}

// dirtyPairs counts partition pairs still scheduled for (re)processing. It
// is nextPair's dirtiness test verbatim, minus scoring and selection.
func (en *Engine) dirtyPairs() int {
	n := 0
	for i := 0; i < len(en.parts); i++ {
		for j := i; j < len(en.parts); j++ {
			key := [2]int{en.parts[i].id, en.parts[j].id}
			last, seen := en.lastGen[key]
			if seen && en.parts[i].maxGen <= last && en.parts[j].maxGen <= last {
				continue
			}
			n++
		}
	}
	return n
}

// preprocess expands initial edges through unary/mirror productions,
// dedupes, and writes the first generation of partitions sized to the
// memory budget (paper §4.3 "a preprocessing step partitions the input
// graph ... such that any two partitions, if loaded together, would not
// exceed the memory capacity").
func (en *Engine) preprocess(initial []storage.Edge, numVertices uint32) error {
	var all []storage.Edge
	for _, e := range initial {
		e.Gen = 0
		for _, v := range en.expand(e) {
			k := v.Key()
			if _, dup := en.keys[k]; dup {
				continue
			}
			en.keys[k] = struct{}{}
			en.variants[v.Endpoint()]++
			all = append(all, v)
		}
	}
	en.mu.Lock()
	en.stats.EdgesBefore = int64(len(all))
	en.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].Src != all[j].Src {
			return all[i].Src < all[j].Src
		}
		return all[i].Dst < all[j].Dst
	})
	// Chunk by bytes so each partition stays under half the budget.
	limit := en.opts.MemoryBudget / 4 // headroom: partitions grow during compute
	var cur []storage.Edge
	var curBytes int64
	var lo uint32
	flushPart := func(hi uint32) error {
		if hi <= lo && len(en.parts) > 0 {
			return nil
		}
		meta := &partMeta{
			id: len(en.parts), lo: lo, hi: hi,
			path: filepath.Join(en.opts.Dir, fmt.Sprintf("part-%06d.edges", len(en.parts))),
		}
		for i := range cur {
			meta.bytes += storage.RecordSize(&cur[i])
		}
		meta.edges = int64(len(cur))
		ioStart := time.Now()
		n, err := storage.WritePart(meta.path, cur, storage.PartInfo{Lo: meta.lo, Hi: meta.hi})
		if err != nil {
			return err
		}
		d := time.Since(ioStart)
		en.bd.AddIO(d)
		en.io.AddWrite(n)
		en.traceIO("write", meta.id, n, d)
		en.mu.Lock()
		en.parts = append(en.parts, meta)
		en.mu.Unlock()
		cur, curBytes = nil, 0
		lo = hi
		return nil
	}
	for i := 0; i < len(all); {
		src := all[i].Src
		j := i
		var groupBytes int64
		for ; j < len(all) && all[j].Src == src; j++ {
			groupBytes += storage.RecordSize(&all[j])
		}
		if curBytes > 0 && curBytes+groupBytes > limit {
			if err := flushPart(src); err != nil {
				return err
			}
		}
		cur = append(cur, all[i:j]...)
		curBytes += groupBytes
		i = j
	}
	if numVertices == 0 {
		numVertices = 1
	}
	if err := flushPart(numVertices); err != nil {
		return err
	}
	if len(en.parts) == 0 {
		meta := &partMeta{id: 0, lo: 0, hi: numVertices,
			path: filepath.Join(en.opts.Dir, "part-000000.edges")}
		n, err := storage.WritePart(meta.path, nil, storage.PartInfo{Lo: meta.lo, Hi: meta.hi})
		if err != nil {
			return err
		}
		en.io.AddWrite(n)
		en.mu.Lock()
		en.parts = append(en.parts, meta)
		en.mu.Unlock()
	}
	// Widen the last partition to cover the whole vertex space.
	en.parts[len(en.parts)-1].hi = numVertices
	return nil
}

// expand closes one edge under unary and mirror productions.
func (en *Engine) expand(e storage.Edge) []storage.Edge {
	out := []storage.Edge{e}
	for i := 0; i < len(out); i++ {
		cur := out[i]
		for _, head := range en.g.MatchUnary(cur.Label) {
			d := cur
			d.Label = head
			out = append(out, d)
		}
		if m := en.g.Mirror(cur.Label); m != grammar.NoLabel {
			d := cur
			d.Src, d.Dst = cur.Dst, cur.Src
			d.Label = m
			out = append(out, d)
		}
	}
	// Dedup within the expansion (mirror of mirror etc. cannot occur with
	// our grammars, but be safe).
	seen := map[uint64]bool{}
	kept := out[:0]
	for _, v := range out {
		k := v.Key()
		if !seen[k] {
			seen[k] = true
			kept = append(kept, v)
		}
	}
	return kept
}

// partOf maps a vertex to its owning partition index.
func (en *Engine) partOf(v uint32) int {
	lo, hi := 0, len(en.parts)
	for lo < hi {
		mid := (lo + hi) / 2
		if v < en.parts[mid].lo {
			hi = mid
		} else if v >= en.parts[mid].hi {
			lo = mid + 1
		} else {
			return mid
		}
	}
	return len(en.parts) - 1
}

// nextPair returns a dirty partition pair, favoring the hot pair — the two
// partitions the previous iteration worked on. Scoring against hot rather
// than the LRU cache's contents keeps the schedule (and so insertion order,
// widening, and reports) independent of how many partitions happen to fit
// in memory.
func (en *Engine) nextPair() (int, int, bool) {
	best, bestScore := [2]int{-1, -1}, -1
	for i := 0; i < len(en.parts); i++ {
		for j := i; j < len(en.parts); j++ {
			key := [2]int{en.parts[i].id, en.parts[j].id}
			last, seen := en.lastGen[key]
			if seen && en.parts[i].maxGen <= last && en.parts[j].maxGen <= last {
				continue
			}
			score := 0
			if i == en.hot[0] || i == en.hot[1] {
				score++
			}
			if j == en.hot[0] || j == en.hot[1] {
				score++
			}
			if score > bestScore {
				best, bestScore = [2]int{i, j}, score
				if score == 2 {
					return best[0], best[1], true
				}
			}
		}
	}
	if bestScore < 0 {
		return 0, 0, false
	}
	return best[0], best[1], true
}

// load brings a partition into memory, serving from the LRU cache or a
// completed prefetch when possible.
func (en *Engine) load(idx int) (*memPart, error) {
	en.tick++
	if mp, ok := en.loaded[idx]; ok {
		mp.lastUse = en.tick
		en.io.CacheHit()
		return mp, nil
	}
	meta := en.parts[idx]
	var edges []storage.Edge
	var info storage.PartInfo
	if res, waited, ok := en.pf.take(meta); ok {
		edges, info = res.edges, res.info
		// The join only waited this long; the disk time itself overlapped
		// the previous iteration's computation.
		en.bd.AddIO(waited)
		en.io.PrefetchHit(res.bytes, waited)
		en.traceIO("prefetch-hit", meta.id, res.bytes, waited)
	} else {
		ioStart := time.Now()
		var n int64
		var err error
		edges, info, n, err = storage.ReadPartWith(meta.path, nil, en.readOpts)
		if err != nil {
			return nil, err
		}
		d := time.Since(ioStart)
		en.bd.AddIO(d)
		en.io.AddRead(n, d)
		en.traceIO("load", meta.id, n, d)
	}
	// Cross-check the file's recorded vertex interval against the partition
	// table (a swapped or stale file decodes cleanly but holds the wrong
	// vertices). The header's hi may lag meta.hi: preprocess widens the last
	// partition's interval after its file is written.
	if info.Lo != 0 || info.Hi != 0 {
		if info.Lo != meta.lo || info.Hi > meta.hi {
			return nil, fmt.Errorf("engine: %s: header interval [%d,%d) does not match partition %d's [%d,%d)",
				meta.path, info.Lo, info.Hi, meta.id, meta.lo, meta.hi)
		}
	}
	// Merge pending appends.
	if p := en.pending[idx]; len(p) > 0 {
		edges = append(edges, p...)
		delete(en.pending, idx)
	}
	mp := &memPart{meta: meta, edges: edges, bySrc: en.buildBySrc(edges), lastUse: en.tick}
	en.loaded[idx] = mp
	return mp, nil
}

// evict writes a loaded partition back to disk (if dirty) and drops it from
// memory.
func (en *Engine) evict(idx int) error {
	mp, ok := en.loaded[idx]
	if !ok {
		return nil
	}
	if mp.dirty {
		en.pf.invalidate(mp.meta)
		ioStart := time.Now()
		n, err := storage.WritePart(mp.meta.path, mp.edges, storage.PartInfo{Lo: mp.meta.lo, Hi: mp.meta.hi})
		if err != nil {
			return err
		}
		d := time.Since(ioStart)
		en.bd.AddIO(d)
		en.io.AddWrite(n)
		en.traceIO("write", mp.meta.id, n, d)
	}
	delete(en.loaded, idx)
	en.io.Eviction()
	return nil
}

// ensureBudget makes room for the pair (i, j) by evicting cached partitions
// — never i or j — least-recently-used first, until the pair fits the
// memory budget alongside whatever stays cached. Victim selection is
// deterministic: ticks are unique, and equal ticks fall back to the lowest
// position.
func (en *Engine) ensureBudget(i, j int) error {
	need := en.parts[i].bytes
	if j != i {
		need += en.parts[j].bytes
	}
	for {
		var cached int64
		for idx, mp := range en.loaded {
			if idx != i && idx != j {
				cached += mp.meta.bytes
			}
		}
		if cached == 0 || cached+need <= en.opts.MemoryBudget {
			return nil
		}
		victim := -1
		var victimUse int64
		for idx, mp := range en.loaded {
			if idx == i || idx == j {
				continue
			}
			if victim < 0 || mp.lastUse < victimUse ||
				(mp.lastUse == victimUse && idx < victim) {
				victim, victimUse = idx, mp.lastUse
			}
		}
		if victim < 0 {
			return nil
		}
		if err := en.evict(victim); err != nil {
			return err
		}
	}
}

func (en *Engine) evictAll() error {
	for idx := range en.loaded {
		if err := en.evict(idx); err != nil {
			return err
		}
	}
	// Flush any remaining pending buffers.
	for idx, p := range en.pending {
		if len(p) == 0 {
			continue
		}
		en.pf.invalidate(en.parts[idx])
		ioStart := time.Now()
		n, err := storage.AppendPart(en.parts[idx].path, p)
		if err != nil {
			return err
		}
		d := time.Since(ioStart)
		en.bd.AddIO(d)
		en.io.AddAppend(n)
		en.traceIO("append", en.parts[idx].id, n, d)
		delete(en.pending, idx)
	}
	return nil
}

// flushPending appends buffered edges for unloaded partitions once buffers
// grow; loaded partitions never buffer. Any prefetch of the target file is
// invalidated first: the bytes it read predate the append.
func (en *Engine) flushPending(force bool) error {
	for idx, p := range en.pending {
		if len(p) == 0 {
			continue
		}
		if !force && len(p) < 4096 {
			continue
		}
		en.pf.invalidate(en.parts[idx])
		ioStart := time.Now()
		n, err := storage.AppendPart(en.parts[idx].path, p)
		if err != nil {
			return err
		}
		d := time.Since(ioStart)
		en.bd.AddIO(d)
		en.io.AddAppend(n)
		en.traceIO("append", en.parts[idx].id, n, d)
		delete(en.pending, idx)
	}
	return nil
}

// traceIO emits one storage instant event when tracing is enabled. The
// enabled check keeps the disabled path allocation-free.
func (en *Engine) traceIO(op string, part int, bytes int64, d time.Duration) {
	if !en.opts.Trace.Enabled() {
		return
	}
	en.opts.Trace.Instant(en.opts.TraceTID, "storage", op, trace.Args{
		"part": part, "bytes": bytes, "us": d.Microseconds(),
	})
}
