//go:build !race

package raceflag

// Enabled reports that the race detector is active in this build.
const Enabled = false
