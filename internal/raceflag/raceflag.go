// Package raceflag exposes whether the binary was built with the race
// detector. Allocation-budget tests assert exact allocs-per-op counts that
// the race runtime inflates (it instruments every allocation), so they skip
// themselves under -race; the behavioral halves of those tests still run.
package raceflag
