// Package faultpoint is a deterministic crash-injection switchboard for the
// checkpoint/resume test harness. Write sites in the engine, the journal,
// and the batch scheduler call Hit(name) at the instants a real process
// could die; a test arms a point with Arm(name, n) and the n-th hit returns
// ErrInjected, which the caller propagates upward exactly as it would a
// fatal I/O error. Because the in-memory state of the aborted run is then
// discarded (the test constructs a fresh engine/checker to resume), an
// injected abort is observationally equivalent to `kill -9` at that point —
// without the cost of a subprocess per boundary.
//
// A nil *Set is inert: every method is a no-op and Hit always returns nil,
// so production paths carry no overhead beyond a nil check.
package faultpoint

import (
	"errors"
	"sync"
)

// ErrInjected is returned by Hit when an armed fault point triggers. It is
// sticky: once a Set has triggered, every subsequent Hit on it fails too,
// the way nothing runs after a real crash.
var ErrInjected = errors.New("faultpoint: injected crash")

// Well-known fault point names. Sites are free to use ad-hoc names, but the
// shipped kill sites use these.
const (
	// EngineSuperstep fires in the engine after a checkpoint record has been
	// made durable — the canonical "kill at superstep boundary k".
	EngineSuperstep = "engine.superstep"
	// EngineCheckpointPre fires at a superstep boundary before any flush or
	// journal write for it has happened.
	EngineCheckpointPre = "engine.checkpoint.pre"
	// JournalAppendMid fires inside JournalWriter.Append after only a prefix
	// of the record's bytes reached the file — a torn journal write.
	JournalAppendMid = "journal.append.mid"
	// SchedulerInstance fires in the batch scheduler after an instance's
	// completion record has been made durable.
	SchedulerInstance = "scheduler.instance"
)

// Set is one run's collection of armed fault points. Safe for concurrent
// use; the zero value (or nil) never triggers.
type Set struct {
	mu        sync.Mutex
	arm       map[string]int // name -> hit ordinal that triggers (1-based)
	hits      map[string]int
	triggered bool
}

// New returns an empty, unarmed Set.
func New() *Set {
	return &Set{arm: map[string]int{}, hits: map[string]int{}}
}

// Arm makes the n-th Hit of name (1-based) return ErrInjected. Arming with
// n <= 0 disarms the point.
func (s *Set) Arm(name string, n int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 {
		delete(s.arm, name)
		return
	}
	s.arm[name] = n
}

// Hit records one pass through the named site and reports whether the run
// should die here. Sticky: after the first trigger every Hit fails.
func (s *Set) Hit(name string) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.triggered {
		return ErrInjected
	}
	s.hits[name]++
	if n, ok := s.arm[name]; ok && s.hits[name] == n {
		s.triggered = true
		return ErrInjected
	}
	return nil
}

// Count returns how many times the named site has been hit.
func (s *Set) Count(name string) int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits[name]
}

// Triggered reports whether the set has injected its crash.
func (s *Set) Triggered() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.triggered
}
