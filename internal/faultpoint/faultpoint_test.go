package faultpoint

import (
	"errors"
	"sync"
	"testing"
)

func TestNilSetIsInert(t *testing.T) {
	var s *Set
	s.Arm("x", 1)
	if err := s.Hit("x"); err != nil {
		t.Fatalf("nil set triggered: %v", err)
	}
	if s.Count("x") != 0 || s.Triggered() {
		t.Fatal("nil set kept state")
	}
}

func TestArmTriggersOnNthHit(t *testing.T) {
	s := New()
	s.Arm("boundary", 3)
	for i := 1; i <= 2; i++ {
		if err := s.Hit("boundary"); err != nil {
			t.Fatalf("hit %d triggered early: %v", i, err)
		}
	}
	if err := s.Hit("boundary"); !errors.Is(err, ErrInjected) {
		t.Fatalf("hit 3 did not trigger: %v", err)
	}
	// Sticky: everything after the crash fails, on any point.
	if err := s.Hit("boundary"); !errors.Is(err, ErrInjected) {
		t.Fatal("post-crash hit succeeded")
	}
	if err := s.Hit("other"); !errors.Is(err, ErrInjected) {
		t.Fatal("post-crash hit on another point succeeded")
	}
	if !s.Triggered() {
		t.Fatal("Triggered false after injection")
	}
}

func TestUnarmedPointsCount(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		if err := s.Hit("free"); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Count("free"); got != 5 {
		t.Fatalf("count %d", got)
	}
	s.Arm("free", 2)
	s.Arm("free", 0) // disarm
	if err := s.Hit("free"); err != nil {
		t.Fatalf("disarmed point triggered: %v", err)
	}
}

func TestConcurrentHits(t *testing.T) {
	s := New()
	s.Arm("p", 50)
	var wg sync.WaitGroup
	var mu sync.Mutex
	injected := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if errors.Is(s.Hit("p"), ErrInjected) {
					mu.Lock()
					injected++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if injected == 0 {
		t.Fatal("armed point never triggered under concurrency")
	}
	if !s.Triggered() {
		t.Fatal("Triggered false")
	}
}
