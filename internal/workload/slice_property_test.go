package workload

import (
	"fmt"
	"strings"
	"testing"

	"github.com/grapple-system/grapple/internal/checker"
	"github.com/grapple-system/grapple/internal/fsm"
)

// sliceProfile is the randomized slice-invariance subject: like
// propertyProfile but with the interprocedural knobs turned on so the
// relevance slicer has helper functions, dead parameters, and
// irrelevant-type traffic to remove.
func sliceProfile(seed int64) Profile {
	p := propertyProfile(seed)
	p.Name = fmt.Sprintf("slice-%d", seed)
	p.Description = "randomized slice-invariance subject"
	p.LintNilRets = 1
	p.LintDeadParams = 2
	p.LintLeakyCalls = 1
	return p
}

// TestPropertySlicingPreservesReports: on random workload programs, for
// every builtin FSM property checked in isolation (and once for the full
// property set), running with property-relevance slicing on and off yields
// a byte-identical rendered report set, while the sliced run stubs out at
// least one function somewhere across the matrix.
func TestPropertySlicingPreservesReports(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full pipeline twice per (seed, property)")
	}
	builtins := fsm.Builtins()
	// One run per builtin property alone (maximal slicing pressure: only a
	// single tracked type survives), plus all properties together.
	sets := make(map[string][]*fsm.FSM, len(builtins)+1)
	for _, f := range builtins {
		sets[f.Name] = []*fsm.FSM{f}
	}
	sets["all"] = builtins

	slicedSomewhere := false
	for _, seed := range []int64{11, 29} {
		s := Generate(sliceProfile(seed))
		for name, fsms := range sets {
			t.Run(fmt.Sprintf("seed%d/%s", seed, name), func(t *testing.T) {
				run := func(mode checker.SliceMode) *checker.Result {
					c := checker.New(fsms, checker.Options{
						WorkDir: t.TempDir(), Slice: mode,
					})
					res, err := c.CheckSource(s.Source)
					if err != nil {
						t.Fatalf("slice=%v: %v", mode, err)
					}
					return res
				}
				sliced := run(checker.SliceOn)
				unsliced := run(checker.SliceOff)

				got := strings.Join(renderReports(sliced.Reports), "\n")
				want := strings.Join(renderReports(unsliced.Reports), "\n")
				if got != want {
					t.Fatalf("reports differ with slicing:\n  sliced:\n%s\n  unsliced:\n%s", got, want)
				}
				if unsliced.Alias.SlicedFunctions != 0 || unsliced.Alias.SlicedBranches != 0 {
					t.Errorf("unsliced run reports slicing: %d functions, %d branches",
						unsliced.Alias.SlicedFunctions, unsliced.Alias.SlicedBranches)
				}
				if sliced.Alias.SlicedFunctions > 0 {
					slicedSomewhere = true
				}
				t.Logf("sliced %d functions, %d branches; paths %d vs %d",
					sliced.Alias.SlicedFunctions, sliced.Alias.SlicedBranches,
					sliced.Alias.CFETPaths, unsliced.Alias.CFETPaths)
			})
		}
	}
	if !slicedSomewhere {
		t.Error("no (seed, property) combination sliced any function")
	}
}
