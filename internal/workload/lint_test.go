package workload

import (
	"fmt"
	"sort"
	"testing"

	"github.com/grapple-system/grapple/internal/analysis"
	"github.com/grapple-system/grapple/internal/ir"
	"github.com/grapple-system/grapple/internal/lang"
)

// lintSubject runs the IR-level pre-analysis passes on a generated subject.
func lintSubject(t *testing.T, s *Subject) []analysis.Diagnostic {
	t.Helper()
	prog, err := lang.Parse(s.Source)
	if err != nil {
		t.Fatalf("%s: parse: %v", s.Name, err)
	}
	info, err := lang.Resolve(prog)
	if err != nil {
		t.Fatalf("%s: resolve: %v", s.Name, err)
	}
	p, err := ir.Lower(info, ir.Options{})
	if err != nil {
		t.Fatalf("%s: lower: %v", s.Name, err)
	}
	res, err := analysis.Run(p, analysis.Default())
	if err != nil {
		t.Fatalf("%s: analysis: %v", s.Name, err)
	}
	return res.Diagnostics
}

// TestLintGroundTruthExact asserts, for every profile, that the lint passes
// report EXACTLY the seeded (code, line) pairs: every planted defect is
// found, and nothing else is flagged (zero false positives on generated
// code).
func TestLintGroundTruthExact(t *testing.T) {
	for _, p := range append(Profiles(), MiniProfile(), ConcurrencyProfile()) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			s := Generate(p)
			lkSock, lkIO := p.LeakyCallSplit()
			wantTotal := p.LintDeadBranches + p.LintUninitReads +
				p.LintDeadStores + p.LintUnusedAllocs +
				p.LintNilRets + p.LintDeadParams + lkSock + lkIO +
				p.LintGoroutineLeaks + p.LintUnsyncShared
			if len(s.LintSeeded) != wantTotal {
				t.Fatalf("manifest has %d entries, knobs promise %d",
					len(s.LintSeeded), wantTotal)
			}
			want := map[string]int{}
			for _, ls := range s.LintSeeded {
				want[fmt.Sprintf("%s@%d", ls.Code, ls.Line)]++
			}
			got := map[string]int{}
			var gotList []string
			for _, d := range lintSubject(t, s) {
				key := fmt.Sprintf("%s@%d", d.Code, d.Pos.Line)
				got[key]++
				gotList = append(gotList, key)
			}
			sort.Strings(gotList)
			for key, n := range want {
				if got[key] != n {
					t.Errorf("seeded defect %s: reported %d times, want %d",
						key, got[key], n)
				}
			}
			for key, n := range got {
				if want[key] != n {
					t.Errorf("unseeded diagnostic %s reported %d times (false positive)",
						key, n)
				}
			}
			if t.Failed() {
				t.Logf("all diagnostics: %v", gotList)
			}
		})
	}
}

// TestLintSeedsDeterministic pins the manifest to the profile seed.
func TestLintSeedsDeterministic(t *testing.T) {
	p, _ := ProfileByName("concurrency-sim")
	a, b := Generate(p), Generate(p)
	if len(a.LintSeeded) != len(b.LintSeeded) {
		t.Fatal("lint manifest must be deterministic")
	}
	for i := range a.LintSeeded {
		if a.LintSeeded[i] != b.LintSeeded[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a.LintSeeded[i], b.LintSeeded[i])
		}
	}
	counts := map[string]int{}
	for _, ls := range a.LintSeeded {
		counts[ls.Code]++
	}
	lkSock, lkIO := p.LeakyCallSplit()
	if counts["CF001"]+counts["CF002"] != p.LintDeadBranches ||
		counts["RD001"] != p.LintUninitReads ||
		counts["DS001"] != p.LintDeadStores ||
		counts["UA001"] != p.LintUnusedAllocs ||
		counts["ND001"] != p.LintNilRets ||
		counts["DP001"] != p.LintDeadParams ||
		counts["LK001"] != lkSock+lkIO ||
		counts["GR001"] != p.LintGoroutineLeaks ||
		counts["GR002"] != p.LintUnsyncShared {
		t.Fatalf("per-code counts %v do not match knobs %+v", counts, p)
	}
}
