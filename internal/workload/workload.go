// Package workload generates the synthetic subject programs of the
// evaluation (DESIGN.md §1). The paper analyzes ZooKeeper, Hadoop, HDFS and
// HBase; those codebases (and the manual TP/FP inspection the authors
// performed) are not reproducible inputs, so each subject is replaced by a
// deterministic generated MiniLang program whose *ground truth* is known:
// every seeded defect records its allocation line, checker and kind, and
// every seeded false-positive pattern records why the analysis is expected
// to over-approximate it (may-alias on collection-fetched objects — the
// same root cause as the paper's HDFS socket FP).
//
// The per-subject seeding plan follows Table 2 of the paper exactly, so a
// faithful analysis reproduces the table's shape.
package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// Seeded is one planted pattern with ground truth.
type Seeded struct {
	// Line is the allocation line of the object of interest.
	Line int
	// Type is the object type (FileWriter, Lock, Socket, Exception).
	Type string
	// Checker names the FSM expected to fire (io, lock, exception, socket).
	Checker string
	// Kind is "leak" or "error-transition".
	Kind string
	// ExpectFP marks patterns that are *correct* code the analysis is
	// expected to flag anyway (the evaluation counts these as FPs).
	ExpectFP bool
}

// LintSeeded is one planted IR-level defect for the pre-analysis lint
// passes, with exact ground truth: `grapple lint` on the generated source
// must report exactly these (code, line) pairs and nothing else.
type LintSeeded struct {
	// Line is the source line the diagnostic must point at.
	Line int
	// Code is the expected diagnostic code (RD001, DS001, CF001, CF002,
	// UA001).
	Code string
}

// Subject is one generated program.
type Subject struct {
	Name        string
	Description string
	Version     string
	Source      string
	LoC         int
	Seeded      []Seeded
	LintSeeded  []LintSeeded
}

// Profile scales a subject.
type Profile struct {
	Name        string
	Description string
	Version     string
	Seed        int64
	// Services and WorkersPerService shape the call tree
	// main -> service_i -> work_j.
	Services          int
	WorkersPerService int
	// Bug plan: TP/FP counts per checker, mirroring Table 2.
	IOTP, IOFP     int
	LockTP, LockFP int
	ExcTP, ExcFP   int
	SockTP, SockFP int
	// CorrectPerBug controls how many correct patterns pad each buggy one.
	CorrectPerBug int
	// FillerStmts adds plain integer code per worker for bulk.
	FillerStmts int
	// Lint-defect plan: IR-level defects for the pre-analysis passes, each
	// recorded in the LintSeeded manifest with its exact expected code and
	// line. LintDeadBranches also feeds the pruner: every planted
	// constant-guarded branch is a CFET split that pruning removes.
	LintDeadBranches int // always-true/always-false branches (CF001/CF002)
	LintUninitReads  int // reads of never-initialized locals (RD001)
	LintDeadStores   int // stores never read on any path (DS001)
	LintUnusedAllocs int // allocations with no observable use (UA001)
	// Interprocedural lint defects (each uses a per-instance helper function
	// so every seed has a unique line):
	LintNilRets    int // may-return-null helpers dereferenced unchecked (ND001)
	LintDeadParams int // dead parameters / ignored object results (DP001)
	// LintLeakyCalls converts direct typestate leaks into interprocedural
	// ones (resource allocated in a helper, leaked by the caller): each
	// instance seeds BOTH the usual typestate leak (at the helper's
	// allocation line) and an LK001 lint defect (at the call line), drawing
	// from the socket budget first, then io. The per-checker TP totals are
	// unchanged; Table 2 still holds.
	LintLeakyCalls int
	// Concurrency lint defects (docs/concurrency.md); each instance spawns a
	// per-instance helper goroutine. These also exercise the checker's
	// goroutine-sharing widening: the GR001 resource is never released by
	// anyone, yet seeds NO typestate leak — its lifetime continues on the
	// spawned task, so reporting it would be a false positive.
	LintGoroutineLeaks int // resource shared with a goroutine, released by neither side (GR001)
	LintUnsyncShared   int // unguarded event on a goroutine-shared object (GR002)
}

// LeakyCallSplit returns how many interprocedural leaky-call patterns the
// generator actually emits as (socket-typed, io-typed): the knob is capped
// by the direct leak budgets it converts.
func (p Profile) LeakyCallSplit() (sock, io int) {
	sockDirect := maxInt(0, p.SockTP-p.SockFP)
	ioDirect := maxInt(0, p.IOTP-p.IOFP)
	sock = minInt(p.LintLeakyCalls, sockDirect)
	io = minInt(p.LintLeakyCalls-sock, ioDirect)
	return sock, io
}

// Profiles returns the four subject profiles, scaled to this harness while
// preserving the paper's relative sizes (Table 1) and bug mix (Table 2).
func Profiles() []Profile {
	return []Profile{
		{
			Name: "zookeeper-sim", Version: "3.5.0-sim",
			Description: "distributed coordination service (simulated)",
			Seed:        1001, Services: 4, WorkersPerService: 6,
			IOTP: 2, IOFP: 0, LockTP: 0, LockFP: 0,
			ExcTP: 59, ExcFP: 0, SockTP: 4, SockFP: 0,
			CorrectPerBug: 1, FillerStmts: 6,
			LintDeadBranches: 6, LintUninitReads: 3,
			LintDeadStores: 3, LintUnusedAllocs: 3,
			LintNilRets: 2, LintDeadParams: 2, LintLeakyCalls: 2,
		},
		{
			Name: "hadoop-sim", Version: "2.7.5-sim",
			Description: "data-processing platform (simulated)",
			Seed:        1002, Services: 7, WorkersPerService: 8,
			IOTP: 0, IOFP: 0, LockTP: 0, LockFP: 0,
			ExcTP: 54, ExcFP: 2, SockTP: 0, SockFP: 0,
			CorrectPerBug: 2, FillerStmts: 8,
			LintDeadBranches: 4, LintUninitReads: 2,
			LintDeadStores: 2, LintUnusedAllocs: 2,
			LintNilRets: 2, LintDeadParams: 2, LintLeakyCalls: 0,
		},
		{
			Name: "hdfs-sim", Version: "2.0.3-sim",
			Description: "distributed file system (simulated)",
			Seed:        1003, Services: 7, WorkersPerService: 8,
			IOTP: 1, IOFP: 1, LockTP: 1, LockFP: 0,
			ExcTP: 43, ExcFP: 3, SockTP: 4, SockFP: 1,
			CorrectPerBug: 2, FillerStmts: 8,
			LintDeadBranches: 4, LintUninitReads: 2,
			LintDeadStores: 2, LintUnusedAllocs: 2,
			LintNilRets: 2, LintDeadParams: 2, LintLeakyCalls: 2,
		},
		{
			Name: "hbase-sim", Version: "1.1.6-sim",
			Description: "distributed database (simulated)",
			Seed:        1004, Services: 12, WorkersPerService: 10,
			IOTP: 15, IOFP: 2, LockTP: 0, LockFP: 0,
			ExcTP: 176, ExcFP: 8, SockTP: 0, SockFP: 0,
			CorrectPerBug: 1, FillerStmts: 10,
			LintDeadBranches: 8, LintUninitReads: 4,
			LintDeadStores: 4, LintUnusedAllocs: 4,
			LintNilRets: 3, LintDeadParams: 4, LintLeakyCalls: 3,
		},
	}
}

// MiniProfile is a reduced subject for unit tests and quick benchmarks; it
// is not one of the paper's four subjects.
func MiniProfile() Profile {
	return Profile{
		Name: "mini-sim", Version: "0.1-sim",
		Description: "reduced subject for quick runs",
		Seed:        42, Services: 2, WorkersPerService: 3,
		IOTP: 2, IOFP: 1, LockTP: 1, LockFP: 0,
		ExcTP: 4, ExcFP: 1, SockTP: 2, SockFP: 1,
		CorrectPerBug: 1, FillerStmts: 4,
		LintDeadBranches: 2, LintUninitReads: 1,
		LintDeadStores: 1, LintUnusedAllocs: 1,
		LintNilRets: 1, LintDeadParams: 1, LintLeakyCalls: 1,
	}
}

// ConcurrencyProfile is the goroutine-heavy subject: every worker mixes the
// classic patterns with spawned tasks, seeding exact GR001/GR002 ground
// truth. It is not one of the paper's four subjects (the paper's engine is
// sequential), so Profiles() excludes it and the Table 1/2 goldens are
// untouched; the concurrency tests select it by name.
func ConcurrencyProfile() Profile {
	return Profile{
		Name: "concurrency-sim", Version: "0.1-sim",
		Description: "goroutine-sharing subject for the GR rules and checker widening",
		Seed:        2001, Services: 3, WorkersPerService: 4,
		IOTP: 2, IOFP: 0, LockTP: 1, LockFP: 0,
		ExcTP: 4, ExcFP: 1, SockTP: 2, SockFP: 0,
		CorrectPerBug: 1, FillerStmts: 4,
		LintDeadBranches: 2, LintUninitReads: 1,
		LintDeadStores: 1, LintUnusedAllocs: 1,
		LintNilRets: 1, LintDeadParams: 1, LintLeakyCalls: 1,
		LintGoroutineLeaks: 4, LintUnsyncShared: 4,
	}
}

// ProfileByName returns the named profile.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	if m := MiniProfile(); m.Name == name {
		return m, true
	}
	if c := ConcurrencyProfile(); c.Name == name {
		return c, true
	}
	return Profile{}, false
}

// builder accumulates source lines and tracks line numbers.
type builder struct {
	lines      []string
	seeded     []Seeded
	lintSeeded []LintSeeded
	rng        *rand.Rand
	varN       int
	// helpers are deferred emitters for per-instance helper functions:
	// interprocedural patterns queue one while writing a worker body and the
	// generator drains the queue at top level after the workers.
	helpers []func(b *builder)
}

func (b *builder) linef(format string, args ...any) int {
	b.lines = append(b.lines, fmt.Sprintf(format, args...))
	return len(b.lines)
}

func (b *builder) fresh(prefix string) string {
	b.varN++
	return fmt.Sprintf("%s%d", prefix, b.varN)
}

func (b *builder) seed(line int, typ, checker, kind string, fp bool) {
	b.seeded = append(b.seeded, Seeded{
		Line: line, Type: typ, Checker: checker, Kind: kind, ExpectFP: fp,
	})
}

func (b *builder) lintSeed(line int, code string) {
	b.lintSeeded = append(b.lintSeeded, LintSeeded{Line: line, Code: code})
}

// Generate builds the subject for a profile.
func Generate(p Profile) *Subject {
	b := &builder{rng: rand.New(rand.NewSource(p.Seed))}
	b.linef("// %s — generated subject (seed %d); ground truth in manifest.", p.Name, p.Seed)
	b.linef("type FileWriter;")
	b.linef("type Lock;")
	b.linef("type Socket;")
	b.linef("type Exception;")
	b.linef("type Box;")
	b.linef("type RareError;")
	b.linef("")

	prelude(b)

	// Assemble the pattern plan. Collection-FP patterns each contribute one
	// genuine leak too, so the direct-TP counts are reduced accordingly and
	// the aliased-exception FP pattern flags two allocations per instance.
	var plan []func(b *builder)
	addN := func(n int, f func(b *builder)) {
		for i := 0; i < n; i++ {
			plan = append(plan, f)
		}
	}
	// Interprocedural leaky calls replace direct leaks one-for-one, so the
	// per-checker TP totals still match Table 2.
	lkSock, lkIO := p.LeakyCallSplit()
	ioDirect := maxInt(0, p.IOTP-p.IOFP) - lkIO
	sockDirect := maxInt(0, p.SockTP-p.SockFP) - lkSock
	addN(ioDirect/2, ioLeakBranch)
	addN(ioDirect-ioDirect/2, ioWriteAfterClose)
	addN(lkIO, ioLeakViaHelper)
	addN(p.IOFP, ioCollectionFP)
	addN(p.LockTP, lockMisorder)
	addN(p.LockFP, lockCollectionFP)
	addN(p.ExcTP, excUnhandled)
	addN(p.ExcFP, excAliasedFP)
	addN(sockDirect/2, sockLeakOnException)
	addN(sockDirect-sockDirect/2, sockReassignLeak)
	addN(lkSock, sockLeakViaHelper)
	addN(p.SockFP, sockCollectionFP)
	bugCount := len(plan)
	// Lint defects ride along after the typestate bug plan is sized; they
	// are typestate-neutral, so they do not contribute correct-code padding.
	addN(p.LintDeadBranches, lintDeadBranch)
	addN(p.LintUninitReads, lintUninitRead)
	addN(p.LintDeadStores, lintDeadStore)
	addN(p.LintUnusedAllocs, lintUnusedAlloc)
	addN(p.LintNilRets, ndNilReturn)
	for i := 0; i < p.LintDeadParams; i++ {
		if i%2 == 0 {
			plan = append(plan, dpDeadParam)
		} else {
			plan = append(plan, dpIgnoredResult)
		}
	}
	for i := 0; i < p.LintGoroutineLeaks; i++ {
		if i%2 == 0 {
			plan = append(plan, grGoroutineLeakSock)
		} else {
			plan = append(plan, grGoroutineLeakIO)
		}
	}
	addN(p.LintUnsyncShared, grUnsyncShared)
	correct := []func(b *builder){
		ioCorrect, ioPathSensitiveSafe, ioHelperClose, lockCorrect,
		sockCorrect, excHandled, sockCorrectBothPaths,
	}
	for i := 0; i < bugCount*p.CorrectPerBug+4; i++ {
		plan = append(plan, correct[b.rng.Intn(len(correct))])
	}
	b.rng.Shuffle(len(plan), func(i, j int) { plan[i], plan[j] = plan[j], plan[i] })

	// Distribute patterns across workers.
	nWorkers := p.Services * p.WorkersPerService
	perWorker := (len(plan) + nWorkers - 1) / nWorkers
	w := 0
	for s := 0; s < p.Services; s++ {
		for k := 0; k < p.WorkersPerService; k++ {
			name := fmt.Sprintf("work_%d_%d", s, k)
			b.linef("fun %s(cfg: int) {", name)
			lo := w * perWorker
			hi := lo + perWorker
			if lo > len(plan) {
				lo = len(plan)
			}
			if hi > len(plan) {
				hi = len(plan)
			}
			for _, pat := range plan[lo:hi] {
				pat(b)
			}
			filler(b, p.FillerStmts)
			b.linef("  return;")
			b.linef("}")
			b.linef("")
			w++
		}
	}
	// Emit the helper functions the interprocedural patterns queued while
	// their call sites were being written.
	for len(b.helpers) > 0 {
		hs := b.helpers
		b.helpers = nil
		for _, h := range hs {
			h(b)
		}
	}
	for s := 0; s < p.Services; s++ {
		b.linef("fun service_%d(cfg: int) {", s)
		for k := 0; k < p.WorkersPerService; k++ {
			b.linef("  work_%d_%d(cfg + %d);", s, k, k)
		}
		b.linef("  return;")
		b.linef("}")
		b.linef("")
	}
	b.linef("fun main() {")
	b.linef("  var cfg: int = input();")
	for s := 0; s < p.Services; s++ {
		b.linef("  service_%d(cfg + %d);", s, s)
	}
	b.linef("  return;")
	b.linef("}")

	src := strings.Join(b.lines, "\n") + "\n"
	return &Subject{
		Name:        p.Name,
		Description: p.Description,
		Version:     p.Version,
		Source:      src,
		LoC:         len(b.lines),
		Seeded:      b.seeded,
		LintSeeded:  b.lintSeeded,
	}
}

// ---- correct patterns ----

func ioCorrect(b *builder) {
	w := b.fresh("w")
	i := b.fresh("i")
	b.linef("  var %s: FileWriter = new FileWriter();", w)
	b.linef("  var %s: int = 0;", i)
	b.linef("  while (%s < cfg) {", i)
	b.linef("    %s.write();", w)
	b.linef("    %s = %s + 1;", i, i)
	b.linef("  }")
	b.linef("  %s.close();", w)
}

// ioPathSensitiveSafe is the §2.1-style pattern whose skip-close path is
// infeasible: a path-insensitive checker reports a leak here; Grapple must
// not (the control for path sensitivity).
func ioPathSensitiveSafe(b *builder) {
	w := b.fresh("w")
	x := b.fresh("x")
	b.linef("  var %s: FileWriter = null;", w)
	b.linef("  var %s: int = input();", x)
	b.linef("  if (%s >= 0) {", x)
	b.linef("    %s = new FileWriter();", w)
	b.linef("    %s.write();", w)
	b.linef("  }")
	b.linef("  if (%s >= 0) {", x)
	b.linef("    %s.close();", w)
	b.linef("  }")
}

func ioHelperClose(b *builder) {
	w := b.fresh("w")
	b.linef("  var %s: FileWriter = new FileWriter();", w)
	b.linef("  %s.write();", w)
	b.linef("  closeWriter(%s);", w)
}

func lockCorrect(b *builder) {
	l := b.fresh("l")
	b.linef("  var %s: Lock = new Lock();", l)
	b.linef("  %s.lock();", l)
	b.linef("  %s.unlock();", l)
}

func sockCorrect(b *builder) {
	s := b.fresh("s")
	b.linef("  var %s: Socket = new Socket();", s)
	b.linef("  %s.bind();", s)
	b.linef("  %s.accept();", s)
	b.linef("  %s.close();", s)
}

func sockCorrectBothPaths(b *builder) {
	s := b.fresh("s")
	e := b.fresh("e")
	b.linef("  var %s: Socket = new Socket();", s)
	b.linef("  %s.bind();", s)
	b.linef("  try {")
	b.linef("    mayFail(cfg);")
	b.linef("    %s.close();", s)
	b.linef("  } catch (%s) {", e)
	b.linef("    %s.close();", s)
	b.linef("  }")
}

func excHandled(b *builder) {
	e := b.fresh("e")
	c := b.fresh("c")
	x := b.fresh("x")
	b.linef("  var %s: int = input();", x)
	b.linef("  try {")
	b.linef("    if (%s > 7) {", x)
	b.linef("      var %s: Exception = new Exception();", e)
	b.linef("      throw %s;", e)
	b.linef("    }")
	b.linef("  } catch (%s) {", c)
	b.linef("    consume(%s);", x)
	b.linef("  }")
}

// ---- buggy patterns (ground truth TPs) ----

// ioLeakBranch: close happens only on one feasible branch.
func ioLeakBranch(b *builder) {
	w := b.fresh("w")
	x := b.fresh("x")
	line := b.linef("  var %s: FileWriter = new FileWriter();", w)
	b.linef("  var %s: int = input();", x)
	b.linef("  %s.write();", w)
	b.linef("  if (%s > 3) {", x)
	b.linef("    %s.close();", w)
	b.linef("  }")
	b.seed(line, "FileWriter", "io", "leak", false)
}

// ioWriteAfterClose: a feasible use-after-close (the FSM's Error state).
func ioWriteAfterClose(b *builder) {
	w := b.fresh("w")
	x := b.fresh("x")
	line := b.linef("  var %s: FileWriter = new FileWriter();", w)
	b.linef("  var %s: int = input();", x)
	b.linef("  %s.close();", w)
	b.linef("  if (%s > 5) {", x)
	b.linef("    %s.write();", w)
	b.linef("  }")
	b.seed(line, "FileWriter", "io", "error-transition", false)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func lockMisorder(b *builder) {
	l := b.fresh("l")
	line := b.linef("  var %s: Lock = new Lock();", l)
	b.linef("  %s.unlock();", l)
	b.linef("  %s.lock();", l)
	b.linef("  %s.unlock();", l)
	b.seed(line, "Lock", "lock", "error-transition", false)
}

func excUnhandled(b *builder) {
	e := b.fresh("e")
	x := b.fresh("x")
	b.linef("  var %s: int = input();", x)
	b.linef("  if (%s < 0 - 3) {", x)
	line := b.linef("    var %s: Exception = new Exception();", e)
	b.linef("    throw %s;", e)
	b.linef("  }")
	b.seed(line, "Exception", "exception", "leak", false)
}

// sockLeakOnException is the paper's Fig. 1/8a shape: the socket is closed
// only when the guarded call does not throw.
func sockLeakOnException(b *builder) {
	s := b.fresh("s")
	e := b.fresh("e")
	line := b.linef("  var %s: Socket = new Socket();", s)
	b.linef("  %s.bind();", s)
	b.linef("  try {")
	b.linef("    mayFail(cfg);")
	b.linef("    %s.close();", s)
	b.linef("  } catch (%s) {", e)
	b.linef("    consume(cfg);")
	b.linef("  }")
	b.seed(line, "Socket", "socket", "leak", false)
}

// sockReassignLeak is the reconfigure idiom of the paper's Fig. 1: the old
// channel is replaced by a new one and only the replacement gets closed, so
// the old socket leaks on the reconfiguration path.
func sockReassignLeak(b *builder) {
	s := b.fresh("s")
	s2 := b.fresh("s")
	x := b.fresh("x")
	line := b.linef("  var %s: Socket = new Socket();", s)
	b.linef("  %s.bind();", s)
	b.linef("  var %s: int = input();", x)
	b.linef("  if (%s > 0) {", x)
	b.linef("    var %s: Socket = new Socket();", s2)
	b.linef("    %s.bind();", s2)
	b.linef("    %s.close();", s2)
	b.linef("  } else {")
	b.linef("    %s.close();", s)
	b.linef("  }")
	b.seed(line, "Socket", "socket", "leak", false)
}

// ---- expected-FP patterns (correct code the analysis over-approximates) ----

// ioCollectionFP: two writers stored in the same field; the one fetched
// back is closed. The may-alias on the collection load forces a
// may-not-alias bypass, so the *actually closed* writer is still reported —
// the same FP cause as the paper's HDFS socket-from-a-collection FP. The
// overwritten writer is a genuine leak (TP).
func ioCollectionFP(b *builder) {
	box := b.fresh("box")
	w1 := b.fresh("w")
	w2 := b.fresh("w")
	o := b.fresh("o")
	b.linef("  var %s: Box = new Box();", box)
	l1 := b.linef("  var %s: FileWriter = new FileWriter();", w1)
	l2 := b.linef("  var %s: FileWriter = new FileWriter();", w2)
	b.linef("  %s.fw = %s;", box, w1)
	b.linef("  %s.fw = %s;", box, w2)
	b.linef("  var %s: FileWriter = %s.fw;", o, box)
	b.linef("  %s.close();", o)
	b.seed(l1, "FileWriter", "io", "leak", false) // truly leaked (overwritten)
	b.seed(l2, "FileWriter", "io", "leak", true)  // closed at runtime: FP
}

func sockCollectionFP(b *builder) {
	box := b.fresh("box")
	s1 := b.fresh("s")
	s2 := b.fresh("s")
	o := b.fresh("o")
	b.linef("  var %s: Box = new Box();", box)
	l1 := b.linef("  var %s: Socket = new Socket();", s1)
	l2 := b.linef("  var %s: Socket = new Socket();", s2)
	b.linef("  %s.sock = %s;", box, s1)
	b.linef("  %s.sock = %s;", box, s2)
	b.linef("  var %s: Socket = %s.sock;", o, box)
	b.linef("  %s.bind();", o)
	b.linef("  %s.close();", o)
	b.seed(l1, "Socket", "socket", "leak", false)
	b.seed(l2, "Socket", "socket", "leak", true)
}

func lockCollectionFP(b *builder) {
	box := b.fresh("box")
	l1 := b.fresh("l")
	o := b.fresh("o")
	b.linef("  var %s: Box = new Box();", box)
	line := b.linef("  var %s: Lock = new Lock();", l1)
	b.linef("  %s.lk = %s;", box, l1)
	b.linef("  var %s: Lock = %s.lk;", o, box)
	b.linef("  %s.lock();", o)
	b.linef("  %s.unlock();", o)
	b.seed(line, "Lock", "lock", "leak", true)
}

// excAliasedFP: the thrown-and-caught exception may alias an untracked
// error object through a conditional, so the throw/catch events get
// may-not-alias bypasses and a spurious Thrown-at-exit path survives. The
// code is correct (the exception is always caught); the analysis flags it —
// the same over-approximation family as the paper's nested-try FPs.
func excAliasedFP(b *builder) {
	e := b.fresh("e")
	c := b.fresh("c")
	x := b.fresh("x")
	line := b.linef("  var %s: Exception = new Exception();", e)
	b.linef("  var %s: int = input();", x)
	b.linef("  if (%s > 0) { %s = new RareError(); }", x, e)
	b.linef("  try {")
	b.linef("    throw %s;", e)
	b.linef("  } catch (%s) {", c)
	b.linef("    consume(%s);", x)
	b.linef("  }")
	b.seed(line, "Exception", "exception", "leak", true)
}

// filler emits plain integer computation (bulk + SMT work). The accumulator
// is sunk through consume so none of its stores are dead: the generated
// subjects stay lint-clean apart from the defects planted on purpose.
func filler(b *builder, n int) {
	if n <= 0 {
		return
	}
	v := b.fresh("acc")
	b.linef("  var %s: int = cfg;", v)
	for i := 0; i < n; i++ {
		switch b.rng.Intn(3) {
		case 0:
			b.linef("  %s = %s + %d;", v, v, b.rng.Intn(9)+1)
		case 1:
			b.linef("  %s = %s * 2 - %d;", v, v, b.rng.Intn(5))
		default:
			t := b.fresh("t")
			b.linef("  var %s: int = %s - %d;", t, v, b.rng.Intn(7))
			b.linef("  if (%s > %d) {", t, b.rng.Intn(20))
			b.linef("    %s = %s + 1;", v, v)
			b.linef("  }")
		}
	}
	b.linef("  consume(%s);", v)
}

// ---- lint-defect patterns (IR-level ground truth for `grapple lint`) ----

// lintDeadBranch plants a branch whose condition constant-folds, so one arm
// is unreachable (CF001/CF002). SCCP decides the branch; with pruning on the
// CFET never splits here, which is what the prune ablation measures.
func lintDeadBranch(b *builder) {
	d := b.fresh("db")
	base := b.rng.Intn(5) + 1
	if b.rng.Intn(2) == 0 {
		b.linef("  var %s: int = %d;", d, base)
		line := b.linef("  if (%s > %d) {", d, base+2)
		b.linef("    %s = %s + 1;", d, d)
		b.linef("  }")
		b.lintSeed(line, "CF002")
	} else {
		b.linef("  var %s: int = %d;", d, base+3)
		line := b.linef("  if (%s > %d) {", d, base)
		b.linef("    %s = %s + 1;", d, d)
		b.linef("  }")
		b.lintSeed(line, "CF001")
	}
	b.linef("  consume(%s);", d)
}

// lintUninitRead plants a read of a declared-but-never-initialized local
// (RD001 on the reading line).
func lintUninitRead(b *builder) {
	u := b.fresh("u")
	z := b.fresh("z")
	b.linef("  var %s: int;", u)
	line := b.linef("  var %s: int = %s + cfg;", z, u)
	b.lintSeed(line, "RD001")
	b.linef("  consume(%s);", z)
}

// lintDeadStore plants a store whose value is never read on any path
// (DS001 on the storing line).
func lintDeadStore(b *builder) {
	s := b.fresh("ds")
	line := b.linef("  var %s: int = cfg + %d;", s, b.rng.Intn(9)+1)
	b.lintSeed(line, "DS001")
}

// lintUnusedAlloc plants an allocation that is never used: no events, no
// stores, no escapes (UA001 on the allocation line). Box is FSM-free, so the
// typestate checkers are unaffected.
func lintUnusedAlloc(b *builder) {
	g := b.fresh("ua")
	line := b.linef("  var %s: Box = new Box();", g)
	b.lintSeed(line, "UA001")
}

// ---- interprocedural lint patterns (per-instance helper functions) ----

// sockLeakViaHelper converts a direct socket leak into an interprocedural
// one: a helper allocates, binds and returns a fresh socket, and the caller
// closes it on only one branch. It seeds the usual typestate leak at the
// helper's allocation line AND an LK001 lint defect at the call line.
func sockLeakViaHelper(b *builder) {
	h := b.fresh("openSock")
	s := b.fresh("s")
	x := b.fresh("x")
	line := b.linef("  var %s: Socket = %s();", s, h)
	b.lintSeed(line, "LK001")
	b.linef("  var %s: int = input();", x)
	b.linef("  if (%s > 0) {", x)
	b.linef("    %s.close();", s)
	b.linef("  }")
	b.helpers = append(b.helpers, func(b *builder) {
		hs := b.fresh("hs")
		b.linef("fun %s(): Socket {", h)
		alloc := b.linef("  var %s: Socket = new Socket();", hs)
		b.linef("  %s.bind();", hs)
		b.linef("  return %s;", hs)
		b.linef("}")
		b.linef("")
		b.seed(alloc, "Socket", "socket", "leak", false)
	})
}

// ioLeakViaHelper is the FileWriter variant of sockLeakViaHelper.
func ioLeakViaHelper(b *builder) {
	h := b.fresh("openLog")
	w := b.fresh("w")
	x := b.fresh("x")
	line := b.linef("  var %s: FileWriter = %s();", w, h)
	b.lintSeed(line, "LK001")
	b.linef("  var %s: int = input();", x)
	b.linef("  if (%s > 3) {", x)
	b.linef("    %s.close();", w)
	b.linef("  }")
	b.helpers = append(b.helpers, func(b *builder) {
		hw := b.fresh("hw")
		b.linef("fun %s(): FileWriter {", h)
		alloc := b.linef("  var %s: FileWriter = new FileWriter();", hw)
		b.linef("  %s.write();", hw)
		b.linef("  return %s;", hw)
		b.linef("}")
		b.linef("")
		b.seed(alloc, "FileWriter", "io", "leak", false)
	})
}

// ndNilReturn plants an unchecked dereference of a may-return-null helper:
// ND001 fires at the first dereference line. The pattern is
// typestate-neutral — on the path where the helper allocates, the writer is
// written and closed; on the null path no tracked object exists.
func ndNilReturn(b *builder) {
	h := b.fresh("findWriter")
	w := b.fresh("w")
	b.linef("  var %s: FileWriter = %s(cfg);", w, h)
	line := b.linef("  %s.write();", w)
	b.lintSeed(line, "ND001")
	b.linef("  %s.close();", w)
	b.helpers = append(b.helpers, func(b *builder) {
		hw := b.fresh("hw")
		b.linef("fun %s(sel: int): FileWriter {", h)
		b.linef("  var %s: FileWriter = null;", hw)
		b.linef("  if (sel > 3) {")
		b.linef("    %s = new FileWriter();", hw)
		b.linef("  }")
		b.linef("  return %s;", hw)
		b.linef("}")
		b.linef("")
	})
}

// dpDeadParam plants a helper with one never-read parameter: DP001 fires at
// the helper's declaration line.
func dpDeadParam(b *builder) {
	h := b.fresh("tune")
	t := b.fresh("t")
	b.linef("  var %s: int = %s(cfg, cfg);", t, h)
	b.linef("  consume(%s);", t)
	b.helpers = append(b.helpers, func(b *builder) {
		line := b.linef("fun %s(a: int, extra: int): int {", h)
		b.linef("  return a + 1;")
		b.linef("}")
		b.linef("")
		b.lintSeed(line, "DP001")
	})
}

// dpIgnoredResult plants a call whose object-typed result is discarded:
// DP001 fires at the call line. Box carries no FSM, so typestate checkers
// are unaffected.
func dpIgnoredResult(b *builder) {
	h := b.fresh("makeBox")
	line := b.linef("  %s();", h)
	b.lintSeed(line, "DP001")
	b.helpers = append(b.helpers, func(b *builder) {
		hb := b.fresh("hb")
		b.linef("fun %s(): Box {", h)
		b.linef("  var %s: Box = new Box();", hb)
		b.linef("  return %s;", hb)
		b.linef("}")
		b.linef("")
	})
}

// ---- concurrency lint patterns (spawned per-instance helper goroutines) ----

// grGoroutineLeakSock plants the GR001 shape: a socket allocated by the
// worker is handed to a spawned goroutine and neither side ever closes it.
// The spawner performs no events on the socket itself, so the pattern stays
// inert for GR002 even when another pattern puts a guard in scope. It seeds
// NO typestate entry: the site is goroutine-shared, so the checker's
// sharing widening must keep the leak report suppressed — any io/socket
// report here shows up as an unmatched FP in the evaluation.
func grGoroutineLeakSock(b *builder) {
	h := b.fresh("shipSock")
	s := b.fresh("s")
	b.linef("  var %s: Socket = new Socket();", s)
	line := b.linef("  spawn %s(%s);", h, s)
	b.lintSeed(line, "GR001")
	b.helpers = append(b.helpers, func(b *builder) {
		b.linef("fun %s(sk: Socket) {", h)
		b.linef("  sk.bind();")
		b.linef("  sk.accept();")
		b.linef("  return;")
		b.linef("}")
		b.linef("")
	})
}

// grGoroutineLeakIO is the FileWriter variant of grGoroutineLeakSock.
func grGoroutineLeakIO(b *builder) {
	h := b.fresh("shipLog")
	w := b.fresh("w")
	b.linef("  var %s: FileWriter = new FileWriter();", w)
	line := b.linef("  spawn %s(%s);", h, w)
	b.lintSeed(line, "GR001")
	b.helpers = append(b.helpers, func(b *builder) {
		b.linef("fun %s(lg: FileWriter) {", h)
		b.linef("  lg.write();")
		b.linef("  return;")
		b.linef("}")
		b.linef("")
	})
}

// grUnsyncShared plants the GR002 shape: a writer shared with a spawned
// goroutine gets one unguarded write (seeded) and one lock-protected flush
// (clean); the goroutine closes the writer, so GR001 stays silent (clean
// ownership transfer) and the sequential typestate walk ends in an
// accepting state. Every lock pattern in the generator releases its guard
// before returning, so the seeded write always sits in unguarded territory
// no matter how patterns are packed into a worker.
func grUnsyncShared(b *builder) {
	h := b.fresh("drainLog")
	l := b.fresh("l")
	w := b.fresh("w")
	b.linef("  var %s: Lock = new Lock();", l)
	b.linef("  var %s: FileWriter = new FileWriter();", w)
	line := b.linef("  %s.write();", w)
	b.lintSeed(line, "GR002")
	b.linef("  %s.lock();", l)
	b.linef("  %s.flush();", w)
	b.linef("  %s.unlock();", l)
	b.linef("  spawn %s(%s);", h, w)
	b.helpers = append(b.helpers, func(b *builder) {
		b.linef("fun %s(lg: FileWriter) {", h)
		b.linef("  lg.close();")
		b.linef("  return;")
		b.linef("}")
		b.linef("")
	})
}

// prelude emits the shared helpers every subject includes: a closing helper
// (interprocedural close) and a guarded thrower (exception-path workloads).
func prelude(b *builder) {
	b.linef("fun closeWriter(w: FileWriter) {")
	b.linef("  w.close();")
	b.linef("  return;")
	b.linef("}")
	b.linef("fun mayFail(n: int) {")
	b.linef("  if (n > 5) {")
	b.linef("    var ex: Exception = new Exception();")
	b.linef("    throw ex;")
	b.linef("  }")
	b.linef("  return;")
	b.linef("}")
	// consume is a branch-free, throw-free value sink: calling it keeps a
	// variable live without splitting any CFET path. It passes its argument
	// back out so the parameter is genuinely used (no DP001) and the ignored
	// int result stays idiomatic.
	b.linef("fun consume(n: int): int {")
	b.linef("  return n;")
	b.linef("}")
	b.linef("")
}
