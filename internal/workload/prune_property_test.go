package workload

import (
	"fmt"
	"sort"
	"testing"

	"github.com/grapple-system/grapple/internal/checker"
	"github.com/grapple-system/grapple/internal/fsm"
)

// propertyProfile is a small randomized profile: big enough to exercise
// every checker and the planted constant branches, small enough that the
// full pipeline runs twice per seed in test time.
func propertyProfile(seed int64) Profile {
	return Profile{
		Name: fmt.Sprintf("prop-%d", seed), Version: "prop",
		Description: "randomized prune-invariance subject",
		Seed:        seed, Services: 1, WorkersPerService: 3,
		IOTP: 1, IOFP: 0, LockTP: 1, LockFP: 0,
		ExcTP: 1, ExcFP: 1, SockTP: 1, SockFP: 0,
		CorrectPerBug: 1, FillerStmts: 2,
		LintDeadBranches: 2, LintUninitReads: 1,
		LintDeadStores: 1, LintUnusedAllocs: 1,
	}
}

// renderReports reduces a report list to a sorted, comparable form.
func renderReports(reports []checker.Report) []string {
	out := make([]string, 0, len(reports))
	for _, r := range reports {
		out = append(out, fmt.Sprintf("%d:%d [%s] %s %s state=%v",
			r.Pos.Line, r.Pos.Col, r.FSM, r.Kind, r.Type, r.States))
	}
	sort.Strings(out)
	return out
}

// TestPropertyPruningPreservesReports: on random workload programs, running
// the checker with constant-driven pruning on and off yields the same
// typestate report set, while the pruned run encodes strictly fewer CFET
// paths (each subject plants LintDeadBranches constant branch splits).
func TestPropertyPruningPreservesReports(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full pipeline twice per seed")
	}
	for _, seed := range []int64{7, 19, 23, 31} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			s := Generate(propertyProfile(seed))

			run := func(mode checker.PruneMode) *checker.Result {
				c := checker.New(fsm.Builtins(), checker.Options{
					WorkDir: t.TempDir(), Prune: mode,
				})
				res, err := c.CheckSource(s.Source)
				if err != nil {
					t.Fatalf("prune=%v: %v", mode, err)
				}
				return res
			}
			pruned := run(checker.PruneOn)
			unpruned := run(checker.PruneOff)

			got, want := renderReports(pruned.Reports), renderReports(unpruned.Reports)
			if len(got) != len(want) {
				t.Fatalf("report count differs: pruned %d vs unpruned %d\npruned: %v\nunpruned: %v",
					len(got), len(want), got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("report %d differs:\n  pruned:   %s\n  unpruned: %s",
						i, got[i], want[i])
				}
			}

			if pruned.Alias.PrunedBranches == 0 {
				t.Error("pruned run removed no branches despite planted constant branches")
			}
			if unpruned.Alias.PrunedBranches != 0 {
				t.Errorf("unpruned run reports %d pruned branches", unpruned.Alias.PrunedBranches)
			}
			if pruned.Alias.CFETPaths >= unpruned.Alias.CFETPaths {
				t.Errorf("pruning did not reduce encoded paths: %d (pruned) vs %d (unpruned)",
					pruned.Alias.CFETPaths, unpruned.Alias.CFETPaths)
			}
			t.Logf("paths: %d pruned vs %d unpruned (%d branch sites removed)",
				pruned.Alias.CFETPaths, unpruned.Alias.CFETPaths, pruned.Alias.PrunedBranches)
		})
	}
}
