package workload

import (
	"strings"
	"testing"

	"github.com/grapple-system/grapple/internal/checker"
	"github.com/grapple-system/grapple/internal/fsm"
	"github.com/grapple-system/grapple/internal/lang"
)

func TestGenerateParsesAndResolves(t *testing.T) {
	for _, p := range Profiles() {
		s := Generate(p)
		prog, err := lang.Parse(s.Source)
		if err != nil {
			t.Fatalf("%s: parse: %v", p.Name, err)
		}
		if _, err := lang.Resolve(prog); err != nil {
			t.Fatalf("%s: resolve: %v", p.Name, err)
		}
		if s.LoC < 100 {
			t.Errorf("%s: suspiciously small (%d lines)", p.Name, s.LoC)
		}
		if len(s.Seeded) == 0 {
			t.Errorf("%s: no ground truth", p.Name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ProfileByName("zookeeper-sim")
	a, b := Generate(p), Generate(p)
	if a.Source != b.Source {
		t.Fatal("generation must be deterministic")
	}
	if len(a.Seeded) != len(b.Seeded) {
		t.Fatal("ground truth must be deterministic")
	}
}

func TestSeedLinesPointAtAllocations(t *testing.T) {
	p, _ := ProfileByName("hdfs-sim")
	s := Generate(p)
	lines := strings.Split(s.Source, "\n")
	for _, sd := range s.Seeded {
		if sd.Line < 1 || sd.Line > len(lines) {
			t.Fatalf("seed line %d out of range", sd.Line)
		}
		text := lines[sd.Line-1]
		if !strings.Contains(text, "new "+sd.Type) && !strings.Contains(text, "= new") {
			t.Errorf("seed line %d is not an allocation: %q", sd.Line, text)
		}
	}
}

func TestRelativeSubjectSizes(t *testing.T) {
	// Table 1 shape: hbase-sim is the largest subject, zookeeper-sim the
	// smallest.
	sizes := map[string]int{}
	for _, p := range Profiles() {
		sizes[p.Name] = Generate(p).LoC
	}
	if !(sizes["hbase-sim"] > sizes["hadoop-sim"] && sizes["hadoop-sim"] > sizes["zookeeper-sim"]) {
		t.Fatalf("size ordering wrong: %v", sizes)
	}
}

func TestSeedPlanMatchesTable2(t *testing.T) {
	// The hbase profile must seed exactly its Table-2 exception TPs.
	p, _ := ProfileByName("hbase-sim")
	s := Generate(p)
	counts := map[string]int{}
	for _, sd := range s.Seeded {
		if !sd.ExpectFP {
			counts[sd.Checker]++
		}
	}
	if counts["exception"] != 176 {
		t.Fatalf("hbase-sim exception TP seeds = %d, want 176", counts["exception"])
	}
}

func TestEvaluateMatching(t *testing.T) {
	s := &Subject{
		Seeded: []Seeded{
			{Line: 10, Type: "FileWriter", Checker: "io", Kind: "leak"},
			{Line: 20, Type: "Socket", Checker: "socket", Kind: "leak", ExpectFP: true},
			{Line: 30, Type: "Lock", Checker: "lock", Kind: "error-transition"},
		},
	}
	reports := []checker.Report{
		{FSM: "io", Kind: checker.KindLeak, Pos: lang.Pos{Line: 10}},
		{FSM: "io", Kind: checker.KindLeak, Pos: lang.Pos{Line: 10}},     // clone dup
		{FSM: "socket", Kind: checker.KindLeak, Pos: lang.Pos{Line: 20}}, // expected FP
		{FSM: "io", Kind: checker.KindLeak, Pos: lang.Pos{Line: 99}},     // spurious
	}
	tally := Evaluate(s, reports)
	if c := tally.PerChecker["io"]; c.TP != 1 || c.FP != 1 {
		t.Fatalf("io counts: %+v", c)
	}
	if c := tally.PerChecker["socket"]; c.FP != 1 || c.TP != 0 {
		t.Fatalf("socket counts: %+v", c)
	}
	if c := tally.PerChecker["lock"]; c.FN != 1 {
		t.Fatalf("lock counts: %+v", c)
	}
	tot := tally.Totals()
	if tot.TP != 1 || tot.FP != 2 || tot.FN != 1 {
		t.Fatalf("totals: %+v", tot)
	}
	if len(tally.MissedSeeds) != 1 || len(tally.UnmatchedReports) != 1 {
		t.Fatalf("lists: %d missed, %d unmatched", len(tally.MissedSeeds), len(tally.UnmatchedReports))
	}
}

// TestZooKeeperSimEndToEnd runs the full pipeline on the smallest subject
// and sanity-checks precision against ground truth.
func TestZooKeeperSimEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full subject analysis")
	}
	p, _ := ProfileByName("zookeeper-sim")
	s := Generate(p)
	c := checker.New(fsm.Builtins(), checker.Options{WorkDir: t.TempDir()})
	res, err := c.CheckSource(s.Source)
	if err != nil {
		t.Fatal(err)
	}
	tally := Evaluate(s, res.Reports)
	tot := tally.Totals()
	t.Logf("zookeeper-sim: TP=%d FP=%d FN=%d (reports=%d, tracked=%d)",
		tot.TP, tot.FP, tot.FN, len(res.Reports), res.TrackedObjects)
	if tot.TP == 0 {
		t.Fatal("no true positives found")
	}
	seeds := 0
	for _, sd := range s.Seeded {
		if !sd.ExpectFP {
			seeds++
		}
	}
	if tot.FN > seeds/4 {
		t.Errorf("too many misses: %d of %d seeds (missed: %v)", tot.FN, seeds, tally.MissedSeeds)
	}
	if tot.FP > (tot.TP+tot.FP)/3 {
		t.Errorf("false-positive rate too high: %d FP vs %d TP (unmatched: %v)",
			tot.FP, tot.TP, tally.UnmatchedReports)
	}
}

// TestSubjectsFormatRoundTrip: every generated subject survives the
// format/re-parse round trip (exercises the printer on large inputs).
func TestSubjectsFormatRoundTrip(t *testing.T) {
	for _, p := range Profiles() {
		s := Generate(p)
		prog, err := lang.Parse(s.Source)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		text := lang.Format(prog)
		prog2, err := lang.Parse(text)
		if err != nil {
			t.Fatalf("%s: reparse: %v", p.Name, err)
		}
		if lang.Format(prog2) != text {
			t.Fatalf("%s: format not idempotent", p.Name)
		}
		if _, err := lang.Resolve(prog2); err != nil {
			t.Fatalf("%s: resolve: %v", p.Name, err)
		}
	}
}

// TestConcurrencySimEndToEnd runs the goroutine-heavy subject through the
// full checker. The profile's GR001 resources are never released by anyone,
// so the only thing standing between them and a spurious leak report is the
// checker's goroutine-sharing widening — the test therefore demands ZERO
// unmatched reports, not just a low FP rate, plus the usual seed recall.
func TestConcurrencySimEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full subject analysis")
	}
	p := ConcurrencyProfile()
	s := Generate(p)
	c := checker.New(fsm.Builtins(), checker.Options{WorkDir: t.TempDir()})
	res, err := c.CheckSource(s.Source)
	if err != nil {
		t.Fatal(err)
	}
	tally := Evaluate(s, res.Reports)
	tot := tally.Totals()
	t.Logf("concurrency-sim: TP=%d FP=%d FN=%d (reports=%d, tracked=%d)",
		tot.TP, tot.FP, tot.FN, len(res.Reports), res.TrackedObjects)
	if len(tally.UnmatchedReports) != 0 {
		t.Errorf("unmatched reports (goroutine-sharing widening leak?): %v",
			tally.UnmatchedReports)
	}
	if tot.TP == 0 {
		t.Fatal("no true positives found")
	}
	if tot.FN > 0 {
		t.Errorf("missed seeds: %v", tally.MissedSeeds)
	}
}
