package workload

import (
	"sort"

	"github.com/grapple-system/grapple/internal/checker"
)

// Counts is a TP/FP/FN tally for one checker (Table 2 cells).
type Counts struct {
	TP int
	FP int
	FN int
}

// Tally is the evaluation of one subject against its ground truth.
type Tally struct {
	// PerChecker maps checker name (io, lock, exception, socket) to counts.
	PerChecker map[string]Counts
	// UnmatchedReports lists warnings with no corresponding seed (all FPs).
	UnmatchedReports []checker.Report
	// MissedSeeds lists genuine seeded bugs the analysis did not find.
	MissedSeeds []Seeded
}

// Totals sums the per-checker counts.
func (t *Tally) Totals() Counts {
	var out Counts
	for _, c := range t.PerChecker {
		out.TP += c.TP
		out.FP += c.FP
		out.FN += c.FN
	}
	return out
}

// Evaluate matches analysis reports against the subject's seeded ground
// truth: a report matches a seed when it points at the seed's allocation
// line with the seed's checker and kind. Matched genuine seeds are TPs;
// matched ExpectFP seeds and unmatched reports are FPs; unmatched genuine
// seeds are FNs (the paper's methodology, with generated ground truth
// replacing the authors' manual inspection).
func Evaluate(s *Subject, reports []checker.Report) *Tally {
	t := &Tally{PerChecker: map[string]Counts{}}
	for _, name := range []string{"io", "lock", "exception", "socket"} {
		t.PerChecker[name] = Counts{}
	}
	type seedKey struct {
		line    int
		checker string
		kind    string
	}
	remaining := map[seedKey][]int{} // seed indices, FIFO
	fpLines := map[seedKey]int{}     // ExpectFP seeds match any kind
	for i, sd := range s.Seeded {
		if sd.ExpectFP {
			fpLines[seedKey{line: sd.Line, checker: sd.Checker}] = i
			continue
		}
		k := seedKey{line: sd.Line, checker: sd.Checker, kind: sd.Kind}
		remaining[k] = append(remaining[k], i)
	}
	matched := make([]bool, len(s.Seeded))

	// Deduplicate reports by (line, fsm, kind): clones of the same source
	// site are one warning for a human reviewer.
	seenRep := map[seedKey]bool{}
	var dedup []checker.Report
	for _, r := range reports {
		k := seedKey{line: r.Pos.Line, checker: r.FSM, kind: r.Kind.String()}
		if seenRep[k] {
			continue
		}
		seenRep[k] = true
		dedup = append(dedup, r)
	}
	sort.Slice(dedup, func(i, j int) bool { return dedup[i].Pos.Line < dedup[j].Pos.Line })

	bump := func(name string, f func(*Counts)) {
		c := t.PerChecker[name]
		f(&c)
		t.PerChecker[name] = c
	}
	for _, r := range dedup {
		k := seedKey{line: r.Pos.Line, checker: r.FSM, kind: r.Kind.String()}
		if idxs := remaining[k]; len(idxs) > 0 {
			i := idxs[0]
			remaining[k] = idxs[1:]
			matched[i] = true
			bump(r.FSM, func(c *Counts) { c.TP++ })
			continue
		}
		if i, ok := fpLines[seedKey{line: r.Pos.Line, checker: r.FSM}]; ok {
			// Expected FP: counted once per seeded line no matter how many
			// warning kinds the line produced.
			if !matched[i] {
				matched[i] = true
				bump(r.FSM, func(c *Counts) { c.FP++ })
			}
			continue
		}
		bump(r.FSM, func(c *Counts) { c.FP++ })
		t.UnmatchedReports = append(t.UnmatchedReports, r)
	}
	for i, sd := range s.Seeded {
		if !matched[i] && !sd.ExpectFP {
			bump(sd.Checker, func(c *Counts) { c.FN++ })
			t.MissedSeeds = append(t.MissedSeeds, sd)
		}
	}
	return t
}
