// Package constraint defines the boolean path constraints Grapple attaches
// to graph edges (paper §3). A path constraint is a conjunction of atoms,
// each comparing a linear symbolic expression against zero. The engine never
// needs disjunction: disjunctive structure lives in the CFET, and each
// decoded path yields a pure conjunction (§3.2).
package constraint

import (
	"strings"

	"github.com/grapple-system/grapple/internal/symbolic"
)

// Op is a comparison operator. Every atom is normalized to "LHS Op 0".
type Op uint8

// Comparison operators for Atom.
const (
	EQ Op = iota // LHS == 0
	NE           // LHS != 0
	LE           // LHS <= 0
	LT           // LHS <  0
	GE           // LHS >= 0
	GT           // LHS >  0
)

var opNames = [...]string{EQ: "==", NE: "!=", LE: "<=", LT: "<", GE: ">=", GT: ">"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "?"
}

// Negate returns the operator of the complementary comparison.
func (o Op) Negate() Op {
	switch o {
	case EQ:
		return NE
	case NE:
		return EQ
	case LE:
		return GT
	case LT:
		return GE
	case GE:
		return LT
	default: // GT
		return LE
	}
}

// Atom is a single comparison LHS Op 0 over a linear expression.
type Atom struct {
	LHS symbolic.Expr
	Op  Op
}

// NewAtom builds the atom "l op r" normalized to "l-r op 0".
func NewAtom(l symbolic.Expr, op Op, r symbolic.Expr) Atom {
	return Atom{LHS: l.Sub(r), Op: op}
}

// True is an atom that always holds (0 == 0).
func True() Atom { return Atom{Op: EQ} }

// IsTrivialTrue reports whether a is a constant atom that holds.
func (a Atom) IsTrivialTrue() bool {
	return a.LHS.IsConst() && evalConst(a.LHS.Const, a.Op)
}

// IsTrivialFalse reports whether a is a constant atom that cannot hold.
func (a Atom) IsTrivialFalse() bool {
	return a.LHS.IsConst() && !evalConst(a.LHS.Const, a.Op)
}

func evalConst(c int64, op Op) bool {
	switch op {
	case EQ:
		return c == 0
	case NE:
		return c != 0
	case LE:
		return c <= 0
	case LT:
		return c < 0
	case GE:
		return c >= 0
	default: // GT
		return c > 0
	}
}

// Negate returns the complement of a.
func (a Atom) Negate() Atom { return Atom{LHS: a.LHS, Op: a.Op.Negate()} }

// Subst substitutes sym by r in the atom.
func (a Atom) Subst(sym symbolic.Sym, r symbolic.Expr) Atom {
	return Atom{LHS: a.LHS.Subst(sym, r), Op: a.Op}
}

// String renders the atom against a symbol table.
func (a Atom) String(t *symbolic.Table) string {
	return a.LHS.String(t) + " " + a.Op.String() + " 0"
}

// Key returns a canonical memoization key for the atom.
func (a Atom) Key() string { return a.LHS.Key() + string('0'+byte(a.Op)) }

// Conj is a conjunction of atoms; the empty conjunction is "true".
type Conj []Atom

// And returns c with a appended (trivially-true atoms are dropped).
func (c Conj) And(a Atom) Conj {
	if a.IsTrivialTrue() {
		return c
	}
	return append(c, a)
}

// AndAll conjoins all atoms of o onto c.
func (c Conj) AndAll(o Conj) Conj {
	for _, a := range o {
		c = c.And(a)
	}
	return c
}

// HasTrivialFalse reports whether any atom is constant-false, which makes
// the whole conjunction unsatisfiable without consulting the solver.
func (c Conj) HasTrivialFalse() bool {
	for _, a := range c {
		if a.IsTrivialFalse() {
			return true
		}
	}
	return false
}

// String renders the conjunction, "true" when empty.
func (c Conj) String(t *symbolic.Table) string {
	if len(c) == 0 {
		return "true"
	}
	parts := make([]string, len(c))
	for i, a := range c {
		parts[i] = a.String(t)
	}
	return strings.Join(parts, " && ")
}

// Key returns a canonical memoization key. Atoms are order-sensitive by
// design: the solver result does not depend on order, but callers that want
// order-insensitive keys should sort first via Canon.
func (c Conj) Key() string {
	var b strings.Builder
	for _, a := range c {
		b.WriteString(a.Key())
		b.WriteByte(';')
	}
	return b.String()
}

// Canon returns a copy of c with duplicate atoms removed and atoms sorted by
// key, so that logically identical conjunctions share one memoization entry.
func (c Conj) Canon() Conj {
	if len(c) <= 1 {
		return c
	}
	keys := make([]string, len(c))
	for i, a := range c {
		keys[i] = a.Key()
	}
	idx := make([]int, len(c))
	for i := range idx {
		idx[i] = i
	}
	// insertion sort by key; conjunctions are short
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && keys[idx[j]] < keys[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	out := make(Conj, 0, len(c))
	prev := ""
	for _, i := range idx {
		if keys[i] != prev {
			out = append(out, c[i])
			prev = keys[i]
		}
	}
	return out
}
