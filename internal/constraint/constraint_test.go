package constraint

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/grapple-system/grapple/internal/symbolic"
)

func TestOpNegate(t *testing.T) {
	pairs := [][2]Op{{EQ, NE}, {LE, GT}, {LT, GE}}
	for _, p := range pairs {
		if p[0].Negate() != p[1] || p[1].Negate() != p[0] {
			t.Errorf("%v and %v must be complements", p[0], p[1])
		}
	}
	for _, op := range []Op{EQ, NE, LE, LT, GE, GT} {
		if op.Negate().Negate() != op {
			t.Errorf("double negation of %v", op)
		}
	}
}

func evalAtom(a Atom, env map[symbolic.Sym]int64) bool {
	v := a.LHS.Const
	for _, term := range a.LHS.Terms {
		v += term.Coeff * env[term.Sym]
	}
	switch a.Op {
	case EQ:
		return v == 0
	case NE:
		return v != 0
	case LE:
		return v <= 0
	case LT:
		return v < 0
	case GE:
		return v >= 0
	default:
		return v > 0
	}
}

// TestPropertyNegateComplements: for every assignment, an atom and its
// negation disagree.
func TestPropertyNegateComplements(t *testing.T) {
	tab := symbolic.NewTable()
	syms := []symbolic.Sym{tab.Intern("a"), tab.Intern("b")}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := symbolic.Const(int64(rng.Intn(7) - 3))
		for _, s := range syms {
			e = e.Add(symbolic.Var(s).Scale(int64(rng.Intn(5) - 2)))
		}
		a := Atom{LHS: e, Op: Op(rng.Intn(6))}
		env := map[symbolic.Sym]int64{}
		for _, s := range syms {
			env[s] = int64(rng.Intn(9) - 4)
		}
		return evalAtom(a, env) != evalAtom(a.Negate(), env)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrivialClassification(t *testing.T) {
	tab := symbolic.NewTable()
	x := symbolic.Var(tab.Intern("x"))
	cases := []struct {
		a             Atom
		trueV, falseV bool
	}{
		{True(), true, false},
		{NewAtom(symbolic.Const(1), GT, symbolic.Const(0)), true, false},
		{NewAtom(symbolic.Const(0), GT, symbolic.Const(1)), false, true},
		{NewAtom(x, GT, symbolic.Const(0)), false, false},
		{Atom{LHS: symbolic.Const(-1), Op: NE}, true, false},
		{Atom{LHS: symbolic.Const(0), Op: NE}, false, true},
	}
	for i, tc := range cases {
		if tc.a.IsTrivialTrue() != tc.trueV || tc.a.IsTrivialFalse() != tc.falseV {
			t.Errorf("case %d: %s -> (%v,%v)", i, tc.a.String(tab),
				tc.a.IsTrivialTrue(), tc.a.IsTrivialFalse())
		}
	}
}

func TestConjAndDropsTrivialTrue(t *testing.T) {
	tab := symbolic.NewTable()
	x := symbolic.Var(tab.Intern("x"))
	var c Conj
	c = c.And(True())
	if len(c) != 0 {
		t.Fatal("trivially-true atom must be dropped")
	}
	c = c.And(NewAtom(x, GE, symbolic.Const(0)))
	if len(c) != 1 {
		t.Fatal("real atom must be kept")
	}
	c2 := c.AndAll(Conj{True(), NewAtom(x, LT, symbolic.Const(10))})
	if len(c2) != 2 {
		t.Fatalf("AndAll: %d atoms", len(c2))
	}
}

func TestHasTrivialFalse(t *testing.T) {
	c := Conj{Atom{LHS: symbolic.Const(1), Op: EQ}}
	if !c.HasTrivialFalse() {
		t.Fatal("1 == 0 is trivially false")
	}
	if (Conj{}).HasTrivialFalse() {
		t.Fatal("empty conjunction is true")
	}
}

func TestSubst(t *testing.T) {
	tab := symbolic.NewTable()
	xs := tab.Intern("x")
	x, y := symbolic.Var(xs), symbolic.Var(tab.Intern("y"))
	a := NewAtom(x.Scale(2), LE, y) // 2x - y <= 0
	got := a.Subst(xs, y.Add(symbolic.Const(1)))
	// 2(y+1) - y = y + 2 <= 0
	want := Atom{LHS: y.Add(symbolic.Const(2)), Op: LE}
	if got.Op != want.Op || !got.LHS.Equal(want.LHS) {
		t.Fatalf("got %s", got.String(tab))
	}
}

func TestCanonDedupes(t *testing.T) {
	tab := symbolic.NewTable()
	x := symbolic.Var(tab.Intern("x"))
	a := NewAtom(x, GE, symbolic.Const(0))
	c := Conj{a, a, a}
	if got := c.Canon(); len(got) != 1 {
		t.Fatalf("canon kept %d duplicates", len(got))
	}
}

func TestStringRendering(t *testing.T) {
	tab := symbolic.NewTable()
	x := symbolic.Var(tab.Intern("x"))
	if got := (Conj{}).String(tab); got != "true" {
		t.Fatalf("empty conj renders %q", got)
	}
	c := Conj{NewAtom(x, GT, symbolic.Const(3))}
	if got := c.String(tab); got != "x - 3 > 0" {
		t.Fatalf("rendered %q", got)
	}
}
