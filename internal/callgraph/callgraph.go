// Package callgraph builds the static call graph of a lowered program,
// identifies strongly connected components (recursion) with Tarjan's
// algorithm, and produces the orders the rest of Grapple needs: a bottom-up
// (reverse-topological) order over SCCs for callee-graph cloning (paper
// §2.1 "Graph Cloning for Context Sensitivity") and the recursion groups
// that are collapsed and treated context-insensitively (§2.1, §3.3).
package callgraph

import (
	"sort"

	"github.com/grapple-system/grapple/internal/ir"
)

// Graph is the call graph of a program.
type Graph struct {
	Prog *ir.Program
	// Callees maps a function name to its (deduplicated, sorted) callees.
	Callees map[string][]string
	// Callers is the reverse relation.
	Callers map[string][]string
	// CallSites maps a function name to the Call statements in its body.
	CallSites map[string][]*ir.Call
	// SpawnSites maps a function name to the spawn-marked Call statements
	// in its body (lowered `go` statements). SpawnSites[f] ⊆ CallSites[f].
	SpawnSites map[string][]*ir.Call

	// SCCs lists strongly connected components; each is a sorted name list.
	SCCs [][]string
	// SCCIndex maps a function name to its index in SCCs.
	SCCIndex map[string]int
	// BottomUp lists SCC indices callees-first: every callee's SCC appears
	// before (or with, if recursive) its callers'.
	BottomUp []int
}

// Build constructs the call graph and its SCC condensation.
func Build(p *ir.Program) *Graph {
	g := &Graph{
		Prog:       p,
		Callees:    map[string][]string{},
		Callers:    map[string][]string{},
		CallSites:  map[string][]*ir.Call{},
		SpawnSites: map[string][]*ir.Call{},
		SCCIndex:   map[string]int{},
	}
	for _, fn := range p.Funs {
		seen := map[string]bool{}
		collectCalls(fn.Body, func(c *ir.Call) {
			g.CallSites[fn.Name] = append(g.CallSites[fn.Name], c)
			if c.Spawn {
				g.SpawnSites[fn.Name] = append(g.SpawnSites[fn.Name], c)
			}
			if !seen[c.Callee] {
				seen[c.Callee] = true
				g.Callees[fn.Name] = append(g.Callees[fn.Name], c.Callee)
			}
		})
		sort.Strings(g.Callees[fn.Name])
	}
	for caller, callees := range g.Callees {
		for _, callee := range callees {
			g.Callers[callee] = append(g.Callers[callee], caller)
		}
	}
	for _, callers := range g.Callers {
		sort.Strings(callers)
	}
	g.tarjan()
	return g
}

func collectCalls(b *ir.Block, f func(*ir.Call)) {
	for _, s := range b.Stmts {
		switch s := s.(type) {
		case *ir.Call:
			f(s)
		case *ir.If:
			collectCalls(s.Then, f)
			collectCalls(s.Else, f)
		case *ir.TryRegion:
			collectCalls(s.Body, f)
			collectCalls(s.Catch, f)
		}
	}
}

// tarjan computes SCCs iteratively (systems code can have deep call chains;
// no recursion on the Go stack). Tarjan emits SCCs callees-first, which is
// exactly the bottom-up order cloning needs.
func (g *Graph) tarjan() {
	type frame struct {
		name string
		ci   int // next callee index
	}
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	counter := 0

	var names []string
	for _, fn := range g.Prog.Funs {
		names = append(names, fn.Name)
	}

	for _, root := range names {
		if _, visited := index[root]; visited {
			continue
		}
		frames := []frame{{name: root}}
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			callees := g.Callees[f.name]
			advanced := false
			for f.ci < len(callees) {
				callee := callees[f.ci]
				f.ci++
				if g.Prog.FunByName[callee] == nil {
					continue // call to undeclared function; frontend rejects, be safe
				}
				if _, seen := index[callee]; !seen {
					index[callee] = counter
					low[callee] = counter
					counter++
					stack = append(stack, callee)
					onStack[callee] = true
					frames = append(frames, frame{name: callee})
					advanced = true
					break
				}
				if onStack[callee] && low[f.name] > index[callee] {
					low[f.name] = index[callee]
				}
			}
			if advanced {
				continue
			}
			// Post-visit.
			if low[f.name] == index[f.name] {
				var scc []string
				for {
					n := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[n] = false
					scc = append(scc, n)
					if n == f.name {
						break
					}
				}
				sort.Strings(scc)
				id := len(g.SCCs)
				g.SCCs = append(g.SCCs, scc)
				for _, n := range scc {
					g.SCCIndex[n] = id
				}
				g.BottomUp = append(g.BottomUp, id)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[parent.name] > low[f.name] {
					low[parent.name] = low[f.name]
				}
			}
		}
	}
}

// BottomUpNames flattens the SCC condensation into one callees-first
// function order: every callee appears before its callers, and the members
// of a recursion group appear adjacently (sorted within the group). This is
// the evaluation order for summary-based interprocedural analyses — by the
// time a function is visited, all of its non-recursive callees have been.
func (g *Graph) BottomUpNames() []string {
	out := make([]string, 0, len(g.Prog.Funs))
	for _, id := range g.BottomUp {
		out = append(out, g.SCCs[id]...)
	}
	return out
}

// SCCOf returns the sorted members of name's strongly connected component;
// a non-recursive function is alone in its component. Unknown names return
// nil.
func (g *Graph) SCCOf(name string) []string {
	id, ok := g.SCCIndex[name]
	if !ok {
		return nil
	}
	return g.SCCs[id]
}

// IsRecursive reports whether name participates in recursion (its SCC has
// more than one member, or it calls itself).
func (g *Graph) IsRecursive(name string) bool {
	scc := g.SCCs[g.SCCIndex[name]]
	if len(scc) > 1 {
		return true
	}
	for _, c := range g.Callees[name] {
		if c == name {
			return true
		}
	}
	return false
}

// Roots returns functions never called by another function (entry points),
// sorted. A program whose every function is called still analyzes "main"
// first if present.
func (g *Graph) Roots() []string {
	var roots []string
	for _, fn := range g.Prog.Funs {
		if len(g.Callers[fn.Name]) == 0 {
			roots = append(roots, fn.Name)
		}
	}
	if len(roots) == 0 {
		if g.Prog.FunByName["main"] != nil {
			roots = []string{"main"}
		}
	}
	sort.Strings(roots)
	return roots
}

// Reachable returns the set of functions reachable from the given roots.
func (g *Graph) Reachable(roots []string) map[string]bool {
	seen := map[string]bool{}
	work := append([]string(nil), roots...)
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[n] || g.Prog.FunByName[n] == nil {
			continue
		}
		seen[n] = true
		work = append(work, g.Callees[n]...)
	}
	return seen
}
