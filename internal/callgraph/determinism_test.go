package callgraph

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// render serializes the parts of a Graph that downstream consumers key
// decisions on (clone order, summary order) into one comparable string.
func render(g *Graph) string {
	var b strings.Builder
	var names []string
	for _, fn := range g.Prog.Funs {
		names = append(names, fn.Name)
	}
	for _, n := range names {
		fmt.Fprintf(&b, "callees[%s]=%v\n", n, g.Callees[n])
		fmt.Fprintf(&b, "callers[%s]=%v\n", n, g.Callers[n])
	}
	fmt.Fprintf(&b, "sccs=%v\n", g.SCCs)
	fmt.Fprintf(&b, "bottomup=%v\n", g.BottomUp)
	fmt.Fprintf(&b, "bottomupnames=%v\n", g.BottomUpNames())
	fmt.Fprintf(&b, "roots=%v\n", g.Roots())
	return b.String()
}

// TestBuildDeterministicGolden pins the full observable output of Build on a
// program mixing recursion, shared helpers, and unreachable code: two
// independent builds must be byte-identical (the suite runs under
// -shuffle=on, so map-ordering leaks would surface as flakes here), and the
// output must match the golden rendering exactly.
func TestBuildDeterministicGolden(t *testing.T) {
	const src = `
fun leaf() { return; }
fun pong(n: int) { if (n > 0) { ping(n - 1); } leaf(); return; }
fun ping(n: int) { if (n > 0) { pong(n - 1); } return; }
fun solo(n: int): int { if (n > 3) { return solo(n - 1); } return n; }
fun orphan() { leaf(); return; }
fun main() { ping(2); solo(9); return; }
`
	a := build(t, src)
	b := build(t, src)
	ra, rb := render(a), render(b)
	if ra != rb {
		t.Fatalf("two builds differ:\n--- first ---\n%s\n--- second ---\n%s", ra, rb)
	}
	const golden = `callees[leaf]=[]
callers[leaf]=[orphan pong]
callees[pong]=[leaf ping]
callers[pong]=[ping]
callees[ping]=[pong]
callers[ping]=[main pong]
callees[solo]=[solo]
callers[solo]=[main solo]
callees[orphan]=[leaf]
callers[orphan]=[]
callees[main]=[ping solo]
callers[main]=[]
sccs=[[leaf] [ping pong] [solo] [orphan] [main]]
bottomup=[0 1 2 3 4]
bottomupnames=[leaf ping pong solo orphan main]
roots=[main orphan]
`
	if ra != golden {
		t.Fatalf("golden mismatch:\n--- got ---\n%s--- want ---\n%s", ra, golden)
	}
}

// TestFieldMediatedMutualRecursionSCC is the shape the points-to pass must
// get right: two methods that recurse into each other only through objects
// loaded from fields. The calls are still direct in MiniLang, but the
// receivers flow through stores and loads, so the SCC must survive the
// lowering of field traffic around the call sites.
func TestFieldMediatedMutualRecursionSCC(t *testing.T) {
	g := build(t, `
type Node;
fun walkLeft(n: int) {
  var box: Node = new Node();
  var next: Node = new Node();
  box.peer = next;
  var cur: Node = box.peer;
  cur.visit();
  if (n > 0) {
    walkRight(n - 1);
  }
  return;
}
fun walkRight(n: int) {
  var box: Node = new Node();
  var cur: Node = box.peer;
  if (n > 1) {
    walkLeft(n - 2);
  }
  return;
}
fun main() { walkLeft(5); return; }
`)
	if g.SCCIndex["walkLeft"] != g.SCCIndex["walkRight"] {
		t.Fatalf("walkLeft/walkRight must share an SCC: %v", g.SCCs)
	}
	if got := g.SCCOf("walkLeft"); !reflect.DeepEqual(got, []string{"walkLeft", "walkRight"}) {
		t.Fatalf("SCCOf(walkLeft) = %v", got)
	}
	if !g.IsRecursive("walkRight") {
		t.Fatal("walkRight must be recursive")
	}
	// Bottom-up names: the recursion group is adjacent and precedes main.
	names := g.BottomUpNames()
	idx := map[string]int{}
	for i, n := range names {
		idx[n] = i
	}
	if !(idx["walkLeft"]+1 == idx["walkRight"] && idx["walkRight"] < idx["main"]) {
		t.Fatalf("bottom-up names wrong: %v", names)
	}
	if g.SCCOf("nosuch") != nil {
		t.Fatal("SCCOf on unknown name must be nil")
	}
}
