package callgraph

import (
	"testing"

	"github.com/grapple-system/grapple/internal/ir"
	"github.com/grapple-system/grapple/internal/lang"
)

func build(t *testing.T, src string) *Graph {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := lang.Resolve(prog)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Lower(info, ir.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return Build(p)
}

func TestLinearChain(t *testing.T) {
	g := build(t, `
fun c() { return; }
fun b() { c(); return; }
fun a() { b(); return; }
fun main() { a(); return; }
`)
	if len(g.SCCs) != 4 {
		t.Fatalf("SCCs = %v", g.SCCs)
	}
	// Bottom-up: c before b before a before main.
	pos := map[string]int{}
	for i, id := range g.BottomUp {
		for _, n := range g.SCCs[id] {
			pos[n] = i
		}
	}
	if !(pos["c"] < pos["b"] && pos["b"] < pos["a"] && pos["a"] < pos["main"]) {
		t.Fatalf("bottom-up order wrong: %v", pos)
	}
	if got := g.Roots(); len(got) != 1 || got[0] != "main" {
		t.Fatalf("roots = %v", got)
	}
}

func TestMutualRecursionSCC(t *testing.T) {
	g := build(t, `
fun even(n: int): int { if (n > 0) { return odd(n - 1); } return 1; }
fun odd(n: int): int { if (n > 0) { return even(n - 1); } return 0; }
fun main() { even(4); return; }
`)
	if g.SCCIndex["even"] != g.SCCIndex["odd"] {
		t.Fatal("even and odd must share an SCC")
	}
	if !g.IsRecursive("even") || !g.IsRecursive("odd") {
		t.Fatal("recursion not detected")
	}
	if g.IsRecursive("main") {
		t.Fatal("main is not recursive")
	}
}

func TestSelfRecursion(t *testing.T) {
	g := build(t, `
fun f(n: int): int { if (n > 0) { return f(n - 1); } return 0; }
fun main() { f(3); return; }
`)
	if !g.IsRecursive("f") {
		t.Fatal("self recursion not detected")
	}
	scc := g.SCCs[g.SCCIndex["f"]]
	if len(scc) != 1 || scc[0] != "f" {
		t.Fatalf("scc = %v", scc)
	}
}

func TestDiamond(t *testing.T) {
	g := build(t, `
fun d() { return; }
fun b() { d(); return; }
fun c() { d(); return; }
fun main() { b(); c(); return; }
`)
	reach := g.Reachable([]string{"main"})
	for _, n := range []string{"main", "b", "c", "d"} {
		if !reach[n] {
			t.Errorf("%s unreachable", n)
		}
	}
	if len(g.Callers["d"]) != 2 {
		t.Fatalf("callers of d = %v", g.Callers["d"])
	}
	// d's SCC must come before b's and c's bottom-up.
	pos := map[string]int{}
	for i, id := range g.BottomUp {
		for _, n := range g.SCCs[id] {
			pos[n] = i
		}
	}
	if !(pos["d"] < pos["b"] && pos["d"] < pos["c"]) {
		t.Fatalf("bottom-up order wrong: %v", pos)
	}
}

func TestUnreachableFunction(t *testing.T) {
	g := build(t, `
fun orphan() { return; }
fun main() { return; }
`)
	reach := g.Reachable([]string{"main"})
	if reach["orphan"] {
		t.Fatal("orphan should be unreachable from main")
	}
	roots := g.Roots()
	if len(roots) != 2 { // both main and orphan are uncalled
		t.Fatalf("roots = %v", roots)
	}
}

func TestCallSitesCollected(t *testing.T) {
	g := build(t, `
fun f() { return; }
fun main() {
  f();
  if (input() > 0) {
    f();
  }
  return;
}
`)
	if len(g.CallSites["main"]) != 2 {
		t.Fatalf("call sites in main = %d", len(g.CallSites["main"]))
	}
}
