package symbolic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTableIntern(t *testing.T) {
	tab := NewTable()
	a := tab.Intern("a")
	b := tab.Intern("b")
	if a == b {
		t.Fatal("distinct names must get distinct syms")
	}
	if tab.Intern("a") != a {
		t.Fatal("intern must be stable")
	}
	if tab.Name(a) != "a" || tab.Name(b) != "b" {
		t.Fatal("names must round-trip")
	}
	if tab.Len() != 2 {
		t.Fatalf("len = %d", tab.Len())
	}
}

func TestFreshDistinct(t *testing.T) {
	tab := NewTable()
	seen := map[Sym]bool{}
	for i := 0; i < 100; i++ {
		s := tab.Fresh("t")
		if seen[s] {
			t.Fatal("fresh symbol collided")
		}
		seen[s] = true
	}
}

func TestArithmetic(t *testing.T) {
	tab := NewTable()
	x := Var(tab.Intern("x"))
	y := Var(tab.Intern("y"))

	e := x.Add(y).Add(Const(3)) // x + y + 3
	e = e.Sub(x)                // y + 3
	if got := e.Coeff(tab.Intern("x")); got != 0 {
		t.Fatalf("x coeff = %d", got)
	}
	if got := e.Coeff(tab.Intern("y")); got != 1 {
		t.Fatalf("y coeff = %d", got)
	}
	if e.Const != 3 {
		t.Fatalf("const = %d", e.Const)
	}

	z := e.Scale(2) // 2y + 6
	if z.Coeff(tab.Intern("y")) != 2 || z.Const != 6 {
		t.Fatalf("scale wrong: %v", z)
	}
	if !z.Neg().Add(z).Equal(Expr{}) {
		t.Fatal("e + (-e) must be zero")
	}
}

func TestSubst(t *testing.T) {
	tab := NewTable()
	xs, ys := tab.Intern("x"), tab.Intern("y")
	x, y := Var(xs), Var(ys)

	// (2x + y + 1)[x := y - 2] = 3y - 3
	e := x.Scale(2).Add(y).Add(Const(1))
	got := e.Subst(xs, y.Sub(Const(2)))
	want := y.Scale(3).Sub(Const(3))
	if !got.Equal(want) {
		t.Fatalf("got %s want %s", got.String(tab), want.String(tab))
	}
	// Substituting an absent symbol is identity.
	if !e.Subst(tab.Intern("zz"), Const(9)).Equal(e) {
		t.Fatal("subst of absent sym must be identity")
	}
}

func TestStringRendering(t *testing.T) {
	tab := NewTable()
	x := Var(tab.Intern("x"))
	y := Var(tab.Intern("y"))
	cases := []struct {
		e    Expr
		want string
	}{
		{Const(0), "0"},
		{Const(-4), "-4"},
		{x, "x"},
		{x.Neg(), "-x"},
		{x.Scale(2).Sub(y).Add(Const(3)), "2*x - y + 3"},
		{x.Sub(Const(1)), "x - 1"},
	}
	for _, tc := range cases {
		if got := tc.e.String(tab); got != tc.want {
			t.Errorf("got %q want %q", got, tc.want)
		}
	}
}

// eval evaluates e under env (absent syms are zero).
func eval(e Expr, env map[Sym]int64) int64 {
	v := e.Const
	for _, t := range e.Terms {
		v += t.Coeff * env[t.Sym]
	}
	return v
}

func randExpr(rng *rand.Rand, syms []Sym) Expr {
	e := Const(int64(rng.Intn(11) - 5))
	for _, s := range syms {
		if rng.Intn(2) == 0 {
			e = e.Add(Var(s).Scale(int64(rng.Intn(7) - 3)))
		}
	}
	return e
}

func TestPropertyAddCommutes(t *testing.T) {
	tab := NewTable()
	syms := []Sym{tab.Intern("a"), tab.Intern("b"), tab.Intern("c")}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1, e2 := randExpr(rng, syms), randExpr(rng, syms)
		return e1.Add(e2).Equal(e2.Add(e1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEvalHomomorphic(t *testing.T) {
	// eval(e1+e2) == eval(e1)+eval(e2), eval(k*e) == k*eval(e),
	// eval(subst) == eval under updated env.
	tab := NewTable()
	syms := []Sym{tab.Intern("a"), tab.Intern("b"), tab.Intern("c")}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := map[Sym]int64{}
		for _, s := range syms {
			env[s] = int64(rng.Intn(9) - 4)
		}
		e1, e2 := randExpr(rng, syms), randExpr(rng, syms)
		k := int64(rng.Intn(7) - 3)
		if eval(e1.Add(e2), env) != eval(e1, env)+eval(e2, env) {
			return false
		}
		if eval(e1.Scale(k), env) != k*eval(e1, env) {
			return false
		}
		// Substitution semantics.
		target := syms[rng.Intn(len(syms))]
		repl := randExpr(rng, syms[:2])
		if repl.Coeff(target) != 0 { // avoid self-reference in the check
			return true
		}
		subEnv := map[Sym]int64{}
		for k2, v := range env {
			subEnv[k2] = v
		}
		subEnv[target] = eval(repl, env)
		return eval(e1.Subst(target, repl), env) == eval(e1, subEnv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyKeyCanonical(t *testing.T) {
	// Structurally equal exprs must have equal keys; sums built in different
	// orders are structurally equal.
	tab := NewTable()
	syms := []Sym{tab.Intern("a"), tab.Intern("b"), tab.Intern("c"), tab.Intern("d")}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		parts := make([]Expr, 4)
		for i := range parts {
			parts[i] = randExpr(rng, syms)
		}
		fwd := Expr{}
		for _, p := range parts {
			fwd = fwd.Add(p)
		}
		rev := Expr{}
		for i := len(parts) - 1; i >= 0; i-- {
			rev = rev.Add(parts[i])
		}
		return fwd.Equal(rev) && fwd.Key() == rev.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
