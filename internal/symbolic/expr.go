// Package symbolic implements the linear symbolic expressions produced by
// Grapple's per-method symbolic execution (paper §3.1, §3.3).
//
// During CFET construction every integer-valued program variable is given a
// symbolic value expressed over the method's symbolic variables: its formal
// parameters, the results of calls, and opaque inputs. All values Grapple
// needs are linear (branch conditionals in systems code are overwhelmingly
// comparisons of linear combinations); any non-linear operation is
// over-approximated by a fresh opaque symbol, which keeps the solver's
// fragment decidable while remaining sound for bug finding.
package symbolic

import (
	"fmt"
	"sort"
	"strings"
)

// Sym identifies a symbolic variable. Symbols are interned in a Table.
type Sym int32

// NoSym is the zero Sym and never names a real symbol.
const NoSym Sym = -1

// Table interns symbolic-variable names. The zero value is ready to use.
type Table struct {
	names []string
	index map[string]Sym
}

// NewTable returns an empty symbol table.
func NewTable() *Table {
	return &Table{index: make(map[string]Sym)}
}

// Intern returns the Sym for name, creating it if necessary.
func (t *Table) Intern(name string) Sym {
	if t.index == nil {
		t.index = make(map[string]Sym)
	}
	if s, ok := t.index[name]; ok {
		return s
	}
	s := Sym(len(t.names))
	t.names = append(t.names, name)
	t.index[name] = s
	return s
}

// Fresh creates a new symbol that is guaranteed not to collide with any
// interned name. The prefix appears in diagnostics.
func (t *Table) Fresh(prefix string) Sym {
	name := fmt.Sprintf("%s$%d", prefix, len(t.names))
	return t.Intern(name)
}

// Name returns the name of s, or "?" if s is out of range.
func (t *Table) Name(s Sym) string {
	if s < 0 || int(s) >= len(t.names) {
		return "?"
	}
	return t.names[s]
}

// Len reports the number of interned symbols.
func (t *Table) Len() int { return len(t.names) }

// Expr is a linear expression sum(Coeff[i]*Sym[i]) + Const. Terms are kept
// sorted by symbol and never carry a zero coefficient, so structural
// equality of Exprs coincides with semantic equality of linear forms.
type Expr struct {
	Terms []Term
	Const int64
}

// Term is one coefficient-symbol product of a linear expression.
type Term struct {
	Sym   Sym
	Coeff int64
}

// Const returns the expression for the integer constant c.
func Const(c int64) Expr { return Expr{Const: c} }

// Var returns the expression for 1*s.
func Var(s Sym) Expr { return Expr{Terms: []Term{{Sym: s, Coeff: 1}}} }

// IsConst reports whether e has no symbolic terms.
func (e Expr) IsConst() bool { return len(e.Terms) == 0 }

// Equal reports structural (hence semantic) equality.
func (e Expr) Equal(o Expr) bool {
	if e.Const != o.Const || len(e.Terms) != len(o.Terms) {
		return false
	}
	for i, t := range e.Terms {
		if o.Terms[i] != t {
			return false
		}
	}
	return true
}

func normalize(terms []Term, c int64) Expr {
	sort.Slice(terms, func(i, j int) bool { return terms[i].Sym < terms[j].Sym })
	out := terms[:0]
	for _, t := range terms {
		if n := len(out); n > 0 && out[n-1].Sym == t.Sym {
			out[n-1].Coeff += t.Coeff
		} else {
			out = append(out, t)
		}
	}
	kept := out[:0]
	for _, t := range out {
		if t.Coeff != 0 {
			kept = append(kept, t)
		}
	}
	if len(kept) == 0 {
		kept = nil
	}
	return Expr{Terms: kept, Const: c}
}

// Add returns e + o.
func (e Expr) Add(o Expr) Expr {
	terms := make([]Term, 0, len(e.Terms)+len(o.Terms))
	terms = append(terms, e.Terms...)
	terms = append(terms, o.Terms...)
	return normalize(terms, e.Const+o.Const)
}

// Sub returns e - o.
func (e Expr) Sub(o Expr) Expr { return e.Add(o.Scale(-1)) }

// Scale returns k*e.
func (e Expr) Scale(k int64) Expr {
	if k == 0 {
		return Expr{}
	}
	terms := make([]Term, len(e.Terms))
	for i, t := range e.Terms {
		terms[i] = Term{Sym: t.Sym, Coeff: t.Coeff * k}
	}
	return Expr{Terms: terms, Const: e.Const * k}
}

// Neg returns -e.
func (e Expr) Neg() Expr { return e.Scale(-1) }

// Subst returns e with s replaced by r.
func (e Expr) Subst(s Sym, r Expr) Expr {
	var coeff int64
	terms := make([]Term, 0, len(e.Terms)+len(r.Terms))
	for _, t := range e.Terms {
		if t.Sym == s {
			coeff = t.Coeff
		} else {
			terms = append(terms, t)
		}
	}
	if coeff == 0 {
		return e
	}
	scaled := r.Scale(coeff)
	terms = append(terms, scaled.Terms...)
	return normalize(terms, e.Const+scaled.Const)
}

// Coeff returns the coefficient of s in e (zero if absent).
func (e Expr) Coeff(s Sym) int64 {
	for _, t := range e.Terms {
		if t.Sym == s {
			return t.Coeff
		}
	}
	return 0
}

// Syms appends the symbols occurring in e to dst and returns it.
func (e Expr) Syms(dst []Sym) []Sym {
	for _, t := range e.Terms {
		dst = append(dst, t.Sym)
	}
	return dst
}

// String renders e against t, e.g. "2*x - y + 3". A nil table prints raw
// symbol numbers.
func (e Expr) String(t *Table) string {
	if len(e.Terms) == 0 {
		return fmt.Sprintf("%d", e.Const)
	}
	var b strings.Builder
	for i, term := range e.Terms {
		name := fmt.Sprintf("s%d", term.Sym)
		if t != nil {
			name = t.Name(term.Sym)
		}
		c := term.Coeff
		switch {
		case i == 0 && c == 1:
			b.WriteString(name)
		case i == 0 && c == -1:
			b.WriteString("-" + name)
		case i == 0:
			fmt.Fprintf(&b, "%d*%s", c, name)
		case c == 1:
			b.WriteString(" + " + name)
		case c == -1:
			b.WriteString(" - " + name)
		case c > 0:
			fmt.Fprintf(&b, " + %d*%s", c, name)
		default:
			fmt.Fprintf(&b, " - %d*%s", -c, name)
		}
	}
	if e.Const > 0 {
		fmt.Fprintf(&b, " + %d", e.Const)
	} else if e.Const < 0 {
		fmt.Fprintf(&b, " - %d", -e.Const)
	}
	return b.String()
}

// Key returns a compact canonical key for use in memoization tables.
func (e Expr) Key() string {
	var b strings.Builder
	for _, t := range e.Terms {
		fmt.Fprintf(&b, "%d*%d,", t.Coeff, t.Sym)
	}
	fmt.Fprintf(&b, "%d", e.Const)
	return b.String()
}
