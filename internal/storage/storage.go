// Package storage implements Grapple's on-disk partition format (paper
// §4.3). A partition holds every edge whose source vertex falls in the
// partition's vertex interval. Edge records have variable size because each
// edge inlines its interval-sequence path encoding — per the paper, the
// record itself carries the length of the sequence rather than pointing at a
// separate object, trading random access (which the engine never needs; its
// accesses are sequential) for locality.
package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"os"

	"github.com/grapple-system/grapple/internal/cfet"
	"github.com/grapple-system/grapple/internal/fsm"
	"github.com/grapple-system/grapple/internal/grammar"
)

// Edge is one labeled, constraint-carrying graph edge.
type Edge struct {
	Src, Dst uint32
	Label    grammar.Label
	// Gen is the engine iteration that produced the edge (semi-naive
	// evaluation joins only pairs involving a sufficiently new edge).
	Gen uint32
	// HasRel marks dataflow edges carrying an FSM transition relation.
	HasRel bool
	Rel    fsm.Rel
	// Enc is the interval-sequence path encoding (§3.2).
	Enc cfet.Enc
}

// Key hashes the edge's identity (everything except Gen) for deduplication.
func (e *Edge) Key() uint64 {
	h := fnv.New64a()
	var buf [16]byte
	binary.LittleEndian.PutUint32(buf[0:], e.Src)
	binary.LittleEndian.PutUint32(buf[4:], e.Dst)
	binary.LittleEndian.PutUint16(buf[8:], uint16(e.Label))
	h.Write(buf[:10])
	if e.HasRel {
		h.Write(e.Rel.Pack(nil))
	}
	for _, el := range e.Enc {
		binary.LittleEndian.PutUint32(buf[0:], uint32(el.Kind))
		binary.LittleEndian.PutUint32(buf[4:], uint32(el.Method))
		binary.LittleEndian.PutUint32(buf[8:], uint32(el.Call))
		h.Write(buf[:12])
		binary.LittleEndian.PutUint64(buf[0:], el.Start)
		binary.LittleEndian.PutUint64(buf[8:], el.End)
		h.Write(buf[:16])
	}
	return h.Sum64()
}

// Endpoint identifies an edge up to its constraint payload; the engine caps
// the number of distinct constraint variants kept per endpoint triple.
type Endpoint struct {
	Src, Dst uint32
	Label    grammar.Label
}

// Endpoint returns the edge's endpoint triple.
func (e *Edge) Endpoint() Endpoint {
	return Endpoint{Src: e.Src, Dst: e.Dst, Label: e.Label}
}

// AppendRecord serializes e onto dst.
func AppendRecord(dst []byte, e *Edge) []byte {
	var tmp [binary.MaxVarintLen64]byte
	put32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		dst = append(dst, b[:]...)
	}
	put32(e.Src)
	put32(e.Dst)
	dst = append(dst, byte(e.Label), byte(e.Label>>8))
	put32(e.Gen)
	flags := byte(0)
	if e.HasRel {
		flags |= 1
	}
	dst = append(dst, flags)
	if e.HasRel {
		dst = e.Rel.Pack(dst)
	}
	if len(e.Enc) > 255 {
		panic("storage: encoding too long")
	}
	dst = append(dst, byte(len(e.Enc)))
	for _, el := range e.Enc {
		dst = append(dst, byte(el.Kind))
		switch el.Kind {
		case cfet.KInterval:
			n := binary.PutUvarint(tmp[:], uint64(el.Method))
			dst = append(dst, tmp[:n]...)
			n = binary.PutUvarint(tmp[:], el.Start)
			dst = append(dst, tmp[:n]...)
			n = binary.PutUvarint(tmp[:], el.End)
			dst = append(dst, tmp[:n]...)
		default:
			n := binary.PutUvarint(tmp[:], uint64(el.Call))
			dst = append(dst, tmp[:n]...)
		}
	}
	return dst
}

// byteReader adapts bufio.Reader for both byte and block reads.
type recordReader struct {
	r *bufio.Reader
}

func (rr recordReader) full(buf []byte) error {
	_, err := io.ReadFull(rr.r, buf)
	return err
}

// ReadRecord deserializes the next edge. Returns io.EOF cleanly at end.
func ReadRecord(r *bufio.Reader, e *Edge) error {
	var head [4]byte
	if _, err := io.ReadFull(r, head[:1]); err != nil {
		return err // io.EOF at a record boundary
	}
	rr := recordReader{r}
	if err := rr.full(head[1:4]); err != nil {
		return fmt.Errorf("storage: truncated src: %w", err)
	}
	e.Src = binary.LittleEndian.Uint32(head[:])
	if err := rr.full(head[:4]); err != nil {
		return fmt.Errorf("storage: truncated dst: %w", err)
	}
	e.Dst = binary.LittleEndian.Uint32(head[:])
	if err := rr.full(head[:2]); err != nil {
		return fmt.Errorf("storage: truncated label: %w", err)
	}
	e.Label = grammar.Label(binary.LittleEndian.Uint16(head[:2]))
	if err := rr.full(head[:4]); err != nil {
		return fmt.Errorf("storage: truncated gen: %w", err)
	}
	e.Gen = binary.LittleEndian.Uint32(head[:])
	flags, err := r.ReadByte()
	if err != nil {
		return fmt.Errorf("storage: truncated flags: %w", err)
	}
	e.HasRel = flags&1 != 0
	if e.HasRel {
		var relBuf [fsm.PackedRelSize]byte
		if err := rr.full(relBuf[:]); err != nil {
			return fmt.Errorf("storage: truncated rel: %w", err)
		}
		e.Rel, _ = fsm.UnpackRel(relBuf[:])
	} else {
		e.Rel = fsm.Rel{}
	}
	n, err := r.ReadByte()
	if err != nil {
		return fmt.Errorf("storage: truncated enc len: %w", err)
	}
	if cap(e.Enc) >= int(n) {
		e.Enc = e.Enc[:n]
	} else {
		e.Enc = make(cfet.Enc, n)
	}
	for i := 0; i < int(n); i++ {
		kind, err := r.ReadByte()
		if err != nil {
			return fmt.Errorf("storage: truncated elem kind: %w", err)
		}
		el := cfet.Elem{Kind: cfet.ElemKind(kind)}
		switch el.Kind {
		case cfet.KInterval:
			m, err := binary.ReadUvarint(r)
			if err != nil {
				return fmt.Errorf("storage: truncated method: %w", err)
			}
			el.Method = cfet.MethodID(m)
			if el.Start, err = binary.ReadUvarint(r); err != nil {
				return fmt.Errorf("storage: truncated start: %w", err)
			}
			if el.End, err = binary.ReadUvarint(r); err != nil {
				return fmt.Errorf("storage: truncated end: %w", err)
			}
		case cfet.KCall, cfet.KRet:
			c, err := binary.ReadUvarint(r)
			if err != nil {
				return fmt.Errorf("storage: truncated call id: %w", err)
			}
			el.Call = int32(c)
		default:
			return fmt.Errorf("storage: bad elem kind %d", kind)
		}
		e.Enc[i] = el
	}
	return nil
}

// WriteFile writes edges to path (atomically via rename).
func WriteFile(path string, edges []Edge) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var buf []byte
	for i := range edges {
		buf = AppendRecord(buf[:0], &edges[i])
		if _, err := w.Write(buf); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// ReadFile loads all edges from path, appending to dst.
func ReadFile(path string, dst []Edge) ([]Edge, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return dst, nil
		}
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	for {
		var e Edge
		err := ReadRecord(r, &e)
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		dst = append(dst, e)
	}
}

// AppendFile appends edges to path (creating it if needed).
func AppendFile(path string, edges []Edge) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var buf []byte
	for i := range edges {
		buf = AppendRecord(buf[:0], &edges[i])
		if _, err := w.Write(buf); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// RecordSize returns the serialized size of e in bytes.
func RecordSize(e *Edge) int64 {
	return int64(len(AppendRecord(nil, e)))
}
