// Package storage implements Grapple's on-disk partition format (paper
// §4.3). A partition holds every edge whose source vertex falls in the
// partition's vertex interval. Edge records have variable size because each
// edge inlines its interval-sequence path encoding — per the paper, the
// record itself carries the length of the sequence rather than pointing at a
// separate object, trading random access (which the engine never needs; its
// accesses are sequential) for locality.
//
// Two record encodings exist. Format v2 (the current writer, see file.go)
// stores the encoding length as a uvarint inside CRC-protected blocks;
// legacy v1 records use a single length byte and live in bare record
// streams with no integrity metadata. The v1 codec is kept for transparent
// read-back of pre-v2 partition files.
package storage

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"

	"github.com/grapple-system/grapple/internal/cfet"
	"github.com/grapple-system/grapple/internal/fsm"
	"github.com/grapple-system/grapple/internal/grammar"
)

// Edge is one labeled, constraint-carrying graph edge.
type Edge struct {
	Src, Dst uint32
	Label    grammar.Label
	// Gen is the engine iteration that produced the edge (semi-naive
	// evaluation joins only pairs involving a sufficiently new edge).
	Gen uint32
	// HasRel marks dataflow edges carrying an FSM transition relation.
	HasRel bool
	Rel    fsm.Rel
	// Enc is the interval-sequence path encoding (§3.2).
	Enc cfet.Enc
}

// Key hashes the edge's identity (everything except Gen) for deduplication.
func (e *Edge) Key() uint64 {
	h := fnv.New64a()
	var buf [16]byte
	binary.LittleEndian.PutUint32(buf[0:], e.Src)
	binary.LittleEndian.PutUint32(buf[4:], e.Dst)
	binary.LittleEndian.PutUint16(buf[8:], uint16(e.Label))
	h.Write(buf[:10])
	if e.HasRel {
		h.Write(e.Rel.Pack(nil))
	}
	for _, el := range e.Enc {
		binary.LittleEndian.PutUint32(buf[0:], uint32(el.Kind))
		binary.LittleEndian.PutUint32(buf[4:], uint32(el.Method))
		binary.LittleEndian.PutUint32(buf[8:], uint32(el.Call))
		h.Write(buf[:12])
		binary.LittleEndian.PutUint64(buf[0:], el.Start)
		binary.LittleEndian.PutUint64(buf[8:], el.End)
		h.Write(buf[:16])
	}
	return h.Sum64()
}

// Endpoint identifies an edge up to its constraint payload; the engine caps
// the number of distinct constraint variants kept per endpoint triple.
type Endpoint struct {
	Src, Dst uint32
	Label    grammar.Label
}

// Endpoint returns the edge's endpoint triple.
func (e *Edge) Endpoint() Endpoint {
	return Endpoint{Src: e.Src, Dst: e.Dst, Label: e.Label}
}

// maxEncElems bounds a decoded encoding's element count: a defense against
// corrupted (or adversarial) length fields allocating unbounded memory. Real
// encodings are bounded by the ICFET's MaxEncLen, orders of magnitude below.
const maxEncElems = 1 << 20

// errEncTooLong reports a legacy-format record whose encoding does not fit
// the v1 single-byte length field.
var errEncTooLong = errors.New("storage: encoding exceeds 255 elements (v1 record limit; write format v2 instead)")

// appendElems serializes the path-encoding elements (shared by v1 and v2).
func appendElems(dst []byte, enc cfet.Enc) []byte {
	var tmp [binary.MaxVarintLen64]byte
	for _, el := range enc {
		dst = append(dst, byte(el.Kind))
		switch el.Kind {
		case cfet.KInterval:
			n := binary.PutUvarint(tmp[:], uint64(el.Method))
			dst = append(dst, tmp[:n]...)
			n = binary.PutUvarint(tmp[:], el.Start)
			dst = append(dst, tmp[:n]...)
			n = binary.PutUvarint(tmp[:], el.End)
			dst = append(dst, tmp[:n]...)
		default:
			n := binary.PutUvarint(tmp[:], uint64(el.Call))
			dst = append(dst, tmp[:n]...)
		}
	}
	return dst
}

// appendCommon serializes the fixed head shared by both record formats.
func appendCommon(dst []byte, e *Edge) []byte {
	put32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		dst = append(dst, b[:]...)
	}
	put32(e.Src)
	put32(e.Dst)
	dst = append(dst, byte(e.Label), byte(e.Label>>8))
	put32(e.Gen)
	flags := byte(0)
	if e.HasRel {
		flags |= 1
	}
	dst = append(dst, flags)
	if e.HasRel {
		dst = e.Rel.Pack(dst)
	}
	return dst
}

// AppendRecord serializes e onto dst in the legacy v1 format. It returns an
// error — never panics — when the path encoding exceeds the v1 single-byte
// length field; such edges require format v2 (see WritePart).
func AppendRecord(dst []byte, e *Edge) ([]byte, error) {
	if len(e.Enc) > 255 {
		return dst, errEncTooLong
	}
	dst = appendCommon(dst, e)
	dst = append(dst, byte(len(e.Enc)))
	return appendElems(dst, e.Enc), nil
}

// appendRecordV2 serializes e in the v2 format (uvarint encoding length; no
// length limit, so it cannot fail).
func appendRecordV2(dst []byte, e *Edge) []byte {
	var tmp [binary.MaxVarintLen64]byte
	dst = appendCommon(dst, e)
	n := binary.PutUvarint(tmp[:], uint64(len(e.Enc)))
	dst = append(dst, tmp[:n]...)
	return appendElems(dst, e.Enc)
}

// recordSrc is what the record decoder needs; satisfied by bufio.Reader
// (legacy streams) and bytes.Reader (v2 block payloads).
type recordSrc interface {
	io.Reader
	io.ByteReader
}

// decodeRecord deserializes one record. v2 selects the uvarint encoding
// length; otherwise the legacy single length byte is read.
//
// In v2 mode every failure — including EOF before the first byte — wraps
// ErrCorrupt: v2 records only ever live inside length- and CRC-delimited
// blocks whose header states the record count, so the decoder running out
// of input mid-count is corruption, never a clean record boundary. Only v1
// streams, which have no framing, report a boundary as bare io.EOF.
func decodeRecord(r recordSrc, e *Edge, v2 bool) error {
	err := decodeRecordStream(r, e, v2)
	if err != nil && v2 && !errors.Is(err, ErrCorrupt) {
		return fmt.Errorf("storage: %w: %v", ErrCorrupt, err)
	}
	return err
}

func decodeRecordStream(r recordSrc, e *Edge, v2 bool) error {
	var head [4]byte
	if _, err := io.ReadFull(r, head[:1]); err != nil {
		return err // io.EOF at a v1 record boundary (wrapped by decodeRecord for v2)
	}
	full := func(buf []byte) error {
		_, err := io.ReadFull(r, buf)
		return err
	}
	if err := full(head[1:4]); err != nil {
		return fmt.Errorf("storage: truncated src: %w", err)
	}
	e.Src = binary.LittleEndian.Uint32(head[:])
	if err := full(head[:4]); err != nil {
		return fmt.Errorf("storage: truncated dst: %w", err)
	}
	e.Dst = binary.LittleEndian.Uint32(head[:])
	if err := full(head[:2]); err != nil {
		return fmt.Errorf("storage: truncated label: %w", err)
	}
	e.Label = grammar.Label(binary.LittleEndian.Uint16(head[:2]))
	if err := full(head[:4]); err != nil {
		return fmt.Errorf("storage: truncated gen: %w", err)
	}
	e.Gen = binary.LittleEndian.Uint32(head[:])
	flags, err := r.ReadByte()
	if err != nil {
		return fmt.Errorf("storage: truncated flags: %w", err)
	}
	if flags&^byte(1) != 0 {
		return fmt.Errorf("storage: bad record flags %#x", flags)
	}
	e.HasRel = flags&1 != 0
	if e.HasRel {
		var relBuf [fsm.PackedRelSize]byte
		if err := full(relBuf[:]); err != nil {
			return fmt.Errorf("storage: truncated rel: %w", err)
		}
		rel, _, err := fsm.UnpackRel(relBuf[:])
		if err != nil {
			return fmt.Errorf("storage: corrupt rel payload: %w", err)
		}
		e.Rel = rel
	} else {
		e.Rel = fsm.Rel{}
	}
	var n uint64
	if v2 {
		n, err = binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("storage: truncated enc len: %w", err)
		}
	} else {
		b, err := r.ReadByte()
		if err != nil {
			return fmt.Errorf("storage: truncated enc len: %w", err)
		}
		n = uint64(b)
	}
	if n > maxEncElems {
		return fmt.Errorf("storage: encoding length %d exceeds limit %d", n, maxEncElems)
	}
	// Each element costs at least 2 bytes; when the source knows its
	// remaining size, reject impossible lengths before allocating.
	if br, ok := r.(*bytes.Reader); ok && n > uint64(br.Len()) {
		return fmt.Errorf("storage: encoding length %d exceeds remaining payload %d", n, br.Len())
	}
	if uint64(cap(e.Enc)) >= n {
		e.Enc = e.Enc[:n]
	} else {
		e.Enc = make(cfet.Enc, n)
	}
	for i := 0; i < int(n); i++ {
		kind, err := r.ReadByte()
		if err != nil {
			return fmt.Errorf("storage: truncated elem kind: %w", err)
		}
		el := cfet.Elem{Kind: cfet.ElemKind(kind)}
		switch el.Kind {
		case cfet.KInterval:
			m, err := binary.ReadUvarint(r)
			if err != nil {
				return fmt.Errorf("storage: truncated method: %w", err)
			}
			el.Method = cfet.MethodID(m)
			if el.Start, err = binary.ReadUvarint(r); err != nil {
				return fmt.Errorf("storage: truncated start: %w", err)
			}
			if el.End, err = binary.ReadUvarint(r); err != nil {
				return fmt.Errorf("storage: truncated end: %w", err)
			}
		case cfet.KCall, cfet.KRet:
			c, err := binary.ReadUvarint(r)
			if err != nil {
				return fmt.Errorf("storage: truncated call id: %w", err)
			}
			el.Call = int32(c)
		default:
			return fmt.Errorf("storage: bad elem kind %d", kind)
		}
		e.Enc[i] = el
	}
	return nil
}

// ReadRecord deserializes the next legacy v1 edge record. Returns io.EOF
// cleanly at a record boundary.
func ReadRecord(r *bufio.Reader, e *Edge) error {
	return decodeRecord(r, e, false)
}

// RecordSize returns the serialized v2 size of e in bytes (the size the
// engine's byte budgets account against).
func RecordSize(e *Edge) int64 {
	return int64(len(appendRecordV2(nil, e)))
}
