package storage

import (
	"bufio"
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReadRecord exercises the legacy v1 record decoder on arbitrary bytes:
// it must never panic and never read out of bounds, returning an error (or
// clean EOF) for malformed input. Run with:
// go test -fuzz=FuzzReadRecord ./internal/storage
func FuzzReadRecord(f *testing.F) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 8; i++ {
		e := randEdge(rng)
		rec, err := AppendRecord(nil, &e)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(rec)
	}
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 4; i++ { // a few records per input
			var e Edge
			if err := ReadRecord(r, &e); err != nil {
				return
			}
			// A decoded record must re-encode without panicking.
			if len(e.Enc) > 255 {
				t.Fatalf("decoder produced oversized encoding: %d", len(e.Enc))
			}
			if _, err := AppendRecord(nil, &e); err != nil {
				t.Fatalf("decoded record failed to re-encode: %v", err)
			}
		}
	})
}

// FuzzDecodeRecordV2 exercises both v2 record decoders — the legacy stream
// form and the zero-copy block cursor — on arbitrary bytes, requiring them
// to agree byte for byte. Seeds come from decodeV2Seeds, shared with the
// decode-equivalence property test. Run with:
// go test -fuzz=FuzzDecodeRecordV2 ./internal/storage
func FuzzDecodeRecordV2(f *testing.F) {
	for _, seed := range decodeV2Seeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var cur blockCursor
		cur.reset(data)
		for i := 0; i < 4; i++ {
			var e, ce Edge
			err := decodeRecord(r, &e, true)
			cerr := cur.decodeRecord(&ce)
			if (err == nil) != (cerr == nil) {
				t.Fatalf("decoders diverge: stream %v, cursor %v", err, cerr)
			}
			if err != nil {
				// Inside a v2 block every failure is corruption for both.
				if !errors.Is(err, ErrCorrupt) || !errors.Is(cerr, ErrCorrupt) {
					t.Fatalf("untagged decode failure: stream %v, cursor %v", err, cerr)
				}
				return
			}
			if !edgesEqual(e, ce) || cur.remaining() != r.Len() {
				t.Fatalf("decoders diverge on success: %+v vs %+v (%d vs %d left)",
					e, ce, r.Len(), cur.remaining())
			}
			// Round-trip: a decoded record must re-encode to a decodable form.
			back := appendRecordV2(nil, &e)
			var e2 Edge
			if err := decodeRecord(bytes.NewReader(back), &e2, true); err != nil {
				t.Fatalf("re-encoded record failed to decode: %v", err)
			}
			if !edgesEqual(e, e2) {
				t.Fatal("re-encode round trip mismatch")
			}
		}
	})
}

// FuzzReadPart exercises the whole-file reader — magic sniffing, header and
// block CRC verification, trailer commit check, and the v1 fallback — on
// arbitrary file contents. It must reject or decode every input without
// panicking. Run with:
// go test -fuzz=FuzzReadPart ./internal/storage
func FuzzReadPart(f *testing.F) {
	rng := rand.New(rand.NewSource(5))
	dir := f.TempDir()
	seed := filepath.Join(dir, "seed.edges")
	var edges []Edge
	for i := 0; i < 20; i++ {
		edges = append(edges, randEdge(rng))
	}
	if _, err := WritePart(seed, edges, PartInfo{Lo: 3, Hi: 99}); err != nil {
		f.Fatal(err)
	}
	good, err := os.ReadFile(seed)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)/2])
	var legacy []byte
	for i := range edges[:5] {
		legacy, err = AppendRecord(legacy, &edges[i])
		if err != nil {
			f.Fatal(err)
		}
	}
	f.Add(legacy)
	f.Add([]byte{})
	f.Add([]byte("GPLP"))
	f.Add(bytes.Repeat([]byte{0x00}, headerSize+trailerSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.edges")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		_, _, _, _ = ReadPart(path, nil)
	})
}

// FuzzReadJournal exercises the run-journal reader on arbitrary file
// contents: decode must never panic, a corrupt header must wrap ErrCorrupt,
// and whatever records survive must re-encode to records that decode back
// equal (corruption is never half-visible). Run with:
// go test -fuzz=FuzzReadJournal ./internal/storage
func FuzzReadJournal(f *testing.F) {
	dir := f.TempDir()
	w, err := CreateJournal(dir, JournalMeta{NumVertices: 64, Tag: 0xfeed}, nil)
	if err != nil {
		f.Fatal(err)
	}
	for seq := uint64(0); seq < 3; seq++ {
		rec := &JournalRecord{
			Seq: seq, Iterations: int64(seq), CurGen: uint32(seq),
			HotA: -1, HotB: -1,
			Parts: []JournalPart{
				{ID: 0, Lo: 0, Hi: 32, Edges: 10, MaxGen: 1, Path: "part-0.edges"},
			},
			LastGen: []JournalGen{{A: 0, B: 0, Gen: 1}},
		}
		if seq == 2 {
			rec.Completed = true
		}
		if _, err := w.Append(rec); err != nil {
			f.Fatal(err)
		}
	}
	w.Close()
	good, err := os.ReadFile(filepath.Join(dir, JournalName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add(good[:journalHeaderSize])
	f.Add([]byte{})
	f.Add([]byte("GPLJ"))
	f.Add(bytes.Repeat([]byte{0x00}, journalHeaderSize+16))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, JournalName), data, 0o644); err != nil {
			t.Skip()
		}
		_, recs, validLen, err := ReadJournal(dir)
		if err != nil {
			return
		}
		if validLen < journalHeaderSize || validLen > int64(len(data)) {
			t.Fatalf("validLen %d outside file of %d bytes", validLen, len(data))
		}
		// Surviving records must be fully formed: re-encode and re-decode.
		for _, rec := range recs {
			payload := encodeJournalRecord(nil, rec)
			back, err := decodeJournalRecord(payload)
			if err != nil {
				t.Fatalf("surviving record does not re-encode: %v", err)
			}
			if back.Seq != rec.Seq || len(back.Parts) != len(rec.Parts) {
				t.Fatal("re-encode round trip mismatch")
			}
		}
	})
}
