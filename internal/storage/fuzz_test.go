package storage

import (
	"bufio"
	"bytes"
	"math/rand"
	"testing"
)

// FuzzReadRecord exercises the on-disk record decoder on arbitrary bytes:
// it must never panic and never read out of bounds, returning an error (or
// clean EOF) for malformed input. Run with:
// go test -fuzz=FuzzReadRecord ./internal/storage
func FuzzReadRecord(f *testing.F) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 8; i++ {
		e := randEdge(rng)
		f.Add(AppendRecord(nil, &e))
	}
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 4; i++ { // a few records per input
			var e Edge
			if err := ReadRecord(r, &e); err != nil {
				return
			}
			// A decoded record must re-encode without panicking.
			if len(e.Enc) > 255 {
				t.Fatalf("decoder produced oversized encoding: %d", len(e.Enc))
			}
			_ = AppendRecord(nil, &e)
		}
	})
}
