// Zero-copy v2 record decoding.
//
// The original v2 read path pulled every record field through io.ReadFull
// calls against a bytes.Reader wrapped around the block payload — correct,
// but each record paid interface-call overhead and a fresh encoding-slice
// allocation. A whole block is already sitting in memory CRC-verified, so
// blockCursor decodes records directly out of that buffer with an offset
// cursor, and backs the decoded path encodings with a chunked element arena
// shared across the records of a read: per-record allocations drop from one
// (or more) per record to amortized ~1/arenaChunkElems.
//
// The legacy field-by-field decoder is kept (decodeRecord): v1 streams still
// need it, and ReadOptions.LegacyDecode routes v2 payloads through it for
// the hotpath ablation and the decode-equivalence tests.
package storage

import (
	"encoding/binary"
	"fmt"

	"github.com/grapple-system/grapple/internal/cfet"
	"github.com/grapple-system/grapple/internal/fsm"
	"github.com/grapple-system/grapple/internal/grammar"
)

// arenaChunkElems sizes the element arena's allocation unit. Large enough
// to amortize one allocation over many records, small enough that a partly
// used final chunk wastes little.
const arenaChunkElems = 4096

// blockCursor decodes v2 records straight from a CRC-verified block
// payload. A cursor may be reused across blocks (and files); the arena
// chunks it hands out stay alive exactly as long as the decoded edges that
// reference them.
type blockCursor struct {
	buf []byte
	off int
	// arena is the current element chunk; decoded encodings are capped
	// subslices of it, so a later chunk switch never moves earlier records.
	arena []cfet.Elem
}

// reset points the cursor at a new block payload. The arena carries over:
// its live subslices belong to already-returned edges.
func (c *blockCursor) reset(payload []byte) {
	c.buf = payload
	c.off = 0
}

// remaining reports the undecoded byte count of the current payload.
func (c *blockCursor) remaining() int { return len(c.buf) - c.off }

// corrupt tags a decode failure: inside a checksummed block every malformed
// or truncated record is corruption, never a clean boundary.
func (c *blockCursor) corrupt(format string, args ...any) error {
	return fmt.Errorf("storage: %w: %s at payload offset %d", ErrCorrupt, fmt.Sprintf(format, args...), c.off)
}

// elems returns an n-element slice backed by the arena, allocating a fresh
// chunk when the current one cannot hold n more. The three-index slice caps
// the result so an append by a caller can never clobber a later record.
func (c *blockCursor) elems(n int) []cfet.Elem {
	if n > cap(c.arena)-len(c.arena) {
		size := arenaChunkElems
		if n > size {
			size = n
		}
		c.arena = make([]cfet.Elem, 0, size)
	}
	lo := len(c.arena)
	c.arena = c.arena[:lo+n]
	return c.arena[lo : lo+n : lo+n]
}

func (c *blockCursor) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(c.buf[c.off:])
	if n <= 0 {
		return 0, c.corrupt("truncated or overlong %s", what)
	}
	c.off += n
	return v, nil
}

// decodeBlock resets the cursor onto a CRC-verified payload and decodes
// count records into dst, returning the grown slice and the index of the
// record that failed (count on success or when the failure is slack bytes
// after the last record — query remaining() for their number). On error the
// original dst is still what the caller holds; the partially grown copy is
// simply dropped.
func (c *blockCursor) decodeBlock(payload []byte, count uint32, dst []Edge) ([]Edge, uint32, error) {
	c.reset(payload)
	for i := uint32(0); i < count; i++ {
		var e Edge
		if err := c.decodeRecord(&e); err != nil {
			return dst, i, err
		}
		dst = append(dst, e)
	}
	if c.remaining() != 0 {
		return dst, count, c.corrupt("%d bytes of slack after %d records", c.remaining(), count)
	}
	return dst, count, nil
}

// decodeRecord deserializes one v2 record at the cursor, the zero-copy
// mirror of decodeRecord(r, e, true). Every failure wraps ErrCorrupt.
func (c *blockCursor) decodeRecord(e *Edge) error {
	if c.remaining() < 15 { // src + dst + label + gen + flags
		return c.corrupt("truncated record head (%d bytes left)", c.remaining())
	}
	b := c.buf[c.off:]
	e.Src = binary.LittleEndian.Uint32(b)
	e.Dst = binary.LittleEndian.Uint32(b[4:])
	e.Label = grammar.Label(binary.LittleEndian.Uint16(b[8:]))
	e.Gen = binary.LittleEndian.Uint32(b[10:])
	flags := b[14]
	c.off += 15
	if flags&^byte(1) != 0 {
		return c.corrupt("bad record flags %#x", flags)
	}
	e.HasRel = flags&1 != 0
	if e.HasRel {
		if c.remaining() < fsm.PackedRelSize {
			return c.corrupt("truncated rel (%d bytes left)", c.remaining())
		}
		rel, _, err := fsm.UnpackRel(c.buf[c.off : c.off+fsm.PackedRelSize])
		if err != nil {
			return c.corrupt("corrupt rel payload: %v", err)
		}
		e.Rel = rel
		c.off += fsm.PackedRelSize
	} else {
		e.Rel = fsm.Rel{}
	}
	n, err := c.uvarint("enc len")
	if err != nil {
		return err
	}
	if n > maxEncElems {
		return c.corrupt("encoding length %d exceeds limit %d", n, maxEncElems)
	}
	// Each element costs at least 2 bytes; reject impossible lengths before
	// touching the arena (same defense as the legacy decoder's Len check).
	if n > uint64(c.remaining()) {
		return c.corrupt("encoding length %d exceeds remaining payload %d", n, c.remaining())
	}
	if n == 0 {
		e.Enc = nil
		return nil
	}
	enc := c.elems(int(n))
	for i := range enc {
		if c.remaining() < 1 {
			return c.corrupt("truncated elem kind")
		}
		el := cfet.Elem{Kind: cfet.ElemKind(c.buf[c.off])}
		c.off++
		switch el.Kind {
		case cfet.KInterval:
			m, err := c.uvarint("method")
			if err != nil {
				return err
			}
			el.Method = cfet.MethodID(m)
			if el.Start, err = c.uvarint("start"); err != nil {
				return err
			}
			if el.End, err = c.uvarint("end"); err != nil {
				return err
			}
		case cfet.KCall, cfet.KRet:
			v, err := c.uvarint("call id")
			if err != nil {
				return err
			}
			el.Call = int32(v)
		default:
			return c.corrupt("bad elem kind %d", el.Kind)
		}
		enc[i] = el
	}
	e.Enc = cfet.Enc(enc)
	return nil
}
