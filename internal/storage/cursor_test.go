package storage

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"github.com/grapple-system/grapple/internal/cfet"
	"github.com/grapple-system/grapple/internal/raceflag"
)

// decodeV2Seeds builds the canonical v2 record corpus shared by
// FuzzDecodeRecordV2 and the decode-equivalence property test: valid
// single records, a long encoding the v1 format cannot hold, and a few
// malformed byte strings.
func decodeV2Seeds() [][]byte {
	rng := rand.New(rand.NewSource(4))
	var seeds [][]byte
	for i := 0; i < 8; i++ {
		e := randEdge(rng)
		seeds = append(seeds, appendRecordV2(nil, &e))
	}
	long := longEncEdge(300)
	seeds = append(seeds, appendRecordV2(nil, &long))
	seeds = append(seeds,
		[]byte{},
		[]byte{0x01},
		bytes.Repeat([]byte{0xff}, 64),
	)
	return seeds
}

// crossCheckDecoders runs the zero-copy cursor and the legacy stream decoder
// over the same payload and fails if they diverge in any observable way:
// decoded edges, error class (both must wrap ErrCorrupt on failure, since a
// v2 payload has no clean record boundary), and bytes consumed on success.
func crossCheckDecoders(t *testing.T, payload []byte) {
	t.Helper()
	var cur blockCursor
	cur.reset(payload)
	r := bytes.NewReader(payload)
	for rec := 0; ; rec++ {
		var ce, se Edge
		cerr := cur.decodeRecord(&ce)
		serr := decodeRecord(r, &se, true)
		if (cerr == nil) != (serr == nil) {
			t.Fatalf("record %d: cursor err %v, stream err %v", rec, cerr, serr)
		}
		if cerr != nil {
			if !errors.Is(cerr, ErrCorrupt) {
				t.Fatalf("record %d: cursor error not ErrCorrupt: %v", rec, cerr)
			}
			if !errors.Is(serr, ErrCorrupt) {
				t.Fatalf("record %d: stream error not ErrCorrupt: %v", rec, serr)
			}
			return
		}
		if !edgesEqual(ce, se) {
			t.Fatalf("record %d: cursor decoded %+v, stream decoded %+v", rec, ce, se)
		}
		if cur.remaining() != r.Len() {
			t.Fatalf("record %d: cursor consumed to %d remaining, stream to %d",
				rec, cur.remaining(), r.Len())
		}
		if cur.remaining() == 0 {
			return
		}
	}
}

// TestDecodeCursorEquivalence is the decode-equivalence property test: over
// the fuzz seed corpus and random multi-record payloads, the zero-copy
// cursor must be observably identical to the stream decoder.
func TestDecodeCursorEquivalence(t *testing.T) {
	for _, seed := range decodeV2Seeds() {
		crossCheckDecoders(t, seed)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		var payload []byte
		for i := 0; i < 1+rng.Intn(8); i++ {
			e := randEdge(rng)
			payload = appendRecordV2(payload, &e)
		}
		crossCheckDecoders(t, payload)
		// Mutated copies must fail (or succeed) identically in both decoders.
		mut := append([]byte{}, payload...)
		mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		crossCheckDecoders(t, mut)
	}
}

// TestDecodeRecordV2TruncationIsCorrupt cuts a v2 record at every byte
// boundary: both decoders must reject every prefix with an error wrapping
// ErrCorrupt — never a bare io.EOF, which inside a CRC- and count-delimited
// block would misreport corruption as a clean boundary. The v1 stream
// decoder, whose format has no framing, must keep reporting the clean
// zero-byte boundary as bare io.EOF.
func TestDecodeRecordV2TruncationIsCorrupt(t *testing.T) {
	e := randEdge(rand.New(rand.NewSource(7)))
	if len(e.Enc) == 0 {
		e.Enc = longEncEdge(4).Enc
	}
	e.HasRel = true
	rec := appendRecordV2(nil, &e)
	for cut := 0; cut < len(rec); cut++ {
		prefix := rec[:cut]

		var cur blockCursor
		cur.reset(prefix)
		var ce Edge
		cerr := cur.decodeRecord(&ce)
		if cerr == nil {
			t.Fatalf("cut=%d: cursor accepted a truncated record", cut)
		}
		if !errors.Is(cerr, ErrCorrupt) {
			t.Fatalf("cut=%d: cursor error not ErrCorrupt: %v", cut, cerr)
		}

		var se Edge
		serr := decodeRecord(bytes.NewReader(prefix), &se, true)
		if serr == nil {
			t.Fatalf("cut=%d: stream decoder accepted a truncated record", cut)
		}
		if !errors.Is(serr, ErrCorrupt) {
			t.Fatalf("cut=%d: stream v2 error not ErrCorrupt: %v", cut, serr)
		}
	}

	// v1 contrast: an empty stream is a record boundary, not corruption.
	var ve Edge
	if err := decodeRecord(bytes.NewReader(nil), &ve, false); err != io.EOF {
		t.Fatalf("v1 empty stream: want bare io.EOF, got %v", err)
	}
}

// TestReadPartWithModesAgree reads the same file in both decode modes and
// requires identical edges, PartInfo, and byte counts — the whole-file form
// of the equivalence property, covering the block loop and slack checks.
func TestReadPartWithModesAgree(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(21))
	var edges []Edge
	for i := 0; i < 500; i++ {
		edges = append(edges, randEdge(rng))
	}
	path := filepath.Join(dir, "p.edges")
	if _, err := WritePart(path, edges, PartInfo{Lo: 5, Hi: 4096}); err != nil {
		t.Fatal(err)
	}
	fast, fi, fn, err := ReadPartWith(path, nil, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	slow, si, sn, err := ReadPartWith(path, nil, ReadOptions{LegacyDecode: true})
	if err != nil {
		t.Fatal(err)
	}
	if fi != si || fn != sn {
		t.Fatalf("info/bytes diverge: %+v/%d vs %+v/%d", fi, fn, si, sn)
	}
	if len(fast) != len(slow) || len(fast) != len(edges) {
		t.Fatalf("edge counts diverge: %d vs %d (want %d)", len(fast), len(slow), len(edges))
	}
	for i := range fast {
		if !edgesEqual(fast[i], slow[i]) {
			t.Fatalf("edge %d diverges: %+v vs %+v", i, fast[i], slow[i])
		}
		if !edgesEqual(fast[i], edges[i]) {
			t.Fatalf("edge %d lost in round trip: %+v", i, fast[i])
		}
	}
}

// TestCursorArenaIsolation guards the arena's capped-subslice invariant: an
// append to one decoded encoding must never clobber a later record's
// elements, even though both live in the same arena chunk.
func TestCursorArenaIsolation(t *testing.T) {
	a := longEncEdge(3)
	b := longEncEdge(5)
	b.Src = 1000
	payload := appendRecordV2(appendRecordV2(nil, &a), &b)
	var cur blockCursor
	cur.reset(payload)
	var da, db Edge
	if err := cur.decodeRecord(&da); err != nil {
		t.Fatal(err)
	}
	if err := cur.decodeRecord(&db); err != nil {
		t.Fatal(err)
	}
	wantEnc := append(cfet.Enc(nil), db.Enc...)
	// Appending through the first edge's encoding must copy, not spill into
	// the second edge's arena region.
	_ = append(da.Enc, da.Enc[0])
	if !db.Enc.Equal(wantEnc) {
		t.Fatalf("append through record 1 corrupted record 2: %+v", db.Enc)
	}
}

// allocBudgetFile writes a part file of enc-carrying records and returns its
// path and record count, shared by the alloc test and the decode benchmark.
func allocBudgetFile(tb testing.TB, n int) string {
	tb.Helper()
	rng := rand.New(rand.NewSource(77))
	edges := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		e := randEdge(rng)
		if len(e.Enc) == 0 { // keep the workload on the enc-decoding path
			e.Enc = longEncEdge(1 + i%4).Enc
		}
		edges = append(edges, e)
	}
	path := filepath.Join(tb.TempDir(), "alloc.edges")
	if _, err := WritePart(path, edges, PartInfo{Lo: 0, Hi: 1 << 30}); err != nil {
		tb.Fatal(err)
	}
	return path
}

// TestDecodeAllocBudget is the regression gate on the zero-copy read path:
// decoding must stay near zero allocations per record (the arena amortizes
// one slice allocation over thousands of elements), and well under the
// legacy decoder's one-allocation-per-encoding floor. `make ci` runs this
// via the alloc-budget target.
func TestDecodeAllocBudget(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	const n = 2000
	path := allocBudgetFile(t, n)
	perRecord := func(opt ReadOptions) float64 {
		dst := make([]Edge, 0, n)
		allocs := testing.AllocsPerRun(5, func() {
			var err error
			dst, _, _, err = ReadPartWith(path, dst[:0], opt)
			if err != nil {
				t.Fatal(err)
			}
		})
		return allocs / n
	}
	fast := perRecord(ReadOptions{})
	slow := perRecord(ReadOptions{LegacyDecode: true})
	t.Logf("allocs/record: zero-copy %.4f, legacy %.4f", fast, slow)
	if fast > 0.05 {
		t.Fatalf("zero-copy decode allocates %.4f/record, budget is 0.05", fast)
	}
	if slow > 0 && fast > 0.5*slow {
		t.Fatalf("zero-copy (%.4f/record) not under half of legacy (%.4f/record)", fast, slow)
	}
}

// BenchmarkDecodeRecord reports ns/record and allocs/record for both v2
// decode modes over a realistic enc-carrying partition file.
func BenchmarkDecodeRecord(b *testing.B) {
	const n = 5000
	path := allocBudgetFile(b, n)
	for _, mode := range []struct {
		name string
		opt  ReadOptions
	}{
		{"zero-copy", ReadOptions{}},
		{"legacy", ReadOptions{LegacyDecode: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			dst := make([]Edge, 0, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				dst, _, _, err = ReadPartWith(path, dst[:0], mode.opt)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/n, "ns/record")
			runtime.KeepAlive(dst)
		})
	}
}

// TestCorruptionMatrixMidRecordTruncation extends the corruption matrix with
// the one class only the record decoder can catch: a block whose payload was
// cut mid-record but whose header (plen, count, CRC) was rewritten to be
// self-consistent. The block CRC verifies, so rejection has to come from the
// decode loop — in both decode modes, tagged ErrCorrupt.
func TestCorruptionMatrixMidRecordTruncation(t *testing.T) {
	dir := t.TempDir()
	e := longEncEdge(6)
	e.HasRel = true
	edges := []Edge{longEncEdge(2), e}
	pristine := filepath.Join(dir, "pristine.edges")
	if _, err := WritePart(pristine, edges, PartInfo{Lo: 0, Hi: 64}); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(pristine)
	if err != nil {
		t.Fatal(err)
	}
	// Single block: header | blockHeader | payload | trailer.
	payloadLen := len(good) - headerSize - blockHeaderSize - trailerSize
	payload := good[headerSize+blockHeaderSize : headerSize+blockHeaderSize+payloadLen]
	firstLen := len(appendRecordV2(nil, &edges[0]))
	// Cut mid-way through the second record, keep count=2, and recompute
	// plen and the payload CRC so only the record decoder notices.
	cutPayload := payload[:firstLen+(len(payload)-firstLen)/2]
	mut := make([]byte, 0, len(good))
	mut = append(mut, good[:headerSize]...)
	var bh [blockHeaderSize]byte
	putU32 := func(b []byte, v uint32) {
		b[0] = byte(v)
		b[1] = byte(v >> 8)
		b[2] = byte(v >> 16)
		b[3] = byte(v >> 24)
	}
	putU32(bh[0:], uint32(len(cutPayload)))
	putU32(bh[4:], 2)
	putU32(bh[8:], crcOf(cutPayload))
	mut = append(mut, bh[:]...)
	mut = append(mut, cutPayload...)
	mut = append(mut, good[len(good)-trailerSize:]...)

	path := filepath.Join(dir, "midcut.edges")
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		opt  ReadOptions
	}{
		{"zero-copy", ReadOptions{}},
		{"legacy", ReadOptions{LegacyDecode: true}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			_, _, _, err := ReadPartWith(path, nil, mode.opt)
			if err == nil {
				t.Fatal("mid-record truncation with consistent CRC accepted")
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error not tagged ErrCorrupt: %v", err)
			}
		})
	}
}

// TestReadPartPrefixCursorEquivalence is the decoder-equivalence test for
// the resume-path prefix reader, which now decodes through the zero-copy
// cursor: on pristine files, files with a post-checkpoint suffix, and files
// truncated at every torn-append boundary, its recovered prefix must be
// byte-identical to what the legacy stream decoder reconstructs via
// ReadPartWith(LegacyDecode) on the intact original.
func TestReadPartPrefixCursorEquivalence(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(77))
	var edges []Edge
	for i := 0; i < 64; i++ {
		edges = append(edges, randEdge(rng))
	}
	edges = append(edges, longEncEdge(300)) // forces the arena down its big-chunk path
	path := filepath.Join(dir, "p.edges")
	if _, err := WritePart(path, edges[:48], PartInfo{Lo: 3, Hi: 17}); err != nil {
		t.Fatal(err)
	}
	if _, err := AppendPart(path, edges[48:]); err != nil {
		t.Fatal(err)
	}
	want, _, _, err := ReadPartWith(path, nil, ReadOptions{LegacyDecode: true})
	if err != nil {
		t.Fatal(err)
	}
	check := func(label string, n int64) {
		t.Helper()
		got, _, _, err := ReadPartPrefix(path, n)
		if err != nil {
			t.Fatalf("%s: prefix %d: %v", label, n, err)
		}
		if int64(len(got)) != n {
			t.Fatalf("%s: prefix %d returned %d edges", label, n, len(got))
		}
		for i := range got {
			if !edgesEqual(got[i], want[i]) {
				t.Fatalf("%s: prefix %d edge %d diverges from stream decode", label, n, i)
			}
		}
	}
	for _, n := range []int64{0, 1, 48, int64(len(edges))} {
		check("intact", n)
	}
	// Torn tails: cut the file anywhere inside the appended region; the
	// checkpointed 48-edge prefix must survive with identical content.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(raw) - 1; cut > len(raw)-trailerSize-8; cut-- {
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		check("torn", 48)
	}
}
