package storage

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"github.com/grapple-system/grapple/internal/cfet"
	"github.com/grapple-system/grapple/internal/fsm"
	"github.com/grapple-system/grapple/internal/grammar"
)

func randEdge(rng *rand.Rand) Edge {
	e := Edge{
		Src:   rng.Uint32(),
		Dst:   rng.Uint32(),
		Label: grammar.Label(rng.Intn(1 << 14)),
		Gen:   rng.Uint32(),
	}
	if rng.Intn(2) == 0 {
		e.HasRel = true
		for i := range e.Rel {
			e.Rel[i] = uint16(rng.Intn(1 << 16))
		}
	}
	n := rng.Intn(6)
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			e.Enc = append(e.Enc, cfet.Interval(
				cfet.MethodID(rng.Intn(1000)),
				uint64(rng.Intn(1<<20)),
				uint64(rng.Intn(1<<20))))
		case 1:
			e.Enc = append(e.Enc, cfet.CallElem(int32(rng.Intn(1<<20))))
		default:
			e.Enc = append(e.Enc, cfet.RetElem(int32(rng.Intn(1<<20))))
		}
	}
	return e
}

func edgesEqual(a, b Edge) bool {
	return a.Src == b.Src && a.Dst == b.Dst && a.Label == b.Label &&
		a.Gen == b.Gen && a.HasRel == b.HasRel && a.Rel == b.Rel &&
		a.Enc.Equal(b.Enc)
}

func mustAppendRecord(t *testing.T, dst []byte, e *Edge) []byte {
	t.Helper()
	out, err := AppendRecord(dst, e)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRecordRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var buf []byte
		var want []Edge
		for i := 0; i < 10; i++ {
			e := randEdge(rng)
			want = append(want, e)
			var err error
			buf, err = AppendRecord(buf, &e)
			if err != nil {
				return false
			}
		}
		r := bufio.NewReader(bytes.NewReader(buf))
		for _, w := range want {
			var got Edge
			if err := ReadRecord(r, &got); err != nil {
				return false
			}
			if !edgesEqual(got, w) {
				return false
			}
		}
		var trailing Edge
		return ReadRecord(r, &trailing) == io.EOF
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordV2RoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var buf []byte
		var want []Edge
		for i := 0; i < 10; i++ {
			e := randEdge(rng)
			want = append(want, e)
			buf = appendRecordV2(buf, &e)
		}
		r := bytes.NewReader(buf)
		for _, w := range want {
			var got Edge
			if err := decodeRecord(r, &got, true); err != nil {
				return false
			}
			if !edgesEqual(got, w) {
				return false
			}
		}
		return r.Len() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedRecord(t *testing.T) {
	e := randEdge(rand.New(rand.NewSource(1)))
	buf := mustAppendRecord(t, nil, &e)
	for cut := 1; cut < len(buf); cut++ {
		r := bufio.NewReader(bytes.NewReader(buf[:cut]))
		var got Edge
		if err := ReadRecord(r, &got); err == nil {
			t.Fatalf("cut=%d: no error", cut)
		}
	}
}

// longEncEdge builds an edge whose path encoding exceeds the legacy v1
// single-byte length field.
func longEncEdge(n int) Edge {
	e := Edge{Src: 7, Dst: 9, Label: 3}
	for i := 0; i < n; i++ {
		e.Enc = append(e.Enc, cfet.CallElem(int32(i)))
	}
	return e
}

func TestAppendRecordLongEncodingErrors(t *testing.T) {
	// Regression: this used to panic ("storage: encoding too long").
	e := longEncEdge(300)
	if _, err := AppendRecord(nil, &e); err == nil {
		t.Fatal("v1 AppendRecord accepted a 300-element encoding")
	}
	// Exactly 255 still fits.
	ok := longEncEdge(255)
	if _, err := AppendRecord(nil, &ok); err != nil {
		t.Fatalf("255-element encoding rejected: %v", err)
	}
}

func TestLongEncodingRoundTripsInV2(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "long.edges")
	want := []Edge{longEncEdge(300), longEncEdge(1000)}
	if _, err := WritePart(path, want, PartInfo{}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d edges want %d", len(got), len(want))
	}
	for i := range want {
		if !edgesEqual(got[i], want[i]) {
			t.Fatalf("edge %d mismatch", i)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p0.edges")
	rng := rand.New(rand.NewSource(99))
	var want []Edge
	for i := 0; i < 1000; i++ {
		want = append(want, randEdge(rng))
	}
	info := PartInfo{Lo: 17, Hi: 4242}
	n, err := WritePart(path, want, info)
	if err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != st.Size() {
		t.Fatalf("WritePart reported %d bytes, file has %d", n, st.Size())
	}
	got, gotInfo, read, err := ReadPart(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gotInfo != info {
		t.Fatalf("PartInfo round trip: got %+v want %+v", gotInfo, info)
	}
	if read != n {
		t.Fatalf("ReadPart reported %d bytes, wrote %d", read, n)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d edges want %d", len(got), len(want))
	}
	for i := range want {
		if !edgesEqual(got[i], want[i]) {
			t.Fatalf("edge %d mismatch", i)
		}
	}
	if entries, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(entries) != 0 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}

func TestWriteFileEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.edges")
	if err := WriteFile(path, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path, nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty v2 file: %v %v", got, err)
	}
}

func TestAppendFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p1.edges")
	rng := rand.New(rand.NewSource(5))
	a := []Edge{randEdge(rng), randEdge(rng)}
	b := []Edge{randEdge(rng)}
	if err := AppendFile(path, a); err != nil {
		t.Fatal(err)
	}
	if err := AppendFile(path, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d edges", len(got))
	}
	if !edgesEqual(got[2], b[0]) {
		t.Fatal("appended edge mismatch")
	}
}

func TestAppendToWrittenPart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p2.edges")
	rng := rand.New(rand.NewSource(6))
	base := []Edge{randEdge(rng), randEdge(rng), randEdge(rng)}
	if _, err := WritePart(path, base, PartInfo{Lo: 1, Hi: 5}); err != nil {
		t.Fatal(err)
	}
	more := []Edge{randEdge(rng), longEncEdge(400)}
	if _, err := AppendPart(path, more); err != nil {
		t.Fatal(err)
	}
	got, info, _, err := ReadPart(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info != (PartInfo{Lo: 1, Hi: 5}) {
		t.Fatalf("append clobbered header info: %+v", info)
	}
	want := append(append([]Edge{}, base...), more...)
	if len(got) != len(want) {
		t.Fatalf("got %d edges want %d", len(got), len(want))
	}
	for i := range want {
		if !edgesEqual(got[i], want[i]) {
			t.Fatalf("edge %d mismatch", i)
		}
	}
}

// TestLegacyV1ReadBack writes a bare v1 record stream (the pre-v2 format)
// and checks both ReadPart's transparent fallback and legacy append.
func TestLegacyV1ReadBack(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "legacy.edges")
	rng := rand.New(rand.NewSource(11))
	var want []Edge
	var buf []byte
	for i := 0; i < 50; i++ {
		e := randEdge(rng)
		want = append(want, e)
		buf = mustAppendRecord(t, buf, &e)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	got, info, _, err := ReadPart(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.known() {
		t.Fatalf("legacy file reported interval %+v", info)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d edges want %d", len(got), len(want))
	}
	for i := range want {
		if !edgesEqual(got[i], want[i]) {
			t.Fatalf("edge %d mismatch", i)
		}
	}
	// Appending to a legacy file stays in the legacy format and read-back
	// still sees one coherent stream.
	extra := randEdge(rng)
	if err := AppendFile(path, []Edge{extra}); err != nil {
		t.Fatal(err)
	}
	got, err = ReadFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want)+1 || !edgesEqual(got[len(got)-1], extra) {
		t.Fatalf("legacy append mismatch: %d edges", len(got))
	}
}

func TestLegacyAppendRejectsLongEncoding(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "legacy.edges")
	e := randEdge(rand.New(rand.NewSource(12)))
	buf := mustAppendRecord(t, nil, &e)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AppendFile(path, []Edge{longEncEdge(300)}); err == nil {
		t.Fatal("legacy append accepted an encoding v1 cannot represent")
	}
}

// TestCorruptionMatrix checks that every corruption class is rejected with
// a diagnosable error (wrapped ErrCorrupt) instead of being misparsed,
// panicking, or silently decoding zero values.
func TestCorruptionMatrix(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(42))
	var edges []Edge
	for i := 0; i < 200; i++ {
		edges = append(edges, randEdge(rng))
	}
	pristine := filepath.Join(dir, "pristine.edges")
	if _, err := WritePart(pristine, edges, PartInfo{Lo: 0, Hi: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(pristine)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated mid-block", func(b []byte) []byte { return b[:len(b)/2] }},
		{"truncated trailer", func(b []byte) []byte { return b[:len(b)-1] }},
		{"missing trailer", func(b []byte) []byte { return b[:len(b)-trailerSize] }},
		{"short header", func(b []byte) []byte { return b[:headerSize-4] }},
		{"stale version byte", func(b []byte) []byte {
			c := append([]byte{}, b...)
			binary.LittleEndian.PutUint16(c[4:], 1) // claim format v1 under the v2 magic
			binary.LittleEndian.PutUint32(c[20:], crcOf(c[:20]))
			return c
		}},
		{"header bit flip", func(b []byte) []byte {
			c := append([]byte{}, b...)
			c[9] ^= 0x40 // inside lo, covered by the header CRC
			return c
		}},
		{"block payload bit flip", func(b []byte) []byte {
			c := append([]byte{}, b...)
			c[headerSize+blockHeaderSize+10] ^= 0x01
			return c
		}},
		{"rel payload bit flip", func(b []byte) []byte {
			// Any in-block flip must be caught by the block CRC — this is the
			// class that used to silently flip verdicts via a zero/garbled Rel.
			c := append([]byte{}, b...)
			c[len(c)-trailerSize-3] ^= 0x80
			return c
		}},
		{"trailer count lie", func(b []byte) []byte {
			c := append([]byte{}, b...)
			off := len(c) - trailerSize
			binary.LittleEndian.PutUint64(c[off+4:], 9999)
			binary.LittleEndian.PutUint32(c[off+16:], crcOf(c[off:off+16]))
			return c
		}},
		{"trailing garbage", func(b []byte) []byte { return append(append([]byte{}, b...), 0xAB) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, "corrupt.edges")
			if err := os.WriteFile(path, tc.mutate(append([]byte{}, good...)), 0o644); err != nil {
				t.Fatal(err)
			}
			_, _, _, err := ReadPart(path, nil)
			if err == nil {
				t.Fatal("corrupted file accepted")
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error not tagged ErrCorrupt: %v", err)
			}
		})
	}

	t.Run("append to corrupt file", func(t *testing.T) {
		path := filepath.Join(dir, "corrupt-append.edges")
		if err := os.WriteFile(path, good[:len(good)-3], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := AppendPart(path, edges[:1]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("append to torn file: %v", err)
		}
	})
}

func crcOf(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

func TestWritePartReplacesStaleTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.edges")
	// A stale temp file from a crashed writer must not break the next write.
	if err := os.WriteFile(path+".tmp", []byte("stale garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	e := randEdge(rand.New(rand.NewSource(3)))
	if _, err := WritePart(path, []Edge{e}, PartInfo{}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file survived a successful write")
	}
	got, err := ReadFile(path, nil)
	if err != nil || len(got) != 1 {
		t.Fatalf("read back: %v %v", got, err)
	}
}

func TestWritePartCleansTempOnFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.edges")
	// Make the rename fail: the destination is a non-empty directory.
	if err := os.MkdirAll(filepath.Join(path, "block"), 0o755); err != nil {
		t.Fatal(err)
	}
	e := randEdge(rand.New(rand.NewSource(4)))
	if _, err := WritePart(path, []Edge{e}, PartInfo{}); err == nil {
		t.Fatal("WritePart over a directory succeeded")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file not cleaned up after failed write")
	}
}

func TestReadMissingFileIsEmpty(t *testing.T) {
	got, err := ReadFile(filepath.Join(t.TempDir(), "nope.edges"), nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("missing file: %v %v", got, err)
	}
}

func TestKeyDistinguishes(t *testing.T) {
	base := Edge{Src: 1, Dst: 2, Label: 3, Enc: cfet.Enc{cfet.Interval(0, 0, 5)}}
	variants := []Edge{
		{Src: 9, Dst: 2, Label: 3, Enc: base.Enc},
		{Src: 1, Dst: 9, Label: 3, Enc: base.Enc},
		{Src: 1, Dst: 2, Label: 9, Enc: base.Enc},
		{Src: 1, Dst: 2, Label: 3, Enc: cfet.Enc{cfet.Interval(0, 0, 6)}},
		{Src: 1, Dst: 2, Label: 3, Enc: cfet.Enc{cfet.CallElem(5)}},
		{Src: 1, Dst: 2, Label: 3, Enc: base.Enc, HasRel: true, Rel: fsm.Identity()},
	}
	for i, v := range variants {
		if v.Key() == base.Key() {
			t.Errorf("variant %d collides with base", i)
		}
	}
	// Gen must NOT affect identity.
	withGen := base
	withGen.Gen = 77
	if withGen.Key() != base.Key() {
		t.Fatal("gen must not affect identity")
	}
}

func TestEndpointTriple(t *testing.T) {
	e := Edge{Src: 4, Dst: 5, Label: 6}
	if e.Endpoint() != (Endpoint{Src: 4, Dst: 5, Label: 6}) {
		t.Fatal("endpoint mismatch")
	}
}

func TestRecordSizePositive(t *testing.T) {
	e := randEdge(rand.New(rand.NewSource(2)))
	if RecordSize(&e) < 15 {
		t.Fatal("record size too small")
	}
}
