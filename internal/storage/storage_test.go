package storage

import (
	"bufio"
	"bytes"
	"io"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"github.com/grapple-system/grapple/internal/cfet"
	"github.com/grapple-system/grapple/internal/fsm"
	"github.com/grapple-system/grapple/internal/grammar"
)

func randEdge(rng *rand.Rand) Edge {
	e := Edge{
		Src:   rng.Uint32(),
		Dst:   rng.Uint32(),
		Label: grammar.Label(rng.Intn(1 << 14)),
		Gen:   rng.Uint32(),
	}
	if rng.Intn(2) == 0 {
		e.HasRel = true
		for i := range e.Rel {
			e.Rel[i] = uint16(rng.Intn(1 << 16))
		}
	}
	n := rng.Intn(6)
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			e.Enc = append(e.Enc, cfet.Interval(
				cfet.MethodID(rng.Intn(1000)),
				uint64(rng.Intn(1<<20)),
				uint64(rng.Intn(1<<20))))
		case 1:
			e.Enc = append(e.Enc, cfet.CallElem(int32(rng.Intn(1<<20))))
		default:
			e.Enc = append(e.Enc, cfet.RetElem(int32(rng.Intn(1<<20))))
		}
	}
	return e
}

func edgesEqual(a, b Edge) bool {
	return a.Src == b.Src && a.Dst == b.Dst && a.Label == b.Label &&
		a.Gen == b.Gen && a.HasRel == b.HasRel && a.Rel == b.Rel &&
		a.Enc.Equal(b.Enc)
}

func TestRecordRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var buf []byte
		var want []Edge
		for i := 0; i < 10; i++ {
			e := randEdge(rng)
			want = append(want, e)
			buf = AppendRecord(buf, &e)
		}
		r := bufio.NewReader(bytes.NewReader(buf))
		for _, w := range want {
			var got Edge
			if err := ReadRecord(r, &got); err != nil {
				return false
			}
			if !edgesEqual(got, w) {
				return false
			}
		}
		var trailing Edge
		return ReadRecord(r, &trailing) == io.EOF
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedRecord(t *testing.T) {
	e := randEdge(rand.New(rand.NewSource(1)))
	buf := AppendRecord(nil, &e)
	for cut := 1; cut < len(buf); cut++ {
		r := bufio.NewReader(bytes.NewReader(buf[:cut]))
		var got Edge
		if err := ReadRecord(r, &got); err == nil {
			t.Fatalf("cut=%d: no error", cut)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p0.edges")
	rng := rand.New(rand.NewSource(99))
	var want []Edge
	for i := 0; i < 1000; i++ {
		want = append(want, randEdge(rng))
	}
	if err := WriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d edges want %d", len(got), len(want))
	}
	for i := range want {
		if !edgesEqual(got[i], want[i]) {
			t.Fatalf("edge %d mismatch", i)
		}
	}
}

func TestAppendFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p1.edges")
	rng := rand.New(rand.NewSource(5))
	a := []Edge{randEdge(rng), randEdge(rng)}
	b := []Edge{randEdge(rng)}
	if err := AppendFile(path, a); err != nil {
		t.Fatal(err)
	}
	if err := AppendFile(path, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d edges", len(got))
	}
	if !edgesEqual(got[2], b[0]) {
		t.Fatal("appended edge mismatch")
	}
}

func TestReadMissingFileIsEmpty(t *testing.T) {
	got, err := ReadFile(filepath.Join(t.TempDir(), "nope.edges"), nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("missing file: %v %v", got, err)
	}
}

func TestKeyDistinguishes(t *testing.T) {
	base := Edge{Src: 1, Dst: 2, Label: 3, Enc: cfet.Enc{cfet.Interval(0, 0, 5)}}
	variants := []Edge{
		{Src: 9, Dst: 2, Label: 3, Enc: base.Enc},
		{Src: 1, Dst: 9, Label: 3, Enc: base.Enc},
		{Src: 1, Dst: 2, Label: 9, Enc: base.Enc},
		{Src: 1, Dst: 2, Label: 3, Enc: cfet.Enc{cfet.Interval(0, 0, 6)}},
		{Src: 1, Dst: 2, Label: 3, Enc: cfet.Enc{cfet.CallElem(5)}},
		{Src: 1, Dst: 2, Label: 3, Enc: base.Enc, HasRel: true, Rel: fsm.Identity()},
	}
	for i, v := range variants {
		if v.Key() == base.Key() {
			t.Errorf("variant %d collides with base", i)
		}
	}
	// Gen must NOT affect identity.
	withGen := base
	withGen.Gen = 77
	if withGen.Key() != base.Key() {
		t.Fatal("gen must not affect identity")
	}
}

func TestEndpointTriple(t *testing.T) {
	e := Edge{Src: 4, Dst: 5, Label: 6}
	if e.Endpoint() != (Endpoint{Src: 4, Dst: 5, Label: 6}) {
		t.Fatal("endpoint mismatch")
	}
}

func TestRecordSizePositive(t *testing.T) {
	e := randEdge(rand.New(rand.NewSource(2)))
	if RecordSize(&e) < 15 {
		t.Fatal("record size too small")
	}
}
