// Run journal: durable superstep checkpoints for the engine.
//
// A journal file is
//
//	Header  Record*
//
// Header (24 bytes):
//
//	magic    [4]byte  "GPLJ"
//	version  uint16   1
//	hsize    uint16   24
//	vertices uint32   engine vertex-space size
//	tag      uint64   caller-chosen run identity (rejects stale journals)
//	crc      uint32   IEEE CRC32 of the 20 bytes above
//
// Record (framed):
//
//	rlen    uint32   payload length in bytes
//	payload          uvarint-encoded JournalRecord
//	crc     uint32   IEEE CRC32 of the payload
//
// Records are append-only and each append is fsynced, so the journal is a
// write-ahead log of completed supersteps. A torn append (crash mid-write)
// leaves a frame whose length, checksum, or payload fails to parse; readers
// stop at the first invalid frame and resume from the previous record — a
// half-written checkpoint is never half-visible. A header that fails to
// parse means the journal itself is unusable: ErrCorrupt. A missing file is
// ErrNoJournal, distinct from corruption so callers can refuse to silently
// start cold.
package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"github.com/grapple-system/grapple/internal/faultpoint"
)

// JournalName is the journal's filename inside an engine directory.
const JournalName = "journal.grj"

// JournalVersion is the current journal format.
const JournalVersion = 1

const (
	journalHeaderSize = 24
	// maxJournalPayload rejects absurd record lengths before allocation.
	// Real records are a few KiB (one entry per partition).
	maxJournalPayload = 16 << 20
)

var journalMagic = [4]byte{'G', 'P', 'L', 'J'}

// ErrNoJournal reports that an engine directory has no journal file. It is
// distinct from ErrCorrupt so resume can tell "never journaled" from
// "journal damaged".
var ErrNoJournal = errors.New("no run journal")

// JournalMeta identifies the run a journal belongs to. Resume rejects a
// journal whose meta does not match the new run's.
type JournalMeta struct {
	// NumVertices is the engine's vertex-space size.
	NumVertices uint32
	// Tag is a caller-chosen fingerprint of the run's inputs (graph shape,
	// property set, options that change edge production). A journal written
	// under a different tag is stale, not resumable.
	Tag uint64
}

// JournalPart records one partition's durable state at a checkpoint.
type JournalPart struct {
	ID     int    // stable partition identity (survives repartitioning)
	Lo, Hi uint32 // vertex interval [Lo, Hi)
	Edges  int64  // edge count at the checkpoint; resume reads exactly this prefix
	MaxGen uint32
	Path   string // file basename inside the engine directory
}

// JournalGen records the last-joined generation for one partition pair.
type JournalGen struct {
	A, B int
	Gen  uint32
}

// JournalRecord is one durable superstep checkpoint.
type JournalRecord struct {
	Seq          uint64 // 0 for the post-preprocess baseline, then 1, 2, ...
	Completed    bool   // true on the final record of a finished run
	Iterations   int64
	CurGen       uint32
	EdgesBefore  int64
	Repartitions int64
	Widened      int64
	// HotA, HotB are the partition IDs of the last-joined pair (-1, -1 when
	// none). The pair scheduler consults them, so they are part of the
	// deterministic resume state.
	HotA, HotB int
	Parts      []JournalPart
	LastGen    []JournalGen
}

func corruptJournal(path, format string, args ...any) error {
	return fmt.Errorf("storage: %s: %w: %s", path, ErrCorrupt, fmt.Sprintf(format, args...))
}

func encodeJournalHeader(meta JournalMeta) []byte {
	buf := make([]byte, journalHeaderSize)
	copy(buf, journalMagic[:])
	binary.LittleEndian.PutUint16(buf[4:], JournalVersion)
	binary.LittleEndian.PutUint16(buf[6:], journalHeaderSize)
	binary.LittleEndian.PutUint32(buf[8:], meta.NumVertices)
	binary.LittleEndian.PutUint64(buf[12:], meta.Tag)
	binary.LittleEndian.PutUint32(buf[20:], crc32.ChecksumIEEE(buf[:20]))
	return buf
}

func decodeJournalHeader(path string, buf []byte) (JournalMeta, error) {
	if len(buf) < journalHeaderSize {
		return JournalMeta{}, corruptJournal(path, "short header: %d bytes", len(buf))
	}
	if !bytes.Equal(buf[:4], journalMagic[:]) {
		return JournalMeta{}, corruptJournal(path, "bad magic %q", buf[:4])
	}
	if got := crc32.ChecksumIEEE(buf[:20]); got != binary.LittleEndian.Uint32(buf[20:]) {
		return JournalMeta{}, corruptJournal(path, "header checksum mismatch")
	}
	if v := binary.LittleEndian.Uint16(buf[4:]); v != JournalVersion {
		return JournalMeta{}, corruptJournal(path, "unsupported journal version %d (want %d)", v, JournalVersion)
	}
	if hs := binary.LittleEndian.Uint16(buf[6:]); hs != journalHeaderSize {
		return JournalMeta{}, corruptJournal(path, "unexpected header size %d", hs)
	}
	return JournalMeta{
		NumVertices: binary.LittleEndian.Uint32(buf[8:]),
		Tag:         binary.LittleEndian.Uint64(buf[12:]),
	}, nil
}

func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

func appendVarint(dst []byte, v int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

func encodeJournalRecord(dst []byte, rec *JournalRecord) []byte {
	dst = appendUvarint(dst, rec.Seq)
	flags := byte(0)
	if rec.Completed {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = appendUvarint(dst, uint64(rec.Iterations))
	dst = appendUvarint(dst, uint64(rec.CurGen))
	dst = appendUvarint(dst, uint64(rec.EdgesBefore))
	dst = appendUvarint(dst, uint64(rec.Repartitions))
	dst = appendUvarint(dst, uint64(rec.Widened))
	dst = appendVarint(dst, int64(rec.HotA))
	dst = appendVarint(dst, int64(rec.HotB))
	dst = appendUvarint(dst, uint64(len(rec.Parts)))
	for _, p := range rec.Parts {
		dst = appendUvarint(dst, uint64(p.ID))
		dst = appendUvarint(dst, uint64(p.Lo))
		dst = appendUvarint(dst, uint64(p.Hi))
		dst = appendUvarint(dst, uint64(p.Edges))
		dst = appendUvarint(dst, uint64(p.MaxGen))
		dst = appendUvarint(dst, uint64(len(p.Path)))
		dst = append(dst, p.Path...)
	}
	dst = appendUvarint(dst, uint64(len(rec.LastGen)))
	for _, g := range rec.LastGen {
		dst = appendUvarint(dst, uint64(g.A))
		dst = appendUvarint(dst, uint64(g.B))
		dst = appendUvarint(dst, uint64(g.Gen))
	}
	return dst
}

// decodeJournalRecord parses one record payload. Any structural problem is
// an error; the caller maps it to "torn tail, stop here".
func decodeJournalRecord(payload []byte) (*JournalRecord, error) {
	r := bytes.NewReader(payload)
	u := func() (uint64, error) { return binary.ReadUvarint(r) }
	var rec JournalRecord
	var err error
	if rec.Seq, err = u(); err != nil {
		return nil, fmt.Errorf("seq: %w", err)
	}
	flags, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("flags: %w", err)
	}
	if flags&^byte(1) != 0 {
		return nil, fmt.Errorf("bad flags %#x", flags)
	}
	rec.Completed = flags&1 != 0
	geti64 := func(name string) (int64, error) {
		v, err := u()
		if err != nil {
			return 0, fmt.Errorf("%s: %w", name, err)
		}
		if v > 1<<62 {
			return 0, fmt.Errorf("%s: implausible value %d", name, v)
		}
		return int64(v), nil
	}
	getu32 := func(name string) (uint32, error) {
		v, err := u()
		if err != nil {
			return 0, fmt.Errorf("%s: %w", name, err)
		}
		if v > 1<<32-1 {
			return 0, fmt.Errorf("%s: value %d overflows uint32", name, v)
		}
		return uint32(v), nil
	}
	if rec.Iterations, err = geti64("iterations"); err != nil {
		return nil, err
	}
	if rec.CurGen, err = getu32("curGen"); err != nil {
		return nil, err
	}
	if rec.EdgesBefore, err = geti64("edgesBefore"); err != nil {
		return nil, err
	}
	if rec.Repartitions, err = geti64("repartitions"); err != nil {
		return nil, err
	}
	if rec.Widened, err = geti64("widened"); err != nil {
		return nil, err
	}
	getpos := func(name string) (int, error) {
		v, err := binary.ReadVarint(r)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", name, err)
		}
		if v < -1 || v > 1<<31 {
			return 0, fmt.Errorf("%s: implausible value %d", name, v)
		}
		return int(v), nil
	}
	if rec.HotA, err = getpos("hotA"); err != nil {
		return nil, err
	}
	if rec.HotB, err = getpos("hotB"); err != nil {
		return nil, err
	}
	nparts, err := u()
	if err != nil {
		return nil, fmt.Errorf("part count: %w", err)
	}
	// Each part costs at least 6 payload bytes; reject counts the remaining
	// payload cannot possibly hold before allocating.
	if nparts > uint64(r.Len()) {
		return nil, fmt.Errorf("part count %d exceeds remaining payload %d", nparts, r.Len())
	}
	rec.Parts = make([]JournalPart, 0, nparts)
	for i := uint64(0); i < nparts; i++ {
		var p JournalPart
		id, err := geti64("part id")
		if err != nil {
			return nil, err
		}
		p.ID = int(id)
		if p.Lo, err = getu32("part lo"); err != nil {
			return nil, err
		}
		if p.Hi, err = getu32("part hi"); err != nil {
			return nil, err
		}
		if p.Edges, err = geti64("part edges"); err != nil {
			return nil, err
		}
		if p.MaxGen, err = getu32("part maxGen"); err != nil {
			return nil, err
		}
		plen, err := u()
		if err != nil {
			return nil, fmt.Errorf("part path len: %w", err)
		}
		if plen > uint64(r.Len()) {
			return nil, fmt.Errorf("part path length %d exceeds remaining payload %d", plen, r.Len())
		}
		pbuf := make([]byte, plen)
		if _, err := io.ReadFull(r, pbuf); err != nil {
			return nil, fmt.Errorf("part path: %w", err)
		}
		p.Path = string(pbuf)
		// Paths are basenames inside the engine directory; anything else is
		// either corruption or an attempt to escape the directory.
		if p.Path == "" || p.Path != filepath.Base(p.Path) {
			return nil, fmt.Errorf("part path %q is not a bare filename", p.Path)
		}
		rec.Parts = append(rec.Parts, p)
	}
	ngens, err := u()
	if err != nil {
		return nil, fmt.Errorf("lastGen count: %w", err)
	}
	if ngens > uint64(r.Len()) {
		return nil, fmt.Errorf("lastGen count %d exceeds remaining payload %d", ngens, r.Len())
	}
	rec.LastGen = make([]JournalGen, 0, ngens)
	for i := uint64(0); i < ngens; i++ {
		var g JournalGen
		a, err := geti64("lastGen a")
		if err != nil {
			return nil, err
		}
		b, err := geti64("lastGen b")
		if err != nil {
			return nil, err
		}
		g.A, g.B = int(a), int(b)
		if g.Gen, err = getu32("lastGen gen"); err != nil {
			return nil, err
		}
		rec.LastGen = append(rec.LastGen, g)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%d bytes of slack after record", r.Len())
	}
	return &rec, nil
}

// JournalWriter appends checkpoint records to a run journal. Not safe for
// concurrent use; the engine checkpoints from its single coordinator
// goroutine.
type JournalWriter struct {
	f      *os.File
	path   string
	faults *faultpoint.Set
	frame  []byte
}

// CreateJournal atomically creates (or replaces) the journal in dir and
// returns a writer positioned after the header. The header lands via the
// crash-safe temp → fsync → rename → fsync-dir path, so a crash during
// creation never leaves a journal with a torn header under the real name.
func CreateJournal(dir string, meta JournalMeta, faults *faultpoint.Set) (*JournalWriter, error) {
	path := filepath.Join(dir, JournalName)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*JournalWriter, error) {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if _, err := f.Write(encodeJournalHeader(meta)); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	if err := syncDir(path); err != nil {
		return nil, err
	}
	w, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return nil, err
	}
	return &JournalWriter{f: w, path: path, faults: faults}, nil
}

// Append frames rec, writes it, and fsyncs. On return the checkpoint is
// durable. Returns the bytes written.
func (w *JournalWriter) Append(rec *JournalRecord) (int64, error) {
	payload := encodeJournalRecord(w.frame[:0], rec)
	if len(payload) > maxJournalPayload {
		return 0, fmt.Errorf("storage: %s: journal record too large: %d bytes", w.path, len(payload))
	}
	w.frame = payload // keep the grown buffer for reuse
	frame := make([]byte, 0, 4+len(payload)+4)
	var head [4]byte
	binary.LittleEndian.PutUint32(head[:], uint32(len(payload)))
	frame = append(frame, head[:]...)
	frame = append(frame, payload...)
	binary.LittleEndian.PutUint32(head[:], crc32.ChecksumIEEE(payload))
	frame = append(frame, head[:]...)
	if err := w.faults.Hit(faultpoint.JournalAppendMid); err != nil {
		// Simulate a torn write: a prefix of the frame reaches the file, no
		// fsync, and the process "dies" (the injected error propagates up).
		if _, werr := w.f.Write(frame[:len(frame)/2]); werr != nil {
			return 0, werr
		}
		return 0, err
	}
	if _, err := w.f.Write(frame); err != nil {
		return 0, err
	}
	if err := w.f.Sync(); err != nil {
		return 0, err
	}
	return int64(len(frame)), nil
}

// Close releases the writer's file handle.
func (w *JournalWriter) Close() error {
	if w == nil || w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// ReadJournal parses the journal in dir. A missing file wraps ErrNoJournal;
// an unparseable header wraps ErrCorrupt. Record parsing is tolerant of a
// torn tail: decoding stops at the first frame that fails its length,
// checksum, or payload parse, and the valid prefix is returned along with
// validLen, the byte offset the journal should be truncated to before
// appending resumes.
func ReadJournal(dir string) (JournalMeta, []*JournalRecord, int64, error) {
	path := filepath.Join(dir, JournalName)
	buf, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return JournalMeta{}, nil, 0, fmt.Errorf("storage: %s: %w", path, ErrNoJournal)
		}
		return JournalMeta{}, nil, 0, err
	}
	meta, err := decodeJournalHeader(path, buf)
	if err != nil {
		return JournalMeta{}, nil, 0, err
	}
	var recs []*JournalRecord
	off := int64(journalHeaderSize)
	rest := buf[journalHeaderSize:]
	for len(rest) > 0 {
		if len(rest) < 4 {
			break // torn frame length
		}
		rlen := binary.LittleEndian.Uint32(rest)
		if rlen == 0 || rlen > maxJournalPayload || int(rlen)+8 > len(rest) {
			break // implausible or truncated frame
		}
		payload := rest[4 : 4+rlen]
		want := binary.LittleEndian.Uint32(rest[4+rlen:])
		if crc32.ChecksumIEEE(payload) != want {
			break // torn or bit-flipped payload
		}
		rec, err := decodeJournalRecord(payload)
		if err != nil {
			break // checksum passed but payload malformed: treat as torn
		}
		recs = append(recs, rec)
		off += int64(rlen) + 8
		rest = rest[rlen+8:]
	}
	return meta, recs, off, nil
}

// OpenJournal reads the journal in dir, truncates any torn tail, and
// returns a writer positioned for further appends plus the parsed records.
// The writer leads the result list: callers own its open file from here on.
// Errors from ReadJournal (ErrNoJournal, ErrCorrupt) pass through.
func OpenJournal(dir string, faults *faultpoint.Set) (*JournalWriter, JournalMeta, []*JournalRecord, error) {
	meta, recs, validLen, err := ReadJournal(dir)
	if err != nil {
		return nil, JournalMeta{}, nil, err
	}
	path := filepath.Join(dir, JournalName)
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return nil, JournalMeta{}, nil, err
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, JournalMeta{}, nil, err
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, JournalMeta{}, nil, err
	}
	return &JournalWriter{f: f, path: path, faults: faults}, meta, recs, nil
}
