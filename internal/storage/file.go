// Partition file format v2.
//
// A v2 partition file is
//
//	Header  Block*  Trailer
//
// Header (24 bytes):
//
//	magic   [4]byte  "GPLP"
//	version uint16   2
//	hsize   uint16   24
//	lo      uint32   vertex interval low  (0 when unknown)
//	hi      uint32   vertex interval high (0 when unknown)
//	reserved uint32  0
//	crc     uint32   IEEE CRC32 of the 20 bytes above
//
// Block (12-byte header + payload):
//
//	plen    uint32   payload length in bytes
//	count   uint32   record count in the payload
//	crc     uint32   IEEE CRC32 of the payload
//	payload          count v2 records, back to back
//
// Trailer (20 bytes):
//
//	magic   [4]byte  "GPLT"
//	edges   uint64   total record count
//	blocks  uint32   block count
//	crc     uint32   IEEE CRC32 of the 16 bytes above
//
// The trailer doubles as a commit record for appends: a reader requires a
// valid trailer whose edge and block counts match what it decoded, so a
// torn append (or any truncation) is detected instead of misparsed. Whole-
// file writes are additionally crash-safe: write temp → fsync file → rename
// → fsync directory, so a crash never leaves a half-written file under the
// partition's name.
//
// Files written before format v2 carry no magic; ReadPart sniffs the first
// four bytes and falls back to the legacy bare-record-stream decoder. (A v1
// record whose source vertex happens to equal 0x504c5047 — "GPLP" little-
// endian, vertex ~1.3 billion — would be misidentified; the engine's vertex
// spaces are nowhere near that.)
package storage

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// FormatVersion is the current partition file format.
const FormatVersion = 2

const (
	headerSize      = 24
	trailerSize     = 20
	blockHeaderSize = 12
	// targetBlockSize bounds a block's payload; one CRC is computed (and
	// verified) per block, so blocks localize corruption without per-record
	// overhead.
	targetBlockSize = 256 << 10
	// maxBlockPayload rejects absurd block lengths before allocation. Records
	// are well under 1 KiB, so a block never legitimately exceeds the target
	// by more than one record.
	maxBlockPayload = targetBlockSize + (1 << 20)
)

var (
	fileMagic    = [4]byte{'G', 'P', 'L', 'P'}
	trailerMagic = [4]byte{'G', 'P', 'L', 'T'}
)

// ErrCorrupt tags every integrity failure ReadPart and AppendPart can
// detect (bad magic/version, checksum mismatch, truncation, torn append).
// Errors wrap it, so errors.Is(err, ErrCorrupt) distinguishes corruption
// from plain I/O failures.
var ErrCorrupt = errors.New("corrupt partition file")

func corruptf(path, format string, args ...any) error {
	return fmt.Errorf("storage: %s: %w: %s", path, ErrCorrupt, fmt.Sprintf(format, args...))
}

// PartInfo is the partition metadata a v2 header records.
type PartInfo struct {
	// Lo, Hi is the partition's vertex interval [Lo, Hi); both zero when the
	// writer did not know it (legacy files, bare WriteFile calls).
	Lo, Hi uint32
}

func (p PartInfo) known() bool { return p.Lo != 0 || p.Hi != 0 }

func encodeHeader(info PartInfo) []byte {
	buf := make([]byte, headerSize)
	copy(buf, fileMagic[:])
	binary.LittleEndian.PutUint16(buf[4:], FormatVersion)
	binary.LittleEndian.PutUint16(buf[6:], headerSize)
	binary.LittleEndian.PutUint32(buf[8:], info.Lo)
	binary.LittleEndian.PutUint32(buf[12:], info.Hi)
	binary.LittleEndian.PutUint32(buf[16:], 0)
	binary.LittleEndian.PutUint32(buf[20:], crc32.ChecksumIEEE(buf[:20]))
	return buf
}

func decodeHeader(path string, buf []byte) (PartInfo, error) {
	if len(buf) < headerSize {
		return PartInfo{}, corruptf(path, "short header: %d bytes", len(buf))
	}
	if !bytes.Equal(buf[:4], fileMagic[:]) {
		return PartInfo{}, corruptf(path, "bad magic %q", buf[:4])
	}
	if got := crc32.ChecksumIEEE(buf[:20]); got != binary.LittleEndian.Uint32(buf[20:]) {
		return PartInfo{}, corruptf(path, "header checksum mismatch")
	}
	if v := binary.LittleEndian.Uint16(buf[4:]); v != FormatVersion {
		return PartInfo{}, corruptf(path, "unsupported format version %d (want %d)", v, FormatVersion)
	}
	if hs := binary.LittleEndian.Uint16(buf[6:]); hs != headerSize {
		return PartInfo{}, corruptf(path, "unexpected header size %d", hs)
	}
	return PartInfo{
		Lo: binary.LittleEndian.Uint32(buf[8:]),
		Hi: binary.LittleEndian.Uint32(buf[12:]),
	}, nil
}

func encodeTrailer(edges uint64, blocks uint32) []byte {
	buf := make([]byte, trailerSize)
	copy(buf, trailerMagic[:])
	binary.LittleEndian.PutUint64(buf[4:], edges)
	binary.LittleEndian.PutUint32(buf[12:], blocks)
	binary.LittleEndian.PutUint32(buf[16:], crc32.ChecksumIEEE(buf[:16]))
	return buf
}

func decodeTrailer(path string, buf []byte) (edges uint64, blocks uint32, err error) {
	if len(buf) < trailerSize {
		return 0, 0, corruptf(path, "short trailer: %d bytes (torn write?)", len(buf))
	}
	if !bytes.Equal(buf[:4], trailerMagic[:]) {
		return 0, 0, corruptf(path, "bad trailer magic %q", buf[:4])
	}
	if got := crc32.ChecksumIEEE(buf[:16]); got != binary.LittleEndian.Uint32(buf[16:]) {
		return 0, 0, corruptf(path, "trailer checksum mismatch")
	}
	return binary.LittleEndian.Uint64(buf[4:]), binary.LittleEndian.Uint32(buf[12:]), nil
}

// blockWriter batches v2 records into CRC-protected blocks.
type blockWriter struct {
	w       *bufio.Writer
	buf     []byte
	count   uint32
	edges   uint64
	blocks  uint32
	written int64
}

func (bw *blockWriter) add(e *Edge) error {
	bw.buf = appendRecordV2(bw.buf, e)
	bw.count++
	bw.edges++
	if len(bw.buf) >= targetBlockSize {
		return bw.flush()
	}
	return nil
}

func (bw *blockWriter) flush() error {
	if bw.count == 0 {
		return nil
	}
	var head [blockHeaderSize]byte
	binary.LittleEndian.PutUint32(head[0:], uint32(len(bw.buf)))
	binary.LittleEndian.PutUint32(head[4:], bw.count)
	binary.LittleEndian.PutUint32(head[8:], crc32.ChecksumIEEE(bw.buf))
	if _, err := bw.w.Write(head[:]); err != nil {
		return err
	}
	if _, err := bw.w.Write(bw.buf); err != nil {
		return err
	}
	bw.written += int64(blockHeaderSize + len(bw.buf))
	bw.buf = bw.buf[:0]
	bw.count = 0
	bw.blocks++
	return nil
}

// syncDir fsyncs the directory containing path so a just-renamed (or
// just-created) file survives a crash. Filesystems that cannot sync
// directories are tolerated.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	// Ignore Sync errors: directory fsync is unsupported on some platforms
	// and filesystems (it fails with EINVAL/EBADF there), and the data file
	// itself is already durable.
	_ = d.Sync()
	return d.Close()
}

// WriteFileAtomic atomically replaces path with data using the same
// crash-safe sequence as WritePart: write-temp → fsync file → rename →
// fsync directory. A crash leaves either the old file or the complete new
// one — never a torn file under the real name. It backs the progress
// layer's status.json rewrite, where an external poller may read the file
// at any instant.
func WriteFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(path)
}

// WritePart atomically replaces path with a v2 partition file holding
// edges, recording info in the header. The sequence is write-temp → fsync
// file → rename → fsync directory, so a crash leaves either the old file or
// the complete new one — never a partial file under the real name. Returns
// the bytes written.
func WritePart(path string, edges []Edge, info PartInfo) (int64, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	fail := func(err error) (int64, error) {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	bw := &blockWriter{w: bufio.NewWriterSize(f, 1<<20)}
	if _, err := bw.w.Write(encodeHeader(info)); err != nil {
		return fail(err)
	}
	for i := range edges {
		if err := bw.add(&edges[i]); err != nil {
			return fail(err)
		}
	}
	if err := bw.flush(); err != nil {
		return fail(err)
	}
	if _, err := bw.w.Write(encodeTrailer(bw.edges, bw.blocks)); err != nil {
		return fail(err)
	}
	if err := bw.w.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := syncDir(path); err != nil {
		return 0, err
	}
	return headerSize + bw.written + trailerSize, nil
}

// ReadOptions controls how ReadPart decodes partition files.
type ReadOptions struct {
	// LegacyDecode routes v2 block payloads through the field-by-field
	// stream decoder instead of the zero-copy block cursor. The two produce
	// identical edges and identical error classes; this is the ablation
	// hook for the hotpath bench and the decode-equivalence tests. v1
	// streams always use the stream decoder regardless.
	LegacyDecode bool
}

// ReadPart loads all edges from path, appending to dst. A missing file
// reads as empty (a partition no edge was ever written to). v2 files are
// fully verified — header and block checksums, and a trailer whose counts
// match what was decoded; legacy v1 files are decoded as bare record
// streams. Returns the header's PartInfo (zero for v1) and bytes read.
func ReadPart(path string, dst []Edge) ([]Edge, PartInfo, int64, error) {
	return ReadPartWith(path, dst, ReadOptions{})
}

// ReadPartWith is ReadPart with explicit decode options.
func ReadPartWith(path string, dst []Edge, opt ReadOptions) ([]Edge, PartInfo, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return dst, PartInfo{}, 0, nil
		}
		return nil, PartInfo{}, 0, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	sniff, err := r.Peek(4)
	if err == io.EOF || (err == nil && !bytes.Equal(sniff, fileMagic[:])) {
		// Legacy v1: a bare record stream (possibly empty).
		edges, n, err := readLegacy(path, r, dst)
		return edges, PartInfo{}, n, err
	}
	if err != nil {
		return nil, PartInfo{}, 0, fmt.Errorf("storage: %s: %w", path, err)
	}
	return readV2(path, r, dst, opt)
}

func readLegacy(path string, r *bufio.Reader, dst []Edge) ([]Edge, int64, error) {
	var n int64
	for {
		var e Edge
		err := decodeRecord(r, &e, false)
		if err == io.EOF {
			return dst, n, nil
		}
		if err != nil {
			return nil, n, fmt.Errorf("%s: %w", path, err)
		}
		n += RecordSize(&e)
		dst = append(dst, e)
	}
}

func readV2(path string, r *bufio.Reader, dst []Edge, opt ReadOptions) ([]Edge, PartInfo, int64, error) {
	var cur blockCursor // arena persists across blocks: one element chunk serves many records
	head := make([]byte, headerSize)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, PartInfo{}, 0, corruptf(path, "short header: %v", err)
	}
	info, err := decodeHeader(path, head)
	if err != nil {
		return nil, PartInfo{}, 0, err
	}
	bytesRead := int64(headerSize)
	var gotEdges uint64
	var gotBlocks uint32
	var payload []byte
	for {
		var tag [4]byte
		if _, err := io.ReadFull(r, tag[:]); err != nil {
			return nil, info, bytesRead, corruptf(path, "missing trailer (torn write?): %v", err)
		}
		if bytes.Equal(tag[:], trailerMagic[:]) {
			rest := make([]byte, trailerSize)
			copy(rest, tag[:])
			if _, err := io.ReadFull(r, rest[4:]); err != nil {
				return nil, info, bytesRead, corruptf(path, "short trailer: %v", err)
			}
			wantEdges, wantBlocks, err := decodeTrailer(path, rest)
			if err != nil {
				return nil, info, bytesRead, err
			}
			if wantEdges != gotEdges || wantBlocks != gotBlocks {
				return nil, info, bytesRead, corruptf(path,
					"trailer promises %d edges in %d blocks, decoded %d in %d",
					wantEdges, wantBlocks, gotEdges, gotBlocks)
			}
			if _, err := r.ReadByte(); err != io.EOF {
				return nil, info, bytesRead, corruptf(path, "trailing garbage after trailer")
			}
			bytesRead += trailerSize
			return dst, info, bytesRead, nil
		}
		// Not the trailer: tag is a block header's payload length.
		plen := binary.LittleEndian.Uint32(tag[:])
		if plen == 0 || plen > maxBlockPayload {
			return nil, info, bytesRead, corruptf(path, "implausible block length %d", plen)
		}
		var rest [blockHeaderSize - 4]byte
		if _, err := io.ReadFull(r, rest[:]); err != nil {
			return nil, info, bytesRead, corruptf(path, "truncated block header: %v", err)
		}
		count := binary.LittleEndian.Uint32(rest[0:])
		wantCRC := binary.LittleEndian.Uint32(rest[4:])
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, info, bytesRead, corruptf(path, "truncated block payload: %v", err)
		}
		if got := crc32.ChecksumIEEE(payload); got != wantCRC {
			return nil, info, bytesRead, corruptf(path,
				"block %d checksum mismatch (want %#x, got %#x)", gotBlocks, wantCRC, got)
		}
		if opt.LegacyDecode {
			br := bytes.NewReader(payload)
			for i := uint32(0); i < count; i++ {
				var e Edge
				if err := decodeRecord(br, &e, true); err != nil {
					return nil, info, bytesRead, corruptf(path, "block %d record %d: %v", gotBlocks, i, err)
				}
				dst = append(dst, e)
			}
			if br.Len() != 0 {
				return nil, info, bytesRead, corruptf(path, "block %d: %d bytes of slack after %d records",
					gotBlocks, br.Len(), count)
			}
		} else {
			grown, rec, err := cur.decodeBlock(payload, count, dst)
			if err != nil {
				if rec < count {
					return nil, info, bytesRead, corruptf(path, "block %d record %d: %v", gotBlocks, rec, err)
				}
				return nil, info, bytesRead, corruptf(path, "block %d: %d bytes of slack after %d records",
					gotBlocks, cur.remaining(), count)
			}
			dst = grown
		}
		bytesRead += int64(blockHeaderSize) + int64(plen)
		gotEdges += uint64(count)
		gotBlocks++
	}
}

// ReadPartPrefix reads the first n edges of a v2 partition file, tolerating
// damage after that prefix. It is the resume path's reader: a journal record
// promises that the file's first n edges are exactly the checkpointed
// content (between checkpoints the engine only append-extends files or
// rewrites them prefix-preservingly), so anything beyond them — a torn
// append, a post-checkpoint suffix, a missing trailer — is irrelevant and
// must not fail the read.
//
// The header must be intact (it is written once, crash-safely) and only
// whole CRC-verified blocks count; decoding stops at the first invalid
// block. If fewer than n edges are recoverable the file cannot back the
// journal record and the error wraps ErrCorrupt. exact reports that the file
// is a fully valid v2 file containing precisely n edges — when false the
// caller should rewrite the file canonically before trusting appends to it.
func ReadPartPrefix(path string, n int64) (edges []Edge, info PartInfo, exact bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) && n == 0 {
			return nil, PartInfo{}, true, nil
		}
		return nil, PartInfo{}, false, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	head := make([]byte, headerSize)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, PartInfo{}, false, corruptf(path, "short header: %v", err)
	}
	info, err = decodeHeader(path, head)
	if err != nil {
		return nil, PartInfo{}, false, err
	}
	var cur blockCursor // zero-copy decode, same arena reuse as readV2
	var gotEdges uint64
	var gotBlocks uint32
	var payload []byte
	clean := false // a valid trailer matching the decoded counts, then EOF
	for {
		var tag [4]byte
		if _, err := io.ReadFull(r, tag[:]); err != nil {
			break // truncated at a block boundary: prefix ends here
		}
		if bytes.Equal(tag[:], trailerMagic[:]) {
			rest := make([]byte, trailerSize)
			copy(rest, tag[:])
			if _, err := io.ReadFull(r, rest[4:]); err != nil {
				break
			}
			wantEdges, wantBlocks, err := decodeTrailer(path, rest)
			if err != nil || wantEdges != gotEdges || wantBlocks != gotBlocks {
				break
			}
			if _, err := r.ReadByte(); err == io.EOF {
				clean = true
			}
			break
		}
		plen := binary.LittleEndian.Uint32(tag[:])
		if plen == 0 || plen > maxBlockPayload {
			break
		}
		var rest [blockHeaderSize - 4]byte
		if _, err := io.ReadFull(r, rest[:]); err != nil {
			break
		}
		count := binary.LittleEndian.Uint32(rest[0:])
		wantCRC := binary.LittleEndian.Uint32(rest[4:])
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(r, payload); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			break
		}
		grown, _, err := cur.decodeBlock(payload, count, edges)
		if err != nil {
			break // CRC collision on garbage: drop the whole block
		}
		edges = grown
		gotEdges += uint64(count)
		gotBlocks++
		// Even once the prefix is satisfied the scan continues: whether the
		// remainder is a clean trailer decides exactness.
	}
	if int64(len(edges)) < n {
		return nil, info, false, corruptf(path,
			"journal promises %d edges, only %d recoverable", n, len(edges))
	}
	exact = clean && int64(gotEdges) == n
	return edges[:n], info, exact, nil
}

// AppendPart appends edges to a partition file, creating a v2 file when
// none exists. For a v2 file the existing trailer is verified, overwritten
// by the new blocks, and a new trailer committing the grown counts is
// written and fsynced; a crash mid-append leaves the file without a valid
// trailer, which the next ReadPart rejects (the partial append is never
// silently half-visible). Legacy v1 files keep receiving bare v1 records.
// Returns the bytes written.
func AppendPart(path string, edges []Edge) (int64, error) {
	if len(edges) == 0 {
		return 0, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if os.IsNotExist(err) {
		return WritePart(path, edges, PartInfo{})
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var sniff [4]byte
	n, err := f.ReadAt(sniff[:], 0)
	if err != nil && err != io.EOF {
		return 0, err
	}
	if n < 4 || !bytes.Equal(sniff[:], fileMagic[:]) {
		return appendLegacy(f, edges)
	}

	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, err
	}
	if size < headerSize+trailerSize {
		return 0, corruptf(path, "v2 file too short for header+trailer: %d bytes", size)
	}
	tr := make([]byte, trailerSize)
	if _, err := f.ReadAt(tr, size-trailerSize); err != nil {
		return 0, err
	}
	oldEdges, oldBlocks, err := decodeTrailer(path, tr)
	if err != nil {
		return 0, err
	}
	if _, err := f.Seek(size-trailerSize, io.SeekStart); err != nil {
		return 0, err
	}
	bw := &blockWriter{w: bufio.NewWriterSize(f, 1<<20)}
	for i := range edges {
		if err := bw.add(&edges[i]); err != nil {
			return 0, err
		}
	}
	if err := bw.flush(); err != nil {
		return 0, err
	}
	if _, err := bw.w.Write(encodeTrailer(oldEdges+bw.edges, oldBlocks+bw.blocks)); err != nil {
		return 0, err
	}
	if err := bw.w.Flush(); err != nil {
		return 0, err
	}
	if err := f.Sync(); err != nil {
		return 0, err
	}
	return bw.written + trailerSize, nil
}

func appendLegacy(f *os.File, edges []Edge) (int64, error) {
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		return 0, err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var buf []byte
	var n int64
	for i := range edges {
		var err error
		buf, err = AppendRecord(buf[:0], &edges[i])
		if err != nil {
			return 0, err
		}
		if _, err := w.Write(buf); err != nil {
			return 0, err
		}
		n += int64(len(buf))
	}
	if err := w.Flush(); err != nil {
		return 0, err
	}
	return n, f.Sync()
}

// WriteFile writes edges to path in format v2 (atomic, fsynced) without
// recording a vertex interval. Kept for callers that do not track partition
// metadata; the engine uses WritePart.
func WriteFile(path string, edges []Edge) error {
	_, err := WritePart(path, edges, PartInfo{})
	return err
}

// ReadFile loads all edges from path, appending to dst.
func ReadFile(path string, dst []Edge) ([]Edge, error) {
	out, _, _, err := ReadPart(path, dst)
	return out, err
}

// AppendFile appends edges to path (creating it if needed).
func AppendFile(path string, edges []Edge) error {
	_, err := AppendPart(path, edges)
	return err
}
