package storage

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/grapple-system/grapple/internal/faultpoint"
)

func testRecord(seq uint64) *JournalRecord {
	return &JournalRecord{
		Seq:          seq,
		Iterations:   int64(seq) * 3,
		CurGen:       uint32(seq) + 1,
		EdgesBefore:  100,
		Repartitions: int64(seq) / 2,
		Widened:      int64(seq),
		HotA:         int(seq % 4),
		HotB:         int(seq%4) + 1,
		Parts: []JournalPart{
			{ID: 0, Lo: 0, Hi: 50, Edges: 120 + int64(seq), MaxGen: uint32(seq), Path: "part-0.edges"},
			{ID: 1, Lo: 50, Hi: 100, Edges: 80, MaxGen: 2, Path: "part-1-g3.edges"},
		},
		LastGen: []JournalGen{{A: 0, B: 0, Gen: 1}, {A: 0, B: 1, Gen: uint32(seq)}},
	}
}

func recordsEqual(a, b *JournalRecord) bool {
	if a.Seq != b.Seq || a.Completed != b.Completed || a.Iterations != b.Iterations ||
		a.CurGen != b.CurGen || a.EdgesBefore != b.EdgesBefore ||
		a.Repartitions != b.Repartitions || a.Widened != b.Widened ||
		a.HotA != b.HotA || a.HotB != b.HotB ||
		len(a.Parts) != len(b.Parts) || len(a.LastGen) != len(b.LastGen) {
		return false
	}
	for i := range a.Parts {
		if a.Parts[i] != b.Parts[i] {
			return false
		}
	}
	for i := range a.LastGen {
		if a.LastGen[i] != b.LastGen[i] {
			return false
		}
	}
	return true
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	meta := JournalMeta{NumVertices: 1234, Tag: 0xdeadbeefcafe}
	w, err := CreateJournal(dir, meta, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want []*JournalRecord
	for seq := uint64(0); seq < 5; seq++ {
		rec := testRecord(seq)
		if seq == 4 {
			rec.Completed = true
			rec.HotA, rec.HotB = -1, -1
		}
		if _, err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	gotMeta, recs, _, err := ReadJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Fatalf("meta round trip: got %+v want %+v", gotMeta, meta)
	}
	if len(recs) != len(want) {
		t.Fatalf("got %d records want %d", len(recs), len(want))
	}
	for i := range want {
		if !recordsEqual(recs[i], want[i]) {
			t.Fatalf("record %d mismatch:\ngot  %+v\nwant %+v", i, recs[i], want[i])
		}
	}
	if !recs[4].Completed {
		t.Fatal("final record lost its Completed flag")
	}
}

func TestJournalMissingFile(t *testing.T) {
	_, _, _, err := ReadJournal(t.TempDir())
	if !errors.Is(err, ErrNoJournal) {
		t.Fatalf("missing journal: %v", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatal("missing journal must not read as corrupt")
	}
}

// writeTestJournal creates a journal with n records and returns its raw
// bytes plus the parsed records.
func writeTestJournal(t *testing.T, dir string, n int) ([]byte, []*JournalRecord) {
	t.Helper()
	w, err := CreateJournal(dir, JournalMeta{NumVertices: 10, Tag: 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var recs []*JournalRecord
	for seq := 0; seq < n; seq++ {
		rec := testRecord(uint64(seq))
		if _, err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, JournalName))
	if err != nil {
		t.Fatal(err)
	}
	return raw, recs
}

// TestJournalCorruptionMatrix mirrors the partition-store corruption matrix:
// header damage is ErrCorrupt, anything that damages the record stream
// surfaces as a shorter valid prefix — never a panic, never a half-parsed
// record.
func TestJournalCorruptionMatrix(t *testing.T) {
	base := t.TempDir()
	raw, recs := writeTestJournal(t, base, 4)

	reread := func(t *testing.T, data []byte) (JournalMeta, []*JournalRecord, int64, error) {
		t.Helper()
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, JournalName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		return ReadJournal(dir)
	}

	t.Run("header damage is corrupt", func(t *testing.T) {
		for _, mutate := range []func([]byte) []byte{
			func(b []byte) []byte { return b[:journalHeaderSize-2] }, // short header
			func(b []byte) []byte { b[0] = 'X'; return b },           // bad magic
			func(b []byte) []byte { b[13] ^= 0x10; return b },        // tag bit flip under the CRC
			func(b []byte) []byte { b[4] = 99; return b },            // version flip (caught by header CRC)
		} {
			_, _, _, err := reread(t, mutate(append([]byte{}, raw...)))
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("header damage not ErrCorrupt: %v", err)
			}
		}
	})

	t.Run("truncation at every byte yields a valid prefix", func(t *testing.T) {
		for cut := journalHeaderSize; cut <= len(raw); cut++ {
			_, got, validLen, err := reread(t, raw[:cut])
			if err != nil {
				t.Fatalf("cut=%d: %v", cut, err)
			}
			if validLen > int64(cut) {
				t.Fatalf("cut=%d: validLen %d beyond file", cut, validLen)
			}
			for i, rec := range got {
				if !recordsEqual(rec, recs[i]) {
					t.Fatalf("cut=%d: surviving record %d mismatch", cut, i)
				}
			}
			// A record either survives whole or not at all.
			if len(got) > len(recs) {
				t.Fatalf("cut=%d: %d records from %d written", cut, len(got), len(recs))
			}
		}
		// Full file parses everything.
		_, got, _, err := reread(t, raw)
		if err != nil || len(got) != len(recs) {
			t.Fatalf("pristine journal: %d records, %v", len(got), err)
		}
	})

	t.Run("record bit flip drops the tail", func(t *testing.T) {
		for _, off := range []int{journalHeaderSize + 6, len(raw) - 5} {
			data := append([]byte{}, raw...)
			data[off] ^= 0x01
			_, got, _, err := reread(t, data)
			if err != nil {
				t.Fatalf("off=%d: %v", off, err)
			}
			for i, rec := range got {
				if !recordsEqual(rec, recs[i]) {
					t.Fatalf("off=%d: surviving record %d corrupted", off, i)
				}
			}
			if len(got) == len(recs) {
				t.Fatalf("off=%d: flip inside a record went undetected", off)
			}
		}
	})

	t.Run("trailing garbage keeps the prefix", func(t *testing.T) {
		data := append(append([]byte{}, raw...), 0xFF, 0xFF, 0xFF, 0xFF, 0xAB)
		_, got, validLen, err := reread(t, data)
		if err != nil || len(got) != len(recs) {
			t.Fatalf("trailing garbage: %d records, %v", len(got), err)
		}
		if validLen != int64(len(raw)) {
			t.Fatalf("validLen %d, want %d", validLen, len(raw))
		}
	})
}

// TestOpenJournalTruncatesTornTail checks the reopen path: a torn frame is
// cut off and subsequent appends produce a journal whose records are the
// surviving prefix plus the new appends.
func TestOpenJournalTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	raw, recs := writeTestJournal(t, dir, 3)
	path := filepath.Join(dir, JournalName)
	// Tear the last frame in half.
	if err := os.WriteFile(path, raw[:len(raw)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	w, meta, got, err := OpenJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Tag != 7 {
		t.Fatalf("meta tag %d", meta.Tag)
	}
	if len(got) != 2 {
		t.Fatalf("torn journal yielded %d records, want 2", len(got))
	}
	next := testRecord(9)
	if _, err := w.Append(next); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, after, _, err := ReadJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 3 {
		t.Fatalf("after reopen+append: %d records", len(after))
	}
	if !recordsEqual(after[0], recs[0]) || !recordsEqual(after[1], recs[1]) || !recordsEqual(after[2], next) {
		t.Fatal("reopened journal content mismatch")
	}
}

// TestJournalTornAppendFaultpoint drives the mid-write fault point: the
// injected crash leaves a half-written frame that the next read drops.
func TestJournalTornAppendFaultpoint(t *testing.T) {
	dir := t.TempDir()
	faults := faultpoint.New()
	faults.Arm(faultpoint.JournalAppendMid, 3)
	w, err := CreateJournal(dir, JournalMeta{NumVertices: 5, Tag: 1}, faults)
	if err != nil {
		t.Fatal(err)
	}
	var appendErr error
	for seq := uint64(0); seq < 5; seq++ {
		if _, appendErr = w.Append(testRecord(seq)); appendErr != nil {
			break
		}
	}
	w.Close()
	if !errors.Is(appendErr, faultpoint.ErrInjected) {
		t.Fatalf("fault point did not fire: %v", appendErr)
	}
	_, recs, _, err := ReadJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("torn append visible: %d records, want 2", len(recs))
	}
	// And the journal is reopenable for further appends.
	w2, _, _, err := OpenJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Append(testRecord(10)); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	_, recs, _, err = ReadJournal(dir)
	if err != nil || len(recs) != 3 {
		t.Fatalf("append after torn tail: %d records, %v", len(recs), err)
	}
}

func TestJournalRejectsEvilPartPath(t *testing.T) {
	dir := t.TempDir()
	w, err := CreateJournal(dir, JournalMeta{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecord(0)
	rec.Parts[0].Path = "../escape.edges"
	if _, err := w.Append(rec); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// The writer does not validate (engine paths are trusted), but the
	// decoder must refuse to hand back a non-basename path.
	_, recs, _, err := ReadJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatal("record with a path-traversal part path was accepted")
	}
}

func TestCreateJournalReplacesExisting(t *testing.T) {
	dir := t.TempDir()
	writeTestJournal(t, dir, 3)
	w, err := CreateJournal(dir, JournalMeta{NumVertices: 2, Tag: 99}, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	meta, recs, _, err := ReadJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Tag != 99 || len(recs) != 0 {
		t.Fatalf("CreateJournal did not replace: tag %d, %d records", meta.Tag, len(recs))
	}
}

// --- ReadPartPrefix ----------------------------------------------------

func TestReadPartPrefixExact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.edges")
	rng := rand.New(rand.NewSource(21))
	var edges []Edge
	for i := 0; i < 100; i++ {
		edges = append(edges, randEdge(rng))
	}
	if _, err := WritePart(path, edges, PartInfo{Lo: 1, Hi: 9}); err != nil {
		t.Fatal(err)
	}
	got, info, exact, err := ReadPartPrefix(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !exact {
		t.Fatal("pristine file with matching count not exact")
	}
	if info != (PartInfo{Lo: 1, Hi: 9}) {
		t.Fatalf("info %+v", info)
	}
	for i := range edges {
		if !edgesEqual(got[i], edges[i]) {
			t.Fatalf("edge %d mismatch", i)
		}
	}
}

func TestReadPartPrefixWithSuffix(t *testing.T) {
	// The checkpointed count is smaller than the file: post-checkpoint
	// appends form a suffix that must be cut off, inexactly.
	dir := t.TempDir()
	path := filepath.Join(dir, "p.edges")
	rng := rand.New(rand.NewSource(22))
	var edges []Edge
	for i := 0; i < 60; i++ {
		edges = append(edges, randEdge(rng))
	}
	if _, err := WritePart(path, edges[:40], PartInfo{}); err != nil {
		t.Fatal(err)
	}
	if _, err := AppendPart(path, edges[40:]); err != nil {
		t.Fatal(err)
	}
	got, _, exact, err := ReadPartPrefix(path, 40)
	if err != nil {
		t.Fatal(err)
	}
	if exact {
		t.Fatal("file with extra suffix reported exact")
	}
	if len(got) != 40 {
		t.Fatalf("got %d edges", len(got))
	}
	for i := 0; i < 40; i++ {
		if !edgesEqual(got[i], edges[i]) {
			t.Fatalf("edge %d mismatch", i)
		}
	}
}

func TestReadPartPrefixTornAppend(t *testing.T) {
	// A torn append (no valid trailer) must still yield the pre-append
	// prefix; plain ReadPart rejects the same file.
	dir := t.TempDir()
	path := filepath.Join(dir, "p.edges")
	rng := rand.New(rand.NewSource(23))
	var edges []Edge
	for i := 0; i < 50; i++ {
		edges = append(edges, randEdge(rng))
	}
	if _, err := WritePart(path, edges[:30], PartInfo{Lo: 2, Hi: 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := AppendPart(path, edges[30:]); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(raw) - 1; cut > len(raw)-trailerSize-8; cut-- {
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := ReadPart(path, nil); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut=%d: ReadPart accepted a torn file: %v", cut, err)
		}
		got, _, exact, err := ReadPartPrefix(path, 30)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if exact {
			t.Fatalf("cut=%d: torn file reported exact", cut)
		}
		for i := 0; i < 30; i++ {
			if !edgesEqual(got[i], edges[i]) {
				t.Fatalf("cut=%d: edge %d mismatch", cut, i)
			}
		}
	}
}

func TestReadPartPrefixInsufficient(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.edges")
	rng := rand.New(rand.NewSource(24))
	var edges []Edge
	for i := 0; i < 10; i++ {
		edges = append(edges, randEdge(rng))
	}
	if _, err := WritePart(path, edges, PartInfo{}); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReadPartPrefix(path, 11); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("over-promising journal count: %v", err)
	}
	// Missing file backs only a zero count.
	missing := filepath.Join(dir, "nope.edges")
	got, _, exact, err := ReadPartPrefix(missing, 0)
	if err != nil || !exact || len(got) != 0 {
		t.Fatalf("missing file, n=0: %v %v %v", got, exact, err)
	}
	if _, _, _, err := ReadPartPrefix(missing, 1); err == nil {
		t.Fatal("missing file backed a nonzero count")
	}
}
