package ir

import (
	"fmt"
	"strings"
)

// Dump renders a function body for debugging and golden tests.
func Dump(fn *Func) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fun %s(", fn.Name)
	for i, p := range fn.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s: %s", p.Name, p.Type)
	}
	b.WriteString(")")
	if fn.RetType != "" {
		fmt.Fprintf(&b, ": %s", fn.RetType)
	}
	if fn.MayThrow {
		b.WriteString(" [may-throw]")
	}
	b.WriteString("\n")
	dumpBlock(&b, fn.Body, 1)
	return b.String()
}

func dumpBlock(b *strings.Builder, blk *Block, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range blk.Stmts {
		switch s := s.(type) {
		case *IntAssign:
			switch s.Op {
			case Mov:
				fmt.Fprintf(b, "%s%s = %s\n", ind, s.Dst, s.A)
			case Opaque:
				fmt.Fprintf(b, "%s%s = opaque()\n", ind, s.Dst)
			case Neg:
				fmt.Fprintf(b, "%s%s = -%s\n", ind, s.Dst, s.A)
			default:
				op := map[ArithOp]string{Add: "+", Sub: "-", Mul: "*"}[s.Op]
				fmt.Fprintf(b, "%s%s = %s %s %s\n", ind, s.Dst, s.A, op, s.B)
			}
		case *BoolAssign:
			fmt.Fprintf(b, "%s%s = %s\n", ind, s.Dst, s.Cond)
		case *ObjAssign:
			src := s.Src
			if src == "" {
				src = "null"
			}
			fmt.Fprintf(b, "%s%s = %s\n", ind, s.Dst, src)
		case *NewObj:
			fmt.Fprintf(b, "%s%s = new %s() [site %d]\n", ind, s.Dst, s.Type, s.Site)
		case *Store:
			fmt.Fprintf(b, "%s%s.%s = %s\n", ind, s.Recv, s.Field, s.Src)
		case *Load:
			fmt.Fprintf(b, "%s%s = %s.%s\n", ind, s.Dst, s.Recv, s.Field)
		case *Call:
			dst := ""
			if s.Dst != "" {
				dst = s.Dst + " = "
			}
			var args []string
			for _, a := range s.ObjArgs {
				args = append(args, a.Arg+"->"+a.Formal)
			}
			for _, a := range s.IntArgs {
				args = append(args, a.Arg.String()+"->"+a.Formal)
			}
			kw := "call"
			if s.Spawn {
				kw = "spawn"
			}
			fmt.Fprintf(b, "%s%s%s %s(%s) [site %d]\n", ind, dst, kw, s.Callee, strings.Join(args, ", "), s.Site)
		case *Event:
			dst := ""
			if s.Dst != "" {
				dst = s.Dst + " = "
			}
			fmt.Fprintf(b, "%s%sevent %s.%s()\n", ind, dst, s.Recv, s.Method)
		case *Return:
			if s.Src == (Operand{}) && !s.SrcIsObject {
				fmt.Fprintf(b, "%sreturn\n", ind)
			} else {
				fmt.Fprintf(b, "%sreturn %s\n", ind, s.Src)
			}
		case *ThrowExit:
			fmt.Fprintf(b, "%sthrow-exit\n", ind)
		case *CatchBind:
			fmt.Fprintf(b, "%scatch-bind %s [from call %d]\n", ind, s.Var, s.FromCall)
		case *If:
			fmt.Fprintf(b, "%sif %s {\n", ind, s.Cond)
			dumpBlock(b, s.Then, depth+1)
			if len(s.Else.Stmts) > 0 {
				fmt.Fprintf(b, "%s} else {\n", ind)
				dumpBlock(b, s.Else, depth+1)
			}
			fmt.Fprintf(b, "%s}\n", ind)
		case *TryRegion:
			fmt.Fprintf(b, "%stry {\n", ind)
			dumpBlock(b, s.Body, depth+1)
			fmt.Fprintf(b, "%s} catch (%s: %s) {\n", ind, s.CatchVar, s.CatchType)
			dumpBlock(b, s.Catch, depth+1)
			fmt.Fprintf(b, "%s}\n", ind)
		case *Raise:
			fmt.Fprintf(b, "%sraise %s: %s\n", ind, s.Src, s.Type)
		default:
			fmt.Fprintf(b, "%s?%T\n", ind, s)
		}
	}
}

// CountStmts returns the number of statements in a block tree.
func CountStmts(blk *Block) int {
	n := 0
	for _, s := range blk.Stmts {
		n++
		switch s := s.(type) {
		case *If:
			n += CountStmts(s.Then) + CountStmts(s.Else)
		case *TryRegion:
			n += CountStmts(s.Body) + CountStmts(s.Catch)
		}
	}
	return n
}
