package ir

import (
	"fmt"

	"github.com/grapple-system/grapple/internal/lang"
)

// TryRegion is a transient IR statement produced by lowering and eliminated
// by ExpandExceptions; it delimits a try body with its handler.
type TryRegion struct {
	Body      *Block
	CatchVar  string
	CatchType string
	Catch     *Block
	Pos       lang.Pos
}

// Raise is a transient IR statement: raise the object in Src (static type
// Type). ExpandExceptions resolves it against enclosing TryRegions.
type Raise struct {
	Src  string
	Type string
	Pos  lang.Pos
}

func (*TryRegion) irStmt() {}
func (*Raise) irStmt()     {}

// Options configures lowering.
type Options struct {
	// UnrollDepth bounds static loop unrolling (paper §3.1). Zero means the
	// default of 2.
	UnrollDepth int
}

// Lower lowers a resolved MiniLang program into IR and expands exceptions.
func Lower(info *lang.Info, opts Options) (*Program, error) {
	if opts.UnrollDepth <= 0 {
		opts.UnrollDepth = 2
	}
	p := &Program{
		FunByName:   map[string]*Func{},
		ObjectTypes: map[string]bool{},
	}
	for t := range info.ObjectTypes {
		p.ObjectTypes[t] = true
	}
	lo := &lowerer{prog: p, info: info, opts: opts}
	for _, f := range info.Prog.Funs {
		fn, err := lo.lowerFun(f)
		if err != nil {
			return nil, err
		}
		p.Funs = append(p.Funs, fn)
		p.FunByName[fn.Name] = fn
	}
	expandExceptions(p)
	return p, nil
}

type lowerer struct {
	prog *Program
	info *lang.Info
	opts Options

	fun      *lang.FunDecl
	varTypes map[string]string
	tempN    int
	opaqueN  int32
}

func (lo *lowerer) lowerFun(f *lang.FunDecl) (*Func, error) {
	lo.fun = f
	lo.tempN = 0
	lo.varTypes = map[string]string{}
	for k, v := range lo.info.VarTypes[f] {
		lo.varTypes[k] = v
	}
	fn := &Func{Name: f.Name, Params: f.Params, RetType: f.RetType, Pos: f.Pos}
	body := &Block{}
	if err := lo.lowerStmts(f.Body, body); err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (lo *lowerer) temp(typ string) string {
	lo.tempN++
	name := fmt.Sprintf("$t%d", lo.tempN)
	lo.varTypes[name] = typ
	return name
}

func (lo *lowerer) freshOpaque() int32 {
	lo.opaqueN++
	return lo.opaqueN
}

func (lo *lowerer) typeOf(v string) string { return lo.varTypes[v] }

func (lo *lowerer) isObjectVar(v string) bool {
	return lang.IsObjectType(lo.typeOf(v))
}

func (lo *lowerer) allocSite(typ string, pos lang.Pos) int32 {
	id := int32(lo.prog.NumAllocSites)
	lo.prog.NumAllocSites++
	lo.prog.AllocSitePos = append(lo.prog.AllocSitePos, pos)
	lo.prog.AllocSiteType = append(lo.prog.AllocSiteType, typ)
	return id
}

func (lo *lowerer) callSite(pos lang.Pos) int32 {
	id := int32(lo.prog.NumCallSites)
	lo.prog.NumCallSites++
	lo.prog.CallSitePos = append(lo.prog.CallSitePos, pos)
	return id
}

func (lo *lowerer) lowerStmts(stmts []lang.Stmt, out *Block) error {
	for _, s := range stmts {
		if err := lo.lowerStmt(s, out); err != nil {
			return err
		}
	}
	return nil
}

func (lo *lowerer) lowerStmt(s lang.Stmt, out *Block) error {
	switch s := s.(type) {
	case *lang.VarDecl:
		if s.Init == nil {
			return nil
		}
		return lo.lowerAssignTo(s.Name, s.Type, s.Init, s.Pos, out)
	case *lang.AssignStmt:
		switch lhs := s.LHS.(type) {
		case *lang.Ident:
			return lo.lowerAssignTo(lhs.Name, lo.typeOf(lhs.Name), s.RHS, s.Pos, out)
		case *lang.FieldAccess:
			src, err := lo.lowerObjExpr(s.RHS, out)
			if err != nil {
				return err
			}
			if src == "" { // storing null clears the field; no object flow
				return nil
			}
			out.Stmts = append(out.Stmts, &Store{Recv: lhs.Recv.Name, Field: lhs.Field, Src: src, Pos: s.Pos})
			return nil
		}
		return fmt.Errorf("%s: bad assignment target", s.Pos)
	case *lang.ExprStmt:
		switch x := s.X.(type) {
		case *lang.CallExpr:
			_, err := lo.lowerCall(x, "", out)
			return err
		case *lang.MethodCall:
			out.Stmts = append(out.Stmts, &Event{Recv: x.Recv.Name, Method: x.Method, Pos: x.Pos})
			return nil
		}
		return fmt.Errorf("%s: bad expression statement", s.Pos)
	case *lang.SpawnStmt:
		c, err := lo.lowerCall(s.Call, "", out)
		if err != nil {
			return err
		}
		c.Spawn = true
		return nil
	case *lang.IfStmt:
		thenB, elseB := &Block{}, &Block{}
		if err := lo.lowerStmts(s.Then, thenB); err != nil {
			return err
		}
		if err := lo.lowerStmts(s.Else, elseB); err != nil {
			return err
		}
		return lo.lowerCondBranch(s.Cond, thenB, elseB, s.Pos, out)
	case *lang.WhileStmt:
		return lo.lowerWhile(s, lo.opts.UnrollDepth, out)
	case *lang.ReturnStmt:
		if s.X == nil {
			out.Stmts = append(out.Stmts, &Return{Pos: s.Pos})
			return nil
		}
		if lang.IsObjectType(lo.fun.RetType) {
			src, err := lo.lowerObjExpr(s.X, out)
			if err != nil {
				return err
			}
			out.Stmts = append(out.Stmts, &Return{Src: VarOp(src), SrcIsObject: true, Pos: s.Pos})
			return nil
		}
		op, err := lo.lowerIntExpr(s.X, out)
		if err != nil {
			return err
		}
		out.Stmts = append(out.Stmts, &Return{Src: op, Pos: s.Pos})
		return nil
	case *lang.ThrowStmt:
		src, err := lo.lowerObjExpr(s.X, out)
		if err != nil {
			return err
		}
		if src == "" {
			return fmt.Errorf("%s: cannot throw null", s.Pos)
		}
		out.Stmts = append(out.Stmts, &Raise{Src: src, Type: lo.typeOf(src), Pos: s.Pos})
		return nil
	case *lang.TryStmt:
		body, catch := &Block{}, &Block{}
		if err := lo.lowerStmts(s.Try, body); err != nil {
			return err
		}
		if err := lo.lowerStmts(s.Catch, catch); err != nil {
			return err
		}
		out.Stmts = append(out.Stmts, &TryRegion{
			Body: body, CatchVar: s.CatchVar, CatchType: s.CatchType,
			Catch: catch, Pos: s.Pos,
		})
		return nil
	}
	return fmt.Errorf("unknown statement %T", s)
}

// lowerWhile statically unrolls "while (c) body" depth times:
// if (c) { body; if (c) { body; ... } }.
func (lo *lowerer) lowerWhile(w *lang.WhileStmt, depth int, out *Block) error {
	if depth == 0 {
		return nil
	}
	inner := &Block{}
	if err := lo.lowerStmts(w.Body, inner); err != nil {
		return err
	}
	if err := lo.lowerWhile(w, depth-1, inner); err != nil {
		return err
	}
	return lo.lowerCondBranch(w.Cond, inner, &Block{}, w.Pos, out)
}

// lowerAssignTo lowers "dst: typ = rhs".
func (lo *lowerer) lowerAssignTo(dst, typ string, rhs lang.Expr, pos lang.Pos, out *Block) error {
	switch {
	case lang.IsObjectType(typ):
		switch e := rhs.(type) {
		case *lang.NewExpr:
			out.Stmts = append(out.Stmts, &NewObj{Dst: dst, Type: e.Type, Site: lo.allocSite(e.Type, e.Pos), Pos: e.Pos})
			return nil
		case *lang.FieldAccess:
			out.Stmts = append(out.Stmts, &Load{Dst: dst, Recv: e.Recv.Name, Field: e.Field, Pos: e.Pos})
			return nil
		case *lang.CallExpr:
			_, err := lo.lowerCall(e, dst, out)
			return err
		}
		src, err := lo.lowerObjExpr(rhs, out)
		if err != nil {
			return err
		}
		out.Stmts = append(out.Stmts, &ObjAssign{Dst: dst, Src: src, Pos: pos})
		return nil
	case typ == "bool":
		return lo.lowerBoolAssign(dst, rhs, pos, out)
	default: // int
		return lo.lowerIntExprInto(dst, rhs, out)
	}
}

// lowerObjExpr lowers an object-valued expression to a variable name
// ("" for null).
func (lo *lowerer) lowerObjExpr(e lang.Expr, out *Block) (string, error) {
	switch e := e.(type) {
	case *lang.NullLit:
		return "", nil
	case *lang.Ident:
		return e.Name, nil
	case *lang.NewExpr:
		t := lo.temp(e.Type)
		out.Stmts = append(out.Stmts, &NewObj{Dst: t, Type: e.Type, Site: lo.allocSite(e.Type, e.Pos), Pos: e.Pos})
		return t, nil
	case *lang.FieldAccess:
		t := lo.temp("Object")
		out.Stmts = append(out.Stmts, &Load{Dst: t, Recv: e.Recv.Name, Field: e.Field, Pos: e.Pos})
		return t, nil
	case *lang.CallExpr:
		f := lo.info.Prog.Fun(e.Name)
		t := lo.temp(f.RetType)
		if _, err := lo.lowerCall(e, t, out); err != nil {
			return "", err
		}
		return t, nil
	}
	return "", fmt.Errorf("%s: expression is not an object", lang.PosOf(e))
}

// lowerIntExprInto lowers an int expression directly into dst.
func (lo *lowerer) lowerIntExprInto(dst string, e lang.Expr, out *Block) error {
	switch e := e.(type) {
	case *lang.IntLit:
		out.Stmts = append(out.Stmts, &IntAssign{Dst: dst, Op: Mov, A: ConstOp(e.Value), Pos: e.Pos})
		return nil
	case *lang.Ident:
		out.Stmts = append(out.Stmts, &IntAssign{Dst: dst, Op: Mov, A: VarOp(e.Name), Pos: e.Pos})
		return nil
	case *lang.InputExpr:
		out.Stmts = append(out.Stmts, &IntAssign{Dst: dst, Op: Opaque, Pos: e.Pos})
		return nil
	case *lang.CallExpr:
		_, err := lo.lowerCall(e, dst, out)
		return err
	case *lang.MethodCall:
		out.Stmts = append(out.Stmts, &Event{Recv: e.Recv.Name, Method: e.Method, Dst: dst, Pos: e.Pos})
		return nil
	case *lang.Binary:
		a, err := lo.lowerIntExpr(e.L, out)
		if err != nil {
			return err
		}
		b, err := lo.lowerIntExpr(e.R, out)
		if err != nil {
			return err
		}
		var op ArithOp
		switch e.Op {
		case lang.OpAdd:
			op = Add
		case lang.OpSub:
			op = Sub
		case lang.OpMul:
			op = Mul
		default:
			return fmt.Errorf("%s: %s is not an int operator", e.Pos, e.Op)
		}
		out.Stmts = append(out.Stmts, &IntAssign{Dst: dst, Op: op, A: a, B: b, Pos: e.Pos})
		return nil
	case *lang.Unary:
		a, err := lo.lowerIntExpr(e.X, out)
		if err != nil {
			return err
		}
		out.Stmts = append(out.Stmts, &IntAssign{Dst: dst, Op: Neg, A: a, Pos: e.Pos})
		return nil
	}
	return fmt.Errorf("cannot lower %T as int", e)
}

// lowerIntExpr lowers an int expression to an operand, flattening through
// temporaries where needed.
func (lo *lowerer) lowerIntExpr(e lang.Expr, out *Block) (Operand, error) {
	switch e := e.(type) {
	case *lang.IntLit:
		return ConstOp(e.Value), nil
	case *lang.Ident:
		return VarOp(e.Name), nil
	}
	t := lo.temp("int")
	if err := lo.lowerIntExprInto(t, e, out); err != nil {
		return Operand{}, err
	}
	return VarOp(t), nil
}

// lowerBoolAssign lowers "dst: bool = e".
func (lo *lowerer) lowerBoolAssign(dst string, e lang.Expr, pos lang.Pos, out *Block) error {
	if c, simple, err := lo.simpleCond(e, out); err != nil {
		return err
	} else if simple {
		out.Stmts = append(out.Stmts, &BoolAssign{Dst: dst, Cond: c, Pos: pos})
		return nil
	}
	// Complex boolean (&&, ||): dst = cond ? true : false.
	thenB := &Block{Stmts: []Stmt{&BoolAssign{Dst: dst, Cond: trueCond(), Pos: pos}}}
	elseB := &Block{Stmts: []Stmt{&BoolAssign{Dst: dst, Cond: falseCond(), Pos: pos}}}
	return lo.lowerCondBranch(e, thenB, elseB, pos, out)
}

func trueCond() Cond  { return CmpCond(ConstOp(0), CmpEq, ConstOp(0)) }
func falseCond() Cond { return CmpCond(ConstOp(0), CmpNe, ConstOp(0)) }

// simpleCond tries to lower e as a single non-short-circuit condition.
// It returns simple=false for && and || which require branch desugaring.
func (lo *lowerer) simpleCond(e lang.Expr, out *Block) (Cond, bool, error) {
	switch e := e.(type) {
	case *lang.BoolLit:
		if e.Value {
			return trueCond(), true, nil
		}
		return falseCond(), true, nil
	case *lang.Ident:
		return BoolCond(e.Name), true, nil
	case *lang.Unary:
		if e.Op != '!' {
			return Cond{}, false, fmt.Errorf("%s: bad unary in condition", e.Pos)
		}
		c, simple, err := lo.simpleCond(e.X, out)
		if err != nil || !simple {
			return Cond{}, simple, err
		}
		return c.Negate(), true, nil
	case *lang.Binary:
		switch e.Op {
		case lang.OpAnd, lang.OpOr:
			return Cond{}, false, nil
		}
		// Comparison. Object/null comparisons are statically opaque.
		if lo.isObjectOperand(e.L) || lo.isObjectOperand(e.R) {
			return OpaqueCond(lo.freshOpaque()), true, nil
		}
		if lo.isBoolOperand(e.L) {
			// bool == bool is rare; treat as opaque.
			return OpaqueCond(lo.freshOpaque()), true, nil
		}
		a, err := lo.lowerIntExpr(e.L, out)
		if err != nil {
			return Cond{}, false, err
		}
		b, err := lo.lowerIntExpr(e.R, out)
		if err != nil {
			return Cond{}, false, err
		}
		var k CmpKind
		switch e.Op {
		case lang.OpEq:
			k = CmpEq
		case lang.OpNe:
			k = CmpNe
		case lang.OpLt:
			k = CmpLt
		case lang.OpLe:
			k = CmpLe
		case lang.OpGt:
			k = CmpGt
		default:
			k = CmpGe
		}
		return CmpCond(a, k, b), true, nil
	}
	return Cond{}, false, fmt.Errorf("cannot lower %T as condition", e)
}

func (lo *lowerer) isObjectOperand(e lang.Expr) bool {
	switch e := e.(type) {
	case *lang.NullLit, *lang.NewExpr, *lang.FieldAccess:
		return true
	case *lang.Ident:
		return lo.isObjectVar(e.Name)
	}
	return false
}

func (lo *lowerer) isBoolOperand(e lang.Expr) bool {
	switch e := e.(type) {
	case *lang.BoolLit:
		return true
	case *lang.Ident:
		return lo.typeOf(e.Name) == "bool"
	}
	return false
}

// lowerCondBranch emits branching code for "if (cond) thenB else elseB",
// desugaring short-circuit operators into nested Ifs. Blocks passed in are
// attached (and for && / || the *short* branch is duplicated structurally;
// MiniLang conditions are small, and the CFET enumerates these paths anyway).
func (lo *lowerer) lowerCondBranch(cond lang.Expr, thenB, elseB *Block, pos lang.Pos, out *Block) error {
	switch e := cond.(type) {
	case *lang.Binary:
		switch e.Op {
		case lang.OpAnd:
			// if (a && b) T else E  =>  if a { if b T else E } else E'
			inner := &Block{}
			if err := lo.lowerCondBranch(e.R, thenB, elseB, pos, inner); err != nil {
				return err
			}
			return lo.lowerCondBranch(e.L, inner, cloneBlock(elseB), pos, out)
		case lang.OpOr:
			// if (a || b) T else E  =>  if a T else { if b T' else E }
			inner := &Block{}
			if err := lo.lowerCondBranch(e.R, cloneBlock(thenB), elseB, pos, inner); err != nil {
				return err
			}
			return lo.lowerCondBranch(e.L, thenB, inner, pos, out)
		}
	case *lang.Unary:
		if e.Op == '!' {
			return lo.lowerCondBranch(e.X, elseB, thenB, pos, out)
		}
	}
	c, simple, err := lo.simpleCond(cond, out)
	if err != nil {
		return err
	}
	if !simple {
		return fmt.Errorf("%s: unsupported condition form", pos)
	}
	out.Stmts = append(out.Stmts, &If{Cond: c, Then: thenB, Else: elseB, Pos: pos})
	return nil
}

// cloneBlock deep-copies a block so duplicated branches remain independent.
// Allocation and call sites inside keep their IDs: a duplicated site is the
// same source-level site reached along a different path.
func cloneBlock(b *Block) *Block {
	if b == nil {
		return &Block{}
	}
	out := &Block{Stmts: make([]Stmt, len(b.Stmts))}
	for i, s := range b.Stmts {
		out.Stmts[i] = cloneStmt(s)
	}
	return out
}

func cloneStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case *If:
		return &If{Cond: s.Cond, Then: cloneBlock(s.Then), Else: cloneBlock(s.Else), Pos: s.Pos}
	case *TryRegion:
		return &TryRegion{Body: cloneBlock(s.Body), CatchVar: s.CatchVar,
			CatchType: s.CatchType, Catch: cloneBlock(s.Catch), Pos: s.Pos}
	case *Call:
		c := *s
		c.ObjArgs = append([]ArgPair(nil), s.ObjArgs...)
		c.IntArgs = append([]IntArg(nil), s.IntArgs...)
		return &c
	case *IntAssign:
		c := *s
		return &c
	case *BoolAssign:
		c := *s
		return &c
	case *ObjAssign:
		c := *s
		return &c
	case *NewObj:
		c := *s
		return &c
	case *Store:
		c := *s
		return &c
	case *Load:
		c := *s
		return &c
	case *Event:
		c := *s
		return &c
	case *Return:
		c := *s
		return &c
	case *ThrowExit:
		c := *s
		return &c
	case *CatchBind:
		c := *s
		return &c
	case *Raise:
		c := *s
		return &c
	}
	panic(fmt.Sprintf("cloneStmt: unknown %T", s))
}

// lowerCall lowers a call expression, classifying arguments into object and
// integer groups. dst receives the result ("" to ignore).
func (lo *lowerer) lowerCall(e *lang.CallExpr, dst string, out *Block) (*Call, error) {
	callee := lo.info.Prog.Fun(e.Name)
	c := &Call{
		Dst:         dst,
		DstIsObject: dst != "" && lang.IsObjectType(callee.RetType),
		Callee:      e.Name,
		Site:        lo.callSite(e.Pos),
		Pos:         e.Pos,
	}
	for i, a := range e.Args {
		formal := callee.Params[i]
		if lang.IsObjectType(formal.Type) {
			src, err := lo.lowerObjExpr(a, out)
			if err != nil {
				return nil, err
			}
			if src != "" {
				c.ObjArgs = append(c.ObjArgs, ArgPair{Arg: src, Formal: formal.Name})
			}
			continue
		}
		if formal.Type == "bool" {
			// Bool params are carried opaquely: flatten to an int temp with
			// unknown value; path constraints inside the callee treat the
			// formal as a free variable, which over-approximates feasibility.
			t := lo.temp("int")
			out.Stmts = append(out.Stmts, &IntAssign{Dst: t, Op: Opaque, Pos: lang.PosOf(a)})
			c.IntArgs = append(c.IntArgs, IntArg{Arg: VarOp(t), Formal: formal.Name})
			continue
		}
		op, err := lo.lowerIntExpr(a, out)
		if err != nil {
			return nil, err
		}
		c.IntArgs = append(c.IntArgs, IntArg{Arg: op, Formal: formal.Name})
	}
	out.Stmts = append(out.Stmts, c)
	return c, nil
}
