package ir

import "github.com/grapple-system/grapple/internal/lang"

// This file exports the small control-flow-graph and def/use views of the
// structured IR that classical dataflow analyses (internal/analysis) need.
// Lowering has already unrolled loops and expanded exceptions, so a
// function's CFG is a DAG: blocks end either at a branch (two successors),
// at a Return/ThrowExit (no successors), or fall through to the block after
// an enclosing If (one successor, shared with the sibling branch — the join
// point).

// CFGBlock is one basic block of a function's CFG.
type CFGBlock struct {
	Index int
	// Stmts are the straight-line statements of the block. When the block
	// ends in a branch, Branch is that If (its Then/Else bodies live in the
	// successor blocks, not here); Stmts excludes it.
	Stmts  []Stmt
	Branch *If
	// Succs lists successor block indices: [then, else] under Branch, at
	// most one otherwise (none for exit blocks).
	Succs []int
	// Preds is the reverse of Succs, in ascending order.
	Preds []int
}

// CFG is the control-flow graph of one lowered function. Entry is always
// block 0; the graph is acyclic (loops were statically unrolled).
type CFG struct {
	Fn     *Func
	Blocks []*CFGBlock
}

// BuildCFG linearizes a lowered function's structured body into a CFG.
func BuildCFG(fn *Func) *CFG {
	b := &cfgBuilder{cfg: &CFG{Fn: fn}}
	entry := b.seq(fn.Body.Stmts, -1)
	// Entry must be block 0 for analyses; swap if the builder placed it
	// elsewhere (it builds continuations first).
	if entry != 0 {
		b.cfg.Blocks[0], b.cfg.Blocks[entry] = b.cfg.Blocks[entry], b.cfg.Blocks[0]
		for _, blk := range b.cfg.Blocks {
			for i, s := range blk.Succs {
				switch s {
				case 0:
					blk.Succs[i] = entry
				case entry:
					blk.Succs[i] = 0
				}
			}
		}
		b.cfg.Blocks[0].Index = 0
		b.cfg.Blocks[entry].Index = entry
	}
	for _, blk := range b.cfg.Blocks {
		for _, s := range blk.Succs {
			b.cfg.Blocks[s].Preds = append(b.cfg.Blocks[s].Preds, blk.Index)
		}
	}
	return b.cfg
}

type cfgBuilder struct {
	cfg *CFG
}

func (b *cfgBuilder) newBlock() *CFGBlock {
	blk := &CFGBlock{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// seq builds blocks for a statement sequence whose continuation is block
// `next` (-1 for "function exit") and returns the entry block index.
func (b *cfgBuilder) seq(stmts []Stmt, next int) int {
	for i, s := range stmts {
		switch s := s.(type) {
		case *If:
			cont := next
			if i+1 < len(stmts) {
				cont = b.seq(stmts[i+1:], next)
			}
			t := b.seq(s.Then.Stmts, cont)
			f := b.seq(s.Else.Stmts, cont)
			blk := b.newBlock()
			blk.Stmts = append(blk.Stmts, stmts[:i]...)
			blk.Branch = s
			blk.Succs = []int{t, f}
			return blk.Index
		case *Return, *ThrowExit:
			blk := b.newBlock()
			blk.Stmts = append(blk.Stmts, stmts[:i+1]...)
			return blk.Index
		}
	}
	if len(stmts) == 0 && next >= 0 {
		return next
	}
	blk := b.newBlock()
	blk.Stmts = append(blk.Stmts, stmts...)
	if next >= 0 {
		blk.Succs = []int{next}
	}
	return blk.Index
}

// RPO returns the block indices in reverse postorder from the entry —
// the iteration order under which a forward dataflow analysis over this
// acyclic CFG converges in one sweep.
func (c *CFG) RPO() []int {
	seen := make([]bool, len(c.Blocks))
	var post []int
	var dfs func(int)
	dfs = func(i int) {
		if seen[i] {
			return
		}
		seen[i] = true
		for _, s := range c.Blocks[i].Succs {
			dfs(s)
		}
		post = append(post, i)
	}
	dfs(0)
	out := make([]int, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		out = append(out, post[i])
	}
	return out
}

// Defs returns the variables a statement assigns (at most one in this IR).
func Defs(s Stmt) []string {
	switch s := s.(type) {
	case *IntAssign:
		return []string{s.Dst}
	case *BoolAssign:
		return []string{s.Dst}
	case *ObjAssign:
		return []string{s.Dst}
	case *NewObj:
		return []string{s.Dst}
	case *Load:
		return []string{s.Dst}
	case *Call:
		if s.Dst != "" {
			return []string{s.Dst}
		}
	case *Event:
		if s.Dst != "" {
			return []string{s.Dst}
		}
	case *CatchBind:
		return []string{s.Var}
	}
	return nil
}

// Uses returns the variables a statement reads. Branch conditions are not
// statements; use CondUses for an If's condition.
func Uses(s Stmt) []string {
	var out []string
	addOp := func(o Operand) {
		if !o.IsConst() {
			out = append(out, o.Var)
		}
	}
	switch s := s.(type) {
	case *IntAssign:
		if s.Op != Opaque {
			addOp(s.A)
			if s.Op == Add || s.Op == Sub || s.Op == Mul {
				addOp(s.B)
			}
		}
	case *BoolAssign:
		out = append(out, CondUses(s.Cond)...)
	case *ObjAssign:
		if s.Src != "" {
			out = append(out, s.Src)
		}
	case *Store:
		out = append(out, s.Recv, s.Src)
	case *Load:
		out = append(out, s.Recv)
	case *Call:
		for _, a := range s.ObjArgs {
			out = append(out, a.Arg)
		}
		for _, a := range s.IntArgs {
			addOp(a.Arg)
		}
	case *Event:
		out = append(out, s.Recv)
	case *Return:
		if s.Src.Var != "" {
			out = append(out, s.Src.Var)
		}
	case *ThrowExit:
		out = append(out, ExcVar)
	}
	return out
}

// CondUses returns the variables a branch condition reads.
func CondUses(c Cond) []string {
	if c.BoolVar != "" {
		return []string{c.BoolVar}
	}
	if c.IsOpaque() {
		return nil
	}
	var out []string
	if !c.A.IsConst() {
		out = append(out, c.A.Var)
	}
	if !c.B.IsConst() {
		out = append(out, c.B.Var)
	}
	return out
}

// StmtPos returns the source position recorded on a statement.
func StmtPos(s Stmt) lang.Pos {
	switch s := s.(type) {
	case *IntAssign:
		return s.Pos
	case *BoolAssign:
		return s.Pos
	case *ObjAssign:
		return s.Pos
	case *NewObj:
		return s.Pos
	case *Store:
		return s.Pos
	case *Load:
		return s.Pos
	case *Call:
		return s.Pos
	case *Event:
		return s.Pos
	case *Return:
		return s.Pos
	case *ThrowExit:
		return s.Pos
	case *CatchBind:
		return s.Pos
	case *If:
		return s.Pos
	case *TryRegion:
		return s.Pos
	case *Raise:
		return s.Pos
	}
	return lang.Pos{}
}
