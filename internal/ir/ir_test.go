package ir

import (
	"strings"
	"testing"

	"github.com/grapple-system/grapple/internal/lang"
)

func mustLower(t *testing.T, src string, opts Options) *Program {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := lang.Resolve(prog)
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	p, err := Lower(info, opts)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

func TestLowerFigure3b(t *testing.T) {
	src := `
type FileWriter;
fun main() {
  var out: FileWriter = null;
  var o: FileWriter = null;
  var x: int = input();
  var y: int = x;
  if (x >= 0) {
    out = new FileWriter();
    o = out;
    y = y - 1;
  } else {
    y = y + 1;
  }
  if (y > 0) {
    out.write();
    o.close();
  }
  return;
}`
	p := mustLower(t, src, Options{})
	main := p.FunByName["main"]
	d := Dump(main)
	for _, want := range []string{
		"x = opaque()",
		"y = x",
		"if x >= 0 {",
		"out = new FileWriter() [site 0]",
		"o = out",
		"if y > 0 {",
		"event out.write()",
		"event o.close()",
	} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
	if p.NumAllocSites != 1 {
		t.Errorf("alloc sites = %d", p.NumAllocSites)
	}
}

func TestLowerShortCircuit(t *testing.T) {
	src := `
fun f(a: int, b: int) {
  if (a > 0 && b > 0) {
    return;
  }
  return;
}`
	p := mustLower(t, src, Options{})
	d := Dump(p.FunByName["f"])
	// a>0 && b>0 becomes nested ifs.
	if !strings.Contains(d, "if a > 0 {") {
		t.Fatalf("missing outer if:\n%s", d)
	}
	if strings.Count(d, "if b > 0 {") != 1 {
		t.Fatalf("inner if count wrong:\n%s", d)
	}
}

func TestLowerOrDuplicatesThen(t *testing.T) {
	src := `
type R;
fun f(a: int) {
  var r: R = null;
  if (a > 0 || a < -5) {
    r = new R();
  }
  return;
}`
	p := mustLower(t, src, Options{})
	d := Dump(p.FunByName["f"])
	// then-branch is duplicated, but both copies keep allocation site 0.
	if got := strings.Count(d, "new R() [site 0]"); got != 2 {
		t.Fatalf("want 2 copies of site 0, got %d:\n%s", got, d)
	}
}

func TestLowerWhileUnroll(t *testing.T) {
	src := `
fun f(n: int) {
  var i: int = 0;
  while (i < n) {
    i = i + 1;
  }
  return;
}`
	p := mustLower(t, src, Options{UnrollDepth: 3})
	d := Dump(p.FunByName["f"])
	if got := strings.Count(d, "if i < n {"); got != 3 {
		t.Fatalf("unroll depth: got %d conditionals\n%s", got, d)
	}
}

func TestLowerTempsFlattenExpressions(t *testing.T) {
	src := `fun f(a: int, b: int): int { return a + b * 2 - 1; }`
	p := mustLower(t, src, Options{})
	d := Dump(p.FunByName["f"])
	if !strings.Contains(d, "$t3 = b * 2") {
		t.Fatalf("expected temp for b*2:\n%s", d)
	}
	if !strings.Contains(d, "return $t1") {
		t.Fatalf("expected flattened return:\n%s", d)
	}
}

func TestExceptionLocalCatch(t *testing.T) {
	src := `
type IOError;
fun main() {
  var log: IOError = null;
  try {
    throw new IOError();
  } catch (e: IOError) {
    log = e;
  }
  return;
}`
	p := mustLower(t, src, Options{})
	main := p.FunByName["main"]
	if main.MayThrow {
		t.Fatal("fully handled throw must not mark MayThrow")
	}
	d := Dump(main)
	if !strings.Contains(d, "e = $t1") {
		t.Errorf("handler should bind thrown object:\n%s", d)
	}
	if !strings.Contains(d, "catch-bind e [from call -1]") {
		t.Errorf("missing catch-bind:\n%s", d)
	}
	if strings.Contains(d, "throw-exit") {
		t.Errorf("no exceptional exit expected:\n%s", d)
	}
	// Control continues after the try: the trailing return must be present.
	if !strings.Contains(d, "return") {
		t.Errorf("missing return:\n%s", d)
	}
}

func TestExceptionUncaughtPropagates(t *testing.T) {
	src := `
type IOError;
fun risky() {
  throw new IOError();
}
fun caller() {
  risky();
  return;
}
fun main() {
  try {
    caller();
  } catch (e) {
    return;
  }
  return;
}`
	p := mustLower(t, src, Options{})
	if !p.FunByName["risky"].MayThrow {
		t.Fatal("risky must be MayThrow")
	}
	if !p.FunByName["caller"].MayThrow {
		t.Fatal("caller must inherit MayThrow")
	}
	if p.FunByName["main"].MayThrow {
		t.Fatal("main handles the exception")
	}
	dRisky := Dump(p.FunByName["risky"])
	if !strings.Contains(dRisky, "$exc = $t1") || !strings.Contains(dRisky, "throw-exit") {
		t.Errorf("risky should set $exc and exceptional-exit:\n%s", dRisky)
	}
	dCaller := Dump(p.FunByName["caller"])
	if !strings.Contains(dCaller, "if opq") {
		t.Errorf("caller should branch on opaque throw condition:\n%s", dCaller)
	}
	if !strings.Contains(dCaller, "catch-bind $exc [from call") {
		t.Errorf("caller should propagate callee exc:\n%s", dCaller)
	}
	dMain := Dump(p.FunByName["main"])
	if !strings.Contains(dMain, "catch-bind e [from call") {
		t.Errorf("main should catch callee exc:\n%s", dMain)
	}
	if strings.Contains(dMain, "throw-exit") {
		t.Errorf("main must not exit exceptionally:\n%s", dMain)
	}
}

func TestExceptionRaiseSkipsRestOfTry(t *testing.T) {
	src := `
type E;
type R;
fun main() {
  var r: R = null;
  var x: int = input();
  try {
    if (x > 0) {
      throw new E();
    }
    r = new R();
  } catch (e: E) {
    x = 0;
  }
  return;
}`
	p := mustLower(t, src, Options{})
	d := Dump(p.FunByName["main"])
	// In the then-branch (throw), "r = new R()" must not appear after the
	// inlined handler; in the else-branch it must.
	idx := strings.Index(d, "catch-bind e")
	if idx < 0 {
		t.Fatalf("missing catch-bind:\n%s", d)
	}
	// After the handler inline, x = 0 appears; then the branch ends. The
	// allocation belongs only to the non-throwing branch.
	thenPart := d[:idx]
	if strings.Contains(thenPart, "new R()") {
		t.Errorf("allocation leaked into throw path:\n%s", d)
	}
	if !strings.Contains(d, "new R()") {
		t.Errorf("allocation missing entirely:\n%s", d)
	}
}

func TestExceptionTypeMismatchPropagates(t *testing.T) {
	src := `
type A;
type B;
fun main() {
  try {
    throw new B();
  } catch (e: A) {
    return;
  }
  return;
}`
	p := mustLower(t, src, Options{})
	if !p.FunByName["main"].MayThrow {
		t.Fatal("B is not caught by catch(A); main must be MayThrow")
	}
	d := Dump(p.FunByName["main"])
	if !strings.Contains(d, "throw-exit") {
		t.Errorf("expected exceptional exit:\n%s", d)
	}
}

func TestNestedTryInnerHandler(t *testing.T) {
	src := `
type A;
fun main() {
  var n: int = 0;
  try {
    try {
      throw new A();
    } catch (e1: A) {
      n = 1;
    }
    n = 2;
  } catch (e2) {
    n = 3;
  }
  return;
}`
	p := mustLower(t, src, Options{})
	d := Dump(p.FunByName["main"])
	if !strings.Contains(d, "catch-bind e1") {
		t.Errorf("inner handler must catch:\n%s", d)
	}
	if strings.Contains(d, "catch-bind e2") {
		t.Errorf("outer handler must not trigger:\n%s", d)
	}
	// After inner catch, n = 2 (rest of outer try) must still run.
	if !strings.Contains(d, "n = 2") {
		t.Errorf("continuation after inner try lost:\n%s", d)
	}
}

func TestCallArgumentClassification(t *testing.T) {
	src := `
type Conn;
fun use(c: Conn, n: int) { return; }
fun main() {
  var c: Conn = new Conn();
  use(c, 3 + 4);
  return;
}`
	p := mustLower(t, src, Options{})
	d := Dump(p.FunByName["main"])
	if !strings.Contains(d, "call use(c->c, $t1->n) [site 0]") {
		t.Errorf("call lowering wrong:\n%s", d)
	}
}

func TestCloneBlockIndependence(t *testing.T) {
	b := &Block{Stmts: []Stmt{
		&If{Cond: BoolCond("b"), Then: &Block{Stmts: []Stmt{&ObjAssign{Dst: "x", Src: "y"}}}, Else: &Block{}},
	}}
	c := cloneBlock(b)
	c.Stmts[0].(*If).Then.Stmts[0].(*ObjAssign).Dst = "z"
	if b.Stmts[0].(*If).Then.Stmts[0].(*ObjAssign).Dst != "x" {
		t.Fatal("clone is not deep")
	}
}

func TestBoolVariableConditions(t *testing.T) {
	src := `
fun f(x: int) {
  var ok: bool = x > 0;
  if (ok) {
    return;
  }
  return;
}`
	p := mustLower(t, src, Options{})
	d := Dump(p.FunByName["f"])
	if !strings.Contains(d, "ok = x > 0") {
		t.Errorf("bool assignment:\n%s", d)
	}
	if !strings.Contains(d, "if ok {") {
		t.Errorf("bool condition:\n%s", d)
	}
}

func TestOpaqueNullCheck(t *testing.T) {
	src := `
type R;
fun f() {
  var r: R = null;
  if (r == null) {
    r = new R();
  }
  return;
}`
	p := mustLower(t, src, Options{})
	d := Dump(p.FunByName["f"])
	if !strings.Contains(d, "if opq") {
		t.Errorf("null check should lower to opaque condition:\n%s", d)
	}
}
